#!/usr/bin/env bash
# Single CI entry point: configure, build src/ with warnings-as-errors,
# build tests/benches/examples, and run the test suite.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DMCFPGA_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
