#!/usr/bin/env bash
# Single CI entry point: configure, build src/ with warnings-as-errors,
# build tests/benches/examples, run the test suite, re-run it under
# ASan+UBSan (a second cmake preset), and smoke the perf benches at tiny
# sizes so the hot paths are exercised, not just compiled.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DMCFPGA_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "--- sanitizer (ASan+UBSan) test run ---"
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DMCFPGA_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SAN_DIR" -j "$(nproc)"
ctest --test-dir "$SAN_DIR" --output-on-failure -j "$(nproc)"

echo "--- bench smoke runs ---"
"$BUILD_DIR"/bench_placer --smoke
"$BUILD_DIR"/bench_flow_end2end --smoke
"$BUILD_DIR"/bench_routing_delay --smoke
"$BUILD_DIR"/bench_incremental --smoke
