#!/usr/bin/env bash
# Single CI entry point: configure, build src/ with warnings-as-errors,
# build tests/benches/examples, run the test suite, re-run it under
# ASan+UBSan (a second cmake preset, including a routing bench smoke so
# the interleaved scheduler's hot path runs sanitized), run the routing
# and daemon smokes under ThreadSanitizer (a third preset — the
# speculative drain and the compile service are the threaded paths),
# smoke the perf benches at tiny sizes so the hot paths are exercised,
# not just compiled, and diff the smoke BENCH_JSON counters against the
# pinned baselines (scripts/bench_guard.py) so queue-traffic regressions
# fail CI even when every QoR gate still passes.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DMCFPGA_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "--- sanitizer (ASan+UBSan) test run ---"
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DMCFPGA_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SAN_DIR" -j "$(nproc)"
ctest --test-dir "$SAN_DIR" --output-on-failure -j "$(nproc)"
echo "--- sanitizer bench smoke (engines + both negotiation schedulers) ---"
"$SAN_DIR"/bench_routing_delay --smoke > /dev/null

echo "--- sanitizer (TSan) bench smoke ---"
# The routing smoke runs the speculative multi-worker drain (the
# interleave-scaling section routes with 2 and 4 workers even on a
# 1-core machine) and the daemon smoke runs the compile service's
# worker threads — the two places real concurrency lives.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DMCFPGA_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)" \
  --target bench_routing_delay bench_serve
"$TSAN_DIR"/bench_routing_delay --smoke > /dev/null
"$TSAN_DIR"/bench_serve --smoke > /dev/null

echo "--- bench smoke runs ---"
"$BUILD_DIR"/bench_placer --smoke
"$BUILD_DIR"/bench_flow_end2end --smoke
"$BUILD_DIR"/bench_routing_delay --smoke | tee "$BUILD_DIR"/bench_routing_smoke.log
"$BUILD_DIR"/bench_incremental --smoke | tee "$BUILD_DIR"/bench_incremental_smoke.log

echo "--- compile daemon smoke (in-process: repeat hit + cancel + teardown) ---"
# bench_serve starts an in-process daemon, runs the same job twice (the
# second must be a pure cache hit, byte-identical to a direct compile),
# cancels a queued job on a saturated daemon, and tears down cleanly;
# its internal gates fail the lane on any wrong status or bitstream.
"$BUILD_DIR"/bench_serve --smoke | tee "$BUILD_DIR"/bench_serve_smoke.log

echo "--- bench regression guard ---"
python3 scripts/bench_guard.py --baseline BENCH_ROUTING.json \
  --log "$BUILD_DIR"/bench_routing_smoke.log
python3 scripts/bench_guard.py --baseline BENCH_INCREMENTAL.json \
  --log "$BUILD_DIR"/bench_incremental_smoke.log
python3 scripts/bench_guard.py --baseline BENCH_SERVE.json \
  --log "$BUILD_DIR"/bench_serve_smoke.log
