#!/usr/bin/env python3
"""Bench-regression guard: pin BENCH_JSON smoke counters.

Compares the BENCH_JSON lines of a fresh --smoke bench run against the
"smoke_baseline" section of a pinned bench JSON file (BENCH_ROUTING.json,
BENCH_INCREMENTAL.json).  The interesting counters — maze expansions,
queue pushes, negotiation rounds/waves, conflicts, delta-path hits — are
deterministic for the pinned seeds, so a drift outside the tolerance
band means an algorithmic change, not machine noise.  Wall-clock keys
(and wall-derived speedups) are never compared.

Usage:
  bench_guard.py --baseline BENCH_ROUTING.json --log smoke.log [--tolerance X]

The log is the tee'd stdout of a `--smoke` run; only lines starting with
"BENCH_JSON " are read.  Baseline entries are matched by (name, size);
every pinned entry must appear in the log (a missing line means a bench
section silently stopped running).  Unpinned log lines only warn, so
adding a measurement does not break CI until it is pinned.

Exit status: 0 = all pinned counters within tolerance, 1 = regression.
"""

import argparse
import json
import sys


def load_log_entries(path):
    """Parses BENCH_JSON lines into {(name, size): fields}.

    Duplicate (name, size) keys are a hard error: the guard would
    otherwise silently compare only the LAST occurrence, letting the
    earlier one drift unchecked (and a duplicate usually means two bench
    sections emit under one name — a bug either way).
    """
    entries = {}
    duplicates = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("BENCH_JSON "):
                continue
            fields = json.loads(line[len("BENCH_JSON "):])
            key = (fields["name"], fields.get("size"))
            if key in entries:
                duplicates.append((key, entries[key], fields))
            entries[key] = fields
    if duplicates:
        for key, first, second in duplicates:
            print(f"bench_guard: duplicate BENCH_JSON entry "
                  f"{key[0]}[size={key[1]}]:", file=sys.stderr)
            print(f"  first:  {json.dumps(first, sort_keys=True)}",
                  file=sys.stderr)
            print(f"  second: {json.dumps(second, sort_keys=True)}",
                  file=sys.stderr)
        raise SystemExit(1)
    return entries


def compare_value(key, pinned, fresh, tolerance, errors, label):
    """Appends to `errors` when `fresh` drifts outside the band."""
    if isinstance(pinned, bool) or isinstance(pinned, str):
        if fresh != pinned:
            errors.append(f"{label}: {key} changed {pinned!r} -> {fresh!r}")
        return
    if not isinstance(pinned, (int, float)):
        return  # nested/unknown shapes are not pinned
    if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
        errors.append(f"{label}: {key} is no longer numeric ({fresh!r})")
        return
    # Relative band around the pinned value; small absolute slack so a
    # pinned zero (e.g. stale_pops on the binary heap) tolerates noise-
    # level counts without a divide-by-zero special case.
    band = max(2.0, tolerance * abs(pinned))
    if abs(fresh - pinned) > band:
        errors.append(
            f"{label}: {key} {fresh} outside {pinned} +/- {band:g} "
            f"(tolerance {tolerance:.0%})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="pinned bench JSON with a smoke_baseline section")
    parser.add_argument("--log", required=True,
                        help="stdout of the --smoke run to check")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="relative band (default: baseline's, else 0.25)")
    args = parser.parse_args()

    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    smoke = baseline.get("smoke_baseline")
    if not smoke:
        print(f"bench_guard: {args.baseline} has no smoke_baseline section",
              file=sys.stderr)
        return 1

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(smoke.get("tolerance", 0.25))
    ignored = set(smoke.get("ignored_keys", ["wall_ms", "speedup"]))
    ignored.update({"name", "size"})

    fresh_entries = load_log_entries(args.log)
    errors = []
    checked = 0
    for pinned in smoke.get("results", []):
        key = (pinned["name"], pinned.get("size"))
        label = f"{key[0]}[size={key[1]}]"
        fresh = fresh_entries.pop(key, None)
        if fresh is None:
            errors.append(f"{label}: pinned measurement missing from the run")
            continue
        for field, value in pinned.items():
            if field in ignored:
                continue
            compare_value(field, value, fresh.get(field), tolerance, errors,
                          label)
            checked += 1

    for key in sorted(fresh_entries):
        print(f"bench_guard: note: {key[0]}[size={key[1]}] is not pinned in "
              f"{args.baseline}")

    if errors:
        print(f"bench_guard: {len(errors)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"bench_guard: {checked} counters within {tolerance:.0%} of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
