// Unit tests for MCMG-LUTs (Fig. 12) and adaptive logic blocks (Figs. 13-14).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/stats.hpp"
#include "lut/logic_block.hpp"
#include "lut/mcmg_lut.hpp"

namespace mcfpga::lut {
namespace {

TEST(McmgLut, MemoryBudgetIsModeIndependent) {
  McmgLut lut(4, 4);
  EXPECT_EQ(lut.memory_bits_per_output(), 64u);  // 2^4 * 4
  for (const auto& mode : lut.available_modes()) {
    EXPECT_EQ((std::size_t{1} << mode.inputs) * mode.planes, 64u)
        << mode.describe();
  }
}

// Fig. 12: base-4, 4 contexts -> 4-in x 4 planes, 5-in x 2 planes,
// 6-in x 1 plane.
TEST(McmgLut, ModesMatchFig12) {
  McmgLut lut(4, 4);
  const auto modes = lut.available_modes();
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_EQ(modes[0], (LutMode{4, 4}));
  EXPECT_EQ(modes[1], (LutMode{5, 2}));
  EXPECT_EQ(modes[2], (LutMode{6, 1}));
  EXPECT_EQ(lut.max_inputs(), 6u);
}

TEST(McmgLut, SetModeValidates) {
  McmgLut lut(4, 4);
  lut.set_mode(LutMode{5, 2});
  EXPECT_EQ(lut.mode(), (LutMode{5, 2}));
  EXPECT_EQ(lut.id_bits_used(), 1u);
  EXPECT_THROW(lut.set_mode(LutMode{5, 3}), InvalidArgument);   // not pow2
  EXPECT_THROW(lut.set_mode(LutMode{4, 2}), InvalidArgument);   // budget
  EXPECT_THROW(lut.set_mode(LutMode{7, 1}), InvalidArgument);   // budget
  EXPECT_THROW(lut.set_mode(LutMode{3, 8}), InvalidArgument);   // planes > n
}

// Fig. 12(b): in the 5-input mode only S0 selects planes: contexts 0/2 read
// plane 0 and contexts 1/3 read plane 1.
TEST(McmgLut, PlaneSelectionUsesLowIdBits) {
  McmgLut lut(4, 4);
  lut.set_mode(LutMode{5, 2});
  EXPECT_EQ(lut.plane_for_context(0), 0u);
  EXPECT_EQ(lut.plane_for_context(1), 1u);
  EXPECT_EQ(lut.plane_for_context(2), 0u);
  EXPECT_EQ(lut.plane_for_context(3), 1u);
  lut.set_mode(LutMode{6, 1});
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(lut.plane_for_context(c), 0u);
  }
}

TEST(McmgLut, ProgramAndEval) {
  McmgLut lut(2, 2);  // 2-input base, 2 contexts: 8 bits per output
  lut.set_mode(LutMode{2, 2});
  // Plane 0: AND; plane 1: OR.
  BitVector and_tt = BitVector::from_string("1000");
  BitVector or_tt = BitVector::from_string("1110");
  lut.program_plane(0, 0, and_tt);
  lut.program_plane(0, 1, or_tt);
  for (std::size_t a = 0; a < 4; ++a) {
    const BitVector in = BitVector::from_word(a, 2);
    EXPECT_EQ(lut.eval(0, in, 0), and_tt.get(a));
    EXPECT_EQ(lut.eval(0, in, 1), or_tt.get(a));
  }
}

TEST(McmgLut, SetModeClearsMemory) {
  McmgLut lut(2, 2);
  lut.program_plane(0, 0, BitVector(4, true));
  lut.set_mode(LutMode{3, 1});
  EXPECT_TRUE(lut.plane_memory(0, 0).all_equal(false));
}

TEST(McmgLut, MultiOutputIndependence) {
  McmgLut lut(2, 2, 2);
  EXPECT_EQ(lut.total_memory_bits(), 16u);
  lut.program_plane(0, 0, BitVector(4, true));
  EXPECT_TRUE(lut.plane_memory(0, 0).all_equal(true));
  EXPECT_TRUE(lut.plane_memory(1, 0).all_equal(false));
  EXPECT_THROW(lut.program_plane(2, 0, BitVector(4)), InvalidArgument);
}

TEST(McmgLut, EvalValidatesArity) {
  McmgLut lut(4, 4);
  lut.set_mode(LutMode{5, 2});
  EXPECT_THROW(lut.eval(0, BitVector(4), 0), InvalidArgument);
  EXPECT_NO_THROW(lut.eval(0, BitVector(5), 0));
}

TEST(McmgLut, ConventionalViewRows) {
  McmgLut lut(2, 4);
  lut.set_mode(LutMode{2, 4});
  // Program plane c with the constant c%2 table: bit patterns across
  // contexts alternate -> the conventional view must show "0101" per bit.
  for (std::size_t p = 0; p < 4; ++p) {
    lut.program_plane(0, p, BitVector(4, p % 2 == 1));
  }
  const auto rows = lut.conventional_view_rows("t");
  ASSERT_EQ(rows.num_rows(), 4u);
  for (const auto& row : rows.rows()) {
    EXPECT_EQ(row.pattern.to_string(), "1010");  // C3..C0 = 1,0,1,0
    EXPECT_EQ(row.kind, config::ResourceKind::kLutBit);
  }
}

TEST(McmgLut, ConstructorValidation) {
  EXPECT_THROW(McmgLut(0, 4), InvalidArgument);
  EXPECT_THROW(McmgLut(9, 4), InvalidArgument);
  EXPECT_THROW(McmgLut(4, 3), InvalidArgument);
  EXPECT_THROW(McmgLut(4, 4, 0), InvalidArgument);
}

// --- Logic block ------------------------------------------------------------

TEST(LogicBlock, GlobalControlHasNoControllerCost) {
  LogicBlock lb(LogicBlockSpec{4, 4, 2, SizeControl::kGlobal});
  lb.set_granularity(LutMode{4, 4});
  EXPECT_EQ(lb.controller_se_cost(), 0u);
}

// Fig. 14 / Sec. 4: the local controller is "only required when there are
// different configuration planes" — single-plane blocks cost nothing.
TEST(LogicBlock, LocalControllerCostTracksPlanes) {
  LogicBlock lb(LogicBlockSpec{4, 4, 2, SizeControl::kLocal});
  lb.set_granularity(LutMode{6, 1});
  EXPECT_EQ(lb.controller_se_cost(), 0u);
  lb.set_granularity(LutMode{5, 2});
  EXPECT_EQ(lb.controller_se_cost(), 1u);
  lb.set_granularity(LutMode{4, 4});
  EXPECT_EQ(lb.controller_se_cost(), 2u);
}

TEST(LogicBlock, EvalDelegatesToLut) {
  LogicBlock lb(LogicBlockSpec{2, 2, 1, SizeControl::kLocal});
  lb.set_granularity(LutMode{2, 2});
  lb.lut().program_plane(0, 0, BitVector::from_string("0110"));  // XOR
  lb.lut().program_plane(0, 1, BitVector::from_string("1000"));  // AND
  const BitVector in = BitVector::from_string("11");
  EXPECT_FALSE(lb.eval(0, in, 0));  // XOR(1,1) = 0
  EXPECT_TRUE(lb.eval(0, in, 1));   // AND(1,1) = 1
}

TEST(LogicBlock, FlipFlopCountMatchesOutputs) {
  LogicBlock lb(LogicBlockSpec{4, 4, 2, SizeControl::kLocal});
  EXPECT_EQ(lb.num_flip_flops(), 2u);
}

}  // namespace
}  // namespace mcfpga::lut
