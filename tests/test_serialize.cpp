// Unit tests for bitstream text serialization: round trips, format
// stability, and malformed-input rejection with line numbers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "config/serialize.hpp"
#include "config/stats.hpp"
#include "workload/bitstream_gen.hpp"

namespace mcfpga::config {
namespace {

TEST(Serialize, RoundTripsPaperExample) {
  const Bitstream original = paper_table1_example();
  const Bitstream parsed = from_text(to_text(original));
  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  EXPECT_EQ(parsed.num_contexts(), original.num_contexts());
  for (std::size_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(parsed.row(r).name, original.row(r).name);
    EXPECT_EQ(parsed.row(r).kind, original.row(r).kind);
    EXPECT_EQ(parsed.row(r).pattern, original.row(r).pattern);
  }
}

TEST(Serialize, RoundTripsLargeGeneratedStream) {
  workload::BitstreamGenParams params;
  params.rows = 2000;
  params.num_contexts = 8;
  params.change_rate = 0.07;
  params.seed = 17;
  const Bitstream original = workload::generate_bitstream(params);
  const Bitstream parsed = from_text(to_text(original));
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(parsed.plane(c), original.plane(c));
  }
}

TEST(Serialize, FormatIsStable) {
  Bitstream bs(4);
  bs.add_row("sw0", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0101"));
  const std::string text = to_text(bs);
  EXPECT_EQ(text,
            "mcfpga-bitstream v1\n"
            "contexts 4\n"
            "rows 1\n"
            "sw0 routing-switch 0101\n");
}

TEST(Serialize, EmptyBitstream) {
  const Bitstream parsed = from_text(to_text(Bitstream(4)));
  EXPECT_EQ(parsed.num_rows(), 0u);
  EXPECT_EQ(parsed.num_contexts(), 4u);
}

TEST(Serialize, AllResourceKindsSurvive) {
  Bitstream bs(2);
  bs.add_row("a", ResourceKind::kRoutingSwitch, ContextPattern(2, false));
  bs.add_row("b", ResourceKind::kLutBit, ContextPattern(2, true));
  bs.add_row("c", ResourceKind::kControlBit, ContextPattern(2, false));
  const Bitstream parsed = from_text(to_text(bs));
  EXPECT_EQ(parsed.row(0).kind, ResourceKind::kRoutingSwitch);
  EXPECT_EQ(parsed.row(1).kind, ResourceKind::kLutBit);
  EXPECT_EQ(parsed.row(2).kind, ResourceKind::kControlBit);
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(from_text("garbage\n"), InvalidArgument);
  EXPECT_THROW(from_text(""), InvalidArgument);
}

TEST(Serialize, RejectsBadContextCount) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 3\nrows 0\n"),
               InvalidArgument);
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts x\nrows 0\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsTruncatedRows) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 2\n"
                         "a routing-switch 0101\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsWrongPatternWidth) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\n"
                         "a routing-switch 01\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsUnknownKind) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\n"
                         "a mystery-bit 0101\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsNonBinaryPattern) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\n"
                         "a lut-bit 01x1\n"),
               InvalidArgument);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\na lut-bit 01\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace mcfpga::config
