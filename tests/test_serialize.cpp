// Unit tests for bitstream and netlist text serialization: round trips,
// format stability, and malformed-input rejection with line numbers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "config/serialize.hpp"
#include "config/stats.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga::config {
namespace {

TEST(Serialize, RoundTripsPaperExample) {
  const Bitstream original = paper_table1_example();
  const Bitstream parsed = from_text(to_text(original));
  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  EXPECT_EQ(parsed.num_contexts(), original.num_contexts());
  for (std::size_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(parsed.row(r).name, original.row(r).name);
    EXPECT_EQ(parsed.row(r).kind, original.row(r).kind);
    EXPECT_EQ(parsed.row(r).pattern, original.row(r).pattern);
  }
}

TEST(Serialize, RoundTripsLargeGeneratedStream) {
  workload::BitstreamGenParams params;
  params.rows = 2000;
  params.num_contexts = 8;
  params.change_rate = 0.07;
  params.seed = 17;
  const Bitstream original = workload::generate_bitstream(params);
  const Bitstream parsed = from_text(to_text(original));
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(parsed.plane(c), original.plane(c));
  }
}

TEST(Serialize, FormatIsStable) {
  Bitstream bs(4);
  bs.add_row("sw0", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0101"));
  const std::string text = to_text(bs);
  EXPECT_EQ(text,
            "mcfpga-bitstream v1\n"
            "contexts 4\n"
            "rows 1\n"
            "sw0 routing-switch 0101\n");
}

TEST(Serialize, EmptyBitstream) {
  const Bitstream parsed = from_text(to_text(Bitstream(4)));
  EXPECT_EQ(parsed.num_rows(), 0u);
  EXPECT_EQ(parsed.num_contexts(), 4u);
}

TEST(Serialize, AllResourceKindsSurvive) {
  Bitstream bs(2);
  bs.add_row("a", ResourceKind::kRoutingSwitch, ContextPattern(2, false));
  bs.add_row("b", ResourceKind::kLutBit, ContextPattern(2, true));
  bs.add_row("c", ResourceKind::kControlBit, ContextPattern(2, false));
  const Bitstream parsed = from_text(to_text(bs));
  EXPECT_EQ(parsed.row(0).kind, ResourceKind::kRoutingSwitch);
  EXPECT_EQ(parsed.row(1).kind, ResourceKind::kLutBit);
  EXPECT_EQ(parsed.row(2).kind, ResourceKind::kControlBit);
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(from_text("garbage\n"), InvalidArgument);
  EXPECT_THROW(from_text(""), InvalidArgument);
}

TEST(Serialize, RejectsBadContextCount) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 3\nrows 0\n"),
               InvalidArgument);
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts x\nrows 0\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsTruncatedRows) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 2\n"
                         "a routing-switch 0101\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsWrongPatternWidth) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\n"
                         "a routing-switch 01\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsUnknownKind) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\n"
                         "a mystery-bit 0101\n"),
               InvalidArgument);
}

TEST(Serialize, RejectsNonBinaryPattern) {
  EXPECT_THROW(from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\n"
                         "a lut-bit 01x1\n"),
               InvalidArgument);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    from_text("mcfpga-bitstream v1\ncontexts 4\nrows 1\na lut-bit 01\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

// --- netlist round trip -----------------------------------------------------

void expect_same_netlist(const netlist::MultiContextNetlist& a,
                         const netlist::MultiContextNetlist& b) {
  ASSERT_EQ(a.num_contexts(), b.num_contexts());
  for (std::size_t c = 0; c < a.num_contexts(); ++c) {
    const netlist::Dfg& da = a.context(c);
    const netlist::Dfg& db = b.context(c);
    ASSERT_EQ(da.num_nodes(), db.num_nodes()) << "context " << c;
    for (std::size_t i = 0; i < da.num_nodes(); ++i) {
      const auto& na = da.node(static_cast<netlist::NodeRef>(i));
      const auto& nb = db.node(static_cast<netlist::NodeRef>(i));
      EXPECT_EQ(na.type, nb.type);
      EXPECT_EQ(na.name, nb.name);
      EXPECT_EQ(na.fanins, nb.fanins);
      EXPECT_EQ(na.truth_table, nb.truth_table);
    }
    ASSERT_EQ(da.outputs().size(), db.outputs().size());
    for (std::size_t i = 0; i < da.outputs().size(); ++i) {
      EXPECT_EQ(da.outputs()[i].node, db.outputs()[i].node);
      EXPECT_EQ(da.outputs()[i].name, db.outputs()[i].name);
    }
  }
}

TEST(NetlistSerialize, RoundTripsHandWrittenExample) {
  netlist::MultiContextNetlist nl(2);
  const auto a = nl.context(0).add_input("a");
  const auto b = nl.context(0).add_input("b");
  const auto x = nl.context(0).add_lut("xor", {a, b},
                                       BitVector::from_string("0110"));
  nl.context(0).mark_output(x, "y");
  const auto p = nl.context(1).add_input("a");
  const auto q = nl.context(1).add_lut("inv", {p},
                                       BitVector::from_string("01"));
  nl.context(1).mark_output(q, "y");

  expect_same_netlist(nl, netlist_from_text(netlist_to_text(nl)));
}

TEST(NetlistSerialize, FormatIsCanonical) {
  netlist::MultiContextNetlist nl(1);
  const auto a = nl.context(0).add_input("a");
  const auto b = nl.context(0).add_input("b");
  const auto x = nl.context(0).add_lut("and", {a, b},
                                       BitVector::from_string("1000"));
  nl.context(0).mark_output(x, "y");
  EXPECT_EQ(netlist_to_text(nl),
            "mcfpga-netlist v1\n"
            "contexts 1\n"
            "context 0\n"
            "nodes 3\n"
            "in a\n"
            "in b\n"
            "lut and 2 0 1 1000\n"
            "outputs 1\n"
            "out 2 y\n");
}

TEST(NetlistSerialize, RoundTripsStructuredAndRandomWorkloads) {
  expect_same_netlist(
      workload::pipeline_workload(4, 8),
      netlist_from_text(netlist_to_text(workload::pipeline_workload(4, 8))));

  workload::RandomMultiContextParams params;
  params.base.seed = 77;
  params.num_contexts = 3;
  const auto random = workload::random_multi_context(params);
  expect_same_netlist(random, netlist_from_text(netlist_to_text(random)));
  // Canonical: identical netlists produce identical text.
  EXPECT_EQ(netlist_to_text(random), netlist_to_text(random));
}

TEST(NetlistSerialize, RejectsMalformedInput) {
  EXPECT_THROW(netlist_from_text("mcfpga-bitstream v1\n"), InvalidArgument);
  // Fanin referencing itself / a later node.
  EXPECT_THROW(
      netlist_from_text("mcfpga-netlist v1\ncontexts 1\ncontext 0\n"
                        "nodes 1\nlut f 1 0 01\noutputs 0\n"),
      InvalidArgument);
  // Truth table width != 2^arity.
  EXPECT_THROW(
      netlist_from_text("mcfpga-netlist v1\ncontexts 1\ncontext 0\n"
                        "nodes 2\nin a\nlut f 1 0 0110\noutputs 0\n"),
      InvalidArgument);
  // Output out of range.
  EXPECT_THROW(
      netlist_from_text("mcfpga-netlist v1\ncontexts 1\ncontext 0\n"
                        "nodes 1\nin a\noutputs 1\nout 5 y\n"),
      InvalidArgument);
}

TEST(NetlistSerialize, WriteRejectsUnserializableNames) {
  netlist::MultiContextNetlist nl(1);
  nl.context(0).add_input("has space");
  EXPECT_THROW(netlist_to_text(nl), InvalidArgument);
}

TEST(NetlistSerialize, ErrorsCarryLineNumbers) {
  try {
    netlist_from_text("mcfpga-netlist v1\ncontexts 1\ncontext 0\n"
                      "nodes 1\nbogus x\noutputs 0\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
}

// --- Strict numeric parsing: every count/index goes through the checked
// helpers (common/strings.hpp), so trailing garbage, signs, overflow,
// and trailing tokens are all line-numbered errors instead of whatever
// `istream >> size_t` happened to produce.

/// Expects `text` to be rejected with the given line number in the error.
void expect_rejected_at(const std::string& text, const std::string& line_tag,
                        bool bitstream = false) {
  try {
    if (bitstream) {
      from_text(text);
    } else {
      netlist_from_text(text);
    }
    FAIL() << "accepted: " << text;
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
        << e.what() << "\nfor input: " << text;
  }
}

TEST(NetlistSerialize, RejectsMalformedNumericFixtures) {
  // Trailing garbage on a count.
  expect_rejected_at("mcfpga-netlist v1\ncontexts 12abc\n", "line 2");
  // Explicit '+' (istream would silently accept it).
  expect_rejected_at("mcfpga-netlist v1\ncontexts +1\n", "line 2");
  // Negative where unsigned is required (istream wraps it around).
  expect_rejected_at("mcfpga-netlist v1\ncontexts -1\n", "line 2");
  // Overflow past u64 (istream clamps; strict parsing rejects).
  expect_rejected_at(
      "mcfpga-netlist v1\ncontexts 99999999999999999999\n", "line 2");
  // Node count and LUT arity/fanin lines.
  expect_rejected_at(
      "mcfpga-netlist v1\ncontexts 1\ncontext 0\nnodes 2x\n", "line 4");
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1\ncontext 0\nnodes 2\n"
                     "in a\nlut f 1e0 0 01\noutputs 0\n",
                     "line 6");
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1\ncontext 0\nnodes 2\n"
                     "in a\nlut f 1 0x0 01\noutputs 0\n",
                     "line 6");
  // Output node index with trailing garbage.
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1\ncontext 0\nnodes 1\n"
                     "in a\noutputs 1\nout 0junk y\n",
                     "line 7");
  // Trailing tokens after an otherwise valid line.
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1 extra\n", "line 2");
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1\ncontext 0 extra\n",
                     "line 3");
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1\ncontext 0\nnodes 1\n"
                     "in a trailing\noutputs 0\n",
                     "line 5");
  expect_rejected_at("mcfpga-netlist v1\ncontexts 1\ncontext 0\nnodes 1\n"
                     "in a\noutputs 1\nout 0 y extra\n",
                     "line 7");
}

TEST(Serialize, RejectsMalformedNumericFixtures) {
  expect_rejected_at("mcfpga-bitstream v1\ncontexts 4abc\nrows 0\n",
                     "line 2", /*bitstream=*/true);
  expect_rejected_at("mcfpga-bitstream v1\ncontexts +4\nrows 0\n",
                     "line 2", /*bitstream=*/true);
  expect_rejected_at("mcfpga-bitstream v1\ncontexts 4\nrows -1\n",
                     "line 3", /*bitstream=*/true);
  expect_rejected_at(
      "mcfpga-bitstream v1\ncontexts 4\nrows 99999999999999999999\n",
      "line 3", /*bitstream=*/true);
  expect_rejected_at("mcfpga-bitstream v1\ncontexts 2\nrows 1\n"
                     "sb(0,0).p0 routing-switch 01 junk\n",
                     "line 4", /*bitstream=*/true);
  expect_rejected_at("mcfpga-bitstream v1\ncontexts 2 extra\nrows 0\n",
                     "line 2", /*bitstream=*/true);
}

}  // namespace
}  // namespace mcfpga::config
