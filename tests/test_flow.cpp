// Integration tests: the complete flow (map -> place -> route -> program)
// with end-to-end verification of the fabric simulator against the netlist
// reference evaluator, plus MCFPGA-level reports.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/mcfpga.hpp"
#include "core/report.hpp"
#include "rcm/context_decoder.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga::core {
namespace {

arch::FabricSpec default_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 8;
  spec.double_length_tracks = 2;
  return spec;
}

netlist::MultiContextNetlist adder_in_all_contexts(std::size_t bits) {
  netlist::MultiContextNetlist nl(4);
  for (std::size_t c = 0; c < 4; ++c) {
    nl.context(c) = workload::ripple_carry_adder(bits);
  }
  return nl;
}

TEST(Flow, CompilesSharedAdderCompactly) {
  const auto nl = adder_in_all_contexts(3);
  const MCFPGA chip(nl, default_spec());
  const auto& d = chip.design();
  // Fully shared across contexts: every class is shared 4 ways, so the
  // slot count equals the single-context LUT count.
  EXPECT_EQ(d.planes.num_slots(), nl.context(0).num_lut_ops());
  EXPECT_EQ(d.sharing.merged_lut_ops(), 3 * nl.context(0).num_lut_ops());
  EXPECT_EQ(d.planes.duplicated_bits(), 0u);
}

TEST(Flow, EndToEndVerificationSharedAdder) {
  const MCFPGA chip(adder_in_all_contexts(3), default_spec());
  EXPECT_EQ(chip.verify(24, 11), 0u);
}

TEST(Flow, EndToEndVerificationPipelineWorkload) {
  const MCFPGA chip(workload::pipeline_workload(4, 5), default_spec());
  EXPECT_EQ(chip.verify(24, 13), 0u);
}

TEST(Flow, EndToEndVerificationHeterogeneousContexts) {
  // Four genuinely different circuits, one per context, over overlapping
  // input names.
  netlist::MultiContextNetlist nl(4);
  nl.context(0) = workload::ripple_carry_adder(2);
  nl.context(1) = workload::comparator(4);
  nl.context(2) = workload::parity_tree(6);
  nl.context(3) = workload::mux_tree(2);
  const MCFPGA chip(nl, default_spec());
  EXPECT_EQ(chip.verify(24, 17), 0u);
}

TEST(Flow, EndToEndVerificationRandomMultiContext) {
  workload::RandomMultiContextParams params;
  params.base.num_inputs = 6;
  params.base.num_nodes = 14;
  params.base.max_arity = 4;
  params.base.seed = 21;
  params.share_fraction = 0.4;
  const MCFPGA chip(workload::random_multi_context(params), default_spec());
  EXPECT_EQ(chip.verify(16, 19), 0u);
}

TEST(Flow, AutoSizeGrowsFabric) {
  arch::FabricSpec tiny = default_spec();
  tiny.width = 1;
  tiny.height = 1;
  const MCFPGA chip(adder_in_all_contexts(3), tiny);
  EXPECT_GE(chip.design().fabric.num_cells(),
            chip.design().clusters.size());
  EXPECT_EQ(chip.verify(8, 23), 0u);
}

TEST(Flow, AutoSizeDisabledThrowsWhenTooSmall) {
  arch::FabricSpec tiny = default_spec();
  tiny.width = 1;
  tiny.height = 1;
  CompileOptions options;
  options.auto_size = false;
  EXPECT_THROW(compile(adder_in_all_contexts(4), tiny, options), FlowError);
}

TEST(Flow, ContextCountMismatchThrows) {
  netlist::MultiContextNetlist nl(2);
  nl.context(0) = workload::parity_tree(4);
  nl.context(1) = workload::parity_tree(4);
  EXPECT_THROW(compile(nl, default_spec()), InvalidArgument);
}

TEST(Flow, RcmDecodersReproduceTheFullBitstream) {
  const MCFPGA chip(workload::pipeline_workload(4, 4), default_spec());
  const auto& bs = chip.design().full_bitstream;
  const rcm::ContextDecoder decoder(bs);
  EXPECT_TRUE(decoder.matches(bs));
}

TEST(Flow, BitstreamStatisticsAreSparse) {
  const MCFPGA chip(workload::pipeline_workload(4, 4), default_spec());
  const auto stats = chip.bitstream_stats();
  // A routed fabric leaves the overwhelming majority of switches
  // untouched: constant rows dominate, as the paper's premise requires.
  EXPECT_GT(stats.constant_fraction(), 0.8);
  EXPECT_LT(stats.avg_change_rate, 0.2);
  EXPECT_GT(stats.num_rows, 1000u);
}

TEST(Flow, TimingStatsArePopulated) {
  const MCFPGA chip(adder_in_all_contexts(3), default_spec());
  const auto& stats = chip.design().context_stats;
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& s : stats) {
    EXPECT_GT(s.nets, 0u);
    EXPECT_GT(s.switches_crossed, 0u);
    EXPECT_GT(s.critical_path, 0.0);
  }
}

TEST(Flow, AreaReportOnCompiledDesign) {
  const MCFPGA chip(workload::pipeline_workload(4, 4), default_spec());
  const auto report = chip.area_report();
  EXPECT_GT(report.switch_rows, 0u);
  EXPECT_GT(report.ratio(), 0.0);
  EXPECT_LT(report.ratio(), 0.7);
  area::ComparisonOptions fepg;
  fepg.rcm_library = area::DeviceLibrary::fepg();
  EXPECT_LT(chip.area_report(fepg).ratio(), report.ratio());
}

TEST(Flow, DesignReportPrints) {
  const MCFPGA chip(adder_in_all_contexts(2), default_spec());
  std::ostringstream os;
  print_design_report(os, chip.design());
  EXPECT_NE(os.str().find("compiled design"), std::string::npos);
  EXPECT_NE(os.str().find("logic blocks"), std::string::npos);
}

TEST(Flow, LocalControlUsesNoMoreBlocksThanGlobal) {
  const auto nl = workload::pipeline_workload(4, 5);
  arch::FabricSpec local_spec = default_spec();
  local_spec.logic_block.control = lut::SizeControl::kLocal;
  arch::FabricSpec global_spec = default_spec();
  global_spec.logic_block.control = lut::SizeControl::kGlobal;
  const MCFPGA local(nl, local_spec);
  const MCFPGA global(nl, global_spec);
  EXPECT_LE(local.design().planes.num_slots(),
            global.design().planes.num_slots());
  EXPECT_LE(local.design().planes.duplicated_bits(),
            global.design().planes.duplicated_bits());
  // Both still verify.
  EXPECT_EQ(local.verify(8, 29), 0u);
  EXPECT_EQ(global.verify(8, 31), 0u);
}

}  // namespace
}  // namespace mcfpga::core
