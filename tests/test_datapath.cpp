// Unit tests for the extended datapath circuit generators, each checked
// exhaustively or densely against an arithmetic reference, plus the
// 4-context virtual-datapath composition compiled end to end.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/mcfpga.hpp"
#include "netlist/eval.hpp"
#include "workload/datapath.hpp"

namespace mcfpga::workload {
namespace {

using netlist::ValueMap;

ValueMap number_inputs(const std::string& prefix, std::uint64_t value,
                       std::size_t bits) {
  ValueMap in;
  for (std::size_t i = 0; i < bits; ++i) {
    in[prefix + std::to_string(i)] = (value >> i) & 1;
  }
  return in;
}

std::uint64_t read_number(const ValueMap& out, const std::string& prefix,
                          std::size_t bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const auto it = out.find(prefix + std::to_string(i));
    if (it != out.end() && it->second) {
      v |= std::uint64_t{1} << i;
    }
  }
  return v;
}

TEST(Alu, AllFourOpsCorrect) {
  const std::size_t bits = 4;
  const auto dfg = alu(bits);
  for (std::uint64_t a = 0; a < 16; a += 3) {
    for (std::uint64_t b = 0; b < 16; b += 2) {
      for (std::uint64_t op = 0; op < 4; ++op) {
        ValueMap in = number_inputs("a", a, bits);
        const ValueMap bb = number_inputs("b", b, bits);
        in.insert(bb.begin(), bb.end());
        in["op0"] = op & 1;
        in["op1"] = (op >> 1) & 1;
        const auto out = netlist::evaluate(dfg, in);
        const std::uint64_t r = read_number(out, "r", bits);
        std::uint64_t expected = 0;
        switch (op) {
          case 0:
            expected = a & b;
            break;
          case 1:
            expected = a | b;
            break;
          case 2:
            expected = a ^ b;
            break;
          case 3:
            expected = (a + b) & 0xF;
            break;
        }
        EXPECT_EQ(r, expected) << "a=" << a << " b=" << b << " op=" << op;
      }
    }
  }
}

TEST(Alu, CarryOutOnAdd) {
  const auto dfg = alu(4);
  ValueMap in = number_inputs("a", 0xF, 4);
  const ValueMap bb = number_inputs("b", 0x1, 4);
  in.insert(bb.begin(), bb.end());
  in["op0"] = true;
  in["op1"] = true;
  EXPECT_TRUE(netlist::evaluate(dfg, in).at("alu_cout"));
}

TEST(BarrelRotator, AllRotationsCorrect) {
  const std::size_t width = 8;
  const auto dfg = barrel_rotator(width);
  const std::uint64_t data = 0b10110001;
  for (std::uint64_t sh = 0; sh < width; ++sh) {
    ValueMap in = number_inputs("d", data, width);
    const ValueMap sm = number_inputs("sh", sh, 3);
    in.insert(sm.begin(), sm.end());
    const auto out = netlist::evaluate(dfg, in);
    const std::uint64_t expected =
        ((data << sh) | (data >> (width - sh))) & 0xFF;
    EXPECT_EQ(read_number(out, "q", width), sh == 0 ? data : expected)
        << "sh=" << sh;
  }
}

TEST(PriorityEncoder, HighestRequestWins) {
  const std::size_t width = 6;
  const auto dfg = priority_encoder(width);
  for (std::uint64_t req = 0; req < 64; ++req) {
    const auto out = netlist::evaluate(dfg, number_inputs("req", req, width));
    if (req == 0) {
      EXPECT_FALSE(out.at("valid"));
      continue;
    }
    EXPECT_TRUE(out.at("valid"));
    const std::uint64_t expected = 63 - __builtin_clzll(req);
    EXPECT_EQ(read_number(out, "q", 3), expected) << "req=" << req;
  }
}

TEST(Popcount, ExhaustiveOverEightBits) {
  const auto dfg = popcount(8);
  for (std::uint64_t v = 0; v < 256; ++v) {
    const auto out = netlist::evaluate(dfg, number_inputs("x", v, 8));
    EXPECT_EQ(read_number(out, "c", 4),
              static_cast<std::uint64_t>(__builtin_popcountll(v)))
        << v;
  }
}

TEST(GrayToBinary, RoundTripsThroughGrayCode) {
  const std::size_t width = 5;
  const auto dfg = gray_to_binary(width);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const std::uint64_t gray = v ^ (v >> 1);
    const auto out = netlist::evaluate(dfg, number_inputs("g", gray, width));
    EXPECT_EQ(read_number(out, "b", width), v) << "gray of " << v;
  }
}

TEST(GeneratorValidation, RejectsBadParameters) {
  EXPECT_THROW(alu(0), InvalidArgument);
  EXPECT_THROW(barrel_rotator(6), InvalidArgument);   // not a power of two
  EXPECT_THROW(priority_encoder(1), InvalidArgument);
  EXPECT_THROW(popcount(1), InvalidArgument);
  EXPECT_THROW(gray_to_binary(1), InvalidArgument);
}

// The DPGA use case: four functional units time-multiplexed on one fabric,
// compiled and verified end to end.
TEST(VirtualDatapath, CompilesAndVerifies) {
  const auto nl = virtual_datapath(4);
  arch::FabricSpec spec;
  spec.width = 5;
  spec.height = 5;
  spec.channel_width = 10;
  const core::MCFPGA chip(nl, spec);
  EXPECT_EQ(chip.verify(16, 41), 0u);
  // The four contexts are genuinely different circuits: little sharing.
  EXPECT_LT(chip.design().sharing.merged_lut_ops(),
            chip.design().netlist.total_lut_ops() / 4);
}

TEST(VirtualDatapath, FunctionalSpotChecks) {
  const auto nl = virtual_datapath(4);
  arch::FabricSpec spec;
  spec.width = 5;
  spec.height = 5;
  spec.channel_width = 10;
  const core::MCFPGA chip(nl, spec);

  // Context 0: ALU add 5 + 6 (op=11).
  ValueMap in = number_inputs("a", 5, 4);
  const ValueMap bb = number_inputs("b", 6, 4);
  in.insert(bb.begin(), bb.end());
  in["op0"] = true;
  in["op1"] = true;
  EXPECT_EQ(read_number(chip.run(0, in), "r", 4), 11u);

  // Context 3: popcount of a = 0b1011.
  ValueMap pin = number_inputs("a", 0b1011, 4);
  EXPECT_EQ(read_number(chip.run(3, pin), "c", 3), 3u);
}

}  // namespace
}  // namespace mcfpga::workload
