// Unit tests for the configuration model: context IDs (Table 2), pattern
// classification (Figs. 3-5), bitstreams and redundancy statistics (Table 1).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "config/bitstream.hpp"
#include "config/context_id.hpp"
#include "config/pattern.hpp"
#include "config/stats.hpp"

namespace mcfpga::config {
namespace {

TEST(ContextId, NumIdBits) {
  EXPECT_EQ(num_id_bits(2), 1u);
  EXPECT_EQ(num_id_bits(4), 2u);
  EXPECT_EQ(num_id_bits(8), 3u);
  EXPECT_EQ(num_id_bits(64), 6u);
  EXPECT_THROW(num_id_bits(3), InvalidArgument);
  EXPECT_THROW(num_id_bits(1), InvalidArgument);
  EXPECT_THROW(num_id_bits(128), InvalidArgument);
}

// Paper Table 2: S0 = 0,1,0,1 and S1 = 0,0,1,1 across contexts 0..3.
TEST(ContextId, MatchesPaperTable2) {
  const bool s0[] = {false, true, false, true};
  const bool s1[] = {false, false, true, true};
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(id_bit_value(c, 0), s0[c]) << "context " << c;
    EXPECT_EQ(id_bit_value(c, 1), s1[c]) << "context " << c;
  }
}

TEST(ContextId, BitNames) {
  EXPECT_EQ(id_bit_name(0, false), "S0");
  EXPECT_EQ(id_bit_name(1, true), "~S1");
}

TEST(ContextPattern, FromStringIsMsbFirst) {
  // "1000" = (C3,C2,C1,C0) = (1,0,0,0): on only in context 3 (Fig. 9).
  const auto p = ContextPattern::from_string("1000");
  EXPECT_TRUE(p.value_in(3));
  EXPECT_FALSE(p.value_in(0));
  EXPECT_FALSE(p.value_in(1));
  EXPECT_FALSE(p.value_in(2));
  EXPECT_EQ(p.to_string(), "1000");
}

TEST(ContextPattern, ForIdBitMatchesTable2) {
  const auto s0 = ContextPattern::for_id_bit(4, 0, false);
  EXPECT_EQ(s0.to_string(), "1010");  // C3..C0 = 1,0,1,0
  const auto ns0 = ContextPattern::for_id_bit(4, 0, true);
  EXPECT_EQ(ns0.to_string(), "0101");
  const auto s1 = ContextPattern::for_id_bit(4, 1, false);
  EXPECT_EQ(s1.to_string(), "1100");
}

TEST(ContextPattern, RejectsBadContextCounts) {
  EXPECT_THROW(ContextPattern(3), InvalidArgument);
  EXPECT_THROW(ContextPattern::from_string("101"), InvalidArgument);
}

TEST(Classify, ConstantPatterns) {
  const auto zero = classify(ContextPattern::from_string("0000"));
  EXPECT_EQ(zero.cls, PatternClass::kConstant);
  EXPECT_FALSE(zero.constant_value);
  EXPECT_EQ(zero.describe(), "const 0");

  const auto one = classify(ContextPattern::from_string("1111"));
  EXPECT_EQ(one.cls, PatternClass::kConstant);
  EXPECT_TRUE(one.constant_value);
}

TEST(Classify, SingleBitPatterns) {
  // The four Fig. 4 patterns for 4 contexts.
  struct Case {
    const char* pattern;
    std::size_t bit;
    bool inverted;
  };
  const Case cases[] = {{"1010", 0, false},
                        {"0101", 0, true},
                        {"1100", 1, false},
                        {"0011", 1, true}};
  for (const auto& c : cases) {
    const auto info = classify(ContextPattern::from_string(c.pattern));
    EXPECT_EQ(info.cls, PatternClass::kSingleBit) << c.pattern;
    EXPECT_EQ(info.id_bit, c.bit) << c.pattern;
    EXPECT_EQ(info.inverted, c.inverted) << c.pattern;
  }
}

// Figs. 3-5: for 4 contexts the 16 patterns split 2 / 4 / 10.
TEST(Classify, CensusFourContexts) {
  std::size_t constant = 0;
  std::size_t single = 0;
  std::size_t complex_count = 0;
  for (const auto& p : all_patterns(4)) {
    switch (classify(p).cls) {
      case PatternClass::kConstant:
        ++constant;
        break;
      case PatternClass::kSingleBit:
        ++single;
        break;
      case PatternClass::kComplex:
        ++complex_count;
        break;
    }
  }
  EXPECT_EQ(constant, 2u);
  EXPECT_EQ(single, 4u);
  EXPECT_EQ(complex_count, 10u);
}

// Generalization: n contexts always give 2 constants and 2*log2(n)
// single-bit patterns.
TEST(Classify, CensusGeneralizes) {
  for (const std::size_t n : {2u, 8u, 16u}) {
    std::size_t constant = 0;
    std::size_t single = 0;
    for (const auto& p : all_patterns(n)) {
      const auto cls = classify(p).cls;
      constant += cls == PatternClass::kConstant;
      single += cls == PatternClass::kSingleBit;
    }
    EXPECT_EQ(constant, 2u) << n;
    EXPECT_EQ(single, 2 * num_id_bits(n)) << n;
  }
}

TEST(Pattern, Periodicity) {
  EXPECT_EQ(smallest_period(ContextPattern::from_string("0000")), 1u);
  EXPECT_EQ(smallest_period(ContextPattern::from_string("0101")), 2u);
  EXPECT_EQ(smallest_period(ContextPattern::from_string("1000")), 4u);
  EXPECT_TRUE(has_period(ContextPattern::from_string("0101"), 2));
  EXPECT_FALSE(has_period(ContextPattern::from_string("0100"), 2));
  EXPECT_THROW(has_period(ContextPattern::from_string("0101"), 0),
               InvalidArgument);
}

TEST(Bitstream, AddAndQueryRows) {
  Bitstream bs(4);
  const std::size_t i =
      bs.add_row("sw0", ResourceKind::kRoutingSwitch,
                 ContextPattern::from_string("0101"));
  bs.add_row("lut0", ResourceKind::kLutBit,
             ContextPattern::from_string("1111"));
  EXPECT_EQ(bs.num_rows(), 2u);
  EXPECT_EQ(bs.row(i).name, "sw0");
  EXPECT_EQ(bs.count_kind(ResourceKind::kRoutingSwitch), 1u);
  EXPECT_EQ(bs.count_kind(ResourceKind::kLutBit), 1u);
  EXPECT_EQ(bs.count_kind(ResourceKind::kControlBit), 0u);
  EXPECT_THROW(bs.row(5), InvalidArgument);
}

TEST(Bitstream, PlaneExtraction) {
  Bitstream bs(4);
  bs.add_row("a", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("1000"));
  bs.add_row("b", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0101"));
  // Context 0: a=0, b=1 -> plane bits (row0, row1) = (0, 1).
  EXPECT_EQ(bs.plane(0).to_string(), "10");
  // Context 3: a=1, b=0.
  EXPECT_EQ(bs.plane(3).to_string(), "01");
  EXPECT_THROW(bs.plane(4), InvalidArgument);
}

TEST(Bitstream, RejectsContextMismatch) {
  Bitstream bs(4);
  EXPECT_THROW(bs.add_row("x", ResourceKind::kLutBit, ContextPattern(8)),
               InvalidArgument);
  Bitstream other(8);
  EXPECT_THROW(bs.append(other), InvalidArgument);
}

TEST(Bitstream, Append) {
  Bitstream a(4);
  a.add_row("a", ResourceKind::kLutBit, ContextPattern(4, true));
  Bitstream b(4);
  b.add_row("b", ResourceKind::kLutBit, ContextPattern(4, false));
  a.append(b);
  EXPECT_EQ(a.num_rows(), 2u);
  EXPECT_EQ(a.row(1).name, "b");
}

// Table 1 fixture: G3/G9 self-redundant, G2 == G4 regular, G1 complex.
TEST(Stats, PaperTable1Example) {
  const Bitstream bs = paper_table1_example();
  ASSERT_EQ(bs.num_rows(), 5u);
  const BitstreamStats stats = compute_stats(bs);
  EXPECT_EQ(stats.constant_rows, 2u);     // G3, G9
  EXPECT_EQ(stats.single_bit_rows, 2u);   // G2, G4 (= ~S0)
  EXPECT_EQ(stats.complex_rows, 1u);      // G1
  EXPECT_EQ(stats.largest_identical_group, 2u);  // G2 == G4
  EXPECT_EQ(stats.rows_in_shared_groups, 2u);
  EXPECT_EQ(stats.distinct_patterns, 4u);
  // G2/G4 are periodic with period 2 (the "repeating (0,1)" regularity).
  EXPECT_EQ(stats.period_histogram.at(2), 2u);
}

TEST(Stats, ChangeRateOfConstantBitstreamIsZero) {
  Bitstream bs(4);
  for (int i = 0; i < 10; ++i) {
    bs.add_row("r" + std::to_string(i), ResourceKind::kRoutingSwitch,
               ContextPattern(4, i % 2 == 0));
  }
  const BitstreamStats stats = compute_stats(bs);
  EXPECT_DOUBLE_EQ(stats.avg_change_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_change_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.changing_row_fraction, 0.0);
}

TEST(Stats, ChangeRateCountsTransitions) {
  Bitstream bs(4);
  // One row toggling at every transition: rate = 1.0 on that row.
  bs.add_row("t", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0101"));
  bs.add_row("c", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0000"));
  const BitstreamStats stats = compute_stats(bs);
  EXPECT_DOUBLE_EQ(stats.avg_change_rate, 0.5);  // 1 of 2 rows toggles
  EXPECT_DOUBLE_EQ(stats.max_change_rate, 0.5);
  EXPECT_DOUBLE_EQ(stats.changing_row_fraction, 0.5);
}

TEST(Stats, PrintIsWellFormed) {
  std::ostringstream os;
  print_stats(os, compute_stats(paper_table1_example()), "table 1");
  EXPECT_NE(os.str().find("table 1"), std::string::npos);
  EXPECT_NE(os.str().find("constant rows"), std::string::npos);
}

TEST(Stats, EmptyBitstream) {
  const BitstreamStats stats = compute_stats(Bitstream(4));
  EXPECT_EQ(stats.num_rows, 0u);
  EXPECT_DOUBLE_EQ(stats.constant_fraction(), 0.0);
}

}  // namespace
}  // namespace mcfpga::config
