// Delta-cost correctness of the incremental placer.
//
// Two layers: (1) fuzz IncrementalHpwl directly — replay random move
// sequences with random commit/rollback decisions and assert the running
// cost equals a from-scratch recompute after every single step; (2) run
// the full annealer in incremental and full-recompute modes on the same
// seeds and require bit-identical Placements (positions, pads, cost), plus
// the exactness of the final cost against placement_cost().
#include <gtest/gtest.h>

#include <vector>

#include "arch/routing_graph.hpp"
#include "common/rng.hpp"
#include "place/net_index.hpp"
#include "place/placer.hpp"

namespace mcfpga {
namespace {

using place::IncrementalHpwl;
using place::NetIndex;
using place::Placement;
using place::PlacementNet;
using place::PlacementProblem;
using place::PlacerOptions;
using place::Terminal;

Terminal random_terminal(Rng& rng, const PlacementProblem& prob) {
  const std::size_t total = prob.num_clusters + prob.num_io_terminals;
  const std::size_t pick = static_cast<std::size_t>(rng.next_below(total));
  if (pick < prob.num_clusters) {
    return Terminal::cluster(pick);
  }
  return Terminal::io(pick - prob.num_clusters);
}

/// Random problem; terminals may repeat within a net (driver re-listed as
/// a sink, duplicated sinks) so multiplicity handling gets exercised.
PlacementProblem random_problem(std::uint64_t seed, std::size_t clusters,
                                std::size_t ios, std::size_t nets,
                                std::size_t max_sinks) {
  Rng rng(seed);
  PlacementProblem prob;
  prob.num_clusters = clusters;
  prob.num_io_terminals = ios;
  for (std::size_t n = 0; n < nets; ++n) {
    PlacementNet net;
    net.driver = random_terminal(rng, prob);
    const std::size_t sinks =
        static_cast<std::size_t>(rng.next_below(max_sinks + 1));
    for (std::size_t s = 0; s < sinks; ++s) {
      net.sinks.push_back(random_terminal(rng, prob));
    }
    // Includes weight 0: a free net must stay free (placement_cost parity).
    net.weight = static_cast<std::size_t>(rng.next_below(5));
    prob.nets.push_back(std::move(net));
  }
  return prob;
}

/// Replays `steps` random 1- or 2-terminal moves, committing or rolling
/// back at random, and checks exactness after every step.
void fuzz_against_recompute(const PlacementProblem& prob, std::uint64_t seed,
                            std::size_t steps) {
  const NetIndex index(prob);
  const std::size_t terms = prob.num_clusters + prob.num_io_terminals;
  ASSERT_EQ(index.num_terminals(), terms);

  Rng rng(seed);
  std::vector<std::int32_t> xs(terms), ys(terms);
  for (std::size_t t = 0; t < terms; ++t) {
    xs[t] = static_cast<std::int32_t>(rng.next_below(30));
    ys[t] = static_cast<std::int32_t>(rng.next_below(30));
  }
  IncrementalHpwl hp(index);
  hp.reset(xs, ys);
  ASSERT_EQ(hp.cost(), hp.recompute_cost());

  for (std::size_t step = 0; step < steps; ++step) {
    IncrementalHpwl::Move moves[2];
    std::size_t count = 1 + static_cast<std::size_t>(rng.next_bool(0.5));
    moves[0].term = static_cast<std::uint32_t>(rng.next_below(terms));
    if (count == 2 && terms > 1) {
      do {
        moves[1].term = static_cast<std::uint32_t>(rng.next_below(terms));
      } while (moves[1].term == moves[0].term);
    } else {
      count = 1;
    }
    for (std::size_t i = 0; i < count; ++i) {
      moves[i].x = static_cast<std::int32_t>(rng.next_below(30));
      moves[i].y = static_cast<std::int32_t>(rng.next_below(30));
    }
    const std::int64_t before = hp.cost();
    const std::int64_t delta = hp.propose(moves, count);
    if (rng.next_bool(0.6)) {  // accept
      hp.commit();
      ASSERT_EQ(hp.cost(), before + delta) << "step " << step;
    } else {  // reject
      hp.rollback();
      ASSERT_EQ(hp.cost(), before) << "step " << step;
    }
    ASSERT_EQ(hp.cost(), hp.recompute_cost()) << "step " << step;
  }
}

TEST(IncrementalHpwl, FuzzMatchesRecomputeAcrossShapes) {
  struct Shape {
    std::size_t clusters, ios, nets, max_sinks;
  };
  const Shape shapes[] = {
      {8, 0, 12, 4},    // clusters only
      {0, 6, 8, 3},     // I/O only
      {12, 6, 20, 5},   // mixed
      {3, 2, 4, 0},     // driver-only (single-terminal) nets
      {2, 1, 6, 6},     // tiny: heavy repeats, everything on box edges
      {24, 8, 10, 16},  // few large nets
  };
  std::uint64_t seed = 100;
  for (const Shape& s : shapes) {
    for (std::uint64_t salt = 0; salt < 3; ++salt) {
      const PlacementProblem prob =
          random_problem(seed + salt, s.clusters, s.ios, s.nets, s.max_sinks);
      fuzz_against_recompute(prob, seed + 7 * salt + 1, 400);
    }
    seed += 50;
  }
}

TEST(IncrementalHpwl, ProposeFullMatchesIncrementalDelta) {
  const PlacementProblem prob = random_problem(5, 10, 4, 16, 4);
  const NetIndex index(prob);
  const std::size_t terms = index.num_terminals();
  Rng rng(77);
  std::vector<std::int32_t> xs(terms), ys(terms);
  for (std::size_t t = 0; t < terms; ++t) {
    xs[t] = static_cast<std::int32_t>(rng.next_below(20));
    ys[t] = static_cast<std::int32_t>(rng.next_below(20));
  }
  IncrementalHpwl inc(index);
  IncrementalHpwl full(index);
  inc.reset(xs, ys);
  full.reset(xs, ys);
  for (std::size_t step = 0; step < 200; ++step) {
    IncrementalHpwl::Move mv{
        static_cast<std::uint32_t>(rng.next_below(terms)),
        static_cast<std::int32_t>(rng.next_below(20)),
        static_cast<std::int32_t>(rng.next_below(20))};
    const std::int64_t di = inc.propose(&mv, 1);
    const std::int64_t df = full.propose_full(&mv, 1);
    ASSERT_EQ(di, df) << "step " << step;
    if (rng.next_bool()) {
      inc.commit();
      full.commit();
    } else {
      inc.rollback();
      full.rollback();
    }
    ASSERT_EQ(inc.cost(), full.cost());
  }
}

arch::FabricSpec spec_n(std::size_t n) {
  arch::FabricSpec spec;
  spec.width = n;
  spec.height = n;
  spec.channel_width = 4;
  spec.double_length_tracks = 2;
  return spec;
}

/// The acceptance criterion: for a fixed seed, incremental and
/// full-recompute annealing produce bit-identical Placements.
TEST(Placer, IncrementalBitIdenticalToFullRecompute) {
  struct Case {
    std::size_t grid, clusters, ios, nets;
    bool range_limit, adaptive;
  };
  const Case cases[] = {
      {5, 18, 8, 30, true, false},
      {5, 18, 8, 30, false, false},
      {6, 30, 0, 40, true, true},
      {4, 0, 10, 12, true, false},
  };
  std::uint64_t seed = 11;
  for (const Case& c : cases) {
    const PlacementProblem prob =
        random_problem(seed, c.clusters, c.ios, c.nets, 4);
    const arch::RoutingGraph g(spec_n(c.grid));
    PlacerOptions opts;
    opts.seed = seed;
    opts.sweeps = 24;
    opts.range_limit = c.range_limit;
    opts.adaptive_cooling = c.adaptive;
    opts.incremental = true;
    const Placement inc = place::place(prob, g, opts);
    opts.incremental = false;
    const Placement full = place::place(prob, g, opts);
    EXPECT_EQ(inc.cluster_pos, full.cluster_pos);
    EXPECT_EQ(inc.io_pads, full.io_pads);
    EXPECT_EQ(inc.cost, full.cost);  // bit-identical, not just close
    // Exactness against the public recompute.
    EXPECT_EQ(inc.cost, place::placement_cost(prob, g, inc));
    seed += 13;
  }
}

TEST(Placer, RestartsAreDeterministicAndNeverWorse) {
  const PlacementProblem prob = random_problem(21, 20, 6, 32, 4);
  const arch::RoutingGraph g(spec_n(5));
  PlacerOptions opts;
  opts.seed = 21;
  opts.sweeps = 16;

  const Placement single = place::place(prob, g, opts);
  ASSERT_EQ(single.restart_stats.size(), 1u);

  opts.num_restarts = 4;
  opts.num_threads = 2;
  const Placement multi_a = place::place(prob, g, opts);
  opts.num_threads = 4;
  const Placement multi_b = place::place(prob, g, opts);

  // Same seed set -> identical outcome, independent of worker count.
  EXPECT_EQ(multi_a.cluster_pos, multi_b.cluster_pos);
  EXPECT_EQ(multi_a.io_pads, multi_b.io_pads);
  EXPECT_EQ(multi_a.cost, multi_b.cost);
  EXPECT_EQ(multi_a.winning_restart, multi_b.winning_restart);

  // Restart 0 replays the single-seed run, so the winner can't be worse.
  ASSERT_EQ(multi_a.restart_stats.size(), 4u);
  EXPECT_DOUBLE_EQ(multi_a.restart_stats[0].cost, single.cost);
  EXPECT_LE(multi_a.cost, single.cost);
  // The winner is the argmin of the per-restart costs.
  for (const auto& rs : multi_a.restart_stats) {
    EXPECT_LE(multi_a.cost, rs.cost);
  }
  EXPECT_DOUBLE_EQ(multi_a.cost,
                   multi_a.restart_stats[multi_a.winning_restart].cost);
  EXPECT_EQ(multi_a.restart_stats[2].seed, opts.seed + 2);
}

TEST(Placer, RangeLimitAndAdaptiveCoolingStayExact) {
  const PlacementProblem prob = random_problem(31, 16, 4, 24, 3);
  const arch::RoutingGraph g(spec_n(5));
  PlacerOptions opts;
  opts.seed = 31;
  opts.sweeps = 32;
  opts.adaptive_cooling = true;
  const Placement p = place::place(prob, g, opts);
  EXPECT_EQ(p.cost, place::placement_cost(prob, g, p));
  const Placement q = place::place(prob, g, opts);
  EXPECT_EQ(p.cluster_pos, q.cluster_pos);
  EXPECT_EQ(p.io_pads, q.io_pads);
}

}  // namespace
}  // namespace mcfpga
