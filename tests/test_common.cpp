// Unit tests for the common substrate: BitVector, Rng, strings, Table,
// and the stable FNV-1a/64 content hashing behind the stage cache.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <set>
#include <sstream>
#include <thread>

#include "common/bitvector.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace mcfpga {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ConstructsWithFillValue) {
  BitVector zeros(10, false);
  BitVector ones(10, true);
  EXPECT_TRUE(zeros.all_equal(false));
  EXPECT_TRUE(ones.all_equal(true));
  EXPECT_EQ(ones.popcount(), 10u);
}

TEST(BitVector, SetGetFlip) {
  BitVector v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, IndexOutOfRangeThrows) {
  BitVector v(8);
  EXPECT_THROW(v.get(8), InvalidArgument);
  EXPECT_THROW(v.set(100, true), InvalidArgument);
}

TEST(BitVector, StringRoundTrip) {
  const std::string s = "1011001";
  BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  // MSB-first: leading '1' is the highest index.
  EXPECT_TRUE(v.get(6));
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
}

TEST(BitVector, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVector::from_string("10x1"), InvalidArgument);
}

TEST(BitVector, WordRoundTrip) {
  BitVector v = BitVector::from_word(0b1011, 4);
  EXPECT_EQ(v.to_word(), 0b1011u);
  EXPECT_EQ(v.to_string(), "1011");
  // Upper bits beyond size are masked off.
  BitVector w = BitVector::from_word(~0ull, 3);
  EXPECT_EQ(w.to_word(), 7u);
}

TEST(BitVector, HammingDistance) {
  BitVector a = BitVector::from_string("1100");
  BitVector b = BitVector::from_string("1010");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  BitVector c(5);
  EXPECT_THROW(a.hamming_distance(c), InvalidArgument);
}

TEST(BitVector, BitwiseOps) {
  BitVector a = BitVector::from_string("1100");
  BitVector b = BitVector::from_string("1010");
  BitVector x = a;
  x ^= b;
  EXPECT_EQ(x.to_string(), "0110");
  BitVector y = a;
  y &= b;
  EXPECT_EQ(y.to_string(), "1000");
  BitVector z = a;
  z |= b;
  EXPECT_EQ(z.to_string(), "1110");
}

TEST(BitVector, PushBackGrowsAcrossWords) {
  BitVector v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(i % 3 == 0);
  }
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.popcount(), 34u);
  EXPECT_TRUE(v.get(99));
}

TEST(BitVector, HashDistinguishesValues) {
  BitVector a = BitVector::from_string("1100");
  BitVector b = BitVector::from_string("1010");
  BitVector c = BitVector::from_string("1100");
  EXPECT_EQ(a.hash(), c.hash());
  EXPECT_NE(a.hash(), b.hash());
  // Size participates in the hash.
  EXPECT_NE(BitVector(4).hash(), BitVector(5).hash());
}

TEST(BitVector, FillResetsTail) {
  BitVector v(70);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 70u);
  v.fill(false);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.next_bool(0.2) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.03);
  EXPECT_FALSE(Rng(1).next_bool(0.0));
  EXPECT_TRUE(Rng(1).next_bool(1.0));
}

TEST(Strings, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.4512, 1), "45.1%");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(0), "0");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Table, RendersAlignedGrid) {
  Table t({"name", "count"});
  t.add_row({"alpha", "12"});
  t.add_separator();
  t.add_row({"b", "3,456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3,456"), std::string::npos);
  EXPECT_NE(out.find("+"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

// --- content hashing (common/hash.hpp) --------------------------------------
// Fixed known-answer vectors: these digests are the published FNV-1a/64
// values, so any drift (endianness, prime, basis, byte order) fails here
// before it silently invalidates every cache key.

TEST(Hash, Fnv1aKnownAnswerVectors) {
  EXPECT_EQ(common::fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(common::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(common::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, Fnv1aIsConstexpr) {
  static_assert(common::fnv1a("") == common::kFnvOffsetBasis);
  static_assert(common::fnv1a("a") == 0xaf63dc4c8601ec8cull);
}

TEST(Hash, CombineMatchesByteStream) {
  // hash_combine must equal absorbing the value's 8 little-endian bytes.
  const std::uint64_t value = 0x0123456789abcdefull;
  std::uint64_t expected = common::kFnvOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    expected = common::fnv1a_byte(
        expected, static_cast<std::uint8_t>(value >> (8 * i)));
  }
  EXPECT_EQ(common::hash_combine(common::kFnvOffsetBasis, value), expected);
}

TEST(Hash, CombineIsOrderSensitive) {
  const std::uint64_t ab =
      common::hash_combine(common::hash_combine(common::kFnvOffsetBasis, 1), 2);
  const std::uint64_t ba =
      common::hash_combine(common::hash_combine(common::kFnvOffsetBasis, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Hasher, ChainedFeedersAreDeterministic) {
  const auto digest = [] {
    return common::Hasher()
        .u64(42)
        .size(7)
        .i64(-3)
        .boolean(true)
        .f64(2.5)
        .str("net")
        .bits(BitVector::from_string("0110"))
        .digest();
  };
  EXPECT_EQ(digest(), digest());
}

TEST(Hasher, LengthPrefixPreventsAliasing) {
  // "ab" + "c" must not collide with "a" + "bc".
  const std::uint64_t h1 =
      common::Hasher().str("ab").str("c").digest();
  const std::uint64_t h2 =
      common::Hasher().str("a").str("bc").digest();
  EXPECT_NE(h1, h2);
}

TEST(Hasher, DistinguishesValueTypes) {
  EXPECT_NE(common::Hasher().boolean(true).digest(),
            common::Hasher().u64(1).digest());
  EXPECT_NE(common::Hasher().f64(-0.0).digest(),
            common::Hasher().f64(0.0).digest());
  EXPECT_NE(common::Hasher().bits(BitVector::from_string("00")).digest(),
            common::Hasher().bits(BitVector::from_string("000")).digest());
}

// --- Strict numeric parsing (the checked helpers every line-oriented
// parser in config/serialize and serve/protocol routes numbers through).

TEST(Strings, TryParseU64AcceptsExactTokens) {
  std::uint64_t v = 1;
  EXPECT_TRUE(try_parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(try_parse_u64("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(try_parse_u64("18446744073709551615", v));  // u64 max
  EXPECT_EQ(v, 18446744073709551615ull);
}

TEST(Strings, TryParseU64RejectsNonExactTokens) {
  std::uint64_t v = 0;
  EXPECT_FALSE(try_parse_u64("", v));
  EXPECT_FALSE(try_parse_u64("12abc", v));    // trailing garbage
  EXPECT_FALSE(try_parse_u64("+4", v));       // explicit sign
  EXPECT_FALSE(try_parse_u64("-1", v));       // negative
  EXPECT_FALSE(try_parse_u64(" 7", v));       // leading whitespace
  EXPECT_FALSE(try_parse_u64("7 ", v));       // trailing whitespace
  EXPECT_FALSE(try_parse_u64("0x10", v));     // no hex
  EXPECT_FALSE(try_parse_u64("1e3", v));      // no exponent form
  EXPECT_FALSE(try_parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(try_parse_u64("99999999999999999999", v));  // way over
}

TEST(Strings, TryParseI64Bounds) {
  std::int64_t v = 0;
  EXPECT_TRUE(try_parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(try_parse_i64("9223372036854775807", v));
  EXPECT_TRUE(try_parse_i64("-9223372036854775808", v));
  EXPECT_FALSE(try_parse_i64("9223372036854775808", v));   // overflow
  EXPECT_FALSE(try_parse_i64("-9223372036854775809", v));  // underflow
  EXPECT_FALSE(try_parse_i64("+1", v));
  EXPECT_FALSE(try_parse_i64("1.5", v));
}

TEST(Strings, TryParseDoubleStrictness) {
  double v = 0.0;
  EXPECT_TRUE(try_parse_double("0.5", v));
  EXPECT_EQ(v, 0.5);
  EXPECT_TRUE(try_parse_double("-12.625", v));
  EXPECT_EQ(v, -12.625);
  EXPECT_TRUE(try_parse_double("1e3", v));
  EXPECT_EQ(v, 1000.0);
  EXPECT_FALSE(try_parse_double("", v));
  EXPECT_FALSE(try_parse_double("1.5x", v));
  EXPECT_FALSE(try_parse_double("+1.5", v));
  EXPECT_FALSE(try_parse_double(" 1.5", v));
  EXPECT_FALSE(try_parse_double("nan", v));  // non-finite rejected
  EXPECT_FALSE(try_parse_double("inf", v));
  EXPECT_FALSE(try_parse_double("1e999", v));  // overflows to infinity
}

// --- WorkerPool (the serve daemon's execution substrate).

TEST(WorkerPool, RunsEverySubmittedTaskExactlyOnce) {
  std::atomic<int> runs{0};
  {
    WorkerPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&runs] { runs.fetch_add(1); });
    }
    pool.shutdown();  // drains before joining
    EXPECT_EQ(runs.load(), 64);
    pool.shutdown();  // idempotent
  }
  EXPECT_EQ(runs.load(), 64);
}

TEST(WorkerPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> runs{0};
  WorkerPool pool(1);
  for (int i = 0; i < 16; ++i) {
    pool.submit([&runs] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      runs.fetch_add(1);
    });
  }
  pool.shutdown();
  EXPECT_EQ(runs.load(), 16);
  EXPECT_THROW(pool.submit([] {}), InvalidArgument);
}

TEST(WorkerPool, TasksSubmittedFromTasksStillRun) {
  // A task may enqueue follow-up work (the daemon never does, but the
  // pool's contract should not silently forbid it).
  std::atomic<int> runs{0};
  WorkerPool pool(2);
  std::promise<void> inner_done;
  pool.submit([&] {
    pool.submit([&] {
      runs.fetch_add(1);
      inner_done.set_value();
    });
  });
  inner_done.get_future().wait();
  EXPECT_EQ(runs.load(), 1);
  pool.shutdown();
}

}  // namespace
}  // namespace mcfpga
