// Tests for the stage-based compile pipeline: stage-by-stage execution
// must reproduce the end-to-end compile() result exactly, and parallel
// per-context routing must be bit-identical to serial routing.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/stages.hpp"
#include "route/router.hpp"
#include "workload/circuits.hpp"

namespace mcfpga::core {
namespace {

arch::FabricSpec small_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;
  return spec;
}

netlist::MultiContextNetlist four_context_workload() {
  return workload::pipeline_workload(4, 8);
}

void expect_same_routing(const route::RouteResult& a,
                         const route::RouteResult& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t c = 0; c < a.nets.size(); ++c) {
    ASSERT_EQ(a.nets[c].size(), b.nets[c].size()) << "context " << c;
    for (std::size_t i = 0; i < a.nets[c].size(); ++i) {
      const auto& na = a.nets[c][i];
      const auto& nb = b.nets[c][i];
      EXPECT_EQ(na.name, nb.name);
      EXPECT_EQ(na.source, nb.source);
      ASSERT_EQ(na.paths.size(), nb.paths.size());
      for (std::size_t p = 0; p < na.paths.size(); ++p) {
        EXPECT_EQ(na.paths[p].sink, nb.paths[p].sink);
        EXPECT_EQ(na.paths[p].edges, nb.paths[p].edges);
        EXPECT_EQ(na.paths[p].diamond_count, nb.paths[p].diamond_count);
      }
    }
  }
  ASSERT_EQ(a.switch_patterns.size(), b.switch_patterns.size());
  for (std::size_t s = 0; s < a.switch_patterns.size(); ++s) {
    EXPECT_EQ(a.switch_patterns[s], b.switch_patterns[s]) << "switch " << s;
  }
  ASSERT_EQ(a.context_summary.size(), b.context_summary.size());
  for (std::size_t c = 0; c < a.context_summary.size(); ++c) {
    EXPECT_EQ(a.context_summary[c].nets, b.context_summary[c].nets);
    EXPECT_EQ(a.context_summary[c].wire_nodes_used,
              b.context_summary[c].wire_nodes_used);
    EXPECT_EQ(a.context_summary[c].switches_crossed,
              b.context_summary[c].switches_crossed);
  }
}

void expect_same_bitstream(const config::Bitstream& a,
                           const config::Bitstream& b) {
  ASSERT_EQ(a.num_contexts(), b.num_contexts());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.row(r).name, b.row(r).name) << "row " << r;
    EXPECT_EQ(a.row(r).kind, b.row(r).kind) << "row " << r;
    EXPECT_EQ(a.row(r).pattern, b.row(r).pattern) << "row " << r;
  }
}

TEST(FlowStages, StageByStageMatchesEndToEndCompile) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  const CompileOptions options;

  const CompiledDesign reference = compile(nl, spec, options);

  FlowContext ctx = make_flow_context(nl, spec, options);
  TechMapStage().run(ctx);
  SharingStage().run(ctx);
  PlaneAllocStage().run(ctx);
  ClusterStage().run(ctx);
  PlaceStage().run(ctx);
  RouteStage().run(ctx);
  TimingStage().run(ctx);
  ProgramStage().run(ctx);
  const CompiledDesign manual = finalize_design(std::move(ctx));

  EXPECT_EQ(manual.fabric.width, reference.fabric.width);
  EXPECT_EQ(manual.fabric.height, reference.fabric.height);
  EXPECT_EQ(manual.netlist.total_lut_ops(), reference.netlist.total_lut_ops());
  EXPECT_EQ(manual.planes.slots.size(), reference.planes.slots.size());
  EXPECT_EQ(manual.clusters.size(), reference.clusters.size());
  EXPECT_EQ(manual.slot_cluster, reference.slot_cluster);
  EXPECT_EQ(manual.slot_output, reference.slot_output);
  EXPECT_EQ(manual.placement.cluster_pos, reference.placement.cluster_pos);
  EXPECT_EQ(manual.placement.io_pads, reference.placement.io_pads);
  expect_same_routing(manual.routing, reference.routing);
  expect_same_bitstream(manual.full_bitstream, reference.full_bitstream);
  ASSERT_EQ(manual.context_stats.size(), reference.context_stats.size());
  for (std::size_t c = 0; c < manual.context_stats.size(); ++c) {
    EXPECT_EQ(manual.context_stats[c].nets, reference.context_stats[c].nets);
    EXPECT_EQ(manual.context_stats[c].wire_nodes_used,
              reference.context_stats[c].wire_nodes_used);
    EXPECT_EQ(manual.context_stats[c].switches_crossed,
              reference.context_stats[c].switches_crossed);
    EXPECT_DOUBLE_EQ(manual.context_stats[c].critical_path,
                     reference.context_stats[c].critical_path);
  }
  EXPECT_EQ(manual.input_terminals, reference.input_terminals);
  EXPECT_EQ(manual.output_terminals, reference.output_terminals);
}

TEST(FlowStages, PipelineRecordsOneTimingPerStage) {
  const CompiledDesign d = compile(four_context_workload(), small_spec());
  ASSERT_EQ(d.stage_timings.size(), default_pipeline().size());
  const std::vector<std::string> expected = {
      "tech_map", "sharing", "plane_alloc", "cluster",
      "place",    "route",   "timing",      "program"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(d.stage_timings[i].name, expected[i]);
    EXPECT_GE(d.stage_timings[i].seconds, 0.0);
  }
}

TEST(FlowStages, ContextStatsMatchRouteSummaries) {
  const CompiledDesign d = compile(four_context_workload(), small_spec());
  ASSERT_EQ(d.routing.context_summary.size(), d.context_stats.size());
  for (std::size_t c = 0; c < d.context_stats.size(); ++c) {
    EXPECT_EQ(d.context_stats[c].nets, d.routing.nets[c].size());
    EXPECT_EQ(d.context_stats[c].wire_nodes_used,
              d.routing.context_summary[c].wire_nodes_used);
    EXPECT_EQ(d.context_stats[c].switches_crossed,
              d.routing.context_summary[c].switches_crossed);
  }
}

TEST(FlowStages, ParallelRoutingBitIdenticalToSerial) {
  // Compile the same 4-context workload with a serial router and with a
  // 4-worker router; every routed net, switch pattern, and bitstream row
  // must be bit-for-bit identical.
  const auto nl = four_context_workload();
  const auto spec = small_spec();

  CompileOptions serial;
  serial.router.num_threads = 1;
  CompileOptions parallel;
  parallel.router.num_threads = 4;

  const CompiledDesign ds = compile(nl, spec, serial);
  const CompiledDesign dp = compile(nl, spec, parallel);

  expect_same_routing(ds.routing, dp.routing);
  expect_same_bitstream(ds.full_bitstream, dp.full_bitstream);
  for (std::size_t c = 0; c < ds.context_stats.size(); ++c) {
    EXPECT_DOUBLE_EQ(ds.context_stats[c].critical_path,
                     dp.context_stats[c].critical_path);
  }
}

TEST(FlowStages, PlacerSeedIndependentOfFlowSeed) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  // An explicit placer seed pins the placement: the flow seed must not
  // leak into it.
  CompileOptions a;
  a.seed = 1;
  a.placer.seed = 7;
  CompileOptions b;
  b.seed = 2;
  b.placer.seed = 7;
  const CompiledDesign da = compile(nl, spec, a);
  const CompiledDesign db = compile(nl, spec, b);
  EXPECT_EQ(da.placement.cluster_pos, db.placement.cluster_pos);
  EXPECT_EQ(da.placement.io_pads, db.placement.io_pads);

  // A placer seed left unset inherits the flow seed.
  CompileOptions c;
  c.seed = 7;
  const CompiledDesign dc = compile(nl, spec, c);
  EXPECT_EQ(da.placement.cluster_pos, dc.placement.cluster_pos);
  EXPECT_EQ(da.placement.io_pads, dc.placement.io_pads);
}

TEST(FlowStages, MultiRestartPlacementRecordsPerRestartTimings) {
  CompileOptions options;
  options.placer.num_restarts = 3;
  const CompiledDesign d =
      compile(four_context_workload(), small_spec(), options);
  ASSERT_EQ(d.placement.restart_stats.size(), 3u);
  std::size_t restarts_logged = 0;
  for (const auto& t : d.stage_timings) {
    restarts_logged += t.name.rfind("place.restart", 0) == 0;
  }
  EXPECT_EQ(restarts_logged, 3u);
}

TEST(FlowStages, TimingStageReportsMatchContextStats) {
  const CompiledDesign d = compile(four_context_workload(), small_spec());
  ASSERT_EQ(d.timing_reports.size(), d.context_stats.size());
  for (std::size_t c = 0; c < d.timing_reports.size(); ++c) {
    const auto& r = d.timing_reports[c];
    EXPECT_DOUBLE_EQ(r.critical_path, d.context_stats[c].critical_path);
    EXPECT_GE(r.worst_slack, 0.0);
    EXPECT_GT(r.num_arcs, 0u);
    ASSERT_FALSE(r.critical_nodes.empty());
    EXPECT_DOUBLE_EQ(r.arrival[r.critical_nodes.back()], r.critical_path);
    ASSERT_EQ(r.arrival.size(), r.required.size());
    for (std::size_t n = 0; n < r.arrival.size(); ++n) {
      // Requirements are anchored at the critical path, so no node can be
      // required before it arrives.
      EXPECT_GE(r.required[n] - r.arrival[n], -1e-9);
    }
  }
}

TEST(FlowStages, RouterTimingSpecsInertWhenTimingModeOff) {
  // Passing timing specs to a router whose timing_mode is off must leave
  // the result bit-identical to routing without them (the regression
  // guarantee that timing_mode=off preserves pre-timing behavior).
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  FlowContext ctx = make_flow_context(nl, spec, CompileOptions{});
  TechMapStage().run(ctx);
  SharingStage().run(ctx);
  PlaneAllocStage().run(ctx);
  ClusterStage().run(ctx);
  PlaceStage().run(ctx);
  RouteStage().run(ctx);  // routes with timing_mode off, specs unused
  ASSERT_EQ(ctx.timing_specs.size(), nl.num_contexts());

  const route::Router router(*ctx.graph, ctx.options.router);
  const route::RouteResult with_specs =
      router.route(ctx.nets_per_context, &ctx.timing_specs);
  expect_same_routing(ctx.routing, with_specs);
}

TEST(FlowStages, TimingDrivenCompileDeterministicAcrossWorkerCounts) {
  // Criticality refresh happens inside each context's own negotiation, so
  // timing-driven routing stays bit-identical from serial to parallel.
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  CompileOptions serial;
  serial.router.timing_mode = true;
  serial.placer.timing_mode = true;
  serial.router.num_threads = 1;
  CompileOptions parallel = serial;
  parallel.router.num_threads = 4;

  const CompiledDesign ds = compile(nl, spec, serial);
  const CompiledDesign dp = compile(nl, spec, parallel);
  expect_same_routing(ds.routing, dp.routing);
  expect_same_bitstream(ds.full_bitstream, dp.full_bitstream);
  ASSERT_EQ(ds.timing_reports.size(), dp.timing_reports.size());
  for (std::size_t c = 0; c < ds.timing_reports.size(); ++c) {
    EXPECT_DOUBLE_EQ(ds.timing_reports[c].critical_path,
                     dp.timing_reports[c].critical_path);
  }
}

TEST(FlowStages, ParallelRoutingBitIdenticalAcrossWorkerCounts) {
  // Drive the Router directly (heterogeneous contexts) at several worker
  // counts, including more workers than contexts.
  netlist::MultiContextNetlist mixed(4);
  mixed.context(0) = workload::ripple_carry_adder(3);
  mixed.context(1) = workload::comparator(4);
  mixed.context(2) = workload::parity_tree(6);
  mixed.context(3) = workload::ripple_carry_adder(2);

  CompileOptions base;
  base.router.num_threads = 1;
  const CompiledDesign reference = compile(mixed, small_spec(), base);
  for (const std::size_t workers : {2u, 3u, 8u}) {
    CompileOptions options;
    options.router.num_threads = workers;
    const CompiledDesign d = compile(mixed, small_spec(), options);
    expect_same_routing(reference.routing, d.routing);
  }
}

}  // namespace
}  // namespace mcfpga::core
