// Unit tests for the fabric architecture: conventional switches (Fig. 2),
// switch blocks, diamond switches (Fig. 11), and the routing graph
// (Figs. 6, 10).
#include <gtest/gtest.h>

#include <set>

#include "arch/conventional_switch.hpp"
#include "arch/diamond_switch.hpp"
#include "arch/fabric_spec.hpp"
#include "arch/routing_graph.hpp"
#include "arch/switch_block.hpp"
#include "common/error.hpp"

namespace mcfpga::arch {
namespace {

using config::ContextPattern;

TEST(ConventionalSwitch, StoresOneBitPerContext) {
  ConventionalMultiContextSwitch sw(4);
  EXPECT_EQ(sw.memory_bits(), 4u);
  EXPECT_EQ(sw.mux_stages(), 3u);
  sw.program(ContextPattern::from_string("0110"));
  EXPECT_FALSE(sw.is_on(0));
  EXPECT_TRUE(sw.is_on(1));
  EXPECT_TRUE(sw.is_on(2));
  EXPECT_FALSE(sw.is_on(3));
}

TEST(ConventionalSwitch, Validation) {
  ConventionalMultiContextSwitch sw(4);
  EXPECT_THROW(sw.program(ContextPattern(8)), InvalidArgument);
  EXPECT_THROW(sw.is_on(4), InvalidArgument);
}

TEST(FabricSpec, ValidateChecksInvariants) {
  FabricSpec spec;
  EXPECT_NO_THROW(spec.validate());
  FabricSpec bad = spec;
  bad.num_contexts = 3;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = spec;
  bad.double_length_tracks = 3;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = spec;
  bad.logic_block.num_contexts = 8;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = spec;
  bad.channel_width = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(FabricSpec, DescribeMentionsKeyParameters) {
  FabricSpec spec;
  const std::string s = spec.describe();
  EXPECT_NE(s.find("4x4"), std::string::npos);
  EXPECT_NE(s.find("4 contexts"), std::string::npos);
  EXPECT_NE(s.find("rcm"), std::string::npos);
}

TEST(SwitchBlock, ConventionalAndRcmAgree) {
  SwitchBlock conv("sb", 5, 4, SwitchImpl::kConventional);
  SwitchBlock rcm("sb", 5, 4, SwitchImpl::kRcm);
  const char* patterns[] = {"0000", "0101", "1000", "1111", "0110"};
  for (std::size_t i = 0; i < 5; ++i) {
    conv.program(i, ContextPattern::from_string(patterns[i]));
    rcm.program(i, ContextPattern::from_string(patterns[i]));
  }
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(conv.is_on(i, c), rcm.is_on(i, c)) << i << "," << c;
    }
  }
  EXPECT_TRUE(rcm.verify_rcm_equivalence());
}

TEST(SwitchBlock, ReprogramInvalidatesDecoder) {
  SwitchBlock sb("sb", 1, 4, SwitchImpl::kRcm);
  sb.program(0, ContextPattern::from_string("1111"));
  EXPECT_TRUE(sb.is_on(0, 0));
  sb.program(0, ContextPattern::from_string("0000"));
  EXPECT_FALSE(sb.is_on(0, 0));
}

TEST(SwitchBlock, DecoderAccessRequiresRcm) {
  SwitchBlock conv("sb", 1, 4, SwitchImpl::kConventional);
  EXPECT_THROW(conv.decoder(), InvalidArgument);
}

TEST(SwitchBlock, BitstreamExport) {
  SwitchBlock sb("blk", 3, 4, SwitchImpl::kRcm);
  sb.program(1, ContextPattern::from_string("0101"));
  const auto bs = sb.to_bitstream();
  ASSERT_EQ(bs.num_rows(), 3u);
  EXPECT_EQ(bs.row(1).name, "blk.p1");
  EXPECT_EQ(bs.row(1).pattern.to_string(), "0101");
}

TEST(DiamondSwitch, PairIndexing) {
  EXPECT_EQ(DiamondSwitch::pair_index(Direction::kNorth, Direction::kEast),
            DiamondSwitch::pair_index(Direction::kEast, Direction::kNorth));
  // All six pairs are distinct.
  std::set<std::size_t> seen;
  const Direction dirs[] = {Direction::kNorth, Direction::kEast,
                            Direction::kSouth, Direction::kWest};
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      seen.insert(DiamondSwitch::pair_index(dirs[a], dirs[b]));
    }
  }
  EXPECT_EQ(seen.size(), DiamondSwitch::kNumPairs);
  EXPECT_THROW(DiamondSwitch::pair_index(Direction::kNorth, Direction::kNorth),
               InvalidArgument);
}

TEST(DiamondSwitch, ProgramAndQuery) {
  DiamondSwitch dia("d", 4);
  dia.program(Direction::kNorth, Direction::kSouth,
              ContextPattern::from_string("0011"));
  EXPECT_TRUE(dia.is_connected(Direction::kSouth, Direction::kNorth, 0));
  EXPECT_FALSE(dia.is_connected(Direction::kSouth, Direction::kNorth, 2));
  EXPECT_FALSE(dia.is_connected(Direction::kNorth, Direction::kEast, 0));
  const auto bs = dia.to_bitstream();
  EXPECT_EQ(bs.num_rows(), DiamondSwitch::kNumPairs);
}

// --- Routing graph ----------------------------------------------------------

FabricSpec small_spec() {
  FabricSpec spec;
  spec.width = 3;
  spec.height = 3;
  spec.channel_width = 2;
  spec.double_length_tracks = 2;
  return spec;
}

TEST(RoutingGraph, NodeAndSwitchPopulation) {
  const RoutingGraph g(small_spec());
  EXPECT_GT(g.num_nodes(), 0u);
  EXPECT_GT(g.num_switches(), 0u);
  EXPECT_EQ(g.num_edges(), 2 * g.num_switches());
  EXPECT_GT(g.count_switches(SwitchOwner::kSwitchBlock), 0u);
  EXPECT_GT(g.count_switches(SwitchOwner::kConnectionBlock), 0u);
  EXPECT_GT(g.count_switches(SwitchOwner::kDiamond), 0u);
}

TEST(RoutingGraph, NoDoubleLengthMeansNoDiamonds) {
  FabricSpec spec = small_spec();
  spec.double_length_tracks = 0;
  const RoutingGraph g(spec);
  EXPECT_EQ(g.count_switches(SwitchOwner::kDiamond), 0u);
}

TEST(RoutingGraph, PinLookups) {
  const RoutingGraph g(small_spec());
  const NodeId out = g.out_pin(1, 2, 0);
  EXPECT_EQ(g.node(out).kind, NodeKind::kOutPin);
  EXPECT_EQ(g.node(out).x, 1);
  EXPECT_EQ(g.node(out).y, 2);
  const NodeId in = g.in_pin(0, 0, 3);
  EXPECT_EQ(g.node(in).kind, NodeKind::kInPin);
  EXPECT_THROW(g.out_pin(9, 0, 0), InvalidArgument);
  EXPECT_THROW(g.in_pin(0, 0, 99), InvalidArgument);
}

TEST(RoutingGraph, PadsOnPerimeterOnly) {
  const RoutingGraph g(small_spec());
  EXPECT_GT(g.num_pads(), 0u);
  for (std::size_t p = 0; p < g.num_pads(); ++p) {
    const auto& n = g.node(g.pad(p));
    EXPECT_EQ(n.kind, NodeKind::kPad);
    const bool perimeter = n.x == 0 || n.y == 0 || n.x == 2 || n.y == 2;
    EXPECT_TRUE(perimeter) << n.name;
  }
}

TEST(RoutingGraph, EveryEdgeHasAValidSwitch) {
  const RoutingGraph g(small_spec());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(static_cast<EdgeId>(e));
    EXPECT_GE(edge.sw, 0);
    EXPECT_LT(static_cast<std::size_t>(edge.sw), g.num_switches());
    const auto& sw = g.rr_switch(edge.sw);
    const bool forward = sw.forward == static_cast<EdgeId>(e);
    const bool backward = sw.backward == static_cast<EdgeId>(e);
    EXPECT_TRUE(forward || backward);
  }
}

TEST(RoutingGraph, FanoutConsistency) {
  const RoutingGraph g(small_spec());
  std::size_t total = 0;
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    for (const EdgeId e : g.fanout(static_cast<NodeId>(n))) {
      EXPECT_EQ(g.edge(e).from, static_cast<NodeId>(n));
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(RoutingGraph, DoubleLengthWiresSpanTwoCells) {
  const RoutingGraph g(small_spec());
  bool found = false;
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    const auto& node = g.node(static_cast<NodeId>(n));
    if (node.kind == NodeKind::kWire && node.length == 2) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RoutingGraph, BlockSwitchCountsSumToTotals) {
  const RoutingGraph g(small_spec());
  for (const auto owner : {SwitchOwner::kSwitchBlock,
                           SwitchOwner::kConnectionBlock,
                           SwitchOwner::kDiamond}) {
    std::size_t sum = 0;
    for (std::size_t y = 0; y < 3; ++y) {
      for (std::size_t x = 0; x < 3; ++x) {
        sum += g.switches_in_block(x, y, owner);
      }
    }
    EXPECT_EQ(sum, g.count_switches(owner)) << to_string(owner);
  }
}

TEST(RoutingGraph, SingleCellFabric) {
  FabricSpec spec;
  spec.width = 1;
  spec.height = 1;
  spec.channel_width = 1;
  spec.double_length_tracks = 0;
  const RoutingGraph g(spec);
  // No wires, no switch-block switches; pads exist but have nothing to
  // connect through (degenerate but must not crash).
  EXPECT_EQ(g.count_switches(SwitchOwner::kSwitchBlock), 0u);
}

}  // namespace
}  // namespace mcfpga::arch
