// Tests for the timing-closure feedback loop (core/closure.hpp): a
// single-iteration closure pipeline is fingerprint-identical to the plain
// eight-stage pipeline, multi-iteration closure is deterministic across
// router/placer worker counts and restart counts, the loop exits early
// once worst slack stops improving, and — property-tested on random
// workloads — closure never finishes with worse worst slack than the
// one-shot flow.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/closure.hpp"
#include "core/flow.hpp"
#include "core/stages.hpp"
#include "place/placer.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga::core {
namespace {

arch::FabricSpec small_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;
  return spec;
}

netlist::MultiContextNetlist four_context_workload() {
  return workload::pipeline_workload(4, 8);
}

void expect_same_routing(const route::RouteResult& a,
                         const route::RouteResult& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t c = 0; c < a.nets.size(); ++c) {
    ASSERT_EQ(a.nets[c].size(), b.nets[c].size()) << "context " << c;
    for (std::size_t i = 0; i < a.nets[c].size(); ++i) {
      const auto& na = a.nets[c][i];
      const auto& nb = b.nets[c][i];
      EXPECT_EQ(na.source, nb.source);
      ASSERT_EQ(na.paths.size(), nb.paths.size());
      for (std::size_t p = 0; p < na.paths.size(); ++p) {
        EXPECT_EQ(na.paths[p].sink, nb.paths[p].sink);
        EXPECT_EQ(na.paths[p].edges, nb.paths[p].edges);
      }
    }
  }
  ASSERT_EQ(a.switch_patterns.size(), b.switch_patterns.size());
  for (std::size_t s = 0; s < a.switch_patterns.size(); ++s) {
    EXPECT_EQ(a.switch_patterns[s], b.switch_patterns[s]) << "switch " << s;
  }
}

void expect_same_bitstream(const config::Bitstream& a,
                           const config::Bitstream& b) {
  ASSERT_EQ(a.num_contexts(), b.num_contexts());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.row(r).name, b.row(r).name) << "row " << r;
    EXPECT_EQ(a.row(r).pattern, b.row(r).pattern) << "row " << r;
  }
}

void expect_same_design(const CompiledDesign& a, const CompiledDesign& b) {
  EXPECT_EQ(a.placement.cluster_pos, b.placement.cluster_pos);
  EXPECT_EQ(a.placement.io_pads, b.placement.io_pads);
  expect_same_routing(a.routing, b.routing);
  expect_same_bitstream(a.full_bitstream, b.full_bitstream);
}

double worst_critical_path(const CompiledDesign& d) {
  double worst = 0.0;
  for (const auto& s : d.context_stats) {
    worst = std::max(worst, s.critical_path);
  }
  return worst;
}

CompiledDesign compile_via(const std::vector<const Stage*>& stages,
                           const netlist::MultiContextNetlist& nl,
                           const arch::FabricSpec& spec,
                           const CompileOptions& options) {
  FlowContext ctx = make_flow_context(nl, spec, options);
  run_pipeline(ctx, stages);
  return finalize_design(std::move(ctx));
}

TEST(ClosureLoop, SingleIterationMatchesPlainPipeline) {
  // The closure pipeline at closure_iterations == 1 IS the plain pipeline:
  // placement, routed edges and the full bitstream must be bit-identical,
  // with both timing modes off and on.
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  for (const bool timing_on : {false, true}) {
    CompileOptions options;
    options.placer.timing_mode = timing_on;
    options.router.timing_mode = timing_on;
    const CompiledDesign plain =
        compile_via(default_pipeline(), nl, spec, options);
    const CompiledDesign closed =
        compile_via(closure_pipeline(), nl, spec, options);
    expect_same_design(plain, closed);

    // The loop still records its single iteration, scored at slack 0.
    ASSERT_EQ(closed.closure_stats.size(), 1u);
    EXPECT_EQ(closed.closure_stats[0].iteration, 1u);
    EXPECT_DOUBLE_EQ(closed.closure_stats[0].worst_slack, 0.0);
    EXPECT_DOUBLE_EQ(closed.closure_stats[0].critical_path,
                     worst_critical_path(closed));
    EXPECT_GT(closed.closure_stats[0].wirelength, 0u);
  }
}

TEST(ClosureLoop, CompileDispatchesOnClosureIterations) {
  // compile() with closure_iterations >= 2 runs the closure pipeline (the
  // "closure" stage timing replaces place/route/timing), and the recorded
  // iterations never exceed the budget.
  CompileOptions options;
  options.closure_iterations = 3;
  const CompiledDesign d =
      compile(four_context_workload(), small_spec(), options);
  ASSERT_FALSE(d.closure_stats.empty());
  EXPECT_LE(d.closure_stats.size(), 3u);
  bool saw_closure_stage = false;
  for (const auto& t : d.stage_timings) {
    saw_closure_stage |= t.name == "closure";
    EXPECT_NE(t.name, "place");
    EXPECT_NE(t.name, "route");
  }
  EXPECT_TRUE(saw_closure_stage);
  // Per-iteration sub-timings parallel the stats.
  std::size_t iter_timings = 0;
  for (const auto& t : d.stage_timings) {
    iter_timings += t.name.rfind("closure.iter", 0) == 0;
  }
  EXPECT_EQ(iter_timings, d.closure_stats.size());
}

TEST(ClosureLoop, DeterministicAcrossWorkerAndRestartCounts) {
  // The loop's re-place and re-route inherit the flow's determinism
  // guarantees: any router/placer worker count, and multi-restart
  // re-anneals, give bit-identical closed designs.
  const auto nl = four_context_workload();
  const auto spec = small_spec();

  CompileOptions base;
  base.closure_iterations = 3;
  base.placer.timing_mode = true;
  base.router.timing_mode = true;
  base.placer.num_restarts = 2;
  base.placer.num_threads = 1;
  base.router.num_threads = 1;
  const CompiledDesign reference = compile(nl, spec, base);
  ASSERT_FALSE(reference.closure_stats.empty());

  for (const std::size_t router_threads : {2u, 4u}) {
    for (const std::size_t placer_threads : {2u, 3u}) {
      CompileOptions options = base;
      options.router.num_threads = router_threads;
      options.placer.num_threads = placer_threads;
      const CompiledDesign d = compile(nl, spec, options);
      expect_same_design(reference, d);
      ASSERT_EQ(d.closure_stats.size(), reference.closure_stats.size());
      for (std::size_t i = 0; i < d.closure_stats.size(); ++i) {
        EXPECT_DOUBLE_EQ(d.closure_stats[i].worst_slack,
                         reference.closure_stats[i].worst_slack);
        EXPECT_EQ(d.closure_stats[i].wirelength,
                  reference.closure_stats[i].wirelength);
      }
    }
  }
}

TEST(ClosureLoop, EarlyExitWhenSlackStopsImproving) {
  // With a tolerance no iteration can beat, the loop must stop right
  // after the first refine attempt instead of burning the full budget.
  CompileOptions options;
  options.closure_iterations = 6;
  options.closure_slack_tolerance = 1e9;
  const CompiledDesign d =
      compile(four_context_workload(), small_spec(), options);
  ASSERT_EQ(d.closure_stats.size(), 2u);
  EXPECT_EQ(d.closure_stats[0].iteration, 1u);
  EXPECT_EQ(d.closure_stats[1].iteration, 2u);
}

TEST(ClosureLoop, FinalDesignIsTheBestRecordedIteration) {
  // The loop restores the best-worst-slack iteration, so the final
  // critical path equals the minimum over all recorded iterations.
  CompileOptions options;
  options.closure_iterations = 4;
  options.placer.timing_mode = true;
  options.router.timing_mode = true;
  const CompiledDesign d =
      compile(four_context_workload(), small_spec(), options);
  ASSERT_FALSE(d.closure_stats.empty());
  double best = d.closure_stats[0].critical_path;
  for (const auto& s : d.closure_stats) {
    best = std::min(best, s.critical_path);
  }
  EXPECT_DOUBLE_EQ(worst_critical_path(d), best);
}

TEST(ClosureLoop, NeverWorseThanOneShotOnRandomWorkloads) {
  // Property: over random multi-context workloads, the closed design's
  // worst critical path never exceeds the one-shot flow's beyond the
  // slack tolerance (here 0 — iteration 1 of the loop IS the one-shot
  // flow, and the loop keeps its best iteration).
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    workload::RandomMultiContextParams params;
    params.base.num_inputs = 6;
    params.base.num_nodes = 16;
    params.base.max_arity = 3;
    params.base.seed = seed;
    params.share_fraction = 0.4;
    const auto nl = workload::random_multi_context(params);

    CompileOptions one_shot;
    one_shot.placer.timing_mode = true;
    one_shot.router.timing_mode = true;
    CompileOptions closed = one_shot;
    closed.closure_iterations = 3;

    const double p_one = worst_critical_path(
        compile(nl, small_spec(), one_shot));
    const CompiledDesign d = compile(nl, small_spec(), closed);
    EXPECT_LE(worst_critical_path(d), p_one + 1e-9) << "seed " << seed;
    // Iteration 1 inside the loop is the one-shot flow, bit for bit.
    ASSERT_FALSE(d.closure_stats.empty());
    EXPECT_DOUBLE_EQ(d.closure_stats[0].critical_path, p_one);
  }
}

TEST(ClosureLoop, AdaptiveRefinePolicyNeverWorseAndDeterministic) {
  // closure_adaptive_refine derives the refine temperature and sweep
  // budget from the post-route slack distribution instead of the fixed
  // constants.  It must keep every loop guarantee: deterministic for a
  // fixed seed, and never worse than the one-shot flow (iteration 1 is
  // still the budget anchor and the best iteration still wins).
  for (const std::uint64_t seed : {11u, 47u}) {
    workload::RandomMultiContextParams params;
    params.base.num_inputs = 6;
    params.base.num_nodes = 16;
    params.base.max_arity = 3;
    params.base.seed = seed;
    params.share_fraction = 0.4;
    const auto nl = workload::random_multi_context(params);

    CompileOptions adaptive;
    adaptive.placer.timing_mode = true;
    adaptive.router.timing_mode = true;
    adaptive.closure_iterations = 3;
    adaptive.closure_adaptive_refine = true;
    const CompiledDesign a = compile(nl, small_spec(), adaptive);
    const CompiledDesign b = compile(nl, small_spec(), adaptive);
    expect_same_design(a, b);

    CompileOptions one_shot = adaptive;
    one_shot.closure_iterations = 1;
    const double p_one =
        worst_critical_path(compile(nl, small_spec(), one_shot));
    EXPECT_LE(worst_critical_path(a), p_one + 1e-9) << "seed " << seed;
    ASSERT_FALSE(a.closure_stats.empty());
    EXPECT_DOUBLE_EQ(a.closure_stats[0].critical_path, p_one);
  }
}

TEST(ClosureLoop, RejectsBadClosureOptions) {
  const auto nl = four_context_workload();
  CompileOptions options;
  options.closure_iterations = 0;
  EXPECT_THROW(compile(nl, small_spec(), options), InvalidArgument);
  options = {};
  options.closure_slack_tolerance = -1.0;
  EXPECT_THROW(compile(nl, small_spec(), options), InvalidArgument);
}

TEST(ClosureLoop, RoutedTreesStaySingleDrivenUnderUpstreamDelaySeeding) {
  // Timing-driven expansion seeds reused tree wire at its upstream delay;
  // an aggressive criticality-exponent ramp makes the congestion share of
  // the cost tiny, which is exactly the regime where relaxing an
  // already-in-tree node below its seed would back-trace a second switch
  // into it.  Every node of every routed net must keep exactly one
  // driving edge per context.
  for (std::uint64_t seed : {11u, 29u}) {
    workload::RandomMultiContextParams params;
    params.base.num_inputs = 6;
    params.base.num_nodes = 16;
    params.base.max_arity = 3;
    params.base.seed = seed;
    params.share_fraction = 0.4;
    CompileOptions options;
    options.placer.timing_mode = true;
    options.router.timing_mode = true;
    options.router.criticality_exponent_schedule = {1.0, 1.0, 8.0};
    options.closure_iterations = 3;
    const CompiledDesign d =
        compile(workload::random_multi_context(params), small_spec(),
                options);
    const arch::RoutingGraph graph(d.fabric);
    for (std::size_t c = 0; c < d.routing.nets.size(); ++c) {
      for (const auto& net : d.routing.nets[c]) {
        std::map<arch::NodeId, arch::EdgeId> driver_of;
        for (const auto& path : net.paths) {
          for (const arch::EdgeId e : path.edges) {
            const arch::NodeId to = graph.edge(e).to;
            const auto [it, inserted] = driver_of.emplace(to, e);
            EXPECT_TRUE(inserted || it->second == e)
                << "node " << to << " driven by two switches (context " << c
                << ", net " << net.name << ")";
          }
        }
      }
    }
  }
}

TEST(PlacerWarmStart, DeterministicAndValidated) {
  // The closure loop's re-place warm-starts the anneal; the warm start
  // must be deterministic and reject placements that do not match the
  // problem.
  const arch::RoutingGraph graph(small_spec());
  place::PlacementProblem prob;
  prob.num_clusters = 6;
  prob.num_io_terminals = 2;
  for (std::size_t i = 0; i + 1 < prob.num_clusters; ++i) {
    place::PlacementNet net;
    net.driver = place::Terminal::cluster(i);
    net.sinks = {place::Terminal::cluster(i + 1)};
    prob.nets.push_back(net);
  }
  place::PlacerOptions options;
  options.seed = 5;
  const place::Placement cold = place::place(prob, graph, options);

  place::PlacerOptions refine = options;
  refine.sweeps = 8;
  refine.initial_temperature_factor = 0.02;
  const place::Placement warm_a = place::place(prob, graph, refine, &cold);
  const place::Placement warm_b = place::place(prob, graph, refine, &cold);
  EXPECT_EQ(warm_a.cluster_pos, warm_b.cluster_pos);
  EXPECT_EQ(warm_a.io_pads, warm_b.io_pads);
  EXPECT_DOUBLE_EQ(warm_a.cost, warm_b.cost);

  // Every cluster still sits on a unique cell, every terminal on a
  // unique pad.
  std::vector<std::pair<std::size_t, std::size_t>> cells = warm_a.cluster_pos;
  std::sort(cells.begin(), cells.end());
  EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end());
  std::vector<std::size_t> pads = warm_a.io_pads;
  std::sort(pads.begin(), pads.end());
  EXPECT_EQ(std::adjacent_find(pads.begin(), pads.end()), pads.end());

  place::Placement mismatched = cold;
  mismatched.cluster_pos.pop_back();
  EXPECT_THROW(place::place(prob, graph, refine, &mismatched),
               InvalidArgument);
}

}  // namespace
}  // namespace mcfpga::core
