// Tests for the compile daemon (src/serve/): the session FSM transition
// table (every event in every state), the wire protocol codecs including
// strict-numeric rejection with payload line numbers, and the daemon's
// serving contracts — determinism (daemon replies byte-identical to
// direct CompileService compiles, repeated and concurrent), cache hits on
// repeat jobs, per-stage progress streaming, delta recompiles via base
// jobs, cooperative cancellation, deadline budgets, and clean teardown.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "cache/incremental.hpp"
#include "common/error.hpp"
#include "config/serialize.hpp"
#include "netlist/dfg.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "workload/circuits.hpp"
#include "workload/edits.hpp"

namespace mcfpga::serve {
namespace {

arch::FabricSpec small_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;
  return spec;
}

netlist::MultiContextNetlist small_workload() {
  return workload::pipeline_workload(4, 8);
}

std::size_t pick_lut_node(const netlist::MultiContextNetlist& nl) {
  const netlist::Dfg& dfg = nl.context(0);
  for (std::size_t i = 2; i < dfg.num_nodes(); ++i) {
    if (dfg.node(static_cast<netlist::NodeRef>(i)).type ==
        netlist::NodeType::kLutOp) {
      return i;
    }
  }
  ADD_FAILURE() << "workload has no LUT node";
  return 0;
}

// ---------------------------------------------------------------------------
// Session FSM: the full transition table, every event in every state.

constexpr SessionState kAllStates[] = {
    SessionState::kIdle,      SessionState::kQueued,
    SessionState::kRunning,   SessionState::kStreaming,
    SessionState::kDone,      SessionState::kCancelled,
    SessionState::kFailed,
};
constexpr SessionEvent kAllEvents[] = {
    SessionEvent::kSubmit, SessionEvent::kStart,    SessionEvent::kProgress,
    SessionEvent::kFinish, SessionEvent::kCancel,   SessionEvent::kDeadline,
    SessionEvent::kFail,
};

/// Drives a fresh FSM into `state` through accepted transitions only.
SessionFsm fsm_at(SessionState state) {
  SessionFsm fsm;
  const auto step = [&](SessionEvent e) {
    ASSERT_TRUE(fsm.handle(e).accepted);
  };
  switch (state) {
    case SessionState::kIdle:
      break;
    case SessionState::kQueued:
      step(SessionEvent::kSubmit);
      break;
    case SessionState::kRunning:
      step(SessionEvent::kSubmit);
      step(SessionEvent::kStart);
      break;
    case SessionState::kStreaming:
      step(SessionEvent::kSubmit);
      step(SessionEvent::kStart);
      step(SessionEvent::kProgress);
      break;
    case SessionState::kDone:
      step(SessionEvent::kSubmit);
      step(SessionEvent::kStart);
      step(SessionEvent::kFinish);
      break;
    case SessionState::kCancelled:
      step(SessionEvent::kSubmit);
      step(SessionEvent::kCancel);
      break;
    case SessionState::kFailed:
      step(SessionEvent::kSubmit);
      step(SessionEvent::kFail);
      break;
  }
  EXPECT_EQ(fsm.state(), state);
  return fsm;
}

/// The expected target state, or `from` itself when the event must be
/// rejected — the single source of truth the exhaustive test checks.
SessionState expected_target(SessionState from, SessionEvent event,
                             bool& accepted) {
  accepted = true;
  switch (from) {
    case SessionState::kIdle:
      if (event == SessionEvent::kSubmit) return SessionState::kQueued;
      break;
    case SessionState::kQueued:
      switch (event) {
        case SessionEvent::kStart:
          return SessionState::kRunning;
        case SessionEvent::kCancel:
          return SessionState::kCancelled;
        case SessionEvent::kDeadline:
        case SessionEvent::kFail:
          return SessionState::kFailed;
        default:
          break;
      }
      break;
    case SessionState::kRunning:
    case SessionState::kStreaming:
      switch (event) {
        case SessionEvent::kProgress:
          return SessionState::kStreaming;
        case SessionEvent::kFinish:
          return SessionState::kDone;
        case SessionEvent::kCancel:
          return SessionState::kCancelled;
        case SessionEvent::kDeadline:
        case SessionEvent::kFail:
          return SessionState::kFailed;
        default:
          break;
      }
      break;
    case SessionState::kDone:
    case SessionState::kCancelled:
    case SessionState::kFailed:
      break;  // terminal: everything rejected
  }
  accepted = false;
  return from;
}

TEST(SessionFsm, ExhaustiveTransitionTable) {
  for (const SessionState from : kAllStates) {
    for (const SessionEvent event : kAllEvents) {
      SessionFsm fsm = fsm_at(from);
      bool want_accept = false;
      const SessionState want_to = expected_target(from, event, want_accept);
      const FsmResult r = fsm.handle(event);
      EXPECT_EQ(r.accepted, want_accept)
          << to_string(event) << " in " << to_string(from);
      EXPECT_EQ(r.from, from);
      EXPECT_EQ(r.to, want_to);
      EXPECT_EQ(fsm.state(), want_to);
      if (want_accept) {
        EXPECT_TRUE(r.reject_reason.empty());
      } else {
        // Rejections explain themselves (event + state by name).
        EXPECT_NE(r.reject_reason.find(to_string(event)), std::string::npos);
        EXPECT_NE(r.reject_reason.find(to_string(from)), std::string::npos);
      }
    }
  }
}

TEST(SessionFsm, TerminalPredicate) {
  for (const SessionState s : kAllStates) {
    const bool want = s == SessionState::kDone ||
                      s == SessionState::kCancelled ||
                      s == SessionState::kFailed;
    EXPECT_EQ(fsm_at(s).terminal(), want) << to_string(s);
  }
}

// ---------------------------------------------------------------------------
// Protocol codecs.

CompileRequest sample_request() {
  core::CompileOptions options;
  options.seed = 42;
  options.placer.timing_mode = true;
  options.router.timing_mode = true;
  options.router.queue_mode = route::QueueMode::kBucket;
  options.router.cross_context_mode = route::CrossContextMode::kNegotiated;
  options.placer.num_threads = 3;
  options.router.num_threads = 2;
  CompileRequest request = ServeClient::make_request(
      "job-a", small_workload(), small_spec(), options, 1500, "base-job");
  return request;
}

TEST(ServeProtocol, RequestRoundTrip) {
  const CompileRequest request = sample_request();
  const Frame frame = frame_from_bytes(request_frame(request));
  ASSERT_EQ(frame.type, FrameType::kRequest);
  const CompileRequest back = decode_request(frame.payload);
  EXPECT_EQ(back.job, request.job);
  EXPECT_EQ(back.deadline_ms, request.deadline_ms);
  EXPECT_EQ(back.base_job, request.base_job);
  EXPECT_EQ(back.fabric.width, request.fabric.width);
  EXPECT_EQ(back.fabric.height, request.fabric.height);
  EXPECT_EQ(back.fabric.num_contexts, request.fabric.num_contexts);
  EXPECT_EQ(back.fabric.channel_width, request.fabric.channel_width);
  EXPECT_EQ(back.fabric.double_length_tracks,
            request.fabric.double_length_tracks);
  EXPECT_EQ(back.fabric.switch_impl, request.fabric.switch_impl);
  EXPECT_EQ(back.options.seed, request.options.seed);
  EXPECT_EQ(back.options.placer.timing_mode,
            request.options.placer.timing_mode);
  EXPECT_EQ(back.options.router.timing_mode,
            request.options.router.timing_mode);
  EXPECT_EQ(back.options.router.queue_mode,
            request.options.router.queue_mode);
  EXPECT_EQ(back.options.router.cross_context_mode,
            request.options.router.cross_context_mode);
  EXPECT_EQ(back.options.placer.num_threads,
            request.options.placer.num_threads);
  EXPECT_EQ(back.options.router.num_threads,
            request.options.router.num_threads);
  EXPECT_EQ(back.netlist_text, request.netlist_text);
  // The embedded netlist text survives framing byte-for-byte.
  EXPECT_EQ(config::netlist_to_text(
                config::netlist_from_text(back.netlist_text)),
            request.netlist_text);
}

TEST(ServeProtocol, ReplyAndProgressRoundTrip) {
  CompileReply reply;
  reply.job = "job-a";
  reply.status = CompileReply::Status::kDone;
  reply.cache_hits = 8;
  reply.cache_misses = 3;
  reply.delta = true;
  reply.delta_fallback = "diff exceeds threshold";
  reply.critical_path = 12.625;
  reply.bitstream_text = "mcfpga-bitstream v1\ncontexts 1\nrows 0\n";
  const Frame frame = frame_from_bytes(reply_frame(reply));
  ASSERT_EQ(frame.type, FrameType::kReply);
  const CompileReply back = decode_reply(frame.payload);
  EXPECT_EQ(back.job, reply.job);
  EXPECT_EQ(back.status, reply.status);
  EXPECT_EQ(back.cache_hits, reply.cache_hits);
  EXPECT_EQ(back.cache_misses, reply.cache_misses);
  EXPECT_EQ(back.delta, reply.delta);
  EXPECT_EQ(back.delta_fallback, reply.delta_fallback);
  EXPECT_EQ(back.critical_path, reply.critical_path);
  EXPECT_EQ(back.bitstream_text, reply.bitstream_text);

  ProgressEvent event;
  event.job = "job-a";
  event.stage = "route";
  event.seconds = 0.03125;
  const Frame pf = frame_from_bytes(progress_frame(event));
  ASSERT_EQ(pf.type, FrameType::kProgress);
  const ProgressEvent pe = decode_progress(pf.payload);
  EXPECT_EQ(pe.job, event.job);
  EXPECT_EQ(pe.stage, event.stage);
  EXPECT_EQ(pe.seconds, event.seconds);
}

TEST(ServeProtocol, FrameRejectsCorruption) {
  const std::string good = progress_frame(
      ProgressEvent{"job", "place", 0.5});
  {
    std::string bad = good;
    bad[0] = 'X';  // magic
    EXPECT_THROW(frame_from_bytes(bad), InvalidArgument);
  }
  {
    std::string bad = good;
    bad[4] = 9;  // version
    EXPECT_THROW(frame_from_bytes(bad), InvalidArgument);
  }
  {
    std::string bad = good;
    bad[5] = 7;  // frame type
    EXPECT_THROW(frame_from_bytes(bad), InvalidArgument);
  }
  {
    std::string bad = good.substr(0, good.size() - 1);  // short payload
    EXPECT_THROW(frame_from_bytes(bad), InvalidArgument);
  }
  EXPECT_THROW(frame_from_bytes(std::string("MCF")), InvalidArgument);
}

/// Replaces the first occurrence of `from` in the encoded request payload
/// and expects decode_request to throw with the payload line number.
void expect_request_rejected(const std::string& from, const std::string& to,
                             const std::string& line_tag) {
  std::string payload = encode_request(sample_request());
  const std::size_t pos = payload.find(from);
  ASSERT_NE(pos, std::string::npos) << from;
  payload.replace(pos, from.size(), to);
  try {
    decode_request(payload);
    FAIL() << "accepted payload with '" << to << "'";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, StrictNumericRejection) {
  // Trailing garbage, explicit '+', overflow: all rejected with the
  // payload line number (the same checked parsers as config/serialize).
  expect_request_rejected("deadline_ms 1500", "deadline_ms 12abc", "line 3");
  expect_request_rejected("deadline_ms 1500", "deadline_ms +4", "line 3");
  expect_request_rejected("deadline_ms 1500",
                          "deadline_ms 99999999999999999999", "line 3");
  expect_request_rejected("fabric 4 4", "fabric 4x 4", "line 5");
  expect_request_rejected("fabric 4 4", "fabric 0 4", "line 5");
  expect_request_rejected("options 42", "options -42", "line 6");
  expect_request_rejected("bucket", "fifo", "line 6");
  expect_request_rejected("negotiated", "sideways", "line 6");
  expect_request_rejected("mcfpga-request v1", "mcfpga-request v2", "line 1");
}

TEST(ServeProtocol, RequestRejectsTruncatedBlob) {
  std::string payload = encode_request(sample_request());
  // Claim more netlist bytes than the payload carries.
  const std::size_t pos = payload.find("netlist_bytes ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = payload.find('\n', pos);
  payload.replace(pos, eol - pos, "netlist_bytes 999999");
  EXPECT_THROW(decode_request(payload), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Daemon serving contracts.

TEST(CompileDaemon, ReplyMatchesDirectCompileAndRepeatHitsCache) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  core::CompileOptions options;
  options.seed = 7;

  // The oracle: a direct, single-threaded CompileService compile.
  cache::CompileService direct;
  const std::string want = config::to_text(
      direct.compile(netlist, spec, options).design.full_bitstream);

  CompileDaemon daemon;
  ServeClient client(daemon);
  const std::uint64_t a =
      client.submit(ServeClient::make_request("job-a", netlist, spec, options));
  const ServeClient::Outcome first = client.wait(a);
  ASSERT_EQ(first.reply.status, CompileReply::Status::kDone);
  EXPECT_EQ(first.reply.bitstream_text, want);
  EXPECT_EQ(daemon.state(a), SessionState::kDone);

  // Every pipeline stage streamed exactly one progress tick, in order.
  const std::vector<std::string> stages = {
      "tech_map", "sharing", "plane_alloc", "cluster",
      "place",    "route",   "timing",      "program"};
  ASSERT_EQ(first.progress.size(), stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    EXPECT_EQ(first.progress[i].stage, stages[i]);
    EXPECT_EQ(first.progress[i].job, "job-a");
    EXPECT_GE(first.progress[i].seconds, 0.0);
  }

  // Same request again: served from the shared stage cache, still
  // byte-identical.
  const std::uint64_t b =
      client.submit(ServeClient::make_request("job-b", netlist, spec, options));
  const ServeClient::Outcome second = client.wait(b);
  ASSERT_EQ(second.reply.status, CompileReply::Status::kDone);
  EXPECT_EQ(second.reply.bitstream_text, want);
  EXPECT_GT(second.reply.cache_hits, 0u);
  EXPECT_EQ(second.reply.cache_misses, 0u);

  const CompileDaemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.done, 2u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(CompileDaemon, ConcurrentSessionsAreBitIdentical) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  core::CompileOptions options;
  options.seed = 11;

  cache::CompileService direct;
  const std::string want = config::to_text(
      direct.compile(netlist, spec, options).design.full_bitstream);

  DaemonOptions daemon_options;
  daemon_options.workers = 3;
  CompileDaemon daemon(daemon_options);
  ServeClient client(daemon);
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(client.submit(ServeClient::make_request(
        "job-" + std::to_string(i), netlist, spec, options)));
  }
  for (const std::uint64_t id : jobs) {
    const ServeClient::Outcome out = client.wait(id);
    ASSERT_EQ(out.reply.status, CompileReply::Status::kDone);
    EXPECT_EQ(out.reply.bitstream_text, want);
  }
  EXPECT_EQ(daemon.stats().done, 6u);
}

TEST(CompileDaemon, DeltaRecompileFromBaseJob) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  core::CompileOptions options;
  options.seed = 5;
  const auto edited =
      workload::retable_edit(netlist, pick_lut_node(netlist), 123);

  cache::CompileService direct;
  const cache::Compiled base = direct.compile(netlist, spec, options);
  const cache::Compiled want =
      direct.compile_incremental(base, edited, options);

  CompileDaemon daemon;
  ServeClient client(daemon);
  const std::uint64_t a =
      client.submit(ServeClient::make_request("base", netlist, spec, options));
  ASSERT_EQ(client.wait(a).reply.status, CompileReply::Status::kDone);
  const std::uint64_t b = client.submit(ServeClient::make_request(
      "edit", edited, spec, options, 0, "base"));
  const ServeClient::Outcome out = client.wait(b);
  ASSERT_EQ(out.reply.status, CompileReply::Status::kDone);
  EXPECT_EQ(out.reply.delta, want.design.cache.delta);
  EXPECT_EQ(out.reply.delta_fallback, want.design.cache.delta_fallback);
  EXPECT_EQ(out.reply.bitstream_text,
            config::to_text(want.design.full_bitstream));
}

TEST(CompileDaemon, UnknownBaseJobFailsThatJobOnly) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  CompileDaemon daemon;
  ServeClient client(daemon);
  const std::uint64_t bad = client.submit(ServeClient::make_request(
      "edit", netlist, spec, {}, 0, "no-such-job"));
  const ServeClient::Outcome out = client.wait(bad);
  ASSERT_EQ(out.reply.status, CompileReply::Status::kFailed);
  EXPECT_NE(out.reply.error.find("no-such-job"), std::string::npos);
  EXPECT_EQ(daemon.state(bad), SessionState::kFailed);

  // The failure is the job's, not the daemon's: the next job serves fine.
  const std::uint64_t ok =
      client.submit(ServeClient::make_request("ok", netlist, spec, {}));
  EXPECT_EQ(client.wait(ok).reply.status, CompileReply::Status::kDone);
}

TEST(CompileDaemon, MalformedRequestRejectedAtSubmit) {
  CompileDaemon daemon;
  CompileRequest request = sample_request();
  request.base_job.clear();
  request.netlist_text = "mcfpga-netlist v1\ncontexts 2abc\n";
  EXPECT_THROW(daemon.submit_frame(request_frame(request)), InvalidArgument);
  EXPECT_EQ(daemon.stats().submitted, 0u);
}

TEST(CompileDaemon, CancelQueuedJobThenKeepServing) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  DaemonOptions options;
  options.workers = 1;  // one worker: the second job must sit queued
  CompileDaemon daemon(options);
  ServeClient client(daemon);
  const std::uint64_t running =
      client.submit(ServeClient::make_request("running", netlist, spec, {}));
  const std::uint64_t queued =
      client.submit(ServeClient::make_request("queued", netlist, spec, {}));
  EXPECT_TRUE(client.cancel(queued));
  EXPECT_FALSE(client.cancel(queued));  // already terminal: FSM rejects
  const ServeClient::Outcome cancelled = client.wait(queued);
  EXPECT_EQ(cancelled.reply.status, CompileReply::Status::kCancelled);
  EXPECT_TRUE(cancelled.progress.empty());
  EXPECT_EQ(daemon.state(queued), SessionState::kCancelled);
  EXPECT_EQ(client.wait(running).reply.status, CompileReply::Status::kDone);

  // The daemon keeps serving after a cancellation.
  const std::uint64_t after =
      client.submit(ServeClient::make_request("after", netlist, spec, {}));
  EXPECT_EQ(client.wait(after).reply.status, CompileReply::Status::kDone);
  const CompileDaemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.done, 2u);
}

TEST(CompileDaemon, CancelRunningJobStopsAtStageBoundary) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  CompileDaemon daemon;
  ServeClient client(daemon);
  const std::uint64_t id =
      client.submit(ServeClient::make_request("job", netlist, spec, {}));
  // Race cancel against the compile: both outcomes are legal, but the
  // session must land terminal and the daemon must keep serving.
  client.cancel(id);
  const ServeClient::Outcome out = client.wait(id);
  EXPECT_TRUE(out.reply.status == CompileReply::Status::kCancelled ||
              out.reply.status == CompileReply::Status::kDone);
  const std::uint64_t after =
      client.submit(ServeClient::make_request("after", netlist, spec, {}));
  EXPECT_EQ(client.wait(after).reply.status, CompileReply::Status::kDone);
}

TEST(CompileDaemon, DeadlineBudgetFailsTheJobNotTheDaemon) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  DaemonOptions options;
  options.workers = 1;
  CompileDaemon daemon(options);
  ServeClient client(daemon);
  // Occupy the only worker, then submit a job whose 1ms budget is long
  // gone by the time a worker (or the first stage boundary) sees it.
  const std::uint64_t occupant =
      client.submit(ServeClient::make_request("occupant", netlist, spec, {}));
  const std::uint64_t late = client.submit(
      ServeClient::make_request("late", netlist, spec, {}, /*deadline_ms=*/1));
  const ServeClient::Outcome out = client.wait(late);
  ASSERT_EQ(out.reply.status, CompileReply::Status::kFailed);
  EXPECT_NE(out.reply.error.find("deadline exceeded"), std::string::npos);
  EXPECT_EQ(daemon.state(late), SessionState::kFailed);
  EXPECT_EQ(client.wait(occupant).reply.status, CompileReply::Status::kDone);

  const std::uint64_t after =
      client.submit(ServeClient::make_request("after", netlist, spec, {}));
  EXPECT_EQ(client.wait(after).reply.status, CompileReply::Status::kDone);
  EXPECT_EQ(daemon.stats().failed, 1u);
}

TEST(CompileDaemon, StopCancelsQueuedAndRejectsNewSubmits) {
  const auto netlist = small_workload();
  const auto spec = small_spec();
  DaemonOptions options;
  options.workers = 1;
  CompileDaemon daemon(options);
  ServeClient client(daemon);
  const std::uint64_t running =
      client.submit(ServeClient::make_request("running", netlist, spec, {}));
  const std::uint64_t queued =
      client.submit(ServeClient::make_request("queued", netlist, spec, {}));
  daemon.stop();  // blocks until the pool drained
  EXPECT_TRUE(daemon.state(running) == SessionState::kDone ||
              daemon.state(running) == SessionState::kCancelled);
  EXPECT_EQ(daemon.state(queued), SessionState::kCancelled);
  EXPECT_THROW(client.submit(
                   ServeClient::make_request("late", netlist, spec, {})),
               InvalidArgument);
}

}  // namespace
}  // namespace mcfpga::serve
