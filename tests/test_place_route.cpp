// Unit tests for the placer and the PathFinder router.
#include <gtest/gtest.h>

#include <set>

#include "arch/routing_graph.hpp"
#include "common/error.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"

namespace mcfpga {
namespace {

using arch::FabricSpec;
using arch::RoutingGraph;
using place::Placement;
using place::PlacementNet;
using place::PlacementProblem;
using place::PlacerOptions;
using place::Terminal;
using route::RouteNet;
using route::Router;
using route::RouterOptions;

FabricSpec spec_4x4(std::size_t w = 4, std::size_t dl = 2) {
  FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = w;
  spec.double_length_tracks = dl;
  return spec;
}

TEST(Placer, AssignsDistinctCellsAndPads) {
  const RoutingGraph g(spec_4x4());
  PlacementProblem prob;
  prob.num_clusters = 6;
  prob.num_io_terminals = 4;
  for (std::size_t i = 1; i < 6; ++i) {
    PlacementNet net;
    net.driver = Terminal::cluster(i - 1);
    net.sinks = {Terminal::cluster(i)};
    prob.nets.push_back(net);
  }
  const Placement p = place::place(prob, g, PlacerOptions{.seed = 3});
  ASSERT_EQ(p.cluster_pos.size(), 6u);
  std::set<std::pair<std::size_t, std::size_t>> cells(
      p.cluster_pos.begin(), p.cluster_pos.end());
  EXPECT_EQ(cells.size(), 6u);  // no overlaps
  std::set<std::size_t> pads(p.io_pads.begin(), p.io_pads.end());
  EXPECT_EQ(pads.size(), 4u);
  EXPECT_GE(p.cost, 0.0);
}

TEST(Placer, ChainPlacementBeatsWorstCase) {
  const RoutingGraph g(spec_4x4());
  PlacementProblem prob;
  prob.num_clusters = 8;
  prob.num_io_terminals = 0;
  for (std::size_t i = 1; i < 8; ++i) {
    PlacementNet net;
    net.driver = Terminal::cluster(i - 1);
    net.sinks = {Terminal::cluster(i)};
    prob.nets.push_back(net);
  }
  PlacerOptions opts;
  opts.seed = 5;
  opts.sweeps = 48;
  const Placement p = place::place(prob, g, opts);
  // A 7-link chain on a 4x4 grid places with total HPWL well under the
  // 7 * (3+3) = 42 worst case; the annealer should land <= 14.
  EXPECT_LE(p.cost, 14.0);
  EXPECT_EQ(p.cost, place::placement_cost(prob, g, p));
}

TEST(Placer, TooManyClustersThrows) {
  const RoutingGraph g(spec_4x4());
  PlacementProblem prob;
  prob.num_clusters = 17;  // > 16 cells
  EXPECT_THROW(place::place(prob, g, {}), FlowError);
}

TEST(Placer, NetWeightScalesCost) {
  const RoutingGraph g(spec_4x4());
  PlacementProblem prob;
  prob.num_clusters = 2;
  PlacementNet net;
  net.driver = Terminal::cluster(0);
  net.sinks = {Terminal::cluster(1)};
  net.weight = 3;
  prob.nets.push_back(net);
  Placement p;
  p.cluster_pos = {{0, 0}, {2, 1}};
  EXPECT_DOUBLE_EQ(place::placement_cost(prob, g, p), 3.0 * 3.0);
}

TEST(Placer, DeterministicForSeed) {
  const RoutingGraph g(spec_4x4());
  PlacementProblem prob;
  prob.num_clusters = 5;
  prob.num_io_terminals = 2;
  PlacementNet net;
  net.driver = Terminal::io(0);
  net.sinks = {Terminal::cluster(0), Terminal::cluster(4),
               Terminal::io(1)};
  prob.nets.push_back(net);
  const Placement a = place::place(prob, g, PlacerOptions{.seed = 9});
  const Placement b = place::place(prob, g, PlacerOptions{.seed = 9});
  EXPECT_EQ(a.cluster_pos, b.cluster_pos);
  EXPECT_EQ(a.io_pads, b.io_pads);
}

// --- Router -----------------------------------------------------------------

TEST(Router, RoutesSimpleNetAllContexts) {
  const RoutingGraph g(spec_4x4());
  const Router router(g);
  std::vector<std::vector<RouteNet>> nets(4);
  for (std::size_t c = 0; c < 4; ++c) {
    RouteNet net;
    net.name = "n";
    net.source = g.out_pin(0, 0, 0);
    net.sinks = {g.in_pin(3, 3, 0)};
    nets[c].push_back(net);
  }
  const auto result = router.route(nets);
  EXPECT_TRUE(result.success);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(result.nets[c].size(), 1u);
    ASSERT_EQ(result.nets[c][0].paths.size(), 1u);
    EXPECT_GT(result.nets[c][0].paths[0].switch_count(), 0u);
  }
  // Some switch is on in every context (same route each time is allowed).
  std::size_t on_rows = 0;
  for (const auto& p : result.switch_patterns) {
    if (!p.values().all_equal(false)) {
      ++on_rows;
    }
  }
  EXPECT_GT(on_rows, 0u);
}

TEST(Router, MultiSinkNetBuildsTree) {
  const RoutingGraph g(spec_4x4());
  const Router router(g);
  std::vector<std::vector<RouteNet>> nets(4);
  RouteNet net;
  net.name = "fanout";
  net.source = g.out_pin(1, 1, 0);
  net.sinks = {g.in_pin(0, 0, 0), g.in_pin(3, 0, 1), g.in_pin(1, 3, 2)};
  nets[0].push_back(net);
  const auto result = router.route(nets);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.nets[0][0].paths.size(), 3u);
}

TEST(Router, CongestionResolvedByNegotiation) {
  // Narrow fabric, many parallel nets in one context.
  FabricSpec spec = spec_4x4(/*w=*/3, /*dl=*/0);
  const RoutingGraph g(spec);
  const Router router(g);
  std::vector<std::vector<RouteNet>> nets(4);
  for (std::size_t i = 0; i < 3; ++i) {
    RouteNet net;
    net.name = "n" + std::to_string(i);
    net.source = g.out_pin(0, i, 0);
    net.sinks = {g.in_pin(3, i, 0)};
    nets[0].push_back(net);
  }
  const auto result = router.route(nets);
  EXPECT_TRUE(result.success);
  // No wire is used by two nets in context 0: checked via switch patterns —
  // collect wires per net path and assert disjoint.
  std::set<arch::NodeId> used;
  for (const auto& net : result.nets[0]) {
    std::set<arch::NodeId> mine;
    for (const auto& path : net.paths) {
      for (const auto e : path.edges) {
        const auto& node = g.node(g.edge(e).to);
        if (node.kind == arch::NodeKind::kWire) {
          mine.insert(g.edge(e).to);
        }
      }
    }
    for (const auto w : mine) {
      EXPECT_TRUE(used.insert(w).second) << "wire shared between nets";
    }
  }
}

TEST(Router, ContextsRouteIndependently) {
  const RoutingGraph g(spec_4x4());
  const Router router(g);
  std::vector<std::vector<RouteNet>> nets(4);
  // Different source/sink per context; same physical wires may be reused.
  for (std::size_t c = 0; c < 4; ++c) {
    RouteNet net;
    net.name = "n";
    net.source = g.out_pin(c % 4, 0, 0);
    net.sinks = {g.in_pin(3 - (c % 4), 3, 0)};
    nets[c].push_back(net);
  }
  const auto result = router.route(nets);
  EXPECT_TRUE(result.success);
  // Patterns reflect per-context usage.
  const auto bs = result.to_bitstream(g);
  EXPECT_EQ(bs.num_rows(), g.num_switches());
}

TEST(Router, DoubleLengthPreferenceShortensLongRoutes) {
  FabricSpec spec;
  spec.width = 8;
  spec.height = 1;
  spec.channel_width = 2;
  spec.double_length_tracks = 2;
  const RoutingGraph g(spec);

  const auto route_once = [&](bool prefer) {
    RouterOptions opts;
    opts.prefer_double_length = prefer;
    const Router router(g, opts);
    std::vector<std::vector<RouteNet>> nets(4);
    RouteNet net;
    net.name = "long";
    net.source = g.out_pin(0, 0, 0);
    net.sinks = {g.in_pin(7, 0, 0)};
    nets[0].push_back(net);
    const auto result = router.route(nets);
    EXPECT_TRUE(result.success);
    return result.nets[0][0].paths[0];
  };

  const auto fast = route_once(true);
  const auto slow = route_once(false);
  EXPECT_GT(fast.diamond_count, 0u);
  EXPECT_LT(fast.switch_count(), slow.switch_count());
}

TEST(Router, ImpossibleRouteThrows) {
  // Two disconnected columns: width 2 with zero channel tracks is invalid,
  // so instead ask for a sink pin index that exists but route between two
  // fabrics' pads is always possible; use a 1x1 fabric with no wires.
  FabricSpec spec;
  spec.width = 1;
  spec.height = 1;
  spec.channel_width = 1;
  spec.double_length_tracks = 0;
  const RoutingGraph g(spec);
  const Router router(g);
  std::vector<std::vector<RouteNet>> nets(4);
  RouteNet net;
  net.name = "imp";
  net.source = g.out_pin(0, 0, 0);
  net.sinks = {g.in_pin(0, 0, 0)};
  nets[0].push_back(net);
  // 1x1 fabric has no wires at all, so pin-to-pin routing must fail.
  EXPECT_THROW(router.route(nets), FlowError);
}

TEST(Router, NetCountMismatchThrows) {
  const RoutingGraph g(spec_4x4());
  const Router router(g);
  std::vector<std::vector<RouteNet>> nets(2);  // fabric has 4 contexts
  EXPECT_THROW(router.route(nets), InvalidArgument);
}

}  // namespace
}  // namespace mcfpga
