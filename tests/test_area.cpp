// Unit tests for the device libraries, the area model (Sec. 5), and the
// power model (FePG static-power claim).
#include <gtest/gtest.h>

#include <sstream>

#include "area/area_model.hpp"
#include "area/device_library.hpp"
#include "area/power_model.hpp"
#include "config/stats.hpp"
#include "workload/bitstream_gen.hpp"

namespace mcfpga::area {
namespace {

TEST(DeviceLibrary, CmosSeDecomposition) {
  const auto lib = DeviceLibrary::cmos();
  // Fig. 8: 2 SRAM + 2:1 mux + pass-gate.
  EXPECT_DOUBLE_EQ(lib.switch_element,
                   2 * lib.sram_bit + lib.mux2_stage + lib.pass_gate);
  EXPECT_FALSE(lib.non_volatile);
}

// Paper Sec. 5: "the area of an FePG-based SE is 50% of that of a
// CMOS-based SE".
TEST(DeviceLibrary, FePgIsHalfCmosSe) {
  const auto cmos = DeviceLibrary::cmos();
  const auto fepg = DeviceLibrary::fepg();
  EXPECT_DOUBLE_EQ(fepg.switch_element, 0.5 * cmos.switch_element);
  EXPECT_TRUE(fepg.non_volatile);
}

TEST(DeviceLibrary, MuxTree) {
  const auto lib = DeviceLibrary::cmos();
  EXPECT_DOUBLE_EQ(mux_tree(lib, 1), 0.0);
  EXPECT_DOUBLE_EQ(mux_tree(lib, 2), lib.mux2_stage);
  EXPECT_DOUBLE_EQ(mux_tree(lib, 4), 3 * lib.mux2_stage);
}

TEST(AreaModel, ConventionalSwitchMatchesFig2) {
  const AreaModel model;
  // 4 contexts: 4 SRAM (24) + 4:1 mux (6) + pass-gate (1) = 31.
  EXPECT_DOUBLE_EQ(model.conventional_switch(4), 31.0);
  EXPECT_DOUBLE_EQ(model.conventional_switch(2), 15.0);
  EXPECT_DOUBLE_EQ(model.conventional_switch(8), 63.0);
}

TEST(AreaModel, RcmBlockConstantRowsCostOneSe) {
  const AreaModel model;
  config::Bitstream block(4);
  for (int i = 0; i < 10; ++i) {
    block.add_row("r" + std::to_string(i),
                  config::ResourceKind::kRoutingSwitch,
                  config::ContextPattern(4, false));
  }
  ComparisonOptions opts;
  opts.share_identical_patterns = false;
  std::size_t networks = 0;
  std::size_t ses = 0;
  std::size_t taps = 0;
  const AreaBreakdown area =
      model.rcm_switch_block(block, opts, &networks, &ses, &taps);
  EXPECT_EQ(networks, 10u);
  EXPECT_EQ(ses, 10u);
  EXPECT_EQ(taps, 0u);
  EXPECT_NEAR(area.total(), 10 * model.base_library().switch_element, 1e-9);
}

TEST(AreaModel, SharingCollapsesIdenticalRows) {
  const AreaModel model;
  config::Bitstream block(4);
  for (int i = 0; i < 10; ++i) {
    block.add_row("r" + std::to_string(i),
                  config::ResourceKind::kRoutingSwitch,
                  config::ContextPattern(4, false));
  }
  ComparisonOptions opts;
  opts.share_identical_patterns = true;
  std::size_t networks = 0;
  std::size_t ses = 0;
  std::size_t taps = 0;
  const AreaBreakdown area =
      model.rcm_switch_block(block, opts, &networks, &ses, &taps);
  EXPECT_EQ(networks, 1u);
  EXPECT_EQ(taps, 9u);
  EXPECT_NEAR(area.total(),
              model.base_library().switch_element +
                  9 * model.base_library().shared_tap,
              1e-9);
}

TEST(AreaModel, LogicBlockFormulas) {
  const AreaModel model;
  lut::LogicBlockSpec lb;
  lb.base_inputs = 4;
  lb.num_contexts = 4;
  lb.num_outputs = 2;
  const double conv = model.conventional_logic_block(lb);
  ComparisonOptions opts;
  const double prop = model.proposed_logic_block(lb, 2, opts);
  EXPECT_GT(conv, 0.0);
  EXPECT_GT(prop, 0.0);
  // Same SRAM budget; the proposed LB trades per-bit context muxes for a
  // deeper input tree, so the two are within ~15% of each other.
  EXPECT_NEAR(prop / conv, 1.0, 0.15);
}

// The headline reproduction at the paper's operating point (4 contexts,
// ~5% change rate, sparse routing fabric): the proposed fabric must land
// well below half the conventional area in CMOS, and clearly lower still
// with FePG switch elements.
TEST(AreaModel, HeadlineRatiosHaveThePaperShape) {
  workload::BitstreamGenParams params;
  params.rows = 4000;
  params.num_contexts = 4;
  params.change_rate = 0.05;
  params.seed = 42;
  const auto blocks = workload::generate_blocks(params, 200);

  arch::FabricSpec spec;
  spec.width = 8;
  spec.height = 8;

  const AreaModel model;
  ComparisonOptions cmos;
  const auto cmos_report = model.compare_fabric(spec, blocks, cmos);
  ComparisonOptions fepg;
  fepg.rcm_library = DeviceLibrary::fepg();
  const auto fepg_report = model.compare_fabric(spec, blocks, fepg);

  EXPECT_GT(cmos_report.ratio(), 0.25);
  EXPECT_LT(cmos_report.ratio(), 0.60);
  EXPECT_LT(fepg_report.ratio(), cmos_report.ratio());
  EXPECT_GT(fepg_report.ratio(), 0.15);

  // Measured structure is recorded.
  EXPECT_EQ(cmos_report.switch_rows, 4000u);
  EXPECT_GT(cmos_report.decoder_networks, 0u);
  EXPECT_GT(cmos_report.shared_taps, 0u);
}

TEST(AreaModel, RatioDegradesWithChangeRate) {
  arch::FabricSpec spec;
  const AreaModel model;
  double previous = 0.0;
  for (const double rate : {0.01, 0.10, 0.30}) {
    workload::BitstreamGenParams params;
    params.rows = 2000;
    params.change_rate = rate;
    params.seed = 7;
    const auto blocks = workload::generate_blocks(params, 200);
    const auto report = model.compare_fabric(spec, blocks, {});
    EXPECT_GT(report.ratio(), previous) << rate;
    previous = report.ratio();
  }
}

TEST(AreaModel, ReportPrintsRatio) {
  workload::BitstreamGenParams params;
  params.rows = 100;
  const auto blocks = workload::generate_blocks(params, 50);
  arch::FabricSpec spec;
  const AreaModel model;
  const auto report = model.compare_fabric(spec, blocks, {});
  std::ostringstream os;
  report.print(os, "test");
  EXPECT_NE(os.str().find("AREA RATIO"), std::string::npos);
  std::ostringstream os2;
  model.describe(os2, 4);
  EXPECT_NE(os2.str().find("SRAM bit"), std::string::npos);
}

// --- Power model --------------------------------------------------------------

TEST(PowerModel, CmosLeaksFePgDoesNot) {
  config::BitstreamStats stats;
  stats.num_rows = 100;
  stats.num_contexts = 4;
  stats.avg_change_rate = 0.05;
  const auto cmos = estimate_power(1000, DeviceLibrary::cmos(), stats);
  const auto fepg = estimate_power(1000, DeviceLibrary::fepg(), stats);
  EXPECT_GT(cmos.static_power, 0.0);
  EXPECT_DOUBLE_EQ(fepg.static_power, 0.0);
  EXPECT_EQ(cmos.volatile_bits, 1000u);
  EXPECT_EQ(fepg.nonvolatile_bits, 1000u);
}

TEST(PowerModel, SwitchEnergyScalesWithChangeRate) {
  config::BitstreamStats low;
  low.num_rows = 1000;
  low.num_contexts = 4;
  low.avg_change_rate = 0.01;
  config::BitstreamStats high = low;
  high.avg_change_rate = 0.2;
  const auto lib = DeviceLibrary::cmos();
  EXPECT_LT(estimate_power(1000, lib, low).switch_energy,
            estimate_power(1000, lib, high).switch_energy);
}

}  // namespace
}  // namespace mcfpga::area
