// Unit tests for multi-context DFGs, reference evaluation, sharing
// analysis (Fig. 14a) and DOT export.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netlist/dfg.hpp"
#include "netlist/dot.hpp"
#include "netlist/eval.hpp"
#include "netlist/sharing.hpp"

namespace mcfpga::netlist {
namespace {

BitVector tt_and() { return BitVector::from_string("1000"); }
BitVector tt_or() { return BitVector::from_string("1110"); }
BitVector tt_xor() { return BitVector::from_string("0110"); }

Dfg tiny_dfg() {
  Dfg dfg;
  const NodeRef a = dfg.add_input("a");
  const NodeRef b = dfg.add_input("b");
  const NodeRef c = dfg.add_input("c");
  const NodeRef x = dfg.add_lut("x", {a, b}, tt_and());
  const NodeRef y = dfg.add_lut("y", {x, c}, tt_or());
  dfg.mark_output(y, "out");
  return dfg;
}

TEST(Dfg, ConstructionAndAccessors) {
  const Dfg dfg = tiny_dfg();
  EXPECT_EQ(dfg.num_nodes(), 5u);
  EXPECT_EQ(dfg.num_inputs(), 3u);
  EXPECT_EQ(dfg.num_lut_ops(), 2u);
  EXPECT_EQ(dfg.max_arity(), 2u);
  EXPECT_EQ(dfg.depth(), 2u);
  EXPECT_EQ(dfg.outputs().size(), 1u);
  EXPECT_NO_THROW(dfg.validate());
}

TEST(Dfg, RejectsForwardReferences) {
  Dfg dfg;
  dfg.add_input("a");
  EXPECT_THROW(dfg.add_lut("bad", {5}, BitVector(2)), InvalidArgument);
}

TEST(Dfg, RejectsWrongTruthTableSize) {
  Dfg dfg;
  const NodeRef a = dfg.add_input("a");
  const NodeRef b = dfg.add_input("b");
  EXPECT_THROW(dfg.add_lut("bad", {a, b}, BitVector(8)), InvalidArgument);
}

TEST(Dfg, RejectsInputAfterLut) {
  Dfg dfg;
  const NodeRef a = dfg.add_input("a");
  BitVector buf(2);
  buf.set(1, true);
  dfg.add_lut("n", {a}, buf);
  EXPECT_THROW(dfg.add_input("late"), InvalidArgument);
}

TEST(Dfg, ValidateCatchesDuplicateNames) {
  Dfg dfg;
  dfg.add_input("a");
  dfg.add_input("a");
  EXPECT_THROW(dfg.validate(), InvalidArgument);
}

TEST(Eval, ComputesExpectedValues) {
  const Dfg dfg = tiny_dfg();
  // out = (a AND b) OR c.
  for (int mask = 0; mask < 8; ++mask) {
    const bool a = mask & 1;
    const bool b = mask & 2;
    const bool c = mask & 4;
    const auto out =
        evaluate(dfg, ValueMap{{"a", a}, {"b", b}, {"c", c}});
    EXPECT_EQ(out.at("out"), (a && b) || c) << mask;
  }
}

TEST(Eval, MissingInputsDefaultToZero) {
  const Dfg dfg = tiny_dfg();
  const auto out = evaluate(dfg, ValueMap{{"c", true}});
  EXPECT_TRUE(out.at("out"));
  const auto out2 = evaluate(dfg, {});
  EXPECT_FALSE(out2.at("out"));
}

TEST(Eval, EvaluateNode) {
  const Dfg dfg = tiny_dfg();
  EXPECT_TRUE(
      evaluate_node(dfg, 3, ValueMap{{"a", true}, {"b", true}}));  // x
  EXPECT_THROW(evaluate_node(dfg, 99, {}), InvalidArgument);
}

TEST(MultiContext, InputAndOutputNameUnion) {
  MultiContextNetlist nl(2);
  nl.context(0) = tiny_dfg();
  Dfg other;
  const NodeRef d = other.add_input("d");
  const NodeRef a = other.add_input("a");
  other.mark_output(other.add_lut("z", {d, a}, tt_xor()), "zout");
  nl.context(1) = std::move(other);

  const auto inputs = nl.all_input_names();
  EXPECT_EQ(inputs.size(), 4u);  // a, b, c, d
  const auto outputs = nl.all_output_names();
  EXPECT_EQ(outputs.size(), 2u);  // out, zout
  EXPECT_EQ(nl.total_lut_ops(), 3u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Sharing, IdenticalNodesAcrossContextsMerge) {
  MultiContextNetlist nl(2);
  nl.context(0) = tiny_dfg();
  nl.context(1) = tiny_dfg();  // structurally identical
  const auto sharing = analyze_sharing(nl);
  // Every LUT class is shared between the two contexts.
  EXPECT_EQ(sharing.shared_lut_classes(), 2u);
  EXPECT_EQ(sharing.merged_lut_ops(), 2u);
  // x in both contexts maps to the same class id.
  EXPECT_EQ(sharing.class_of[0][3], sharing.class_of[1][3]);
}

TEST(Sharing, DifferentFunctionsDoNotMerge) {
  MultiContextNetlist nl(2);
  nl.context(0) = tiny_dfg();
  Dfg other;
  const NodeRef a = other.add_input("a");
  const NodeRef b = other.add_input("b");
  const NodeRef c = other.add_input("c");
  const NodeRef x = other.add_lut("x", {a, b}, tt_xor());  // different fn
  other.mark_output(other.add_lut("y", {x, c}, tt_or()), "out");
  nl.context(1) = std::move(other);
  const auto sharing = analyze_sharing(nl);
  EXPECT_EQ(sharing.shared_lut_classes(), 0u);
}

TEST(Sharing, InputsShareByName) {
  MultiContextNetlist nl(2);
  Dfg d0;
  d0.add_input("a");
  nl.context(0) = std::move(d0);
  Dfg d1;
  d1.add_input("a");
  nl.context(1) = std::move(d1);
  const auto sharing = analyze_sharing(nl);
  EXPECT_EQ(sharing.class_of[0][0], sharing.class_of[1][0]);
}

TEST(Sharing, WithinContextHashConsing) {
  MultiContextNetlist nl(1);
  Dfg dfg;
  const NodeRef a = dfg.add_input("a");
  const NodeRef b = dfg.add_input("b");
  const NodeRef x1 = dfg.add_lut("x1", {a, b}, tt_and());
  const NodeRef x2 = dfg.add_lut("x2", {a, b}, tt_and());  // duplicate
  dfg.mark_output(x1, "o1");
  dfg.mark_output(x2, "o2");
  nl.context(0) = std::move(dfg);
  const auto sharing = analyze_sharing(nl);
  EXPECT_EQ(sharing.class_of[0][2], sharing.class_of[0][3]);
  // One member per (class, context) even with duplicates inside a context.
  const std::size_t cls = sharing.class_of[0][2];
  EXPECT_EQ(sharing.classes[cls].members.size(), 1u);
}

TEST(Dot, SingleContextExport) {
  const std::string dot = to_dot(tiny_dfg(), "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("triangle"), std::string::npos);  // inputs
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, MergedExportMarksSharedNodes) {
  MultiContextNetlist nl(2);
  nl.context(0) = tiny_dfg();
  nl.context(1) = tiny_dfg();
  const auto sharing = analyze_sharing(nl);
  const std::string dot = to_dot_merged(nl, sharing);
  EXPECT_NE(dot.find("cluster_ctx0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_ctx1"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

}  // namespace
}  // namespace mcfpga::netlist
