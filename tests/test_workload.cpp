// Unit tests for the workload generators: structured circuits, random
// DFGs, and synthetic bitstreams.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/stats.hpp"
#include "netlist/eval.hpp"
#include "netlist/sharing.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga::workload {
namespace {

using netlist::ValueMap;

ValueMap number_inputs(const std::string& prefix, std::uint64_t value,
                       std::size_t bits) {
  ValueMap in;
  for (std::size_t i = 0; i < bits; ++i) {
    in[prefix + std::to_string(i)] = (value >> i) & 1;
  }
  return in;
}

std::uint64_t read_number(const ValueMap& out, const std::string& prefix,
                          std::size_t bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const auto it = out.find(prefix + std::to_string(i));
    if (it != out.end() && it->second) {
      v |= std::uint64_t{1} << i;
    }
  }
  return v;
}

TEST(Circuits, RippleCarryAdderIsCorrect) {
  const auto dfg = ripple_carry_adder(4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; b += 3) {
      for (const bool cin : {false, true}) {
        ValueMap in = number_inputs("a", a, 4);
        const ValueMap bb = number_inputs("b", b, 4);
        in.insert(bb.begin(), bb.end());
        in["cin"] = cin;
        const auto out = netlist::evaluate(dfg, in);
        const std::uint64_t sum = read_number(out, "s", 4) |
                                  (out.at("cout") ? 16u : 0u);
        EXPECT_EQ(sum, a + b + (cin ? 1 : 0)) << a << "+" << b;
      }
    }
  }
}

TEST(Circuits, ParityTreeIsCorrect) {
  const auto dfg = parity_tree(7);
  for (std::uint64_t v = 0; v < 128; v += 5) {
    const auto out = netlist::evaluate(dfg, number_inputs("x", v, 7));
    EXPECT_EQ(out.at("parity"), __builtin_popcountll(v) % 2 == 1) << v;
  }
}

TEST(Circuits, ComparatorIsCorrect) {
  const auto dfg = comparator(4);
  for (std::uint64_t a = 0; a < 16; a += 2) {
    for (std::uint64_t b = 0; b < 16; b += 3) {
      ValueMap in = number_inputs("a", a, 4);
      const ValueMap bb = number_inputs("b", b, 4);
      in.insert(bb.begin(), bb.end());
      EXPECT_EQ(netlist::evaluate(dfg, in).at("eq"), a == b);
    }
  }
}

TEST(Circuits, ArrayMultiplierIsCorrect) {
  const auto dfg = array_multiplier(3);
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      ValueMap in = number_inputs("a", a, 3);
      const ValueMap bb = number_inputs("b", b, 3);
      in.insert(bb.begin(), bb.end());
      const auto out = netlist::evaluate(dfg, in);
      EXPECT_EQ(read_number(out, "p", 6), a * b) << a << "*" << b;
    }
  }
}

TEST(Circuits, CrcStepMatchesReference) {
  // CRC-4 with polynomial x^4 + x + 1 (taps at bit 1).
  const std::uint64_t poly = 0b0010;
  const auto dfg = crc_step(4, poly);
  for (std::uint64_t state = 0; state < 16; ++state) {
    for (const bool din : {false, true}) {
      ValueMap in = number_inputs("s", state, 4);
      in["din"] = din;
      const auto out = netlist::evaluate(dfg, in);
      // Reference LFSR step.
      const bool fb = ((state >> 3) & 1) != static_cast<std::uint64_t>(din);
      std::uint64_t next = ((state << 1) & 0xF);
      if (fb) {
        next ^= poly | 1;  // feedback into bit 0 and tapped bits
      }
      EXPECT_EQ(read_number(out, "n", 4), next) << state << "," << din;
    }
  }
}

TEST(Circuits, MuxTreeIsCorrect) {
  const auto dfg = mux_tree(3);
  for (std::uint64_t sel = 0; sel < 8; ++sel) {
    ValueMap in = number_inputs("sel", sel, 3);
    for (std::uint64_t d = 0; d < 8; ++d) {
      in["d" + std::to_string(d)] = false;
    }
    in["d" + std::to_string(sel)] = true;
    EXPECT_TRUE(netlist::evaluate(dfg, in).at("out")) << sel;
  }
}

TEST(Circuits, PipelineWorkloadSharesFrontEnd) {
  const auto nl = pipeline_workload(4, 6);
  EXPECT_EQ(nl.num_contexts(), 4u);
  const auto sharing = netlist::analyze_sharing(nl);
  // The per-bit comparators are structurally identical in every context.
  EXPECT_GE(sharing.shared_lut_classes(), 6u);
  EXPECT_GT(sharing.merged_lut_ops(), 0u);
}

TEST(Circuits, GeneratorValidation) {
  EXPECT_THROW(ripple_carry_adder(0), InvalidArgument);
  EXPECT_THROW(parity_tree(1), InvalidArgument);
  EXPECT_THROW(array_multiplier(9), InvalidArgument);
  EXPECT_THROW(pipeline_workload(1, 4), InvalidArgument);
}

// --- Random DFGs ---------------------------------------------------------------

TEST(RandomDfg, RespectsParameters) {
  RandomDfgParams params;
  params.num_inputs = 6;
  params.num_nodes = 30;
  params.max_arity = 4;
  params.seed = 5;
  const auto dfg = random_dfg(params);
  EXPECT_EQ(dfg.num_inputs(), 6u);
  EXPECT_EQ(dfg.num_lut_ops(), 30u);
  EXPECT_LE(dfg.max_arity(), 4u);
  EXPECT_FALSE(dfg.outputs().empty());
  EXPECT_NO_THROW(dfg.validate());
}

TEST(RandomDfg, DeterministicPerSeed) {
  RandomDfgParams params;
  params.seed = 77;
  const auto a = random_dfg(params);
  const auto b = random_dfg(params);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.node(static_cast<netlist::NodeRef>(i)).truth_table,
              b.node(static_cast<netlist::NodeRef>(i)).truth_table);
  }
}

TEST(RandomDfg, MultiContextSharingScalesWithFraction) {
  RandomMultiContextParams lo;
  lo.base.num_nodes = 40;
  lo.share_fraction = 0.0;
  RandomMultiContextParams hi = lo;
  hi.share_fraction = 0.8;
  const auto nl_lo = random_multi_context(lo);
  const auto nl_hi = random_multi_context(hi);
  const auto sh_lo = netlist::analyze_sharing(nl_lo);
  const auto sh_hi = netlist::analyze_sharing(nl_hi);
  EXPECT_GT(sh_hi.merged_lut_ops(), sh_lo.merged_lut_ops());
  // 80% of 40 nodes cloned into 3 extra contexts ~ 96 merged evaluations.
  EXPECT_GE(sh_hi.merged_lut_ops(), 60u);
}

// --- Bitstream generation --------------------------------------------------------

TEST(BitstreamGen, MeasuredChangeRateTracksRequested) {
  BitstreamGenParams params;
  params.rows = 20000;
  params.change_rate = 0.05;
  params.seed = 3;
  const auto bs = generate_bitstream(params);
  const auto stats = config::compute_stats(bs);
  EXPECT_NEAR(stats.avg_change_rate, 0.05, 0.01);
}

TEST(BitstreamGen, ZeroChangeRateGivesAllConstantRows) {
  BitstreamGenParams params;
  params.rows = 500;
  params.change_rate = 0.0;
  const auto bs = generate_bitstream(params);
  const auto stats = config::compute_stats(bs);
  EXPECT_EQ(stats.constant_rows, 500u);
}

TEST(BitstreamGen, RegularityInjectionProducesSingleBitRows) {
  BitstreamGenParams params;
  params.rows = 2000;
  params.change_rate = 0.0;
  params.regularity_fraction = 0.5;
  params.seed = 9;
  const auto stats = config::compute_stats(generate_bitstream(params));
  EXPECT_NEAR(static_cast<double>(stats.single_bit_rows) / 2000.0, 0.5,
              0.05);
}

TEST(BitstreamGen, BlocksPartitionAllRows) {
  BitstreamGenParams params;
  params.rows = 950;
  const auto blocks = generate_blocks(params, 300);
  ASSERT_EQ(blocks.size(), 4u);  // 300+300+300+50
  std::size_t total = 0;
  for (const auto& b : blocks) {
    total += b.num_rows();
  }
  EXPECT_EQ(total, 950u);
  EXPECT_EQ(blocks.back().num_rows(), 50u);
}

TEST(BitstreamGen, ParameterValidation) {
  BitstreamGenParams params;
  params.change_rate = 1.5;
  EXPECT_THROW(generate_bitstream(params), InvalidArgument);
  BitstreamGenParams params2;
  EXPECT_THROW(generate_blocks(params2, 0), InvalidArgument);
}

}  // namespace
}  // namespace mcfpga::workload
