// Second property suite:
//   P7.  Routing-graph structural invariants across fabric shapes.
//   P8.  Conventional vs RCM switch-block equivalence under random
//        programming (the Fig. 2 == Figs. 7-9 functional contract).
//   P9.  MCMG-LUT mode algebra: every mode tiles the budget; evaluation
//        agrees with direct plane-memory reads in every context.
//   P10. Serialization round-trips arbitrary generated bitstreams.
//   P11. Context-scheduler toggle accounting equals plane Hamming sums.
#include <gtest/gtest.h>

#include <set>

#include "arch/routing_graph.hpp"
#include "arch/switch_block.hpp"
#include "common/rng.hpp"
#include "config/serialize.hpp"
#include "config/stats.hpp"
#include "lut/mcmg_lut.hpp"
#include "sim/context_scheduler.hpp"
#include "workload/bitstream_gen.hpp"

namespace mcfpga {
namespace {

// --- P7 ---------------------------------------------------------------------

struct GraphShape {
  std::size_t width;
  std::size_t height;
  std::size_t channel;
  std::size_t dl;
};

class RoutingGraphProperty : public ::testing::TestWithParam<GraphShape> {};

TEST_P(RoutingGraphProperty, StructuralInvariants) {
  const auto [width, height, channel, dl] = GetParam();
  arch::FabricSpec spec;
  spec.width = width;
  spec.height = height;
  spec.channel_width = channel;
  spec.double_length_tracks = dl;
  const arch::RoutingGraph g(spec);

  // Every switch's two edges are mutual reverses through the same switch.
  for (std::size_t s = 0; s < g.num_switches(); ++s) {
    const auto& sw = g.rr_switch(static_cast<arch::SwitchId>(s));
    const auto& f = g.edge(sw.forward);
    const auto& b = g.edge(sw.backward);
    EXPECT_EQ(f.from, b.to);
    EXPECT_EQ(f.to, b.from);
    EXPECT_EQ(f.sw, static_cast<arch::SwitchId>(s));
    EXPECT_EQ(b.sw, static_cast<arch::SwitchId>(s));
    // Switch owner coordinates are on the fabric.
    EXPECT_LT(static_cast<std::size_t>(sw.x), spec.width);
    EXPECT_LT(static_cast<std::size_t>(sw.y), spec.height);
  }

  // Per-block switch counts tile the totals.
  for (const auto owner :
       {arch::SwitchOwner::kSwitchBlock, arch::SwitchOwner::kConnectionBlock,
        arch::SwitchOwner::kDiamond}) {
    std::size_t sum = 0;
    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x) {
        sum += g.switches_in_block(x, y, owner);
      }
    }
    EXPECT_EQ(sum, g.count_switches(owner));
  }

  // Wires never dangle: every wire node has at least one fanout edge, and
  // length-2 wires exist iff double-length tracks were requested.
  bool saw_dl = false;
  for (std::size_t n = 0; n < g.num_nodes(); ++n) {
    const auto& node = g.node(static_cast<arch::NodeId>(n));
    if (node.kind == arch::NodeKind::kWire) {
      EXPECT_FALSE(g.fanout(static_cast<arch::NodeId>(n)).empty())
          << node.name;
      saw_dl = saw_dl || node.length == 2;
    }
  }
  if (dl > 0 && (width > 2 || height > 2)) {
    EXPECT_TRUE(saw_dl);
  }
  if (dl == 0) {
    EXPECT_FALSE(saw_dl);
    EXPECT_EQ(g.count_switches(arch::SwitchOwner::kDiamond), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoutingGraphProperty,
    ::testing::Values(GraphShape{2, 2, 2, 0}, GraphShape{3, 3, 2, 2},
                      GraphShape{4, 4, 8, 4}, GraphShape{8, 2, 4, 2},
                      GraphShape{2, 8, 4, 2}, GraphShape{6, 6, 6, 6}),
    [](const auto& info) {
      return std::to_string(info.param.width) + "x" +
             std::to_string(info.param.height) + "_w" +
             std::to_string(info.param.channel) + "_dl" +
             std::to_string(info.param.dl);
    });

// --- P8 ---------------------------------------------------------------------

class SwitchBlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchBlockProperty, ConventionalAndRcmAlwaysAgree) {
  Rng rng(GetParam());
  const std::size_t num_contexts = 4;
  const std::size_t points = 24;
  arch::SwitchBlock conv("sb", points, num_contexts,
                         arch::SwitchImpl::kConventional);
  arch::SwitchBlock rcm("sb", points, num_contexts, arch::SwitchImpl::kRcm);
  for (std::size_t i = 0; i < points; ++i) {
    config::ContextPattern p(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      p.set_value(c, rng.next_bool(0.3));
    }
    conv.program(i, p);
    rcm.program(i, p);
  }
  for (std::size_t i = 0; i < points; ++i) {
    for (std::size_t c = 0; c < num_contexts; ++c) {
      ASSERT_EQ(conv.is_on(i, c), rcm.is_on(i, c)) << i << "/" << c;
    }
  }
  EXPECT_TRUE(rcm.verify_rcm_equivalence());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchBlockProperty,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

// --- P9 ---------------------------------------------------------------------

class LutModeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LutModeProperty, ModesTileBudgetAndEvalMatchesMemory) {
  const auto [base, contexts] = GetParam();
  Rng rng(base * 100 + contexts);
  lut::McmgLut lut(base, contexts);
  for (const auto& mode : lut.available_modes()) {
    lut.set_mode(mode);
    EXPECT_EQ((std::size_t{1} << mode.inputs) * mode.planes,
              lut.memory_bits_per_output());
    // Random-program every plane, then check eval == memory read under the
    // context->plane map for every context and a sample of addresses.
    for (std::size_t p = 0; p < mode.planes; ++p) {
      BitVector tt(std::size_t{1} << mode.inputs);
      for (std::size_t a = 0; a < tt.size(); ++a) {
        tt.set(a, rng.next_bool());
      }
      lut.program_plane(0, p, tt);
    }
    for (std::size_t c = 0; c < contexts; ++c) {
      const std::size_t plane = lut.plane_for_context(c);
      EXPECT_EQ(plane, c & (mode.planes - 1));
      for (int trial = 0; trial < 8; ++trial) {
        const std::size_t address = static_cast<std::size_t>(
            rng.next_below(std::size_t{1} << mode.inputs));
        const BitVector in = BitVector::from_word(address, mode.inputs);
        EXPECT_EQ(lut.eval(0, in, c),
                  lut.plane_memory(0, plane).get(address));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LutModeProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 4},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{4, 8},
                      std::pair<std::size_t, std::size_t>{5, 2}),
    [](const auto& info) {
      return "base" + std::to_string(info.param.first) + "_n" +
             std::to_string(info.param.second);
    });

// --- P10 --------------------------------------------------------------------

class SerializeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerializeProperty, RoundTripPreservesEveryPlane) {
  workload::BitstreamGenParams params;
  params.rows = 500;
  params.num_contexts = GetParam();
  params.change_rate = 0.08;
  params.regularity_fraction = 0.2;
  params.seed = GetParam() * 7;
  const auto original = workload::generate_bitstream(params);
  const auto parsed = config::from_text(config::to_text(original));
  for (std::size_t c = 0; c < params.num_contexts; ++c) {
    ASSERT_EQ(parsed.plane(c), original.plane(c)) << "context " << c;
  }
  const auto s1 = config::compute_stats(original);
  const auto s2 = config::compute_stats(parsed);
  EXPECT_EQ(s1.constant_rows, s2.constant_rows);
  EXPECT_EQ(s1.complex_rows, s2.complex_rows);
}

INSTANTIATE_TEST_SUITE_P(Contexts, SerializeProperty,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// --- P11 --------------------------------------------------------------------

TEST(SchedulerProperty, ToggleCountEqualsPlaneHammingSums) {
  workload::BitstreamGenParams params;
  params.rows = 700;
  params.change_rate = 0.1;
  params.seed = 44;
  const auto bs = workload::generate_bitstream(params);
  const sim::ContextScheduler sched(4);
  const std::size_t cycles = 13;
  const auto stats = sched.run(bs, cycles);

  std::size_t expected = 0;
  for (std::size_t cycle = 1; cycle < cycles; ++cycle) {
    expected += bs.plane(sched.context_at(cycle - 1))
                    .hamming_distance(bs.plane(sched.context_at(cycle)));
  }
  EXPECT_EQ(stats.bits_toggled, expected);
  EXPECT_EQ(stats.context_switches, cycles - 1);
}

}  // namespace
}  // namespace mcfpga
