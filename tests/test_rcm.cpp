// Unit tests for the RCM core: switch elements (Fig. 8), decoder synthesis
// (Fig. 9), the SE grid (Fig. 7) and the context decoder, including the
// exhaustive 16-pattern sweep for 4 contexts.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/stats.hpp"
#include "rcm/context_decoder.hpp"
#include "rcm/decoder_synth.hpp"
#include "rcm/grid.hpp"
#include "rcm/switch_element.hpp"

namespace mcfpga::rcm {
namespace {

using config::ContextPattern;
using config::PatternClass;

// Fig. 8 / Fig. 15 truth table: (d1,d0) = (0,0) -> 0; (0,1) -> 1;
// (1,*) -> U.
TEST(SwitchElement, TruthTableMatchesFig8) {
  SwitchElement c0 = SwitchElement::constant(false);
  SwitchElement c1 = SwitchElement::constant(true);
  for (const bool u : {false, true}) {
    EXPECT_FALSE(c0.eval_with_u(u));
    EXPECT_TRUE(c1.eval_with_u(u));
  }
  SwitchElement var = SwitchElement::id_bit(0, false);
  EXPECT_FALSE(var.eval_with_u(false));
  EXPECT_TRUE(var.eval_with_u(true));
}

TEST(SwitchElement, IdBitEvaluation) {
  const SwitchElement s1 = SwitchElement::id_bit(1, false);
  // S1 = 0,0,1,1 over contexts 0..3 (Table 2).
  EXPECT_FALSE(s1.eval(0));
  EXPECT_FALSE(s1.eval(1));
  EXPECT_TRUE(s1.eval(2));
  EXPECT_TRUE(s1.eval(3));

  const SwitchElement ns0 = SwitchElement::id_bit(0, true);
  EXPECT_TRUE(ns0.eval(0));
  EXPECT_FALSE(ns0.eval(1));
}

TEST(SwitchElement, InputControllerOnlyForInvertedU) {
  EXPECT_FALSE(SwitchElement::constant(true).uses_input_controller());
  EXPECT_FALSE(SwitchElement::id_bit(0, false).uses_input_controller());
  EXPECT_TRUE(SwitchElement::id_bit(0, true).uses_input_controller());
}

TEST(SwitchElement, FloatingUWithD1Throws) {
  SwitchElement se;
  se.d1 = true;  // no U source
  EXPECT_THROW(se.eval(0), ProgrammingError);
}

TEST(SwitchElement, Describe) {
  EXPECT_EQ(SwitchElement::constant(false).describe(), "G=0");
  EXPECT_EQ(SwitchElement::constant(true).describe(), "G=1");
  EXPECT_EQ(SwitchElement::id_bit(1, true).describe(), "G=~S1");
}

// --- Decoder synthesis ----------------------------------------------------

TEST(DecoderSynth, ConstantCostsOneSe) {
  for (const char* p : {"0000", "1111"}) {
    const auto net = synthesize_decoder(ContextPattern::from_string(p));
    EXPECT_EQ(net.se_count(), 1u) << p;
    EXPECT_EQ(net.depth(), 0u) << p;
    EXPECT_EQ(net.input_controller_count(), 0u) << p;
  }
}

TEST(DecoderSynth, SingleBitCostsOneSe) {
  for (const char* p : {"1010", "0101", "1100", "0011"}) {
    const auto net = synthesize_decoder(ContextPattern::from_string(p));
    EXPECT_EQ(net.se_count(), 1u) << p;
    EXPECT_EQ(net.depth(), 0u) << p;
  }
}

// Fig. 9: the pattern (C3,C2,C1,C0) = (1,0,0,0) takes four SEs.
TEST(DecoderSynth, Fig9PatternCostsFourSes) {
  const auto net = synthesize_decoder(ContextPattern::from_string("1000"));
  EXPECT_EQ(net.se_count(), 4u);
  EXPECT_EQ(net.depth(), 1u);
}

// Exhaustive: every 4-context pattern decodes correctly in every context.
TEST(DecoderSynth, ExhaustiveFourContextCorrectness) {
  for (const auto& p : config::all_patterns(4)) {
    const auto net = synthesize_decoder(p);
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(net.eval(c), p.value_in(c)) << p.to_string() << " ctx " << c;
    }
  }
}

// Exhaustive cost taxonomy for 4 contexts: constants & single-bit cost 1;
// every complex pattern costs exactly 4 (two leaf drivers + a gate pair).
TEST(DecoderSynth, ExhaustiveFourContextCosts) {
  for (const auto& p : config::all_patterns(4)) {
    const auto info = config::classify(p);
    const std::size_t cost = decoder_se_cost(p);
    if (info.cls == PatternClass::kComplex) {
      EXPECT_EQ(cost, 4u) << p.to_string();
    } else {
      EXPECT_EQ(cost, 1u) << p.to_string();
    }
    EXPECT_EQ(synthesize_decoder(p).se_count(), cost) << p.to_string();
  }
}

// 8 contexts: correctness over all 256 patterns, and cost never exceeds
// the full Shannon tree bound.
TEST(DecoderSynth, ExhaustiveEightContext) {
  for (const auto& p : config::all_patterns(8)) {
    const auto net = synthesize_decoder(p);
    for (std::size_t c = 0; c < 8; ++c) {
      ASSERT_EQ(net.eval(c), p.value_in(c)) << p.to_string() << " ctx " << c;
    }
    // Full 3-level tree: 4 leaves + 3 gate pairs = 10; our synthesis folds
    // single-bit cofactors, so 10 is a hard ceiling.
    EXPECT_LE(net.se_count(), 10u) << p.to_string();
  }
}

TEST(DecoderSynth, CostSkipsIndependentBits) {
  // Over 8 contexts, the S0 pattern is still one SE even though two other
  // ID bits exist.
  const auto p = ContextPattern::for_id_bit(8, 0, false);
  EXPECT_EQ(decoder_se_cost(p), 1u);
  // A pattern depending on S1 and S2 but not S0 costs 4, not 10.
  // value = S2 AND S1 -> contexts 6,7 on.
  ContextPattern q(8);
  q.set_value(6, true);
  q.set_value(7, true);
  EXPECT_EQ(decoder_se_cost(q), 4u);
}

TEST(DecoderSynth, TwoContexts) {
  // 2 contexts: all four patterns cost one SE (0,1 constants; S0, ~S0).
  for (const auto& p : config::all_patterns(2)) {
    EXPECT_EQ(decoder_se_cost(p), 1u) << p.to_string();
    const auto net = synthesize_decoder(p);
    EXPECT_EQ(net.eval(0), p.value_in(0));
    EXPECT_EQ(net.eval(1), p.value_in(1));
  }
}

TEST(DecoderSynth, DescribeMentionsStructure) {
  const auto net = synthesize_decoder(ContextPattern::from_string("1000"));
  const std::string desc = net.describe();
  EXPECT_NE(desc.find("4 SEs"), std::string::npos);
  EXPECT_NE(desc.find("gates"), std::string::npos);
}

// --- RCM grid ---------------------------------------------------------------

TEST(RcmGrid, CapacityAccounting) {
  RcmGrid grid(GridSpec{4, 4, 0, 0});
  EXPECT_EQ(grid.se_capacity(), 16u);
  EXPECT_EQ(grid.se_free(), 16u);
  const auto net = synthesize_decoder(ContextPattern::from_string("1000"));
  const std::size_t id = grid.place(net, "g0");
  EXPECT_EQ(grid.se_used(), 4u);
  EXPECT_EQ(grid.instance_sites(id).size(), 4u);
  EXPECT_EQ(grid.instance_name(id), "g0");
  EXPECT_NEAR(grid.utilization(), 0.25, 1e-9);
}

TEST(RcmGrid, PlacementOverflowThrows) {
  RcmGrid grid(GridSpec{1, 2, 0, 0});  // 2 SE sites
  const auto complex_net =
      synthesize_decoder(ContextPattern::from_string("1000"));
  EXPECT_THROW(grid.place(complex_net, "too-big"), FlowError);
  // A pair of 1-SE decoders fits exactly.
  grid.place(synthesize_decoder(ContextPattern::from_string("0101")), "a");
  grid.place(synthesize_decoder(ContextPattern::from_string("1111")), "b");
  EXPECT_EQ(grid.se_free(), 0u);
  EXPECT_THROW(
      grid.place(synthesize_decoder(ContextPattern::from_string("1111")),
                 "c"),
      FlowError);
}

TEST(RcmGrid, InstanceOutputsMatchPatterns) {
  RcmGrid grid(GridSpec{8, 8, 0, 0});
  const auto p = ContextPattern::from_string("0110");
  const std::size_t id = grid.place(synthesize_decoder(p), "x");
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(grid.instance_output(id, c), p.value_in(c));
  }
}

TEST(RcmGrid, RejectsZeroSize) {
  EXPECT_THROW(RcmGrid(GridSpec{0, 4, 0, 0}), InvalidArgument);
}

// --- Context decoder ----------------------------------------------------------

TEST(ContextDecoder, MatchesBitstreamExactly) {
  const auto bs = config::paper_table1_example();
  const ContextDecoder dec(bs);
  EXPECT_TRUE(dec.matches(bs));
  EXPECT_EQ(dec.num_rows(), bs.num_rows());
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(dec.decode_plane(c), bs.plane(c));
  }
}

TEST(ContextDecoder, SharingCollapsesIdenticalRows) {
  const auto bs = config::paper_table1_example();  // G2 == G4
  const ContextDecoder no_share(bs, {.share_identical_patterns = false});
  const ContextDecoder share(bs, {.share_identical_patterns = true});
  EXPECT_EQ(no_share.num_networks(), 5u);
  EXPECT_EQ(share.num_networks(), 4u);
  EXPECT_EQ(share.shared_row_taps(), 1u);
  EXPECT_LT(share.total_se_count(), no_share.total_se_count());
  // Sharing must not change function.
  EXPECT_TRUE(share.matches(bs));
}

TEST(ContextDecoder, ResourceTotals) {
  config::Bitstream bs(4);
  bs.add_row("c", config::ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0000"));  // 1 SE
  bs.add_row("s", config::ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0101"));  // 1 SE, 1 controller
  bs.add_row("x", config::ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("1000"));  // 4 SEs
  const ContextDecoder dec(bs);
  EXPECT_EQ(dec.total_se_count(), 6u);
  EXPECT_GE(dec.total_input_controllers(), 1u);
  EXPECT_GT(dec.total_programmable_switches(), 0u);
  EXPECT_EQ(dec.max_depth(), 1u);
}

TEST(ContextDecoder, MatchesRejectsDifferentBitstream) {
  const auto bs = config::paper_table1_example();
  const ContextDecoder dec(bs);
  config::Bitstream other(4);
  other.add_row("z", config::ResourceKind::kRoutingSwitch,
                ContextPattern::from_string("1111"));
  EXPECT_FALSE(dec.matches(other));
}

TEST(ContextDecoder, OutputRangeChecks) {
  const ContextDecoder dec(config::paper_table1_example());
  EXPECT_THROW(dec.output(99, 0), InvalidArgument);
  EXPECT_THROW(dec.output(0, 7), InvalidArgument);
}

}  // namespace
}  // namespace mcfpga::rcm
