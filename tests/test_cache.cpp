// Tests for the content-addressed stage cache and the delta-recompile
// driver (src/cache/): cache-enabled compiles are bit-identical to
// uncached ones (cold and warm, across timing modes and closure), cache
// hits are shared across worker counts, the LRU bounds hold, pattern
// interning refcounts compose with eviction, and delta recompiles of
// edited netlists stay functionally correct with full-recompile QoR.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "arch/routing_graph.hpp"
#include "cache/incremental.hpp"
#include "cache/key.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "config/serialize.hpp"
#include "core/flow.hpp"
#include "netlist/eval.hpp"
#include "sim/simulator.hpp"
#include "workload/circuits.hpp"
#include "workload/edits.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga::cache {
namespace {

arch::FabricSpec small_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;
  return spec;
}

netlist::MultiContextNetlist four_context_workload(std::size_t width = 8) {
  return workload::pipeline_workload(4, width);
}

/// Four contexts with NO cross-context sharing: editing one context's
/// logic cannot split a shared class, so a single-context edit leaves the
/// clustering of every other context untouched.
netlist::MultiContextNetlist unshared_workload() {
  workload::RandomMultiContextParams params;
  params.base.num_inputs = 6;
  params.base.num_nodes = 16;
  params.base.max_arity = 3;
  params.base.seed = 77;
  params.share_fraction = 0.0;
  return workload::random_multi_context(params);
}

void expect_same_design(const core::CompiledDesign& a,
                        const core::CompiledDesign& b) {
  EXPECT_EQ(a.placement.cluster_pos, b.placement.cluster_pos);
  EXPECT_EQ(a.placement.io_pads, b.placement.io_pads);
  ASSERT_EQ(a.routing.success, b.routing.success);
  ASSERT_EQ(a.routing.nets.size(), b.routing.nets.size());
  for (std::size_t c = 0; c < a.routing.nets.size(); ++c) {
    ASSERT_EQ(a.routing.nets[c].size(), b.routing.nets[c].size());
    for (std::size_t i = 0; i < a.routing.nets[c].size(); ++i) {
      const auto& na = a.routing.nets[c][i];
      const auto& nb = b.routing.nets[c][i];
      EXPECT_EQ(na.source, nb.source);
      ASSERT_EQ(na.paths.size(), nb.paths.size());
      for (std::size_t p = 0; p < na.paths.size(); ++p) {
        EXPECT_EQ(na.paths[p].sink, nb.paths[p].sink);
        EXPECT_EQ(na.paths[p].edges, nb.paths[p].edges);
      }
    }
  }
  ASSERT_EQ(a.routing.switch_patterns.size(), b.routing.switch_patterns.size());
  for (std::size_t s = 0; s < a.routing.switch_patterns.size(); ++s) {
    EXPECT_EQ(a.routing.switch_patterns[s], b.routing.switch_patterns[s]);
  }
  ASSERT_EQ(a.context_stats.size(), b.context_stats.size());
  for (std::size_t c = 0; c < a.context_stats.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.context_stats[c].critical_path,
                     b.context_stats[c].critical_path);
    EXPECT_EQ(a.context_stats[c].wire_nodes_used,
              b.context_stats[c].wire_nodes_used);
  }
  EXPECT_EQ(config::to_text(a.full_bitstream), config::to_text(b.full_bitstream));
}

/// Simulates the programmed fabric against netlist::evaluate on `source`.
void expect_functionally_correct(const core::CompiledDesign& design,
                                 const netlist::MultiContextNetlist& source) {
  arch::RoutingGraph graph(design.fabric);
  const sim::FabricSimulator simulator(graph, design.program);
  Rng rng(123);
  for (std::size_t c = 0; c < source.num_contexts(); ++c) {
    const netlist::Dfg& dfg = source.context(c);
    for (std::size_t v = 0; v < 8; ++v) {
      netlist::ValueMap inputs;
      for (const auto& node : dfg.nodes()) {
        if (node.type == netlist::NodeType::kPrimaryInput) {
          inputs[node.name] = rng.next_bool();
        }
      }
      const netlist::ValueMap expected = netlist::evaluate(dfg, inputs);
      const netlist::ValueMap actual = simulator.eval(c, inputs);
      for (const auto& [name, value] : expected) {
        const auto it = actual.find(name);
        ASSERT_NE(it, actual.end()) << "missing output " << name;
        EXPECT_EQ(it->second, value)
            << "context " << c << " output " << name;
      }
    }
  }
}

double worst_critical_path(const core::CompiledDesign& design) {
  double worst = 0.0;
  for (const auto& s : design.context_stats) {
    worst = std::max(worst, s.critical_path);
  }
  return worst;
}

std::size_t total_wirelength(const core::CompiledDesign& design) {
  std::size_t total = 0;
  for (const auto& s : design.context_stats) {
    total += s.wire_nodes_used;
  }
  return total;
}

/// First LUT-op node index of context 0 with at least `min_index` nodes
/// before it (so rewire edits have retarget candidates).
std::size_t pick_lut_node(const netlist::MultiContextNetlist& nl,
                          std::size_t min_index = 2) {
  const netlist::Dfg& dfg = nl.context(0);
  for (std::size_t i = min_index; i < dfg.num_nodes(); ++i) {
    if (dfg.node(static_cast<netlist::NodeRef>(i)).type ==
        netlist::NodeType::kLutOp) {
      return i;
    }
  }
  ADD_FAILURE() << "workload has no LUT node";
  return 0;
}

std::vector<core::CompileOptions> config_matrix() {
  std::vector<core::CompileOptions> matrix;
  core::CompileOptions base;
  matrix.push_back(base);
  core::CompileOptions placer_timing = base;
  placer_timing.placer.timing_mode = true;
  matrix.push_back(placer_timing);
  core::CompileOptions router_timing = base;
  router_timing.router.timing_mode = true;
  matrix.push_back(router_timing);
  core::CompileOptions both = placer_timing;
  both.router.timing_mode = true;
  matrix.push_back(both);
  core::CompileOptions closure = both;
  closure.closure_iterations = 3;
  matrix.push_back(closure);
  return matrix;
}

// --- cold/warm bit-identity -------------------------------------------------

TEST(StageCache, ColdAndWarmCompilesMatchUncachedBitForBit) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  for (const auto& opts : config_matrix()) {
    const core::CompiledDesign plain = core::compile(nl, spec, opts);

    CompileService service;
    const Compiled cold = service.compile(nl, spec, opts);
    expect_same_design(plain, cold.design);
    EXPECT_EQ(cold.design.cache.hits, 0u);
    EXPECT_GT(cold.design.cache.misses, 0u);

    const Compiled warm = service.compile(nl, spec, opts);
    expect_same_design(plain, warm.design);
    EXPECT_EQ(warm.design.cache.misses, 0u)
        << "closure=" << opts.closure_iterations;
    EXPECT_EQ(warm.design.cache.hits,
              opts.closure_iterations >= 2 ? 6u : 8u);
  }
}

TEST(StageCache, HitsAreSharedAcrossWorkerCounts) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  CompileService service;

  core::CompileOptions serial;
  serial.placer.num_threads = 1;
  serial.router.num_threads = 1;
  const Compiled cold = service.compile(nl, spec, serial);

  core::CompileOptions parallel = serial;
  parallel.placer.num_threads = 4;
  parallel.router.num_threads = 4;
  const Compiled warm = service.compile(nl, spec, parallel);
  // Worker counts never change results, so they are excluded from the
  // content keys: the parallel compile is a pure replay.
  EXPECT_EQ(warm.design.cache.misses, 0u);
  expect_same_design(cold.design, warm.design);
}

// --- cache bounds -----------------------------------------------------------

TEST(StageCache, LruEvictionHoldsEntryBound) {
  // Room for one pipeline's artifacts (8) but not three: the bound must
  // hold throughout while the freshest design stays fully resident.
  IncrementalOptions options;
  options.limits.max_entries = 10;
  CompileService service(options);
  const auto spec = small_spec();
  for (const std::size_t width : {6u, 8u, 10u}) {
    service.compile(four_context_workload(width), spec);
    EXPECT_LE(service.artifacts().num_entries(), 10u);
  }
  EXPECT_GT(service.artifacts().counters().evictions, 0u);
  // The freshest artifacts still replay despite the churn.
  const Compiled warm = service.compile(four_context_workload(10), spec);
  EXPECT_EQ(warm.design.cache.misses, 0u);
}

TEST(StageCache, ByteBoundNeverEvictsTheSoleEntry) {
  IncrementalOptions options;
  options.limits.max_bytes = 1;  // every artifact is over budget
  CompileService service(options);
  service.compile(four_context_workload(), small_spec());
  EXPECT_EQ(service.artifacts().num_entries(), 1u);
  EXPECT_GT(service.artifacts().counters().evictions, 0u);
}

// --- pattern interning ------------------------------------------------------

TEST(PatternInterner, RefcountsDedupAndLowestFirstRecycling) {
  PatternInterner interner;
  const config::ContextPattern a(BitVector::from_string("0101"));
  const config::ContextPattern b(BitVector::from_string("1111"));

  const auto id_a = interner.intern(a);
  EXPECT_EQ(interner.intern(config::ContextPattern(
                BitVector::from_string("0101"))),
            id_a);
  EXPECT_EQ(interner.ref_count(id_a), 2u);
  EXPECT_EQ(interner.dedup_hits(), 1u);
  EXPECT_EQ(interner.num_live(), 1u);

  const auto id_b = interner.intern(b);
  EXPECT_NE(id_b, id_a);
  EXPECT_EQ(interner.num_live(), 2u);

  interner.release(id_a);
  EXPECT_EQ(interner.ref_count(id_a), 1u);
  interner.release(id_a);
  EXPECT_EQ(interner.ref_count(id_a), 0u);
  EXPECT_EQ(interner.num_live(), 1u);
  EXPECT_THROW(interner.release(id_a), InvalidArgument);

  // The dead id is recycled lowest-first for the next new pattern.
  const auto id_c = interner.intern(config::ContextPattern(
      BitVector::from_string("0011")));
  EXPECT_EQ(id_c, id_a);
}

TEST(PatternInterner, PatternSetRetainsOnCopyReleasesOnDestroy) {
  PatternInterner interner;
  const config::ContextPattern p(BitVector::from_string("0110"));
  {
    PatternSet set(&interner);
    set.add(p);
    set.add(p);  // duplicate id, second reference
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.ids()[0], set.ids()[1]);
    EXPECT_EQ(interner.ref_count(set.ids()[0]), 2u);
    {
      const PatternSet copy = set;
      EXPECT_EQ(interner.ref_count(set.ids()[0]), 4u);
    }
    EXPECT_EQ(interner.ref_count(set.ids()[0]), 2u);
  }
  EXPECT_EQ(interner.num_live(), 0u);
}

TEST(StageCache, CachedDesignsDedupSwitchPatterns) {
  CompileService service;
  const auto spec = small_spec();
  service.compile(four_context_workload(), spec);
  const std::size_t live_after_one = service.patterns().num_live();
  EXPECT_GT(live_after_one, 0u);
  // A second design reuses mostly the same patterns (all-zero rows alone
  // dedup massively), so the live count grows far slower than the stores.
  service.compile(four_context_workload(10), spec);
  EXPECT_GT(service.patterns().dedup_hits(), service.patterns().num_live());
}

// --- content keys -----------------------------------------------------------

TEST(CacheKeys, DistinguishInputsAndChainStages) {
  const auto nl = four_context_workload();
  const auto other = four_context_workload(10);
  const auto spec = small_spec();
  const core::CompileOptions opts;

  const auto base = flow_base_key(nl, spec, opts);
  EXPECT_NE(base, flow_base_key(other, spec, opts));

  auto wider = spec;
  wider.channel_width += 2;
  EXPECT_NE(base, flow_base_key(nl, wider, opts));

  auto seeded = opts;
  seeded.seed = 2;
  EXPECT_NE(base, flow_base_key(nl, spec, seeded));

  EXPECT_NE(stage_key(base, "place"), stage_key(base, "route"));
  EXPECT_NE(stage_key(stage_key(base, "place"), "route"),
            stage_key(base, "route"));

  // Worker counts are result-neutral and stay out of the option hash.
  auto threaded = opts;
  threaded.placer.num_threads = 8;
  threaded.router.num_threads = 8;
  EXPECT_EQ(hash_compile_options(opts), hash_compile_options(threaded));
}

// --- delta recompile --------------------------------------------------------

TEST(DeltaRecompile, ZeroEditIsAPureReplay) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  CompileService service;
  const core::CompileOptions opts;
  const Compiled base = service.compile(nl, spec, opts);
  const Compiled again = service.compile_incremental(base, nl, opts);
  EXPECT_FALSE(again.design.cache.delta);
  EXPECT_TRUE(again.design.cache.delta_fallback.empty());
  EXPECT_EQ(again.design.cache.misses, 0u);
  expect_same_design(base.design, again.design);
}

TEST(DeltaRecompile, RetableEditMatchesFullRecompileBitForBit) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  CompileService service;
  const core::CompileOptions opts;
  const Compiled base = service.compile(nl, spec, opts);

  const auto edited = workload::retable_edit(nl, pick_lut_node(nl), 5);
  const Compiled inc = service.compile_incremental(base, edited, opts);
  EXPECT_TRUE(inc.design.cache.delta) << inc.design.cache.delta_fallback;
  EXPECT_EQ(inc.design.cache.nets_invalidated, 0u);
  EXPECT_GT(inc.design.cache.anneal_moves_saved, 0u);

  // A truth-table edit leaves the placement problem and every physical
  // net unchanged, so the delta design must equal a from-scratch compile
  // of the edited netlist bit for bit.
  const core::CompiledDesign full = core::compile(edited, spec, opts);
  expect_same_design(full, inc.design);
  expect_functionally_correct(inc.design, edited);
}

TEST(DeltaRecompile, OptionChangeFallsBackToFullCompile) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  CompileService service;
  const core::CompileOptions opts;
  const Compiled base = service.compile(nl, spec, opts);

  auto reseeded = opts;
  reseeded.seed = 99;
  const auto edited = workload::retable_edit(nl, pick_lut_node(nl), 5);
  const Compiled inc = service.compile_incremental(base, edited, reseeded);
  EXPECT_FALSE(inc.design.cache.delta);
  EXPECT_EQ(inc.design.cache.delta_fallback, "compile options changed");
  EXPECT_TRUE(inc.design.routing.success);
  expect_functionally_correct(inc.design, edited);
}

TEST(DeltaRecompile, RandomEditSequencesStayCorrectWithFullQoR) {
  const auto spec = small_spec();
  CompileService service;
  core::CompileOptions opts;
  netlist::MultiContextNetlist current = four_context_workload();
  Compiled compiled = service.compile(current, spec, opts);

  Rng rng(9);
  std::size_t deltas_taken = 0;
  for (std::size_t step = 0; step < 6; ++step) {
    const std::size_t node = pick_lut_node(current) +
                             rng.next_below(3);
    const auto edited =
        step % 2 == 0 ? workload::retable_edit(current, node, step + 11)
                      : workload::rewire_edit(current, node, step + 11);
    const Compiled next = service.compile_incremental(compiled, edited, opts);
    ASSERT_TRUE(next.design.routing.success) << "step " << step;
    expect_functionally_correct(next.design, edited);
    if (next.design.cache.delta) {
      ++deltas_taken;
      // QoR guard: the delta design must match a full recompile of the
      // same netlist to within a small factor on both timing and wire.
      const core::CompiledDesign full = core::compile(edited, spec, opts);
      EXPECT_LE(worst_critical_path(next.design),
                worst_critical_path(full) * 1.5 + 1.0)
          << "step " << step;
      EXPECT_LE(total_wirelength(next.design),
                static_cast<std::size_t>(
                    static_cast<double>(total_wirelength(full)) * 1.5) + 8)
          << "step " << step;
    }
    compiled = std::move(next);
    current = edited;
  }
  // The sequence must exercise the delta path, not just fall back.
  EXPECT_GT(deltas_taken, 0u);
}

TEST(DeltaRecompile, IncrementalProgramStageReusesRowsBitForBit) {
  // The delta path's incremental ProgramStage copies cached bitstream
  // rows for every switch and cluster the edit left alone, regenerating
  // only the touched resources — and the assembled bitstream must equal a
  // full recompile's bit for bit.
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  CompileService service;
  const core::CompileOptions opts;
  const Compiled base = service.compile(nl, spec, opts);

  const auto edited = workload::retable_edit(nl, pick_lut_node(nl), 5);
  const Compiled inc = service.compile_incremental(base, edited, opts);
  ASSERT_TRUE(inc.design.cache.delta) << inc.design.cache.delta_fallback;
  EXPECT_TRUE(inc.design.cache.delta_fallback.empty());  // no full reprogram
  const core::CacheStats& cache = inc.design.cache;
  EXPECT_GT(cache.program_rows_reused, 0u);
  EXPECT_GT(cache.program_rows_reprogrammed, 0u);
  // Every row is accounted exactly once.
  EXPECT_EQ(cache.program_rows_reused + cache.program_rows_reprogrammed,
            inc.design.full_bitstream.num_rows());
  // A retable edit keeps the routing (all switch rows reuse) and touches
  // a handful of clusters, so reuse dominates.
  EXPECT_LT(cache.program_rows_reprogrammed, cache.program_rows_reused);

  const core::CompiledDesign full = core::compile(edited, spec, opts);
  EXPECT_EQ(config::to_text(full.full_bitstream),
            config::to_text(inc.design.full_bitstream));
  expect_functionally_correct(inc.design, edited);
}

TEST(DeltaRecompile, NegotiatedSingleContextEditTakesDeltaPath) {
  // Negotiated (and interleaved) flows keep their delta path when the
  // edit stays inside one context: every other context's negotiated trees
  // match verbatim, so the bargain they struck survives the recompile.
  const auto nl = unshared_workload();
  const auto spec = small_spec();
  for (const auto mode : {route::CrossContextMode::kNegotiated,
                          route::CrossContextMode::kInterleaved}) {
    CompileService service;
    core::CompileOptions opts;
    opts.router.cross_context_mode = mode;
    const Compiled base = service.compile(nl, spec, opts);

    netlist::MultiContextNetlist edited = nl;
    edited.context(0) =
        workload::retable_edit(nl, pick_lut_node(nl), 7).context(0);
    const Compiled inc = service.compile_incremental(base, edited, opts);
    EXPECT_TRUE(inc.design.cache.delta) << inc.design.cache.delta_fallback;
    EXPECT_GT(inc.design.cache.program_rows_reused, 0u);

    // A truth-table edit keeps every physical net, so the delta design
    // equals a from-scratch negotiated compile bit for bit.
    const core::CompiledDesign full = core::compile(edited, spec, opts);
    expect_same_design(full, inc.design);
    expect_functionally_correct(inc.design, edited);
  }
}

TEST(DeltaRecompile, NegotiatedMultiContextEditFallsBack) {
  // An edit spanning contexts would silently drop the cross-context
  // bargain if the delta path re-routed without negotiation, so it takes
  // the full pipeline with a dedicated fallback reason.
  const auto nl = unshared_workload();
  const auto spec = small_spec();
  CompileService service;
  core::CompileOptions opts;
  opts.router.cross_context_mode = route::CrossContextMode::kNegotiated;
  const Compiled base = service.compile(nl, spec, opts);

  // retable_edit rewrites the node in EVERY context it exists in.
  const auto edited = workload::retable_edit(nl, pick_lut_node(nl), 7);
  const NetlistDiff diff = diff_netlists(nl, edited);
  std::size_t touched = 0;
  for (const std::size_t changed : diff.changed_per_context) {
    touched += changed > 0 ? 1 : 0;
  }
  ASSERT_GE(touched, 2u);

  const Compiled inc = service.compile_incremental(base, edited, opts);
  EXPECT_FALSE(inc.design.cache.delta);
  EXPECT_EQ(inc.design.cache.delta_fallback, "negotiated multi-context edit");
  EXPECT_TRUE(inc.design.routing.success);
  expect_functionally_correct(inc.design, edited);
}

TEST(DeltaRecompile, DeterministicForAnyWorkerCount) {
  const auto nl = four_context_workload();
  const auto spec = small_spec();
  const auto edited = workload::rewire_edit(nl, pick_lut_node(nl), 21);

  std::vector<core::CompiledDesign> designs;
  for (const std::size_t workers : {1u, 4u}) {
    core::CompileOptions opts;
    opts.placer.num_threads = workers;
    opts.router.num_threads = workers;
    CompileService service;
    const Compiled base = service.compile(nl, spec, opts);
    designs.push_back(
        service.compile_incremental(base, edited, opts).design);
  }
  expect_same_design(designs[0], designs[1]);
}

}  // namespace
}  // namespace mcfpga::cache
