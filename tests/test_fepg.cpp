// Unit tests for the ferroelectric functional pass-gate model (Fig. 15):
// SE equivalence, non-volatility, and endurance accounting.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/pattern.hpp"
#include "rcm/decoder_synth.hpp"
#include "rcm/fepg.hpp"

namespace mcfpga::rcm {
namespace {

TEST(FerroelectricCell, WriteAndRead) {
  FerroelectricCell cell;
  EXPECT_FALSE(cell.read());
  cell.write(true);
  EXPECT_TRUE(cell.read());
  cell.write(false);
  EXPECT_FALSE(cell.read());
}

TEST(FerroelectricCell, ReversalAccounting) {
  FerroelectricCell cell;
  cell.write(false);  // same value: free
  EXPECT_EQ(cell.reversals(), 0u);
  cell.write(true);   // reversal
  cell.write(true);   // free
  cell.write(false);  // reversal
  EXPECT_EQ(cell.reversals(), 2u);
}

// Fig. 15(c) truth table: (d1,d0)=(0,0)->0, (0,1)->1, (1,-)->U.
TEST(FePassGate, TruthTableMatchesFig15) {
  FePassGate g00;
  g00.program(false, false);
  FePassGate g01;
  g01.program(false, true);
  FePassGate g1x;
  g1x.program(true, false);
  for (const bool u : {false, true}) {
    EXPECT_FALSE(g00.eval_with_u(u));
    EXPECT_TRUE(g01.eval_with_u(u));
    EXPECT_EQ(g1x.eval_with_u(u), u);
  }
}

// Exhaustive equivalence against every SE programming (the "same as an SE"
// claim of Sec. 5).
TEST(FePassGate, ExhaustivelyEquivalentToSwitchElement) {
  for (const bool d1 : {false, true}) {
    for (const bool d0 : {false, true}) {
      for (std::size_t bit = 0; bit < 2; ++bit) {
        for (const bool inv : {false, true}) {
          SwitchElement se;
          se.d1 = d1;
          se.d0 = d0;
          se.u = IdBitRef{bit, inv};
          const FePassGate gate = FePassGate::from_switch_element(se);
          EXPECT_TRUE(fepg_matches_se(gate, se, 4))
              << "d1=" << d1 << " d0=" << d0 << " bit=" << bit
              << " inv=" << inv;
        }
      }
    }
  }
}

TEST(FePassGate, RoundTripsThroughSwitchElement) {
  const SwitchElement se = SwitchElement::id_bit(1, true);
  const FePassGate gate = FePassGate::from_switch_element(se);
  const SwitchElement back = gate.to_switch_element();
  EXPECT_EQ(back.d1, se.d1);
  EXPECT_EQ(back.d0, se.d0);
  EXPECT_EQ(back.u, se.u);
}

TEST(FePassGate, StateSurvivesPowerCycle) {
  FePassGate gate;
  gate.program(false, true);  // constant 1
  gate.power_cycle();
  EXPECT_TRUE(gate.eval_with_u(false));
  EXPECT_TRUE(gate.eval_with_u(true));
  EXPECT_TRUE(gate.d0());
}

TEST(FePassGate, FloatingUThrowsLikeSe) {
  FePassGate gate;
  gate.program(true, false);  // d1=1 with no U source
  EXPECT_THROW(gate.eval(0), ProgrammingError);
}

TEST(FePassGate, ReprogrammingCountsReversals) {
  FePassGate gate;
  gate.program(true, false);   // d1: 0->1 (1 reversal)
  gate.program(false, true);   // d1: 1->0, d0: 0->1 (2 reversals)
  gate.program(false, true);   // no change
  EXPECT_EQ(gate.total_reversals(), 3u);
}

// A decoder network realized with FePGs context-by-context matches the
// CMOS realization — the substitution the Sec. 5 evaluation makes.
TEST(FePassGate, DecoderNetworkRealization) {
  for (const char* pattern : {"1000", "0110", "0101", "1111"}) {
    const auto p = config::ContextPattern::from_string(pattern);
    const auto net = synthesize_decoder(p);
    for (const auto& d : net.elements()) {
      const FePassGate gate = FePassGate::from_switch_element(d.se);
      EXPECT_TRUE(fepg_matches_se(gate, d.se, 4)) << pattern;
    }
  }
}

}  // namespace
}  // namespace mcfpga::rcm
