// Tests for the bucket-queue maze-expansion engine
// (RouterOptions::queue_mode + route/bucket_queue.hpp): the calendar
// queue's quantization mechanics (zero-cost seeds, FIFO ties, the
// overflow bucket and its FIFO-preserving rebase, the monotone clamp),
// bucket-mode routing determinism fuzzed across worker counts, the
// never-worse QoR contract against the binary heap with timing off and
// on, and kBinaryHeap's identity with the pre-option default engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/routing_graph.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/flow.hpp"
#include "route/bucket_queue.hpp"
#include "route/router.hpp"
#include "route/router_core.hpp"
#include "workload/circuits.hpp"

namespace mcfpga::route {
namespace {

// --- BucketQueue quantization mechanics ----------------------------------

std::vector<arch::NodeId> drain(BucketQueue& q) {
  std::vector<arch::NodeId> order;
  while (!q.empty()) {
    order.push_back(q.pop().value);
  }
  return order;
}

TEST(BucketQueue, ConfigureValidates) {
  BucketQueue q;
  EXPECT_THROW(q.configure(0.0, 8), InvalidArgument);
  EXPECT_THROW(q.configure(-0.5, 8), InvalidArgument);
  EXPECT_THROW(q.configure(0.5, 1), InvalidArgument);
  EXPECT_NO_THROW(q.configure(0.5, 2));
}

TEST(BucketQueue, PopFromEmptyThrows) {
  BucketQueue q;
  q.configure(0.5, 8);
  EXPECT_THROW(q.pop(), InvalidArgument);
  q.push(1.0, 7);
  q.pop();
  EXPECT_THROW(q.pop(), InvalidArgument);
}

TEST(BucketQueue, ZeroCostSeedsPopFirstInPushOrder) {
  // Zero-cost seeds (the source and every already-committed tree node)
  // all quantize to bucket 0 and must come back FIFO.
  BucketQueue q;
  q.configure(0.5, 16);
  q.push(0.0, 10);
  q.push(0.0, 11);
  q.push(0.3, 12);  // same bucket as the zero-cost seeds
  q.push(1.0, 13);
  EXPECT_EQ(drain(q), (std::vector<arch::NodeId>{10, 11, 12, 13}));
}

TEST(BucketQueue, FifoWithinABucketAndCostOrderAcross) {
  BucketQueue q;
  q.configure(1.0, 16);
  // Three exact ties and two same-bucket near-ties, interleaved with a
  // cheaper and a costlier bucket.
  q.push(5.0, 1);
  q.push(2.0, 2);
  q.push(5.0, 3);
  q.push(5.5, 4);
  q.push(9.0, 5);
  q.push(5.0, 6);
  EXPECT_EQ(drain(q), (std::vector<arch::NodeId>{2, 1, 3, 4, 6, 5}));
}

TEST(BucketQueue, OverflowRebasePreservesCostOrderAndFifo) {
  // Span 4 from base 0: quantized costs >= 4 overflow.  After the
  // calendar drains the queue rebases onto the smallest overflow cost
  // and the 9.x ties must still pop in insertion order.
  BucketQueue q;
  q.configure(1.0, 4);
  q.push(1.5, 1);
  q.push(9.0, 2);
  q.push(2.5, 3);
  q.push(9.2, 4);
  q.push(9.1, 5);
  q.push(6.0, 6);
  EXPECT_EQ(drain(q), (std::vector<arch::NodeId>{1, 3, 6, 2, 4, 5}));
}

TEST(BucketQueue, MonotoneClampNeverDropsLateCheapPushes) {
  BucketQueue q;
  q.configure(1.0, 8);
  q.push(3.7, 1);
  EXPECT_EQ(q.pop().value, 1u);  // cursor now at bucket 3
  // A push behind the cursor is filed into the current bucket instead of
  // a consumed one — still popped, never lost.
  q.push(1.2, 2);
  EXPECT_EQ(q.pop().value, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueue, ClearAllowsReuse) {
  BucketQueue q;
  q.configure(0.5, 8);
  q.push(1.0, 1);
  q.push(2.0, 2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(0.5, 3);
  EXPECT_EQ(drain(q), (std::vector<arch::NodeId>{3}));
}

// --- Router-level properties ---------------------------------------------

arch::FabricSpec small_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 8;
  spec.double_length_tracks = 4;
  return spec;
}

/// Deterministic congested multi-context route problem straight on the
/// routing graph (endpoints sampled without replacement — PathFinder's
/// exclusivity rules make duplicate endpoints unroutable).
std::vector<std::vector<RouteNet>> random_route_problem(
    const arch::RoutingGraph& g, std::size_t nets_per_context,
    std::uint64_t seed) {
  const arch::FabricSpec& spec = g.spec();
  std::uint64_t state = seed;
  const auto next = [&]() {  // splitmix64
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  std::vector<std::vector<RouteNet>> nets(4);
  for (std::size_t c = 0; c < nets.size(); ++c) {
    std::vector<arch::NodeId> sources;
    std::vector<arch::NodeId> sinks;
    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x) {
        for (std::size_t p = 0; p < spec.logic_block.num_outputs; ++p) {
          sources.push_back(g.out_pin(x, y, p));
        }
        for (std::size_t p = 0; p < spec.logic_block.base_inputs; ++p) {
          sinks.push_back(g.in_pin(x, y, p));
        }
      }
    }
    for (std::size_t i = sources.size(); i > 1; --i) {
      std::swap(sources[i - 1], sources[next() % i]);
    }
    for (std::size_t i = sinks.size(); i > 1; --i) {
      std::swap(sinks[i - 1], sinks[next() % i]);
    }
    std::size_t sink_at = 0;
    for (std::size_t i = 0; i < nets_per_context; ++i) {
      RouteNet net;
      net.name = "n" + std::to_string(c) + "_" + std::to_string(i);
      net.source = sources[i];
      const std::size_t fanout = 1 + next() % 2;
      for (std::size_t s = 0; s < fanout && sink_at < sinks.size(); ++s) {
        net.sinks.push_back(sinks[sink_at++]);
      }
      nets[c].push_back(std::move(net));
    }
  }
  return nets;
}

void expect_same_routing(const RouteResult& a, const RouteResult& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t c = 0; c < a.nets.size(); ++c) {
    ASSERT_EQ(a.nets[c].size(), b.nets[c].size()) << "context " << c;
    for (std::size_t i = 0; i < a.nets[c].size(); ++i) {
      ASSERT_EQ(a.nets[c][i].paths.size(), b.nets[c][i].paths.size());
      for (std::size_t p = 0; p < a.nets[c][i].paths.size(); ++p) {
        EXPECT_EQ(a.nets[c][i].paths[p].edges, b.nets[c][i].paths[p].edges)
            << "context " << c << " net " << i << " path " << p;
      }
    }
  }
}

std::size_t worst_critical_switches(const RouteResult& r) {
  std::size_t worst = 0;
  for (std::size_t c = 0; c < r.nets.size(); ++c) {
    worst = std::max(worst, r.critical_switches(c));
  }
  return worst;
}

std::size_t total_wirelength(const RouteResult& r) {
  std::size_t total = 0;
  for (const auto& s : r.context_summary) {
    total += s.wire_nodes_used;
  }
  return total;
}

constexpr std::uint64_t kFuzzSeeds[] = {11, 42, 97, 1234, 5150, 90210};

TEST(BucketEngine, DeterministicAcrossWorkerCounts) {
  const arch::RoutingGraph g(small_spec());
  for (const std::uint64_t seed : kFuzzSeeds) {
    const auto nets = random_route_problem(g, 18, seed);
    RouterOptions opts;
    opts.queue_mode = QueueMode::kBucket;
    opts.num_threads = 1;
    const RouteResult reference = Router(g, opts).route(nets);
    ASSERT_TRUE(reference.success) << "seed " << seed;
    for (const std::size_t workers : {std::size_t{2}, std::size_t{4},
                                      std::size_t{0}}) {
      opts.num_threads = workers;
      const RouteResult got = Router(g, opts).route(nets);
      SCOPED_TRACE("seed " + std::to_string(seed) + " workers " +
                   std::to_string(workers));
      expect_same_routing(reference, got);
      // Counters describe the same expansion, so they must agree too.
      for (std::size_t c = 0; c < got.context_summary.size(); ++c) {
        EXPECT_EQ(got.context_summary[c].heap_pushes,
                  reference.context_summary[c].heap_pushes);
        EXPECT_EQ(got.context_summary[c].nodes_expanded,
                  reference.context_summary[c].nodes_expanded);
      }
    }
  }
}

TEST(BucketEngine, NeverWorseQoRUntimed) {
  // Lexicographic QoR (worst critical switches, then wirelength) over the
  // fuzz seeds: the bucket engine may tie-break differently but must not
  // finish worse.  Deterministic, so a regression here is a real one.
  const arch::RoutingGraph g(small_spec());
  for (const std::uint64_t seed : kFuzzSeeds) {
    const auto nets = random_route_problem(g, 18, seed);
    RouterOptions opts;
    const RouteResult binary = Router(g, opts).route(nets);
    opts.queue_mode = QueueMode::kBucket;
    const RouteResult bucket = Router(g, opts).route(nets);
    ASSERT_TRUE(binary.success) << "seed " << seed;
    ASSERT_TRUE(bucket.success) << "seed " << seed;
    const std::size_t ws_bin = worst_critical_switches(binary);
    const std::size_t ws_buk = worst_critical_switches(bucket);
    EXPECT_TRUE(ws_buk < ws_bin ||
                (ws_buk == ws_bin &&
                 total_wirelength(bucket) <= total_wirelength(binary)))
        << "seed " << seed << ": bucket (" << ws_buk << ", "
        << total_wirelength(bucket) << ") vs binary (" << ws_bin << ", "
        << total_wirelength(binary) << ")";
  }
}

TEST(BucketEngine, NeverWorseQoRTimedFlow) {
  // Same contract through the timing-driven compile flow: worst context
  // critical path first, then wirelength.
  const auto worst_path = [](const core::CompiledDesign& d) {
    double worst = 0.0;
    for (const auto& s : d.context_stats) {
      worst = std::max(worst, s.critical_path);
    }
    return worst;
  };
  const auto wirelength = [](const core::CompiledDesign& d) {
    std::size_t total = 0;
    for (const auto& s : d.context_stats) {
      total += s.wire_nodes_used;
    }
    return total;
  };
  for (const std::size_t stages : {std::size_t{6}, std::size_t{8}}) {
    const auto nl = workload::pipeline_workload(4, stages);
    core::CompileOptions opts;
    opts.placer.timing_mode = true;
    opts.router.timing_mode = true;
    const auto binary = core::compile(nl, small_spec(), opts);
    opts.router.queue_mode = QueueMode::kBucket;
    const auto bucket = core::compile(nl, small_spec(), opts);
    EXPECT_TRUE(worst_path(bucket) < worst_path(binary) ||
                (worst_path(bucket) == worst_path(binary) &&
                 wirelength(bucket) <= wirelength(binary)))
        << "pipeline(4," << stages << "): bucket (" << worst_path(bucket)
        << ", " << wirelength(bucket) << ") vs binary ("
        << worst_path(binary) << ", " << wirelength(binary) << ")";
  }
}

TEST(BucketEngine, BinaryHeapModeMatchesDefault) {
  // kBinaryHeap is the default and must be the pre-option engine:
  // spelling it explicitly, or routing through an external CorePool,
  // changes nothing.
  const arch::RoutingGraph g(small_spec());
  const auto nets = random_route_problem(g, 18, 7);
  const RouteResult implicit = Router(g, {}).route(nets);
  RouterOptions opts;
  opts.queue_mode = QueueMode::kBinaryHeap;
  const Router router(g, opts);
  expect_same_routing(implicit, router.route(nets));
  CorePool pool;
  expect_same_routing(implicit,
                      router.route(nets, nullptr, nullptr, nullptr, &pool));
  // A warm pool (second route over the same cores) stays identical too.
  expect_same_routing(implicit,
                      router.route(nets, nullptr, nullptr, nullptr, &pool));
}

// --- CalendarQueue fuzz: span boundaries, rebase cycles, FIFO --------------

/// Reference model of the queue's contract, used as the fuzz oracle:
/// priority = quantized cost clamped to the monotone floor (the priority
/// of the most recent pop), minimum priority pops first, FIFO within a
/// priority.  O(n) pops — fine at test sizes.
class ReferenceCalendar {
 public:
  explicit ReferenceCalendar(double quantum) : inv_quantum_(1.0 / quantum) {}

  void push(double cost, arch::NodeId value) {
    // Same expression as CalendarQueue::quantize, so the model cannot
    // disagree with the queue over floating-point rounding.
    std::uint64_t q =
        cost > 0.0 ? static_cast<std::uint64_t>(cost * inv_quantum_) : 0;
    q = std::max(q, floor_);
    items_.push_back(Entry{q, seq_++, value});
  }

  bool empty() const { return items_.empty(); }

  arch::NodeId pop() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].prio < items_[best].prio ||
          (items_[i].prio == items_[best].prio &&
           items_[i].seq < items_[best].seq)) {
        best = i;
      }
    }
    floor_ = items_[best].prio;
    const arch::NodeId value = items_[best].value;
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(best));
    return value;
  }

 private:
  struct Entry {
    std::uint64_t prio;
    std::uint64_t seq;
    arch::NodeId value;
  };
  double inv_quantum_;
  std::uint64_t floor_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<Entry> items_;
};

TEST(BucketQueue, ItemsExactlyAtBucketSpanOverflow) {
  // quantum 0.5, span 4: quantized cost 3 is the last calendar bucket,
  // quantized cost 4 (== span, cost 2.0 exactly) must take the overflow
  // list and come back via rebase — in push order and after everything
  // the calendar held.
  BucketQueue q;
  q.configure(0.5, 4);
  q.push(2.0, 1);    // q=4: exactly at span -> overflow
  q.push(1.999, 2);  // q=3: last calendar bucket
  q.push(0.0, 3);    // q=0
  q.push(2.0, 4);    // q=4: overflow, after 1
  q.push(3.7, 5);    // q=7: overflow
  EXPECT_EQ(drain(q), (std::vector<arch::NodeId>{3, 2, 1, 4, 5}));
}

TEST(BucketQueue, ZeroCostSeedsAfterRebaseClampToTheFloor) {
  // After a rebase onto a far-away overflow cost, zero-cost pushes (the
  // committed-tree seeds of the next expansion) must clamp to the new
  // floor instead of filing behind the pop cursor — and stay FIFO both
  // among themselves and against later same-bucket pushes.
  BucketQueue q;
  q.configure(0.5, 4);
  q.push(10.0, 1);  // q=20: overflow
  q.push(0.1, 2);   // q=0
  EXPECT_EQ(q.pop().value, 2);
  EXPECT_EQ(q.pop().value, 1);  // calendar drained -> rebase to base 20
  q.push(0.0, 3);               // clamps to the floor (q=20)
  q.push(0.0, 4);
  q.push(0.2, 5);  // also clamps
  q.push(10.3, 6);  // q=20 naturally: same bucket, FIFO after the clamps
  EXPECT_EQ(drain(q), (std::vector<arch::NodeId>{3, 4, 5, 6}));
}

TEST(BucketQueue, RepeatedDrainRebaseCyclesStayFifo) {
  // Maze expansion waves: each round's costs live far beyond the span,
  // forcing one rebase per round; order within and across rounds must
  // stay (quantized cost, push order).
  BucketQueue q;
  q.configure(0.5, 4);
  arch::NodeId id = 0;
  for (int round = 0; round < 5; ++round) {
    const double base_cost = 10.0 * (round + 1);
    std::vector<arch::NodeId> want;
    q.push(base_cost + 0.6, id);  // second bucket of the round
    const arch::NodeId late = id++;
    for (int i = 0; i < 3; ++i) {
      q.push(base_cost, id);  // three FIFO ties in the round's first bucket
      want.push_back(id++);
    }
    want.push_back(late);
    std::vector<arch::NodeId> got;
    for (std::size_t i = 0; i < want.size(); ++i) {
      got.push_back(q.pop().value);
    }
    EXPECT_EQ(got, want) << "round " << round;
    EXPECT_TRUE(q.empty());
  }
}

TEST(BucketQueue, FuzzMatchesReferenceModel) {
  // Random interleavings of pushes (costs spanning several calendar
  // windows, so overflow and rebase fire constantly) and pops, checked
  // item-by-item against the reference model.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    BucketQueue q;
    q.configure(0.5, 8);  // tiny span: quantized costs reach 4x past it
    ReferenceCalendar ref(0.5);
    arch::NodeId next_value = 0;
    for (int op = 0; op < 2000; ++op) {
      if (q.empty() || rng.next_double() < 0.6) {
        // Mix boundary-exact costs (multiples of the quantum, including
        // exactly span * quantum) with arbitrary ones and zero seeds.
        double cost = 0.0;
        switch (rng.next_below(3)) {
          case 0:
            cost = 0.5 * static_cast<double>(rng.next_below(33));
            break;
          case 1:
            cost = 16.0 * rng.next_double();
            break;
          default:
            cost = 0.0;
            break;
        }
        q.push(cost, next_value);
        ref.push(cost, next_value);
        ++next_value;
      } else {
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(q.pop().value, ref.pop()) << "seed " << seed;
      }
    }
    while (!q.empty()) {
      ASSERT_FALSE(ref.empty());
      EXPECT_EQ(q.pop().value, ref.pop()) << "seed " << seed;
    }
    EXPECT_TRUE(ref.empty());
  }
}

TEST(BucketQueue, PopBatchMatchesSequentialPops) {
  // pop_batch must return exactly what that many consecutive pop() calls
  // would — across bucket boundaries, the overflow rebase, and pushes
  // interleaved between batches (the speculative drain claims a window,
  // commits it, then pushes the dirty set before claiming the next).
  const auto build = [](BucketQueue& q) {
    q.configure(1.0, 4);
    q.push(1.5, 1);
    q.push(9.0, 2);
    q.push(2.5, 3);
    q.push(9.2, 4);
    q.push(0.0, 5);
    q.push(6.0, 6);
  };
  BucketQueue seq;
  build(seq);
  BucketQueue batched;
  build(batched);
  std::vector<BucketQueue::Item> batch;
  while (!batched.empty()) {
    const std::size_t got = batched.pop_batch(4, batch);
    ASSERT_EQ(got, batch.size());
    ASSERT_GT(got, 0u);
    for (std::size_t k = 0; k < got; ++k) {
      const auto ref = seq.pop();
      EXPECT_EQ(batch[k].value, ref.value);
      EXPECT_EQ(batch[k].cost, ref.cost);
    }
    if (batched.size() == 2) {  // mid-drain pushes land in later batches
      batched.push(3.0, 7);
      seq.push(3.0, 7);
    }
  }
  EXPECT_TRUE(seq.empty());
  // An over-long request drains what is there and reports the count.
  BucketQueue q;
  q.configure(0.5, 8);
  q.push(1.0, 1);
  q.push(0.5, 2);
  EXPECT_EQ(q.pop_batch(16, batch), 2u);
  EXPECT_EQ(batch[0].value, 2u);
  EXPECT_EQ(batch[1].value, 1u);
  EXPECT_EQ(q.pop_batch(16, batch), 0u);
  EXPECT_TRUE(batch.empty());
}

// --- CorePool checkout hardening -----------------------------------------

TEST(CorePool, CheckoutGuardsAgainstConcurrentClaims) {
  const arch::RoutingGraph g(small_spec());
  CorePool pool;
  pool.prepare(2, g, RouterOptions{});

  RouterCore& a = pool.checkout(0);
  EXPECT_EQ(&a, &pool.core(0));
  // Double checkout of a claimed slot is a programming error, not a
  // silent aliasing of one engine's scratch across two workers.
  EXPECT_THROW(pool.checkout(0), ProgrammingError);
  // The other slot is independent.
  EXPECT_NO_THROW(pool.checkout(1));
  pool.release(1);

  // Rebuilding the pool under a live checkout would pull the engine out
  // from under its worker.
  EXPECT_THROW(pool.prepare(2, g, RouterOptions{}), ProgrammingError);

  pool.release(0);
  // Released slots can be claimed again, and pay-as-you-go mismatches
  // are caught: releasing an idle slot or touching an unprepared one.
  EXPECT_NO_THROW(pool.checkout(0));
  pool.release(0);
  EXPECT_THROW(pool.release(0), ProgrammingError);
  EXPECT_THROW(pool.checkout(7), ProgrammingError);
  EXPECT_THROW(pool.release(7), ProgrammingError);

  // With every slot idle, prepare() may rebuild freely.
  EXPECT_NO_THROW(pool.prepare(3, g, RouterOptions{}));
}

}  // namespace
}  // namespace mcfpga::route
