// Entry validation of RouterOptions / PlacerOptions: bad knob values used
// to fail silently (or loop forever); now they raise InvalidArgument at
// the API boundary.
#include <gtest/gtest.h>

#include "arch/routing_graph.hpp"
#include "common/error.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"

namespace mcfpga {
namespace {

arch::FabricSpec tiny_spec() {
  arch::FabricSpec spec;
  spec.width = 2;
  spec.height = 2;
  spec.channel_width = 4;
  return spec;
}

TEST(RouterOptionsValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(route::RouterOptions{}.validate());
}

TEST(RouterOptionsValidation, RejectsZeroIterations) {
  route::RouterOptions o;
  o.max_iterations = 0;
  EXPECT_THROW(o.validate(), InvalidArgument);
}

TEST(RouterOptionsValidation, RejectsNegativeIncrements) {
  route::RouterOptions o;
  o.history_increment = -1.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.present_factor_growth = 0.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.max_criticality = 1.0;  // would erase congestion pressure entirely
  EXPECT_THROW(o.validate(), InvalidArgument);
}

TEST(RouterOptionsValidation, RejectsBadCriticalityExponentSchedules) {
  route::RouterOptions o;
  o.criticality_exponent_schedule.start = 0.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.criticality_exponent_schedule.start = -2.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.criticality_exponent_schedule.step = -0.5;  // ramps must not decay
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.criticality_exponent_schedule = {2.0, 0.5, 1.0};  // ceiling below start
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.criticality_exponent_schedule = {1.0, 0.5, 8.0};  // a real VPR ramp
  EXPECT_NO_THROW(o.validate());
}

TEST(RouterOptionsValidation, RejectsBadCrossContextKnobs) {
  route::RouterOptions o;
  o.cross_context_rounds = 0;  // negotiation needs at least one round
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.cross_context_pressure_weight = -0.5;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.cross_context_mode = route::CrossContextMode::kNegotiated;
  o.cross_context_rounds = 5;
  o.cross_context_pressure_weight = 0.0;  // pressureless negotiation is legal
  EXPECT_NO_THROW(o.validate());
}

TEST(RouterOptionsValidation, RejectsBadInterleaveKnobs) {
  route::RouterOptions o;
  o.interleave_waves = 0;  // the merged worklist needs at least one wave
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.interleave_crit_quantum = 0.0;  // priority buckets need positive width
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.interleave_crit_quantum = -0.25;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.interleave_crit_quantum = 1.5;  // keys live in [0, 1]
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.cross_context_mode = route::CrossContextMode::kInterleaved;
  o.interleave_waves = 3;
  o.interleave_crit_quantum = 0.25;
  EXPECT_NO_THROW(o.validate());
}

TEST(RouterOptionsValidation, RejectsBadEngineAndPressureKnobs) {
  route::RouterOptions o;
  o.pressure_ramp = -0.1;  // pressure may only grow round over round
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.bucket_quantum = 0.0;  // calendar buckets need positive width
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.bucket_quantum = -0.25;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.bucket_span = 1;  // a one-bucket calendar cannot order anything
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.queue_mode = route::QueueMode::kBucket;
  o.bucket_quantum = 0.125;
  o.bucket_span = 64;
  o.pressure_ramp = 0.5;
  EXPECT_NO_THROW(o.validate());
}

TEST(RouterOptionsValidation, RouterConstructorValidates) {
  const arch::RoutingGraph graph(tiny_spec());
  route::RouterOptions o;
  o.max_iterations = 0;
  EXPECT_THROW(route::Router(graph, o), InvalidArgument);
}

TEST(PlacerOptionsValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(place::PlacerOptions{}.validate());
}

TEST(PlacerOptionsValidation, RejectsZeroBudgets) {
  place::PlacerOptions o;
  o.sweeps = 0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.num_restarts = 0;
  EXPECT_THROW(o.validate(), InvalidArgument);
}

TEST(PlacerOptionsValidation, RejectsBadWeightsAndSchedules) {
  place::PlacerOptions o;
  o.cooling = 0.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.cooling = 1.5;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.initial_temperature_factor = -0.1;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = {};
  o.timing_weight = -1.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
}

TEST(PlacerOptionsValidation, PlaceValidatesAtEntry) {
  const arch::RoutingGraph graph(tiny_spec());
  place::PlacementProblem prob;
  prob.num_clusters = 1;
  place::PlacerOptions o;
  o.seed = 1;
  o.sweeps = 0;
  EXPECT_THROW(place::place(prob, graph, o), InvalidArgument);
}

TEST(PlacerOptionsValidation, PlaceRejectsOutOfRangeCriticality) {
  const arch::RoutingGraph graph(tiny_spec());
  place::PlacementProblem prob;
  prob.num_clusters = 2;
  place::PlacementNet net;
  net.driver = place::Terminal::cluster(0);
  net.sinks = {place::Terminal::cluster(1)};
  net.criticality = 1.5;
  prob.nets.push_back(net);
  place::PlacerOptions o;
  o.seed = 1;
  EXPECT_THROW(place::place(prob, graph, o), InvalidArgument);
}

place::PlacementProblem crit_problem() {
  place::PlacementProblem prob;
  prob.num_clusters = 4;
  for (std::size_t i = 0; i + 1 < prob.num_clusters; ++i) {
    place::PlacementNet net;
    net.driver = place::Terminal::cluster(i);
    net.sinks = {place::Terminal::cluster(i + 1)};
    net.weight = 2;
    net.criticality = 0.25 * static_cast<double>(i + 1);
    prob.nets.push_back(net);
  }
  return prob;
}

TEST(PlacerTimingMode, CriticalitiesInertWhenOff) {
  // With timing_mode off, net criticalities must not perturb the anneal:
  // bit-identical placement to the same problem with zero criticalities.
  const arch::RoutingGraph graph(tiny_spec());
  place::PlacerOptions o;
  o.seed = 3;
  const place::PlacementProblem with_crit = crit_problem();
  place::PlacementProblem without = with_crit;
  for (auto& net : without.nets) {
    net.criticality = 0.0;
  }
  const auto a = place::place(with_crit, graph, o);
  const auto b = place::place(without, graph, o);
  EXPECT_EQ(a.cluster_pos, b.cluster_pos);
  EXPECT_EQ(a.io_pads, b.io_pads);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(PlacerTimingMode, CostMatchesWeightedOracle) {
  const arch::RoutingGraph graph(tiny_spec());
  place::PlacerOptions o;
  o.seed = 3;
  o.timing_mode = true;
  o.timing_weight = 4.0;
  const place::PlacementProblem prob = crit_problem();
  const auto p = place::place(prob, graph, o);
  EXPECT_DOUBLE_EQ(p.cost, place::placement_cost(prob, graph, p, o));
  // A fully critical net weighs (1 + timing_weight)x its base weight.
  place::PlacementNet net;
  net.weight = 2;
  net.criticality = 1.0;
  EXPECT_EQ(place::effective_net_weight(net, o), 10);
  net.criticality = 0.0;
  EXPECT_EQ(place::effective_net_weight(net, o), 2);
}

}  // namespace
}  // namespace mcfpga
