// Property tests for the incremental STA engine (timing/timing_graph.hpp):
// random levelized DAGs checked against a brute-force longest-path oracle,
// and incremental re-propagation after arc-delay edits checked — exactly,
// bit for bit — against from-scratch analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "timing/net_timing.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::timing {
namespace {

/// Random DAG: arcs always point from a lower to a higher node id, so
/// acyclicity holds by construction.  Delays are multiples of 0.5, keeping
/// every sum exactly representable.
std::vector<Arc> random_dag(Rng& rng, std::size_t nodes, std::size_t arcs) {
  std::vector<Arc> out;
  for (std::size_t i = 0; i < arcs; ++i) {
    const std::uint32_t a =
        static_cast<std::uint32_t>(rng.next_below(nodes));
    const std::uint32_t b =
        static_cast<std::uint32_t>(rng.next_below(nodes));
    if (a == b) {
      continue;
    }
    out.push_back(Arc{std::min(a, b), std::max(a, b),
                      0.5 * static_cast<double>(rng.next_below(20))});
  }
  return out;
}

/// O(V * E) relaxation oracle for the longest-path arrivals.
std::vector<double> oracle_arrival(std::size_t nodes,
                                   const std::vector<Arc>& arcs) {
  std::vector<double> arr(nodes, 0.0);
  for (std::size_t pass = 0; pass < nodes; ++pass) {
    bool changed = false;
    for (const Arc& a : arcs) {
      const double t = arr[a.from] + a.delay;
      if (t > arr[a.to]) {
        arr[a.to] = t;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  return arr;
}

/// Backward oracle: sinks anchored at the critical path, everything else
/// the minimum over out-arcs.
std::vector<double> oracle_required(std::size_t nodes,
                                    const std::vector<Arc>& arcs,
                                    double critical_path) {
  std::vector<double> req(nodes, critical_path);
  for (std::size_t pass = 0; pass < nodes; ++pass) {
    bool changed = false;
    std::vector<bool> has_out(nodes, false);
    std::vector<double> next(nodes, critical_path);
    for (const Arc& a : arcs) {
      const double t = req[a.to] - a.delay;
      if (!has_out[a.from] || t < next[a.from]) {
        next[a.from] = t;
        has_out[a.from] = true;
      }
    }
    for (std::size_t n = 0; n < nodes; ++n) {
      if (next[n] != req[n]) {
        req[n] = next[n];
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  return req;
}

TEST(TimingGraph, MatchesBruteForceOracleOnRandomDags) {
  Rng rng(99);
  for (std::size_t trial = 0; trial < 60; ++trial) {
    const std::size_t nodes = 2 + rng.next_below(40);
    const std::vector<Arc> arcs = random_dag(rng, nodes, 3 * nodes);
    TimingGraph g(nodes, arcs);
    g.analyze();

    const std::vector<double> arr = oracle_arrival(nodes, arcs);
    double cp = 0.0;
    for (const double a : arr) {
      cp = std::max(cp, a);
    }
    EXPECT_EQ(g.critical_path(), cp);
    const std::vector<double> req = oracle_required(nodes, arcs, cp);
    for (std::size_t n = 0; n < nodes; ++n) {
      EXPECT_EQ(g.arrival(n), arr[n]) << "node " << n;
      EXPECT_EQ(g.required(n), req[n]) << "node " << n;
    }
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      // Slack is never negative (requirements are anchored at the critical
      // path) and criticality always lands in [0, 1].
      EXPECT_GE(g.slack(a), -1e-9);
      EXPECT_GE(g.criticality(a), 0.0);
      EXPECT_LE(g.criticality(a), 1.0);
    }
  }
}

TEST(TimingGraph, IncrementalRepropagationMatchesFromScratch) {
  Rng rng(7);
  for (std::size_t trial = 0; trial < 25; ++trial) {
    const std::size_t nodes = 2 + rng.next_below(30);
    std::vector<Arc> arcs = random_dag(rng, nodes, 3 * nodes);
    TimingGraph inc(nodes, arcs);
    inc.analyze();

    for (std::size_t round = 0; round < 12; ++round) {
      if (arcs.empty()) {
        break;
      }
      // Edit a random handful of arc delays (including no-op edits).
      const std::size_t edits = 1 + rng.next_below(4);
      for (std::size_t e = 0; e < edits; ++e) {
        const std::size_t a = rng.next_below(arcs.size());
        const double d = 0.5 * static_cast<double>(rng.next_below(20));
        arcs[a].delay = d;
        inc.set_arc_delay(a, d);
      }
      inc.analyze();

      TimingGraph fresh(nodes, arcs);
      fresh.analyze();
      ASSERT_EQ(inc.critical_path(), fresh.critical_path())
          << "trial " << trial << " round " << round;
      for (std::size_t n = 0; n < nodes; ++n) {
        ASSERT_EQ(inc.arrival(n), fresh.arrival(n)) << "node " << n;
        ASSERT_EQ(inc.required(n), fresh.required(n)) << "node " << n;
      }
      for (std::size_t a = 0; a < arcs.size(); ++a) {
        ASSERT_EQ(inc.slack(a), fresh.slack(a)) << "arc " << a;
        ASSERT_EQ(inc.criticality(a), fresh.criticality(a)) << "arc " << a;
      }
    }
  }
}

TEST(TimingGraph, WorstSlackIsZeroWhenPathsExist) {
  Rng rng(123);
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const std::size_t nodes = 3 + rng.next_below(20);
    std::vector<Arc> arcs = random_dag(rng, nodes, 2 * nodes);
    for (Arc& a : arcs) {
      a.delay += 1.0;  // strictly positive: the critical path is real
    }
    if (arcs.empty()) {
      continue;
    }
    TimingGraph g(nodes, arcs);
    g.analyze();
    EXPECT_GT(g.critical_path(), 0.0);
    // Some arc lies on the critical path, so the worst slack is exactly 0
    // and that arc's criticality is exactly 1.
    const TimingReport r = g.report();
    EXPECT_EQ(r.worst_slack, 0.0);
    double worst_crit = 0.0;
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      worst_crit = std::max(worst_crit, g.criticality(a));
    }
    EXPECT_EQ(worst_crit, 1.0);
    ASSERT_GE(r.critical_nodes.size(), 2u);
    EXPECT_EQ(g.arrival(r.critical_nodes.back()), g.critical_path());
  }
}

TEST(TimingGraph, DetectsCycle) {
  EXPECT_THROW(TimingGraph(2, {Arc{0, 1, 1.0}, Arc{1, 0, 1.0}}),
               ProgrammingError);
}

TEST(TimingGraph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(TimingGraph(2, {Arc{0, 5, 1.0}}), InvalidArgument);
}

TEST(TimingGraph, RejectsOutOfRangeArcIndex) {
  TimingGraph g(2, {Arc{0, 1, 1.0}});
  EXPECT_THROW(g.set_arc_delay(3, 1.0), InvalidArgument);
}

TEST(TimingGraph, EmptyGraph) {
  TimingGraph g(0, {});
  g.analyze();
  EXPECT_EQ(g.critical_path(), 0.0);
  EXPECT_TRUE(g.critical_nodes().empty());
}

TEST(ConnectionArcs, RetimesConnectionsAndAggregatesCriticality) {
  // Two nets: net 0 (slot 0 -> slots 1 and 2, one sink pin read by both),
  // net 1 (slot 1 -> output terminal 3).
  ContextTimingSpec spec;
  spec.num_nodes = 4;
  spec.se_delay = 1.0;
  spec.lut_delay = 2.0;
  spec.nets.resize(2);
  spec.nets[0].sinks.resize(1);
  spec.nets[0].sinks[0].readers = {SinkTiming::Reader{0, 1, true},
                                   SinkTiming::Reader{0, 2, true}};
  spec.nets[1].sinks.resize(1);
  spec.nets[1].sinks[0].readers = {SinkTiming::Reader{1, 3, false}};

  const ConnectionArcs arcs(spec);
  ASSERT_EQ(arcs.num_connections(), 2u);
  ASSERT_EQ(arcs.arcs().size(), 3u);

  TimingGraph g(spec.num_nodes, arcs.arcs());
  g.analyze();
  // Unit-switch prior: 0 -> 1/2 costs 1 + 2, 1 -> 3 costs 1.
  EXPECT_EQ(g.critical_path(), 4.0);

  // Reroute net 0's connection through 5 switches.
  arcs.set_connection_switches(g, arcs.connection(0, 0), 5);
  g.analyze();
  EXPECT_EQ(g.critical_path(), (5.0 + 2.0) + 1.0);
  // Both readers of the rerouted connection are critical or near-critical;
  // the aggregate is the worst of the two.
  const double c = arcs.connection_criticality(g, arcs.connection(0, 0));
  EXPECT_EQ(c, 1.0);
}

TEST(ConnectionCriticalities, ExportMatchesBruteForceAfterReroute) {
  // The closure loop re-places from criticalities exported straight off a
  // finished report (connection_criticalities) instead of a second STA
  // pass.  Oracle: rebuild every reader arc at its re-routed switch count,
  // recompute longest-path arrivals/requireds by brute-force relaxation,
  // and derive each connection's criticality independently.
  Rng rng(2026);
  for (std::size_t trial = 0; trial < 40; ++trial) {
    ContextTimingSpec spec;
    spec.num_nodes = 6 + rng.next_below(20);
    spec.se_delay = 1.0;
    spec.lut_delay = 2.0;
    const std::size_t num_nets = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < num_nets; ++i) {
      ContextTimingSpec::NetTiming net;
      // Readers always point to a higher node id, so the DAG holds.
      const std::uint32_t driver =
          static_cast<std::uint32_t>(rng.next_below(spec.num_nodes - 1));
      const std::size_t num_sinks = 1 + rng.next_below(3);
      for (std::size_t j = 0; j < num_sinks; ++j) {
        SinkTiming sink;
        const std::size_t num_readers = 1 + rng.next_below(2);
        for (std::size_t r = 0; r < num_readers; ++r) {
          const std::uint32_t to =
              driver + 1 +
              static_cast<std::uint32_t>(
                  rng.next_below(spec.num_nodes - driver - 1));
          sink.readers.push_back(
              SinkTiming::Reader{driver, to, rng.next_bool(0.7)});
        }
        net.sinks.push_back(std::move(sink));
      }
      spec.nets.push_back(std::move(net));
    }

    // "Re-route" every connection to a random switch count and re-time.
    const ConnectionArcs arcs(spec);
    TimingGraph g(spec.num_nodes, arcs.arcs());
    std::vector<std::vector<std::size_t>> switches(spec.nets.size());
    for (std::size_t i = 0; i < spec.nets.size(); ++i) {
      switches[i].resize(spec.nets[i].sinks.size());
      for (std::size_t j = 0; j < switches[i].size(); ++j) {
        switches[i][j] = 1 + rng.next_below(8);
        arcs.set_connection_switches(g, arcs.connection(i, j),
                                     switches[i][j]);
      }
    }
    g.analyze();
    const TimingReport report = g.report();

    const std::vector<std::vector<double>> exported =
        connection_criticalities(spec, report, switches);

    // Brute-force oracle over the re-routed arc delays.
    std::vector<Arc> oracle_arcs;
    for (std::size_t i = 0; i < spec.nets.size(); ++i) {
      for (std::size_t j = 0; j < spec.nets[i].sinks.size(); ++j) {
        for (const auto& r : spec.nets[i].sinks[j].readers) {
          oracle_arcs.push_back(Arc{
              r.from, r.to, spec.connection_delay(switches[i][j], r.is_lut)});
        }
      }
    }
    const std::vector<double> arr =
        oracle_arrival(spec.num_nodes, oracle_arcs);
    double cp = 0.0;
    for (const double a : arr) {
      cp = std::max(cp, a);
    }
    const std::vector<double> req =
        oracle_required(spec.num_nodes, oracle_arcs, cp);

    ASSERT_EQ(exported.size(), spec.nets.size());
    for (std::size_t i = 0; i < spec.nets.size(); ++i) {
      ASSERT_EQ(exported[i].size(), spec.nets[i].sinks.size());
      for (std::size_t j = 0; j < spec.nets[i].sinks.size(); ++j) {
        double oracle = 0.0;
        for (const auto& r : spec.nets[i].sinks[j].readers) {
          const double delay =
              spec.connection_delay(switches[i][j], r.is_lut);
          const double slack = req[r.to] - arr[r.from] - delay;
          const double c =
              cp <= 0.0 ? 0.0 : std::clamp(1.0 - slack / cp, 0.0, 1.0);
          oracle = std::max(oracle, c);
        }
        EXPECT_DOUBLE_EQ(exported[i][j], oracle)
            << "trial " << trial << " connection (" << i << ", " << j << ")";
        // And the export agrees exactly with the live TimingGraph view.
        EXPECT_EQ(exported[i][j],
                  arcs.connection_criticality(g, arcs.connection(i, j)));
      }
    }
  }
}

}  // namespace
}  // namespace mcfpga::timing
