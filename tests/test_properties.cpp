// Property-based / parameterized sweeps over the core invariants:
//   P1. Decoder synthesis is exact for random patterns at any context count.
//   P2. The RCM context decoder always reproduces generated bitstreams.
//   P3. Decoder cost is monotone in pattern class (constant <= single < complex).
//   P4. Plane allocation never double-claims planes and covers every class.
//   P5. The full flow verifies end-to-end across workload seeds.
//   P6. Area ratio responds monotonically to the change-rate knob.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "config/stats.hpp"
#include "core/mcfpga.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/plane_alloc.hpp"
#include "rcm/context_decoder.hpp"
#include "rcm/decoder_synth.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga {
namespace {

// --- P1/P3: decoder synthesis over random patterns, all context counts ----

class DecoderProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(DecoderProperty, SynthesisIsExactAndBounded) {
  const auto [num_contexts, seed] = GetParam();
  Rng rng(seed);
  const std::size_t k = config::num_id_bits(num_contexts);
  for (int trial = 0; trial < 50; ++trial) {
    config::ContextPattern p(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      p.set_value(c, rng.next_bool());
    }
    const auto net = rcm::synthesize_decoder(p);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      ASSERT_EQ(net.eval(c), p.value_in(c))
          << p.to_string() << " ctx " << c;
    }
    // Cost bound: full Shannon tree has 2^(k-1) leaf pairs; with folding it
    // never exceeds 2^k - 1 + 2*(2^(k-1) - ... ) ; use the loose bound
    // 3 * 2^(k-1) + ... = simply < 2^(k+1).
    EXPECT_LT(net.se_count(), std::size_t{1} << (k + 1)) << p.to_string();
    EXPECT_LE(net.depth(), k);
    // Classification consistency (P3).
    const auto info = config::classify(p);
    if (info.cls != config::PatternClass::kComplex) {
      EXPECT_EQ(net.se_count(), 1u);
    } else {
      EXPECT_GE(net.se_count(), 3u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ContextCounts, DecoderProperty,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- P2: context decoder over generated bitstreams -------------------------

class BitstreamDecoderProperty
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(BitstreamDecoderProperty, DecoderMatchesBitstream) {
  const auto [change_rate, share] = GetParam();
  workload::BitstreamGenParams params;
  params.rows = 400;
  params.change_rate = change_rate;
  params.regularity_fraction = 0.1;
  params.seed = static_cast<std::uint64_t>(change_rate * 1000) + 1;
  const auto bs = workload::generate_bitstream(params);
  const rcm::ContextDecoder decoder(
      bs, rcm::ContextDecoderOptions{.share_identical_patterns = share});
  EXPECT_TRUE(decoder.matches(bs));
  // Sharing only ever reduces the network count.
  if (share) {
    EXPECT_LE(decoder.num_networks(), bs.num_rows());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChangeRates, BitstreamDecoderProperty,
    ::testing::Combine(::testing::Values(0.0, 0.03, 0.05, 0.2, 0.5),
                       ::testing::Bool()),
    [](const auto& info) {
      return "rate" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 100)) +
             (std::get<1>(info.param) ? "_shared" : "_flat");
    });

// --- P4: plane allocation invariants ---------------------------------------

class PlaneAllocProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(PlaneAllocProperty, NoPlaneDoubleClaimAndFullCoverage) {
  const auto [seed, local] = GetParam();
  Rng rng(seed);
  std::vector<mapping::ClassUse> uses;
  const std::size_t count = 5 + rng.next_below(25);
  for (std::size_t i = 0; i < count; ++i) {
    mapping::ClassUse use;
    use.cls = i;
    for (std::size_t c = 0; c < 4; ++c) {
      if (rng.next_bool(0.4)) {
        use.contexts.push_back(c);
      }
    }
    if (use.contexts.empty()) {
      use.contexts.push_back(rng.next_below(4));
    }
    use.arity = 2 + rng.next_below(5);  // 2..6
    use.truth_table = BitVector(std::size_t{1} << use.arity);
    for (std::size_t f = 0; f < use.arity; ++f) {
      use.fanin_classes.push_back(500 + i * 8 + f);
    }
    uses.push_back(std::move(use));
  }
  const auto alloc = mapping::allocate_planes(
      uses, 4, 4,
      local ? lut::SizeControl::kLocal : lut::SizeControl::kGlobal);

  EXPECT_EQ(alloc.slot_of_class.size(), count);
  std::size_t total_entries = 0;
  for (const auto& slot : alloc.slots) {
    total_entries += slot.entries.size();
    std::vector<bool> claimed(slot.mode.planes, false);
    for (const auto& e : slot.entries) {
      EXPECT_LE(e.use.arity, slot.mode.inputs);
      // Context -> plane mapping is consistent with the recorded planes.
      for (const std::size_t c : e.use.contexts) {
        const std::size_t p = c & (slot.mode.planes - 1);
        EXPECT_NE(std::find(e.planes.begin(), e.planes.end(), p),
                  e.planes.end());
      }
      for (const std::size_t p : e.planes) {
        EXPECT_FALSE(claimed[p]) << "plane double-claimed";
        claimed[p] = true;
      }
    }
    // Used bits tally.
    std::size_t used = 0;
    for (const auto& e : slot.entries) {
      used += e.planes.size() * (std::size_t{1} << slot.mode.inputs);
    }
    EXPECT_EQ(used, slot.used_bits);
  }
  EXPECT_EQ(total_entries, count);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PlaneAllocProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_local" : "_global");
    });

// --- P5: end-to-end flow across workload seeds ------------------------------

class FlowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowProperty, RandomWorkloadVerifiesEndToEnd) {
  workload::RandomMultiContextParams params;
  params.base.num_inputs = 5;
  params.base.num_nodes = 10;
  params.base.max_arity = 4;
  params.base.seed = GetParam();
  params.share_fraction = 0.3;
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 8;
  const core::MCFPGA chip(workload::random_multi_context(params), spec);
  EXPECT_EQ(chip.verify(12, GetParam() + 100), 0u);
  // The proposed implementation of the compiled bitstream is always
  // cheaper than the conventional one.
  EXPECT_LT(chip.area_report().ratio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));

// --- P6: area-ratio monotonicity ---------------------------------------------

TEST(AreaRatioProperty, MonotoneInChangeRate) {
  const area::AreaModel model;
  arch::FabricSpec spec;
  double prev = 0.0;
  for (const double rate : {0.0, 0.02, 0.05, 0.15, 0.4}) {
    workload::BitstreamGenParams params;
    params.rows = 3000;
    params.change_rate = rate;
    params.seed = 55;
    const auto blocks = workload::generate_blocks(params, 250);
    const double ratio = model.compare_fabric(spec, blocks, {}).ratio();
    EXPECT_GE(ratio, prev) << rate;
    prev = ratio;
  }
}

}  // namespace
}  // namespace mcfpga
