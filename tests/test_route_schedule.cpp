// Tests for the cross-context negotiated routing scheduler
// (route/schedule.hpp) and the surrounding plumbing: off-mode stays
// bit-identical to routing every context through a RouterCore by hand,
// on-mode is deterministic for any worker count, negotiation never makes
// the kept metric worse than independent routing (gated property over
// random multi-context workloads), stale RouteHistory entries are clamped
// instead of silently seeding, and the new negotiation/conflict counters
// are consistent end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "core/closure.hpp"
#include "core/flow.hpp"
#include "core/stages.hpp"
#include "route/router.hpp"
#include "route/router_core.hpp"
#include "route/schedule.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

namespace mcfpga::core {
namespace {

arch::FabricSpec small_spec() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;
  return spec;
}

netlist::MultiContextNetlist random_workload(std::uint64_t seed) {
  workload::RandomMultiContextParams params;
  params.base.num_inputs = 6;
  params.base.num_nodes = 16;
  params.base.max_arity = 3;
  params.base.seed = seed;
  params.share_fraction = 0.4;
  return workload::random_multi_context(params);
}

/// Runs the pipeline through RouteStage and hands the context back — the
/// routing problem (graph, nets, specs) plus the routed result.
FlowContext routed_context(const netlist::MultiContextNetlist& nl,
                           const CompileOptions& options) {
  FlowContext ctx = make_flow_context(nl, small_spec(), options);
  TechMapStage().run(ctx);
  SharingStage().run(ctx);
  PlaneAllocStage().run(ctx);
  ClusterStage().run(ctx);
  PlaceStage().run(ctx);
  RouteStage().run(ctx);
  return ctx;
}

void expect_same_routing(const route::RouteResult& a,
                         const route::RouteResult& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t c = 0; c < a.nets.size(); ++c) {
    ASSERT_EQ(a.nets[c].size(), b.nets[c].size()) << "context " << c;
    for (std::size_t i = 0; i < a.nets[c].size(); ++i) {
      const auto& na = a.nets[c][i];
      const auto& nb = b.nets[c][i];
      EXPECT_EQ(na.source, nb.source);
      ASSERT_EQ(na.paths.size(), nb.paths.size());
      for (std::size_t p = 0; p < na.paths.size(); ++p) {
        EXPECT_EQ(na.paths[p].sink, nb.paths[p].sink);
        EXPECT_EQ(na.paths[p].edges, nb.paths[p].edges);
      }
    }
  }
  ASSERT_EQ(a.switch_patterns.size(), b.switch_patterns.size());
  for (std::size_t s = 0; s < a.switch_patterns.size(); ++s) {
    EXPECT_EQ(a.switch_patterns[s], b.switch_patterns[s]) << "switch " << s;
  }
}

std::size_t worst_critical_switches(const route::RouteResult& r) {
  std::size_t worst = 0;
  for (std::size_t c = 0; c < r.nets.size(); ++c) {
    worst = std::max(worst, r.critical_switches(c));
  }
  return worst;
}

std::size_t total_conflicts(const route::RouteResult& r) {
  std::size_t total = 0;
  for (const auto& s : r.context_summary) {
    total += s.cross_context_conflicts;
  }
  return total;
}

double worst_critical_path(const CompiledDesign& d) {
  double worst = 0.0;
  for (const auto& s : d.context_stats) {
    worst = std::max(worst, s.critical_path);
  }
  return worst;
}

TEST(RouteSchedule, OffModeMatchesManualPerContextCores) {
  // The route_pass refactor must leave the independent path untouched:
  // Router::route in kOff mode is bit-identical to driving one
  // RouterCore over every context by hand (the historical monolith).
  FlowContext ctx =
      routed_context(workload::pipeline_workload(4, 8), CompileOptions{});
  ASSERT_TRUE(ctx.routing.success);

  route::RouterCore core(*ctx.graph, ctx.options.router);
  for (std::size_t c = 0; c < ctx.nets_per_context.size(); ++c) {
    const auto manual = core.route_context(ctx.nets_per_context[c]);
    ASSERT_TRUE(manual.converged);
    ASSERT_EQ(manual.nets.size(), ctx.routing.nets[c].size());
    for (std::size_t i = 0; i < manual.nets.size(); ++i) {
      ASSERT_EQ(manual.nets[i].paths.size(),
                ctx.routing.nets[c][i].paths.size());
      for (std::size_t p = 0; p < manual.nets[i].paths.size(); ++p) {
        EXPECT_EQ(manual.nets[i].paths[p].edges,
                  ctx.routing.nets[c][i].paths[p].edges);
      }
    }
  }
  // Off mode reports no negotiation but still counts conflicts.
  EXPECT_EQ(ctx.routing.negotiation_rounds, 0u);
  EXPECT_TRUE(ctx.routing.negotiation_stats.empty());
  EXPECT_GT(total_conflicts(ctx.routing), 0u);
}

TEST(RouteSchedule, ZeroPressurePassIsBitIdenticalToPlainPass) {
  // An explicit all-zero pressure vector must not perturb a single cost:
  // the negotiated baseline round really IS independent routing.
  FlowContext ctx =
      routed_context(workload::pipeline_workload(4, 8), CompileOptions{});
  const std::vector<double> zero(ctx.graph->num_nodes(), 0.0);
  route::RouterCore plain(*ctx.graph, ctx.options.router);
  route::RouterCore pressured(*ctx.graph, ctx.options.router);
  for (std::size_t c = 0; c < ctx.nets_per_context.size(); ++c) {
    std::vector<std::uint8_t> usage;
    const auto a = plain.route_context(ctx.nets_per_context[c]);
    const auto b = pressured.route_pass(ctx.nets_per_context[c], nullptr,
                                        nullptr, &zero, &usage);
    ASSERT_EQ(a.nets.size(), b.nets.size());
    for (std::size_t i = 0; i < a.nets.size(); ++i) {
      ASSERT_EQ(a.nets[i].paths.size(), b.nets[i].paths.size());
      for (std::size_t p = 0; p < a.nets[i].paths.size(); ++p) {
        EXPECT_EQ(a.nets[i].paths[p].edges, b.nets[i].paths[p].edges);
      }
    }
    // Exported usage marks the distinct wire nodes of the routed trees,
    // a subset of the per-path edge total.
    std::size_t used = 0;
    for (const auto u : usage) {
      used += u;
    }
    EXPECT_GT(used, 0u);
    EXPECT_LE(used, b.wire_nodes_used);
  }
}

TEST(RouteSchedule, NegotiatedDeterministicAcrossWorkerCounts) {
  // On-mode must be a pure function of (options, nets, criticalities,
  // history): any router worker count yields bit-identical routing and
  // identical negotiation trajectories (seconds excepted).
  const auto nl = workload::pipeline_workload(4, 8);
  CompileOptions base;
  base.placer.timing_mode = true;
  base.router.timing_mode = true;
  base.router.cross_context_mode = route::CrossContextMode::kNegotiated;
  base.router.num_threads = 1;
  FlowContext reference = routed_context(nl, base);
  ASSERT_GE(reference.routing.negotiation_rounds, 1u);

  for (const std::size_t threads : {2u, 4u, 7u}) {
    CompileOptions options = base;
    options.router.num_threads = threads;
    FlowContext ctx = routed_context(nl, options);
    expect_same_routing(reference.routing, ctx.routing);
    ASSERT_EQ(ctx.routing.negotiation_stats.size(),
              reference.routing.negotiation_stats.size());
    for (std::size_t r = 0; r < ctx.routing.negotiation_stats.size(); ++r) {
      const auto& a = reference.routing.negotiation_stats[r];
      const auto& b = ctx.routing.negotiation_stats[r];
      EXPECT_EQ(a.round, b.round);
      EXPECT_EQ(a.conflicts, b.conflicts);
      EXPECT_EQ(a.worst_critical_switches, b.worst_critical_switches);
      EXPECT_DOUBLE_EQ(a.worst_critical_path, b.worst_critical_path);
      EXPECT_EQ(a.kept, b.kept);
    }
  }
}

TEST(RouteSchedule, NeverWorseCriticalSwitchesWithoutSpecs) {
  // Gated property, switch-count metric: without timing specs the
  // scheduler scores rounds by worst per-connection switch count, and
  // keep-best (round 0 is the independent baseline) guarantees the
  // negotiated result never increases it.
  for (const std::uint64_t seed : {11u, 29u, 47u, 63u}) {
    FlowContext ctx = routed_context(random_workload(seed), CompileOptions{});
    route::RouterOptions on = ctx.options.router;
    on.cross_context_mode = route::CrossContextMode::kNegotiated;
    const route::Router router(*ctx.graph, on);
    const route::RouteResult negotiated =
        router.route(ctx.nets_per_context);
    ASSERT_TRUE(negotiated.success) << "seed " << seed;
    // The guarantee is on the PRIMARY metric only: conflicts are the
    // tiebreak, so a kept round may trade a few more shared wires for a
    // shorter worst connection.
    EXPECT_LE(worst_critical_switches(negotiated),
              worst_critical_switches(ctx.routing))
        << "seed " << seed;
  }
}

TEST(RouteSchedule, NeverWorseCriticalPathOnRandomWorkloads) {
  // Gated property, STA metric: through the whole compile flow the
  // negotiated worst context critical path never exceeds independent
  // routing's (placement is identical — cross-context mode only touches
  // routing — so the comparison is apples to apples).
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    const auto nl = random_workload(seed);
    CompileOptions off;
    off.placer.timing_mode = true;
    off.router.timing_mode = true;
    CompileOptions on = off;
    on.router.cross_context_mode = route::CrossContextMode::kNegotiated;
    const CompiledDesign d_off = compile(nl, small_spec(), off);
    const CompiledDesign d_on = compile(nl, small_spec(), on);
    EXPECT_LE(worst_critical_path(d_on), worst_critical_path(d_off) + 1e-9)
        << "seed " << seed;
  }
}

TEST(RouteSchedule, CriticalityOrdersTheClaimPass) {
  // Handing explicit per-context criticalities must be accepted and keep
  // the never-worse guarantee; an inverted priority still cannot beat
  // the independent baseline on the kept metric.
  FlowContext ctx =
      routed_context(workload::pipeline_workload(4, 8), CompileOptions{});
  route::RouterOptions on = ctx.options.router;
  on.cross_context_mode = route::CrossContextMode::kNegotiated;
  const route::Router router(*ctx.graph, on);
  const std::size_t n = ctx.nets_per_context.size();
  for (const bool inverted : {false, true}) {
    std::vector<double> crit(n);
    for (std::size_t c = 0; c < n; ++c) {
      const double rank =
          static_cast<double>(c + 1) / static_cast<double>(n);
      crit[c] = inverted ? 1.0 - rank + 1.0 / static_cast<double>(n) : rank;
    }
    const route::RouteResult negotiated =
        router.route(ctx.nets_per_context, nullptr, nullptr, &crit);
    ASSERT_TRUE(negotiated.success);
    EXPECT_LE(worst_critical_switches(negotiated),
              worst_critical_switches(ctx.routing));
  }
  // Wrong-sized criticality vectors are rejected.
  std::vector<double> bad(n + 1, 1.0);
  EXPECT_THROW(router.route(ctx.nets_per_context, nullptr, nullptr, &bad),
               InvalidArgument);
}

TEST(RouteSchedule, NegotiationCountersAreConsistent) {
  // Exactly one round is marked kept, its conflict count matches the
  // returned summaries, and the counters surface in ContextStats.
  const auto nl = workload::pipeline_workload(4, 8);
  CompileOptions on;
  on.placer.timing_mode = true;
  on.router.timing_mode = true;
  on.router.cross_context_mode = route::CrossContextMode::kNegotiated;
  const CompiledDesign d = compile(nl, small_spec(), on);

  const auto& stats = d.routing.negotiation_stats;
  ASSERT_EQ(d.routing.negotiation_rounds, stats.size());
  ASSERT_GE(stats.size(), 1u);
  std::size_t kept = 0;
  const route::NegotiationRoundStats* kept_round = nullptr;
  for (const auto& s : stats) {
    if (s.kept) {
      ++kept;
      kept_round = &s;
    }
  }
  ASSERT_EQ(kept, 1u);
  EXPECT_EQ(kept_round->conflicts, total_conflicts(d.routing));
  // ContextStats mirror the routing summaries.
  std::size_t from_stats = 0;
  for (const auto& s : d.context_stats) {
    from_stats += s.cross_context_conflicts;
  }
  EXPECT_EQ(from_stats, total_conflicts(d.routing));
  // The flow routed with timing specs, so rounds carry STA scores.
  for (const auto& s : stats) {
    EXPECT_GT(s.worst_critical_path, 0.0);
    EXPECT_GT(s.worst_critical_switches, 0u);
  }
}

TEST(RouteSchedule, HistoryClampedWhenNodeCountChanges) {
  // A history recorded on a different graph (wrong per-node length) must
  // be cleared on entry, not silently seeded from: routing with a
  // garbage stale history equals routing with a fresh one, and the
  // prepared entries come back graph-sized.
  FlowContext ctx =
      routed_context(workload::pipeline_workload(4, 8), CompileOptions{});
  const route::Router router(*ctx.graph, ctx.options.router);
  const std::size_t num_nodes = ctx.graph->num_nodes();
  const std::size_t num_contexts = ctx.nets_per_context.size();

  route::RouteHistory fresh;
  const route::RouteResult a =
      router.route(ctx.nets_per_context, nullptr, &fresh);

  route::RouteHistory stale;
  stale.per_context.assign(num_contexts,
                           std::vector<double>(num_nodes + 7, 1e6));
  const route::RouteResult b =
      router.route(ctx.nets_per_context, nullptr, &stale);
  expect_same_routing(a, b);
  ASSERT_EQ(stale.per_context.size(), num_contexts);
  for (const auto& h : stale.per_context) {
    EXPECT_EQ(h.size(), num_nodes);
  }

  // prepare() itself: matching entries survive, stale ones clear.
  route::RouteHistory h;
  h.per_context.push_back(std::vector<double>(num_nodes, 2.0));
  h.per_context.push_back(std::vector<double>(3, 2.0));
  h.prepare(4, num_nodes);
  ASSERT_EQ(h.per_context.size(), 4u);
  EXPECT_EQ(h.per_context[0].size(), num_nodes);  // kept
  EXPECT_TRUE(h.per_context[1].empty());          // clamped
  EXPECT_TRUE(h.per_context[2].empty());
}

TEST(RouteSchedule, ClosureLoopWithNegotiatedRoutingIsDeterministic) {
  // The closure loop hands the previous iteration's per-context
  // criticalities to the scheduler; the combination must stay
  // deterministic across worker counts and never finish worse than the
  // negotiated one-shot flow.
  const auto nl = workload::pipeline_workload(4, 8);
  CompileOptions base;
  base.placer.timing_mode = true;
  base.router.timing_mode = true;
  base.router.cross_context_mode = route::CrossContextMode::kNegotiated;
  base.closure_iterations = 3;
  base.router.num_threads = 1;
  const CompiledDesign reference = compile(nl, small_spec(), base);

  CompileOptions one_shot = base;
  one_shot.closure_iterations = 1;
  const CompiledDesign single = compile(nl, small_spec(), one_shot);
  EXPECT_LE(worst_critical_path(reference),
            worst_critical_path(single) + 1e-9);

  CompileOptions threaded = base;
  threaded.router.num_threads = 4;
  const CompiledDesign d = compile(nl, small_spec(), threaded);
  expect_same_routing(reference.routing, d.routing);
  EXPECT_EQ(worst_critical_path(reference), worst_critical_path(d));
}

TEST(RouteSchedule, RejectsBadCrossContextOptions) {
  const arch::RoutingGraph graph(small_spec());
  route::RouterOptions options;
  options.cross_context_rounds = 0;
  EXPECT_THROW(route::Router(graph, options), InvalidArgument);
  options = {};
  options.cross_context_pressure_weight = -0.1;
  EXPECT_THROW(route::Router(graph, options), InvalidArgument);
  options = {};
  options.interleave_waves = 0;
  EXPECT_THROW(route::Router(graph, options), InvalidArgument);
  options = {};
  options.interleave_crit_quantum = 0.0;
  EXPECT_THROW(route::Router(graph, options), InvalidArgument);
}

// --- Net-interleaved scheduling (CrossContextMode::kInterleaved) ---------

TEST(RouteSchedule, InterleavedDeterministicAcrossWorkerCounts) {
  // The merged worklist is drained sequentially and the calendar queue
  // pops are a pure function of pushes, so any worker count must yield
  // bit-identical routing and identical per-wave trajectories.
  const auto nl = workload::pipeline_workload(4, 8);
  CompileOptions base;
  base.placer.timing_mode = true;
  base.router.timing_mode = true;
  base.router.cross_context_mode = route::CrossContextMode::kInterleaved;
  base.router.num_threads = 1;
  FlowContext reference = routed_context(nl, base);
  // Baseline round plus at least one wave actually ran.
  ASSERT_GE(reference.routing.negotiation_stats.size(), 2u);

  for (const std::size_t threads : {2u, 4u, 7u}) {
    CompileOptions options = base;
    options.router.num_threads = threads;
    FlowContext ctx = routed_context(nl, options);
    expect_same_routing(reference.routing, ctx.routing);
    ASSERT_EQ(ctx.routing.negotiation_stats.size(),
              reference.routing.negotiation_stats.size());
    for (std::size_t r = 0; r < ctx.routing.negotiation_stats.size(); ++r) {
      const auto& a = reference.routing.negotiation_stats[r];
      const auto& b = ctx.routing.negotiation_stats[r];
      EXPECT_EQ(a.round, b.round);
      EXPECT_EQ(a.conflicts, b.conflicts);
      EXPECT_EQ(a.worst_critical_switches, b.worst_critical_switches);
      EXPECT_DOUBLE_EQ(a.worst_critical_path, b.worst_critical_path);
      EXPECT_EQ(a.nets_rerouted, b.nets_rerouted);
      EXPECT_EQ(a.nets_requeued, b.nets_requeued);
      EXPECT_EQ(a.kept, b.kept);
    }
  }
}

TEST(RouteSchedule, InterleavedNeverWorseCriticalSwitchesWithoutSpecs) {
  // Gated property, switch-count metric: keep-best over the baseline plus
  // every wave guarantees interleaved scheduling never increases the
  // worst per-connection switch count over independent routing.
  for (const std::uint64_t seed : {11u, 29u, 47u, 63u}) {
    FlowContext ctx = routed_context(random_workload(seed), CompileOptions{});
    route::RouterOptions on = ctx.options.router;
    on.cross_context_mode = route::CrossContextMode::kInterleaved;
    const route::Router router(*ctx.graph, on);
    const route::RouteResult interleaved = router.route(ctx.nets_per_context);
    ASSERT_TRUE(interleaved.success) << "seed " << seed;
    EXPECT_LE(worst_critical_switches(interleaved),
              worst_critical_switches(ctx.routing))
        << "seed " << seed;
  }
}

TEST(RouteSchedule, InterleavedNeverWorseCriticalPathOnRandomWorkloads) {
  // Gated property, STA metric: through the whole compile flow the
  // interleaved worst context critical path never exceeds independent
  // routing's (placement is identical across modes).
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    const auto nl = random_workload(seed);
    CompileOptions off;
    off.placer.timing_mode = true;
    off.router.timing_mode = true;
    CompileOptions on = off;
    on.router.cross_context_mode = route::CrossContextMode::kInterleaved;
    const CompiledDesign d_off = compile(nl, small_spec(), off);
    const CompiledDesign d_on = compile(nl, small_spec(), on);
    EXPECT_LE(worst_critical_path(d_on), worst_critical_path(d_off) + 1e-9)
        << "seed " << seed;
  }
}

TEST(RouteSchedule, InterleavedWaveCountersAreConsistent) {
  // Exactly one recorded entry (baseline or wave) is kept and its
  // conflict count matches the returned summaries; the dirty-set
  // invariant holds (wave k can only re-route nets wave k-1 re-enqueued);
  // and the per-context churn counters mirror the per-wave totals.
  const auto nl = workload::pipeline_workload(4, 8);
  CompileOptions on;
  on.placer.timing_mode = true;
  on.router.timing_mode = true;
  on.router.cross_context_mode = route::CrossContextMode::kInterleaved;
  const CompiledDesign d = compile(nl, small_spec(), on);

  const auto& stats = d.routing.negotiation_stats;
  ASSERT_EQ(d.routing.negotiation_rounds, stats.size());
  ASSERT_GE(stats.size(), 2u);  // the baseline plus at least one wave
  std::size_t kept = 0;
  const route::NegotiationRoundStats* kept_entry = nullptr;
  for (const auto& s : stats) {
    if (s.kept) {
      ++kept;
      kept_entry = &s;
    }
  }
  ASSERT_EQ(kept, 1u);
  EXPECT_EQ(kept_entry->conflicts, total_conflicts(d.routing));

  // The independent baseline does no interleaved work.
  EXPECT_EQ(stats[0].nets_rerouted, 0u);
  EXPECT_EQ(stats[0].nets_requeued, 0u);
  // Wave 1 seeds from the contested nets; every later wave's worklist is
  // exactly the previous wave's dirty set, so its re-routes are bounded
  // by the previous wave's requeues.
  EXPECT_GT(stats[1].nets_rerouted, 0u);
  for (std::size_t r = 2; r < stats.size(); ++r) {
    EXPECT_LE(stats[r].nets_rerouted, stats[r - 1].nets_requeued)
        << "wave entry " << r;
  }

  std::size_t wave_rerouted = 0;
  std::size_t wave_requeued = 0;
  for (const auto& s : stats) {
    wave_rerouted += s.nets_rerouted;
    wave_requeued += s.nets_requeued;
  }
  std::size_t ctx_rerouted = 0;
  std::size_t ctx_requeued = 0;
  for (const auto& s : d.context_stats) {
    ctx_rerouted += s.interleave_reroutes;
    ctx_requeued += s.interleave_requeues;
  }
  EXPECT_EQ(ctx_rerouted, wave_rerouted);
  EXPECT_EQ(ctx_requeued, wave_requeued);
}

TEST(RouteSchedule, InterleavedReducesExpansionsOverRoundBased) {
  // The commit-granular dirty set should touch far fewer nets than
  // re-routing whole contexts round after round.  The honest comparison
  // is TOTAL negotiation work — the per-round/per-wave expansion counters
  // summed over every recorded entry (baseline included; it is identical
  // in both modes) — not the kept round's summary counters.
  FlowContext ctx =
      routed_context(workload::pipeline_workload(4, 8), CompileOptions{});
  route::RouterOptions nego = ctx.options.router;
  nego.cross_context_mode = route::CrossContextMode::kNegotiated;
  route::RouterOptions inter = nego;
  inter.cross_context_mode = route::CrossContextMode::kInterleaved;
  const route::RouteResult r_nego =
      route::Router(*ctx.graph, nego).route(ctx.nets_per_context);
  const route::RouteResult r_inter =
      route::Router(*ctx.graph, inter).route(ctx.nets_per_context);
  ASSERT_TRUE(r_nego.success);
  ASSERT_TRUE(r_inter.success);
  const auto total_expansions = [](const route::RouteResult& r) {
    std::size_t total = 0;
    for (const auto& s : r.negotiation_stats) {
      total += s.nodes_expanded;
    }
    return total;
  };
  ASSERT_GE(r_nego.negotiation_stats.size(), 2u);
  ASSERT_GE(r_inter.negotiation_stats.size(), 2u);
  EXPECT_LT(total_expansions(r_inter), total_expansions(r_nego));
  // And not at the cost of the kept metric.
  EXPECT_LE(worst_critical_switches(r_inter),
            worst_critical_switches(r_nego));
}

TEST(RouteSchedule, SpeculativeDrainWorkerCountFuzz) {
  // The speculative multi-worker drain must be a pure function of queue
  // order: over random workloads, in both timing modes, every worker
  // count must produce (a) bit-identical routing to the sequential
  // single-worker drain, (b) byte-stable per-wave heap_pushes /
  // nodes_expanded (adopted speculations fold the exact counters a live
  // re-route would have produced; aborted ones are discarded entirely),
  // and (c) speculation hit/abort counters that depend only on the batch
  // window — identical across every worker count above one.
  for (const bool timed : {false, true}) {
    for (const std::uint64_t seed : {11u, 47u}) {
      const auto nl = random_workload(seed);
      CompileOptions base;
      base.placer.timing_mode = timed;
      base.router.timing_mode = timed;
      base.router.cross_context_mode = route::CrossContextMode::kInterleaved;
      base.router.num_threads = 1;
      base.router.interleave_workers = 1;  // the sequential reference drain
      FlowContext reference = routed_context(nl, base);
      const auto& ref_stats = reference.routing.negotiation_stats;
      ASSERT_GE(ref_stats.size(), 2u) << "seed " << seed;
      for (const auto& s : ref_stats) {
        EXPECT_EQ(s.spec_hits, 0u);  // one worker never speculates
        EXPECT_EQ(s.spec_aborts, 0u);
      }
      for (const auto& s : reference.routing.context_summary) {
        EXPECT_EQ(s.spec_hits, 0u);
        EXPECT_EQ(s.spec_aborts, 0u);
      }

      // The speculation trajectory of the first parallel run anchors the
      // worker-count-independence check for the rest.
      std::vector<std::pair<std::size_t, std::size_t>> spec_profile;
      for (const std::size_t w : {2u, 4u, 8u}) {
        CompileOptions options = base;
        options.router.interleave_workers = w;
        FlowContext ctx = routed_context(nl, options);
        expect_same_routing(reference.routing, ctx.routing);
        const auto& stats = ctx.routing.negotiation_stats;
        ASSERT_EQ(stats.size(), ref_stats.size())
            << "seed " << seed << " workers " << w;
        for (std::size_t r = 0; r < stats.size(); ++r) {
          const auto& a = ref_stats[r];
          const auto& b = stats[r];
          EXPECT_EQ(a.heap_pushes, b.heap_pushes)
              << "seed " << seed << " workers " << w << " entry " << r;
          EXPECT_EQ(a.nodes_expanded, b.nodes_expanded)
              << "seed " << seed << " workers " << w << " entry " << r;
          EXPECT_EQ(a.conflicts, b.conflicts);
          EXPECT_EQ(a.nets_rerouted, b.nets_rerouted);
          EXPECT_EQ(a.nets_requeued, b.nets_requeued);
          EXPECT_EQ(a.kept, b.kept);
          // Every pop of a wave is either a hit or an abort, so the two
          // at least cover the committed re-routes.
          EXPECT_GE(b.spec_hits + b.spec_aborts, b.nets_rerouted)
              << "seed " << seed << " workers " << w << " entry " << r;
          if (w == 2) {
            spec_profile.emplace_back(b.spec_hits, b.spec_aborts);
          } else {
            EXPECT_EQ(spec_profile[r].first, b.spec_hits)
                << "seed " << seed << " workers " << w << " entry " << r;
            EXPECT_EQ(spec_profile[r].second, b.spec_aborts)
                << "seed " << seed << " workers " << w << " entry " << r;
          }
        }
        // Per-context summaries fold the same totals the waves recorded.
        std::size_t wave_hits = 0;
        std::size_t wave_aborts = 0;
        for (const auto& s : stats) {
          wave_hits += s.spec_hits;
          wave_aborts += s.spec_aborts;
        }
        std::size_t ctx_hits = 0;
        std::size_t ctx_aborts = 0;
        for (const auto& s : ctx.routing.context_summary) {
          ctx_hits += s.spec_hits;
          ctx_aborts += s.spec_aborts;
        }
        EXPECT_EQ(ctx_hits, wave_hits);
        EXPECT_EQ(ctx_aborts, wave_aborts);
      }
    }
  }
}

TEST(RouteSchedule, SpeculationWindowDoesNotChangeRouting) {
  // The batch window trades latency for abort rate but must never change
  // WHAT is committed — the commit order is the queue's pop order for
  // any window size.
  const auto nl = workload::pipeline_workload(4, 8);
  CompileOptions base;
  base.placer.timing_mode = true;
  base.router.timing_mode = true;
  base.router.cross_context_mode = route::CrossContextMode::kInterleaved;
  base.router.num_threads = 1;
  base.router.interleave_workers = 1;
  FlowContext reference = routed_context(nl, base);
  for (const std::size_t window : {1u, 3u, 64u}) {
    CompileOptions options = base;
    options.router.interleave_workers = 4;
    options.router.speculation_window = window;
    FlowContext ctx = routed_context(nl, options);
    expect_same_routing(reference.routing, ctx.routing);
  }
}

TEST(RouteSchedule, RejectsBadSpeculationWindow) {
  const arch::RoutingGraph graph(small_spec());
  route::RouterOptions options;
  options.speculation_window = 0;
  EXPECT_THROW(route::Router(graph, options), InvalidArgument);
}

}  // namespace
}  // namespace mcfpga::core
