// Unit tests for configuration-fault injection and the plane-diff
// detection oracle.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "config/stats.hpp"
#include "sim/fault.hpp"
#include "workload/bitstream_gen.hpp"

namespace mcfpga::sim {
namespace {

using config::Bitstream;
using config::ContextPattern;
using config::ResourceKind;

Bitstream small_stream() {
  Bitstream bs(4);
  bs.add_row("a", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0101"));
  bs.add_row("b", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("0000"));
  bs.add_row("c", ResourceKind::kRoutingSwitch,
             ContextPattern::from_string("1111"));
  return bs;
}

TEST(FaultInjection, BitFlipChangesExactlyOneBit) {
  const Bitstream golden = small_stream();
  const Bitstream faulty =
      inject_fault(golden, Fault{FaultKind::kBitFlip, 0, 2});
  EXPECT_NE(faulty.row(0).pattern, golden.row(0).pattern);
  EXPECT_EQ(faulty.row(0).pattern.value_in(2),
            !golden.row(0).pattern.value_in(2));
  EXPECT_EQ(faulty.row(1).pattern, golden.row(1).pattern);
  EXPECT_EQ(faulty.row(2).pattern, golden.row(2).pattern);
}

TEST(FaultInjection, StuckAtForcesWholeRow) {
  const Bitstream golden = small_stream();
  const Bitstream s0 =
      inject_fault(golden, Fault{FaultKind::kStuckAt0, 2, 0});
  EXPECT_TRUE(s0.row(2).pattern.values().all_equal(false));
  const Bitstream s1 =
      inject_fault(golden, Fault{FaultKind::kStuckAt1, 1, 0});
  EXPECT_TRUE(s1.row(1).pattern.values().all_equal(true));
}

TEST(FaultInjection, RangeChecks) {
  const Bitstream golden = small_stream();
  EXPECT_THROW(inject_fault(golden, Fault{FaultKind::kBitFlip, 9, 0}),
               InvalidArgument);
  EXPECT_THROW(inject_fault(golden, Fault{FaultKind::kBitFlip, 0, 9}),
               InvalidArgument);
}

TEST(FaultDetection, DiffPinpointsTheFault) {
  const Bitstream golden = small_stream();
  const Bitstream faulty =
      inject_fault(golden, Fault{FaultKind::kBitFlip, 0, 3});
  const rcm::ContextDecoder decoder(faulty);
  const auto diffs = diff_planes(golden, decoder);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0], (std::pair<std::size_t, std::size_t>{0, 3}));
}

TEST(FaultDetection, CleanStreamHasNoDiffs) {
  const Bitstream golden = small_stream();
  const rcm::ContextDecoder decoder(golden);
  EXPECT_TRUE(diff_planes(golden, decoder).empty());
}

TEST(FaultDetection, MaskedStuckAtIsNotDetected) {
  // Row "b" is already all-0: stuck-at-0 changes nothing.
  const Bitstream golden = small_stream();
  const Bitstream faulty =
      inject_fault(golden, Fault{FaultKind::kStuckAt0, 1, 0});
  const rcm::ContextDecoder decoder(faulty);
  EXPECT_TRUE(diff_planes(golden, decoder).empty());
}

TEST(FaultCampaign, AllUnmaskedFaultsAreDetected) {
  workload::BitstreamGenParams params;
  params.rows = 300;
  params.change_rate = 0.05;
  params.seed = 23;
  const Bitstream golden = workload::generate_bitstream(params);
  const auto result = run_fault_campaign(golden, 100, 99);
  EXPECT_EQ(result.injected, 100u);
  EXPECT_EQ(result.detected + result.masked, 100u);
  // Bit flips are never masked; stuck-ats mask only when they match the
  // original row, which on a 12%-on stream leaves plenty detected.
  EXPECT_GT(result.detection_rate(), 0.4);
}

TEST(FaultCampaign, BitFlipsAreNeverMasked) {
  // A bit flip always changes a stored value, so the plane-diff oracle must
  // catch every one of them (only stuck-ats can be masked).
  workload::BitstreamGenParams params;
  params.rows = 200;
  params.change_rate = 0.05;
  params.seed = 5;
  const Bitstream golden = workload::generate_bitstream(params);
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    Fault fault;
    fault.kind = FaultKind::kBitFlip;
    fault.row = static_cast<std::size_t>(rng.next_below(golden.num_rows()));
    fault.context = static_cast<std::size_t>(rng.next_below(4));
    const rcm::ContextDecoder decoder(inject_fault(golden, fault));
    const auto diffs = diff_planes(golden, decoder);
    ASSERT_EQ(diffs.size(), 1u) << "row " << fault.row;
    EXPECT_EQ(diffs[0].first, fault.row);
    EXPECT_EQ(diffs[0].second, fault.context);
  }
}

TEST(FaultCampaign, EmptyStreamRejected) {
  EXPECT_THROW(run_fault_campaign(Bitstream(4), 10, 1), InvalidArgument);
}

}  // namespace
}  // namespace mcfpga::sim
