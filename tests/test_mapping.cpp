// Unit tests for the mapping layer: tech mapping, context merging and the
// Fig. 13 vs Fig. 14 plane-allocation comparison.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/plane_alloc.hpp"
#include "mapping/tech_map.hpp"
#include "netlist/eval.hpp"

namespace mcfpga::mapping {
namespace {

using netlist::Dfg;
using netlist::MultiContextNetlist;
using netlist::NodeRef;
using netlist::ValueMap;

BitVector random_tt(Rng& rng, std::size_t arity) {
  BitVector tt(std::size_t{1} << arity);
  for (std::size_t a = 0; a < tt.size(); ++a) {
    tt.set(a, rng.next_bool());
  }
  return tt;
}

TEST(TechMap, SmallNodesPassThrough) {
  Dfg dfg;
  const NodeRef a = dfg.add_input("a");
  const NodeRef b = dfg.add_input("b");
  dfg.mark_output(dfg.add_lut("x", {a, b}, BitVector::from_string("0110")),
                  "o");
  const Dfg out = decompose_to_arity(dfg, 4);
  EXPECT_EQ(out.num_lut_ops(), 1u);
  EXPECT_EQ(out.max_arity(), 2u);
}

TEST(TechMap, DecomposesOversizedNodesFunctionally) {
  Rng rng(3);
  Dfg dfg;
  std::vector<NodeRef> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(dfg.add_input("x" + std::to_string(i)));
  }
  const BitVector tt = random_tt(rng, 6);
  dfg.mark_output(dfg.add_lut("big", inputs, tt), "o");

  const Dfg out = decompose_to_arity(dfg, 4);
  EXPECT_LE(out.max_arity(), 4u);
  EXPECT_GT(out.num_lut_ops(), 1u);

  // Exhaustive functional equivalence over all 64 input vectors.
  for (std::size_t v = 0; v < 64; ++v) {
    ValueMap in;
    for (int i = 0; i < 6; ++i) {
      in["x" + std::to_string(i)] = (v >> i) & 1;
    }
    EXPECT_EQ(netlist::evaluate(dfg, in).at("o"),
              netlist::evaluate(out, in).at("o"))
        << v;
  }
}

TEST(TechMap, RecursiveDecompositionToArity3) {
  Rng rng(5);
  Dfg dfg;
  std::vector<NodeRef> inputs;
  for (int i = 0; i < 7; ++i) {
    inputs.push_back(dfg.add_input("x" + std::to_string(i)));
  }
  const BitVector tt = random_tt(rng, 7);
  dfg.mark_output(dfg.add_lut("big", inputs, tt), "o");
  const Dfg out = decompose_to_arity(dfg, 3);
  EXPECT_LE(out.max_arity(), 3u);
  // Spot-check 40 random vectors.
  for (int v = 0; v < 40; ++v) {
    ValueMap in;
    for (int i = 0; i < 7; ++i) {
      in["x" + std::to_string(i)] = rng.next_bool();
    }
    EXPECT_EQ(netlist::evaluate(dfg, in).at("o"),
              netlist::evaluate(out, in).at("o"));
  }
}

TEST(TechMap, RejectsTinyTarget) {
  Dfg dfg;
  dfg.add_input("a");
  EXPECT_THROW(decompose_to_arity(dfg, 2), InvalidArgument);
}

TEST(ContextMerge, ExtractsClassUses) {
  MultiContextNetlist nl(2);
  for (int c = 0; c < 2; ++c) {
    Dfg dfg;
    const NodeRef a = dfg.add_input("a");
    const NodeRef b = dfg.add_input("b");
    dfg.mark_output(
        dfg.add_lut("x", {a, b}, BitVector::from_string("1000")), "o");
    nl.context(c) = std::move(dfg);
  }
  const auto sharing = netlist::analyze_sharing(nl);
  const auto uses = lut_class_uses(nl, sharing);
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_EQ(uses[0].contexts, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(uses[0].arity, 2u);
  EXPECT_TRUE(uses[0].is_shared());
  EXPECT_EQ(uses[0].fanin_classes.size(), 2u);
}

// --- Plane allocation -------------------------------------------------------

ClassUse make_use(std::size_t cls, std::vector<std::size_t> contexts,
                  std::size_t arity,
                  std::vector<std::size_t> fanins = {}) {
  ClassUse use;
  use.cls = cls;
  use.contexts = std::move(contexts);
  use.arity = arity;
  use.truth_table = BitVector(std::size_t{1} << arity);
  if (fanins.empty()) {
    for (std::size_t i = 0; i < arity; ++i) {
      fanins.push_back(1000 + cls * 10 + i);
    }
  }
  use.fanin_classes = std::move(fanins);
  return use;
}

TEST(PlaneAlloc, PlanesOfUsesLowBits) {
  EXPECT_EQ(planes_of({0, 2}, 2), (std::vector<std::size_t>{0}));
  EXPECT_EQ(planes_of({1, 3}, 2), (std::vector<std::size_t>{1}));
  EXPECT_EQ(planes_of({0, 1}, 2), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(planes_of({0, 1, 2, 3}, 1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(planes_of({3}, 4), (std::vector<std::size_t>{3}));
}

// The paper's worked example shape (Figs. 13-14): two contexts, base-2
// LUTs; O1/O4 context-specific 2-input nodes, O2 a shared 3-input node.
// Global control needs 3 LUTs; local control maps it in 2.
TEST(PlaneAlloc, PaperExampleGlobalVsLocal) {
  // O1 and O4 both read the same inputs R, T (fanin classes 900, 901), as
  // in Fig. 13 where LUT1 stores both behind shared pins.
  std::vector<ClassUse> uses;
  uses.push_back(make_use(0, {0}, 2, {900, 901}));  // O1 (paper context 1)
  uses.push_back(make_use(1, {1}, 2, {900, 901}));  // O4 (paper context 2)
  uses.push_back(make_use(2, {0, 1}, 3));           // O5 = shared O2/O3

  const auto global =
      allocate_planes(uses, 2, 2, lut::SizeControl::kGlobal);
  const auto local = allocate_planes(uses, 2, 2, lut::SizeControl::kLocal);

  // The paper's headline: 3 globally controlled LUTs vs 2 locally
  // controlled ones (Fig. 13(b) vs Fig. 14(b)).
  EXPECT_EQ(global.num_slots(), 3u);
  EXPECT_EQ(local.num_slots(), 2u);
  EXPECT_EQ(local.duplicated_bits(), 0u);
  EXPECT_EQ(global.controller_se_cost(), 0u);
  EXPECT_GT(local.controller_se_cost(), 0u);
}

// Fig. 13's redundancy: under a global 2-plane mode, a class shared by
// both contexts stores its table in BOTH planes (LUT3 storing O3 twice);
// local control gives it a single-plane slot instead.
TEST(PlaneAlloc, GlobalControlDuplicatesSharedTables) {
  std::vector<ClassUse> uses;
  uses.push_back(make_use(0, {0}, 2, {900, 901}));  // context-specific
  uses.push_back(make_use(1, {1}, 2, {900, 901}));  // context-specific
  uses.push_back(make_use(2, {0, 1}, 2));  // shared across both contexts

  const auto global =
      allocate_planes(uses, 2, 2, lut::SizeControl::kGlobal);
  const auto local = allocate_planes(uses, 2, 2, lut::SizeControl::kLocal);

  EXPECT_GT(global.duplicated_bits(), 0u);
  EXPECT_EQ(local.duplicated_bits(), 0u);
  EXPECT_LE(local.used_bits(), global.used_bits());
}

TEST(PlaneAlloc, LocalNeverUsesMoreSlotsThanGlobal) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ClassUse> uses;
    const std::size_t count = 4 + rng.next_below(12);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::size_t> ctxs;
      for (std::size_t c = 0; c < 4; ++c) {
        if (rng.next_bool(0.5)) {
          ctxs.push_back(c);
        }
      }
      if (ctxs.empty()) {
        ctxs.push_back(rng.next_below(4));
      }
      uses.push_back(
          make_use(i, ctxs, 2 + rng.next_below(3)));  // arity 2..4
    }
    const auto global =
        allocate_planes(uses, 4, 4, lut::SizeControl::kGlobal);
    const auto local = allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
    EXPECT_LE(local.num_slots(), global.num_slots()) << "trial " << trial;
  }
}

TEST(PlaneAlloc, DisjointContextsPackIntoOneSlot) {
  // Four context-specific functions over the SAME four signals pack into a
  // single 4-plane slot (each context reads its own plane).
  std::vector<ClassUse> uses;
  uses.push_back(make_use(0, {0}, 4, {900, 901, 902, 903}));
  uses.push_back(make_use(1, {1}, 4, {900, 901, 902, 903}));
  uses.push_back(make_use(2, {2}, 4, {900, 901, 902, 903}));
  uses.push_back(make_use(3, {3}, 4, {900, 901, 902, 903}));
  const auto local = allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
  EXPECT_EQ(local.num_slots(), 1u);
  EXPECT_EQ(local.slots[0].mode.planes, 4u);
}

TEST(PlaneAlloc, SharedAllContextsClassGetsSinglePlane) {
  std::vector<ClassUse> uses;
  uses.push_back(make_use(0, {0, 1, 2, 3}, 6));
  const auto local = allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
  ASSERT_EQ(local.num_slots(), 1u);
  EXPECT_EQ(local.slots[0].mode, (lut::LutMode{6, 1}));
  EXPECT_EQ(local.duplicated_bits(), 0u);
}

TEST(PlaneAlloc, OversizedClassThrows) {
  std::vector<ClassUse> uses;
  uses.push_back(make_use(0, {0}, 7));  // > base 4 + 2 ID bits
  EXPECT_THROW(allocate_planes(uses, 4, 4, lut::SizeControl::kLocal),
               FlowError);
  EXPECT_THROW(allocate_planes(uses, 4, 4, lut::SizeControl::kGlobal),
               FlowError);
}

TEST(PlaneAlloc, EveryClassGetsExactlyOneSlot) {
  std::vector<ClassUse> uses;
  for (std::size_t i = 0; i < 10; ++i) {
    uses.push_back(make_use(i, {i % 4}, 3));
  }
  const auto alloc = allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
  EXPECT_EQ(alloc.slot_of_class.size(), 10u);
  std::size_t entries = 0;
  for (const auto& slot : alloc.slots) {
    entries += slot.entries.size();
    // Plane claims within a slot never collide.
    std::set<std::size_t> claimed;
    for (const auto& e : slot.entries) {
      for (const std::size_t p : e.planes) {
        EXPECT_TRUE(claimed.insert(p).second);
      }
    }
  }
  EXPECT_EQ(entries, 10u);
}

TEST(PlaneAlloc, BudgetBitsScalesWithSlots) {
  std::vector<ClassUse> uses;
  uses.push_back(make_use(0, {0}, 4));
  const auto alloc = allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
  EXPECT_EQ(alloc.budget_bits(4, 4), alloc.num_slots() * 64u);
}

}  // namespace
}  // namespace mcfpga::mapping
