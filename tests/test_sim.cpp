// Unit tests for the simulator layer: fabric simulator, SE delay model,
// and the context scheduler.
#include <gtest/gtest.h>

#include "arch/routing_graph.hpp"
#include "common/error.hpp"
#include "config/stats.hpp"
#include "route/router.hpp"
#include "sim/context_scheduler.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"

namespace mcfpga::sim {
namespace {

using arch::FabricSpec;
using arch::RoutingGraph;

FabricSpec spec_2x2() {
  FabricSpec spec;
  spec.width = 2;
  spec.height = 2;
  spec.channel_width = 4;
  spec.double_length_tracks = 0;
  return spec;
}

/// Hand-builds a fabric program: LB(0,0) computes XOR(a,b) in plane c%2
/// and AND(a,b) otherwise, inputs from two pads, output to a third pad.
struct ManualFixture {
  RoutingGraph graph;
  FabricProgram program;

  ManualFixture() : graph(spec_2x2()) {
    program.switch_patterns.assign(
        graph.num_switches(), config::ContextPattern(4, false));

    // Route pad0 -> in_pin(0,0,0), pad1 -> in_pin(0,0,1),
    // out_pin(0,0,0) -> pad2, identically in all contexts, via router.
    route::Router router(graph);
    std::vector<std::vector<route::RouteNet>> nets(4);
    for (std::size_t c = 0; c < 4; ++c) {
      route::RouteNet na{"a", graph.pad(0), {graph.in_pin(0, 0, 0)}};
      route::RouteNet nb{"b", graph.pad(1), {graph.in_pin(0, 0, 1)}};
      route::RouteNet ny{"y", graph.out_pin(0, 0, 0), {graph.pad(2)}};
      nets[c] = {na, nb, ny};
    }
    const auto routed = router.route(nets);
    if (!routed.success) {
      throw FlowError("fixture routing failed");
    }
    program.switch_patterns = routed.switch_patterns;

    LbConfig lb;
    lb.x = 0;
    lb.y = 0;
    lb.mode = lut::LutMode{4, 4};  // base-4, 4 contexts
    lb.outputs.resize(2);
    lb.outputs[0].used = true;
    lb.outputs[0].plane_tables.assign(4, BitVector(16));
    for (std::size_t plane = 0; plane < 4; ++plane) {
      for (std::size_t a = 0; a < 16; ++a) {
        const bool x = a & 1;
        const bool y = (a >> 1) & 1;
        lb.outputs[0].plane_tables[plane].set(
            a, plane % 2 == 0 ? (x != y) : (x && y));
      }
    }
    program.lbs.push_back(lb);
    program.input_pads["a"] = 0;
    program.input_pads["b"] = 1;
    program.output_pads["y"] = 2;
  }
};

TEST(FabricSimulator, EvaluatesPlaneSelectedFunctions) {
  ManualFixture fx;
  const FabricSimulator sim(fx.graph, fx.program);
  for (std::size_t c = 0; c < 4; ++c) {
    for (int mask = 0; mask < 4; ++mask) {
      const bool a = mask & 1;
      const bool b = mask & 2;
      const auto out =
          sim.eval(c, netlist::ValueMap{{"a", a}, {"b", b}});
      const bool expected = c % 2 == 0 ? (a != b) : (a && b);
      EXPECT_EQ(out.at("y"), expected) << "ctx " << c << " mask " << mask;
    }
  }
}

TEST(FabricSimulator, UnknownInputsDefaultToZero) {
  ManualFixture fx;
  const FabricSimulator sim(fx.graph, fx.program);
  const auto out = sim.eval(0, {});
  EXPECT_FALSE(out.at("y"));  // XOR(0,0) = 0
}

TEST(FabricSimulator, ComponentCountsArePositive) {
  ManualFixture fx;
  const FabricSimulator sim(fx.graph, fx.program);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GT(sim.num_components(c), 0u);
  }
}

TEST(FabricSimulator, RejectsIncompleteProgram) {
  const RoutingGraph graph(spec_2x2());
  FabricProgram program;  // empty switch_patterns
  EXPECT_THROW(FabricSimulator(graph, program), InvalidArgument);
}

TEST(FabricSimulator, DetectsShortedDrivers) {
  ManualFixture fx;
  // Short two output-driving pads into one component: route pad0 and the
  // LB output to the same wire by turning on a switch connecting pad0's
  // wire to the output's wire... simplest: bind input "a" and output "y"
  // nets and also claim pad0 as an input driving the same component as
  // the LB output by adding pad2 as an INPUT too.
  fx.program.input_pads["z"] = 2;  // pad2 already carries the LB output
  EXPECT_THROW(FabricSimulator(fx.graph, fx.program), ProgrammingError);
}

// --- Delay model -------------------------------------------------------------

TEST(DelayModel, SingleArcDelay) {
  std::vector<TimingArc> arcs = {{0, 1, 5, true}};
  const auto report = analyze_timing(2, arcs);
  EXPECT_DOUBLE_EQ(report.critical_path, 5.0 * 1.0 + 2.0);
  EXPECT_EQ(report.critical_nodes, (std::vector<std::size_t>{0, 1}));
}

TEST(DelayModel, LongestPathWins) {
  // 0 -> 1 -> 3 (short) and 0 -> 2 -> 3 (long).
  std::vector<TimingArc> arcs = {
      {0, 1, 1, true}, {1, 3, 1, true}, {0, 2, 10, true}, {2, 3, 1, true}};
  const auto report = analyze_timing(4, arcs);
  EXPECT_DOUBLE_EQ(report.critical_path, (10 + 2) + (1 + 2));
  EXPECT_EQ(report.critical_nodes, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(DelayModel, CustomParams) {
  std::vector<TimingArc> arcs = {{0, 1, 3, true}};
  DelayParams params;
  params.se_delay = 2.0;
  params.lut_delay = 5.0;
  EXPECT_DOUBLE_EQ(analyze_timing(2, arcs, params).critical_path, 11.0);
}

TEST(DelayModel, PadSinkAddsNoLutDelay) {
  std::vector<TimingArc> arcs = {{0, 1, 4, false}};
  EXPECT_DOUBLE_EQ(analyze_timing(2, arcs).critical_path, 4.0);
}

TEST(DelayModel, CycleDetection) {
  std::vector<TimingArc> arcs = {{0, 1, 1, true}, {1, 0, 1, true}};
  EXPECT_THROW(analyze_timing(2, arcs), ProgrammingError);
}

TEST(DelayModel, EmptyGraph) {
  EXPECT_DOUBLE_EQ(analyze_timing(0, {}).critical_path, 0.0);
}

// --- Context scheduler ---------------------------------------------------------

TEST(ContextScheduler, RoundRobinDefault) {
  const ContextScheduler sched(4);
  EXPECT_EQ(sched.context_at(0), 0u);
  EXPECT_EQ(sched.context_at(1), 1u);
  EXPECT_EQ(sched.context_at(5), 1u);
  EXPECT_EQ(sched.order().size(), 4u);
}

TEST(ContextScheduler, CustomOrder) {
  const ContextScheduler sched(4, {0, 2, 0, 2});
  EXPECT_EQ(sched.context_at(1), 2u);
  EXPECT_EQ(sched.context_at(2), 0u);
  EXPECT_THROW(ContextScheduler(2, {5}), InvalidArgument);
}

TEST(ContextScheduler, CountsToggledBits) {
  config::Bitstream bs(4);
  // One row toggles at every context boundary, one never does.
  bs.add_row("t", config::ResourceKind::kRoutingSwitch,
             config::ContextPattern::from_string("0101"));
  bs.add_row("c", config::ResourceKind::kRoutingSwitch,
             config::ContextPattern::from_string("1111"));
  const ContextScheduler sched(4);
  const auto stats = sched.run(bs, 9);  // 8 transitions, all switches
  EXPECT_EQ(stats.context_switches, 8u);
  // "0101" toggles on 0->1, 1->2, 2->3 and on the wraparound 3->0.
  EXPECT_EQ(stats.bits_toggled, 8u);
  EXPECT_DOUBLE_EQ(stats.avg_bits_per_switch(), 1.0);
}

TEST(ContextScheduler, RepeatedContextIsFreeSwitch) {
  config::Bitstream bs(4);
  bs.add_row("t", config::ResourceKind::kRoutingSwitch,
             config::ContextPattern::from_string("0101"));
  const ContextScheduler sched(4, {1, 1, 1, 1});
  const auto stats = sched.run(bs, 10);
  EXPECT_EQ(stats.context_switches, 0u);
  EXPECT_EQ(stats.bits_toggled, 0u);
}

TEST(ContextScheduler, SingleCycleNoSwitches) {
  const ContextScheduler sched(4);
  const auto stats = sched.run(config::Bitstream(4), 1);
  EXPECT_EQ(stats.context_switches, 0u);
}

TEST(ContextScheduler, ZeroContextsRejected) {
  EXPECT_THROW(ContextScheduler(0), InvalidArgument);
  EXPECT_THROW(ContextScheduler(0, {}), InvalidArgument);
}

TEST(ContextScheduler, ExplicitEmptyOrderDefaultsToRoundRobin) {
  const ContextScheduler sched(3, std::vector<std::size_t>{});
  EXPECT_EQ(sched.order(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(sched.context_at(0), 0u);
  EXPECT_EQ(sched.context_at(4), 1u);
}

TEST(ContextScheduler, ConstantScheduleNeverSwitches) {
  config::Bitstream bs(2);
  bs.add_row("r", config::ResourceKind::kRoutingSwitch,
             config::ContextPattern::from_string("01"));
  const ContextScheduler sched(2, {0, 0});
  const auto stats = sched.run(bs, 100);
  EXPECT_EQ(stats.context_switches, 0u);
  EXPECT_EQ(stats.bits_toggled, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_bits_per_switch(), 0.0);
}

TEST(ContextScheduler, ZeroCyclesIsClean) {
  const ContextScheduler sched(4);
  const auto stats = sched.run(config::Bitstream(4), 0);
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_EQ(stats.context_switches, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_bits_per_switch(), 0.0);
}

TEST(ScheduleStats, AvgBitsPerSwitchNoSwitchesIsZero) {
  ScheduleStats stats;
  stats.bits_toggled = 42;  // inconsistent on purpose: still no div-by-zero
  EXPECT_DOUBLE_EQ(stats.avg_bits_per_switch(), 0.0);
  stats.context_switches = 4;
  EXPECT_DOUBLE_EQ(stats.avg_bits_per_switch(), 10.5);
}

}  // namespace
}  // namespace mcfpga::sim
