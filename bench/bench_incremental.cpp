// B11 — incremental-recompile bench: cold compile vs content-addressed
// cache hit vs k-net-edit delta recompile (cache/incremental.hpp).
//
// Lanes (one BENCH_JSON line each, see bench_json.hpp):
//   incremental_cold          first compile through CompileService — every
//                             stage runs and publishes its artifact;
//   incremental_cache_hit     identical recompile — pure cache lookup.
//                             GATE: >= hit_gate x faster than cold and
//                             bit-identical bitstream;
//   incremental_delta_retable k sequential truth-table edits through
//                             compile_incremental.  GATE: every edit takes
//                             the delta path, mean edit >= delta_gate x
//                             faster than cold, and the final design's
//                             worst critical path and total wirelength are
//                             equal-or-better vs a from-scratch compile of
//                             the same edited netlist;
//   incremental_delta_rewire  k sequential fanin-retarget edits — the
//                             rip-up/re-route path.  GATE: at least one
//                             edit takes the delta path (rewires may
//                             legitimately fall back when they change the
//                             used-terminal set) and QoR stays within a
//                             slack factor of from-scratch; speedup is
//                             reported but soft (re-routing work scales
//                             with the edit).
//
// Pass --smoke for a reduced CI-sized run; wall-clock gates relax to a
// smaller factor there because tiny workloads make the fixed per-compile
// overhead (graph build, timing, programming) a larger slice of cold time.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_json.hpp"
#include "cache/incremental.hpp"
#include "config/serialize.hpp"
#include "core/flow.hpp"
#include "workload/circuits.hpp"
#include "workload/edits.hpp"

using namespace mcfpga;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double worst_critical_path(const core::CompiledDesign& design) {
  double worst = 0.0;
  for (const auto& s : design.context_stats) {
    worst = std::max(worst, s.critical_path);
  }
  return worst;
}

std::size_t total_wirelength(const core::CompiledDesign& design) {
  std::size_t total = 0;
  for (const auto& s : design.context_stats) {
    total += s.wire_nodes_used;
  }
  return total;
}

// First LUT node at index >= min_index in context 0 — the same editable
// node every run, so edit sequences are reproducible.
std::size_t pick_lut_node(const netlist::MultiContextNetlist& nl,
                          std::size_t min_index = 2) {
  const netlist::Dfg& dfg = nl.context(0);
  for (std::size_t i = min_index; i < dfg.num_nodes(); ++i) {
    if (dfg.node(static_cast<netlist::NodeRef>(i)).type ==
        netlist::NodeType::kLutOp) {
      return i;
    }
  }
  std::cerr << "workload has no LUT node\n";
  std::exit(2);
}

std::string qor_extra(const core::CompiledDesign& design) {
  std::ostringstream os;
  os << "\"wirelength\":" << total_wirelength(design);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::strcmp(argv[i], "--smoke") == 0;
  }
  std::cout << "=== B11: content-addressed cache + delta recompile ===\n\n";

  const std::size_t width = smoke ? 8 : 28;
  const std::size_t num_edits = 4;
  const double hit_gate = 5.0;
  const double delta_gate = smoke ? 2.0 : 5.0;
  // Rewire edits move real connectivity, so their QoR is allowed this
  // factor of slack vs from-scratch (retable edits get none).
  const double rewire_qor_slack = 1.5;

  const auto base_nl = workload::pipeline_workload(4, width);

  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;

  core::CompileOptions options;
  options.placer.timing_mode = true;
  options.placer.num_restarts = 4;  // quality-targeted compile effort
  options.router.timing_mode = true;

  bool gate_ok = true;
  const auto fail_gate = [&gate_ok](const std::string& what) {
    std::cout << "GATE FAILED: " << what << "\n";
    gate_ok = false;
  };

  cache::CompileService service;

  // --- lane 1: cold compile --------------------------------------------------
  const auto t_cold = Clock::now();
  const cache::Compiled cold = service.compile(base_nl, spec, options);
  const double cold_ms = ms_since(t_cold);
  bench::json_line("incremental_cold", width, cold_ms,
                   worst_critical_path(cold.design), qor_extra(cold.design));

  // --- lane 2: cache hit -----------------------------------------------------
  // Best of 3 reps: the lane measures lookup cost, not scheduler noise.
  double hit_ms = 1e300;
  std::size_t hit_misses = 0;
  std::string hit_bitstream;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t_hit = Clock::now();
    const cache::Compiled hit = service.compile(base_nl, spec, options);
    hit_ms = std::min(hit_ms, ms_since(t_hit));
    hit_misses += hit.design.cache.misses;
    hit_bitstream = config::to_text(hit.design.full_bitstream);
  }
  const double hit_speedup = cold_ms / hit_ms;
  {
    std::ostringstream extra;
    extra << "\"speedup\":" << hit_speedup;
    bench::json_line("incremental_cache_hit", width, hit_ms,
                     worst_critical_path(cold.design), extra.str());
  }
  if (hit_misses != 0) {
    fail_gate("cache-hit recompile missed " + std::to_string(hit_misses) +
              " stages (expected 0)");
  }
  if (hit_bitstream != config::to_text(cold.design.full_bitstream)) {
    fail_gate("cache-hit bitstream differs from the cold compile");
  }
  if (hit_speedup < hit_gate) {
    std::ostringstream os;
    os << "cache-hit speedup " << hit_speedup << "x < " << hit_gate << "x";
    fail_gate(os.str());
  }

  // --- lanes 3 and 4: k-edit delta recompiles --------------------------------
  struct Lane {
    const char* name;
    bool rewire;        // retable otherwise
    double qor_slack;   // multiplicative allowance vs from-scratch
    bool hard_speedup;  // gate on delta_gate (vs report-only)
    // Minimum edits that must take the delta path.  Retable edits always
    // qualify; rewire edits may legitimately fall back (retargeting a
    // fanin can change the set of used I/O terminals, which resizes the
    // placement problem), so that lane only requires the rip-up path to
    // be exercised at least once.
    std::size_t min_deltas;
  };
  const Lane lanes[] = {
      {"incremental_delta_retable", false, 1.0, true, num_edits},
      {"incremental_delta_rewire", true, rewire_qor_slack, false, 1},
  };

  for (const Lane& lane : lanes) {
    cache::Compiled current = cold;
    auto nl = base_nl;
    double edit_ms_total = 0.0;
    std::size_t deltas_taken = 0;
    std::string last_fallback;
    for (std::size_t k = 0; k < num_edits; ++k) {
      const std::size_t node = pick_lut_node(nl, 2 + 3 * k);
      const std::uint64_t seed = 0xb11 + k;
      const auto edited = lane.rewire
                              ? workload::rewire_edit(nl, node, seed)
                              : workload::retable_edit(nl, node, seed);
      const auto t_edit = Clock::now();
      current = service.compile_incremental(current, edited, options);
      edit_ms_total += ms_since(t_edit);
      if (current.design.cache.delta) {
        ++deltas_taken;
      } else {
        last_fallback = current.design.cache.delta_fallback;
      }
      nl = edited;
    }
    const double edit_ms = edit_ms_total / num_edits;
    const double speedup = cold_ms / edit_ms;

    // From-scratch reference for the final edited netlist, compiled
    // outside the cache so the comparison is against the plain pipeline.
    const core::CompiledDesign scratch = core::compile(nl, spec, options);
    const double delta_cp = worst_critical_path(current.design);
    const double scratch_cp = worst_critical_path(scratch);
    const std::size_t delta_wl = total_wirelength(current.design);
    const std::size_t scratch_wl = total_wirelength(scratch);

    {
      std::ostringstream extra;
      extra << "\"wirelength\":" << delta_wl << ",\"speedup\":" << speedup
            << ",\"edits\":" << num_edits
            << ",\"deltas_taken\":" << deltas_taken
            << ",\"scratch_cost\":" << scratch_cp
            << ",\"scratch_wirelength\":" << scratch_wl;
      bench::json_line(lane.name, width, edit_ms, delta_cp, extra.str());
    }

    if (deltas_taken < lane.min_deltas) {
      fail_gate(std::string(lane.name) + ": only " +
                std::to_string(deltas_taken) + "/" +
                std::to_string(num_edits) + " edits took the delta path" +
                (last_fallback.empty() ? "" : " (" + last_fallback + ")"));
    }
    if (delta_cp > scratch_cp * lane.qor_slack ||
        static_cast<double>(delta_wl) >
            static_cast<double>(scratch_wl) * lane.qor_slack) {
      std::ostringstream os;
      os << lane.name << ": QoR worse than from-scratch (critical path "
         << delta_cp << " vs " << scratch_cp << ", wirelength " << delta_wl
         << " vs " << scratch_wl << ", slack " << lane.qor_slack << "x)";
      fail_gate(os.str());
    }
    if (lane.hard_speedup && speedup < delta_gate) {
      std::ostringstream os;
      os << lane.name << ": mean edit speedup " << speedup << "x < "
         << delta_gate << "x vs cold (" << edit_ms << " ms vs " << cold_ms
         << " ms)";
      fail_gate(os.str());
    }
  }

  std::cout << "\n"
            << (gate_ok ? "all incremental-recompile gates hold"
                        : "incremental-recompile gates FAILED")
            << "\n";
  return gate_ok ? 0 : 1;
}
