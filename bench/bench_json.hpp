// One machine-readable JSON line per bench measurement, so CI runs can
// populate the BENCH_*.json trajectory by grepping bench stdout for lines
// starting with "BENCH_JSON ".
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace mcfpga::bench {

/// Emits: BENCH_JSON {"name":"...","size":N,"wall_ms":X,"cost":Y}
/// plus any extra pre-rendered JSON fields (e.g. R"("moves_per_sec":123)").
inline void json_line(const std::string& name, std::size_t size,
                      double wall_ms, double cost,
                      const std::string& extra = "") {
  std::ostringstream os;
  os << "BENCH_JSON {\"name\":\"" << name << "\",\"size\":" << size
     << ",\"wall_ms\":" << wall_ms << ",\"cost\":" << cost;
  if (!extra.empty()) {
    os << ',' << extra;
  }
  os << '}';
  std::cout << os.str() << '\n';
}

}  // namespace mcfpga::bench
