// E7 — Sec. 5 headline, CMOS evaluation: area of the proposed MC-FPGA
// (RCM switch blocks + adaptive MCMG logic blocks) vs the conventional
// MC-FPGA (per-bit context planes), at the paper's operating point
// (4 contexts, 6-input 2-output MCMG-LUTs, 5% change rate).
// Paper result: proposed ~= 45% of conventional.
#include <iostream>

#include "area/area_model.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "workload/bitstream_gen.hpp"

using namespace mcfpga;

namespace {

area::ComparisonReport run_point(std::size_t num_contexts, double change_rate,
                                 bool share, std::uint64_t seed) {
  arch::FabricSpec spec;
  spec.width = 8;
  spec.height = 8;
  spec.num_contexts = num_contexts;
  spec.logic_block.num_contexts = num_contexts;
  spec.logic_block.base_inputs = 4;   // -> 6-input single-plane mode
  spec.logic_block.num_outputs = 2;   // "6-input 2-output MCMG-LUT"

  // ~300 routing switches per cell (switch block + connection block), in
  // per-block groups so decoder sharing stays local.
  workload::BitstreamGenParams params;
  params.rows = spec.num_cells() * 300;  // ~switch+connection block rows/cell
  params.num_contexts = num_contexts;
  params.change_rate = change_rate;
  params.seed = seed;
  const auto blocks = workload::generate_blocks(params, 100);

  area::ComparisonOptions options;
  options.share_identical_patterns = share;
  const area::AreaModel model;
  return model.compare_fabric(spec, blocks, options);
}

}  // namespace

int main() {
  std::cout << "=== E7: Sec. 5 area comparison, CMOS evaluation ===\n";
  std::cout << "paper operating point: 4 contexts, 6-input 2-output "
               "MCMG-LUTs, 5% change rate\n";
  std::cout << "paper result: proposed area = 45% of conventional\n\n";

  const area::AreaModel model;
  model.describe(std::cout, 4);
  std::cout << "\n";

  // Headline.
  const auto headline = run_point(4, 0.05, /*share=*/true, 7);
  headline.print(std::cout, "headline (4 contexts, 5% change rate, CMOS)");
  std::cout << "\n";

  // Change-rate sweep.
  Table t({"change rate", "area ratio (share on)", "area ratio (share off)"});
  for (const double rate : {0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50}) {
    const auto on = run_point(4, rate, true, 11);
    const auto off = run_point(4, rate, false, 11);
    t.add_row({fmt_percent(rate, 0), fmt_percent(on.ratio()),
               fmt_percent(off.ratio())});
  }
  std::cout << "area ratio vs configuration change rate:\n";
  t.print(std::cout);
  std::cout << "\n";

  // Context-count sweep (the conventional overhead grows linearly in n).
  Table c({"contexts", "conventional switch (T)", "area ratio"});
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    const auto report = run_point(n, 0.05, true, 13);
    c.add_row({std::to_string(n),
               fmt_double(model.conventional_switch(n), 0),
               fmt_percent(report.ratio())});
  }
  std::cout << "area ratio vs context count (5% change rate):\n";
  c.print(std::cout);
  std::cout << "expected shape: the ratio improves (falls) as contexts\n"
               "increase and degrades (rises) with the change rate; at the\n"
               "paper's operating point it sits in the ~45% region.\n";
  return 0;
}
