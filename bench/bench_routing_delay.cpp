// E5 — Figs. 10-11: routing delay with and without double-length lines.
// A signal crossing L cells serially passes ~L switch-block SEs; on
// double-length lines it passes ~L/2 diamond switches.  The bench routes
// straight-line connections of growing length and a full compiled design
// under both configurations, then times serial vs parallel per-context
// routing on a multi-context workload.
//
// Pass --smoke for a reduced CI-sized run.  Every measurement also emits
// one BENCH_JSON machine-readable line (see bench_json.hpp).
#include <cstring>
#include <iostream>

#include "arch/routing_graph.hpp"
#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mcfpga.hpp"
#include "route/router.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

namespace {

route::RoutedPath route_straight(std::size_t length, bool prefer_dl) {
  arch::FabricSpec spec;
  spec.width = length + 1;
  spec.height = 1;
  spec.channel_width = 4;
  spec.double_length_tracks = 2;
  const arch::RoutingGraph g(spec);
  route::RouterOptions opts;
  opts.prefer_double_length = prefer_dl;
  const route::Router router(g, opts);
  std::vector<std::vector<route::RouteNet>> nets(4);
  nets[0].push_back(route::RouteNet{
      "straight", g.out_pin(0, 0, 0), {g.in_pin(length, 0, 0)}});
  const auto result = router.route(nets);
  return result.nets[0][0].paths[0];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::strcmp(argv[i], "--smoke") == 0;
  }
  std::cout << "=== E5: double-length lines vs serial SEs (Figs. 10-11) "
               "===\n\n";

  Table t({"distance (cells)", "switches (single-length only)",
           "switches (with double-length)", "diamonds used", "speedup"});
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{2, 4, 8}
            : std::vector<std::size_t>{2, 4, 6, 8, 12, 16};
  for (const std::size_t len : lengths) {
    const auto slow = route_straight(len, false);
    const auto fast = route_straight(len, true);
    t.add_row({std::to_string(len), std::to_string(slow.switch_count()),
               std::to_string(fast.switch_count()),
               std::to_string(fast.diamond_count),
               fmt_double(static_cast<double>(slow.switch_count()) /
                              static_cast<double>(fast.switch_count()),
                          2) +
                   "x"});
    bench::json_line("routing_delay_straight_single", len, 0.0,
                     static_cast<double>(slow.switch_count()));
    bench::json_line("routing_delay_straight_double", len, 0.0,
                     static_cast<double>(fast.switch_count()),
                     R"("diamonds":)" + std::to_string(fast.diamond_count));
  }
  std::cout << "straight-line route, SE crossings (delay in SE units):\n";
  t.print(std::cout);
  std::cout << "expected shape: the double-length configuration crosses\n"
               "roughly half the switches at long distances (Fig. 10).\n\n";

  // Full-design critical path with and without the fast lines.
  const std::size_t stages = smoke ? 6 : 8;
  Table d({"configuration", "critical path ctx0", "ctx1", "ctx2", "ctx3"});
  for (const bool dl : {false, true}) {
    arch::FabricSpec spec;
    spec.width = 5;
    spec.height = 5;
    spec.channel_width = 8;
    spec.double_length_tracks = dl ? 4 : 0;
    core::CompileOptions options;
    options.router.prefer_double_length = dl;
    const core::MCFPGA chip(workload::pipeline_workload(4, stages), spec,
                            options);
    std::vector<std::string> row = {dl ? "with double-length lines"
                                       : "single-length only"};
    double worst = 0.0;
    for (const auto& s : chip.design().context_stats) {
      row.push_back(fmt_double(s.critical_path, 1));
      worst = std::max(worst, s.critical_path);
    }
    d.add_row(row);
    bench::json_line(dl ? "routing_delay_e5_double" : "routing_delay_e5_single",
                     stages, 0.0, worst);
  }
  std::cout << "compiled pipeline workload, critical path (SE units):\n";
  d.print(std::cout);

  // --- Serial vs parallel per-context routing ------------------------------
  // Same nets, same graph; only the router's worker count changes.  The
  // results are bit-identical by construction, so the only difference to
  // observe is wall clock.
  {
    arch::FabricSpec spec;
    spec.width = 6;
    spec.height = 6;
    spec.channel_width = 8;
    spec.double_length_tracks = 4;
    const std::size_t depth = smoke ? 6 : 10;
    core::CompileOptions options;
    const core::MCFPGA chip(workload::pipeline_workload(4, depth), spec,
                            options);

    Table p({"router workers", "route stage (ms)"});
    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{0}}) {
      core::CompileOptions timed = options;
      timed.router.num_threads = workers;
      const auto design = core::compile(workload::pipeline_workload(4, depth),
                                        spec, timed);
      double route_ms = 0.0;
      for (const auto& s : design.stage_timings) {
        if (s.name == "route") {
          route_ms = s.seconds * 1e3;
        }
      }
      (workers == 1 ? serial_ms : parallel_ms) = route_ms;
      p.add_row({workers == 0 ? "auto (hardware)" : std::to_string(workers),
                 fmt_double(route_ms, 2)});
      bench::json_line(workers == 1 ? "routing_delay_route_serial"
                                    : "routing_delay_route_parallel",
                       depth, route_ms, 0.0);
    }
    std::cout << "\nserial vs parallel per-context routing (bit-identical "
                 "results):\n";
    p.print(std::cout);
    if (parallel_ms > 0.0) {
      std::cout << "routing speedup (serial / parallel): "
                << fmt_double(serial_ms / parallel_ms, 2) << "x\n";
    }
  }
  return 0;
}
