// E5 — Figs. 10-11: routing delay with and without double-length lines.
// A signal crossing L cells serially passes ~L switch-block SEs; on
// double-length lines it passes ~L/2 diamond switches.  The bench routes
// straight-line connections of growing length and a full compiled design
// under both configurations, then times serial vs parallel per-context
// routing on a multi-context workload.
//
// The bench also compares the router's two maze-expansion engines
// (RouterOptions::queue_mode): the classic binary heap against the
// monotone bucket queue, on a congested random multi-context workload —
// wall clock, queue-traffic counters, and a QoR gate (bucket must never
// be worse on worst critical switches, then wirelength; non-smoke runs
// additionally gate the >= 1.5x maze-expansion speedup), and the two
// cross-context negotiation schedulers (whole-context rounds vs the
// net-interleaved merged queue) on the same workload — total maze
// traffic summed over every round/wave, with a >= 1.3x expansion
// reduction gate at equal-or-better conflicts and critical switches.
//
// Pass --smoke for a reduced CI-sized run.  Every measurement also emits
// one BENCH_JSON machine-readable line (see bench_json.hpp).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>

#include "arch/routing_graph.hpp"
#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mcfpga.hpp"
#include "route/router.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

namespace {

route::RoutedPath route_straight(std::size_t length, bool prefer_dl) {
  arch::FabricSpec spec;
  spec.width = length + 1;
  spec.height = 1;
  spec.channel_width = 4;
  spec.double_length_tracks = 2;
  const arch::RoutingGraph g(spec);
  route::RouterOptions opts;
  opts.prefer_double_length = prefer_dl;
  const route::Router router(g, opts);
  std::vector<std::vector<route::RouteNet>> nets(4);
  nets[0].push_back(route::RouteNet{
      "straight", g.out_pin(0, 0, 0), {g.in_pin(length, 0, 0)}});
  const auto result = router.route(nets);
  return result.nets[0][0].paths[0];
}

/// Deterministic congested multi-context routing problem, straight on the
/// routing graph: per context, `nets_per_context` nets with distinct
/// source pins and 1-3 distinct sink pins each (PathFinder's exclusivity
/// rules make duplicate endpoints unroutable, so endpoints are sampled
/// without replacement).
std::vector<std::vector<route::RouteNet>> random_route_problem(
    const arch::RoutingGraph& g, std::size_t num_contexts,
    std::size_t nets_per_context, std::uint64_t seed) {
  const arch::FabricSpec& spec = g.spec();
  std::uint64_t state = seed;
  const auto next = [&]() {  // splitmix64
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  std::vector<std::vector<route::RouteNet>> nets(num_contexts);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    // Endpoint pools, shuffled once per context (Fisher-Yates).
    std::vector<arch::NodeId> sources;
    std::vector<arch::NodeId> sinks;
    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x) {
        for (std::size_t p = 0; p < spec.logic_block.num_outputs; ++p) {
          sources.push_back(g.out_pin(x, y, p));
        }
        for (std::size_t p = 0; p < spec.logic_block.base_inputs; ++p) {
          sinks.push_back(g.in_pin(x, y, p));
        }
      }
    }
    for (std::size_t i = sources.size(); i > 1; --i) {
      std::swap(sources[i - 1], sources[next() % i]);
    }
    for (std::size_t i = sinks.size(); i > 1; --i) {
      std::swap(sinks[i - 1], sinks[next() % i]);
    }
    std::size_t sink_at = 0;
    for (std::size_t i = 0; i < nets_per_context; ++i) {
      route::RouteNet net;
      net.name = "rnd_c" + std::to_string(c) + "_n" + std::to_string(i);
      net.source = sources[i];
      const std::size_t fanout = 1 + next() % 3;
      for (std::size_t s = 0; s < fanout && sink_at < sinks.size(); ++s) {
        net.sinks.push_back(sinks[sink_at++]);
      }
      nets[c].push_back(std::move(net));
    }
  }
  return nets;
}

/// Sums one counter over a RouteResult's context summaries.
std::size_t total_of(const route::RouteResult& r,
                     std::size_t route::ContextRouteSummary::* member) {
  std::size_t total = 0;
  for (const auto& s : r.context_summary) {
    total += s.*member;
  }
  return total;
}

std::size_t worst_switches(const route::RouteResult& r) {
  std::size_t worst = 0;
  for (std::size_t c = 0; c < r.nets.size(); ++c) {
    worst = std::max(worst, r.critical_switches(c));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::strcmp(argv[i], "--smoke") == 0;
  }
  std::cout << "=== E5: double-length lines vs serial SEs (Figs. 10-11) "
               "===\n\n";

  Table t({"distance (cells)", "switches (single-length only)",
           "switches (with double-length)", "diamonds used", "speedup"});
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{2, 4, 8}
            : std::vector<std::size_t>{2, 4, 6, 8, 12, 16};
  for (const std::size_t len : lengths) {
    const auto slow = route_straight(len, false);
    const auto fast = route_straight(len, true);
    t.add_row({std::to_string(len), std::to_string(slow.switch_count()),
               std::to_string(fast.switch_count()),
               std::to_string(fast.diamond_count),
               fmt_double(static_cast<double>(slow.switch_count()) /
                              static_cast<double>(fast.switch_count()),
                          2) +
                   "x"});
    bench::json_line("routing_delay_straight_single", len, 0.0,
                     static_cast<double>(slow.switch_count()));
    bench::json_line("routing_delay_straight_double", len, 0.0,
                     static_cast<double>(fast.switch_count()),
                     R"("diamonds":)" + std::to_string(fast.diamond_count));
  }
  std::cout << "straight-line route, SE crossings (delay in SE units):\n";
  t.print(std::cout);
  std::cout << "expected shape: the double-length configuration crosses\n"
               "roughly half the switches at long distances (Fig. 10).\n\n";

  // Full-design critical path with and without the fast lines.
  const std::size_t stages = smoke ? 6 : 8;
  Table d({"configuration", "critical path ctx0", "ctx1", "ctx2", "ctx3"});
  for (const bool dl : {false, true}) {
    arch::FabricSpec spec;
    spec.width = 5;
    spec.height = 5;
    spec.channel_width = 8;
    spec.double_length_tracks = dl ? 4 : 0;
    core::CompileOptions options;
    options.router.prefer_double_length = dl;
    const core::MCFPGA chip(workload::pipeline_workload(4, stages), spec,
                            options);
    std::vector<std::string> row = {dl ? "with double-length lines"
                                       : "single-length only"};
    double worst = 0.0;
    for (const auto& s : chip.design().context_stats) {
      row.push_back(fmt_double(s.critical_path, 1));
      worst = std::max(worst, s.critical_path);
    }
    d.add_row(row);
    bench::json_line(dl ? "routing_delay_e5_double" : "routing_delay_e5_single",
                     stages, 0.0, worst);
  }
  std::cout << "compiled pipeline workload, critical path (SE units):\n";
  d.print(std::cout);

  // --- Serial vs parallel per-context routing ------------------------------
  // Same nets, same graph; only the router's worker count changes.  The
  // results are bit-identical by construction, so the only difference to
  // observe is wall clock.
  {
    arch::FabricSpec spec;
    spec.width = 6;
    spec.height = 6;
    spec.channel_width = 8;
    spec.double_length_tracks = 4;
    const std::size_t depth = smoke ? 6 : 10;
    core::CompileOptions options;
    const core::MCFPGA chip(workload::pipeline_workload(4, depth), spec,
                            options);

    Table p({"router workers", "route stage (ms)"});
    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{0}}) {
      core::CompileOptions timed = options;
      timed.router.num_threads = workers;
      const auto design = core::compile(workload::pipeline_workload(4, depth),
                                        spec, timed);
      double route_ms = 0.0;
      for (const auto& s : design.stage_timings) {
        if (s.name == "route") {
          route_ms = s.seconds * 1e3;
        }
      }
      (workers == 1 ? serial_ms : parallel_ms) = route_ms;
      p.add_row({workers == 0 ? "auto (hardware)" : std::to_string(workers),
                 fmt_double(route_ms, 2)});
      bench::json_line(workers == 1 ? "routing_delay_route_serial"
                                    : "routing_delay_route_parallel",
                       depth, route_ms, 0.0);
    }
    std::cout << "\nserial vs parallel per-context routing (bit-identical "
                 "results):\n";
    p.print(std::cout);
    if (parallel_ms > 0.0) {
      std::cout << "routing speedup (serial / parallel): "
                << fmt_double(serial_ms / parallel_ms, 2) << "x\n";
    }
  }

  // --- Maze-expansion engine: binary heap vs bucket queue ------------------
  // Identical congested workload, identical options except queue_mode;
  // serial routing so the wall clock is the engine, not the scheduler.
  // The gate (a non-zero exit) enforces the bucket engine's contract:
  // never worse on QoR (worst critical switches, then total wirelength),
  // and — outside --smoke, where machine noise would flake CI — at least
  // a 1.5x maze-expansion speedup.
  {
    using clock = std::chrono::steady_clock;
    arch::FabricSpec spec;
    spec.width = smoke ? 10 : 20;
    spec.height = spec.width;
    spec.channel_width = 8;
    spec.double_length_tracks = 4;
    const arch::RoutingGraph g(spec);
    const std::size_t nets_per_context = smoke ? 60 : 200;
    const auto nets = random_route_problem(g, 4, nets_per_context, 1234);
    const std::size_t reps = smoke ? 1 : 3;

    struct EngineRun {
      double best_ms = 0.0;
      route::RouteResult result;
    };
    const auto run_engine = [&](route::QueueMode mode) {
      route::RouterOptions opts;
      opts.num_threads = 1;
      opts.queue_mode = mode;
      const route::Router router(g, opts);
      EngineRun run;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const clock::time_point start = clock::now();
        route::RouteResult result = router.route(nets);
        const double ms =
            std::chrono::duration<double>(clock::now() - start).count() * 1e3;
        if (rep == 0 || ms < run.best_ms) {
          run.best_ms = ms;
        }
        run.result = std::move(result);
      }
      return run;
    };

    const EngineRun binary = run_engine(route::QueueMode::kBinaryHeap);
    const EngineRun bucket = run_engine(route::QueueMode::kBucket);

    Table et({"engine", "route (ms)", "heap pushes", "heap pops",
              "stale pops", "nodes expanded", "worst switches",
              "wirelength"});
    const auto counters_json = [](const route::RouteResult& r) {
      return "\"heap_pushes\":" +
             std::to_string(total_of(r, &route::ContextRouteSummary::
                                            heap_pushes)) +
             ",\"heap_pops\":" +
             std::to_string(
                 total_of(r, &route::ContextRouteSummary::heap_pops)) +
             ",\"stale_pops\":" +
             std::to_string(
                 total_of(r, &route::ContextRouteSummary::stale_pops)) +
             ",\"nodes_expanded\":" +
             std::to_string(
                 total_of(r, &route::ContextRouteSummary::nodes_expanded)) +
             ",\"worst_switches\":" + std::to_string(worst_switches(r));
    };
    for (const auto* e : {&binary, &bucket}) {
      const route::RouteResult& r = e->result;
      et.add_row(
          {e == &binary ? "binary heap" : "bucket queue",
           fmt_double(e->best_ms, 2),
           fmt_count(total_of(r, &route::ContextRouteSummary::heap_pushes)),
           fmt_count(total_of(r, &route::ContextRouteSummary::heap_pops)),
           fmt_count(total_of(r, &route::ContextRouteSummary::stale_pops)),
           fmt_count(
               total_of(r, &route::ContextRouteSummary::nodes_expanded)),
           std::to_string(worst_switches(r)),
           fmt_count(
               total_of(r, &route::ContextRouteSummary::wire_nodes_used))});
      bench::json_line(
          e == &binary ? "routing_engine_binary" : "routing_engine_bucket",
          4 * nets_per_context, e->best_ms,
          static_cast<double>(
              total_of(r, &route::ContextRouteSummary::wire_nodes_used)),
          counters_json(r));
    }
    std::cout << "\nmaze-expansion engine comparison (serial, congested "
                 "random workload, best of "
              << reps << "):\n";
    et.print(std::cout);
    const double speedup =
        bucket.best_ms > 0.0 ? binary.best_ms / bucket.best_ms : 0.0;
    std::cout << "maze-expansion speedup (binary / bucket): "
              << fmt_double(speedup, 2) << "x\n";
    bench::json_line("routing_engine_speedup", 4 * nets_per_context, 0.0,
                     speedup);

    if (!binary.result.success || !bucket.result.success) {
      std::cout << "FAIL: engine comparison workload did not converge\n";
      return 1;
    }
    const std::size_t ws_bin = worst_switches(binary.result);
    const std::size_t ws_buk = worst_switches(bucket.result);
    const std::size_t wl_bin =
        total_of(binary.result, &route::ContextRouteSummary::wire_nodes_used);
    const std::size_t wl_buk =
        total_of(bucket.result, &route::ContextRouteSummary::wire_nodes_used);
    if (ws_buk > ws_bin || (ws_buk == ws_bin && wl_buk > wl_bin)) {
      std::cout << "FAIL: bucket queue worse on QoR (worst switches "
                << ws_buk << " vs " << ws_bin << ", wirelength " << wl_buk
                << " vs " << wl_bin << ")\n";
      return 1;
    }
    if (!smoke && speedup < 1.5) {
      std::cout << "FAIL: bucket engine speedup " << fmt_double(speedup, 2)
                << "x below the 1.5x gate\n";
      return 1;
    }

    // Whole-flow QoR cross-check with timing-driven routing: an identical
    // compile with each engine — bucket must not end with a worse worst
    // context critical path (then wirelength).
    arch::FabricSpec flow_spec;
    flow_spec.width = 5;
    flow_spec.height = 5;
    flow_spec.channel_width = 8;
    flow_spec.double_length_tracks = 4;
    core::CompileOptions flow_opts;
    flow_opts.placer.timing_mode = true;
    flow_opts.router.timing_mode = true;
    core::CompileOptions bucket_opts = flow_opts;
    bucket_opts.router.queue_mode = route::QueueMode::kBucket;
    const auto d_bin = core::compile(
        workload::pipeline_workload(4, smoke ? 6 : 8), flow_spec, flow_opts);
    const auto d_buk = core::compile(
        workload::pipeline_workload(4, smoke ? 6 : 8), flow_spec,
        bucket_opts);
    const auto flow_qor = [](const core::CompiledDesign& d) {
      double worst = 0.0;
      std::size_t wirelength = 0;
      for (const auto& s : d.context_stats) {
        worst = std::max(worst, s.critical_path);
        wirelength += s.wire_nodes_used;
      }
      return std::make_pair(worst, wirelength);
    };
    const auto [cp_bin, fwl_bin] = flow_qor(d_bin);
    const auto [cp_buk, fwl_buk] = flow_qor(d_buk);
    std::cout << "timing-driven compile, worst critical path: binary "
              << fmt_double(cp_bin, 1) << " vs bucket "
              << fmt_double(cp_buk, 1) << " SE\n";
    bench::json_line("routing_engine_flow_binary", 4, 0.0, cp_bin,
                     "\"wirelength\":" + std::to_string(fwl_bin));
    bench::json_line("routing_engine_flow_bucket", 4, 0.0, cp_buk,
                     "\"wirelength\":" + std::to_string(fwl_buk));
    if (cp_buk > cp_bin || (cp_buk == cp_bin && fwl_buk > fwl_bin)) {
      std::cout << "FAIL: bucket queue worse on timing-driven flow QoR\n";
      return 1;
    }
  }

  // --- Cross-context negotiation: round-based vs net-interleaved -----------
  // Identical congested multi-context workload, identical options except
  // cross_context_mode.  The honest cost of a negotiation is the maze
  // traffic of EVERY round/wave it ran, not just the kept one, so both
  // sides sum NegotiationRoundStats over all entries.  The gate enforces
  // the interleaved scheduler's contract: same or fewer cross-context
  // conflicts, same or better worst critical switches, and — outside
  // --smoke — at least 1.3x fewer total maze expansions than the
  // round-based negotiator spends on the same problem.
  {
    using clock = std::chrono::steady_clock;
    arch::FabricSpec spec;
    spec.width = smoke ? 10 : 20;
    spec.height = spec.width;
    spec.channel_width = 8;
    spec.double_length_tracks = 4;
    const arch::RoutingGraph g(spec);
    const std::size_t nets_per_context = smoke ? 60 : 200;
    const auto nets = random_route_problem(g, 4, nets_per_context, 1234);

    struct NegotiationRun {
      double ms = 0.0;
      std::size_t expansions = 0;  // summed over every round/wave
      std::size_t pushes = 0;
      route::RouteResult result;
    };
    const auto run_mode = [&](route::CrossContextMode mode) {
      route::RouterOptions opts;
      opts.num_threads = 1;
      opts.cross_context_mode = mode;
      const route::Router router(g, opts);
      NegotiationRun run;
      const clock::time_point start = clock::now();
      run.result = router.route(nets);
      run.ms =
          std::chrono::duration<double>(clock::now() - start).count() * 1e3;
      for (const auto& s : run.result.negotiation_stats) {
        run.expansions += s.nodes_expanded;
        run.pushes += s.heap_pushes;
      }
      return run;
    };

    const NegotiationRun rounds = run_mode(route::CrossContextMode::kNegotiated);
    const NegotiationRun inter = run_mode(route::CrossContextMode::kInterleaved);

    Table nt({"scheduler", "route (ms)", "rounds/waves", "total expansions",
              "total pushes", "conflicts", "worst switches"});
    for (const auto* r : {&rounds, &inter}) {
      const bool is_inter = r == &inter;
      nt.add_row({is_inter ? "net-interleaved queue" : "whole-context rounds",
                  fmt_double(r->ms, 2),
                  std::to_string(r->result.negotiation_stats.size()),
                  fmt_count(r->expansions), fmt_count(r->pushes),
                  std::to_string(total_of(
                      r->result,
                      &route::ContextRouteSummary::cross_context_conflicts)),
                  std::to_string(worst_switches(r->result))});
      bench::json_line(
          is_inter ? "routing_negotiation_interleaved"
                   : "routing_negotiation_rounds",
          4 * nets_per_context, r->ms, static_cast<double>(r->expansions),
          "\"heap_pushes\":" + std::to_string(r->pushes) +
              ",\"entries\":" +
              std::to_string(r->result.negotiation_stats.size()) +
              ",\"conflicts\":" +
              std::to_string(total_of(
                  r->result,
                  &route::ContextRouteSummary::cross_context_conflicts)) +
              ",\"worst_switches\":" +
              std::to_string(worst_switches(r->result)));
    }
    // Per-wave trace of the interleaved run: how fast the dirty set drains.
    for (const auto& s : inter.result.negotiation_stats) {
      bench::json_line(
          "routing_negotiation_wave", s.round, s.seconds * 1e3,
          static_cast<double>(s.nodes_expanded),
          "\"rerouted\":" + std::to_string(s.nets_rerouted) +
              ",\"requeued\":" + std::to_string(s.nets_requeued) +
              ",\"conflicts\":" + std::to_string(s.conflicts) +
              ",\"kept\":" + (s.kept ? std::string("true")
                                     : std::string("false")));
    }
    std::cout << "\ncross-context negotiation comparison (serial, congested "
                 "random workload):\n";
    nt.print(std::cout);
    const double reduction =
        inter.expansions > 0
            ? static_cast<double>(rounds.expansions) /
                  static_cast<double>(inter.expansions)
            : 0.0;
    std::cout << "maze-expansion reduction (rounds / interleaved): "
              << fmt_double(reduction, 2) << "x\n";
    bench::json_line("routing_negotiation_reduction", 4 * nets_per_context,
                     0.0, reduction);

    if (!rounds.result.success || !inter.result.success) {
      std::cout << "FAIL: negotiation comparison workload did not converge\n";
      return 1;
    }
    const std::size_t cf_rounds = total_of(
        rounds.result, &route::ContextRouteSummary::cross_context_conflicts);
    const std::size_t cf_inter = total_of(
        inter.result, &route::ContextRouteSummary::cross_context_conflicts);
    const std::size_t ws_rounds = worst_switches(rounds.result);
    const std::size_t ws_inter = worst_switches(inter.result);
    if (cf_inter > cf_rounds) {
      std::cout << "FAIL: interleaved scheduler left more conflicts ("
                << cf_inter << " vs " << cf_rounds << ")\n";
      return 1;
    }
    if (ws_inter > ws_rounds) {
      std::cout << "FAIL: interleaved scheduler worse on worst critical "
                   "switches ("
                << ws_inter << " vs " << ws_rounds << ")\n";
      return 1;
    }
    if (!smoke && reduction < 1.3) {
      std::cout << "FAIL: interleaved expansion reduction "
                << fmt_double(reduction, 2) << "x below the 1.3x gate\n";
      return 1;
    }
  }

  // --- Speculative parallel drain: interleave_workers scaling --------------
  // Same congested workload, kInterleaved throughout; only the drain
  // worker count varies.  The contract is absolute: every worker count
  // must produce a bit-identical routed state (FNV fingerprint over all
  // routed paths, hard FAIL on any mismatch) with identical speculation
  // hit/abort counters for every parallel count — the parallelism may
  // only buy wall-clock time.  Outside --smoke, on hardware with at
  // least 4 cores, the 4-worker wave drain must be >= 1.4x faster than
  // the sequential single-worker drain.
  {
    using clock = std::chrono::steady_clock;
    arch::FabricSpec spec;
    spec.width = smoke ? 10 : 20;
    spec.height = spec.width;
    spec.channel_width = 8;
    spec.double_length_tracks = 4;
    const arch::RoutingGraph g(spec);
    const std::size_t nets_per_context = smoke ? 60 : 200;
    const auto nets = random_route_problem(g, 4, nets_per_context, 1234);

    struct ScaleRun {
      double drain_ms = 0.0;  // wave entries only; the baseline round is
                              // identical work for every worker count
      double total_ms = 0.0;
      std::uint64_t fingerprint = 0;
      std::size_t expansions = 0;
      std::size_t spec_hits = 0;
      std::size_t spec_aborts = 0;
      std::size_t rerouted = 0;
      std::size_t entries = 0;
    };
    const auto run_workers = [&](std::size_t w) {
      route::RouterOptions opts;
      opts.num_threads = 1;
      opts.cross_context_mode = route::CrossContextMode::kInterleaved;
      opts.interleave_workers = w;
      const route::Router router(g, opts);
      ScaleRun run;
      const clock::time_point start = clock::now();
      const route::RouteResult result = router.route(nets);
      run.total_ms =
          std::chrono::duration<double>(clock::now() - start).count() * 1e3;
      run.entries = result.negotiation_stats.size();
      for (std::size_t r = 0; r < result.negotiation_stats.size(); ++r) {
        const auto& s = result.negotiation_stats[r];
        run.expansions += s.nodes_expanded;
        run.spec_hits += s.spec_hits;
        run.spec_aborts += s.spec_aborts;
        run.rerouted += s.nets_rerouted;
        if (r > 0) {
          run.drain_ms += s.seconds * 1e3;
        }
      }
      // FNV-1a over every routed path: any divergence in what was
      // committed shows up here.
      std::uint64_t h = 1469598103934665603ull;
      const auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 1099511628211ull;
      };
      for (const auto& per_context : result.nets) {
        for (const auto& net : per_context) {
          mix(static_cast<std::uint64_t>(net.source));
          for (const auto& path : net.paths) {
            mix(static_cast<std::uint64_t>(path.sink));
            for (const auto e : path.edges) {
              mix(static_cast<std::uint64_t>(e));
            }
          }
        }
      }
      run.fingerprint = h;
      return run;
    };

    std::vector<std::size_t> worker_counts{1, 2, 4};
    if (!smoke) {
      worker_counts.push_back(8);
    }
    std::vector<ScaleRun> runs;
    Table st({"workers", "drain (ms)", "total (ms)", "spec hits",
              "spec aborts", "rerouted", "fingerprint"});
    for (const std::size_t w : worker_counts) {
      runs.push_back(run_workers(w));
      const ScaleRun& r = runs.back();
      char fp[20];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(r.fingerprint));
      st.add_row({std::to_string(w), fmt_double(r.drain_ms, 2),
                  fmt_double(r.total_ms, 2), fmt_count(r.spec_hits),
                  fmt_count(r.spec_aborts), fmt_count(r.rerouted), fp});
      bench::json_line(
          "routing_interleave_scale", w, r.drain_ms,
          static_cast<double>(r.expansions),
          "\"spec_hits\":" + std::to_string(r.spec_hits) +
              ",\"spec_aborts\":" + std::to_string(r.spec_aborts) +
              ",\"rerouted\":" + std::to_string(r.rerouted) +
              ",\"entries\":" + std::to_string(r.entries) +
              ",\"fingerprint\":\"" + fp + "\"");
    }
    std::cout << "\nspeculative drain scaling (kInterleaved, congested "
                 "random workload):\n";
    st.print(std::cout);

    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].fingerprint != runs[0].fingerprint) {
        std::cout << "FAIL: " << worker_counts[i]
                  << "-worker drain diverged from the sequential drain\n";
        return 1;
      }
      if (runs[i].expansions != runs[0].expansions ||
          runs[i].rerouted != runs[0].rerouted) {
        std::cout << "FAIL: " << worker_counts[i]
                  << "-worker drain changed the work counters\n";
        return 1;
      }
      if (i >= 2 && (runs[i].spec_hits != runs[1].spec_hits ||
                     runs[i].spec_aborts != runs[1].spec_aborts)) {
        std::cout << "FAIL: speculation counters depend on the worker "
                     "count\n";
        return 1;
      }
    }
    if (runs[0].spec_hits != 0 || runs[0].spec_aborts != 0) {
      std::cout << "FAIL: single-worker drain speculated\n";
      return 1;
    }

    const double speedup =
        runs[2].drain_ms > 0.0 ? runs[0].drain_ms / runs[2].drain_ms : 0.0;
    std::cout << "wave-drain speedup (1 worker / 4 workers): "
              << fmt_double(speedup, 2) << "x\n";
    bench::json_line("routing_interleave_speedup", 4 * nets_per_context, 0.0,
                     0.0, "\"speedup\":" + fmt_double(speedup, 2));
    // The speedup gate needs real cores; oversubscribed speculation still
    // proves determinism above but cannot buy wall-clock time.
    if (!smoke && std::thread::hardware_concurrency() >= 4 && speedup < 1.4) {
      std::cout << "FAIL: 4-worker drain speedup " << fmt_double(speedup, 2)
                << "x below the 1.4x gate\n";
      return 1;
    }
  }
  return 0;
}
