// E10 — end-to-end CAD flow on the workload suite: mapping, clustering,
// placement, routing, timing, functional verification (fabric simulator vs
// netlist reference), the per-design area comparison, per-stage pipeline
// timings, and serial-vs-parallel routing wall clock.
//
// Pass --smoke for a reduced CI-sized run.  Each compiled workload prints
// one BENCH_JSON measurement line (see bench_json.hpp).
#include <cstring>
#include <iostream>

#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mcfpga.hpp"
#include "core/report.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

using namespace mcfpga;

namespace {

netlist::MultiContextNetlist replicated(const netlist::Dfg& dfg) {
  netlist::MultiContextNetlist nl(4);
  for (std::size_t c = 0; c < 4; ++c) {
    nl.context(c) = dfg;
  }
  return nl;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::strcmp(argv[i], "--smoke") == 0;
  }
  std::cout << "=== E10: end-to-end flow on the workload suite ===\n\n";

  struct Workload {
    std::string name;
    netlist::MultiContextNetlist nl;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"adder4 x4ctx", replicated(
                                            workload::ripple_carry_adder(4))});
  if (!smoke) {
    workloads.push_back({"mult3 x4ctx",
                         replicated(workload::array_multiplier(3))});
  }
  workloads.push_back({"pipeline(4,8)", workload::pipeline_workload(4, 8)});
  if (!smoke) {
    netlist::MultiContextNetlist mixed(4);
    mixed.context(0) = workload::ripple_carry_adder(3);
    mixed.context(1) = workload::comparator(5);
    mixed.context(2) = workload::parity_tree(8);
    mixed.context(3) = workload::crc_step(6, 0b000011);
    workloads.push_back({"heterogeneous", std::move(mixed)});
  }
  if (!smoke) {
    workload::RandomMultiContextParams params;
    params.base.num_inputs = 8;
    params.base.num_nodes = 24;
    params.base.max_arity = 4;
    params.base.seed = 1010;
    params.share_fraction = 0.4;
    workloads.push_back(
        {"random(24n,40%sh)", workload::random_multi_context(params)});
  }

  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;

  // Sums one maze-expansion counter over a design's context stats (see
  // core::ContextStats — filled from the router's kept pass).
  const auto stat_total = [](const core::CompiledDesign& d,
                             std::size_t core::ContextStats::* member) {
    std::size_t total = 0;
    for (const auto& s : d.context_stats) {
      total += s.*member;
    }
    return total;
  };
  const auto engine_counters_json = [&](const core::CompiledDesign& d) {
    return "\"heap_pushes\":" +
           std::to_string(stat_total(d, &core::ContextStats::heap_pushes)) +
           ",\"heap_pops\":" +
           std::to_string(stat_total(d, &core::ContextStats::heap_pops)) +
           ",\"stale_pops\":" +
           std::to_string(stat_total(d, &core::ContextStats::stale_pops)) +
           ",\"nodes_expanded\":" +
           std::to_string(stat_total(d, &core::ContextStats::nodes_expanded));
  };

  Table t({"workload", "LUT ops", "merged", "LBs", "fabric", "crit path",
           "verify mismatches", "area ratio"});
  for (const auto& w : workloads) {
    const core::MCFPGA chip(w.nl, spec);
    const auto& d = chip.design();
    double worst = 0.0;
    for (const auto& s : d.context_stats) {
      worst = std::max(worst, s.critical_path);
    }
    double compile_ms = 0.0;
    for (const auto& st : d.stage_timings) {
      // Dotted names are overlapping sub-timings (e.g. place.restartN).
      if (st.name.find('.') == std::string::npos) {
        compile_ms += st.seconds * 1e3;
      }
    }
    bench::json_line("flow_" + w.name, d.netlist.total_lut_ops(), compile_ms,
                     worst, engine_counters_json(d));
    const std::size_t mismatches = chip.verify(16, 99);
    t.add_row({w.name, fmt_count(d.netlist.total_lut_ops()),
               fmt_count(d.sharing.merged_lut_ops()),
               fmt_count(d.clusters.size()),
               std::to_string(d.fabric.width) + "x" +
                   std::to_string(d.fabric.height),
               fmt_double(worst, 1), std::to_string(mismatches),
               fmt_percent(chip.area_report().ratio())});
  }
  t.print(std::cout);
  std::cout << "\nexpected: zero mismatches everywhere; area ratio well "
               "below 100% on every design.\n\n";

  // --- Maze-expansion engine through the whole flow ------------------------
  // Identical compiles except RouterOptions::queue_mode: the classic
  // binary heap vs the monotone bucket queue, timing-driven so the QoR
  // gate (a non-zero exit) checks what the flow actually optimizes —
  // bucket routing must never be worse on worst context critical path,
  // then total wirelength.  The BENCH_JSON lines carry the queue-traffic
  // counters so the two engines' work is comparable offline.
  {
    const auto wirelength = [&](const core::CompiledDesign& d) {
      return stat_total(d, &core::ContextStats::wire_nodes_used);
    };
    const auto worst_path = [](const core::CompiledDesign& d) {
      double worst = 0.0;
      for (const auto& s : d.context_stats) {
        worst = std::max(worst, s.critical_path);
      }
      return worst;
    };

    Table et({"engine", "crit path", "wirelength", "heap pushes",
              "stale pops", "nodes expanded"});
    core::CompileOptions opts;
    opts.placer.timing_mode = true;
    opts.router.timing_mode = true;
    const auto nl = workload::pipeline_workload(4, smoke ? 6 : 8);
    bool gate_ok = true;
    double binary_path = 0.0;
    std::size_t binary_wirelength = 0;
    for (const route::QueueMode mode :
         {route::QueueMode::kBinaryHeap, route::QueueMode::kBucket}) {
      const bool bucket = mode == route::QueueMode::kBucket;
      opts.router.queue_mode = mode;
      const auto d = core::compile(nl, spec, opts);
      const double path = worst_path(d);
      const std::size_t wl = wirelength(d);
      if (bucket) {
        gate_ok = path < binary_path ||
                  (path == binary_path && wl <= binary_wirelength);
      } else {
        binary_path = path;
        binary_wirelength = wl;
      }
      et.add_row(
          {bucket ? "bucket queue" : "binary heap", fmt_double(path, 1),
           fmt_count(wl),
           fmt_count(stat_total(d, &core::ContextStats::heap_pushes)),
           fmt_count(stat_total(d, &core::ContextStats::stale_pops)),
           fmt_count(stat_total(d, &core::ContextStats::nodes_expanded))});
      bench::json_line(bucket ? "flow_engine_bucket" : "flow_engine_binary",
                       nl.total_lut_ops(), 0.0, path,
                       "\"wirelength\":" + std::to_string(wl) + "," +
                           engine_counters_json(d));
    }
    std::cout << "maze-expansion engine through the timing-driven flow:\n";
    et.print(std::cout);
    if (!gate_ok) {
      std::cout << "FAIL: bucket-queue flow worse on QoR (critical path, "
                   "then wirelength)\n";
      return 1;
    }
    std::cout << "bucket-queue flow QoR never worse than the binary "
                 "heap's.\n\n";
  }

  // --- Per-stage pipeline timings and routing parallelism ------------------
  // Every workload here has >= 4 contexts; the router fans the contexts out
  // over a worker pool with bit-identical-to-serial results, so the "route"
  // stage is the one expected to gain wall clock on multi-core hosts.
  struct TimedWorkload {
    std::string name;
    netlist::MultiContextNetlist nl;
    arch::FabricSpec spec;
  };
  std::vector<TimedWorkload> timed;
  if (!smoke) {
    arch::FabricSpec big = spec;
    big.width = 6;
    big.height = 6;
    timed.push_back({"pipeline(4,12)", workload::pipeline_workload(4, 12),
                     big});
    workload::RandomMultiContextParams params;
    params.base.num_inputs = 10;
    params.base.num_nodes = 40;
    params.base.seed = 2024;
    params.num_contexts = 8;
    params.share_fraction = 0.3;
    arch::FabricSpec eight = big;
    eight.num_contexts = 8;
    eight.logic_block.num_contexts = 8;
    timed.push_back({"random(40n,8ctx)",
                     workload::random_multi_context(params), eight});
  }

  for (const auto& w : timed) {
    core::CompileOptions serial;
    serial.router.num_threads = 1;
    core::CompileOptions parallel;
    parallel.router.num_threads = 0;  // one worker per hardware thread

    const auto serial_design = core::compile(w.nl, w.spec, serial);
    const auto parallel_design = core::compile(w.nl, w.spec, parallel);

    std::cout << "per-stage wall clock, " << w.name << " ("
              << w.nl.num_contexts() << " contexts):\n";
    Table st({"stage", "serial router (ms)", "parallel router (ms)"});
    double serial_route = 0.0;
    double parallel_route = 0.0;
    for (std::size_t i = 0; i < serial_design.stage_timings.size(); ++i) {
      const auto& s = serial_design.stage_timings[i];
      const auto& p = parallel_design.stage_timings[i];
      st.add_row({s.name, fmt_double(s.seconds * 1e3, 2),
                  fmt_double(p.seconds * 1e3, 2)});
      if (s.name == "route") {
        serial_route = s.seconds;
        parallel_route = p.seconds;
      }
    }
    st.print(std::cout);
    std::cout << "routing speedup (serial / parallel): "
              << fmt_double(serial_route / parallel_route, 2) << "x\n\n";
    bench::json_line("route_serial_" + w.name, w.nl.num_contexts(),
                     serial_route * 1e3, 0.0);
    bench::json_line("route_parallel_" + w.name, w.nl.num_contexts(),
                     parallel_route * 1e3, 0.0);
  }

  // --- Timing-driven vs wirelength-driven compile --------------------------
  // Same workloads, same fabric; only timing_mode changes.  The gate (a
  // non-zero exit) enforces the headline claim: criticality-driven place &
  // route beats pure wirelength on at least one multi-context workload,
  // and timing-driven results stay bit-identical across router worker
  // counts.
  {
    struct TimingWorkload {
      std::string name;
      netlist::MultiContextNetlist nl;
    };
    std::vector<TimingWorkload> tw;
    tw.push_back({"pipeline(4,8)", workload::pipeline_workload(4, 8)});
    {
      netlist::MultiContextNetlist mixed(4);
      mixed.context(0) = workload::ripple_carry_adder(3);
      mixed.context(1) = workload::comparator(5);
      mixed.context(2) = workload::parity_tree(8);
      mixed.context(3) = workload::crc_step(6, 0b000011);
      tw.push_back({"heterogeneous", std::move(mixed)});
    }
    if (!smoke) {
      tw.push_back({"pipeline(4,12)", workload::pipeline_workload(4, 12)});
    }

    const auto worst_path = [](const core::CompiledDesign& d) {
      double worst = 0.0;
      for (const auto& s : d.context_stats) {
        worst = std::max(worst, s.critical_path);
      }
      return worst;
    };

    Table tt({"workload", "crit path (wirelength)", "crit path (timing)",
              "improvement"});
    std::size_t improved = 0;
    bool deterministic = true;
    for (const auto& w : tw) {
      core::CompileOptions off;
      core::CompileOptions on;
      on.placer.timing_mode = true;
      on.router.timing_mode = true;
      const auto d_off = core::compile(w.nl, spec, off);
      const auto d_on = core::compile(w.nl, spec, on);
      const double p_off = worst_path(d_off);
      const double p_on = worst_path(d_on);
      improved += p_on < p_off;
      tt.add_row({w.name, fmt_double(p_off, 1), fmt_double(p_on, 1),
                  fmt_percent(p_off > 0.0 ? (p_off - p_on) / p_off : 0.0)});
      bench::json_line("flow_timing_off_" + w.name, w.nl.num_contexts(), 0.0,
                       p_off);
      bench::json_line("flow_timing_on_" + w.name, w.nl.num_contexts(), 0.0,
                       p_on);

      // Determinism: the criticality refresh lives inside each context's
      // own negotiation, so worker count must not change the answer.
      // d_on already routed with the parallel default (num_threads = 0),
      // so only the serial compile is new work.
      core::CompileOptions on_serial = on;
      on_serial.router.num_threads = 1;
      deterministic &=
          worst_path(core::compile(w.nl, spec, on_serial)) == p_on;
    }
    std::cout << "\ntiming-driven place & route vs wirelength-driven "
                 "(worst context critical path, SE units):\n";
    tt.print(std::cout);
    if (!deterministic) {
      std::cout << "FAIL: timing-driven compile varies with router worker "
                   "count\n";
      return 1;
    }
    if (improved == 0) {
      std::cout << "FAIL: timing_mode never lowered the critical path\n";
      return 1;
    }
    std::cout << "timing-driven mode lowered the critical path on "
              << improved << "/" << tw.size() << " workloads.\n\n";
  }

  // --- Timing-closure loop -------------------------------------------------
  // place -> route -> STA -> re-place (CompileOptions::closure_iterations)
  // with a VPR-style criticality-exponent ramp, vs the one-shot flow on
  // identical options.  One BENCH_JSON line per closure iteration records
  // the iterations-vs-slack/wirelength trajectory; the gate (a non-zero
  // exit) enforces that closure never finishes with worse worst slack
  // than one-shot.
  {
    struct ClosureWorkload {
      std::string name;
      netlist::MultiContextNetlist nl;
    };
    std::vector<ClosureWorkload> cw;
    cw.push_back({"pipeline(4,8)", workload::pipeline_workload(4, 8)});
    if (!smoke) {
      netlist::MultiContextNetlist mixed(4);
      mixed.context(0) = workload::ripple_carry_adder(3);
      mixed.context(1) = workload::comparator(5);
      mixed.context(2) = workload::parity_tree(8);
      mixed.context(3) = workload::crc_step(6, 0b000011);
      cw.push_back({"heterogeneous", std::move(mixed)});
    }

    const auto worst_path = [](const core::CompiledDesign& d) {
      double worst = 0.0;
      for (const auto& s : d.context_stats) {
        worst = std::max(worst, s.critical_path);
      }
      return worst;
    };

    Table ct({"workload", "crit path (one-shot)", "crit path (closure)",
              "iters run", "improvement"});
    bool gate_ok = true;
    for (const auto& w : cw) {
      core::CompileOptions one_shot;
      one_shot.placer.timing_mode = true;
      one_shot.router.timing_mode = true;
      one_shot.router.criticality_exponent_schedule = {1.0, 0.5, 4.0};
      core::CompileOptions closed = one_shot;
      closed.closure_iterations = smoke ? 3 : 4;

      const auto d_one = core::compile(w.nl, spec, one_shot);
      const auto d_closed = core::compile(w.nl, spec, closed);
      const double p_one = worst_path(d_one);
      const double p_closed = worst_path(d_closed);
      gate_ok &= p_closed <= p_one + 1e-9;

      for (const auto& s : d_closed.closure_stats) {
        bench::json_line(
            "closure_" + w.name + "_iter" + std::to_string(s.iteration),
            s.iteration, s.seconds * 1e3, s.worst_slack,
            "\"critical_path\":" + std::to_string(s.critical_path) +
                ",\"wirelength\":" + std::to_string(s.wirelength));
      }
      ct.add_row({w.name, fmt_double(p_one, 1), fmt_double(p_closed, 1),
                  std::to_string(d_closed.closure_stats.size()),
                  fmt_percent(p_one > 0.0 ? (p_one - p_closed) / p_one
                                          : 0.0)});
    }
    std::cout << "\ntiming-closure loop (place -> route -> STA -> re-place) "
                 "vs one-shot:\n";
    ct.print(std::cout);
    if (!gate_ok) {
      std::cout << "FAIL: closure finished with a worse critical path than "
                   "one-shot\n";
      return 1;
    }
    std::cout << "closure never finished worse than one-shot on "
              << cw.size() << " workload(s).\n\n";
  }

  // --- Cross-context negotiated routing ------------------------------------
  // Independent per-context routing vs the criticality-ordered negotiated
  // scheduler (RouterOptions::cross_context_mode) on identical options.
  // One BENCH_JSON line per negotiation round records the
  // conflicts/slack/wall-time trajectory; the gate (a non-zero exit)
  // enforces that negotiated routing is never worse than independent on
  // worst slack, and that results are identical across worker counts.
  {
    struct XctxWorkload {
      std::string name;
      netlist::MultiContextNetlist nl;
    };
    std::vector<XctxWorkload> xw;
    xw.push_back({"pipeline(4,8)", workload::pipeline_workload(4, 8)});
    if (!smoke) {
      netlist::MultiContextNetlist mixed(4);
      mixed.context(0) = workload::ripple_carry_adder(3);
      mixed.context(1) = workload::comparator(5);
      mixed.context(2) = workload::parity_tree(8);
      mixed.context(3) = workload::crc_step(6, 0b000011);
      xw.push_back({"heterogeneous", std::move(mixed)});
    }

    const auto worst_path = [](const core::CompiledDesign& d) {
      double worst = 0.0;
      for (const auto& s : d.context_stats) {
        worst = std::max(worst, s.critical_path);
      }
      return worst;
    };
    const auto conflicts = [](const core::CompiledDesign& d) {
      std::size_t total = 0;
      for (const auto& s : d.context_stats) {
        total += s.cross_context_conflicts;
      }
      return total;
    };

    Table xt({"workload", "crit path (indep)", "crit path (negotiated)",
              "conflicts (indep)", "conflicts (negotiated)", "rounds"});
    bool gate_ok = true;
    bool deterministic = true;
    for (const auto& w : xw) {
      core::CompileOptions indep;
      indep.placer.timing_mode = true;
      indep.router.timing_mode = true;
      core::CompileOptions nego = indep;
      nego.router.cross_context_mode = route::CrossContextMode::kNegotiated;

      const auto d_indep = core::compile(w.nl, spec, indep);
      const auto d_nego = core::compile(w.nl, spec, nego);
      const double p_indep = worst_path(d_indep);
      const double p_nego = worst_path(d_nego);
      gate_ok &= p_nego <= p_indep + 1e-9;

      for (const auto& r : d_nego.routing.negotiation_stats) {
        bench::json_line(
            "xctx_" + w.name + "_round" + std::to_string(r.round), r.round,
            r.seconds * 1e3, r.worst_critical_path,
            "\"conflicts\":" + std::to_string(r.conflicts) +
                ",\"worst_switches\":" +
                std::to_string(r.worst_critical_switches) +
                ",\"kept\":" + (r.kept ? "true" : "false"));
      }
      xt.add_row({w.name, fmt_double(p_indep, 1), fmt_double(p_nego, 1),
                  fmt_count(conflicts(d_indep)),
                  fmt_count(conflicts(d_nego)),
                  std::to_string(d_nego.routing.negotiation_rounds)});

      // Determinism: pressure merges in context order at round barriers,
      // so worker count must not change the negotiated answer.
      core::CompileOptions nego_serial = nego;
      nego_serial.router.num_threads = 1;
      const auto d_serial = core::compile(w.nl, spec, nego_serial);
      deterministic &= worst_path(d_serial) == p_nego &&
                       conflicts(d_serial) == conflicts(d_nego);
    }
    std::cout << "\ncross-context negotiated routing vs independent "
                 "(worst context critical path, shared wire nodes):\n";
    xt.print(std::cout);
    if (!gate_ok) {
      std::cout << "FAIL: negotiated routing finished with worse worst "
                   "slack than independent\n";
      return 1;
    }
    if (!deterministic) {
      std::cout << "FAIL: negotiated routing varies with router worker "
                   "count\n";
      return 1;
    }
    std::cout << "negotiated routing never finished worse than "
                 "independent on "
              << xw.size() << " workload(s).\n\n";
  }

  if (!smoke) {
    // Detailed report for one design.
    const core::MCFPGA chip(workload::pipeline_workload(4, 6), spec);
    core::print_design_report(std::cout, chip.design());
  }
  return 0;
}
