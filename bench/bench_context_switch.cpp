// E9 — context-switch behaviour (Secs. 1, 3): single-cycle switching with
// globally broadcast ID bits and local RCM decode.  Measures (a) decoder
// depth (the local decode latency in SE units) as the fabric and context
// count scale, and (b) configuration-bit toggle activity per switch under
// round-robin scheduling.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/stats.hpp"
#include "core/mcfpga.hpp"
#include "rcm/context_decoder.hpp"
#include "sim/context_scheduler.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== E9: context switching ===\n\n";

  // Decode latency: worst decoder depth is bounded by the ID-bit count,
  // independent of fabric size — that is why context-switch latency stays
  // flat as the array grows.
  Table t({"rows (fabric size proxy)", "contexts", "max decoder depth (SE)",
           "avg toggled bits/switch", "toggle rate"});
  for (const std::size_t rows : {1000u, 10000u, 50000u}) {
    for (const std::size_t n : {4u, 8u}) {
      workload::BitstreamGenParams params;
      params.rows = rows;
      params.num_contexts = n;
      params.change_rate = 0.05;
      params.seed = rows + n;
      const auto bs = workload::generate_bitstream(params);
      const rcm::ContextDecoder dec(bs);
      const sim::ContextScheduler sched(n);
      const auto stats = sched.run(bs, 4 * n + 1);
      t.add_row({fmt_count(rows), std::to_string(n),
                 std::to_string(dec.max_depth()),
                 fmt_double(stats.avg_bits_per_switch(), 1),
                 fmt_percent(stats.avg_bits_per_switch() /
                                 static_cast<double>(rows),
                             2)});
    }
  }
  t.print(std::cout);
  std::cout << "expected shape: decoder depth stays at <= log2(contexts)\n"
               "regardless of fabric size (local decode of global ID bits);\n"
               "toggled bits track the ~5% change rate.\n\n";

  // On a real compiled design: rotate contexts and count activity.
  {
    arch::FabricSpec spec;
    spec.width = 4;
    spec.height = 4;
    const core::MCFPGA chip(workload::pipeline_workload(4, 6), spec);
    const auto& bs = chip.design().full_bitstream;
    const sim::ContextScheduler sched(4);
    const auto stats = sched.run(bs, 41);  // 10 full rotations
    Table d({"metric", "value"});
    d.add_row({"bitstream rows", fmt_count(bs.num_rows())});
    d.add_row({"context switches", fmt_count(stats.context_switches)});
    d.add_row({"bits toggled (total)", fmt_count(stats.bits_toggled)});
    d.add_row({"avg bits/switch", fmt_double(stats.avg_bits_per_switch(), 1)});
    d.add_row({"toggle rate",
               fmt_percent(stats.avg_bits_per_switch() /
                               static_cast<double>(bs.num_rows()),
                           2)});
    std::cout << "compiled pipeline workload, round-robin rotation:\n";
    d.print(std::cout);
  }
  return 0;
}
