// E4 — Fig. 9: the synthesized SE network for (C3,C2,C1,C0) = (1,0,0,0),
// plus SE-cost distributions for growing context counts and the effect of
// inter-row sharing (Table 1's G2 == G4 redundancy).
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "rcm/context_decoder.hpp"
#include "rcm/decoder_synth.hpp"
#include "workload/bitstream_gen.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== E4: decoder synthesis (Fig. 9) ===\n\n";

  // The paper's worked example.
  const auto p = config::ContextPattern::from_string("1000");
  const auto net = rcm::synthesize_decoder(p);
  std::cout << "pattern (C3,C2,C1,C0) = (1,0,0,0):\n" << net.describe();
  Table v({"context", "S1", "S0", "generated G", "expected"});
  for (std::size_t c = 0; c < 4; ++c) {
    v.add_row({std::to_string(c),
               config::id_bit_value(c, 1) ? "1" : "0",
               config::id_bit_value(c, 0) ? "1" : "0",
               net.eval(c) ? "1" : "0", p.value_in(c) ? "1" : "0"});
  }
  v.print(std::cout);
  std::cout << "paper: four SEs are sufficient to form the multiplexer -> "
            << net.se_count() << " SEs synthesized\n\n";

  // Average decoder cost vs context count at 5% change rate.
  Table t({"contexts", "ID bits", "avg SE/row", "max SE/row",
           "max depth (SE stages)"});
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    workload::BitstreamGenParams params;
    params.rows = 8000;
    params.num_contexts = n;
    params.change_rate = 0.05;
    params.seed = 99;
    const auto bs = workload::generate_bitstream(params);
    std::size_t total = 0;
    std::size_t worst = 0;
    std::size_t depth = 0;
    for (const auto& row : bs.rows()) {
      const auto d = rcm::synthesize_decoder(row.pattern);
      total += d.se_count();
      worst = std::max(worst, d.se_count());
      depth = std::max(depth, d.depth());
    }
    t.add_row({std::to_string(n), std::to_string(config::num_id_bits(n)),
               fmt_double(static_cast<double>(total) / 8000.0, 3),
               std::to_string(worst), std::to_string(depth)});
  }
  std::cout << "decoder cost vs context count (5% change rate):\n";
  t.print(std::cout);
  std::cout << "\n";

  // Sharing ablation: per-block decoders with and without pattern sharing.
  Table s({"block rows", "networks (no share)", "networks (share)",
           "SEs (no share)", "SEs (share)", "taps"});
  for (const std::size_t rows : {64u, 256u, 1024u}) {
    workload::BitstreamGenParams params;
    params.rows = rows;
    params.change_rate = 0.05;
    params.seed = rows;
    const auto bs = workload::generate_bitstream(params);
    const rcm::ContextDecoder flat(bs, {.share_identical_patterns = false});
    const rcm::ContextDecoder shared(bs, {.share_identical_patterns = true});
    s.add_row({std::to_string(rows), fmt_count(flat.num_networks()),
               fmt_count(shared.num_networks()),
               fmt_count(flat.total_se_count()),
               fmt_count(shared.total_se_count()),
               fmt_count(shared.shared_row_taps())});
  }
  std::cout << "inter-row redundancy (G2 == G4 sharing) ablation:\n";
  s.print(std::cout);
  return 0;
}
