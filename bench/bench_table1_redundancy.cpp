// E1/E2 — Regenerates paper Table 1 (redundancy and regularity in
// configuration data) and Table 2 (context-ID encoding), then measures the
// same statistics on realistic synthetic bitstreams and on a fully
// compiled design's bitstream.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/context_id.hpp"
#include "config/stats.hpp"
#include "core/mcfpga.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== E1/E2: Table 1 & Table 2 reproduction ===\n\n";

  // --- Table 2: context-ID encoding ---------------------------------------
  {
    Table t({"", "Context 0", "Context 1", "Context 2", "Context 3"});
    for (std::size_t bit = 0; bit < 2; ++bit) {
      std::vector<std::string> row = {"S" + std::to_string(bit)};
      for (std::size_t c = 0; c < 4; ++c) {
        row.push_back(config::id_bit_value(c, bit) ? "1" : "0");
      }
      t.add_row(row);
    }
    std::cout << "Table 2 — contexts vs context-ID bits:\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // --- Table 1: the paper's example rows ----------------------------------
  {
    const auto bs = config::paper_table1_example();
    Table t({"switch", "C3", "C2", "C1", "C0", "classification"});
    for (const auto& row : bs.rows()) {
      const auto info = config::classify(row.pattern);
      t.add_row({row.name, row.pattern.value_in(3) ? "1" : "0",
                 row.pattern.value_in(2) ? "1" : "0",
                 row.pattern.value_in(1) ? "1" : "0",
                 row.pattern.value_in(0) ? "1" : "0", info.describe()});
    }
    std::cout << "Table 1 — example configuration data (G1..G9 subset):\n";
    t.print(std::cout);
    config::print_stats(std::cout, config::compute_stats(bs),
                        "Table 1 statistics");
    std::cout << "\n";
  }

  // --- The same statistics at the paper's assumed operating point ----------
  for (const double rate : {0.03, 0.05}) {
    workload::BitstreamGenParams params;
    params.rows = 50000;
    params.num_contexts = 4;
    params.change_rate = rate;
    params.seed = 2005;
    const auto bs = workload::generate_bitstream(params);
    config::print_stats(
        std::cout, config::compute_stats(bs),
        "synthetic fabric bitstream, change rate " + fmt_percent(rate, 0) +
            " (paper cites <3% measured, assumes 5%)");
    std::cout << "\n";
  }

  // --- Measured on a real compiled design ----------------------------------
  {
    arch::FabricSpec spec;
    spec.width = 4;
    spec.height = 4;
    const core::MCFPGA chip(workload::pipeline_workload(4, 6), spec);
    config::print_stats(std::cout, chip.bitstream_stats(),
                        "compiled 4-context pipeline workload (full fabric)");
  }
  return 0;
}
