// E8 — Sec. 5, FePG evaluation (Fig. 15): switch elements realized as
// ferroelectric functional pass-gates at 50% of the CMOS SE area, with
// non-volatile configuration storage.  Paper result: proposed ~= 37% of
// the conventional CMOS MC-FPGA; static configuration power vanishes.
#include <iostream>

#include "area/area_model.hpp"
#include "area/power_model.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/stats.hpp"
#include "workload/bitstream_gen.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== E8: Sec. 5 area & power, FePG evaluation (Fig. 15) "
               "===\n";
  std::cout << "paper: FePG SE = 50% of CMOS SE; proposed area = 37% of "
               "conventional\n\n";

  // Fig. 15(c): the FePG truth table is the SE truth table.
  {
    Table t({"d1", "d0", "G"});
    t.add_row({"0", "0", "0"});
    t.add_row({"0", "1", "1"});
    t.add_row({"1", "-", "U (variable input)"});
    std::cout << "Fig. 15(c) — FePG truth table (G = d1 ? U : d0):\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  arch::FabricSpec spec;
  spec.width = 8;
  spec.height = 8;
  workload::BitstreamGenParams params;
  params.rows = spec.num_cells() * 300;  // ~switch+connection block rows/cell
  params.change_rate = 0.05;
  params.seed = 7;
  const auto blocks = workload::generate_blocks(params, 100);

  const area::AreaModel model;
  area::ComparisonOptions cmos;
  area::ComparisonOptions fepg;
  fepg.rcm_library = area::DeviceLibrary::fepg();

  const auto cmos_report = model.compare_fabric(spec, blocks, cmos);
  const auto fepg_report = model.compare_fabric(spec, blocks, fepg);
  fepg_report.print(std::cout,
                    "headline (4 contexts, 5% change rate, FePG SEs)");
  std::cout << "\n";

  Table t({"evaluation", "area ratio", "paper"});
  t.add_row({"CMOS SEs", fmt_percent(cmos_report.ratio()), "45%"});
  t.add_row({"FePG SEs", fmt_percent(fepg_report.ratio()), "37%"});
  std::cout << "headline comparison:\n";
  t.print(std::cout);
  std::cout << "\n";

  // Static power: non-volatile FePG configuration memory does not leak.
  {
    const auto bs = workload::generate_bitstream(params);
    const auto stats = config::compute_stats(bs);
    // Configuration bits: conventional stores n bits per switch; the
    // proposed FePG fabric stores 2 bits per SE.
    const std::size_t conv_bits = bs.num_rows() * 4;
    std::size_t proposed_bits = 0;
    // 2 memory bits per SE; count SEs via the measured report.
    proposed_bits = fepg_report.decoder_ses * 2;

    const auto conv_power =
        area::estimate_power(conv_bits, area::DeviceLibrary::cmos(), stats);
    const auto prop_power =
        area::estimate_power(proposed_bits, area::DeviceLibrary::fepg(),
                             stats);
    Table p({"fabric", "config bits", "static power (leak units)",
             "avg switch energy"});
    p.add_row({"conventional CMOS", fmt_count(conv_bits),
               fmt_double(conv_power.static_power, 0),
               fmt_double(conv_power.switch_energy, 1)});
    p.add_row({"proposed FePG", fmt_count(proposed_bits),
               fmt_double(prop_power.static_power, 0),
               fmt_double(prop_power.switch_energy, 1)});
    std::cout << "configuration-memory power (routing fabric):\n";
    p.print(std::cout);
    std::cout << "expected shape: FePG static power is zero (non-volatile\n"
                 "storage); dynamic switch energy is unchanged (same bit\n"
                 "toggle activity).\n";
  }
  return 0;
}
