// E11 — google-benchmark microbenchmarks of the hot kernels: decoder
// synthesis, decoder evaluation, pattern classification, bitstream
// statistics, and fabric simulation.
#include <benchmark/benchmark.h>

#include "config/stats.hpp"
#include "core/mcfpga.hpp"
#include "rcm/context_decoder.hpp"
#include "rcm/decoder_synth.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

namespace {

void BM_ClassifyPattern(benchmark::State& state) {
  const auto patterns = config::all_patterns(4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::classify(patterns[i & 15]));
    ++i;
  }
}
BENCHMARK(BM_ClassifyPattern);

void BM_DecoderSynthesis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  workload::BitstreamGenParams params;
  params.rows = 256;
  params.num_contexts = n;
  params.change_rate = 0.05;
  const auto bs = workload::generate_bitstream(params);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rcm::synthesize_decoder(bs.row(i & 255).pattern));
    ++i;
  }
}
BENCHMARK(BM_DecoderSynthesis)->Arg(4)->Arg(8)->Arg(16);

void BM_DecoderCostOnly(benchmark::State& state) {
  workload::BitstreamGenParams params;
  params.rows = 256;
  params.num_contexts = 8;
  params.change_rate = 0.05;
  const auto bs = workload::generate_bitstream(params);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcm::decoder_se_cost(bs.row(i & 255).pattern));
    ++i;
  }
}
BENCHMARK(BM_DecoderCostOnly);

void BM_DecodePlane(benchmark::State& state) {
  workload::BitstreamGenParams params;
  params.rows = static_cast<std::size_t>(state.range(0));
  params.change_rate = 0.05;
  const auto bs = workload::generate_bitstream(params);
  const rcm::ContextDecoder dec(bs);
  std::size_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decode_plane(c & 3));
    ++c;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.rows));
}
BENCHMARK(BM_DecodePlane)->Arg(1000)->Arg(10000);

void BM_BitstreamStats(benchmark::State& state) {
  workload::BitstreamGenParams params;
  params.rows = static_cast<std::size_t>(state.range(0));
  const auto bs = workload::generate_bitstream(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::compute_stats(bs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.rows));
}
BENCHMARK(BM_BitstreamStats)->Arg(10000)->Arg(100000);

void BM_FabricSimEval(benchmark::State& state) {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  static const core::MCFPGA* chip = [] {
    auto* c = new core::MCFPGA(workload::pipeline_workload(4, 6),
                               arch::FabricSpec{});
    return c;
  }();
  netlist::ValueMap inputs;
  for (int i = 0; i < 6; ++i) {
    inputs["a" + std::to_string(i)] = i % 2 == 0;
    inputs["b" + std::to_string(i)] = i % 3 == 0;
  }
  std::size_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip->run(c & 3, inputs));
    ++c;
  }
}
BENCHMARK(BM_FabricSimEval);

void BM_FullCompile(benchmark::State& state) {
  const auto nl = workload::pipeline_workload(4, 5);
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  for (auto _ : state) {
    const core::MCFPGA chip(nl, spec);
    benchmark::DoNotOptimize(chip.design().clusters.size());
  }
}
BENCHMARK(BM_FullCompile)->Unit(benchmark::kMillisecond);

}  // namespace
