// Placer move-throughput bench: full-recompute vs incremental delta
// evaluation vs multi-seed parallel restarts, over growing cluster/net
// counts.  Also a correctness gate: for identical seeds the two
// evaluation modes must finish at identical cost/positions, and a restart
// set must reproduce itself exactly when re-run.
//
// Pass --smoke for a tiny instance (CI exercises the code paths without
// burning bench time).  Every measurement also prints one BENCH_JSON line.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "arch/routing_graph.hpp"
#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "place/placer.hpp"

using namespace mcfpga;

namespace {

place::Terminal random_terminal(Rng& rng, const place::PlacementProblem& p) {
  const std::size_t total = p.num_clusters + p.num_io_terminals;
  const std::size_t pick = static_cast<std::size_t>(rng.next_below(total));
  return pick < p.num_clusters
             ? place::Terminal::cluster(pick)
             : place::Terminal::io(pick - p.num_clusters);
}

place::PlacementProblem make_problem(std::size_t clusters, std::size_t ios,
                                     std::size_t nets, std::uint64_t seed) {
  Rng rng(seed);
  place::PlacementProblem prob;
  prob.num_clusters = clusters;
  prob.num_io_terminals = ios;
  for (std::size_t n = 0; n < nets; ++n) {
    place::PlacementNet net;
    net.driver = random_terminal(rng, prob);
    const std::size_t sinks = 1 + static_cast<std::size_t>(rng.next_below(4));
    for (std::size_t s = 0; s < sinks; ++s) {
      net.sinks.push_back(random_terminal(rng, prob));
    }
    net.weight = 1 + static_cast<std::size_t>(rng.next_below(3));
    prob.nets.push_back(std::move(net));
  }
  return prob;
}

arch::FabricSpec spec_n(std::size_t n) {
  arch::FabricSpec spec;
  spec.width = n;
  spec.height = n;
  spec.channel_width = 4;
  spec.double_length_tracks = 2;
  return spec;
}

struct Run {
  double wall_ms = 0.0;
  place::Placement placement;
};

Run timed_place(const place::PlacementProblem& prob,
                const arch::RoutingGraph& graph,
                const place::PlacerOptions& opts) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  Run run;
  run.placement = place::place(prob, graph, opts);
  const std::chrono::duration<double, std::milli> elapsed =
      clock::now() - start;
  run.wall_ms = elapsed.count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::strcmp(argv[i], "--smoke") == 0;
  }
  std::cout << "=== placer move throughput: full recompute vs incremental "
               "delta vs parallel restarts ===\n\n";

  struct Shape {
    std::size_t grid, clusters, ios;
  };
  std::vector<Shape> shapes;
  if (smoke) {
    shapes.push_back({5, 16, 8});
  } else {
    shapes.push_back({9, 64, 24});
    shapes.push_back({12, 128, 36});
    shapes.push_back({17, 256, 48});
  }

  int rc = 0;
  Table t({"clusters", "nets", "mode", "wall (ms)", "moves/sec", "cost",
           "speedup"});
  for (const Shape& s : shapes) {
    const std::size_t nets = 2 * s.clusters;
    const place::PlacementProblem prob =
        make_problem(s.clusters, s.ios, nets, 1234 + s.clusters);
    const arch::RoutingGraph graph(spec_n(s.grid));

    place::PlacerOptions opts;
    opts.seed = 42;
    opts.sweeps = smoke ? 8 : 12;
    const std::size_t moves =
        opts.sweeps * 16 * (prob.num_clusters + prob.num_io_terminals + 1);

    opts.incremental = false;
    const Run full = timed_place(prob, graph, opts);
    opts.incremental = true;
    const Run inc = timed_place(prob, graph, opts);
    opts.num_restarts = 4;
    const Run restarts = timed_place(prob, graph, opts);
    const Run restarts_again = timed_place(prob, graph, opts);
    opts.num_restarts = 1;

    // Correctness gates: identical seeds -> identical results in this run.
    if (full.placement.cost != inc.placement.cost ||
        full.placement.cluster_pos != inc.placement.cluster_pos ||
        full.placement.io_pads != inc.placement.io_pads) {
      std::cout << "FAIL: incremental diverged from full recompute at "
                << s.clusters << " clusters\n";
      rc = 1;
    }
    if (restarts.placement.cost != restarts_again.placement.cost ||
        restarts.placement.cluster_pos !=
            restarts_again.placement.cluster_pos ||
        restarts.placement.winning_restart !=
            restarts_again.placement.winning_restart) {
      std::cout << "FAIL: restart set not deterministic at " << s.clusters
                << " clusters\n";
      rc = 1;
    }
    if (restarts.placement.cost > inc.placement.cost) {
      std::cout << "FAIL: best-of-4 restarts worse than its own restart 0 at "
                << s.clusters << " clusters\n";
      rc = 1;
    }

    const auto moves_per_sec = [&](const Run& r, std::size_t total_moves) {
      return static_cast<double>(total_moves) / (r.wall_ms / 1e3);
    };
    const auto add = [&](const std::string& mode, const Run& r,
                         std::size_t total_moves, double speedup) {
      t.add_row({fmt_count(s.clusters), fmt_count(nets), mode,
                 fmt_double(r.wall_ms, 2),
                 fmt_count(static_cast<std::uint64_t>(
                     moves_per_sec(r, total_moves))),
                 fmt_double(r.placement.cost, 0),
                 speedup > 0 ? fmt_double(speedup, 1) + "x" : "-"});
      bench::json_line(
          "placer_" + mode, s.clusters, r.wall_ms, r.placement.cost,
          "\"nets\":" + std::to_string(nets) + ",\"moves_per_sec\":" +
              fmt_double(moves_per_sec(r, total_moves), 0));
    };
    add("full", full, moves, 0.0);
    add("incremental", inc, moves, full.wall_ms / inc.wall_ms);
    add("restarts4", restarts, 4 * moves,
        4.0 * full.wall_ms / restarts.wall_ms);

    if (!smoke && s.clusters >= 256 && full.wall_ms < 10.0 * inc.wall_ms) {
      std::cout << "FAIL: incremental speedup below 10x at " << s.clusters
                << " clusters (" << fmt_double(full.wall_ms / inc.wall_ms, 1)
                << "x)\n";
      rc = 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nexpected: incremental >= 10x the full-recompute "
               "move throughput at 256 clusters; identical cost per seed; "
               "restarts deterministic.\n";
  return rc;
}
