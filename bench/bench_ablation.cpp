// Ablation bench: each architectural design choice DESIGN.md calls out,
// toggled independently on the same workload/bitstream so its individual
// contribution is visible:
//   A1  inter-row decoder sharing (Table 1's G2 == G4 redundancy)
//   A2  double-length lines (Figs. 10-11)
//   A3  local vs global size control (Figs. 13-14)
//   A4  FePG vs CMOS switch elements (Fig. 15)
//   A5  configuration-fault detectability of the decoder realization
#include <iostream>

#include "area/area_model.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mcfpga.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/plane_alloc.hpp"
#include "netlist/sharing.hpp"
#include "sim/fault.hpp"
#include "workload/bitstream_gen.hpp"
#include "workload/circuits.hpp"
#include "workload/random_dfg.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== ablations: one design choice at a time ===\n\n";

  // Common synthetic routing bitstream at the paper's operating point.
  workload::BitstreamGenParams params;
  params.rows = 64 * 300;
  params.change_rate = 0.05;
  params.seed = 7;
  const auto blocks = workload::generate_blocks(params, 100);
  arch::FabricSpec spec;
  spec.width = 8;
  spec.height = 8;
  const area::AreaModel model;

  // A1 + A4: sharing x device library.
  {
    Table t({"decoder sharing", "RCM device", "area ratio"});
    for (const bool share : {true, false}) {
      for (const bool fepg : {false, true}) {
        area::ComparisonOptions o;
        o.share_identical_patterns = share;
        o.rcm_library = fepg ? area::DeviceLibrary::fepg()
                             : area::DeviceLibrary::cmos();
        t.add_row({share ? "on" : "off", fepg ? "FePG" : "CMOS",
                   fmt_percent(model.compare_fabric(spec, blocks, o).ratio())});
      }
    }
    std::cout << "A1/A4 — decoder sharing x device library (5% change "
                 "rate):\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // A2: double-length lines on a compiled design.
  {
    Table t({"double-length tracks", "worst critical path (SE)",
             "total switches crossed"});
    for (const std::size_t dl : {0u, 2u, 4u, 8u}) {
      arch::FabricSpec fs;
      fs.width = 5;
      fs.height = 5;
      fs.channel_width = 8;
      fs.double_length_tracks = dl;
      core::CompileOptions copts;
      copts.router.prefer_double_length = dl > 0;
      const core::MCFPGA chip(workload::pipeline_workload(4, 8), fs, copts);
      double worst = 0.0;
      std::size_t switches = 0;
      for (const auto& s : chip.design().context_stats) {
        worst = std::max(worst, s.critical_path);
        switches += s.switches_crossed;
      }
      t.add_row({std::to_string(dl), fmt_double(worst, 1),
                 fmt_count(switches)});
    }
    std::cout << "A2 — double-length line budget (pipeline workload):\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // A3: control style across sharing fractions.
  {
    Table t({"share fraction", "global slots", "local slots",
             "slot reduction"});
    for (const double share : {0.0, 0.3, 0.6}) {
      workload::RandomMultiContextParams rp;
      rp.base.num_inputs = 8;
      rp.base.num_nodes = 40;
      rp.base.max_arity = 4;
      rp.base.seed = 31;
      rp.share_fraction = share;
      const auto nl = workload::random_multi_context(rp);
      const auto sharing = netlist::analyze_sharing(nl);
      const auto uses = mapping::lut_class_uses(nl, sharing);
      const auto g =
          mapping::allocate_planes(uses, 4, 4, lut::SizeControl::kGlobal);
      const auto l =
          mapping::allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
      t.add_row({fmt_percent(share, 0), fmt_count(g.num_slots()),
                 fmt_count(l.num_slots()),
                 fmt_percent(1.0 - static_cast<double>(l.num_slots()) /
                                       static_cast<double>(g.num_slots()))});
    }
    std::cout << "A3 — local vs global size control:\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // A5: fault campaign on the decoder realization.
  {
    Table t({"on probability", "injected", "detected", "masked",
             "detection rate"});
    for (const double on : {0.05, 0.12, 0.5}) {
      workload::BitstreamGenParams fp;
      fp.rows = 500;
      fp.on_probability = on;
      fp.change_rate = 0.05;
      fp.seed = 77;
      const auto bs = workload::generate_bitstream(fp);
      const auto result = sim::run_fault_campaign(bs, 300, 13);
      t.add_row({fmt_percent(on, 0), fmt_count(result.injected),
                 fmt_count(result.detected), fmt_count(result.masked),
                 fmt_percent(result.detection_rate())});
    }
    std::cout << "A5 — configuration-fault detectability (plane-diff "
                 "oracle):\n";
    t.print(std::cout);
    std::cout << "masked = stuck-at faults matching the original row; all\n"
                 "value-changing faults are detected by plane comparison.\n";
  }
  return 0;
}
