// E6 — Figs. 12-14: MCMG-LUT granularity modes and the global- vs
// local-control comparison, including the paper's worked example
// (3 globally controlled LUTs vs 2 locally controlled ones) and sweeps
// over the cross-context sharing fraction.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "lut/mcmg_lut.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/plane_alloc.hpp"
#include "netlist/sharing.hpp"
#include "workload/random_dfg.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== E6: adaptive MCMG-LUT logic blocks (Figs. 12-14) ===\n\n";

  // Fig. 12: granularity modes of the paper's MCMG-LUT.
  {
    lut::McmgLut lut(4, 4);
    Table t({"mode", "inputs", "configuration planes", "ID bits used",
             "memory bits"});
    for (const auto& mode : lut.available_modes()) {
      lut.set_mode(mode);
      t.add_row({mode.describe(), std::to_string(mode.inputs),
                 std::to_string(mode.planes),
                 std::to_string(lut.id_bits_used()),
                 std::to_string(lut.memory_bits_per_output())});
    }
    std::cout << "Fig. 12 — MCMG-LUT modes (base 4 inputs, 4 contexts):\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // Figs. 13-14: the worked example.
  {
    std::vector<mapping::ClassUse> uses;
    const auto mk = [](std::size_t cls, std::vector<std::size_t> ctxs,
                       std::size_t arity, std::vector<std::size_t> fanins) {
      mapping::ClassUse u;
      u.cls = cls;
      u.contexts = std::move(ctxs);
      u.arity = arity;
      u.truth_table = BitVector(std::size_t{1} << arity);
      u.fanin_classes = std::move(fanins);
      return u;
    };
    // O1 and O4 both read R, T (Fig. 13's LUT1 stores them behind shared
    // input pins); O5 is the merged shared O2/O3 node of Fig. 14(a).
    uses.push_back(mk(0, {0}, 2, {90, 91}));       // O1, context 1 only
    uses.push_back(mk(1, {1}, 2, {90, 91}));       // O4, context 2 only
    uses.push_back(mk(2, {0, 1}, 3, {92, 93, 94}));  // O5 = shared O2/O3

    const auto global =
        mapping::allocate_planes(uses, 2, 2, lut::SizeControl::kGlobal);
    const auto local =
        mapping::allocate_planes(uses, 2, 2, lut::SizeControl::kLocal);

    Table t({"control style", "LUTs used", "memory bits used",
             "duplicated bits", "controller SEs"});
    t.add_row({"global (Fig. 13)", std::to_string(global.num_slots()),
               std::to_string(global.used_bits()),
               std::to_string(global.duplicated_bits()),
               std::to_string(global.controller_se_cost())});
    t.add_row({"local (Fig. 14)", std::to_string(local.num_slots()),
               std::to_string(local.used_bits()),
               std::to_string(local.duplicated_bits()),
               std::to_string(local.controller_se_cost())});
    std::cout
        << "Figs. 13-14 — worked example (paper: 3 LUTs vs 2 LUTs):\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  // Sweep: sharing fraction vs slots / duplication, both control styles.
  {
    Table t({"share fraction", "shared classes", "global slots",
             "local slots", "global dup bits", "local dup bits"});
    for (const double share : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      workload::RandomMultiContextParams params;
      params.base.num_inputs = 8;
      params.base.num_nodes = 48;
      params.base.max_arity = 4;
      params.base.seed = 606;
      params.num_contexts = 4;
      params.share_fraction = share;
      const auto nl = workload::random_multi_context(params);
      const auto sharing = netlist::analyze_sharing(nl);
      const auto uses = mapping::lut_class_uses(nl, sharing);
      const auto global =
          mapping::allocate_planes(uses, 4, 4, lut::SizeControl::kGlobal);
      const auto local =
          mapping::allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);
      t.add_row({fmt_percent(share, 0),
                 fmt_count(sharing.shared_lut_classes()),
                 fmt_count(global.num_slots()), fmt_count(local.num_slots()),
                 fmt_count(global.duplicated_bits()),
                 fmt_count(local.duplicated_bits())});
    }
    std::cout << "random 4-context workloads (48 nodes/context), sharing "
                 "sweep:\n";
    t.print(std::cout);
    std::cout << "expected shape: local control never uses more slots, and\n"
                 "its advantage grows with the shared fraction.\n";
  }
  return 0;
}
