// B13: compile-as-a-service daemon (serve/daemon.hpp).
//
// Lanes:
//   1. serve_cold      — first job through the daemon: full pipeline over
//                        the wire, progress frames counted.
//   2. serve_repeat    — the same netlist as a second job: served from
//                        the shared stage cache (0 misses), byte-identical
//                        to both the first job and a direct
//                        CompileService compile (the determinism gate).
//   3. serve_concurrent— N sessions submitted at once on a multi-worker
//                        daemon: every reply byte-identical to the direct
//                        compile, ordering-independent.
//   4. serve_cancel    — one queued job cancelled on a 1-worker daemon:
//                        terminal Cancelled, daemon keeps serving.
//   5. serve_delta     — an edited netlist delta-recompiled via base_job.
//
// Counters (hits, misses, progress frames, statuses) are deterministic
// for the pinned seed; wall_ms is informational.  Pass --smoke for the
// CI-sized run pinned in BENCH_SERVE.json.
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "cache/incremental.hpp"
#include "config/serialize.hpp"
#include "netlist/dfg.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "workload/circuits.hpp"
#include "workload/edits.hpp"

namespace mcfpga {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::size_t pick_lut_node(const netlist::MultiContextNetlist& nl) {
  const netlist::Dfg& dfg = nl.context(0);
  for (std::size_t i = 2; i < dfg.num_nodes(); ++i) {
    if (dfg.node(static_cast<netlist::NodeRef>(i)).type ==
        netlist::NodeType::kLutOp) {
      return i;
    }
  }
  return 0;
}

}  // namespace
}  // namespace mcfpga

int main(int argc, char** argv) {
  using namespace mcfpga;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::strcmp(argv[i], "--smoke") == 0;
  }
  std::cout << "=== B13: compile-as-a-service daemon ===\n\n";

  const std::size_t width = smoke ? 8 : 24;
  const std::size_t concurrent_jobs = smoke ? 4 : 8;

  const auto nl = workload::pipeline_workload(4, width);
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  spec.channel_width = 10;
  spec.double_length_tracks = 4;
  core::CompileOptions options;
  options.seed = 7;
  options.placer.timing_mode = true;
  options.router.timing_mode = true;

  bool gate_ok = true;
  const auto fail_gate = [&gate_ok](const std::string& what) {
    std::cout << "GATE FAILED: " << what << "\n";
    gate_ok = false;
  };

  // The determinism oracle: a direct, daemon-free compile.
  cache::CompileService direct;
  const cache::Compiled oracle = direct.compile(nl, spec, options);
  const std::string oracle_text =
      config::to_text(oracle.design.full_bitstream);

  serve::DaemonOptions daemon_options;
  daemon_options.workers = 2;
  // Lanes 1-3 complete jobs before lane 5 delta-recompiles from "cold";
  // keep them all retained (the default FIFO bound would evict it).
  daemon_options.max_completed = 2 + concurrent_jobs + 2;
  serve::CompileDaemon daemon(daemon_options);
  serve::ServeClient client(daemon);

  // --- lane 1: cold job over the wire --------------------------------------
  const auto t_cold = Clock::now();
  const std::uint64_t cold_id = client.submit(
      serve::ServeClient::make_request("cold", nl, spec, options));
  const serve::ServeClient::Outcome cold = client.wait(cold_id);
  const double cold_ms = ms_since(t_cold);
  {
    std::ostringstream extra;
    extra << "\"misses\":" << cold.reply.cache_misses
          << ",\"progress_frames\":" << cold.progress.size() << ",\"done\":"
          << (cold.reply.status == serve::CompileReply::Status::kDone ? 1
                                                                      : 0);
    bench::json_line("serve_cold", width, cold_ms, cold.reply.critical_path,
                     extra.str());
  }
  if (cold.reply.bitstream_text != oracle_text) {
    fail_gate("daemon cold bitstream differs from the direct compile");
  }

  // --- lane 2: repeat job = cache hit --------------------------------------
  const auto t_rep = Clock::now();
  const std::uint64_t rep_id = client.submit(
      serve::ServeClient::make_request("repeat", nl, spec, options));
  const serve::ServeClient::Outcome repeat = client.wait(rep_id);
  const double rep_ms = ms_since(t_rep);
  {
    std::ostringstream extra;
    extra << "\"hits\":" << repeat.reply.cache_hits
          << ",\"misses\":" << repeat.reply.cache_misses
          << ",\"speedup\":" << (rep_ms > 0.0 ? cold_ms / rep_ms : 0.0);
    bench::json_line("serve_repeat", width, rep_ms,
                     repeat.reply.critical_path, extra.str());
  }
  if (repeat.reply.cache_misses != 0) {
    fail_gate("repeat job missed " +
              std::to_string(repeat.reply.cache_misses) + " stages");
  }
  if (repeat.reply.bitstream_text != oracle_text) {
    fail_gate("repeat bitstream differs from the direct compile");
  }

  // --- lane 3: concurrent sessions -----------------------------------------
  const auto t_conc = Clock::now();
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < concurrent_jobs; ++i) {
    ids.push_back(client.submit(serve::ServeClient::make_request(
        "conc-" + std::to_string(i), nl, spec, options)));
  }
  std::size_t identical = 0;
  for (const std::uint64_t id : ids) {
    const serve::ServeClient::Outcome out = client.wait(id);
    identical += out.reply.bitstream_text == oracle_text ? 1 : 0;
  }
  {
    std::ostringstream extra;
    extra << "\"jobs\":" << concurrent_jobs
          << ",\"identical\":" << identical;
    bench::json_line("serve_concurrent", width, ms_since(t_conc),
                     static_cast<double>(identical), extra.str());
  }
  if (identical != concurrent_jobs) {
    fail_gate("concurrent sessions were not bit-identical to the oracle");
  }

  // --- lane 4: cancellation on a saturated daemon --------------------------
  {
    serve::DaemonOptions one;
    one.workers = 1;
    serve::CompileDaemon small(one);
    serve::ServeClient sc(small);
    const auto t_cancel = Clock::now();
    const std::uint64_t busy = sc.submit(
        serve::ServeClient::make_request("busy", nl, spec, options));
    const std::uint64_t victim = sc.submit(
        serve::ServeClient::make_request("victim", nl, spec, options));
    const bool accepted = sc.cancel(victim);
    const serve::ServeClient::Outcome cancelled = sc.wait(victim);
    const serve::ServeClient::Outcome kept = sc.wait(busy);
    const std::uint64_t after = sc.submit(
        serve::ServeClient::make_request("after", nl, spec, options));
    const serve::ServeClient::Outcome served_after = sc.wait(after);
    const bool ok =
        accepted &&
        cancelled.reply.status == serve::CompileReply::Status::kCancelled &&
        kept.reply.status == serve::CompileReply::Status::kDone &&
        served_after.reply.status == serve::CompileReply::Status::kDone &&
        served_after.reply.bitstream_text == oracle_text;
    std::ostringstream extra;
    extra << "\"cancelled\":" << small.stats().cancelled
          << ",\"done\":" << small.stats().done << ",\"ok\":" << (ok ? 1 : 0);
    bench::json_line("serve_cancel", width, ms_since(t_cancel),
                     static_cast<double>(small.stats().cancelled),
                     extra.str());
    if (!ok) {
      fail_gate("cancellation lane: wrong statuses or a corrupted daemon");
    }
  }

  // --- lane 5: delta recompile via base_job --------------------------------
  const auto edited = workload::retable_edit(nl, pick_lut_node(nl), 123);
  const cache::Compiled want_delta =
      direct.compile_incremental(oracle, edited, options);
  const auto t_delta = Clock::now();
  const std::uint64_t delta_id = client.submit(serve::ServeClient::make_request(
      "delta", edited, spec, options, 0, "cold"));
  const serve::ServeClient::Outcome delta = client.wait(delta_id);
  {
    std::ostringstream extra;
    extra << "\"delta\":" << (delta.reply.delta ? 1 : 0) << ",\"done\":"
          << (delta.reply.status == serve::CompileReply::Status::kDone ? 1
                                                                       : 0);
    bench::json_line("serve_delta", width, ms_since(t_delta),
                     delta.reply.critical_path, extra.str());
  }
  if (delta.reply.bitstream_text !=
      config::to_text(want_delta.design.full_bitstream)) {
    fail_gate("daemon delta bitstream differs from the direct delta");
  }
  if (delta.reply.delta != want_delta.design.cache.delta) {
    fail_gate("daemon delta flag differs from the direct delta");
  }

  daemon.stop();
  std::cout << (gate_ok ? "\nall gates passed\n" : "\nGATES FAILED\n");
  return gate_ok ? 0 : 1;
}
