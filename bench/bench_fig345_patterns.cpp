// E3 — Figs. 3-5: the 16 configuration-bit patterns of a 4-context switch,
// their hardware class, their SE cost under RCM decoder synthesis, and how
// often each class occurs at realistic change rates.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/stats.hpp"
#include "rcm/decoder_synth.hpp"
#include "workload/bitstream_gen.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== E3: Figs. 3-5 pattern taxonomy ===\n\n";

  // All 16 patterns for 4 contexts, paper ordering (C3 C2 C1 C0).
  Table t({"pattern (C3 C2 C1 C0)", "class (figure)", "hardware", "SE cost",
           "depth"});
  std::size_t class_count[3] = {0, 0, 0};
  for (const auto& p : config::all_patterns(4)) {
    const auto info = config::classify(p);
    const auto net = rcm::synthesize_decoder(p);
    const char* figure = info.cls == config::PatternClass::kConstant
                             ? "constant (Fig. 3)"
                         : info.cls == config::PatternClass::kSingleBit
                             ? "single-bit (Fig. 4)"
                             : "complex (Fig. 5)";
    ++class_count[static_cast<int>(info.cls)];
    t.add_row({p.to_string(), figure, info.describe(),
               std::to_string(net.se_count()), std::to_string(net.depth())});
  }
  t.print(std::cout);
  std::cout << "census: " << class_count[0] << " constant, " << class_count[1]
            << " single-bit, " << class_count[2]
            << " complex (paper: 2 / 4 / 10)\n\n";

  // Class frequency vs change rate: the paper's premise is that at <=5%
  // change rate, the cheap classes dominate.
  Table f({"change rate", "constant", "single-bit", "complex",
           "avg SE/row"});
  for (const double rate : {0.0, 0.01, 0.03, 0.05, 0.10, 0.25, 0.50}) {
    workload::BitstreamGenParams params;
    params.rows = 40000;
    params.change_rate = rate;
    params.seed = 345;
    const auto bs = workload::generate_bitstream(params);
    const auto stats = config::compute_stats(bs);
    std::size_t ses = 0;
    for (const auto& row : bs.rows()) {
      ses += rcm::decoder_se_cost(row.pattern);
    }
    f.add_row({fmt_percent(rate, 0), fmt_percent(stats.constant_fraction()),
               fmt_percent(stats.single_bit_fraction()),
               fmt_percent(stats.complex_fraction()),
               fmt_double(static_cast<double>(ses) /
                              static_cast<double>(bs.num_rows()),
                          3)});
  }
  std::cout << "pattern-class frequency vs change rate (40,000 rows):\n";
  f.print(std::cout);
  std::cout << "expected shape: at <=5% change rate >=85% of rows are\n"
               "constant and the complex (Fig. 5) class stays under ~5%.\n";
  return 0;
}
