// Area explorer: sweep the architecture knobs (context count, change rate,
// device library, decoder sharing) and print the proposed/conventional
// area ratio for each point — the tool you would use to size a real
// instance of the paper's architecture.
#include <iostream>

#include "area/area_model.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "workload/bitstream_gen.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== MC-FPGA area explorer ===\n\n";
  const area::AreaModel model;

  Table t({"contexts", "change rate", "RCM device", "sharing",
           "area ratio"});
  for (const std::size_t n : {2u, 4u, 8u}) {
    for (const double rate : {0.02, 0.05, 0.15}) {
      for (const bool fepg : {false, true}) {
        for (const bool share : {true, false}) {
          arch::FabricSpec spec;
          spec.width = 6;
          spec.height = 6;
          spec.num_contexts = n;
          spec.logic_block.num_contexts = n;

          workload::BitstreamGenParams params;
          params.rows = spec.num_cells() * 250;
          params.num_contexts = n;
          params.change_rate = rate;
          params.seed = 4242;
          const auto blocks = workload::generate_blocks(params, 250);

          area::ComparisonOptions options;
          options.share_identical_patterns = share;
          options.rcm_library = fepg ? area::DeviceLibrary::fepg()
                                     : area::DeviceLibrary::cmos();
          const auto report = model.compare_fabric(spec, blocks, options);
          t.add_row({std::to_string(n), fmt_percent(rate, 0),
                     fepg ? "FePG" : "CMOS", share ? "on" : "off",
                     fmt_percent(report.ratio())});
        }
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nreading guide: the paper's headline points are\n"
               "(4 contexts, 5%, CMOS, sharing on) ~ 45% and\n"
               "(4 contexts, 5%, FePG, sharing on) ~ 37%.\n";
  return 0;
}
