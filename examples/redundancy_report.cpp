// Redundancy report: compile a workload, then break the full fabric
// bitstream down the way the paper's Table 1 does — per resource kind,
// pattern class, and identical-row grouping — and show what the RCM
// decoder synthesis makes of it.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/stats.hpp"
#include "core/mcfpga.hpp"
#include "rcm/context_decoder.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

int main() {
  arch::FabricSpec spec;
  spec.width = 4;
  spec.height = 4;
  const core::MCFPGA chip(workload::pipeline_workload(4, 6), spec);
  const auto& bs = chip.design().full_bitstream;

  std::cout << "=== redundancy report: compiled pipeline workload ===\n\n";
  config::print_stats(std::cout, config::compute_stats(bs),
                      "full fabric bitstream");

  // Per resource kind.
  std::cout << "\nper resource kind:\n";
  Table t({"kind", "rows", "constant", "single-bit", "complex"});
  for (const auto kind : {config::ResourceKind::kRoutingSwitch,
                          config::ResourceKind::kLutBit,
                          config::ResourceKind::kControlBit}) {
    config::Bitstream sub(bs.num_contexts());
    for (const auto& row : bs.rows()) {
      if (row.kind == kind) {
        sub.add_row(row.name, row.kind, row.pattern);
      }
    }
    if (sub.num_rows() == 0) {
      continue;
    }
    const auto stats = config::compute_stats(sub);
    t.add_row({config::to_string(kind), fmt_count(stats.num_rows),
               fmt_percent(stats.constant_fraction()),
               fmt_percent(stats.single_bit_fraction()),
               fmt_percent(stats.complex_fraction())});
  }
  t.print(std::cout);

  // What the RCM makes of the routing switches.
  config::Bitstream routing(bs.num_contexts());
  for (const auto& row : bs.rows()) {
    if (row.kind == config::ResourceKind::kRoutingSwitch) {
      routing.add_row(row.name, row.kind, row.pattern);
    }
  }
  const rcm::ContextDecoder flat(routing,
                                 {.share_identical_patterns = false});
  const rcm::ContextDecoder shared(routing,
                                   {.share_identical_patterns = true});
  std::cout << "\nRCM realization of the " << fmt_count(routing.num_rows())
            << " routing switches:\n";
  Table r({"configuration", "SE networks", "total SEs", "taps",
           "SEs per switch"});
  r.add_row({"one decoder per switch", fmt_count(flat.num_networks()),
             fmt_count(flat.total_se_count()), "0",
             fmt_double(static_cast<double>(flat.total_se_count()) /
                            static_cast<double>(routing.num_rows()),
                        2)});
  r.add_row({"shared within fabric", fmt_count(shared.num_networks()),
             fmt_count(shared.total_se_count()),
             fmt_count(shared.shared_row_taps()),
             fmt_double(static_cast<double>(shared.total_se_count()) /
                            static_cast<double>(routing.num_rows()),
                        2)});
  r.print(std::cout);

  std::cout << "\nconventional cost: 4 memory bits + 4:1 mux per switch, "
               "unconditionally.\n";
  return 0;
}
