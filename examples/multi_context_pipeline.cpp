// Multi-context pipeline: the DPGA use case from the paper's introduction.
// One physical fabric is time-multiplexed as four different pipeline
// stages; each context implements one stage over the same inputs, and the
// context scheduler rotates through them every cycle.
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/mcfpga.hpp"
#include "core/report.hpp"
#include "sim/context_scheduler.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

int main() {
  // Context c = stage c of a 4-stage comparator/reduce pipeline over the
  // same 8-bit operands; stages share their per-bit front-end comparators,
  // which the mapper merges into single-plane LUTs.
  const auto nl = workload::pipeline_workload(4, 8);

  arch::FabricSpec spec;
  spec.width = 5;
  spec.height = 5;
  spec.channel_width = 10;
  const core::MCFPGA chip(nl, spec);

  std::cout << "=== multi-context pipeline on one fabric ===\n";
  core::print_design_report(std::cout, chip.design());

  // Rotate the contexts and evaluate every stage on the same operands.
  netlist::ValueMap inputs;
  for (int i = 0; i < 8; ++i) {
    inputs["a" + std::to_string(i)] = (0xA5 >> i) & 1;
    inputs["b" + std::to_string(i)] = (0xA7 >> i) & 1;
  }
  const sim::ContextScheduler sched(4);
  Table t({"cycle", "context (stage)", "stage output"});
  for (std::size_t cycle = 0; cycle < 8; ++cycle) {
    const std::size_t ctx = sched.context_at(cycle);
    const auto out = chip.run(ctx, inputs);
    t.add_row({std::to_string(cycle), std::to_string(ctx),
               out.at("y" + std::to_string(ctx)) ? "1" : "0"});
  }
  t.print(std::cout);

  // Context-switch cost over the rotation.
  const auto stats = sched.run(chip.design().full_bitstream, 9);
  std::cout << "config bits toggled per context switch: "
            << fmt_double(stats.avg_bits_per_switch(), 1) << " of "
            << chip.design().full_bitstream.num_rows() << " ("
            << fmt_percent(stats.avg_bits_per_switch() /
                               static_cast<double>(
                                   chip.design().full_bitstream.num_rows()),
                           2)
            << ")\n";
  return 0;
}
