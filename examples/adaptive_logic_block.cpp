// Adaptive logic block demo (paper Sec. 4): how the same workload maps
// under global vs local size control, and how an MCMG-LUT trades planes
// for inputs.
#include <iostream>
#include <map>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "lut/mcmg_lut.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/plane_alloc.hpp"
#include "netlist/dot.hpp"
#include "netlist/sharing.hpp"
#include "workload/random_dfg.hpp"

using namespace mcfpga;

int main() {
  std::cout << "=== adaptive MCMG-LUT logic blocks ===\n\n";

  // An MCMG-LUT re-programmed through its three granularities.
  lut::McmgLut lut(4, 4);
  std::cout << "one 64-bit MCMG-LUT can be:\n";
  for (const auto& mode : lut.available_modes()) {
    std::cout << "  * " << mode.describe() << "\n";
  }
  std::cout << "\n";

  // A 4-context workload with 40% cross-context sharing.
  workload::RandomMultiContextParams params;
  params.base.num_inputs = 8;
  params.base.num_nodes = 32;
  params.base.max_arity = 4;
  params.base.seed = 77;
  params.share_fraction = 0.4;
  const auto nl = workload::random_multi_context(params);
  const auto sharing = netlist::analyze_sharing(nl);
  std::cout << "workload: 4 contexts x 32 LUT ops, "
            << sharing.shared_lut_classes() << " shared classes, "
            << sharing.merged_lut_ops() << " evaluations merged away\n\n";

  const auto uses = mapping::lut_class_uses(nl, sharing);
  const auto global =
      mapping::allocate_planes(uses, 4, 4, lut::SizeControl::kGlobal);
  const auto local =
      mapping::allocate_planes(uses, 4, 4, lut::SizeControl::kLocal);

  Table t({"control", "LUT slots", "memory used (bits)", "duplicated bits",
           "controller SEs"});
  t.add_row({"global (Fig. 13)", fmt_count(global.num_slots()),
             fmt_count(global.used_bits()),
             fmt_count(global.duplicated_bits()),
             fmt_count(global.controller_se_cost())});
  t.add_row({"local (Fig. 14)", fmt_count(local.num_slots()),
             fmt_count(local.used_bits()), fmt_count(local.duplicated_bits()),
             fmt_count(local.controller_se_cost())});
  t.print(std::cout);

  // Per-slot granularity mix under local control.
  std::map<std::string, std::size_t> mix;
  for (const auto& slot : local.slots) {
    ++mix[slot.mode.describe()];
  }
  std::cout << "\nper-slot granularity mix (local control):\n";
  for (const auto& [mode, count] : mix) {
    std::cout << "  " << pad_right(mode, 28) << " x " << count << "\n";
  }

  // DOT export of the merged view (pipe into `dot -Tpng` to render).
  std::cout << "\nmerged DFG DOT export (first 6 lines):\n";
  const std::string dot = netlist::to_dot_merged(nl, sharing);
  std::size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    const std::size_t next = dot.find('\n', pos);
    std::cout << dot.substr(pos, next - pos) << "\n";
    pos = next == std::string::npos ? next : next + 1;
  }
  std::cout << "  ... (" << dot.size() << " bytes total)\n";
  return 0;
}
