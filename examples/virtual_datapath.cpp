// Virtual datapath: the DPGA promise from the paper's introduction — one
// fabric sequentially configured as four different functional units (ALU,
// barrel rotator, priority encoder, popcount) — plus the operational side
// of owning such a device: archiving the bitstream and checking it for
// configuration faults.
#include <iostream>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/serialize.hpp"
#include "core/mcfpga.hpp"
#include "sim/fault.hpp"
#include "workload/datapath.hpp"

using namespace mcfpga;

namespace {

netlist::ValueMap operands(std::uint64_t a, std::uint64_t b,
                           std::uint64_t op) {
  netlist::ValueMap in;
  for (int i = 0; i < 4; ++i) {
    in["a" + std::to_string(i)] = (a >> i) & 1;
    in["b" + std::to_string(i)] = (b >> i) & 1;
  }
  in["op0"] = op & 1;
  in["op1"] = (op >> 1) & 1;
  return in;
}

std::uint64_t read_bits(const netlist::ValueMap& out,
                        const std::string& prefix, std::size_t bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const auto it = out.find(prefix + std::to_string(i));
    if (it != out.end() && it->second) {
      v |= std::uint64_t{1} << i;
    }
  }
  return v;
}

}  // namespace

int main() {
  std::cout << "=== virtual datapath: 4 functional units, 1 fabric ===\n\n";
  const auto nl = workload::virtual_datapath(4);
  arch::FabricSpec spec;
  spec.width = 5;
  spec.height = 5;
  spec.channel_width = 10;
  const core::MCFPGA chip(nl, spec);
  std::cout << "fabric: " << chip.design().fabric.describe() << "\n";
  std::cout << "verification mismatches: " << chip.verify(24) << "\n\n";

  const std::uint64_t a = 0b1011;  // 11
  const std::uint64_t b = 0b0011;  // 3
  Table t({"context", "unit", "result for a=11, b=3"});
  t.add_row({"0", "ALU (op=ADD)",
             std::to_string(read_bits(chip.run(0, operands(a, b, 3)), "r", 4)) +
                 " (11+3 = 14)"});
  t.add_row({"1", "rotate-left by b",
             std::to_string(read_bits(chip.run(1, operands(a, b, 0)), "r", 4)) +
                 " (1011 rol 3 = 1101 = 13)"});
  t.add_row({"2", "priority encoder",
             std::to_string(read_bits(chip.run(2, operands(a, b, 0)), "q", 2)) +
                 " (highest set bit of 1011 = 3)"});
  t.add_row({"3", "popcount",
             std::to_string(read_bits(chip.run(3, operands(a, b, 0)), "c", 3)) +
                 " (popcount(1011) = 3)"});
  t.print(std::cout);

  // Archive the full fabric bitstream and prove the archive is faithful.
  const std::string archive = config::to_text(chip.design().full_bitstream);
  const config::Bitstream restored = config::from_text(archive);
  std::cout << "\nbitstream archived: " << archive.size() << " bytes, "
            << restored.num_rows() << " rows; restored planes match: "
            << (restored.plane(0) == chip.design().full_bitstream.plane(0)
                    ? "yes"
                    : "NO")
            << "\n";

  // Fault-check the archive with the plane-diff oracle.
  const auto campaign =
      sim::run_fault_campaign(chip.design().full_bitstream, 100, 3);
  std::cout << "fault campaign: " << campaign.injected << " injected, "
            << campaign.detected << " detected, " << campaign.masked
            << " masked (" << fmt_percent(campaign.detection_rate())
            << " detection)\n";
  return 0;
}
