// Quickstart: compile a 4-context design onto the MC-FPGA, run it on the
// fabric simulator, and verify it against the software reference.
//
//   1. Build a multi-context netlist (one DFG per context).
//   2. Describe the fabric (contexts, LUTs, channels).
//   3. core::MCFPGA compiles (map -> place -> route -> program).
//   4. run() evaluates any context on the programmed fabric.
#include <iostream>

#include "common/strings.hpp"
#include "core/mcfpga.hpp"
#include "workload/circuits.hpp"

using namespace mcfpga;

int main() {
  // A 4-bit ripple-carry adder in every context (contexts share all logic,
  // so the whole design fits a single set of single-plane LUTs).
  netlist::MultiContextNetlist nl(4);
  for (std::size_t c = 0; c < 4; ++c) {
    nl.context(c) = workload::ripple_carry_adder(4);
  }

  arch::FabricSpec spec;       // 4x4 cells, 4 contexts, RCM switch blocks
  const core::MCFPGA chip(nl, spec);

  std::cout << "compiled onto " << chip.design().fabric.describe() << "\n";
  std::cout << "logic blocks used: " << chip.design().clusters.size()
            << ", LUT ops merged across contexts: "
            << chip.design().sharing.merged_lut_ops() << "\n";

  // Drive the fabric: 9 + 5 + 1 = 15.
  netlist::ValueMap inputs;
  for (int i = 0; i < 4; ++i) {
    inputs["a" + std::to_string(i)] = (9 >> i) & 1;
    inputs["b" + std::to_string(i)] = (5 >> i) & 1;
  }
  inputs["cin"] = true;
  const auto out = chip.run(/*context=*/0, inputs);
  int sum = out.at("cout") ? 16 : 0;
  for (int i = 0; i < 4; ++i) {
    sum |= out.at("s" + std::to_string(i)) ? (1 << i) : 0;
  }
  std::cout << "fabric computes 9 + 5 + 1 = " << sum << "\n";

  // Cross-check the fabric against the netlist reference evaluator.
  const std::size_t mismatches = chip.verify(/*vectors=*/32);
  std::cout << "verification mismatches: " << mismatches
            << (mismatches == 0 ? " (fabric == reference)" : " (BUG!)")
            << "\n";

  // The headline number for this design: proposed vs conventional area.
  std::cout << "area ratio (proposed/conventional): "
            << fmt_percent(chip.area_report().ratio()) << "\n";
  return mismatches == 0 ? 0 : 1;
}
