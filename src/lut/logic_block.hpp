// Adaptive multi-context logic block (paper Sec. 4, Figs. 13-14).
//
// A logic block wraps one MCMG-LUT (possibly multi-output) plus output
// flip-flops and a granularity ("size") controller:
//
//  * kGlobal control (Fig. 13): one fabric-wide signal J fixes every logic
//    block to the same (inputs, planes) mode.  Zero per-block controller
//    cost, but configuration data shared between contexts must be stored
//    once per plane — redundantly.
//  * kLocal control (Fig. 14): each block picks its own mode.  The
//    controller is built from RCM switch elements, so it costs a handful of
//    SEs — and only when the block actually uses multiple planes.
#pragma once

#include <cstddef>
#include <string>

#include "lut/mcmg_lut.hpp"

namespace mcfpga::lut {

enum class SizeControl {
  kGlobal,  ///< Fig. 13: fabric-wide granularity signal.
  kLocal,   ///< Fig. 14: per-block RCM-built size controller.
};

std::string to_string(SizeControl control);

struct LogicBlockSpec {
  std::size_t base_inputs = 4;
  std::size_t num_contexts = 4;
  std::size_t num_outputs = 2;
  SizeControl control = SizeControl::kLocal;
};

class LogicBlock {
 public:
  explicit LogicBlock(LogicBlockSpec spec);

  const LogicBlockSpec& spec() const { return spec_; }
  McmgLut& lut() { return lut_; }
  const McmgLut& lut() const { return lut_; }

  /// Sets the granularity.  Under kGlobal control the caller (the fabric)
  /// is responsible for applying the same mode everywhere; this class only
  /// records it.
  void set_granularity(LutMode mode) { lut_.set_mode(mode); }

  /// SE cost of the local size controller in the current mode: one SE per
  /// steered context-ID bit, and zero when the block runs a single plane
  /// (the paper: the controller "is only required when there are different
  /// configuration planes").  Always zero under global control.
  std::size_t controller_se_cost() const;

  /// Combinational evaluation of one output.
  bool eval(std::size_t output, const BitVector& inputs,
            std::size_t context) const {
    return lut_.eval(output, inputs, context);
  }

  /// Flip-flops on the outputs (one per output; registered outputs hold
  /// values across context switches — the DPGA execution model).
  std::size_t num_flip_flops() const { return spec_.num_outputs; }

 private:
  LogicBlockSpec spec_;
  McmgLut lut_;
};

}  // namespace mcfpga::lut
