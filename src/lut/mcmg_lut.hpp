// Multi-context multi-granularity LUT (MCMG-LUT, paper Sec. 4, Fig. 12).
//
// An MCMG-LUT owns a fixed memory budget of  2^base_inputs * num_contexts
// bits per output and can trade configuration planes for LUT inputs:
//
//   mode j (j = ID bits used for plane select, 0 <= j <= log2 contexts):
//     planes = 2^j,  inputs = base_inputs + log2(contexts) - j
//
// For the paper's 4-context, base-4 example this is exactly Fig. 12:
// a 4-input LUT with four configuration planes (j = 2, S1 S0 both used) or
// a 5-input LUT with two planes (j = 1, only S0 used) — or a 6-input LUT
// with a single context-independent plane (j = 0).
//
// The plane selected in context c uses the LOW j context-ID bits
// (plane = c mod planes), matching Fig. 12(b) where the 5-input mode keys
// its two planes off S0 alone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "config/bitstream.hpp"

namespace mcfpga::lut {

/// One granularity setting of an MCMG-LUT.
struct LutMode {
  std::size_t inputs = 0;
  std::size_t planes = 0;

  bool operator==(const LutMode&) const = default;
  std::string describe() const;
};

class McmgLut {
 public:
  /// base_inputs: LUT inputs when all ID bits are used for plane select
  /// (the paper's examples use 4).  num_outputs models the paper's
  /// "6-input 2-output MCMG-LUT" logic blocks: outputs share the input pins
  /// and the mode but have independent truth-table memory.
  McmgLut(std::size_t base_inputs, std::size_t num_contexts,
          std::size_t num_outputs = 1);

  std::size_t base_inputs() const { return base_inputs_; }
  std::size_t num_contexts() const { return num_contexts_; }
  std::size_t num_outputs() const { return num_outputs_; }
  /// Memory budget per output in bits (mode-independent by construction).
  std::size_t memory_bits_per_output() const;
  /// Total memory bits across outputs.
  std::size_t total_memory_bits() const;

  /// All legal (inputs, planes) settings, largest plane count first.
  std::vector<LutMode> available_modes() const;
  /// Largest input count (single-plane mode).
  std::size_t max_inputs() const;

  /// Selects the granularity; clears all truth-table memory.
  void set_mode(LutMode mode);
  LutMode mode() const { return mode_; }
  /// Context-ID bits consumed by the plane select in the current mode.
  std::size_t id_bits_used() const;

  /// Programs one plane of one output with a 2^inputs-bit truth table.
  void program_plane(std::size_t output, std::size_t plane,
                     const BitVector& truth_table);
  const BitVector& plane_memory(std::size_t output, std::size_t plane) const;

  /// Configuration plane used in a context (low id_bits_used() ID bits).
  std::size_t plane_for_context(std::size_t context) const;

  /// Evaluates output `output` for computation inputs `inputs`
  /// (inputs.size() == mode().inputs) in `context`.
  bool eval(std::size_t output, const BitVector& inputs,
            std::size_t context) const;

  /// Exports the truth-table memory as conventional-view bitstream rows:
  /// one row per (output, address), with the pattern the bit would follow
  /// across contexts.  This is what the redundancy statistics and the
  /// conventional-baseline area model consume.
  config::Bitstream conventional_view_rows(const std::string& prefix) const;

 private:
  void check_output(std::size_t output) const;

  std::size_t base_inputs_;
  std::size_t num_contexts_;
  std::size_t num_outputs_;
  LutMode mode_;
  /// memory_[output][plane] = truth table (2^mode_.inputs bits).
  std::vector<std::vector<BitVector>> memory_;
};

}  // namespace mcfpga::lut
