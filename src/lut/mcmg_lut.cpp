#include "lut/mcmg_lut.hpp"

#include <bit>

#include "common/error.hpp"
#include "config/context_id.hpp"
#include "config/pattern.hpp"

namespace mcfpga::lut {

std::string LutMode::describe() const {
  return std::to_string(inputs) + "-input LUT x " + std::to_string(planes) +
         (planes == 1 ? " plane" : " planes");
}

McmgLut::McmgLut(std::size_t base_inputs, std::size_t num_contexts,
                 std::size_t num_outputs)
    : base_inputs_(base_inputs),
      num_contexts_(num_contexts),
      num_outputs_(num_outputs) {
  MCFPGA_REQUIRE(base_inputs >= 1 && base_inputs <= 8,
                 "base LUT inputs must be in [1, 8]");
  MCFPGA_REQUIRE(config::is_valid_context_count(num_contexts),
                 "context count must be a power of two in [2, 64]");
  MCFPGA_REQUIRE(num_outputs >= 1 && num_outputs <= 8,
                 "output count must be in [1, 8]");
  // Default mode: all ID bits used for plane select (smallest LUT).
  set_mode(LutMode{base_inputs_, num_contexts_});
}

std::size_t McmgLut::memory_bits_per_output() const {
  return (std::size_t{1} << base_inputs_) * num_contexts_;
}

std::size_t McmgLut::total_memory_bits() const {
  return memory_bits_per_output() * num_outputs_;
}

std::vector<LutMode> McmgLut::available_modes() const {
  std::vector<LutMode> modes;
  const std::size_t k = config::num_id_bits(num_contexts_);
  for (std::size_t j = k + 1; j-- > 0;) {
    modes.push_back(
        LutMode{base_inputs_ + (k - j), std::size_t{1} << j});
  }
  return modes;
}

std::size_t McmgLut::max_inputs() const {
  return base_inputs_ + config::num_id_bits(num_contexts_);
}

void McmgLut::set_mode(LutMode mode) {
  MCFPGA_REQUIRE(mode.planes >= 1 && std::has_single_bit(mode.planes),
                 "plane count must be a power of two");
  MCFPGA_REQUIRE(mode.planes <= num_contexts_,
                 "plane count cannot exceed context count");
  MCFPGA_REQUIRE(
      (std::size_t{1} << mode.inputs) * mode.planes ==
          memory_bits_per_output(),
      "mode must exactly tile the memory budget (2^inputs * planes)");
  mode_ = mode;
  memory_.assign(num_outputs_,
                 std::vector<BitVector>(
                     mode.planes, BitVector(std::size_t{1} << mode.inputs)));
}

std::size_t McmgLut::id_bits_used() const {
  return static_cast<std::size_t>(std::countr_zero(mode_.planes));
}

void McmgLut::check_output(std::size_t output) const {
  MCFPGA_REQUIRE(output < num_outputs_, "output index out of range");
}

void McmgLut::program_plane(std::size_t output, std::size_t plane,
                            const BitVector& truth_table) {
  check_output(output);
  MCFPGA_REQUIRE(plane < mode_.planes, "plane index out of range");
  MCFPGA_REQUIRE(truth_table.size() == (std::size_t{1} << mode_.inputs),
                 "truth table must have 2^inputs bits");
  memory_[output][plane] = truth_table;
}

const BitVector& McmgLut::plane_memory(std::size_t output,
                                       std::size_t plane) const {
  check_output(output);
  MCFPGA_REQUIRE(plane < mode_.planes, "plane index out of range");
  return memory_[output][plane];
}

std::size_t McmgLut::plane_for_context(std::size_t context) const {
  MCFPGA_REQUIRE(context < num_contexts_, "context out of range");
  return context & (mode_.planes - 1);
}

bool McmgLut::eval(std::size_t output, const BitVector& inputs,
                   std::size_t context) const {
  check_output(output);
  MCFPGA_REQUIRE(inputs.size() == mode_.inputs,
                 "input arity must match the current mode");
  const std::size_t address = static_cast<std::size_t>(inputs.to_word());
  return memory_[output][plane_for_context(context)].get(address);
}

config::Bitstream McmgLut::conventional_view_rows(
    const std::string& prefix) const {
  config::Bitstream bs(num_contexts_);
  for (std::size_t o = 0; o < num_outputs_; ++o) {
    const std::size_t addresses = std::size_t{1} << mode_.inputs;
    for (std::size_t a = 0; a < addresses; ++a) {
      config::ContextPattern pattern(num_contexts_);
      for (std::size_t c = 0; c < num_contexts_; ++c) {
        pattern.set_value(c, memory_[o][plane_for_context(c)].get(a));
      }
      bs.add_row(prefix + ".out" + std::to_string(o) + "[" +
                     std::to_string(a) + "]",
                 config::ResourceKind::kLutBit, std::move(pattern));
    }
  }
  return bs;
}

}  // namespace mcfpga::lut
