#include "lut/logic_block.hpp"

namespace mcfpga::lut {

std::string to_string(SizeControl control) {
  switch (control) {
    case SizeControl::kGlobal:
      return "global";
    case SizeControl::kLocal:
      return "local";
  }
  return "?";
}

LogicBlock::LogicBlock(LogicBlockSpec spec)
    : spec_(spec),
      lut_(spec.base_inputs, spec.num_contexts, spec.num_outputs) {}

std::size_t LogicBlock::controller_se_cost() const {
  if (spec_.control == SizeControl::kGlobal) {
    return 0;
  }
  // One SE steers one context-ID bit into the LUT address mux; a
  // single-plane block steers none and costs nothing.
  return lut_.id_bits_used();
}

}  // namespace mcfpga::lut
