#include "route/router.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace mcfpga::route {

namespace {

using arch::EdgeId;
using arch::kInvalidNode;
using arch::NodeId;
using arch::NodeKind;
using arch::RoutingGraph;
using arch::SwitchOwner;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-context routing state for PathFinder.
struct ContextState {
  std::vector<int> occupancy;       // nets currently using each node
  std::vector<double> history;      // accumulated congestion history
  double present_factor = 0.5;
};

/// Base cost of occupying a node.  Double-length wires cover two cells for
/// one node, so per-distance they are cheaper; pricing them at 1.9 when
/// disabled-by-preference keeps them routable but unattractive.
double base_cost(const RoutingGraph& graph, NodeId node, bool prefer_dl) {
  const auto& n = graph.node(node);
  if (n.kind != NodeKind::kWire) {
    return 0.5;  // pins/pads: cheap, they are endpoints
  }
  if (n.length == 2) {
    return prefer_dl ? 1.0 : 3.5;
  }
  return 1.0;
}

struct QueueItem {
  double cost;
  NodeId node;
  bool operator>(const QueueItem& o) const { return cost > o.cost; }
};

}  // namespace

std::size_t RouteResult::critical_switches(std::size_t context) const {
  std::size_t worst = 0;
  for (const auto& net : nets[context]) {
    for (const auto& path : net.paths) {
      worst = std::max(worst, path.switch_count());
    }
  }
  return worst;
}

config::Bitstream RouteResult::to_bitstream(
    const arch::RoutingGraph& graph) const {
  const std::size_t n =
      switch_patterns.empty() ? 0 : switch_patterns[0].num_contexts();
  config::Bitstream bs(n == 0 ? 2 : n);
  for (std::size_t s = 0; s < switch_patterns.size(); ++s) {
    bs.add_row(graph.rr_switch(static_cast<arch::SwitchId>(s)).name,
               config::ResourceKind::kRoutingSwitch, switch_patterns[s]);
  }
  return bs;
}

Router::Router(const arch::RoutingGraph& graph, RouterOptions options)
    : graph_(graph), options_(options) {}

RouteResult Router::route(
    const std::vector<std::vector<RouteNet>>& nets_per_context) const {
  const std::size_t num_contexts = graph_.spec().num_contexts;
  MCFPGA_REQUIRE(nets_per_context.size() == num_contexts,
                 "net list must cover every context");

  RouteResult result;
  result.nets.resize(num_contexts);
  result.switch_patterns.assign(
      graph_.num_switches(),
      config::ContextPattern(num_contexts, false));
  result.success = true;

  for (std::size_t c = 0; c < num_contexts; ++c) {
    const auto& nets = nets_per_context[c];
    ContextState st;
    st.occupancy.assign(graph_.num_nodes(), 0);
    st.history.assign(graph_.num_nodes(), 0.0);

    // Current routing per net: tree nodes + per-sink paths.
    std::vector<RoutedNet> routed(nets.size());
    std::vector<std::vector<NodeId>> tree_nodes(nets.size());

    const auto unroute = [&](std::size_t i) {
      for (const NodeId n : tree_nodes[i]) {
        --st.occupancy[static_cast<std::size_t>(n)];
      }
      tree_nodes[i].clear();
      routed[i].paths.clear();
    };

    const auto node_cost = [&](NodeId n) {
      const std::size_t idx = static_cast<std::size_t>(n);
      const double congestion =
          1.0 + st.history[idx] +
          st.present_factor * static_cast<double>(st.occupancy[idx]);
      return base_cost(graph_, n, options_.prefer_double_length) * congestion;
    };

    bool converged = false;
    std::size_t iter = 0;
    for (; iter < options_.max_iterations; ++iter) {
      for (std::size_t i = 0; i < nets.size(); ++i) {
        const RouteNet& net = nets[i];
        if (!tree_nodes[i].empty()) {
          unroute(i);
        }
        routed[i].name = net.name;
        routed[i].source = net.source;

        // Grow the routing tree sink by sink (Prim-style maze expansion).
        std::vector<NodeId> tree = {net.source};
        std::vector<double> dist(graph_.num_nodes(), kInf);
        std::vector<EdgeId> prev(graph_.num_nodes(), -1);

        for (const NodeId sink : net.sinks) {
          std::priority_queue<QueueItem, std::vector<QueueItem>,
                              std::greater<QueueItem>>
              pq;
          std::fill(dist.begin(), dist.end(), kInf);
          std::fill(prev.begin(), prev.end(), -1);
          for (const NodeId t : tree) {
            dist[static_cast<std::size_t>(t)] = 0.0;
            pq.push(QueueItem{0.0, t});
          }
          bool found = false;
          while (!pq.empty()) {
            const QueueItem item = pq.top();
            pq.pop();
            const std::size_t u = static_cast<std::size_t>(item.node);
            if (item.cost > dist[u]) {
              continue;
            }
            if (item.node == sink) {
              found = true;
              break;
            }
            // Pins and pads are terminals: do not route THROUGH them.
            const auto& un = graph_.node(item.node);
            if (un.kind != NodeKind::kWire && item.cost != 0.0) {
              continue;
            }
            for (const EdgeId e : graph_.fanout(item.node)) {
              const auto& edge = graph_.edge(e);
              const NodeId v = edge.to;
              const auto& vn = graph_.node(v);
              // Only the target sink may be entered among non-wire nodes.
              if (vn.kind != NodeKind::kWire && v != sink) {
                continue;
              }
              const double nd = item.cost + node_cost(v);
              if (nd < dist[static_cast<std::size_t>(v)]) {
                dist[static_cast<std::size_t>(v)] = nd;
                prev[static_cast<std::size_t>(v)] = e;
                pq.push(QueueItem{nd, v});
              }
            }
          }
          if (!found) {
            throw FlowError("router: no physical path from " +
                            graph_.node(net.source).name + " to " +
                            graph_.node(sink).name);
          }
          // Back-trace; add new nodes to the tree.
          RoutedPath path;
          path.sink = sink;
          NodeId cur = sink;
          while (prev[static_cast<std::size_t>(cur)] != -1) {
            const EdgeId e = prev[static_cast<std::size_t>(cur)];
            path.edges.push_back(e);
            if (graph_.rr_switch(graph_.edge(e).sw).owner ==
                SwitchOwner::kDiamond) {
              ++path.diamond_count;
            }
            cur = graph_.edge(e).from;
          }
          std::reverse(path.edges.begin(), path.edges.end());
          for (const EdgeId e : path.edges) {
            const NodeId v = graph_.edge(e).to;
            if (std::find(tree.begin(), tree.end(), v) == tree.end()) {
              tree.push_back(v);
            }
          }
          routed[i].paths.push_back(std::move(path));
        }

        tree_nodes[i] = tree;
        for (const NodeId n : tree) {
          ++st.occupancy[static_cast<std::size_t>(n)];
        }
      }

      // Congestion check: wires may carry one net per context; source pins
      // are naturally exclusive; sink pins may be reached by one net only.
      bool overused = false;
      for (std::size_t n = 0; n < graph_.num_nodes(); ++n) {
        if (st.occupancy[n] > 1) {
          overused = true;
          st.history[n] += options_.history_increment *
                           static_cast<double>(st.occupancy[n] - 1);
        }
      }
      if (!overused) {
        converged = true;
        break;
      }
      st.present_factor *= options_.present_factor_growth;
    }

    result.iterations = std::max(result.iterations, iter + 1);
    if (!converged) {
      result.success = false;
    }

    // Commit switch patterns for this context.
    for (const auto& net : routed) {
      for (const auto& path : net.paths) {
        for (const EdgeId e : path.edges) {
          result.switch_patterns[static_cast<std::size_t>(
                                     graph_.edge(e).sw)]
              .set_value(c, true);
        }
      }
    }
    result.nets[c] = std::move(routed);
  }
  return result;
}

}  // namespace mcfpga::route
