#include "route/router.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "route/router_core.hpp"
#include "route/schedule.hpp"

namespace mcfpga::route {

namespace {

using arch::EdgeId;
using arch::NodeId;

}  // namespace

void RouteHistory::prepare(std::size_t num_contexts, std::size_t num_nodes) {
  per_context.resize(num_contexts);
  for (auto& h : per_context) {
    if (!h.empty() && h.size() != num_nodes) {
      // Recorded on a different routing graph: stale per-node state, not
      // a seed.  Clear instead of letting the core silently ignore it (or
      // worse, a future resize alias half of it onto the wrong nodes).
      h.clear();
    }
  }
}

std::size_t RouteResult::critical_switches(std::size_t context) const {
  std::size_t worst = 0;
  for (const auto& net : nets[context]) {
    for (const auto& path : net.paths) {
      worst = std::max(worst, path.switch_count());
    }
  }
  return worst;
}

config::Bitstream RouteResult::to_bitstream(
    const arch::RoutingGraph& graph) const {
  const std::size_t n =
      switch_patterns.empty() ? 0 : switch_patterns[0].num_contexts();
  config::Bitstream bs(n == 0 ? 2 : n);
  for (std::size_t s = 0; s < switch_patterns.size(); ++s) {
    bs.add_row(graph.rr_switch(static_cast<arch::SwitchId>(s)).name,
               config::ResourceKind::kRoutingSwitch, switch_patterns[s]);
  }
  return bs;
}

void RouterOptions::validate() const {
  MCFPGA_REQUIRE(max_iterations > 0, "router needs at least one iteration");
  MCFPGA_REQUIRE(present_factor_growth > 0.0,
                 "present_factor_growth must be positive");
  MCFPGA_REQUIRE(history_increment >= 0.0,
                 "history_increment must be non-negative");
  MCFPGA_REQUIRE(criticality_exponent_schedule.start > 0.0,
                 "criticality exponent schedule must start positive");
  MCFPGA_REQUIRE(criticality_exponent_schedule.step >= 0.0,
                 "criticality exponent schedule must be non-decreasing");
  MCFPGA_REQUIRE(
      criticality_exponent_schedule.max >= criticality_exponent_schedule.start,
      "criticality exponent ceiling must be at least the start value");
  MCFPGA_REQUIRE(max_criticality >= 0.0 && max_criticality < 1.0,
                 "max_criticality must lie in [0, 1)");
  MCFPGA_REQUIRE(cross_context_rounds >= 1,
                 "cross-context negotiation needs at least one round");
  MCFPGA_REQUIRE(cross_context_pressure_weight >= 0.0,
                 "cross_context_pressure_weight must be non-negative");
  MCFPGA_REQUIRE(pressure_ramp >= 0.0, "pressure_ramp must be non-negative");
  MCFPGA_REQUIRE(interleave_waves >= 1,
                 "interleaved scheduling needs at least one wave");
  MCFPGA_REQUIRE(interleave_crit_quantum > 0.0 &&
                     interleave_crit_quantum <= 1.0,
                 "interleave_crit_quantum must lie in (0, 1]");
  MCFPGA_REQUIRE(speculation_window >= 1,
                 "speculative drain needs a window of at least one net");
  MCFPGA_REQUIRE(bucket_quantum > 0.0, "bucket_quantum must be positive");
  MCFPGA_REQUIRE(bucket_span >= 2,
                 "bucket calendar needs at least two buckets");
}

std::vector<std::size_t> cross_context_conflicts(
    const std::vector<std::vector<std::uint8_t>>& usage) {
  const std::size_t num_contexts = usage.size();
  const std::size_t num_nodes = num_contexts == 0 ? 0 : usage[0].size();
  std::vector<std::uint16_t> count(num_nodes, 0);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    for (std::size_t n = 0; n < num_nodes; ++n) {
      count[n] = static_cast<std::uint16_t>(count[n] + (usage[c][n] != 0));
    }
  }
  std::vector<std::size_t> conflicts(num_contexts, 0);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (usage[c][n] != 0 && count[n] >= 2) {
        ++conflicts[c];
      }
    }
  }
  return conflicts;
}

std::vector<std::size_t> cross_context_conflicts(
    const arch::RoutingGraph& graph,
    const std::vector<std::vector<RoutedNet>>& nets_per_context) {
  const std::size_t num_nodes = graph.num_nodes();
  const std::size_t num_contexts = nets_per_context.size();
  // Rebuild the per-context wire-usage bitmaps from the routed trees
  // (bitmaps deduplicate naturally: a node may sit on many paths of one
  // tree) and delegate to the one true conflict count.
  std::vector<std::vector<std::uint8_t>> usage(
      num_contexts, std::vector<std::uint8_t>(num_nodes, 0));
  for (std::size_t c = 0; c < num_contexts; ++c) {
    for (const auto& net : nets_per_context[c]) {
      for (const auto& path : net.paths) {
        for (const EdgeId e : path.edges) {
          const NodeId to = graph.edge(e).to;
          if (graph.node(to).kind == arch::NodeKind::kWire) {
            usage[c][static_cast<std::size_t>(to)] = 1;
          }
        }
      }
    }
  }
  return cross_context_conflicts(usage);
}

Router::Router(const arch::RoutingGraph& graph, RouterOptions options)
    : graph_(graph), options_(options) {
  options_.validate();
}

RouteResult Router::route(
    const std::vector<std::vector<RouteNet>>& nets_per_context,
    const std::vector<timing::ContextTimingSpec>* timing,
    RouteHistory* history, const std::vector<double>* context_criticality,
    CorePool* pool) const {
  const std::size_t num_contexts = graph_.spec().num_contexts;
  MCFPGA_REQUIRE(nets_per_context.size() == num_contexts,
                 "net list must cover every context");
  MCFPGA_REQUIRE(timing == nullptr || timing->size() == num_contexts,
                 "timing specs must cover every context");
  MCFPGA_REQUIRE(
      context_criticality == nullptr ||
          context_criticality->size() == num_contexts,
      "context criticalities must cover every context");
  if (history != nullptr) {
    history->prepare(num_contexts, graph_.num_nodes());
  }

  if (options_.cross_context_mode != CrossContextMode::kOff) {
    const ContextScheduler scheduler(graph_, options_);
    return scheduler.route(nets_per_context, timing, history,
                           context_criticality, pool);
  }

  std::vector<RouterCore::ContextResult> per_context(num_contexts);
  std::vector<std::exception_ptr> errors(num_contexts);

  const std::size_t workers =
      effective_threads(options_.num_threads, num_contexts);
  // One RouterCore (with its arena-backed scratch) per worker thread,
  // drawn from the caller's pool when it has one so repeated calls reuse
  // warm scratch.  Slots are claimed first-come — cores are
  // interchangeable (route_pass fully resets per-pass state), so the
  // result does not depend on which thread grabs which slot.
  CorePool local_pool;
  CorePool& cores = pool != nullptr ? *pool : local_pool;
  cores.prepare(workers, graph_, options_);
  std::atomic<std::size_t> next_slot{0};
  parallel_for_index(num_contexts, workers, [&]() {
    RouterCore* core = &cores.core(next_slot.fetch_add(1));
    return [&, core](std::size_t c) {
      try {
        per_context[c] = core->route_context(
            nets_per_context[c], timing ? &(*timing)[c] : nullptr,
            history ? &history->per_context[c] : nullptr);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    };
  });
  // Re-raise in context order (matches what serial routing would hit
  // first).
  for (std::size_t c = 0; c < num_contexts; ++c) {
    if (errors[c]) {
      std::rethrow_exception(errors[c]);
    }
  }

  // Deterministic merge: contexts in order, independent of worker timing.
  return merge_context_results(graph_, std::move(per_context));
}

}  // namespace mcfpga::route
