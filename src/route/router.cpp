#include "route/router.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <system_error>
#include <thread>

#include "common/error.hpp"
#include "route/router_core.hpp"

namespace mcfpga::route {

namespace {

using arch::EdgeId;

/// Effective worker count: never more than the context count, at least one.
std::size_t effective_threads(const RouterOptions& options,
                              std::size_t num_contexts) {
  std::size_t n = options.num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) {
      n = 1;
    }
  }
  return std::max<std::size_t>(1, std::min(n, num_contexts));
}

}  // namespace

std::size_t RouteResult::critical_switches(std::size_t context) const {
  std::size_t worst = 0;
  for (const auto& net : nets[context]) {
    for (const auto& path : net.paths) {
      worst = std::max(worst, path.switch_count());
    }
  }
  return worst;
}

config::Bitstream RouteResult::to_bitstream(
    const arch::RoutingGraph& graph) const {
  const std::size_t n =
      switch_patterns.empty() ? 0 : switch_patterns[0].num_contexts();
  config::Bitstream bs(n == 0 ? 2 : n);
  for (std::size_t s = 0; s < switch_patterns.size(); ++s) {
    bs.add_row(graph.rr_switch(static_cast<arch::SwitchId>(s)).name,
               config::ResourceKind::kRoutingSwitch, switch_patterns[s]);
  }
  return bs;
}

Router::Router(const arch::RoutingGraph& graph, RouterOptions options)
    : graph_(graph), options_(options) {}

RouteResult Router::route(
    const std::vector<std::vector<RouteNet>>& nets_per_context) const {
  const std::size_t num_contexts = graph_.spec().num_contexts;
  MCFPGA_REQUIRE(nets_per_context.size() == num_contexts,
                 "net list must cover every context");

  std::vector<RouterCore::ContextResult> per_context(num_contexts);
  std::vector<std::exception_ptr> errors(num_contexts);

  const std::size_t workers = effective_threads(options_, num_contexts);
  if (workers <= 1) {
    RouterCore core(graph_, options_);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      per_context[c] = core.route_context(nets_per_context[c]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto work = [&]() {
      RouterCore core(graph_, options_);
      for (;;) {
        const std::size_t c = next.fetch_add(1);
        if (c >= num_contexts) {
          break;
        }
        try {
          per_context[c] = core.route_context(nets_per_context[c]);
        } catch (...) {
          errors[c] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      try {
        pool.emplace_back(work);
      } catch (const std::system_error&) {
        // Thread creation failed (resource exhaustion).  The shared queue
        // still drains fully on the caller + already-started workers, so
        // degrade instead of unwinding past joinable threads.
        break;
      }
    }
    work();
    for (auto& t : pool) {
      t.join();
    }
    // Re-raise in context order (matches what serial routing would hit
    // first).
    for (std::size_t c = 0; c < num_contexts; ++c) {
      if (errors[c]) {
        std::rethrow_exception(errors[c]);
      }
    }
  }

  // Deterministic merge: contexts in order, independent of worker timing.
  RouteResult result;
  result.success = true;
  result.nets.resize(num_contexts);
  result.context_summary.resize(num_contexts);
  result.switch_patterns.assign(graph_.num_switches(),
                                config::ContextPattern(num_contexts, false));
  for (std::size_t c = 0; c < num_contexts; ++c) {
    RouterCore::ContextResult& ctx = per_context[c];
    result.iterations = std::max(result.iterations, ctx.iterations);
    if (!ctx.converged) {
      result.success = false;
    }
    for (const auto& net : ctx.nets) {
      for (const auto& path : net.paths) {
        for (const EdgeId e : path.edges) {
          result.switch_patterns[static_cast<std::size_t>(graph_.edge(e).sw)]
              .set_value(c, true);
        }
      }
    }
    result.context_summary[c].nets = ctx.nets.size();
    result.context_summary[c].wire_nodes_used = ctx.wire_nodes_used;
    result.context_summary[c].switches_crossed = ctx.switches_crossed;
    result.nets[c] = std::move(ctx.nets);
  }
  return result;
}

}  // namespace mcfpga::route
