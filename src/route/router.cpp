#include "route/router.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "route/router_core.hpp"

namespace mcfpga::route {

namespace {

using arch::EdgeId;

}  // namespace

std::size_t RouteResult::critical_switches(std::size_t context) const {
  std::size_t worst = 0;
  for (const auto& net : nets[context]) {
    for (const auto& path : net.paths) {
      worst = std::max(worst, path.switch_count());
    }
  }
  return worst;
}

config::Bitstream RouteResult::to_bitstream(
    const arch::RoutingGraph& graph) const {
  const std::size_t n =
      switch_patterns.empty() ? 0 : switch_patterns[0].num_contexts();
  config::Bitstream bs(n == 0 ? 2 : n);
  for (std::size_t s = 0; s < switch_patterns.size(); ++s) {
    bs.add_row(graph.rr_switch(static_cast<arch::SwitchId>(s)).name,
               config::ResourceKind::kRoutingSwitch, switch_patterns[s]);
  }
  return bs;
}

void RouterOptions::validate() const {
  MCFPGA_REQUIRE(max_iterations > 0, "router needs at least one iteration");
  MCFPGA_REQUIRE(present_factor_growth > 0.0,
                 "present_factor_growth must be positive");
  MCFPGA_REQUIRE(history_increment >= 0.0,
                 "history_increment must be non-negative");
  MCFPGA_REQUIRE(criticality_exponent_schedule.start > 0.0,
                 "criticality exponent schedule must start positive");
  MCFPGA_REQUIRE(criticality_exponent_schedule.step >= 0.0,
                 "criticality exponent schedule must be non-decreasing");
  MCFPGA_REQUIRE(
      criticality_exponent_schedule.max >= criticality_exponent_schedule.start,
      "criticality exponent ceiling must be at least the start value");
  MCFPGA_REQUIRE(max_criticality >= 0.0 && max_criticality < 1.0,
                 "max_criticality must lie in [0, 1)");
}

Router::Router(const arch::RoutingGraph& graph, RouterOptions options)
    : graph_(graph), options_(options) {
  options_.validate();
}

RouteResult Router::route(
    const std::vector<std::vector<RouteNet>>& nets_per_context,
    const std::vector<timing::ContextTimingSpec>* timing,
    RouteHistory* history) const {
  const std::size_t num_contexts = graph_.spec().num_contexts;
  MCFPGA_REQUIRE(nets_per_context.size() == num_contexts,
                 "net list must cover every context");
  MCFPGA_REQUIRE(timing == nullptr || timing->size() == num_contexts,
                 "timing specs must cover every context");
  if (history != nullptr) {
    history->per_context.resize(num_contexts);
  }

  std::vector<RouterCore::ContextResult> per_context(num_contexts);
  std::vector<std::exception_ptr> errors(num_contexts);

  const std::size_t workers =
      effective_threads(options_.num_threads, num_contexts);
  parallel_for_index(num_contexts, workers, [&]() {
    // One RouterCore (with its preallocated scratch) per worker thread.
    return [&, core = RouterCore(graph_, options_)](std::size_t c) mutable {
      try {
        per_context[c] = core.route_context(
            nets_per_context[c], timing ? &(*timing)[c] : nullptr,
            history ? &history->per_context[c] : nullptr);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    };
  });
  // Re-raise in context order (matches what serial routing would hit
  // first).
  for (std::size_t c = 0; c < num_contexts; ++c) {
    if (errors[c]) {
      std::rethrow_exception(errors[c]);
    }
  }

  // Deterministic merge: contexts in order, independent of worker timing.
  RouteResult result;
  result.success = true;
  result.nets.resize(num_contexts);
  result.context_summary.resize(num_contexts);
  result.switch_patterns.assign(graph_.num_switches(),
                                config::ContextPattern(num_contexts, false));
  for (std::size_t c = 0; c < num_contexts; ++c) {
    RouterCore::ContextResult& ctx = per_context[c];
    result.iterations = std::max(result.iterations, ctx.iterations);
    if (!ctx.converged) {
      result.success = false;
    }
    for (const auto& net : ctx.nets) {
      for (const auto& path : net.paths) {
        for (const EdgeId e : path.edges) {
          result.switch_patterns[static_cast<std::size_t>(graph_.edge(e).sw)]
              .set_value(c, true);
        }
      }
    }
    result.context_summary[c].nets = ctx.nets.size();
    result.context_summary[c].wire_nodes_used = ctx.wire_nodes_used;
    result.context_summary[c].switches_crossed = ctx.switches_crossed;
    result.nets[c] = std::move(ctx.nets);
  }
  return result;
}

}  // namespace mcfpga::route
