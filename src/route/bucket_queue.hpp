// Monotone bucket ("calendar") priority queue for maze expansion.
//
// PathFinder's Dijkstra pops costs in non-decreasing order, and every
// relaxation adds a bounded, strictly positive increment — sums of small
// base costs, history increments, and criticality-scaled delay steps.
// That is Dial's regime: quantize costs onto an array of buckets of width
// `quantum`, pop from the lowest non-empty bucket, and each push/pop is
// O(1) instead of the binary heap's O(log n) compare-and-swap chain over
// scattered memory.
//
// Exactness: while quantum <= the smallest relaxation increment, every
// relaxation out of the current bucket lands in a strictly later bucket,
// so all items in the current bucket already carry their final distance
// and may be popped in any fixed order — the classic Dial argument.  The
// fixed order here is FIFO (push order), which makes the pop sequence a
// pure function of the push sequence: bucket-mode routing is deterministic
// for any worker count.  A quantum larger than the smallest increment
// degrades gracefully: a push that would land behind the cursor is clamped
// into the current bucket (never dropped), which can reorder near-equal
// costs but keeps the expansion terminating and deterministic — and the
// router's lazy-deletion stale check still discards superseded entries by
// exact cost.
//
// Range: the calendar spans `span` buckets from the current base; pushes
// beyond it go to an overflow list.  When the calendar drains, the queue
// rebases onto the smallest overflow cost and redistributes the overflow
// in insertion order (FIFO preserved), so arbitrarily large costs — deep
// upstream-delay seeds, heavily historied nodes — cost one extra pass,
// not correctness.
//
// The calendar is generic over the payload: maze expansion queues
// `arch::NodeId`s, while the interleaved cross-context scheduler queues
// packed (context, net) keys ordered by 1 - criticality.  Both rely on the
// same FIFO-within-bucket determinism argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "arch/routing_graph.hpp"
#include "common/error.hpp"

namespace mcfpga::route {

template <typename V>
class CalendarQueue {
 public:
  struct Item {
    double cost;
    V value;
  };

  /// Sizes the calendar.  Idempotent for unchanged parameters (the hot
  /// path calls it once per pass); reconfiguring clears the queue.
  void configure(double quantum, std::size_t span) {
    MCFPGA_REQUIRE(quantum > 0.0, "bucket quantum must be positive");
    MCFPGA_REQUIRE(span >= 2, "bucket calendar needs at least two buckets");
    if (quantum == quantum_ && span == buckets_.size()) {
      return;
    }
    quantum_ = quantum;
    inv_quantum_ = 1.0 / quantum;
    buckets_.assign(span, {});
    touched_.clear();
    overflow_.clear();
    base_ = 0;
    cursor_ = 0;
    pos_ = 0;
    size_ = 0;
  }

  /// Empties the queue in O(buckets touched since the last clear).
  void clear() {
    for (const std::size_t slot : touched_) {
      buckets_[slot].clear();
    }
    touched_.clear();
    overflow_.clear();
    base_ = 0;
    cursor_ = 0;
    pos_ = 0;
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(double cost, V value) {
    std::uint64_t q = quantize(cost);
    // Monotone clamp: never file an item behind the pop cursor (see the
    // header comment) — zero-cost seeds after a rebase land here too.
    const std::uint64_t floor_q = base_ + cursor_;
    if (q < floor_q) {
      q = floor_q;
    }
    place(q, Item{cost, value});
    ++size_;
  }

  Item pop() {
    MCFPGA_REQUIRE(size_ > 0, "pop from an empty bucket queue");
    for (;;) {
      while (cursor_ < buckets_.size()) {
        std::vector<Item>& bucket = buckets_[cursor_];
        if (pos_ < bucket.size()) {
          --size_;
          return bucket[pos_++];
        }
        bucket.clear();  // fully consumed; cheap to clear now
        pos_ = 0;
        ++cursor_;
      }
      rebase();  // calendar drained; only overflow items remain
    }
  }

  /// Deterministic batched multi-pop: fills `out` (cleared first) with up
  /// to `max_n` items in exactly the order that many consecutive pop()
  /// calls would return them, and returns the count.  The speculative
  /// interleaved drain claims its commit window through this, so the
  /// batch contents are a pure function of the push sequence — same FIFO
  /// argument as pop(), independent of how many workers then speculate.
  std::size_t pop_batch(std::size_t max_n, std::vector<Item>& out) {
    out.clear();
    while (out.size() < max_n && size_ > 0) {
      out.push_back(pop());
    }
    return out.size();
  }

 private:
  std::uint64_t quantize(double cost) const {
    // Costs are non-negative by construction; guard NaN/negative anyway so
    // a bad cost degrades to bucket 0 instead of undefined behavior.
    return cost > 0.0 ? static_cast<std::uint64_t>(cost * inv_quantum_) : 0;
  }

  void place(std::uint64_t q, const Item& item) {
    if (q >= base_ + buckets_.size()) {
      overflow_.push_back(item);
      return;
    }
    std::vector<Item>& bucket = buckets_[static_cast<std::size_t>(q - base_)];
    if (bucket.empty()) {
      touched_.push_back(static_cast<std::size_t>(q - base_));
    }
    bucket.push_back(item);
  }

  void rebase() {
    std::uint64_t min_q = std::numeric_limits<std::uint64_t>::max();
    for (const Item& item : overflow_) {
      min_q = std::min(min_q, quantize(item.cost));
    }
    base_ = min_q;
    cursor_ = 0;
    pos_ = 0;
    touched_.clear();  // every calendar bucket was cleared by the pop scan
    scratch_.clear();
    scratch_.swap(overflow_);
    for (const Item& item : scratch_) {  // insertion order: FIFO survives
      place(quantize(item.cost), item);
    }
  }

  double quantum_ = 0.0;
  double inv_quantum_ = 0.0;
  std::uint64_t base_ = 0;   ///< Quantized index of buckets_[0].
  std::size_t cursor_ = 0;   ///< Current bucket (pop scans forward only).
  std::size_t pos_ = 0;      ///< Next unconsumed item of the cursor bucket.
  std::size_t size_ = 0;
  std::vector<std::vector<Item>> buckets_;
  std::vector<std::size_t> touched_;  ///< Slots made non-empty since clear().
  std::vector<Item> overflow_;        ///< Quantized cost >= base_ + span.
  std::vector<Item> scratch_;         ///< Rebase staging (allocation reuse).
};

/// Maze expansion's calendar: payload is the routing-graph node.
using BucketQueue = CalendarQueue<arch::NodeId>;

}  // namespace mcfpga::route
