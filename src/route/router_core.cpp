#include "route/router_core.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/prefetch.hpp"

namespace mcfpga::route {

namespace {

using arch::EdgeId;
using arch::NodeId;
using arch::NodeKind;
using arch::SwitchOwner;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Epoch headroom: a pass can never consume this many expansions, so
/// rewinding the stamps whenever a pass STARTS above the threshold keeps
/// pooled cores (which live across thousands of passes) from ever wrapping
/// a 32-bit epoch mid-expansion.
constexpr std::uint32_t kEpochRewind = 0xF0000000u;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

/// Content signature of a timing spec: shape, delays, and every reader
/// arc.  Two specs with equal signatures levelize to the same DAG, so a
/// cached TimingEngine may serve either; the cache additionally pins the
/// spec's address, making a false positive require a respawned object at
/// the same address whose content ALSO collides — at which point the DAG
/// is the same anyway.
std::uint64_t spec_signature(const timing::ContextTimingSpec& spec) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, spec.num_nodes);
  h = fnv1a(h, std::bit_cast<std::uint64_t>(spec.se_delay));
  h = fnv1a(h, std::bit_cast<std::uint64_t>(spec.lut_delay));
  h = fnv1a(h, spec.nets.size());
  for (const auto& net : spec.nets) {
    h = fnv1a(h, net.sinks.size());
    for (const auto& sink : net.sinks) {
      h = fnv1a(h, sink.readers.size());
      for (const auto& r : sink.readers) {
        h = fnv1a(h, (static_cast<std::uint64_t>(r.from) << 32) | r.to);
        h = fnv1a(h, r.is_lut ? 1u : 0u);
      }
    }
  }
  return h;
}

}  // namespace

RouterCore::RouterCore(const arch::RoutingGraph& graph,
                       const RouterOptions& options,
                       common::ScratchArena* arena)
    : graph_(graph), options_(options), arena_(arena) {
  if (arena_ == nullptr) {
    arena_owned_ = std::make_unique<common::ScratchArena>();
    arena_ = arena_owned_.get();
  }
  arena_->reset();
  const std::size_t n = graph_.num_nodes();
  scratch_nodes_ = n;
  base_cost_ = arena_->alloc<double>(n);
  is_wire_ = arena_->alloc<std::uint8_t>(n);
  occupancy_ = arena_->alloc<int>(n);
  history_ = arena_->alloc<double>(n);
  node_cost_ = arena_->alloc<double>(n);
  nodes_ = arena_->alloc<NodeState>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node = graph_.node(static_cast<NodeId>(i));
    is_wire_[i] = node.kind == NodeKind::kWire ? 1 : 0;
    // Double-length wires cover two cells for one node, so per-distance
    // they are cheaper; pricing them at 3.5 when disabled-by-preference
    // keeps them routable but unattractive (the E5 ablation).
    if (node.kind != NodeKind::kWire) {
      base_cost_[i] = 0.5;  // pins/pads: cheap, they are endpoints
    } else if (node.length == 2) {
      base_cost_[i] = options_.prefer_double_length ? 1.0 : 3.5;
    } else {
      base_cost_[i] = 1.0;
    }
  }
  // Zeroed stamps are stale against the pre-incremented epochs (first use
  // is 1); dist/prev/depth are don't-care until stamped.
  if (n > 0) {
    std::memset(nodes_, 0, n * sizeof(NodeState));
    std::memset(occupancy_, 0, n * sizeof(int));
    std::memset(history_, 0, n * sizeof(double));
    std::memset(node_cost_, 0, n * sizeof(double));
  }
  epoch_ = 0;
  tree_epoch_ = 0;
}

void RouterCore::heap_push(double cost, NodeId value) {
  heap_.push_back(HeapItem{cost, value});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapItem& a, const HeapItem& b) {
                   return a.cost > b.cost;
                 });
}

RouterCore::HeapItem RouterCore::heap_pop() {
  MCFPGA_REQUIRE(!heap_.empty(), "pop from an empty router heap");
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapItem& a, const HeapItem& b) {
                  return a.cost > b.cost;
                });
  const HeapItem item = heap_.back();
  heap_.pop_back();
  return item;
}

double RouterCore::dist_of(std::size_t node) const {
  return nodes_[node].dist_epoch == epoch_ ? nodes_[node].dist : kInf;
}

void RouterCore::refresh_node_cost(std::size_t idx) {
  // Cross-context pressure is a present-cost term: wires claimed by
  // other (weighted by how critical) contexts look congested before this
  // context ever touches them.  Null pressure = bit-identical to the
  // independent router.  The expression and its operation order are the
  // historical inline ones, so the cache is bit-neutral.
  double congestion = 1.0 + history_[idx] +
                      present_factor_ * static_cast<double>(occupancy_[idx]);
  if (pressure_of_ != nullptr) {
    // pressure_scale_ is 1.0 outside interleaved sessions, and x * 1.0 is
    // bit-exact — the scheduler's round-based modes stay bit-identical.
    congestion += pressure_scale_ * pressure_of_[idx];
  }
  node_cost_[idx] = base_cost_[idx] * congestion;
}

template <typename Queue>
bool RouterCore::expand_to_sink(Queue& queue,
                                const std::vector<arch::NodeId>& tree,
                                arch::NodeId sink, double cong_scale,
                                double delay_term, ContextResult& result) {
  const std::vector<std::size_t>& offsets = graph_.csr_offsets();
  const std::vector<EdgeId>& csr_edges = graph_.csr_edges();
  const std::vector<NodeId>& csr_targets = graph_.csr_targets();

  ++epoch_;
  queue.clear();
  for (const NodeId t : tree) {
    const std::size_t ti = static_cast<std::size_t>(t);
    NodeState& s = nodes_[ti];
    const double seed = delay_term * static_cast<double>(s.depth);
    s.dist = seed;
    s.prev = -1;
    s.dist_epoch = epoch_;
    queue.push(seed, t);
    ++result.heap_pushes;
  }
  while (!queue.empty()) {
    const auto item = queue.pop();
    ++result.heap_pops;
    const std::size_t u = static_cast<std::size_t>(item.value);
    if (item.cost > dist_of(u)) {
      ++result.stale_pops;
      continue;
    }
    if (item.value == sink) {
      return true;
    }
    // Pins and pads are terminals: do not route THROUGH them.
    if (is_wire_[u] == 0 && item.cost != 0.0) {
      continue;
    }
    ++result.nodes_expanded;
    const std::size_t end = offsets[u + 1];
    for (std::size_t at = offsets[u]; at < end; ++at) {
      const NodeId v = csr_targets[at];
      const std::size_t vi = static_cast<std::size_t>(v);
      if (at + 1 < end) {
        // The next neighbor's cost and route record are known one step
        // early — overlap their (likely-missing) loads with this one.
        const std::size_t ni = static_cast<std::size_t>(csr_targets[at + 1]);
        MCFPGA_PREFETCH(&node_cost_[ni]);
        MCFPGA_PREFETCH(&nodes_[ni]);
      }
      // Only the target sink may be entered among non-wire nodes.
      if (is_wire_[vi] == 0 && v != sink) {
        continue;
      }
      // Interleaved sessions route exclusively: a node any peer net of
      // this context occupies is off limits (the ripped net's own nodes
      // are free — its occupancy was released before the re-route).  A
      // no-op outside sessions: the flag is only set between
      // session_begin and session_finish.
      if (session_exclusive_ && occupancy_[vi] != 0) {
        continue;
      }
      // Nodes already in the net's tree are seeds, never targets:
      // relaxing one below its upstream-delay seed would back-trace
      // a second switch into it (a double-driven wire).  With zero
      // seeds this skip is a no-op — every relaxation cost is
      // strictly positive — so congestion-mode routing is untouched.
      NodeState& sv = nodes_[vi];
      if (sv.tree_epoch == tree_epoch_) {
        continue;
      }
      const double nd = item.cost + cong_scale * node_cost_[vi] + delay_term;
      if (nd < (sv.dist_epoch == epoch_ ? sv.dist : kInf)) {
        sv.dist = nd;
        sv.prev = csr_edges[at];
        sv.dist_epoch = epoch_;
        queue.push(nd, v);
        ++result.heap_pushes;
        // The pushed node's CSR row is its expansion's first load.
        MCFPGA_PREFETCH(&csr_targets[offsets[vi]]);
      }
    }
  }
  return false;
}

RouterCore::TimingEngine& RouterCore::timing_engine(
    const timing::ContextTimingSpec& spec) {
  const std::uint64_t sig = spec_signature(spec);
  for (auto& eng : timing_cache_) {
    if (eng->spec == &spec && eng->signature == sig) {
      // Rewind to the unit-switch prior.  Incremental analyze() is
      // bit-identical to a from-scratch pass (the TimingGraph property
      // tests' oracle), so a cache hit is indistinguishable from a fresh
      // levelization — minus the levelization.
      for (std::size_t conn = 0; conn < eng->arcs.num_connections(); ++conn) {
        eng->arcs.set_connection_switches(eng->sta, conn, 1);
      }
      eng->sta.analyze();
      return *eng;
    }
  }
  // A same-address miss means the spec object was rewritten: drop the
  // stale engine rather than letting the cache grow one corpse per edit.
  std::erase_if(timing_cache_, [&](const std::unique_ptr<TimingEngine>& e) {
    return e->spec == &spec;
  });
  if (timing_cache_.size() >= 8) {
    timing_cache_.erase(timing_cache_.begin());
  }
  timing_cache_.push_back(std::make_unique<TimingEngine>(spec, sig));
  timing_cache_.back()->sta.analyze();  // logic-depth criticality prior
  return *timing_cache_.back();
}

RouterCore::ContextResult RouterCore::route_pass(
    const std::vector<RouteNet>& nets,
    const timing::ContextTimingSpec* timing, std::vector<double>* history,
    const std::vector<double>* pressure,
    std::vector<std::uint8_t>* usage_out) {
  const std::size_t num_nodes = graph_.num_nodes();
  MCFPGA_CHECK(scratch_nodes_ == num_nodes,
               "route_pass scratch must be graph-node-sized");
  MCFPGA_CHECK(!session_active_,
               "route_pass would clobber an active interleaved session");
  MCFPGA_REQUIRE(pressure == nullptr || pressure->size() == num_nodes,
                 "cross-context pressure must be graph-node-sized");
  pressure_of_ = pressure ? pressure->data() : nullptr;
  std::fill_n(occupancy_, num_nodes, 0);
  if (history != nullptr && history->size() == num_nodes) {
    // Carry-in from a previous closure-loop iteration: start negotiation
    // with the congestion lessons already learned on this context.
    std::copy(history->begin(), history->end(), history_);
  } else {
    std::fill_n(history_, num_nodes, 0.0);
  }
  present_factor_ = 0.5;

  // A pooled core lives across thousands of passes; rewind the 32-bit
  // epoch stamps long before they could wrap mid-pass.
  if (epoch_ >= kEpochRewind || tree_epoch_ >= kEpochRewind) {
    for (std::size_t i = 0; i < num_nodes; ++i) {
      nodes_[i].dist_epoch = 0;
      nodes_[i].tree_epoch = 0;
    }
    epoch_ = 0;
    tree_epoch_ = 0;
  }

  const bool bucket_mode = options_.queue_mode == QueueMode::kBucket;
  if (bucket_mode) {
    bucket_.configure(options_.bucket_quantum, options_.bucket_span);
    bucket_.clear();
  }
  BinaryQueue binary{*this};

  // Per-context incremental STA (timing-driven mode only).  The DAG's
  // topology is fixed for the whole negotiation; only switch counts — arc
  // delays — change between iterations, which is exactly the incremental
  // case TimingGraph::analyze() is built for.  The levelized engine is
  // cached across passes (timing_engine), so negotiation rounds and
  // closure iterations re-time instead of re-levelizing.
  const bool timing_driven = options_.timing_mode && timing != nullptr;
  timing::ConnectionArcs* conn_arcs = nullptr;
  timing::TimingGraph* sta = nullptr;
  if (timing_driven) {
    MCFPGA_REQUIRE(timing->nets.size() == nets.size(),
                   "timing spec must parallel the context's net list");
    for (std::size_t i = 0; i < nets.size(); ++i) {
      MCFPGA_REQUIRE(timing->nets[i].sinks.size() == nets[i].sinks.size(),
                     "timing spec sinks must parallel the net's sinks");
    }
    TimingEngine& engine = timing_engine(*timing);
    conn_arcs = &engine.arcs;
    sta = &engine.sta;
    crit_.assign(conn_arcs->num_connections(), 0.0);
  }
  // VPR-style exponent ramp: the sharpening applied to criticalities
  // grows across rip-up iterations, so early rounds spread congestion
  // while late rounds chase the critical path hard.
  const auto exponent_at = [&](std::size_t iteration) {
    const RouterOptions::CriticalityExponentSchedule& s =
        options_.criticality_exponent_schedule;
    return std::min(s.max, s.start + s.step * static_cast<double>(iteration));
  };
  const auto refresh_criticality = [&](std::size_t iteration) {
    const double exponent = exponent_at(iteration);
    for (std::size_t conn = 0; conn < crit_.size(); ++conn) {
      double c = conn_arcs->connection_criticality(*sta, conn);
      if (exponent != 1.0) {
        c = std::pow(c, exponent);
      }
      crit_[conn] = std::min(c, options_.max_criticality);
    }
  };
  if (timing_driven) {
    refresh_criticality(0);
  }

  ContextResult result;
  result.nets.resize(nets.size());
  std::vector<std::vector<NodeId>> tree_nodes(nets.size());

  const auto unroute = [&](std::size_t i) {
    for (const NodeId n : tree_nodes[i]) {
      const std::size_t ni = static_cast<std::size_t>(n);
      --occupancy_[ni];
      refresh_node_cost(ni);
    }
    tree_nodes[i].clear();
    result.nets[i].paths.clear();
  };

  bool converged = false;
  std::size_t iter = 0;
  for (; iter < options_.max_iterations; ++iter) {
    // Congestion inputs (history, present factor) changed since the last
    // iteration: rebuild the hoisted per-node cost once, then patch it on
    // the O(tree) occupancy edits below.
    for (std::size_t n = 0; n < num_nodes; ++n) {
      refresh_node_cost(n);
    }
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const RouteNet& net = nets[i];
      if (!tree_nodes[i].empty()) {
        unroute(i);
      }
      result.nets[i].name = net.name;
      result.nets[i].source = net.source;

      // Grow the routing tree sink by sink (Prim-style maze expansion).
      std::vector<NodeId>& tree = tree_nodes[i];
      tree.push_back(net.source);
      ++tree_epoch_;
      nodes_[static_cast<std::size_t>(net.source)].tree_epoch = tree_epoch_;
      nodes_[static_cast<std::size_t>(net.source)].depth = 0;

      for (std::size_t j = 0; j < net.sinks.size(); ++j) {
        const NodeId sink = net.sinks[j];
        // Timing-driven blend for this connection: every node entered is
        // one switch crossing, so the delay term is crit * se_delay per
        // expansion step.  Reused tree wire seeds the expansion at its
        // accumulated upstream delay (crit-weighted, congestion-free), so
        // branching deep in the tree is not mistaken for a zero-delay
        // start.  With timing off the scales are exactly (1, 0) and every
        // seed is 0, leaving the cost bit-identical to the pure congestion
        // router.
        double cong_scale = 1.0;
        double delay_term = 0.0;
        if (timing_driven) {
          const double c = crit_[conn_arcs->connection(i, j)];
          cong_scale = 1.0 - c;
          delay_term = c * timing->se_delay;
        }
        const bool found =
            bucket_mode ? expand_to_sink(bucket_, tree, sink, cong_scale,
                                         delay_term, result)
                        : expand_to_sink(binary, tree, sink, cong_scale,
                                         delay_term, result);
        if (!found) {
          throw FlowError("router: no physical path from " +
                          graph_.node(net.source).name + " to " +
                          graph_.node(sink).name);
        }
        // Back-trace; add new nodes to the tree.
        RoutedPath path;
        path.sink = sink;
        NodeId cur = sink;
        while (nodes_[static_cast<std::size_t>(cur)].prev != -1) {
          const EdgeId e = nodes_[static_cast<std::size_t>(cur)].prev;
          path.edges.push_back(e);
          if (graph_.rr_switch(graph_.edge(e).sw).owner ==
              SwitchOwner::kDiamond) {
            ++path.diamond_count;
          }
          cur = graph_.edge(e).from;
        }
        std::reverse(path.edges.begin(), path.edges.end());
        // Source-to-sink order guarantees every edge's from-node already
        // carries its depth (tree node or earlier path node), so new
        // nodes accumulate upstream switch counts in one pass.
        for (const EdgeId e : path.edges) {
          const NodeId v = graph_.edge(e).to;
          const std::size_t vi = static_cast<std::size_t>(v);
          if (nodes_[vi].tree_epoch != tree_epoch_) {
            nodes_[vi].tree_epoch = tree_epoch_;
            nodes_[vi].depth =
                nodes_[static_cast<std::size_t>(graph_.edge(e).from)].depth +
                1;
            tree.push_back(v);
          }
        }
        result.nets[i].paths.push_back(std::move(path));
      }

      for (const NodeId n : tree) {
        const std::size_t ni = static_cast<std::size_t>(n);
        ++occupancy_[ni];
        refresh_node_cost(ni);
      }
    }

    // Congestion check: wires may carry one net per context; source pins
    // are naturally exclusive; sink pins may be reached by one net only.
    bool overused = false;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (occupancy_[n] > 1) {
        overused = true;
        history_[n] += options_.history_increment *
                       static_cast<double>(occupancy_[n] - 1);
      }
    }
    if (!overused) {
      converged = true;
      break;
    }
    present_factor_ *= options_.present_factor_growth;

    if (timing_driven) {
      // Re-time every connection at its current switch count (incremental:
      // only changed delays propagate) and pull fresh criticalities for
      // the next rip-up round.
      for (std::size_t i = 0; i < nets.size(); ++i) {
        const auto& paths = result.nets[i].paths;
        for (std::size_t j = 0; j < paths.size(); ++j) {
          conn_arcs->set_connection_switches(
              *sta, conn_arcs->connection(i, j), paths[j].switch_count());
        }
      }
      sta->analyze();
      refresh_criticality(iter + 1);
    }
  }

  if (history != nullptr) {
    history->assign(history_, history_ + num_nodes);
  }
  if (usage_out != nullptr) {
    // Final occupancy is exactly the set of nodes the committed trees
    // hold; only wire nodes are exportable pressure (pins and pads are
    // context-local endpoints, not shared fabric).
    usage_out->assign(num_nodes, 0);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (occupancy_[n] > 0 && is_wire_[n] != 0) {
        (*usage_out)[n] = 1;
      }
    }
  }
  pressure_of_ = nullptr;
  // On convergence the loop broke at index `iter`; otherwise the loop
  // condition already advanced iter to max_iterations.
  result.iterations = converged ? iter + 1 : iter;
  result.converged = converged;
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      result.switches_crossed += path.switch_count();
      result.wire_nodes_used += path.edges.size();
    }
  }
  return result;
}

void RouterCore::session_begin(const std::vector<RouteNet>& nets,
                               const timing::ContextTimingSpec* timing,
                               const std::vector<RoutedNet>& routed,
                               const std::vector<double>* history_seed,
                               const double* pressure_total,
                               double pressure_scale) {
  const std::size_t num_nodes = graph_.num_nodes();
  MCFPGA_CHECK(scratch_nodes_ == num_nodes,
               "session scratch must be graph-node-sized");
  MCFPGA_CHECK(!session_active_, "session_begin on an armed session");
  MCFPGA_REQUIRE(routed.size() == nets.size(),
                 "adopted routing must parallel the input nets");

  session_active_ = true;
  session_exclusive_ = true;
  session_input_ = &nets;
  pressure_of_ = pressure_total;
  pressure_scale_ = pressure_scale;
  session_nets_ = routed;
  session_result_ = {};
  session_saved_paths_.clear();
  session_saved_tree_.clear();

  std::fill_n(occupancy_, num_nodes, 0);
  if (history_seed != nullptr && history_seed->size() == num_nodes) {
    // The baseline's final history prices wires consistently all session;
    // sessions never write history (exclusion forbids overuse).
    std::copy(history_seed->begin(), history_seed->end(), history_);
  } else {
    std::fill_n(history_, num_nodes, 0.0);
  }
  present_factor_ = 0.5;

  if (epoch_ >= kEpochRewind || tree_epoch_ >= kEpochRewind) {
    for (std::size_t i = 0; i < num_nodes; ++i) {
      nodes_[i].dist_epoch = 0;
      nodes_[i].tree_epoch = 0;
    }
    epoch_ = 0;
    tree_epoch_ = 0;
  }
  if (options_.queue_mode == QueueMode::kBucket) {
    bucket_.configure(options_.bucket_quantum, options_.bucket_span);
    bucket_.clear();
  }

  // Rebuild each net's tree-node set (source + every path edge target,
  // deduplicated with a tree-epoch mark) and the occupancy/owner maps the
  // exclusive expansion and the dirty-set propagation read.
  session_owner_.assign(num_nodes, -1);
  session_tree_.assign(nets.size(), {});
  for (std::size_t i = 0; i < nets.size(); ++i) {
    std::vector<NodeId>& tree = session_tree_[i];
    tree.push_back(nets[i].source);
    ++tree_epoch_;
    nodes_[static_cast<std::size_t>(nets[i].source)].tree_epoch = tree_epoch_;
    for (const RoutedPath& path : session_nets_[i].paths) {
      for (const EdgeId e : path.edges) {
        const NodeId v = graph_.edge(e).to;
        const std::size_t vi = static_cast<std::size_t>(v);
        if (nodes_[vi].tree_epoch != tree_epoch_) {
          nodes_[vi].tree_epoch = tree_epoch_;
          tree.push_back(v);
        }
      }
    }
    for (const NodeId n : tree) {
      const std::size_t ni = static_cast<std::size_t>(n);
      ++occupancy_[ni];
      if (is_wire_[ni] != 0) {
        session_owner_[ni] = static_cast<std::int32_t>(i);
      }
    }
  }
  for (std::size_t n = 0; n < num_nodes; ++n) {
    refresh_node_cost(n);
  }

  // Freeze per-connection criticalities from an STA of the ADOPTED switch
  // counts — the post-baseline timing picture orders the merged queue and
  // blends each re-route's expansion cost.  Untimed sessions treat every
  // net as fully critical (ordering falls back to push order).
  session_net_crit_.assign(nets.size(), 1.0);
  session_timing_ = nullptr;
  session_arcs_ = nullptr;
  if (options_.timing_mode && timing != nullptr) {
    MCFPGA_REQUIRE(timing->nets.size() == nets.size(),
                   "timing spec must parallel the context's net list");
    TimingEngine& engine = timing_engine(*timing);
    session_timing_ = timing;
    session_arcs_ = &engine.arcs;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const auto& paths = session_nets_[i].paths;
      MCFPGA_REQUIRE(timing->nets[i].sinks.size() == paths.size(),
                     "timing spec sinks must parallel the adopted paths");
      for (std::size_t j = 0; j < paths.size(); ++j) {
        engine.arcs.set_connection_switches(
            engine.sta, engine.arcs.connection(i, j), paths[j].switch_count());
      }
    }
    engine.sta.analyze();
    const RouterOptions::CriticalityExponentSchedule& s =
        options_.criticality_exponent_schedule;
    const double exponent = std::min(s.max, s.start);
    crit_.assign(engine.arcs.num_connections(), 0.0);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      double net_crit = 0.0;
      for (std::size_t j = 0; j < session_nets_[i].paths.size(); ++j) {
        const std::size_t conn = engine.arcs.connection(i, j);
        double c = engine.arcs.connection_criticality(engine.sta, conn);
        if (exponent != 1.0) {
          c = std::pow(c, exponent);
        }
        c = std::min(c, options_.max_criticality);
        crit_[conn] = c;
        net_crit = std::max(net_crit, c);
      }
      session_net_crit_[i] = net_crit;
    }
  }
}

void RouterCore::session_rip_net(std::size_t i,
                                 std::vector<arch::NodeId>& freed_wires) {
  MCFPGA_CHECK(session_active_, "session_rip_net without session_begin");
  freed_wires.clear();
  session_saved_index_ = i;
  session_saved_paths_ = std::move(session_nets_[i].paths);
  session_saved_tree_ = std::move(session_tree_[i]);
  session_nets_[i].paths.clear();
  session_tree_[i].clear();
  for (const NodeId n : session_saved_tree_) {
    const std::size_t ni = static_cast<std::size_t>(n);
    --occupancy_[ni];
    refresh_node_cost(ni);
    if (is_wire_[ni] != 0) {
      session_owner_[ni] = -1;
      freed_wires.push_back(n);
    }
  }
}

bool RouterCore::session_route_net(std::size_t i,
                                   std::vector<arch::NodeId>& gained_wires) {
  MCFPGA_CHECK(session_active_, "session_route_net without session_begin");
  gained_wires.clear();
  const RouteNet& net = (*session_input_)[i];
  const bool bucket_mode = options_.queue_mode == QueueMode::kBucket;
  BinaryQueue binary{*this};

  RoutedNet fresh;
  fresh.name = net.name;
  fresh.source = net.source;
  std::vector<NodeId> tree;
  tree.push_back(net.source);
  ++tree_epoch_;
  nodes_[static_cast<std::size_t>(net.source)].tree_epoch = tree_epoch_;
  nodes_[static_cast<std::size_t>(net.source)].depth = 0;

  for (std::size_t j = 0; j < net.sinks.size(); ++j) {
    const NodeId sink = net.sinks[j];
    double cong_scale = 1.0;
    double delay_term = 0.0;
    if (session_arcs_ != nullptr) {
      const double c = crit_[session_arcs_->connection(i, j)];
      cong_scale = 1.0 - c;
      delay_term = c * session_timing_->se_delay;
    }
    const bool found =
        bucket_mode ? expand_to_sink(bucket_, tree, sink, cong_scale,
                                     delay_term, session_result_)
                    : expand_to_sink(binary, tree, sink, cong_scale,
                                     delay_term, session_result_);
    if (!found) {
      // Blocked under exclusion (the peer nets hold every remaining
      // corridor).  Nothing was committed; the caller restores the old
      // tree and keeps the baseline routing for this net.
      return false;
    }
    RoutedPath path;
    path.sink = sink;
    NodeId cur = sink;
    while (nodes_[static_cast<std::size_t>(cur)].prev != -1) {
      const EdgeId e = nodes_[static_cast<std::size_t>(cur)].prev;
      path.edges.push_back(e);
      if (graph_.rr_switch(graph_.edge(e).sw).owner == SwitchOwner::kDiamond) {
        ++path.diamond_count;
      }
      cur = graph_.edge(e).from;
    }
    std::reverse(path.edges.begin(), path.edges.end());
    for (const EdgeId e : path.edges) {
      const NodeId v = graph_.edge(e).to;
      const std::size_t vi = static_cast<std::size_t>(v);
      if (nodes_[vi].tree_epoch != tree_epoch_) {
        nodes_[vi].tree_epoch = tree_epoch_;
        nodes_[vi].depth =
            nodes_[static_cast<std::size_t>(graph_.edge(e).from)].depth + 1;
        tree.push_back(v);
      }
    }
    fresh.paths.push_back(std::move(path));
  }

  for (const NodeId n : tree) {
    const std::size_t ni = static_cast<std::size_t>(n);
    ++occupancy_[ni];
    refresh_node_cost(ni);
    if (is_wire_[ni] != 0) {
      session_owner_[ni] = static_cast<std::int32_t>(i);
      gained_wires.push_back(n);
    }
  }
  session_nets_[i] = std::move(fresh);
  session_tree_[i] = std::move(tree);
  return true;
}

void RouterCore::session_restore_net(std::size_t i) {
  MCFPGA_CHECK(session_active_ && session_saved_index_ == i,
               "session_restore_net must undo the most recent rip");
  session_nets_[i].paths = std::move(session_saved_paths_);
  session_tree_[i] = std::move(session_saved_tree_);
  session_saved_paths_.clear();
  session_saved_tree_.clear();
  for (const NodeId n : session_tree_[i]) {
    const std::size_t ni = static_cast<std::size_t>(n);
    ++occupancy_[ni];
    refresh_node_cost(ni);
    if (is_wire_[ni] != 0) {
      session_owner_[ni] = static_cast<std::int32_t>(i);
    }
  }
}

void RouterCore::session_refresh_pressure(
    const std::vector<arch::NodeId>& nodes) {
  MCFPGA_CHECK(session_active_, "session_refresh_pressure without a session");
  for (const NodeId n : nodes) {
    refresh_node_cost(static_cast<std::size_t>(n));
  }
}

RouterCore::ContextResult RouterCore::session_finish() {
  MCFPGA_CHECK(session_active_, "session_finish without session_begin");
  ContextResult out = std::move(session_result_);
  session_result_ = {};
  session_active_ = false;
  session_exclusive_ = false;
  session_input_ = nullptr;
  session_timing_ = nullptr;
  session_arcs_ = nullptr;
  pressure_of_ = nullptr;
  pressure_scale_ = 1.0;
  return out;
}

template <typename Queue>
bool RouterCore::spec_expand_to_sink(Queue& queue, const RouterCore& src,
                                     const std::vector<arch::NodeId>& tree,
                                     arch::NodeId sink, double cong_scale,
                                     double delay_term, SpecResult& out) {
  const std::vector<std::size_t>& offsets = graph_.csr_offsets();
  const std::vector<EdgeId>& csr_edges = graph_.csr_edges();
  const std::vector<NodeId>& csr_targets = graph_.csr_targets();

  ++epoch_;
  queue.clear();
  for (const NodeId t : tree) {
    const std::size_t ti = static_cast<std::size_t>(t);
    NodeState& s = nodes_[ti];
    const double seed = delay_term * static_cast<double>(s.depth);
    s.dist = seed;
    s.prev = -1;
    s.dist_epoch = epoch_;
    queue.push(seed, t);
    ++out.heap_pushes;
  }
  while (!queue.empty()) {
    const auto item = queue.pop();
    ++out.heap_pops;
    const std::size_t u = static_cast<std::size_t>(item.value);
    if (item.cost > dist_of(u)) {
      ++out.stale_pops;
      continue;
    }
    if (item.value == sink) {
      return true;
    }
    if (is_wire_[u] == 0 && item.cost != 0.0) {
      continue;
    }
    ++out.nodes_expanded;
    const std::size_t end = offsets[u + 1];
    for (std::size_t at = offsets[u]; at < end; ++at) {
      const NodeId v = csr_targets[at];
      const std::size_t vi = static_cast<std::size_t>(v);
      if (at + 1 < end) {
        const std::size_t ni = static_cast<std::size_t>(csr_targets[at + 1]);
        MCFPGA_PREFETCH(&src.node_cost_[ni]);
        MCFPGA_PREFETCH(&nodes_[ni]);
      }
      if (is_wire_[vi] == 0 && v != sink) {
        continue;
      }
      // Exclusion against the SESSION's occupancy, seen through the
      // virtual rip and recorded for commit-time validation.  Sessions
      // always route exclusively, so this mirrors expand_to_sink's
      // session_exclusive_ branch unconditionally.
      const int occ =
          spec_mark_[vi] == spec_epoch_ ? spec_occ_[vi] : src.occupancy_[vi];
      if (read_mark_[vi] != spec_epoch_) {
        read_mark_[vi] = spec_epoch_;
        read_slot_[vi] = static_cast<std::uint32_t>(out.reads.size());
        out.reads.push_back(SpecRead{v, occ, 0, 0.0});
      }
      if (occ != 0) {
        continue;
      }
      NodeState& sv = nodes_[vi];
      if (sv.tree_epoch == tree_epoch_) {
        continue;
      }
      const double vc =
          spec_mark_[vi] == spec_epoch_ ? spec_cost_[vi] : src.node_cost_[vi];
      {
        SpecRead& r = out.reads[read_slot_[vi]];
        r.cost_read = 1;
        r.cost = vc;
      }
      const double nd = item.cost + cong_scale * vc + delay_term;
      if (nd < (sv.dist_epoch == epoch_ ? sv.dist : kInf)) {
        sv.dist = nd;
        sv.prev = csr_edges[at];
        sv.dist_epoch = epoch_;
        queue.push(nd, v);
        ++out.heap_pushes;
        MCFPGA_PREFETCH(&csr_targets[offsets[vi]]);
      }
    }
  }
  return false;
}

void RouterCore::speculate_route(const RouterCore& session, std::size_t i,
                                 const std::vector<SpecOverlay>& overlay,
                                 SpecResult& out) {
  const std::size_t num_nodes = graph_.num_nodes();
  MCFPGA_CHECK(&graph_ == &session.graph_,
               "speculation engine and session must share one graph");
  MCFPGA_CHECK(session.session_active_,
               "speculate_route needs an armed session");
  MCFPGA_CHECK(!session_active_,
               "a speculation engine cannot itself hold a session");
  MCFPGA_CHECK(scratch_nodes_ == num_nodes,
               "speculation scratch must be graph-node-sized");

  out.found = false;
  out.net = RoutedNet{};
  out.tree.clear();
  out.reads.clear();
  out.heap_pushes = 0;
  out.heap_pops = 0;
  out.stale_pops = 0;
  out.nodes_expanded = 0;

  if (spec_mark_.size() != num_nodes) {
    spec_mark_.assign(num_nodes, 0);
    read_mark_.assign(num_nodes, 0);
    spec_occ_.assign(num_nodes, 0);
    spec_cost_.assign(num_nodes, 0.0);
    read_slot_.assign(num_nodes, 0);
    spec_epoch_ = 0;
  }
  if (spec_epoch_ >= kEpochRewind) {
    std::fill(spec_mark_.begin(), spec_mark_.end(), 0u);
    std::fill(read_mark_.begin(), read_mark_.end(), 0u);
    spec_epoch_ = 0;
  }
  ++spec_epoch_;

  // Virtual rip: the net's own tree nodes look exactly as a real
  // session_rip_net + pressure patch-down would leave them — occupancy
  // down one, cost re-derived with refresh_node_cost's expression and
  // operation order against the post-rip pressure the scheduler computed.
  for (const SpecOverlay& o : overlay) {
    const std::size_t ni = static_cast<std::size_t>(o.node);
    const int occ = session.occupancy_[ni] - 1;
    double congestion = 1.0 + session.history_[ni] +
                        session.present_factor_ * static_cast<double>(occ);
    if (session.pressure_of_ != nullptr) {
      congestion += session.pressure_scale_ * o.pressure;
    }
    spec_mark_[ni] = spec_epoch_;
    spec_occ_[ni] = occ;
    spec_cost_[ni] = session.base_cost_[ni] * congestion;
  }

  if (epoch_ >= kEpochRewind || tree_epoch_ >= kEpochRewind) {
    for (std::size_t n = 0; n < num_nodes; ++n) {
      nodes_[n].dist_epoch = 0;
      nodes_[n].tree_epoch = 0;
    }
    epoch_ = 0;
    tree_epoch_ = 0;
  }
  const bool bucket_mode = options_.queue_mode == QueueMode::kBucket;
  if (bucket_mode) {
    bucket_.configure(options_.bucket_quantum, options_.bucket_span);
    bucket_.clear();
  }
  BinaryQueue binary{*this};

  const RouteNet& net = (*session.session_input_)[i];
  out.net.name = net.name;
  out.net.source = net.source;
  std::vector<NodeId>& tree = out.tree;
  tree.push_back(net.source);
  ++tree_epoch_;
  nodes_[static_cast<std::size_t>(net.source)].tree_epoch = tree_epoch_;
  nodes_[static_cast<std::size_t>(net.source)].depth = 0;

  for (std::size_t j = 0; j < net.sinks.size(); ++j) {
    const NodeId sink = net.sinks[j];
    double cong_scale = 1.0;
    double delay_term = 0.0;
    if (session.session_arcs_ != nullptr) {
      const double c = session.crit_[session.session_arcs_->connection(i, j)];
      cong_scale = 1.0 - c;
      delay_term = c * session.session_timing_->se_delay;
    }
    const bool found =
        bucket_mode ? spec_expand_to_sink(bucket_, session, tree, sink,
                                          cong_scale, delay_term, out)
                    : spec_expand_to_sink(binary, session, tree, sink,
                                          cong_scale, delay_term, out);
    if (!found) {
      return;  // out.found stays false; the read-set stays complete
    }
    RoutedPath path;
    path.sink = sink;
    NodeId cur = sink;
    while (nodes_[static_cast<std::size_t>(cur)].prev != -1) {
      const EdgeId e = nodes_[static_cast<std::size_t>(cur)].prev;
      path.edges.push_back(e);
      if (graph_.rr_switch(graph_.edge(e).sw).owner == SwitchOwner::kDiamond) {
        ++path.diamond_count;
      }
      cur = graph_.edge(e).from;
    }
    std::reverse(path.edges.begin(), path.edges.end());
    for (const EdgeId e : path.edges) {
      const NodeId v = graph_.edge(e).to;
      const std::size_t vi = static_cast<std::size_t>(v);
      if (nodes_[vi].tree_epoch != tree_epoch_) {
        nodes_[vi].tree_epoch = tree_epoch_;
        nodes_[vi].depth =
            nodes_[static_cast<std::size_t>(graph_.edge(e).from)].depth + 1;
        tree.push_back(v);
      }
    }
    out.net.paths.push_back(std::move(path));
  }
  out.found = true;
}

bool RouterCore::session_validate_reads(
    const std::vector<SpecRead>& reads) const {
  MCFPGA_CHECK(session_active_, "session_validate_reads without a session");
  for (const SpecRead& r : reads) {
    const std::size_t ni = static_cast<std::size_t>(r.node);
    if (occupancy_[ni] != r.occupancy) {
      return false;
    }
    if (r.cost_read != 0 && node_cost_[ni] != r.cost) {
      return false;
    }
  }
  return true;
}

void RouterCore::session_fold_spec_counters(const SpecResult& spec) {
  MCFPGA_CHECK(session_active_, "session_fold_spec_counters without a session");
  session_result_.heap_pushes += spec.heap_pushes;
  session_result_.heap_pops += spec.heap_pops;
  session_result_.stale_pops += spec.stale_pops;
  session_result_.nodes_expanded += spec.nodes_expanded;
}

void RouterCore::session_adopt_route(std::size_t i, SpecResult&& spec,
                                     std::vector<arch::NodeId>& gained_wires) {
  MCFPGA_CHECK(session_active_ && spec.found,
               "session_adopt_route needs an armed session and a found route");
  session_fold_spec_counters(spec);
  gained_wires.clear();
  for (const NodeId n : spec.tree) {
    const std::size_t ni = static_cast<std::size_t>(n);
    ++occupancy_[ni];
    refresh_node_cost(ni);
    if (is_wire_[ni] != 0) {
      session_owner_[ni] = static_cast<std::int32_t>(i);
      gained_wires.push_back(n);
    }
  }
  session_nets_[i] = std::move(spec.net);
  session_tree_[i] = std::move(spec.tree);
}

void CorePool::prepare(std::size_t count, const arch::RoutingGraph& graph,
                       const RouterOptions& options) {
  if (slots_.size() < count) {
    slots_.resize(count);
  }
  for (std::size_t s = 0; s < count; ++s) {
    Slot& slot = slots_[s];
    if (!slot.arena) {
      slot.arena = std::make_unique<common::ScratchArena>();
    }
    if (!slot.in_use) {
      slot.in_use = std::make_unique<std::atomic<bool>>(false);
    }
    MCFPGA_CHECK(!slot.in_use->load(std::memory_order_acquire),
                 "prepare would rebuild a checked-out engine");
    if (slot.core && &slot.core->graph() == &graph &&
        slot.core->options() == options) {
      continue;  // warm core, same job shape: reuse as-is
    }
    slot.core.reset();  // release before the ctor resets the arena
    slot.core = std::make_unique<RouterCore>(graph, options, slot.arena.get());
  }
}

RouterCore& CorePool::checkout(std::size_t slot) {
  MCFPGA_CHECK(slot < slots_.size() && slots_[slot].core != nullptr,
               "checkout of an unprepared pool slot");
  MCFPGA_CHECK(!slots_[slot].in_use->exchange(true, std::memory_order_acq_rel),
               "double checkout of a CorePool engine slot");
  return *slots_[slot].core;
}

void CorePool::release(std::size_t slot) {
  MCFPGA_CHECK(slot < slots_.size() && slots_[slot].core != nullptr,
               "release of an unprepared pool slot");
  MCFPGA_CHECK(slots_[slot].in_use->exchange(false, std::memory_order_acq_rel),
               "release of an engine slot that was not checked out");
}

RouteResult merge_context_results(
    const arch::RoutingGraph& graph,
    std::vector<RouterCore::ContextResult>&& per_context) {
  const std::size_t num_contexts = per_context.size();
  RouteResult result;
  result.success = true;
  result.nets.resize(num_contexts);
  result.context_summary.resize(num_contexts);
  result.switch_patterns.assign(graph.num_switches(),
                                config::ContextPattern(num_contexts, false));
  for (std::size_t c = 0; c < num_contexts; ++c) {
    RouterCore::ContextResult& ctx = per_context[c];
    result.iterations = std::max(result.iterations, ctx.iterations);
    if (!ctx.converged) {
      result.success = false;
    }
    for (const auto& net : ctx.nets) {
      for (const auto& path : net.paths) {
        for (const EdgeId e : path.edges) {
          result.switch_patterns[static_cast<std::size_t>(graph.edge(e).sw)]
              .set_value(c, true);
        }
      }
    }
    result.context_summary[c].nets = ctx.nets.size();
    result.context_summary[c].wire_nodes_used = ctx.wire_nodes_used;
    result.context_summary[c].switches_crossed = ctx.switches_crossed;
    result.context_summary[c].heap_pushes = ctx.heap_pushes;
    result.context_summary[c].heap_pops = ctx.heap_pops;
    result.context_summary[c].stale_pops = ctx.stale_pops;
    result.context_summary[c].nodes_expanded = ctx.nodes_expanded;
    result.nets[c] = std::move(ctx.nets);
  }
  const std::vector<std::size_t> conflicts =
      cross_context_conflicts(graph, result.nets);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    result.context_summary[c].cross_context_conflicts = conflicts[c];
  }
  return result;
}

}  // namespace mcfpga::route
