#include "route/router_core.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hpp"

namespace mcfpga::route {

namespace {

using arch::EdgeId;
using arch::NodeId;
using arch::NodeKind;
using arch::SwitchOwner;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

RouterCore::RouterCore(const arch::RoutingGraph& graph,
                       const RouterOptions& options)
    : graph_(graph), options_(options) {
  const std::size_t n = graph_.num_nodes();
  base_cost_.resize(n);
  is_wire_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node = graph_.node(static_cast<NodeId>(i));
    is_wire_[i] = node.kind == NodeKind::kWire ? 1 : 0;
    // Double-length wires cover two cells for one node, so per-distance
    // they are cheaper; pricing them at 3.5 when disabled-by-preference
    // keeps them routable but unattractive (the E5 ablation).
    if (node.kind != NodeKind::kWire) {
      base_cost_[i] = 0.5;  // pins/pads: cheap, they are endpoints
    } else if (node.length == 2) {
      base_cost_[i] = options_.prefer_double_length ? 1.0 : 3.5;
    } else {
      base_cost_[i] = 1.0;
    }
  }
  occupancy_.resize(n);
  history_.resize(n);
  dist_.resize(n);
  prev_.resize(n);
  dist_epoch_.assign(n, 0);
  in_tree_epoch_.assign(n, 0);
  tree_depth_.assign(n, 0);
}

void RouterCore::heap_push(double cost, NodeId node) {
  heap_.push_back(HeapItem{cost, node});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapItem& a, const HeapItem& b) {
                   return a.cost > b.cost;
                 });
}

RouterCore::HeapItem RouterCore::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapItem& a, const HeapItem& b) {
                  return a.cost > b.cost;
                });
  const HeapItem item = heap_.back();
  heap_.pop_back();
  return item;
}

double RouterCore::dist_of(std::size_t node) const {
  return dist_epoch_[node] == epoch_ ? dist_[node] : kInf;
}

RouterCore::ContextResult RouterCore::route_pass(
    const std::vector<RouteNet>& nets,
    const timing::ContextTimingSpec* timing, std::vector<double>* history,
    const std::vector<double>* pressure,
    std::vector<std::uint8_t>* usage_out) {
  const std::size_t num_nodes = graph_.num_nodes();
  MCFPGA_REQUIRE(pressure == nullptr || pressure->size() == num_nodes,
                 "cross-context pressure must be graph-node-sized");
  const double* pressure_of = pressure ? pressure->data() : nullptr;
  std::fill(occupancy_.begin(), occupancy_.end(), 0);
  if (history != nullptr && history->size() == num_nodes) {
    // Carry-in from a previous closure-loop iteration: start negotiation
    // with the congestion lessons already learned on this context.
    std::copy(history->begin(), history->end(), history_.begin());
  } else {
    std::fill(history_.begin(), history_.end(), 0.0);
  }
  double present_factor = 0.5;

  const std::vector<std::size_t>& offsets = graph_.csr_offsets();
  const std::vector<EdgeId>& csr_edges = graph_.csr_edges();
  const std::vector<NodeId>& csr_targets = graph_.csr_targets();

  // Per-context incremental STA (timing-driven mode only).  The DAG's
  // topology is fixed for the whole negotiation; only switch counts — arc
  // delays — change between iterations, which is exactly the incremental
  // case TimingGraph::analyze() is built for.
  const bool timing_driven = options_.timing_mode && timing != nullptr;
  std::optional<timing::ConnectionArcs> conn_arcs;
  std::optional<timing::TimingGraph> sta;
  std::vector<double> crit;  // flat (net, sink) -> criticality in [0, 1]
  if (timing_driven) {
    MCFPGA_REQUIRE(timing->nets.size() == nets.size(),
                   "timing spec must parallel the context's net list");
    for (std::size_t i = 0; i < nets.size(); ++i) {
      MCFPGA_REQUIRE(timing->nets[i].sinks.size() == nets[i].sinks.size(),
                     "timing spec sinks must parallel the net's sinks");
    }
    conn_arcs.emplace(*timing);
    sta.emplace(timing->num_nodes, conn_arcs->arcs());
    sta->analyze();  // unit-switch estimates: logic-depth criticality
    crit.resize(conn_arcs->num_connections());
  }
  // VPR-style exponent ramp: the sharpening applied to criticalities
  // grows across rip-up iterations, so early rounds spread congestion
  // while late rounds chase the critical path hard.
  const auto exponent_at = [&](std::size_t iteration) {
    const RouterOptions::CriticalityExponentSchedule& s =
        options_.criticality_exponent_schedule;
    return std::min(s.max, s.start + s.step * static_cast<double>(iteration));
  };
  const auto refresh_criticality = [&](std::size_t iteration) {
    const double exponent = exponent_at(iteration);
    for (std::size_t conn = 0; conn < crit.size(); ++conn) {
      double c = conn_arcs->connection_criticality(*sta, conn);
      if (exponent != 1.0) {
        c = std::pow(c, exponent);
      }
      crit[conn] = std::min(c, options_.max_criticality);
    }
  };
  if (timing_driven) {
    refresh_criticality(0);
  }

  ContextResult result;
  result.nets.resize(nets.size());
  std::vector<std::vector<NodeId>> tree_nodes(nets.size());

  const auto unroute = [&](std::size_t i) {
    for (const NodeId n : tree_nodes[i]) {
      --occupancy_[static_cast<std::size_t>(n)];
    }
    tree_nodes[i].clear();
    result.nets[i].paths.clear();
  };

  const auto node_cost = [&](std::size_t idx) {
    // Cross-context pressure is a present-cost term: wires claimed by
    // other (weighted by how critical) contexts look congested before this
    // context ever touches them.  Null pressure = bit-identical to the
    // independent router.
    double congestion = 1.0 + history_[idx] +
                        present_factor * static_cast<double>(occupancy_[idx]);
    if (pressure_of != nullptr) {
      congestion += pressure_of[idx];
    }
    return base_cost_[idx] * congestion;
  };

  bool converged = false;
  std::size_t iter = 0;
  for (; iter < options_.max_iterations; ++iter) {
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const RouteNet& net = nets[i];
      if (!tree_nodes[i].empty()) {
        unroute(i);
      }
      result.nets[i].name = net.name;
      result.nets[i].source = net.source;

      // Grow the routing tree sink by sink (Prim-style maze expansion).
      std::vector<NodeId>& tree = tree_nodes[i];
      tree.push_back(net.source);
      ++tree_epoch_;
      in_tree_epoch_[static_cast<std::size_t>(net.source)] = tree_epoch_;
      tree_depth_[static_cast<std::size_t>(net.source)] = 0;

      for (std::size_t j = 0; j < net.sinks.size(); ++j) {
        const NodeId sink = net.sinks[j];
        // Timing-driven blend for this connection: every node entered is
        // one switch crossing, so the delay term is crit * se_delay per
        // expansion step.  Reused tree wire seeds the expansion at its
        // accumulated upstream delay (crit-weighted, congestion-free), so
        // branching deep in the tree is not mistaken for a zero-delay
        // start.  With timing off the scales are exactly (1, 0) and every
        // seed is 0, leaving the cost bit-identical to the pure congestion
        // router.
        double cong_scale = 1.0;
        double delay_term = 0.0;
        if (timing_driven) {
          const double c = crit[conn_arcs->connection(i, j)];
          cong_scale = 1.0 - c;
          delay_term = c * timing->se_delay;
        }
        ++epoch_;
        heap_.clear();
        for (const NodeId t : tree) {
          const std::size_t ti = static_cast<std::size_t>(t);
          const double seed =
              delay_term * static_cast<double>(tree_depth_[ti]);
          dist_[ti] = seed;
          prev_[ti] = -1;
          dist_epoch_[ti] = epoch_;
          heap_push(seed, t);
        }
        bool found = false;
        while (!heap_.empty()) {
          const HeapItem item = heap_pop();
          const std::size_t u = static_cast<std::size_t>(item.node);
          if (item.cost > dist_of(u)) {
            continue;
          }
          if (item.node == sink) {
            found = true;
            break;
          }
          // Pins and pads are terminals: do not route THROUGH them.
          if (is_wire_[u] == 0 && item.cost != 0.0) {
            continue;
          }
          const std::size_t end = offsets[u + 1];
          for (std::size_t at = offsets[u]; at < end; ++at) {
            const NodeId v = csr_targets[at];
            const std::size_t vi = static_cast<std::size_t>(v);
            // Only the target sink may be entered among non-wire nodes.
            if (is_wire_[vi] == 0 && v != sink) {
              continue;
            }
            // Nodes already in the net's tree are seeds, never targets:
            // relaxing one below its upstream-delay seed would back-trace
            // a second switch into it (a double-driven wire).  With zero
            // seeds this skip is a no-op — every relaxation cost is
            // strictly positive — so congestion-mode routing is untouched.
            if (in_tree_epoch_[vi] == tree_epoch_) {
              continue;
            }
            const double nd =
                item.cost + cong_scale * node_cost(vi) + delay_term;
            if (nd < dist_of(vi)) {
              dist_[vi] = nd;
              prev_[vi] = csr_edges[at];
              dist_epoch_[vi] = epoch_;
              heap_push(nd, v);
            }
          }
        }
        if (!found) {
          throw FlowError("router: no physical path from " +
                          graph_.node(net.source).name + " to " +
                          graph_.node(sink).name);
        }
        // Back-trace; add new nodes to the tree.
        RoutedPath path;
        path.sink = sink;
        NodeId cur = sink;
        while (prev_[static_cast<std::size_t>(cur)] != -1) {
          const EdgeId e = prev_[static_cast<std::size_t>(cur)];
          path.edges.push_back(e);
          if (graph_.rr_switch(graph_.edge(e).sw).owner ==
              SwitchOwner::kDiamond) {
            ++path.diamond_count;
          }
          cur = graph_.edge(e).from;
        }
        std::reverse(path.edges.begin(), path.edges.end());
        // Source-to-sink order guarantees every edge's from-node already
        // carries its depth (tree node or earlier path node), so new
        // nodes accumulate upstream switch counts in one pass.
        for (const EdgeId e : path.edges) {
          const NodeId v = graph_.edge(e).to;
          const std::size_t vi = static_cast<std::size_t>(v);
          if (in_tree_epoch_[vi] != tree_epoch_) {
            in_tree_epoch_[vi] = tree_epoch_;
            tree_depth_[vi] =
                tree_depth_[static_cast<std::size_t>(graph_.edge(e).from)] + 1;
            tree.push_back(v);
          }
        }
        result.nets[i].paths.push_back(std::move(path));
      }

      for (const NodeId n : tree) {
        ++occupancy_[static_cast<std::size_t>(n)];
      }
    }

    // Congestion check: wires may carry one net per context; source pins
    // are naturally exclusive; sink pins may be reached by one net only.
    bool overused = false;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (occupancy_[n] > 1) {
        overused = true;
        history_[n] += options_.history_increment *
                       static_cast<double>(occupancy_[n] - 1);
      }
    }
    if (!overused) {
      converged = true;
      break;
    }
    present_factor *= options_.present_factor_growth;

    if (timing_driven) {
      // Re-time every connection at its current switch count (incremental:
      // only changed delays propagate) and pull fresh criticalities for
      // the next rip-up round.
      for (std::size_t i = 0; i < nets.size(); ++i) {
        const auto& paths = result.nets[i].paths;
        for (std::size_t j = 0; j < paths.size(); ++j) {
          conn_arcs->set_connection_switches(
              *sta, conn_arcs->connection(i, j), paths[j].switch_count());
        }
      }
      sta->analyze();
      refresh_criticality(iter + 1);
    }
  }

  if (history != nullptr) {
    *history = history_;
  }
  if (usage_out != nullptr) {
    // Final occupancy is exactly the set of nodes the committed trees
    // hold; only wire nodes are exportable pressure (pins and pads are
    // context-local endpoints, not shared fabric).
    usage_out->assign(num_nodes, 0);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (occupancy_[n] > 0 && is_wire_[n] != 0) {
        (*usage_out)[n] = 1;
      }
    }
  }
  // On convergence the loop broke at index `iter`; otherwise the loop
  // condition already advanced iter to max_iterations.
  result.iterations = converged ? iter + 1 : iter;
  result.converged = converged;
  for (const auto& net : result.nets) {
    for (const auto& path : net.paths) {
      result.switches_crossed += path.switch_count();
      result.wire_nodes_used += path.edges.size();
    }
  }
  return result;
}

RouteResult merge_context_results(
    const arch::RoutingGraph& graph,
    std::vector<RouterCore::ContextResult>&& per_context) {
  const std::size_t num_contexts = per_context.size();
  RouteResult result;
  result.success = true;
  result.nets.resize(num_contexts);
  result.context_summary.resize(num_contexts);
  result.switch_patterns.assign(graph.num_switches(),
                                config::ContextPattern(num_contexts, false));
  for (std::size_t c = 0; c < num_contexts; ++c) {
    RouterCore::ContextResult& ctx = per_context[c];
    result.iterations = std::max(result.iterations, ctx.iterations);
    if (!ctx.converged) {
      result.success = false;
    }
    for (const auto& net : ctx.nets) {
      for (const auto& path : net.paths) {
        for (const EdgeId e : path.edges) {
          result.switch_patterns[static_cast<std::size_t>(graph.edge(e).sw)]
              .set_value(c, true);
        }
      }
    }
    result.context_summary[c].nets = ctx.nets.size();
    result.context_summary[c].wire_nodes_used = ctx.wire_nodes_used;
    result.context_summary[c].switches_crossed = ctx.switches_crossed;
    result.nets[c] = std::move(ctx.nets);
  }
  const std::vector<std::size_t> conflicts =
      cross_context_conflicts(graph, result.nets);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    result.context_summary[c].cross_context_conflicts = conflicts[c];
  }
  return result;
}

}  // namespace mcfpga::route
