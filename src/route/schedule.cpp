#include "route/schedule.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "route/router_core.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::route {

namespace {

/// Everything a "keep best round" restore needs: the per-context results
/// and the PathFinder history as it stood right after that round.
struct Snapshot {
  std::vector<RouterCore::ContextResult> results;
  std::vector<std::vector<double>> history;
};

/// Round quality, compared lexicographically: first the timing metric
/// (worst per-context STA critical path when specs are available, worst
/// per-connection switch count otherwise), then total cross-context
/// conflicts.  Ties keep the earlier round.
struct Score {
  double primary = 0.0;
  std::size_t conflicts = 0;

  bool better_than(const Score& o) const {
    if (primary != o.primary) {
      return primary < o.primary;
    }
    return conflicts < o.conflicts;
  }
};

}  // namespace

ContextScheduler::ContextScheduler(const arch::RoutingGraph& graph,
                                   const RouterOptions& options)
    : graph_(graph), options_(options) {}

RouteResult ContextScheduler::route(
    const std::vector<std::vector<RouteNet>>& nets_per_context,
    const std::vector<timing::ContextTimingSpec>* timing,
    RouteHistory* history, const std::vector<double>* context_criticality,
    CorePool* pool) const {
  using clock = std::chrono::steady_clock;
  const std::size_t num_contexts = nets_per_context.size();
  const std::size_t num_nodes = graph_.num_nodes();

  // Per-worker engines, persistent across rounds (and across calls when
  // the caller passed a pool): every round reuses the same arena scratch
  // and cached timing DAGs.  Slot 0 doubles as the claim pass's engine.
  const std::size_t workers =
      effective_threads(options_.num_threads, num_contexts);
  CorePool local_pool;
  CorePool& cores = pool != nullptr ? *pool : local_pool;
  cores.prepare(std::max<std::size_t>(workers, 1), graph_, options_);

  // Effective pressure weight of one negotiation round: the flat weight,
  // ramped up round by round when pressure_ramp is set (ramp 0 multiplies
  // by exactly 1.0 — bit-identical to the historical flat weight).
  const auto pressure_weight_at = [&](std::size_t round) {
    return options_.cross_context_pressure_weight *
           (1.0 + options_.pressure_ramp * static_cast<double>(round - 1));
  };

  // Per-context criticalities in [0, 1]; null = all equally critical, so
  // the claim order degenerates to context order and every context
  // exports full-strength pressure.
  std::vector<double> crit(num_contexts, 1.0);
  if (context_criticality != nullptr) {
    for (std::size_t c = 0; c < num_contexts; ++c) {
      crit[c] = std::clamp((*context_criticality)[c], 0.0, 1.0);
    }
  }
  // Claim order: descending criticality, ties toward the lower index
  // (stable), so the order is deterministic for equal criticalities.
  std::vector<std::size_t> order(num_contexts);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return crit[a] > crit[b];
  });

  // Per-round STA scoring state (specs available => exact critical paths;
  // otherwise rounds are scored by worst switch count).  The DAG topology
  // is fixed across rounds, so one TimingGraph per context re-analyzes
  // incrementally.
  const bool score_by_sta = timing != nullptr;
  std::vector<timing::ConnectionArcs> arcs;
  std::vector<timing::TimingGraph> sta;
  if (score_by_sta) {
    arcs.reserve(num_contexts);
    sta.reserve(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      const timing::ContextTimingSpec& spec = (*timing)[c];
      MCFPGA_REQUIRE(spec.nets.size() == nets_per_context[c].size(),
                     "timing spec must parallel the context's net list");
      for (std::size_t i = 0; i < spec.nets.size(); ++i) {
        MCFPGA_REQUIRE(
            spec.nets[i].sinks.size() == nets_per_context[c][i].sinks.size(),
            "timing spec sinks must parallel the net's sinks");
      }
      arcs.emplace_back(spec);
      sta.emplace_back(spec.num_nodes, arcs.back().arcs());
    }
  }

  // Negotiation state: per-context PathFinder history carried across
  // rounds (seeded from the caller's carry-in when present) and the wire
  // usage each context exported after its latest pass.
  std::vector<std::vector<double>> hist(num_contexts);
  if (history != nullptr) {
    hist = history->per_context;  // prepare()d: entries empty or node-sized
  }
  std::vector<std::vector<std::uint8_t>> usage(num_contexts);
  std::vector<RouterCore::ContextResult> current(num_contexts);

  // One parallel round: every context re-routes against `pressure`
  // frozen before the round started (null on the round-0 baseline).
  // Exceptions re-raise in context order, like the independent router.
  const auto run_parallel_round =
      [&](const std::vector<std::vector<double>>* pressure) {
        std::vector<std::exception_ptr> errors(num_contexts);
        std::atomic<std::size_t> next_slot{0};
        parallel_for_index(num_contexts, workers, [&]() {
          // Pool slots are interchangeable (route_pass fully resets
          // per-pass state), so first-come claiming cannot perturb the
          // result.
          RouterCore* core = &cores.core(next_slot.fetch_add(1));
          return [&, core](std::size_t c) {
            try {
              current[c] = core->route_pass(
                  nets_per_context[c], timing ? &(*timing)[c] : nullptr,
                  &hist[c], pressure ? &(*pressure)[c] : nullptr, &usage[c]);
            } catch (...) {
              errors[c] = std::current_exception();
            }
          };
        });
        for (std::size_t c = 0; c < num_contexts; ++c) {
          if (errors[c]) {
            std::rethrow_exception(errors[c]);
          }
        }
      };

  // The claim pass: sequential in criticality order; the context at
  // position k sees the accumulated crit-weighted usage of positions
  // 0..k-1 ONLY — critical contexts claim wires first, everyone after
  // them detours around the claims.
  const auto run_claim_round = [&]() {
    RouterCore& core = cores.core(0);
    const double weight = pressure_weight_at(1);
    std::vector<double> accum(num_nodes, 0.0);
    std::vector<double> pressure(num_nodes, 0.0);
    for (const std::size_t c : order) {
      for (std::size_t n = 0; n < num_nodes; ++n) {
        pressure[n] = weight * accum[n];
      }
      current[c] =
          core.route_pass(nets_per_context[c],
                          timing ? &(*timing)[c] : nullptr, &hist[c],
                          &pressure, &usage[c]);
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (usage[c][n] != 0) {
          accum[n] += crit[c];
        }
      }
    }
  };

  // Jacobi pressure for rounds >= 2: context c sees every peer's usage,
  // weighted by the EXPORTING context's criticality and the round's ramped
  // weight.  Folded in context order, so the map is identical for any
  // worker count.
  const auto build_jacobi_pressure = [&](std::size_t round) {
    const double weight = pressure_weight_at(round);
    std::vector<double> total(num_nodes, 0.0);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (usage[c][n] != 0) {
          total[n] += crit[c];
        }
      }
    }
    std::vector<std::vector<double>> pressure(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      pressure[c].resize(num_nodes);
      for (std::size_t n = 0; n < num_nodes; ++n) {
        const double own = usage[c][n] != 0 ? crit[c] : 0.0;
        pressure[c][n] = weight * (total[n] - own);
      }
    }
    return pressure;
  };

  const auto all_converged = [&]() {
    for (const auto& r : current) {
      if (!r.converged) {
        return false;
      }
    }
    return true;
  };

  // Scores the round just routed and appends its stats row.
  std::vector<NegotiationRoundStats> stats;
  const auto evaluate_and_record = [&](std::size_t round,
                                       const clock::time_point& start) {
    NegotiationRoundStats s;
    s.round = round;
    for (const std::size_t per_context : cross_context_conflicts(usage)) {
      s.conflicts += per_context;
    }
    for (const auto& r : current) {
      for (const auto& net : r.nets) {
        for (const auto& path : net.paths) {
          s.worst_critical_switches =
              std::max(s.worst_critical_switches, path.switch_count());
        }
      }
    }
    if (score_by_sta) {
      for (std::size_t c = 0; c < num_contexts; ++c) {
        for (std::size_t i = 0; i < current[c].nets.size(); ++i) {
          const auto& paths = current[c].nets[i].paths;
          for (std::size_t j = 0; j < paths.size(); ++j) {
            arcs[c].set_connection_switches(sta[c], arcs[c].connection(i, j),
                                            paths[j].switch_count());
          }
        }
        sta[c].analyze();
        s.worst_critical_path =
            std::max(s.worst_critical_path, sta[c].critical_path());
      }
    }
    s.seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    stats.push_back(s);
    return Score{score_by_sta
                     ? s.worst_critical_path
                     : static_cast<double>(s.worst_critical_switches),
                 s.conflicts};
  };

  // --- Round 0: the independent baseline -----------------------------------
  clock::time_point start = clock::now();
  run_parallel_round(nullptr);
  Score best_score = evaluate_and_record(0, start);
  Snapshot best{current, hist};
  std::size_t best_round = 0;

  // Negotiation only makes sense over a converged baseline with something
  // to negotiate about; pressure never helps a context that could not
  // even resolve its own congestion (it only adds cost).
  if (all_converged() && stats[0].conflicts > 0) {
    std::size_t prev_conflicts = stats[0].conflicts;
    for (std::size_t round = 1; round <= options_.cross_context_rounds;
         ++round) {
      start = clock::now();
      if (round == 1) {
        run_claim_round();
      } else {
        const std::vector<std::vector<double>> pressure =
            build_jacobi_pressure(round);
        run_parallel_round(&pressure);
      }
      const Score score = evaluate_and_record(round, start);
      const bool converged = all_converged();
      if (converged && score.better_than(best_score)) {
        best_score = score;
        best = Snapshot{current, hist};
        best_round = round;
      }
      // Stop once conflicts no longer strictly improve, hit zero (another
      // round could only tie), or a pass broke convergence — the
      // negotiation has said what it has to say.
      if (!converged || stats.back().conflicts == 0 ||
          stats.back().conflicts >= prev_conflicts) {
        break;
      }
      prev_conflicts = stats.back().conflicts;
    }
  }

  // --- Keep the best round ---------------------------------------------------
  if (history != nullptr) {
    history->per_context = std::move(best.history);
  }
  RouteResult result = merge_context_results(graph_, std::move(best.results));
  result.negotiation_rounds = stats.size();
  stats[best_round].kept = true;
  result.negotiation_stats = std::move(stats);
  return result;
}

}  // namespace mcfpga::route
