#include "route/schedule.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "route/router_core.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::route {

namespace {

/// Everything a "keep best round" restore needs: the per-context results
/// and the PathFinder history as it stood right after that round.
struct Snapshot {
  std::vector<RouterCore::ContextResult> results;
  std::vector<std::vector<double>> history;
};

/// Round quality, compared lexicographically: first the timing metric
/// (worst per-context STA critical path when specs are available, worst
/// per-connection switch count otherwise), then total cross-context
/// conflicts.  Ties keep the earlier round.
struct Score {
  double primary = 0.0;
  std::size_t conflicts = 0;

  bool better_than(const Score& o) const {
    if (primary != o.primary) {
      return primary < o.primary;
    }
    return conflicts < o.conflicts;
  }
};

/// One batch slot of the speculative drain: the worker's virtual-rip
/// overlay input and its speculation result, allocation-reused across
/// batches and waves.
struct SpecTask {
  std::vector<RouterCore::SpecOverlay> overlay;
  RouterCore::SpecResult result;
};

}  // namespace

ContextScheduler::ContextScheduler(const arch::RoutingGraph& graph,
                                   const RouterOptions& options)
    : graph_(graph), options_(options) {}

RouteResult ContextScheduler::route(
    const std::vector<std::vector<RouteNet>>& nets_per_context,
    const std::vector<timing::ContextTimingSpec>* timing,
    RouteHistory* history, const std::vector<double>* context_criticality,
    CorePool* pool) const {
  using clock = std::chrono::steady_clock;
  const std::size_t num_contexts = nets_per_context.size();
  const std::size_t num_nodes = graph_.num_nodes();

  // Per-worker engines, persistent across rounds (and across calls when
  // the caller passed a pool): every round reuses the same arena scratch
  // and cached timing DAGs.  Slot 0 doubles as the claim pass's engine.
  const std::size_t workers =
      effective_threads(options_.num_threads, num_contexts);
  const bool interleaved =
      options_.cross_context_mode == CrossContextMode::kInterleaved;
  // Workers for the speculative drain of the merged queue: 0 inherits
  // num_threads, and more engines than the batch window could claim nets
  // cannot help.  1 = the sequential drain (the reference semantics the
  // parallel drain reproduces bit for bit).
  const std::size_t drain_workers =
      interleaved ? effective_threads(options_.interleave_workers != 0
                                          ? options_.interleave_workers
                                          : options_.num_threads,
                                      options_.speculation_window)
                  : 1;
  CorePool local_pool;
  CorePool& cores = pool != nullptr ? *pool : local_pool;
  // Interleaved mode keeps one live session per CONTEXT (each owns a
  // context's occupancy/owner maps for the whole wave loop), so the pool
  // must cover the contexts, not just the workers — plus one speculation
  // engine per drain worker on the slots past the sessions.
  cores.prepare(
      std::max(std::max<std::size_t>(workers, 1),
               interleaved
                   ? num_contexts + (drain_workers > 1 ? drain_workers : 0)
                   : 0),
      graph_, options_);

  // Effective pressure weight of one negotiation round: the flat weight,
  // ramped up round by round when pressure_ramp is set (ramp 0 multiplies
  // by exactly 1.0 — bit-identical to the historical flat weight).
  const auto pressure_weight_at = [&](std::size_t round) {
    return options_.cross_context_pressure_weight *
           (1.0 + options_.pressure_ramp * static_cast<double>(round - 1));
  };

  // Per-context criticalities in [0, 1]; null = all equally critical, so
  // the claim order degenerates to context order and every context
  // exports full-strength pressure.
  std::vector<double> crit(num_contexts, 1.0);
  if (context_criticality != nullptr) {
    for (std::size_t c = 0; c < num_contexts; ++c) {
      crit[c] = std::clamp((*context_criticality)[c], 0.0, 1.0);
    }
  }
  // Claim order: descending criticality, ties toward the lower index
  // (stable), so the order is deterministic for equal criticalities.
  std::vector<std::size_t> order(num_contexts);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return crit[a] > crit[b];
  });

  // Per-round STA scoring state (specs available => exact critical paths;
  // otherwise rounds are scored by worst switch count).  The DAG topology
  // is fixed across rounds, so one TimingGraph per context re-analyzes
  // incrementally.
  const bool score_by_sta = timing != nullptr;
  std::vector<timing::ConnectionArcs> arcs;
  std::vector<timing::TimingGraph> sta;
  if (score_by_sta) {
    arcs.reserve(num_contexts);
    sta.reserve(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      const timing::ContextTimingSpec& spec = (*timing)[c];
      MCFPGA_REQUIRE(spec.nets.size() == nets_per_context[c].size(),
                     "timing spec must parallel the context's net list");
      for (std::size_t i = 0; i < spec.nets.size(); ++i) {
        MCFPGA_REQUIRE(
            spec.nets[i].sinks.size() == nets_per_context[c][i].sinks.size(),
            "timing spec sinks must parallel the net's sinks");
      }
      arcs.emplace_back(spec);
      sta.emplace_back(spec.num_nodes, arcs.back().arcs());
    }
  }

  // Negotiation state: per-context PathFinder history carried across
  // rounds (seeded from the caller's carry-in when present) and the wire
  // usage each context exported after its latest pass.
  std::vector<std::vector<double>> hist(num_contexts);
  if (history != nullptr) {
    hist = history->per_context;  // prepare()d: entries empty or node-sized
  }
  std::vector<std::vector<std::uint8_t>> usage(num_contexts);
  std::vector<RouterCore::ContextResult> current(num_contexts);

  // One parallel round: every context re-routes against `pressure`
  // frozen before the round started (null on the round-0 baseline).
  // Exceptions re-raise in context order, like the independent router.
  const auto run_parallel_round =
      [&](const std::vector<std::vector<double>>* pressure) {
        std::vector<std::exception_ptr> errors(num_contexts);
        std::atomic<std::size_t> next_slot{0};
        parallel_for_index(num_contexts, workers, [&]() {
          // Pool slots are interchangeable (route_pass fully resets
          // per-pass state), so first-come claiming cannot perturb the
          // result.
          RouterCore* core = &cores.core(next_slot.fetch_add(1));
          return [&, core](std::size_t c) {
            try {
              current[c] = core->route_pass(
                  nets_per_context[c], timing ? &(*timing)[c] : nullptr,
                  &hist[c], pressure ? &(*pressure)[c] : nullptr, &usage[c]);
            } catch (...) {
              errors[c] = std::current_exception();
            }
          };
        });
        for (std::size_t c = 0; c < num_contexts; ++c) {
          if (errors[c]) {
            std::rethrow_exception(errors[c]);
          }
        }
      };

  // The claim pass: sequential in criticality order; the context at
  // position k sees the accumulated crit-weighted usage of positions
  // 0..k-1 ONLY — critical contexts claim wires first, everyone after
  // them detours around the claims.
  const auto run_claim_round = [&]() {
    RouterCore& core = cores.core(0);
    const double weight = pressure_weight_at(1);
    std::vector<double> accum(num_nodes, 0.0);
    std::vector<double> pressure(num_nodes, 0.0);
    for (const std::size_t c : order) {
      for (std::size_t n = 0; n < num_nodes; ++n) {
        pressure[n] = weight * accum[n];
      }
      current[c] =
          core.route_pass(nets_per_context[c],
                          timing ? &(*timing)[c] : nullptr, &hist[c],
                          &pressure, &usage[c]);
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (usage[c][n] != 0) {
          accum[n] += crit[c];
        }
      }
    }
  };

  // Jacobi pressure for rounds >= 2: context c sees every peer's usage,
  // weighted by the EXPORTING context's criticality and the round's ramped
  // weight.  Folded in context order, so the map is identical for any
  // worker count.
  const auto build_jacobi_pressure = [&](std::size_t round) {
    const double weight = pressure_weight_at(round);
    std::vector<double> total(num_nodes, 0.0);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (usage[c][n] != 0) {
          total[n] += crit[c];
        }
      }
    }
    std::vector<std::vector<double>> pressure(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      pressure[c].resize(num_nodes);
      for (std::size_t n = 0; n < num_nodes; ++n) {
        const double own = usage[c][n] != 0 ? crit[c] : 0.0;
        pressure[c][n] = weight * (total[n] - own);
      }
    }
    return pressure;
  };

  const auto all_converged = [&]() {
    for (const auto& r : current) {
      if (!r.converged) {
        return false;
      }
    }
    return true;
  };

  // Scores the round just routed and appends its stats row.
  std::vector<NegotiationRoundStats> stats;
  const auto evaluate_and_record = [&](std::size_t round,
                                       const clock::time_point& start) {
    NegotiationRoundStats s;
    s.round = round;
    for (const std::size_t per_context : cross_context_conflicts(usage)) {
      s.conflicts += per_context;
    }
    for (const auto& r : current) {
      for (const auto& net : r.nets) {
        for (const auto& path : net.paths) {
          s.worst_critical_switches =
              std::max(s.worst_critical_switches, path.switch_count());
        }
      }
    }
    if (score_by_sta) {
      for (std::size_t c = 0; c < num_contexts; ++c) {
        for (std::size_t i = 0; i < current[c].nets.size(); ++i) {
          const auto& paths = current[c].nets[i].paths;
          for (std::size_t j = 0; j < paths.size(); ++j) {
            arcs[c].set_connection_switches(sta[c], arcs[c].connection(i, j),
                                            paths[j].switch_count());
          }
        }
        sta[c].analyze();
        s.worst_critical_path =
            std::max(s.worst_critical_path, sta[c].critical_path());
      }
    }
    for (const auto& r : current) {
      s.heap_pushes += r.heap_pushes;
      s.nodes_expanded += r.nodes_expanded;
    }
    s.seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    stats.push_back(s);
    return Score{score_by_sta
                     ? s.worst_critical_path
                     : static_cast<double>(s.worst_critical_switches),
                 s.conflicts};
  };

  // --- Round 0: the independent baseline -----------------------------------
  clock::time_point start = clock::now();
  run_parallel_round(nullptr);
  Score best_score = evaluate_and_record(0, start);
  Snapshot best{current, hist};
  std::size_t best_round = 0;

  // Per-context interleaved churn + speculation counters (stay zero in
  // round-based modes; folded into the merged summaries at the tail).
  std::vector<std::size_t> interleave_reroutes(num_contexts, 0);
  std::vector<std::size_t> interleave_requeues(num_contexts, 0);
  std::vector<std::size_t> spec_hits(num_contexts, 0);
  std::vector<std::size_t> spec_aborts(num_contexts, 0);

  // Negotiation only makes sense over a converged baseline with something
  // to negotiate about; pressure never helps a context that could not
  // even resolve its own congestion (it only adds cost).
  if (all_converged() && stats[0].conflicts > 0 && !interleaved) {
    std::size_t prev_conflicts = stats[0].conflicts;
    for (std::size_t round = 1; round <= options_.cross_context_rounds;
         ++round) {
      start = clock::now();
      if (round == 1) {
        run_claim_round();
      } else {
        const std::vector<std::vector<double>> pressure =
            build_jacobi_pressure(round);
        run_parallel_round(&pressure);
      }
      const Score score = evaluate_and_record(round, start);
      const bool converged = all_converged();
      if (converged && score.better_than(best_score)) {
        best_score = score;
        best = Snapshot{current, hist};
        best_round = round;
      }
      // Stop once conflicts no longer strictly improve, hit zero (another
      // round could only tie), or a pass broke convergence — the
      // negotiation has said what it has to say.
      if (!converged || stats.back().conflicts == 0 ||
          stats.back().conflicts >= prev_conflicts) {
        break;
      }
      prev_conflicts = stats.back().conflicts;
    }
  }

  // --- Net-interleaved negotiation: one merged worklist ----------------------
  //
  // Instead of whole-context rounds, arm one live SESSION per context
  // (each adopts its round-0 routing) and drive a single merged
  // (context, net) queue ordered by criticality.  Each pop rips ONE net,
  // patches the shared pressure, and re-routes it against the LIVE
  // pressure of everyone else — commit granularity instead of round
  // granularity — then re-enqueues only the nets whose pressure the
  // commit actually changed (dirty-set propagation).  The queue pops FIFO
  // within a priority bucket, so pop order is a pure function of push
  // order; cost tracks conflict churn, not rounds x contexts x nets.
  //
  // With drain_workers > 1 the drain runs SPECULATIVELY: a deterministic
  // batch of pops is claimed up front (pop_batch), every entry is routed
  // in parallel by a read-only worker engine against the committed
  // snapshot (a virtual-rip overlay stands in for the entry's own rip,
  // and every occupancy/cost value the expansion reads is recorded), and
  // the serial commit then replays the batch in pop order — validating
  // each recorded read-set against the live state and adopting the
  // precomputed route when it holds, or discarding it and re-routing
  // live when an earlier commit interfered.  Either way each commit is
  // exactly what the sequential drain would have produced, so the routed
  // state is bit-identical for ANY worker count.
  if (all_converged() && stats[0].conflicts > 0 && interleaved) {
    // All sessions share ONE unscaled pressure array
    //   total[n] = sum_c crit[c] * usage[c][n]
    // (each core scales it by the flat pressure weight; the per-round
    // pressure_ramp does not apply — there are no rounds).  `users[n]`
    // counts the contexts holding wire n — the conflict predicate.
    const double weight = options_.cross_context_pressure_weight;
    std::vector<double> total(num_nodes, 0.0);
    std::vector<std::uint16_t> users(num_nodes, 0);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      for (std::size_t n = 0; n < num_nodes; ++n) {
        if (usage[c][n] != 0) {
          total[n] += crit[c];
          ++users[n];
        }
      }
    }
    for (std::size_t c = 0; c < num_contexts; ++c) {
      cores.checkout(c).session_begin(nets_per_context[c],
                                      timing ? &(*timing)[c] : nullptr,
                                      current[c].nets, &hist[c], total.data(),
                                      weight);
    }

    // Re-derives total[] at the patched nodes from the usage columns
    // (exact, no float drift from repeated add/subtract) and tells every
    // session the pressure there changed.
    const auto patch = [&](const std::vector<arch::NodeId>& nodes,
                           std::size_t c, bool add) {
      for (const arch::NodeId n : nodes) {
        const std::size_t ni = static_cast<std::size_t>(n);
        usage[c][ni] = add ? 1 : 0;
        users[ni] = static_cast<std::uint16_t>(users[ni] + (add ? 1 : -1));
        double t = 0.0;
        for (std::size_t c2 = 0; c2 < num_contexts; ++c2) {
          if (usage[c2][ni] != 0) {
            t += crit[c2];
          }
        }
        total[ni] = t;
      }
      for (std::size_t c2 = 0; c2 < num_contexts; ++c2) {
        cores.core(c2).session_refresh_pressure(nodes);
      }
    };

    // The merged worklist: a calendar queue keyed by
    // 1 - ctx_crit * net_crit (critical nets pop first), FIFO within a
    // bucket.  Two queues ping-pong: wave w drains one while dirty-set
    // requeues fill the other — pushing into the draining queue would
    // fight its monotone cursor and make pop order depend on drain
    // progress.
    const auto pack = [](std::size_t c, std::size_t i) {
      return (static_cast<std::uint64_t>(c) << 32) |
             static_cast<std::uint64_t>(i);
    };
    const auto key_of = [&](std::size_t c, std::size_t i) {
      return 1.0 - std::clamp(
                       crit[c] * cores.core(c).session_net_criticality(i),
                       0.0, 1.0);
    };
    const std::size_t span =
        static_cast<std::size_t>(1.0 / options_.interleave_crit_quantum) + 2;
    CalendarQueue<std::uint64_t> queues[2];
    queues[0].configure(options_.interleave_crit_quantum, span);
    queues[1].configure(options_.interleave_crit_quantum, span);

    // wave_mark[c][i] == w: net (c, i) is already enqueued for wave w.
    std::vector<std::vector<std::size_t>> wave_mark(num_contexts);
    for (std::size_t c = 0; c < num_contexts; ++c) {
      wave_mark[c].assign(nets_per_context[c].size(), 0);
    }
    // Wave-1 seeds: every net currently holding a contested wire, in
    // (context, net) order — the queue's buckets re-order them by
    // criticality.
    for (std::size_t c = 0; c < num_contexts; ++c) {
      const std::vector<RoutedNet>& nets = cores.core(c).session_nets();
      for (std::size_t i = 0; i < nets.size(); ++i) {
        bool contested = false;
        for (const RoutedPath& path : nets[i].paths) {
          for (const arch::EdgeId e : path.edges) {
            const arch::NodeId to = graph_.edge(e).to;
            if (graph_.node(to).kind == arch::NodeKind::kWire &&
                users[static_cast<std::size_t>(to)] >= 2) {
              contested = true;
              break;
            }
          }
          if (contested) {
            break;
          }
        }
        if (contested) {
          wave_mark[c][i] = 1;
          queues[0].push(key_of(c, i), pack(c, i));
        }
      }
    }

    // Speculative drain machinery (drain_workers > 1): per-worker engines
    // checked out of the pool slots past the sessions, a persistent batch
    // barrier, and allocation-reused batch slots.
    std::vector<RouterCore*> engines;
    std::unique_ptr<BatchRunner> runner;
    std::vector<CalendarQueue<std::uint64_t>::Item> batch;
    std::vector<SpecTask> tasks;
    if (drain_workers > 1) {
      engines.reserve(drain_workers);
      for (std::size_t w = 0; w < drain_workers; ++w) {
        engines.push_back(&cores.checkout(num_contexts + w));
      }
      runner = std::make_unique<BatchRunner>(drain_workers);
      tasks.resize(options_.speculation_window);
    }
    // Speculates batch entry k on engine `slot`, reading the sessions
    // only — a pure function of the committed snapshot and k, so the
    // participant -> entry assignment cannot perturb anything.
    const std::function<void(std::size_t, std::size_t)> speculate =
        [&](std::size_t slot, std::size_t k) {
          const std::uint64_t v = batch[k].value;
          const std::size_t c = static_cast<std::size_t>(v >> 32);
          const std::size_t i = static_cast<std::size_t>(v & 0xffffffffu);
          const RouterCore& session = cores.core(c);
          SpecTask& task = tasks[k];
          // Virtual-rip overlay: for every node of the net's current
          // tree, the pressure total it will carry after the real rip's
          // patch-down — the exact context-order summation patch()
          // performs.  Only wires carry usage; a pin's total is whatever
          // it already was.
          task.overlay.clear();
          for (const arch::NodeId n : session.session_tree(i)) {
            const std::size_t ni = static_cast<std::size_t>(n);
            double p = total[ni];
            if (usage[c][ni] != 0) {
              p = 0.0;
              for (std::size_t c2 = 0; c2 < num_contexts; ++c2) {
                if (c2 != c && usage[c2][ni] != 0) {
                  p += crit[c2];
                }
              }
            }
            task.overlay.push_back({n, p});
          }
          engines[slot]->speculate_route(session, i, task.overlay,
                                         task.result);
        };

    std::vector<arch::NodeId> freed;
    std::vector<arch::NodeId> gained;
    std::size_t active = 0;
    for (std::size_t wave = 1; wave <= options_.interleave_waves; ++wave) {
      CalendarQueue<std::uint64_t>& work = queues[active];
      CalendarQueue<std::uint64_t>& next = queues[1 - active];
      if (work.empty()) {
        break;  // the dirty set dried up: nothing left to negotiate
      }
      start = clock::now();
      std::size_t rerouted = 0;
      std::size_t requeued = 0;
      std::size_t wave_spec_hits = 0;
      std::size_t wave_spec_aborts = 0;
      std::size_t pushes_before = 0;
      std::size_t expanded_before = 0;
      for (std::size_t c = 0; c < num_contexts; ++c) {
        pushes_before += cores.core(c).session_heap_pushes();
        expanded_before += cores.core(c).session_nodes_expanded();
      }
      // One pop's commit, shared by both drains.  `spec` is null on the
      // sequential path; on the speculative path a validated read-set
      // proves the precomputed result is exactly what the live re-route
      // below would produce, so adopting it (or its validated failure)
      // cannot diverge from the sequential drain.
      const auto commit_pop = [&](std::size_t c, std::size_t i,
                                  SpecTask* spec) {
        RouterCore& core = cores.core(c);
        // Rip FIRST and patch the shared pressure down, so the re-route
        // is not repelled by the net's own old wires.
        core.session_rip_net(i, freed);
        patch(freed, c, false);
        bool routed;
        if (spec != nullptr &&
            core.session_validate_reads(spec->result.reads)) {
          ++wave_spec_hits;
          ++spec_hits[c];
          if (spec->result.found) {
            core.session_adopt_route(i, std::move(spec->result), gained);
            routed = true;
          } else {
            core.session_fold_spec_counters(spec->result);
            routed = false;
          }
        } else {
          if (spec != nullptr) {
            ++wave_spec_aborts;
            ++spec_aborts[c];
          }
          routed = core.session_route_net(i, gained);
        }
        if (routed) {
          ++rerouted;
          ++interleave_reroutes[c];
          patch(gained, c, true);
          // Dirty-set propagation: a commit changes a peer's incentive
          // only where this net GAINED wire the peer holds — that
          // owner (unique per context: sessions route exclusively) gets
          // one next-wave entry.  Freed-only nodes need no requeue:
          // losing pressure never invalidates a peer's current route.
          for (const arch::NodeId n : gained) {
            const std::size_t ni = static_cast<std::size_t>(n);
            if (users[ni] < 2) {
              continue;
            }
            for (std::size_t c2 = 0; c2 < num_contexts; ++c2) {
              if (c2 == c || usage[c2][ni] == 0) {
                continue;
              }
              const std::int32_t peer = cores.core(c2).session_owner(ni);
              if (peer < 0) {
                continue;
              }
              const std::size_t pi = static_cast<std::size_t>(peer);
              if (wave_mark[c2][pi] == wave + 1) {
                continue;
              }
              wave_mark[c2][pi] = wave + 1;
              next.push(key_of(c2, pi), pack(c2, pi));
              ++requeued;
              ++interleave_requeues[c2];
            }
          }
        } else {
          // Blocked under exclusion: keep the baseline route for this
          // net (never-worse), put its pressure back.
          core.session_restore_net(i);
          patch(freed, c, true);
        }
      };
      if (drain_workers <= 1) {
        while (!work.empty()) {
          const auto item = work.pop();
          commit_pop(static_cast<std::size_t>(item.value >> 32),
                     static_cast<std::size_t>(item.value & 0xffffffffu),
                     nullptr);
        }
      } else {
        // Claim a deterministic window, speculate it in parallel against
        // the committed snapshot (pure reads of the sessions), commit
        // serially in pop order.  Pops only ever leave `work` and pushes
        // only ever enter `next`, so claiming the window up front cannot
        // change which nets it contains.
        while (!work.empty()) {
          const std::size_t got =
              work.pop_batch(options_.speculation_window, batch);
          runner->run(got, speculate);
          for (std::size_t k = 0; k < got; ++k) {
            commit_pop(static_cast<std::size_t>(batch[k].value >> 32),
                       static_cast<std::size_t>(batch[k].value & 0xffffffffu),
                       &tasks[k]);
          }
        }
      }

      // Score the wave exactly like a negotiation round, against the
      // sessions' live routing; keep-best preserves the never-worse
      // guarantee wave by wave.
      NegotiationRoundStats s;
      s.round = stats.size();
      for (const std::size_t per_context : cross_context_conflicts(usage)) {
        s.conflicts += per_context;
      }
      for (std::size_t c = 0; c < num_contexts; ++c) {
        for (const RoutedNet& net : cores.core(c).session_nets()) {
          for (const RoutedPath& path : net.paths) {
            s.worst_critical_switches =
                std::max(s.worst_critical_switches, path.switch_count());
          }
        }
      }
      if (score_by_sta) {
        for (std::size_t c = 0; c < num_contexts; ++c) {
          const std::vector<RoutedNet>& nets = cores.core(c).session_nets();
          for (std::size_t i = 0; i < nets.size(); ++i) {
            for (std::size_t j = 0; j < nets[i].paths.size(); ++j) {
              arcs[c].set_connection_switches(
                  sta[c], arcs[c].connection(i, j),
                  nets[i].paths[j].switch_count());
            }
          }
          sta[c].analyze();
          s.worst_critical_path =
              std::max(s.worst_critical_path, sta[c].critical_path());
        }
      }
      s.seconds = std::chrono::duration<double>(clock::now() - start).count();
      s.nets_rerouted = rerouted;
      s.nets_requeued = requeued;
      s.spec_hits = wave_spec_hits;
      s.spec_aborts = wave_spec_aborts;
      for (std::size_t c = 0; c < num_contexts; ++c) {
        s.heap_pushes += cores.core(c).session_heap_pushes();
        s.nodes_expanded += cores.core(c).session_nodes_expanded();
      }
      s.heap_pushes -= pushes_before;
      s.nodes_expanded -= expanded_before;
      stats.push_back(s);

      const Score score{score_by_sta
                            ? s.worst_critical_path
                            : static_cast<double>(s.worst_critical_switches),
                        s.conflicts};
      if (score.better_than(best_score)) {
        best_score = score;
        best_round = stats.size() - 1;
        for (std::size_t c = 0; c < num_contexts; ++c) {
          RouterCore::ContextResult& r = best.results[c];
          r.nets = cores.core(c).session_nets();
          r.wire_nodes_used = 0;
          r.switches_crossed = 0;
          for (const RoutedNet& net : r.nets) {
            for (const RoutedPath& path : net.paths) {
              r.switches_crossed += path.switch_count();
              r.wire_nodes_used += path.edges.size();
            }
          }
        }
        // History stays the baseline's: sessions route exclusively and
        // never write history.
      }
      active = 1 - active;
      if (s.conflicts == 0) {
        break;  // a further wave could only tie on the kept metric
      }
    }

    // Return the worker engines before closing the sessions.
    runner.reset();
    for (std::size_t w = 0; w < engines.size(); ++w) {
      cores.release(num_contexts + w);
    }

    // Close the sessions and attribute their expansion traffic to the
    // kept results — the counters describe work done, whichever wave won.
    for (std::size_t c = 0; c < num_contexts; ++c) {
      const RouterCore::ContextResult sess = cores.core(c).session_finish();
      cores.release(c);
      best.results[c].heap_pushes += sess.heap_pushes;
      best.results[c].heap_pops += sess.heap_pops;
      best.results[c].stale_pops += sess.stale_pops;
      best.results[c].nodes_expanded += sess.nodes_expanded;
    }
  }

  // --- Keep the best round ---------------------------------------------------
  if (history != nullptr) {
    history->per_context = std::move(best.history);
  }
  RouteResult result = merge_context_results(graph_, std::move(best.results));
  result.negotiation_rounds = stats.size();
  stats[best_round].kept = true;
  result.negotiation_stats = std::move(stats);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    result.context_summary[c].interleave_reroutes = interleave_reroutes[c];
    result.context_summary[c].interleave_requeues = interleave_requeues[c];
    result.context_summary[c].spec_hits = spec_hits[c];
    result.context_summary[c].spec_aborts = spec_aborts[c];
  }
  return result;
}

}  // namespace mcfpga::route
