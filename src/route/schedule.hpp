// Cross-context negotiated routing: criticality-ordered context
// scheduling with shared congestion pressure.
//
// The whole point of the multi-context fabric is that one physical wire
// carries a DIFFERENT signal in every context — but the switch patterns
// those signals program are shared silicon, and a wire hogged by an
// uncritical net in context A is exactly the wire a critical net in
// context B wanted.  Independent per-context routing cannot see that
// coupling.  The ContextScheduler makes it explicit:
//
//   round 0  INDEPENDENT BASELINE.  Every context routes with zero
//            cross-context pressure, in parallel — bit-identical to
//            CrossContextMode::kOff.  This round anchors the keep-best
//            guarantee: negotiation can only ever improve on it.
//   round 1  CLAIM PASS.  Contexts route SEQUENTIALLY in descending
//            criticality order (handed in by the caller — the closure
//            loop passes each context's critical-path share of the
//            worst context's, from the previous iteration's STA; ties
//            break toward the lower context index).  The most critical context claims wires
//            pressure-free; each later context routes against the
//            pressure of every context already re-routed this round —
//            critical contexts claim first, uncritical ones detour.
//   round 2+ NEGOTIATION.  Every context re-routes in parallel against
//            the frozen pressure of ALL peers from the previous round
//            (Jacobi-style), with its own PathFinder history carried
//            across rounds.  Pressure folds each exporting context's
//            per-node wire usage into the importer's present cost,
//            weighted by the EXPORTER's criticality and
//            RouterOptions::cross_context_pressure_weight — itself ramped
//            round by round when RouterOptions::pressure_ramp is set
//            (round r scales the weight by 1 + pressure_ramp * (r - 1)),
//            so early rounds nudge while late rounds shove.
//
// The loop stops when cross-context conflicts (wire nodes shared between
// contexts) stop strictly improving, or after cross_context_rounds
// negotiation rounds.  Every round is scored — worst per-context STA
// critical path when timing specs are available, worst per-connection
// switch count otherwise, with total conflicts as the tiebreak — and the
// best round's routing (and history) is what the scheduler returns, so
// negotiated routing is never worse than independent routing on the kept
// metric.
//
// Determinism: rounds are barriers; within a round each context sees only
// pressure frozen before the round started (round 1 is sequential by
// construction), and per-round usage merges in context order — so the
// result is a pure function of (options, nets, criticalities, history),
// regardless of worker count.
//
// CrossContextMode::kInterleaved replaces the rounds AFTER the shared
// round-0 baseline with one merged net-level worklist:
//
//   arm      One RouterCore SESSION per context adopts its baseline
//            routing; all sessions share one live pressure array
//            total[n] = sum_c crit_c * usage_c[n] (scaled by the flat
//            cross_context_pressure_weight; pressure_ramp does not apply).
//   wave 1   Every net holding a contested wire (>= 2 contexts) enters a
//            single calendar queue keyed by 1 - ctx_crit * net_crit —
//            critical nets pop first, FIFO within a priority bucket.
//   pop      Rip ONE net, patch the shared pressure down at its freed
//            wires, re-route it exclusively (never through a wire a peer
//            net of the SAME context holds) against live peer pressure,
//            patch pressure up at the gained wires.  A blocked re-route
//            restores the baseline tree (never-worse per net).
//   dirty    Only peers holding a wire the commit GAINED are re-enqueued
//            — into the NEXT wave's queue (ping-pong, so the draining
//            queue's monotone cursor is never fought).  Waves end when
//            the dirty set dries up or interleave_waves is hit.
//
// Each wave is scored like a negotiation round and the best state is
// kept, so kInterleaved inherits the never-worse-than-independent
// guarantee; the commit order is the queue's pop order, a pure function
// of pushes, so the result is deterministic for any worker count.  Cost
// now tracks actual conflict churn (nets re-routed per wave) instead of
// rounds x contexts x nets.
//
// With more than one drain worker (interleave_workers, defaulting to
// num_threads) the merged queue drains SPECULATIVELY: a deterministic
// batch of up to speculation_window pops is claimed, worker engines
// route every claimed net in parallel against the committed snapshot —
// pure reads of the sessions plus a per-worker virtual overlay that
// pretends only the net's own tree was ripped — recording the exact
// (occupancy, cost) values each expansion read.  Commits then replay the
// batch serially in pop order: a speculation whose recorded reads still
// match the live state is adopted as-is (its result is provably what a
// live re-route would have produced); one invalidated by an earlier
// commit in the batch is discarded and the net re-routed live on the
// session.  Committed state is therefore a pure function of queue order
// — bit-identical to the single-worker drain for any worker count or
// window size — and the parallel speculation only buys wall-clock time.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/routing_graph.hpp"
#include "route/router.hpp"
#include "timing/net_timing.hpp"

namespace mcfpga::route {

class ContextScheduler {
 public:
  /// `options` must already be validated (Router's constructor does).
  ContextScheduler(const arch::RoutingGraph& graph,
                   const RouterOptions& options);

  /// Routes all contexts under cross-context negotiation.  Arguments
  /// mirror Router::route (which dispatches here when
  /// options.cross_context_mode == kNegotiated): `timing` additionally
  /// powers the per-round STA scoring, `history` must already be
  /// prepare()d against this graph, and `context_criticality` (null =
  /// all contexts equally critical) orders the claim pass and scales the
  /// pressure each context exports.  `pool` (may be null = a round-local
  /// pool) carries per-worker engines across rounds and calls; pooled
  /// results are bit-identical to pool-free ones.
  RouteResult route(const std::vector<std::vector<RouteNet>>& nets_per_context,
                    const std::vector<timing::ContextTimingSpec>* timing,
                    RouteHistory* history,
                    const std::vector<double>* context_criticality,
                    CorePool* pool = nullptr) const;

 private:
  const arch::RoutingGraph& graph_;
  RouterOptions options_;  ///< By value, like RouterCore: no lifetime trap.
};

}  // namespace mcfpga::route
