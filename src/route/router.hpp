// PathFinder-style negotiated-congestion router over the fabric's
// routing-resource graph (paper Sec. 3).
//
// Each context is routed independently — a physical wire can carry a
// different signal in every context, which is exactly what gives the
// per-switch context patterns their structure.  Within a context the
// classic PathFinder loop applies: rip-up and reroute every net with
// node costs inflated by present congestion and accumulated history until
// no wire is shared.
//
// The per-context engine lives in route/router_core.hpp (RouterCore, with
// preallocated scratch over the graph's flat CSR adjacency); Router::route
// fans contexts out over a small worker pool and merges results in context
// order, so parallel output is bit-identical to serial.
//
// Delay accounting follows the paper's SE model: every switch crossed
// costs one SE delay, so a straight run of L cells costs L switches on
// single-length wires but only ceil(L/2) diamond crossings on
// double-length lines (Fig. 10) — the router's base costs make the fast
// lines attractive for long connections, and `prefer_double_length`
// lets benches toggle the feature for the E5 comparison.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/routing_graph.hpp"
#include "config/bitstream.hpp"
#include "config/pattern.hpp"
#include "timing/net_timing.hpp"

namespace mcfpga::route {

struct RouteNet {
  std::string name;
  arch::NodeId source = arch::kInvalidNode;
  std::vector<arch::NodeId> sinks;
};

struct RoutedPath {
  arch::NodeId sink = arch::kInvalidNode;
  /// Edges from the net's routed tree to this sink, source-to-sink order.
  std::vector<arch::EdgeId> edges;
  /// Switches crossed = edges.size(); the SE-delay of this connection.
  std::size_t switch_count() const { return edges.size(); }
  /// Switches crossed inside diamond switches (double-length usage marker).
  std::size_t diamond_count = 0;
};

struct RoutedNet {
  std::string name;
  arch::NodeId source = arch::kInvalidNode;
  std::vector<RoutedPath> paths;
};

struct RouterOptions {
  std::size_t max_iterations = 40;
  /// Multiplier on present congestion added per iteration.
  double present_factor_growth = 1.6;
  double history_increment = 1.0;
  /// When false, double-length wires are priced off the table (E5 ablation).
  bool prefer_double_length = true;
  /// Worker threads for per-context routing.  0 = one per hardware thread
  /// (capped at the context count); 1 = serial.  Results are bit-identical
  /// regardless of the value: contexts are independent and merged in
  /// context order.
  std::size_t num_threads = 0;
  /// Timing-driven negotiation: expansion cost becomes
  ///   crit * se_delay + (1 - crit) * congestion_cost
  /// per node entered, with per-connection criticalities refreshed from an
  /// incremental STA between rip-up iterations.  Requires timing specs to
  /// be passed to Router::route; off = bit-identical to the pure
  /// congestion router.
  bool timing_mode = false;
  /// VPR-style criticality-exponent ramp: rip-up iteration k sharpens
  /// criticalities with crit^min(max, start + k * step).  The default
  /// (1, 0, 1) keeps criticalities linear for the whole negotiation; a
  /// rising schedule lets early iterations spread congestion while late
  /// iterations chase the critical path hard.
  struct CriticalityExponentSchedule {
    double start = 1.0;  ///< Exponent at rip-up iteration 0.
    double step = 0.0;   ///< Added per rip-up iteration.
    double max = 1.0;    ///< Ceiling of the ramp (>= start).
  };
  CriticalityExponentSchedule criticality_exponent_schedule{};
  /// Criticality ceiling, keeping a sliver of congestion pressure on even
  /// the most critical connection so negotiation still converges.
  double max_criticality = 0.99;

  /// Throws InvalidArgument on out-of-range values (zero iteration budget,
  /// negative increments/weights, ...).  Called by Router's constructor.
  void validate() const;
};

/// Cross-call router state: one PathFinder history-cost array per context,
/// indexed by routing-graph node.  The timing-closure loop routes the same
/// contexts repeatedly (placements shift between iterations); carrying the
/// history forward lets later iterations start negotiation with the
/// congestion lessons of earlier ones instead of from scratch.
struct RouteHistory {
  std::vector<std::vector<double>> per_context;
};

/// Per-context aggregates collected while committing routed paths, so
/// downstream stats never re-scan every net.
struct ContextRouteSummary {
  std::size_t nets = 0;
  std::size_t wire_nodes_used = 0;
  std::size_t switches_crossed = 0;  ///< Sum over all sink connections.
};

struct RouteResult {
  bool success = false;
  std::size_t iterations = 0;
  /// nets[context][i] corresponds to the input nets of that context.
  std::vector<std::vector<RoutedNet>> nets;
  /// Per-switch on/off pattern across contexts (indexed by SwitchId).
  std::vector<config::ContextPattern> switch_patterns;
  /// One summary per context, filled during the routing commit.
  std::vector<ContextRouteSummary> context_summary;

  /// Worst switch count over all sink connections of one context.
  std::size_t critical_switches(std::size_t context) const;
  /// Full-fabric routing bitstream: one row per physical switch (including
  /// the never-used, constant-0 ones — they exist in silicon and dominate
  /// the pattern census).
  config::Bitstream to_bitstream(const arch::RoutingGraph& graph) const;
};

class Router {
 public:
  /// Validates `options` (InvalidArgument on bad values).
  Router(const arch::RoutingGraph& graph, RouterOptions options = {});

  /// Routes all contexts; nets_per_context.size() must equal the fabric's
  /// context count.  Throws FlowError when a net is unroutable outright
  /// (no physical path); returns success=false when congestion cannot be
  /// resolved within max_iterations.
  ///
  /// `timing` (one spec per context, parallel to the net lists) enables the
  /// timing-driven cost when options.timing_mode is set; contexts remain
  /// independent, so parallel results stay bit-identical to serial.
  ///
  /// `history` (may be null) carries PathFinder history costs across calls:
  /// a context whose entry matches the graph's node count seeds its
  /// negotiation from it, and every context writes its final history back.
  /// Seeding and write-back are per-context, so parallel results remain
  /// bit-identical to serial.
  RouteResult route(const std::vector<std::vector<RouteNet>>& nets_per_context,
                    const std::vector<timing::ContextTimingSpec>* timing =
                        nullptr,
                    RouteHistory* history = nullptr) const;

 private:
  const arch::RoutingGraph& graph_;
  RouterOptions options_;
};

}  // namespace mcfpga::route
