// PathFinder-style negotiated-congestion router over the fabric's
// routing-resource graph (paper Sec. 3).
//
// Each context is routed independently — a physical wire can carry a
// different signal in every context, which is exactly what gives the
// per-switch context patterns their structure.  Within a context the
// classic PathFinder loop applies: rip-up and reroute every net with
// node costs inflated by present congestion and accumulated history until
// no wire is shared.
//
// The per-context engine lives in route/router_core.hpp (RouterCore, with
// preallocated scratch over the graph's flat CSR adjacency); Router::route
// fans contexts out over a small worker pool and merges results in context
// order, so parallel output is bit-identical to serial.
//
// Contexts are NOT independent in the cost model, though: every physical
// switch carries one on/off bit per context, and the RCM decoder prices a
// switch by how its pattern varies across contexts.  With
// RouterOptions::cross_context_mode == kNegotiated, Router::route hands
// the contexts to route::ContextScheduler (route/schedule.hpp), which
// orders routing passes by per-context criticality, exchanges per-node
// pressure between contexts, and re-routes in outer negotiation rounds
// until cross-context wire conflicts stop improving.  kOff (the default)
// keeps the historical fully independent routing, bit for bit.
//
// Delay accounting follows the paper's SE model: every switch crossed
// costs one SE delay, so a straight run of L cells costs L switches on
// single-length wires but only ceil(L/2) diamond crossings on
// double-length lines (Fig. 10) — the router's base costs make the fast
// lines attractive for long connections, and `prefer_double_length`
// lets benches toggle the feature for the E5 comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/routing_graph.hpp"
#include "config/bitstream.hpp"
#include "config/pattern.hpp"
#include "timing/net_timing.hpp"

namespace mcfpga::route {

class CorePool;  // per-worker engine pool (route/router_core.hpp)

struct RouteNet {
  std::string name;
  arch::NodeId source = arch::kInvalidNode;
  std::vector<arch::NodeId> sinks;
};

struct RoutedPath {
  arch::NodeId sink = arch::kInvalidNode;
  /// Edges from the net's routed tree to this sink, source-to-sink order.
  std::vector<arch::EdgeId> edges;
  /// Switches crossed = edges.size(); the SE-delay of this connection.
  std::size_t switch_count() const { return edges.size(); }
  /// Switches crossed inside diamond switches (double-length usage marker).
  std::size_t diamond_count = 0;
};

struct RoutedNet {
  std::string name;
  arch::NodeId source = arch::kInvalidNode;
  std::vector<RoutedPath> paths;
};

/// Priority-queue engine behind the maze expansion (router_core.hpp).
enum class QueueMode : std::uint8_t {
  /// std::push_heap/pop_heap with lazy deletion — the historical engine,
  /// bit-identical to every pre-option release.
  kBinaryHeap,
  /// Monotone calendar queue over quantized costs (route/bucket_queue.hpp):
  /// O(1) push/pop, FIFO within a bucket, deterministic for any worker
  /// count.  Exact Dijkstra while bucket_quantum stays at or below the
  /// smallest relaxation increment (0.5 with default base costs); routes
  /// may differ from the heap's only through equal-cost tie-breaks.
  kBucket,
};

/// How the router treats the coupling between contexts.
enum class CrossContextMode : std::uint8_t {
  /// Every context routed independently (the historical behavior).
  kOff,
  /// Criticality-ordered negotiation rounds with shared per-node pressure
  /// (route/schedule.hpp).  Deterministic for a fixed seed regardless of
  /// worker count; never worse than kOff on the kept metric (the
  /// independent baseline is round 0 of the negotiation and the best
  /// round wins).
  kNegotiated,
  /// One merged net-level worklist instead of whole-context rounds: after
  /// the independent baseline, (context, net) entries are popped from a
  /// single criticality-ordered calendar queue, ripped up and re-routed
  /// one net at a time against live cross-context pressure updated at
  /// commit granularity, and only nets whose pressure actually changed
  /// are re-enqueued (dirty-set propagation).  Same keep-best guarantee
  /// and worker-count determinism as kNegotiated, but the cost tracks
  /// conflict churn instead of rounds x contexts x nets.
  kInterleaved,
};

struct RouterOptions {
  std::size_t max_iterations = 40;
  /// Multiplier on present congestion added per iteration.
  double present_factor_growth = 1.6;
  double history_increment = 1.0;
  /// When false, double-length wires are priced off the table (E5 ablation).
  bool prefer_double_length = true;
  /// Worker threads for per-context routing.  0 = one per hardware thread
  /// (capped at the context count); 1 = serial.  Results are bit-identical
  /// regardless of the value: contexts are independent and merged in
  /// context order.
  std::size_t num_threads = 0;
  /// Timing-driven negotiation: expansion cost becomes
  ///   crit * se_delay + (1 - crit) * congestion_cost
  /// per node entered, with per-connection criticalities refreshed from an
  /// incremental STA between rip-up iterations.  Requires timing specs to
  /// be passed to Router::route; off = bit-identical to the pure
  /// congestion router.
  bool timing_mode = false;
  /// VPR-style criticality-exponent ramp: rip-up iteration k sharpens
  /// criticalities with crit^min(max, start + k * step).  The default
  /// (1, 0, 1) keeps criticalities linear for the whole negotiation; a
  /// rising schedule lets early iterations spread congestion while late
  /// iterations chase the critical path hard.
  struct CriticalityExponentSchedule {
    double start = 1.0;  ///< Exponent at rip-up iteration 0.
    double step = 0.0;   ///< Added per rip-up iteration.
    double max = 1.0;    ///< Ceiling of the ramp (>= start).
    bool operator==(const CriticalityExponentSchedule&) const = default;
  };
  CriticalityExponentSchedule criticality_exponent_schedule{};
  /// Criticality ceiling, keeping a sliver of congestion pressure on even
  /// the most critical connection so negotiation still converges.
  double max_criticality = 0.99;
  /// Cross-context coupling: kOff = independent contexts (bit-identical
  /// to the historical router), kNegotiated = criticality-ordered
  /// scheduling with shared congestion pressure (route/schedule.hpp).
  CrossContextMode cross_context_mode = CrossContextMode::kOff;
  /// Negotiation rounds after the independent baseline (round 0): round 1
  /// is the sequential criticality-ordered claim pass, later rounds
  /// re-route every context against the pressure of all peers.  The loop
  /// stops early once cross-context conflicts stop improving.
  std::size_t cross_context_rounds = 3;
  /// Scale of foreign-context wire usage folded into a context's present
  /// congestion cost, further weighted by the EXPORTING context's
  /// criticality — critical contexts push hard, uncritical ones barely.
  double cross_context_pressure_weight = 0.5;
  /// Per-round ramp on the pressure weight: negotiation round r applies
  /// weight * (1 + pressure_ramp * (r - 1)), so early rounds nudge and
  /// late rounds shove.  0 (the default) is bit-identical to the flat
  /// weight; must be non-negative.
  double pressure_ramp = 0.0;
  /// kInterleaved only: cap on re-route waves after the baseline.  Each
  /// wave drains the merged (context, net) queue filled by the previous
  /// wave's dirty-set propagation; the worklist usually dries up well
  /// before the cap.  Must be >= 1.
  std::size_t interleave_waves = 8;
  /// kInterleaved only: bucket width of the merged queue's priority key
  /// (1 - context_crit * net_crit, so critical nets pop first).  Nets
  /// whose keys land in the same bucket pop FIFO, which keeps the wave
  /// order a pure function of push order.  Must be in (0, 1].
  double interleave_crit_quantum = 0.015625;
  /// kInterleaved only: workers for the speculative drain of the merged
  /// queue (route/schedule.hpp).  0 = inherit num_threads; 1 = the
  /// sequential drain.  Any value produces bit-identical routed state:
  /// speculation only changes who computes a candidate route, never which
  /// route the ordered commit applies.
  std::size_t interleave_workers = 0;
  /// kInterleaved only: nets claimed per speculation batch (the commit
  /// window) when the drain runs more than one worker.  Batch contents
  /// come from CalendarQueue::pop_batch, so they are a pure function of
  /// queue order; the window trades exposed parallelism against the odds
  /// that an earlier commit invalidates a later speculation in the same
  /// batch.  Must be >= 1.  Small windows win: on congested workloads
  /// the measured abort rate grows from ~12% at a window of 2 to ~70%
  /// at 16, and every abort re-routes serially — 4 keeps four workers
  /// busy while aborts stay near 30%.
  std::size_t speculation_window = 4;
  /// Maze-expansion priority queue engine (see QueueMode).
  QueueMode queue_mode = QueueMode::kBinaryHeap;
  /// Bucket width of the calendar queue (kBucket only).  Costs quantize to
  /// floor(cost / quantum); exactness holds while this stays at or below
  /// the smallest relaxation increment, which is 0.5 with the default base
  /// costs (pin cost 0.5) and default delays (se_delay 1.0 keeps the
  /// timing-blended increment >= 0.5 for every criticality).  Lower it
  /// when custom base costs or sub-0.5 SE delays shrink the increment.
  double bucket_quantum = 0.5;
  /// Calendar span in buckets before pushes spill to the overflow list
  /// (kBucket only).  1024 buckets x 0.5 quantum covers a 512-cost
  /// horizon per rebase — far beyond one relaxation wave.
  std::size_t bucket_span = 1024;

  /// Member-wise equality: lets engine pools detect that cached per-worker
  /// state was built for the same job shape and reuse it.
  bool operator==(const RouterOptions&) const = default;

  /// Throws InvalidArgument on out-of-range values (zero iteration budget,
  /// negative increments/weights, ...).  Called by Router's constructor.
  void validate() const;
};

/// Cross-call router state: one PathFinder history-cost array per context,
/// indexed by routing-graph node.  The timing-closure loop routes the same
/// contexts repeatedly (placements shift between iterations); carrying the
/// history forward lets later iterations start negotiation with the
/// congestion lessons of earlier ones instead of from scratch.
struct RouteHistory {
  std::vector<std::vector<double>> per_context;

  /// Sizes per_context to `num_contexts` and CLEARS any entry whose length
  /// does not match `num_nodes` — a history recorded on a different
  /// routing graph is stale, and seeding from it would silently misprice
  /// every node.  Router::route calls this on entry, so repeated closure
  /// iterations (or a reused history across differently sized fabrics)
  /// never grow or alias stale per-node state.
  void prepare(std::size_t num_contexts, std::size_t num_nodes);
};

/// Per-context aggregates collected while committing routed paths, so
/// downstream stats never re-scan every net.
struct ContextRouteSummary {
  std::size_t nets = 0;
  std::size_t wire_nodes_used = 0;
  std::size_t switches_crossed = 0;  ///< Sum over all sink connections.
  /// Wire nodes this context uses that at least one other context also
  /// uses — the raw material of non-constant switch patterns (and of the
  /// cross-context detour pressure the negotiated scheduler relieves).
  std::size_t cross_context_conflicts = 0;
  /// Maze-expansion engine traffic over the context's whole negotiation
  /// (every rip-up iteration, net, and sink): queue pushes and pops, pops
  /// discarded by the lazy-deletion stale check, and nodes whose CSR row
  /// was actually scanned.  The push/pop mix is the scoreboard the
  /// binary-heap-vs-bucket benches compare.
  std::size_t heap_pushes = 0;
  std::size_t heap_pops = 0;
  std::size_t stale_pops = 0;
  std::size_t nodes_expanded = 0;
  /// kInterleaved only: nets of this context ripped up and re-routed by
  /// the merged worklist (0 for every other mode, and for a baseline that
  /// was already conflict-free).
  std::size_t interleave_reroutes = 0;
  /// kInterleaved only: (net) entries of this context pushed back onto the
  /// merged queue because a peer's commit changed their pressure.
  std::size_t interleave_requeues = 0;
  /// kInterleaved with interleave_workers > 1 only: speculative routes of
  /// this context validated at commit (the read-set still matched the live
  /// state, so the precomputed result was adopted verbatim) vs. discarded
  /// and re-routed live because an earlier commit in the batch changed
  /// state the speculation had read.  Both 0 on the sequential drain.
  std::size_t spec_hits = 0;
  std::size_t spec_aborts = 0;
};

/// One outer negotiation round of the cross-context scheduler (round 0 is
/// the independent baseline; see route/schedule.hpp).  In kInterleaved
/// mode each entry past round 0 is one WAVE of the merged worklist: the
/// conflicts/QoR columns keep their meaning, and the per-wave churn
/// counters below become meaningful.
struct NegotiationRoundStats {
  std::size_t round = 0;
  /// Sum of per-context cross_context_conflicts after this round.
  std::size_t conflicts = 0;
  /// Worst per-connection switch count over all contexts.
  std::size_t worst_critical_switches = 0;
  /// Worst per-context STA critical path (0 when routed without specs).
  double worst_critical_path = 0.0;
  double seconds = 0.0;
  /// True on the single round whose routing the scheduler returned.
  bool kept = false;
  /// kInterleaved: nets actually ripped + re-routed in this wave (0 for
  /// round-based modes and the round-0 baseline).
  std::size_t nets_rerouted = 0;
  /// kInterleaved: nets enqueued for the NEXT wave because a commit in
  /// this wave changed their pressure.  Consistency invariant (tested):
  /// wave k's nets_rerouted never exceeds wave k-1's nets_requeued.
  std::size_t nets_requeued = 0;
  /// Maze-expansion traffic the round/wave actually spent, summed over
  /// contexts (wave entries count only the ripped nets' re-routes).
  /// Summing these over every entry gives the negotiation's TOTAL cost —
  /// the number the interleaved-vs-round-based comparison gates on; the
  /// kept-round counters in ContextRouteSummary deliberately do not.
  /// Speculation traffic that was discarded at commit (aborts) is NOT
  /// included, so these stay byte-identical for every worker count.
  std::size_t heap_pushes = 0;
  std::size_t nodes_expanded = 0;
  /// kInterleaved speculative drain: batch entries whose speculative
  /// result survived read-set validation at commit vs. entries relived
  /// serially.  hits + aborts = every pop of the wave when the drain ran
  /// more than one worker; both 0 on the sequential drain.  Independent
  /// of the worker count (the batch window, not the workers, fixes the
  /// speculation horizon), so the smoke bench pins them.
  std::size_t spec_hits = 0;
  std::size_t spec_aborts = 0;
};

struct RouteResult {
  bool success = false;
  std::size_t iterations = 0;
  /// nets[context][i] corresponds to the input nets of that context.
  std::vector<std::vector<RoutedNet>> nets;
  /// Per-switch on/off pattern across contexts (indexed by SwitchId).
  std::vector<config::ContextPattern> switch_patterns;
  /// One summary per context, filled during the routing commit.
  std::vector<ContextRouteSummary> context_summary;
  /// Negotiation rounds executed (including the round-0 baseline); 0 when
  /// cross_context_mode was kOff.
  std::size_t negotiation_rounds = 0;
  /// One entry per executed round (empty in kOff mode).
  std::vector<NegotiationRoundStats> negotiation_stats;

  /// Worst switch count over all sink connections of one context.
  std::size_t critical_switches(std::size_t context) const;
  /// Full-fabric routing bitstream: one row per physical switch (including
  /// the never-used, constant-0 ones — they exist in silicon and dominate
  /// the pattern census).
  config::Bitstream to_bitstream(const arch::RoutingGraph& graph) const;
};

class Router {
 public:
  /// Validates `options` (InvalidArgument on bad values).
  Router(const arch::RoutingGraph& graph, RouterOptions options = {});

  /// Routes all contexts; nets_per_context.size() must equal the fabric's
  /// context count.  Throws FlowError when a net is unroutable outright
  /// (no physical path); returns success=false when congestion cannot be
  /// resolved within max_iterations.
  ///
  /// `timing` (one spec per context, parallel to the net lists) enables the
  /// timing-driven cost when options.timing_mode is set; contexts remain
  /// independent, so parallel results stay bit-identical to serial.
  ///
  /// `history` (may be null) carries PathFinder history costs across calls:
  /// it is prepare()d against this graph first (stale-sized entries are
  /// cleared), a context whose entry matches the graph's node count seeds
  /// its negotiation from it, and every context writes its final history
  /// back.  Seeding and write-back are per-context, so parallel results
  /// remain bit-identical to serial.
  ///
  /// `context_criticality` (may be null; one value in [0, 1] per context)
  /// drives the scheduler's ordering and pressure weights when
  /// options.cross_context_mode != kOff — the closure loop passes
  /// each context's critical path as a fraction of the worst context's,
  /// from the previous iteration's STA (1 - slack/budget under the
  /// shared budget).  Null = every context equally critical (ordering
  /// falls back to context index).  Ignored in kOff mode.
  ///
  /// `pool` (may be null = per-call engines) supplies per-worker
  /// RouterCores whose arena scratch and cached timing DAGs persist
  /// across calls — the closure loop routes every iteration and the
  /// negotiated scheduler every round, so reuse removes the per-call
  /// allocate-and-levelize tax.  Pooled and pool-free results are
  /// bit-identical.
  RouteResult route(const std::vector<std::vector<RouteNet>>& nets_per_context,
                    const std::vector<timing::ContextTimingSpec>* timing =
                        nullptr,
                    RouteHistory* history = nullptr,
                    const std::vector<double>* context_criticality = nullptr,
                    CorePool* pool = nullptr) const;

 private:
  const arch::RoutingGraph& graph_;
  RouterOptions options_;
};

/// Per-context count of wire nodes shared with at least one other context
/// (the ContextRouteSummary::cross_context_conflicts values), from
/// per-context usage bitmaps (usage[c][n] != 0 = context c occupies wire
/// node n).  The ONE definition of a cross-context conflict — every other
/// counter delegates here.
std::vector<std::size_t> cross_context_conflicts(
    const std::vector<std::vector<std::uint8_t>>& usage);

/// Same, computed from routed trees (builds the usage bitmaps and
/// delegates).  Shared by the independent merge and the scheduler.
std::vector<std::size_t> cross_context_conflicts(
    const arch::RoutingGraph& graph,
    const std::vector<std::vector<RoutedNet>>& nets_per_context);

}  // namespace mcfpga::route
