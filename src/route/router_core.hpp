// Reusable per-context PathFinder engine.
//
// A RouterCore owns all scratch state one context's negotiation needs —
// cost/history/occupancy arrays, the expansion queue, epoch-stamped
// distance/visited marks — preallocated once per routing-graph size and
// reset cheaply between contexts.  Contexts are independent (a physical
// wire carries a different signal in every context), so Router::route can
// run one RouterCore per worker thread and merge the per-context results
// in context order; the merged RouteResult is bit-identical to routing the
// contexts serially.
//
// Hot-path layout: the maze expansion walks the graph's flat CSR arrays
// (RoutingGraph::csr_*) and keeps all per-node expansion state — distance,
// back-pointer, epoch stamps, route-tree depth — in one packed 24-byte
// NodeState record, so one relaxation touches one cache line of node state
// instead of five scattered vectors.  The records (and every other
// graph-sized scratch array) are carved from a common::ScratchArena that a
// worker can keep alive across contexts, passes, negotiation rounds, and
// closure iterations — rebuilding a core on a pooled arena reuses the same
// cache-warm block instead of re-mallocing (see CorePool).  The congestion
// cost is hoisted out of the relaxation loop into a per-node cache that is
// rebuilt once per rip-up iteration and patched on the O(tree) occupancy
// updates, so the inner loop loads exactly one double per neighbor; CSR
// rows are software-prefetched one hop ahead.
//
// Queue engines (RouterOptions::queue_mode):
//   kBinaryHeap — std::push_heap/pop_heap with lazy deletion.  The
//                 default; bit-identical to the historical router.
//   kBucket     — monotone calendar queue over quantized costs
//                 (route/bucket_queue.hpp): O(1) push/pop, FIFO within a
//                 bucket, deterministic for any worker count.  Costs are
//                 exact Dijkstra distances while bucket_quantum stays at
//                 or below the smallest relaxation increment; only
//                 tie-breaking among near-equal costs differs from the
//                 heap, so routes may differ but each expansion still
//                 commits a minimum-cost path.
// Both engines count their traffic (heap pushes/pops, stale pops, nodes
// expanded) into ContextResult for the bench scoreboard.
//
// The engine exposes a resumable per-pass API (route_pass): one call is
// one full PathFinder negotiation of one context, but a pass can seed
// cross-context PRESSURE in (a per-node additive present-cost exported by
// other contexts) and exports its own per-node wire USAGE out — the
// handshake the cross-context scheduler (route/schedule.hpp) drives in
// rounds.  route_context is the pressure-free wrapper and remains
// bit-identical to the historical monolithic entry point.
//
// Timing-driven mode (RouterOptions::timing_mode + a ContextTimingSpec):
// each context carries its own TimingGraph, re-timed incrementally from
// the current switch counts between rip-up iterations, and every (net,
// sink) connection expands with cost
//   crit * se_delay + (1 - crit) * congestion_cost
// — the classic timing-driven PathFinder blend.  Criticalities start from
// the unit-switch (logic depth) prior, so even iteration 0 prefers short
// detours for deep paths.  Reused route-tree wire is seeded into the
// expansion at its accumulated upstream delay (crit-weighted), so the
// router can trade a longer detour near the source for a shorter critical
// tail instead of treating every branch point as free.  The levelized
// ConnectionArcs/TimingGraph pair is cached per spec (content-signature
// keyed), so closure iterations and negotiation rounds that re-route the
// same context re-time incrementally instead of re-levelizing the DAG.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arch/routing_graph.hpp"
#include "common/arena.hpp"
#include "route/bucket_queue.hpp"
#include "route/router.hpp"
#include "timing/net_timing.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::route {

class RouterCore {
 public:
  /// Result of routing one context.
  struct ContextResult {
    std::vector<RoutedNet> nets;
    std::size_t iterations = 0;  ///< PathFinder iterations consumed.
    bool converged = false;      ///< False = congestion never resolved.
    /// Aggregates over all sink connections (feeds ContextStats without a
    /// post-hoc re-scan of every net).
    std::size_t wire_nodes_used = 0;
    std::size_t switches_crossed = 0;
    /// Expansion-engine traffic over the whole pass (every iteration,
    /// net, and sink): queue pushes and pops, pops discarded by the lazy-
    /// deletion stale check, and nodes whose CSR row was actually scanned.
    std::size_t heap_pushes = 0;
    std::size_t heap_pops = 0;
    std::size_t stale_pops = 0;
    std::size_t nodes_expanded = 0;
  };

  /// `arena` (may be null = private arena) provides the graph-sized
  /// scratch storage; constructing a core RESETS it, invalidating any
  /// earlier core built on the same arena.
  RouterCore(const arch::RoutingGraph& graph, const RouterOptions& options,
             common::ScratchArena* arena = nullptr);

  const arch::RoutingGraph& graph() const { return graph_; }
  const RouterOptions& options() const { return options_; }

  /// One negotiation pass over one context's nets — a full PathFinder
  /// rip-up/re-route loop.  Throws FlowError when a net has no physical
  /// path at all; returns converged=false when congestion cannot be
  /// negotiated away within options.max_iterations.  `timing` (may be
  /// null) enables the criticality-driven cost when options.timing_mode is
  /// set; its nets/sinks must parallel `nets`.
  ///
  /// `history` (may be null) carries PathFinder history costs across
  /// passes: when its size matches the graph's node count the negotiation
  /// seeds from it instead of zero, and the final history is written back
  /// either way — both the closure loop's cross-iteration carry and the
  /// scheduler's cross-round carry.
  ///
  /// `pressure` (may be null; graph-node-sized) is an additive present
  /// congestion term per node — the cross-context pressure other contexts
  /// exported.  Null is bit-identical to all-zeros.
  ///
  /// `usage_out` (may be null) receives one byte per graph node: 1 where
  /// this pass's final routing occupies a WIRE node — the usage this
  /// context exports as pressure on its peers.
  ContextResult route_pass(const std::vector<RouteNet>& nets,
                           const timing::ContextTimingSpec* timing,
                           std::vector<double>* history,
                           const std::vector<double>* pressure,
                           std::vector<std::uint8_t>* usage_out);

  /// The pressure-free single-shot pass: what routing one independent
  /// context always was.
  ContextResult route_context(const std::vector<RouteNet>& nets,
                              const timing::ContextTimingSpec* timing =
                                  nullptr,
                              std::vector<double>* history = nullptr) {
    return route_pass(nets, timing, history, nullptr, nullptr);
  }

  // ---- Interleaved-session API (cross_context_mode == kInterleaved) ----
  //
  // A session adopts one context's CONVERGED routing (the scheduler's
  // round-0 baseline) and then rips up and re-routes INDIVIDUAL nets
  // against a live shared pressure array the scheduler owns — commit
  // granularity instead of round granularity.  Two properties make
  // net-granular negotiation sound without further PathFinder iterations:
  //   * sessions route EXCLUSIVELY — the expansion never enters a node
  //     another net of this context currently occupies — so intra-context
  //     occupancy can never exceed 1 and no overuse/history step is needed;
  //   * rip and route are SEPARATE calls, so the scheduler can subtract
  //     the ripped net's own usage from the shared pressure before the
  //     re-route (a net must not be repelled by its own old wires).
  // The session never touches history_ after the baseline seed, so the
  // baseline's congestion lessons price wires consistently all session.

  /// Adopts `routed` (parallel to `nets`, the converged baseline) and
  /// arms the session: occupancy/owner maps rebuilt from the trees,
  /// history seeded from `history_seed` (may be null), node costs built
  /// against `pressure_total` (graph-node-sized, scheduler-owned, may be
  /// null) scaled by `pressure_scale`, and per-net criticalities frozen
  /// from an STA of the adopted switch counts (1.0 per net when untimed).
  void session_begin(const std::vector<RouteNet>& nets,
                     const timing::ContextTimingSpec* timing,
                     const std::vector<RoutedNet>& routed,
                     const std::vector<double>* history_seed,
                     const double* pressure_total, double pressure_scale);

  /// Rips net `i` up: occupancy released, owner cleared, node costs
  /// patched.  `freed_wires` receives the WIRE nodes released (the
  /// scheduler's pressure patch set).  The old tree is retained for
  /// session_restore_net until the next rip.
  void session_rip_net(std::size_t i, std::vector<arch::NodeId>& freed_wires);

  /// Re-routes net `i` from scratch under exclusion + live pressure.
  /// On success commits occupancy/owner/node costs and fills
  /// `gained_wires` with the WIRE nodes of the new tree; on failure
  /// (a sink unreachable under exclusion) commits NOTHING and returns
  /// false — the caller restores the old tree.
  bool session_route_net(std::size_t i,
                         std::vector<arch::NodeId>& gained_wires);

  /// Re-commits the tree saved by the last session_rip_net (blocked
  /// re-route): occupancy, owner, and node costs return to their
  /// pre-rip state.
  void session_restore_net(std::size_t i);

  /// Re-derives the cached congestion cost at `nodes` after the scheduler
  /// patched the shared pressure array there (every context's session
  /// shares that array, so every core must be told).
  void session_refresh_pressure(const std::vector<arch::NodeId>& nodes);

  /// The session's current routing (adopted baseline + committed
  /// re-routes), parallel to the input nets.
  const std::vector<RoutedNet>& session_nets() const { return session_nets_; }

  /// Net index currently occupying wire node `node`, or -1.  Well-defined
  /// because sessions route exclusively (intra-context occupancy <= 1).
  std::int32_t session_owner(std::size_t node) const {
    return session_owner_[node];
  }

  /// Frozen criticality of net `i` (max over its connections; 1.0 when
  /// untimed) — the merged queue's priority key ingredient.
  double session_net_criticality(std::size_t i) const {
    return session_net_crit_[i];
  }

  /// Expansion-engine traffic accumulated by the session so far — the
  /// scheduler differences these across a wave for per-wave stats.
  std::size_t session_heap_pushes() const { return session_result_.heap_pushes; }
  std::size_t session_nodes_expanded() const {
    return session_result_.nodes_expanded;
  }

  /// Disarms the session and returns the expansion-engine traffic it
  /// accumulated (nets/iterations/converged are the scheduler's to fill).
  ContextResult session_finish();

  // ---- Speculative drain API (interleave_workers > 1) ----
  //
  // A WORKER core (a pool slot holding no session) re-routes one net of a
  // SESSION core entirely read-only: it reads the session's live
  // occupancy/cost arrays through a per-worker virtual-rip overlay that
  // prices the net's own old tree exactly as a real rip + pressure
  // patch-down would, records every (node, occupancy, cost) the expansion
  // read, and returns the candidate route without touching the session.
  // At commit time the scheduler performs the REAL rip + patch-down in
  // queue order and validates the recorded read-set against the live
  // arrays: the expansion's result is a pure function of those reads (plus
  // frozen criticalities/history/graph), so an intact read-set proves a
  // live re-route would reproduce the speculative result bit for bit, and
  // session_adopt_route commits it — counters included — as if the session
  // had computed it.  A mismatch means an earlier commit in the batch
  // interfered; the speculation is discarded and the net relived serially.

  /// One node of the virtual rip: `pressure` is the shared-pressure total
  /// the node will carry AFTER the rip's patch-down (the scheduler computes
  /// it with the exact summation patch() uses).
  struct SpecOverlay {
    arch::NodeId node;
    double pressure;
  };
  /// One recorded read: `cost_read` is 0 when the expansion only tested
  /// occupancy (exclusion) and never priced the node.
  struct SpecRead {
    arch::NodeId node;
    int occupancy;
    std::uint8_t cost_read;
    double cost;
  };
  struct SpecResult {
    bool found = false;  ///< False: a sink unreachable under exclusion.
    RoutedNet net;
    std::vector<arch::NodeId> tree;  ///< New tree, source + pins + wires.
    std::vector<SpecRead> reads;     ///< Dedup'd expansion read-set.
    std::size_t heap_pushes = 0;
    std::size_t heap_pops = 0;
    std::size_t stale_pops = 0;
    std::size_t nodes_expanded = 0;
  };

  /// Speculatively re-routes net `i` of `session` (an armed session core
  /// over the same graph) on THIS core's scratch, reading the session's
  /// arrays through the `overlay` virtual rip.  Never writes the session.
  /// `out` is reset first; on found=false the read-set is still complete,
  /// so a validated failure proves the live route would fail too.
  void speculate_route(const RouterCore& session, std::size_t i,
                       const std::vector<SpecOverlay>& overlay,
                       SpecResult& out);

  /// True iff every recorded read still matches this session's live
  /// occupancy/cost arrays (exact comparison — the determinism proof
  /// needs bit-identity, not tolerance).
  bool session_validate_reads(const std::vector<SpecRead>& reads) const;

  /// Commits a validated speculative route for net `i` exactly as the tail
  /// of session_route_net would: occupancy/owner/node costs at the new
  /// tree, `gained_wires` filled with its WIRE nodes, and the speculation's
  /// expansion counters folded into the session totals (they equal what a
  /// live re-route would have spent, so per-wave counter aggregation stays
  /// byte-stable across worker counts).
  void session_adopt_route(std::size_t i, SpecResult&& spec,
                           std::vector<arch::NodeId>& gained_wires);

  /// Folds a validated FAILED speculation's counters into the session
  /// totals (the live expansion would have spent them before giving up);
  /// the caller then restores the ripped net as usual.
  void session_fold_spec_counters(const SpecResult& spec);

  /// Current tree of net `i` (source + pins + wires) — the scheduler
  /// builds the virtual-rip overlay from it.
  const std::vector<arch::NodeId>& session_tree(std::size_t i) const {
    return session_tree_[i];
  }

 private:
  struct HeapItem {
    double cost;
    arch::NodeId value;
  };

  /// Packed per-node expansion record: everything one relaxation reads or
  /// writes about a node, on one cache line (24 bytes).  Epoch stamps make
  /// per-expansion resets O(touched); `depth` is the switch count from the
  /// net's source to this route-tree node (valid under tree_epoch) — the
  /// upstream delay a timing-driven expansion charges for reused wire.
  struct NodeState {
    double dist;
    arch::EdgeId prev;
    std::uint32_t dist_epoch;
    std::uint32_t tree_epoch;
    std::uint32_t depth;
  };

  /// Binary-heap engine behind the same push/pop interface the bucket
  /// queue exposes, so the expansion template serves both.
  struct BinaryQueue {
    RouterCore& core;
    void clear() { core.heap_.clear(); }
    bool empty() const { return core.heap_.empty(); }
    void push(double cost, arch::NodeId value) { core.heap_push(cost, value); }
    HeapItem pop() { return core.heap_pop(); }
  };

  /// Cached levelized timing engine of one spec.  Keyed by the spec's
  /// address plus a content signature (shape, delays, reader arcs), so a
  /// respawned spec object at the same address with different content can
  /// never alias a stale DAG.
  struct TimingEngine {
    const timing::ContextTimingSpec* spec;
    std::uint64_t signature;
    timing::ConnectionArcs arcs;
    timing::TimingGraph sta;
    TimingEngine(const timing::ContextTimingSpec& s, std::uint64_t sig)
        : spec(&s), signature(sig), arcs(s), sta(s.num_nodes, arcs.arcs()) {}
  };

  void heap_push(double cost, arch::NodeId value);
  HeapItem heap_pop();

  /// Distance of `node` in the current Dijkstra epoch (infinity if
  /// untouched).
  double dist_of(std::size_t node) const;

  /// Recomputes one node's cached congestion cost from its current
  /// occupancy/history/pressure — the exact expression the relaxation
  /// loop used to evaluate inline, so caching is bit-neutral.
  void refresh_node_cost(std::size_t idx);

  /// Seeds the route tree into `queue` and expands until `sink` pops.
  /// Returns false when the sink is unreachable.  Counter traffic lands in
  /// `result`.
  template <typename Queue>
  bool expand_to_sink(Queue& queue, const std::vector<arch::NodeId>& tree,
                      arch::NodeId sink, double cong_scale, double delay_term,
                      ContextResult& result);

  /// expand_to_sink's speculative twin: identical relaxation arithmetic
  /// and pop order, but occupancy/cost come from `src` through the
  /// virtual-rip overlay, every read is recorded into `out`, and counters
  /// land in `out` instead of a ContextResult.
  template <typename Queue>
  bool spec_expand_to_sink(Queue& queue, const RouterCore& src,
                           const std::vector<arch::NodeId>& tree,
                           arch::NodeId sink, double cong_scale,
                           double delay_term, SpecResult& out);

  /// Returns the cached (or freshly built) timing engine for `spec`,
  /// reset to unit-switch delays and re-analyzed — identical state to a
  /// fresh levelization, without rebuilding the DAG on a cache hit.
  TimingEngine& timing_engine(const timing::ContextTimingSpec& spec);

  const arch::RoutingGraph& graph_;
  RouterOptions options_;

  // Arena-backed graph-sized arrays (see the class comment).  The arena
  // outlives the core when pooled; the core resets it at construction.
  std::unique_ptr<common::ScratchArena> arena_owned_;
  common::ScratchArena* arena_;
  std::size_t scratch_nodes_ = 0;  ///< Node count the scratch was sized for.

  // Graph-shaped constants, precomputed once.
  double* base_cost_ = nullptr;  ///< Per-node occupancy cost.
  std::uint8_t* is_wire_ = nullptr;

  // Negotiation state, reset per pass.
  int* occupancy_ = nullptr;
  double* history_ = nullptr;
  /// Hoisted congestion cost: node_cost_[i] == base_cost_[i] * (1 +
  /// history + present_factor * occupancy [+ pressure]) at all times
  /// during an expansion.  Rebuilt per rip-up iteration, patched on the
  /// O(tree) occupancy updates.
  double* node_cost_ = nullptr;

  // Dijkstra scratch, epoch-stamped so resets are O(touched).
  NodeState* nodes_ = nullptr;
  std::uint32_t epoch_ = 0;
  std::uint32_t tree_epoch_ = 0;

  // Pass-scoped cost inputs captured for refresh_node_cost.  The scale
  // defaults to 1.0 outside sessions, and x * 1.0 is bit-exact for every
  // finite x — so the scaled expression stays bit-identical to the
  // historical one for all non-session passes.
  double present_factor_ = 0.5;
  const double* pressure_of_ = nullptr;
  double pressure_scale_ = 1.0;
  /// Session mode: the expansion skips any node another net of this
  /// context occupies.  False (all non-session passes) is a no-op.
  bool session_exclusive_ = false;

  std::vector<HeapItem> heap_;
  BucketQueue bucket_;

  // Timing caches (see TimingEngine) plus the per-pass criticality buffer.
  std::vector<std::unique_ptr<TimingEngine>> timing_cache_;
  std::vector<double> crit_;

  // Interleaved-session state (see the session_* methods).
  bool session_active_ = false;
  const std::vector<RouteNet>* session_input_ = nullptr;
  const timing::ContextTimingSpec* session_timing_ = nullptr;
  timing::ConnectionArcs* session_arcs_ = nullptr;
  std::vector<RoutedNet> session_nets_;
  std::vector<std::vector<arch::NodeId>> session_tree_;
  std::vector<std::int32_t> session_owner_;
  std::vector<double> session_net_crit_;
  ContextResult session_result_;
  // Single-slot undo state for the rip → route → (restore) protocol.
  std::size_t session_saved_index_ = 0;
  std::vector<RoutedPath> session_saved_paths_;
  std::vector<arch::NodeId> session_saved_tree_;

  // Speculation scratch (worker cores of the parallel drain).  Epoch-
  // stamped like the Dijkstra scratch: spec_mark_ validates the overlay
  // arrays, read_mark_/read_slot_ dedup the recorded read-set.  Lazily
  // sized on the first speculate_route call, so session-only and
  // independent-mode cores never pay for it.
  std::vector<std::uint32_t> spec_mark_;
  std::vector<int> spec_occ_;
  std::vector<double> spec_cost_;
  std::vector<std::uint32_t> read_mark_;
  std::vector<std::uint32_t> read_slot_;
  std::uint32_t spec_epoch_ = 0;
};

/// Pool of per-worker engine state: one RouterCore per slot, each on its
/// own ScratchArena, kept alive across routing calls so passes, rounds,
/// and closure iterations reuse warm scratch and cached timing DAGs
/// instead of re-mallocing and re-levelizing.  prepare() rebuilds a slot's
/// core only when the graph or options changed (the arena is reused even
/// then).  Slots are interchangeable — any core produces bit-identical
/// results for the same pass inputs — so callers may hand them to workers
/// in any order without perturbing determinism.  Not thread-safe: call
/// prepare() before fanning out, then give each worker its own slot.
/// checkout()/release() harden that hand-out: a checkout marks the slot
/// owned (atomically, so concurrent claimants cannot both win) and a
/// second checkout before release is an MCFPGA_CHECK failure — two workers
/// sharing an engine is the one race the speculative drain must never
/// have.  core() stays available for single-owner call sites.
class CorePool {
 public:
  void prepare(std::size_t count, const arch::RoutingGraph& graph,
               const RouterOptions& options);
  RouterCore& core(std::size_t slot) { return *slots_[slot].core; }
  std::size_t size() const { return slots_.size(); }

  /// Claims exclusive use of `slot` until release(); throws
  /// ProgrammingError if the slot is already claimed (or out of range).
  RouterCore& checkout(std::size_t slot);
  /// Returns a claimed slot; throws ProgrammingError if it was not
  /// checked out.
  void release(std::size_t slot);

 private:
  struct Slot {
    std::unique_ptr<common::ScratchArena> arena;
    std::unique_ptr<RouterCore> core;
    /// Heap-allocated so Slot stays movable (atomics are not).
    std::unique_ptr<std::atomic<bool>> in_use;
  };
  std::vector<Slot> slots_;
};

/// Deterministic merge of per-context results into one RouteResult:
/// switch patterns, summaries (including cross_context_conflicts and the
/// expansion-engine counters) and net lists assembled in context order,
/// independent of which worker produced what.  Shared by the independent
/// Router::route path and the cross-context scheduler.
RouteResult merge_context_results(
    const arch::RoutingGraph& graph,
    std::vector<RouterCore::ContextResult>&& per_context);

}  // namespace mcfpga::route
