// Reusable per-context PathFinder engine.
//
// A RouterCore owns all scratch state one context's negotiation needs —
// cost/history/occupancy arrays, the Dijkstra heap, epoch-stamped
// distance/visited marks — preallocated once per routing-graph size and
// reset cheaply between contexts.  Contexts are independent (a physical
// wire carries a different signal in every context), so Router::route can
// run one RouterCore per worker thread and merge the per-context results
// in context order; the merged RouteResult is bit-identical to routing the
// contexts serially.
//
// The hot loop walks the graph's flat CSR arrays (RoutingGraph::csr_*)
// instead of chasing per-node edge vectors.
//
// The engine exposes a resumable per-pass API (route_pass): one call is
// one full PathFinder negotiation of one context, but a pass can seed
// cross-context PRESSURE in (a per-node additive present-cost exported by
// other contexts) and exports its own per-node wire USAGE out — the
// handshake the cross-context scheduler (route/schedule.hpp) drives in
// rounds.  route_context is the pressure-free wrapper and remains
// bit-identical to the historical monolithic entry point.
//
// Timing-driven mode (RouterOptions::timing_mode + a ContextTimingSpec):
// each context carries its own TimingGraph, re-timed incrementally from
// the current switch counts between rip-up iterations, and every (net,
// sink) connection expands with cost
//   crit * se_delay + (1 - crit) * congestion_cost
// — the classic timing-driven PathFinder blend.  Criticalities start from
// the unit-switch (logic depth) prior, so even iteration 0 prefers short
// detours for deep paths.  Reused route-tree wire is seeded into the
// expansion at its accumulated upstream delay (crit-weighted), so the
// router can trade a longer detour near the source for a shorter critical
// tail instead of treating every branch point as free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/routing_graph.hpp"
#include "route/router.hpp"
#include "timing/net_timing.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::route {

class RouterCore {
 public:
  /// Result of routing one context.
  struct ContextResult {
    std::vector<RoutedNet> nets;
    std::size_t iterations = 0;  ///< PathFinder iterations consumed.
    bool converged = false;      ///< False = congestion never resolved.
    /// Aggregates over all sink connections (feeds ContextStats without a
    /// post-hoc re-scan of every net).
    std::size_t wire_nodes_used = 0;
    std::size_t switches_crossed = 0;
  };

  RouterCore(const arch::RoutingGraph& graph, const RouterOptions& options);

  /// One negotiation pass over one context's nets — a full PathFinder
  /// rip-up/re-route loop.  Throws FlowError when a net has no physical
  /// path at all; returns converged=false when congestion cannot be
  /// negotiated away within options.max_iterations.  `timing` (may be
  /// null) enables the criticality-driven cost when options.timing_mode is
  /// set; its nets/sinks must parallel `nets`.
  ///
  /// `history` (may be null) carries PathFinder history costs across
  /// passes: when its size matches the graph's node count the negotiation
  /// seeds from it instead of zero, and the final history is written back
  /// either way — both the closure loop's cross-iteration carry and the
  /// scheduler's cross-round carry.
  ///
  /// `pressure` (may be null; graph-node-sized) is an additive present
  /// congestion term per node — the cross-context pressure other contexts
  /// exported.  Null is bit-identical to all-zeros.
  ///
  /// `usage_out` (may be null) receives one byte per graph node: 1 where
  /// this pass's final routing occupies a WIRE node — the usage this
  /// context exports as pressure on its peers.
  ContextResult route_pass(const std::vector<RouteNet>& nets,
                           const timing::ContextTimingSpec* timing,
                           std::vector<double>* history,
                           const std::vector<double>* pressure,
                           std::vector<std::uint8_t>* usage_out);

  /// The pressure-free single-shot pass: what routing one independent
  /// context always was.
  ContextResult route_context(const std::vector<RouteNet>& nets,
                              const timing::ContextTimingSpec* timing =
                                  nullptr,
                              std::vector<double>* history = nullptr) {
    return route_pass(nets, timing, history, nullptr, nullptr);
  }

 private:
  struct HeapItem {
    double cost;
    arch::NodeId node;
  };

  void heap_push(double cost, arch::NodeId node);
  HeapItem heap_pop();

  /// Distance of `node` in the current Dijkstra epoch (infinity if untouched).
  double dist_of(std::size_t node) const;

  const arch::RoutingGraph& graph_;
  RouterOptions options_;

  // Graph-shaped constants, precomputed once.
  std::vector<double> base_cost_;  ///< Per-node occupancy cost.
  std::vector<std::uint8_t> is_wire_;

  // Negotiation state, reset per context.
  std::vector<int> occupancy_;
  std::vector<double> history_;

  // Dijkstra scratch, epoch-stamped so resets are O(touched).
  std::vector<double> dist_;
  std::vector<arch::EdgeId> prev_;
  std::vector<std::uint32_t> dist_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> in_tree_epoch_;
  std::uint32_t tree_epoch_ = 0;
  /// Switch crossings from the net's source to each route-tree node (valid
  /// for nodes stamped with the current tree_epoch_): the upstream delay a
  /// timing-driven expansion charges when it reuses tree wire.
  std::vector<std::uint32_t> tree_depth_;
  std::vector<HeapItem> heap_;
};

/// Deterministic merge of per-context results into one RouteResult:
/// switch patterns, summaries (including cross_context_conflicts) and net
/// lists assembled in context order, independent of which worker produced
/// what.  Shared by the independent Router::route path and the
/// cross-context scheduler.
RouteResult merge_context_results(
    const arch::RoutingGraph& graph,
    std::vector<RouterCore::ContextResult>&& per_context);

}  // namespace mcfpga::route
