// Transistor-weighted area model reproducing the paper's Sec. 5 comparison.
//
// Conventional MC-FPGA (the "typical" baseline):
//   * routing switch (Fig. 2): n SRAM bits + n:1 context mux + pass-gate;
//   * logic block: fixed base-K LUT with n configuration planes — each of
//     the 2^K logical bits stores n SRAM bits behind an n:1 context mux —
//     plus the LUT input mux tree and output flip-flops.
//
// Proposed MC-FPGA:
//   * switch blocks are RCM: per configuration bit, the synthesized SE
//     decoder network (1 SE for constant/single-ID-bit patterns, a small SE
//     tree for complex ones) plus input controllers and track crossings;
//     identical patterns inside one block may share a network, with
//     additional rows costing a tap (Table 1's inter-row redundancy);
//   * logic blocks are adaptive MCMG-LUTs: the same SRAM budget, a deeper
//     input mux tree (plane select folds into the input mux), and a local
//     RCM-built size controller.
//
// The area of the proposed fabric is computed from MEASURED bitstream
// structure — decoder synthesis runs on every row — so the headline ratio
// emerges from the data rather than from hard-coded fractions.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "area/device_library.hpp"
#include "arch/fabric_spec.hpp"
#include "config/bitstream.hpp"

namespace mcfpga::area {

/// Itemized area (transistor equivalents).
struct AreaBreakdown {
  double routing_memory = 0.0;  ///< SRAM / SE storage for routing switches.
  double routing_mux = 0.0;     ///< Context muxes / SE muxes.
  double routing_pass = 0.0;    ///< Routing pass-gates and taps.
  double rcm_overhead = 0.0;    ///< Input controllers + track crossings.
  double logic_memory = 0.0;    ///< LUT configuration SRAM.
  double logic_mux = 0.0;       ///< LUT input trees + per-bit context muxes.
  double logic_control = 0.0;   ///< Size controllers (proposed only).
  double flip_flops = 0.0;
  double buffers = 0.0;         ///< ID-bit distribution / wire drivers.

  double total() const;
};

struct ComparisonOptions {
  /// Let identical patterns inside one switch block share a decoder
  /// network (exploits Table 1's inter-row redundancy).  Default on — this
  /// is the architecture's headline configuration; benches toggle it off
  /// for the ablation.
  bool share_identical_patterns = true;
  /// Device library used for the RCM fine-grained components of the
  /// PROPOSED fabric (cmos() or fepg()).  The conventional baseline and
  /// all SRAM/LUT structures are always plain CMOS, matching the paper's
  /// "typical CMOS-based MC-FPGA" baseline.
  DeviceLibrary rcm_library = DeviceLibrary::cmos();
};

struct ComparisonReport {
  AreaBreakdown conventional;
  AreaBreakdown proposed;
  /// Decoder statistics actually measured on the switch bitstreams.
  std::size_t switch_rows = 0;
  std::size_t decoder_networks = 0;
  std::size_t decoder_ses = 0;
  std::size_t shared_taps = 0;

  double ratio() const {
    return conventional.total() <= 0.0
               ? 0.0
               : proposed.total() / conventional.total();
  }
  void print(std::ostream& os, const std::string& title) const;
};

class AreaModel {
 public:
  explicit AreaModel(DeviceLibrary base = DeviceLibrary::cmos())
      : base_(base) {}

  const DeviceLibrary& base_library() const { return base_; }

  /// Conventional multi-context routing switch (Fig. 2).
  double conventional_switch(std::size_t num_contexts) const;
  /// One RCM-realized switch block given its rows; fills the counters.
  AreaBreakdown rcm_switch_block(const config::Bitstream& block_rows,
                                 const ComparisonOptions& options,
                                 std::size_t* networks, std::size_t* ses,
                                 std::size_t* taps) const;

  /// Conventional logic block (fixed planes; per-output).
  double conventional_logic_block(const lut::LogicBlockSpec& lb) const;
  /// Proposed adaptive logic block (MCMG + local controller; per-output
  /// controller cost folded in via controller_ses).
  double proposed_logic_block(const lut::LogicBlockSpec& lb,
                              std::size_t controller_ses,
                              const ComparisonOptions& options) const;

  /// Full-fabric comparison: `switch_blocks` carries one Bitstream per
  /// physical block (switch block / connection block / diamond group); the
  /// logic-block population comes from `spec`.
  ComparisonReport compare_fabric(
      const arch::FabricSpec& spec,
      const std::vector<config::Bitstream>& switch_blocks,
      const ComparisonOptions& options) const;

  /// Prints the bill of materials for both implementations.
  void describe(std::ostream& os, std::size_t num_contexts) const;

 private:
  DeviceLibrary base_;
};

}  // namespace mcfpga::area
