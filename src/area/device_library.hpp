// Device libraries for the area model (paper Sec. 5, Fig. 15).
//
// All areas are in minimum-width-transistor equivalents (the standard
// FPGA-architecture currency; the paper reports only area *ratios*, which
// this unit reproduces).  Two libraries are provided:
//
//  * cmos(): Fig. 8's switch element as a CMOS circuit — 2 SRAM bits,
//    a 2:1 pass mux, and a routing pass-gate.
//  * fepg(): Fig. 15's ferroelectric functional pass-gate realization.
//    The paper states "the area of an FePG-based SE is 50% of that of a
//    CMOS-based SE"; we apply the same factor to the other fine-grained
//    RCM components (programmable switches and input controllers), which
//    are built from the same merged logic-storage devices.  FePGs are
//    non-volatile, which zeroes configuration-memory static power.
#pragma once

#include <cstddef>
#include <string>

namespace mcfpga::area {

struct DeviceLibrary {
  std::string name = "cmos";

  // Primitive costs (minimum-width transistor equivalents).
  double sram_bit = 6.0;
  double mux2_stage = 2.0;        ///< One 2:1 pass-transistor mux stage.
  double pass_gate = 1.0;         ///< Routing pass transistor.
  double inverter = 2.0;
  double flip_flop = 20.0;
  double buffer = 4.0;

  // RCM fine-grained components.
  double switch_element = 15.0;        ///< Fig. 8: 2 SRAM + mux2 + pass-gate.
  double input_controller = 10.0;      ///< Fig. 7c: SRAM + mux2 + inverter.
  double programmable_switch = 7.0;    ///< Fig. 7b: SRAM + pass-gate.
  /// Tap: re-using an already-generated configuration bit for another
  /// switch (inter-row redundancy): one track crossing + one pass-gate.
  double shared_tap = 8.0;

  /// True when configuration storage is non-volatile (FePG): no static
  /// power in the configuration memory.
  bool non_volatile = false;

  /// Static leakage per volatile memory bit (arbitrary leak units).
  double leak_per_bit = 1.0;

  static DeviceLibrary cmos();
  static DeviceLibrary fepg();
};

/// Cost of an n:1 mux built from 2:1 stages.
double mux_tree(const DeviceLibrary& lib, std::size_t inputs);

}  // namespace mcfpga::area
