// Power model (paper Sec. 5): the FePG's second selling point is static
// power — configuration data lives in non-volatile ferroelectric devices,
// so the configuration memory stops leaking.  Dynamic context-switch energy
// scales with the configuration bits that toggle (small, by the paper's
// <3-5% change-rate premise) plus the ID-bit broadcast.
#pragma once

#include <cstddef>

#include "area/device_library.hpp"
#include "config/stats.hpp"

namespace mcfpga::area {

struct PowerParams {
  double leak_per_bit = 1.0;       ///< Static leak per volatile config bit.
  double toggle_energy = 1.0;      ///< Energy per toggled config bit.
  double id_broadcast_energy = 4.0;  ///< Per ID bit per context switch.
};

struct PowerReport {
  double static_power = 0.0;          ///< Leak units.
  double switch_energy = 0.0;         ///< Energy per average context switch.
  std::size_t volatile_bits = 0;
  std::size_t nonvolatile_bits = 0;
};

/// Static + context-switch power for a fabric whose configuration state is
/// `total_config_bits` bits realized in `lib`, with the measured change
/// behaviour in `stats`.
PowerReport estimate_power(std::size_t total_config_bits,
                           const DeviceLibrary& lib,
                           const config::BitstreamStats& stats,
                           const PowerParams& params = {});

}  // namespace mcfpga::area
