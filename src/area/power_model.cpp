#include "area/power_model.hpp"

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::area {

PowerReport estimate_power(std::size_t total_config_bits,
                           const DeviceLibrary& lib,
                           const config::BitstreamStats& stats,
                           const PowerParams& params) {
  PowerReport report;
  if (lib.non_volatile) {
    report.nonvolatile_bits = total_config_bits;
    report.static_power = 0.0;
  } else {
    report.volatile_bits = total_config_bits;
    report.static_power =
        static_cast<double>(total_config_bits) * params.leak_per_bit *
        lib.leak_per_bit;
  }
  const double toggled_bits =
      stats.avg_change_rate * static_cast<double>(stats.num_rows);
  const std::size_t id_bits =
      stats.num_contexts >= 2 ? config::num_id_bits(stats.num_contexts) : 1;
  report.switch_energy =
      toggled_bits * params.toggle_energy +
      static_cast<double>(id_bits) * params.id_broadcast_energy;
  return report;
}

}  // namespace mcfpga::area
