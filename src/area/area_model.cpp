#include "area/area_model.hpp"

#include <unordered_map>

#include "common/bitvector.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/context_id.hpp"
#include "rcm/decoder_synth.hpp"

namespace mcfpga::area {

double AreaBreakdown::total() const {
  return routing_memory + routing_mux + routing_pass + rcm_overhead +
         logic_memory + logic_mux + logic_control + flip_flops + buffers;
}

double AreaModel::conventional_switch(std::size_t num_contexts) const {
  return static_cast<double>(num_contexts) * base_.sram_bit +
         mux_tree(base_, num_contexts) + base_.pass_gate;
}

AreaBreakdown AreaModel::rcm_switch_block(
    const config::Bitstream& block_rows, const ComparisonOptions& options,
    std::size_t* networks, std::size_t* ses, std::size_t* taps) const {
  const DeviceLibrary& rcm = options.rcm_library;
  AreaBreakdown area;

  std::unordered_map<BitVector, bool, BitVectorHash> seen;
  for (const auto& row : block_rows.rows()) {
    const bool share = options.share_identical_patterns;
    if (share) {
      const auto it = seen.find(row.pattern.values());
      if (it != seen.end()) {
        // Inter-row redundancy: reuse the existing network's generated bit
        // through a tap (track crossing + routing pass-gate).
        area.routing_pass += rcm.shared_tap;
        if (taps != nullptr) {
          ++*taps;
        }
        continue;
      }
      seen.emplace(row.pattern.values(), true);
    }
    const rcm::DecoderNetwork net = rcm::synthesize_decoder(row.pattern);
    // SE storage/mux/pass split: an SE is 2 SRAM + mux2 + pass-gate; we
    // itemize proportionally so breakdowns stay meaningful across device
    // libraries.
    const double se_area =
        static_cast<double>(net.se_count()) * rcm.switch_element;
    const double storage_share = (2.0 * base_.sram_bit) /
                                 (2.0 * base_.sram_bit + base_.mux2_stage +
                                  base_.pass_gate);
    const double mux_share = base_.mux2_stage /
                             (2.0 * base_.sram_bit + base_.mux2_stage +
                              base_.pass_gate);
    area.routing_memory += se_area * storage_share;
    area.routing_mux += se_area * mux_share;
    area.routing_pass += se_area * (1.0 - storage_share - mux_share);
    area.rcm_overhead +=
        static_cast<double>(net.input_controller_count()) *
            rcm.input_controller +
        static_cast<double>(net.programmable_switch_count()) *
            rcm.programmable_switch;
    if (networks != nullptr) {
      ++*networks;
    }
    if (ses != nullptr) {
      *ses += net.se_count();
    }
  }
  return area;
}

double AreaModel::conventional_logic_block(
    const lut::LogicBlockSpec& lb) const {
  const std::size_t logical_bits = std::size_t{1} << lb.base_inputs;
  const double per_output =
      // n SRAM bits behind an n:1 context mux, per logical bit.
      static_cast<double>(logical_bits) *
          (static_cast<double>(lb.num_contexts) * base_.sram_bit +
           mux_tree(base_, lb.num_contexts)) +
      // LUT input mux tree + input buffers.
      mux_tree(base_, logical_bits) +
      static_cast<double>(lb.base_inputs) * base_.inverter +
      base_.flip_flop;
  return per_output * static_cast<double>(lb.num_outputs);
}

double AreaModel::proposed_logic_block(const lut::LogicBlockSpec& lb,
                                       std::size_t controller_ses,
                                       const ComparisonOptions& options) const {
  const std::size_t k = config::num_id_bits(lb.num_contexts);
  const std::size_t total_bits =
      (std::size_t{1} << lb.base_inputs) * lb.num_contexts;
  const std::size_t max_inputs = lb.base_inputs + k;
  const double per_output =
      // Same SRAM budget, flat (no per-bit context mux).
      static_cast<double>(total_bits) * base_.sram_bit +
      // Deeper input tree: plane select folds into the input mux.
      mux_tree(base_, total_bits) +
      static_cast<double>(max_inputs) * base_.inverter +
      base_.flip_flop;
  // Local size controller, built from RCM switch elements.
  const double controller =
      static_cast<double>(controller_ses) * options.rcm_library.switch_element;
  return per_output * static_cast<double>(lb.num_outputs) + controller;
}

ComparisonReport AreaModel::compare_fabric(
    const arch::FabricSpec& spec,
    const std::vector<config::Bitstream>& switch_blocks,
    const ComparisonOptions& options) const {
  ComparisonReport report;
  const std::size_t n = spec.num_contexts;

  // --- Routing fabric -----------------------------------------------------
  std::size_t total_rows = 0;
  for (const auto& block : switch_blocks) {
    total_rows += block.num_rows();

    report.proposed = [&] {
      AreaBreakdown acc = report.proposed;
      const AreaBreakdown blk = rcm_switch_block(
          block, options, &report.decoder_networks, &report.decoder_ses,
          &report.shared_taps);
      acc.routing_memory += blk.routing_memory;
      acc.routing_mux += blk.routing_mux;
      acc.routing_pass += blk.routing_pass;
      acc.rcm_overhead += blk.rcm_overhead;
      return acc;
    }();
  }
  report.switch_rows = total_rows;

  const double conv_switch = conventional_switch(n);
  report.conventional.routing_memory +=
      static_cast<double>(total_rows) * static_cast<double>(n) *
      base_.sram_bit;
  report.conventional.routing_mux +=
      static_cast<double>(total_rows) * mux_tree(base_, n);
  report.conventional.routing_pass +=
      static_cast<double>(total_rows) * base_.pass_gate;
  (void)conv_switch;

  // --- Logic fabric --------------------------------------------------------
  const std::size_t lbs = spec.num_cells();
  report.conventional.logic_memory +=
      static_cast<double>(lbs) * static_cast<double>(spec.logic_block.num_outputs) *
      static_cast<double>(std::size_t{1} << spec.logic_block.base_inputs) *
      static_cast<double>(n) * base_.sram_bit;
  report.conventional.logic_mux +=
      static_cast<double>(lbs) *
      static_cast<double>(spec.logic_block.num_outputs) *
      (static_cast<double>(std::size_t{1} << spec.logic_block.base_inputs) *
           mux_tree(base_, n) +
       mux_tree(base_, std::size_t{1} << spec.logic_block.base_inputs) +
       static_cast<double>(spec.logic_block.base_inputs) * base_.inverter);
  report.conventional.flip_flops +=
      static_cast<double>(lbs) *
      static_cast<double>(spec.logic_block.num_outputs) * base_.flip_flop;

  const std::size_t k = config::num_id_bits(n);
  const std::size_t total_bits =
      (std::size_t{1} << spec.logic_block.base_inputs) * n;
  report.proposed.logic_memory += static_cast<double>(lbs) *
                                  static_cast<double>(spec.logic_block.num_outputs) *
                                  static_cast<double>(total_bits) *
                                  base_.sram_bit;
  report.proposed.logic_mux +=
      static_cast<double>(lbs) *
      static_cast<double>(spec.logic_block.num_outputs) *
      (mux_tree(base_, total_bits) +
       static_cast<double>(spec.logic_block.base_inputs + k) *
           base_.inverter);
  report.proposed.flip_flops +=
      static_cast<double>(lbs) *
      static_cast<double>(spec.logic_block.num_outputs) * base_.flip_flop;
  // Local size controllers: one SE per context-ID bit per logic block (the
  // adaptive-granularity steering of Sec. 4), priced in the RCM library.
  if (spec.logic_block.control == lut::SizeControl::kLocal) {
    report.proposed.logic_control +=
        static_cast<double>(lbs) * static_cast<double>(k) *
        options.rcm_library.switch_element;
  }

  // --- Context-ID distribution --------------------------------------------
  // Both fabrics broadcast k ID bits on global wires with one driver per
  // cell (paper Sec. 3); identical cost on both sides.
  const double id_drivers =
      static_cast<double>(lbs) * static_cast<double>(k) * base_.buffer;
  report.conventional.buffers += id_drivers;
  report.proposed.buffers += id_drivers;

  return report;
}

void ComparisonReport::print(std::ostream& os,
                             const std::string& title) const {
  os << "== " << title << " ==\n";
  Table t({"component", "conventional", "proposed"});
  const auto row = [&](const std::string& name, double c, double p) {
    t.add_row({name, fmt_double(c, 0), fmt_double(p, 0)});
  };
  row("routing memory", conventional.routing_memory, proposed.routing_memory);
  row("routing mux", conventional.routing_mux, proposed.routing_mux);
  row("routing pass-gates/taps", conventional.routing_pass,
      proposed.routing_pass);
  row("RCM overhead (C/P)", conventional.rcm_overhead, proposed.rcm_overhead);
  row("logic memory", conventional.logic_memory, proposed.logic_memory);
  row("logic mux trees", conventional.logic_mux, proposed.logic_mux);
  row("size controllers", conventional.logic_control, proposed.logic_control);
  row("flip-flops", conventional.flip_flops, proposed.flip_flops);
  row("ID distribution", conventional.buffers, proposed.buffers);
  t.add_separator();
  row("TOTAL", conventional.total(), proposed.total());
  t.print(os);
  os << "switch rows: " << fmt_count(switch_rows)
     << ", decoder networks: " << fmt_count(decoder_networks)
     << ", decoder SEs: " << fmt_count(decoder_ses)
     << ", shared taps: " << fmt_count(shared_taps) << "\n";
  os << "AREA RATIO (proposed / conventional): "
     << fmt_percent(ratio(), 1) << "\n";
}

void AreaModel::describe(std::ostream& os, std::size_t num_contexts) const {
  Table t({"primitive", "area (min-width transistor equivalents)"});
  t.add_row({"SRAM bit", fmt_double(base_.sram_bit, 1)});
  t.add_row({"2:1 mux stage", fmt_double(base_.mux2_stage, 1)});
  t.add_row({"pass-gate", fmt_double(base_.pass_gate, 1)});
  t.add_row({"switch element (CMOS)", fmt_double(base_.switch_element, 1)});
  t.add_row({"input controller", fmt_double(base_.input_controller, 1)});
  t.add_row({"programmable switch", fmt_double(base_.programmable_switch, 1)});
  t.add_row({"flip-flop", fmt_double(base_.flip_flop, 1)});
  t.add_row({"conventional " + std::to_string(num_contexts) +
                 "-context switch",
             fmt_double(conventional_switch(num_contexts), 1)});
  t.print(os);
}

}  // namespace mcfpga::area
