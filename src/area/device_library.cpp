#include "area/device_library.hpp"

#include "common/error.hpp"

namespace mcfpga::area {

DeviceLibrary DeviceLibrary::cmos() { return DeviceLibrary{}; }

DeviceLibrary DeviceLibrary::fepg() {
  DeviceLibrary lib;
  lib.name = "fepg";
  // Paper: FePG-based SE area = 50% of the CMOS SE (storage and logic
  // merged at the device level).  For the other fine-grained components
  // only the storage cell shrinks (6T SRAM -> ~3T ferroelectric cell);
  // their pass transistors, muxes and track wiring stay CMOS:
  //   input controller   10 = 6 storage + 4 logic -> 3 + 4 = 7
  //   programmable switch 7 = 6 storage + 1 pass  -> 3 + 1 = 4
  //   shared tap          8 = P switch + pass     -> 4 + 1 = 5
  lib.switch_element = 7.5;
  lib.input_controller = 7.0;
  lib.programmable_switch = 4.0;
  lib.shared_tap = 5.0;
  lib.non_volatile = true;
  return lib;
}

double mux_tree(const DeviceLibrary& lib, std::size_t inputs) {
  MCFPGA_REQUIRE(inputs >= 1, "mux needs at least one input");
  return static_cast<double>(inputs - 1) * lib.mux2_stage;
}

}  // namespace mcfpga::area
