#include "sim/simulator.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace mcfpga::sim {

namespace {

struct UnionFind {
  std::vector<std::int32_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::int32_t find(std::int32_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      parent[static_cast<std::size_t>(b)] = a;
    }
  }
};

constexpr std::int8_t kUnknown = -1;

/// True iff the truth table's value can depend on address bit `pin`.
bool pin_is_relevant(const BitVector& table, std::size_t pin) {
  const std::size_t bit = std::size_t{1} << pin;
  if (bit >= table.size()) {
    return false;
  }
  for (std::size_t a = 0; a < table.size(); ++a) {
    if ((a & bit) == 0 && table.get(a) != table.get(a | bit)) {
      return true;
    }
  }
  return false;
}

}  // namespace

FabricSimulator::FabricSimulator(const arch::RoutingGraph& graph,
                                 FabricProgram program)
    : graph_(graph), program_(std::move(program)) {
  MCFPGA_REQUIRE(program_.switch_patterns.size() == graph_.num_switches(),
                 "program must cover every physical switch");
  const std::size_t num_contexts = graph_.spec().num_contexts;
  comp_.resize(num_contexts);
  comp_count_.resize(num_contexts);
  driver_of_comp_.resize(num_contexts);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    build_context(c);
  }
}

void FabricSimulator::build_context(std::size_t context) {
  UnionFind uf(graph_.num_nodes());
  for (std::size_t s = 0; s < graph_.num_switches(); ++s) {
    if (program_.switch_patterns[s].value_in(context)) {
      const auto& sw = graph_.rr_switch(static_cast<arch::SwitchId>(s));
      const auto& e = graph_.edge(sw.forward);
      uf.unite(e.from, e.to);
    }
  }
  // Compact component ids.
  auto& comp = comp_[context];
  comp.assign(graph_.num_nodes(), -1);
  std::int32_t next = 0;
  for (std::size_t n = 0; n < graph_.num_nodes(); ++n) {
    const std::int32_t root = uf.find(static_cast<std::int32_t>(n));
    if (comp[static_cast<std::size_t>(root)] == -1) {
      comp[static_cast<std::size_t>(root)] = next++;
    }
    comp[n] = comp[static_cast<std::size_t>(root)];
  }
  comp_count_[context] = static_cast<std::size_t>(next);

  // Single-driver invariant: PI pads and used LB output pins drive.
  auto& driver = driver_of_comp_[context];
  driver.assign(comp_count_[context], arch::kInvalidNode);
  const auto claim = [&](arch::NodeId node) {
    const std::int32_t cid = comp[static_cast<std::size_t>(node)];
    if (driver[static_cast<std::size_t>(cid)] != arch::kInvalidNode &&
        driver[static_cast<std::size_t>(cid)] != node) {
      throw ProgrammingError(
          "two drivers shorted in context " + std::to_string(context) + ": " +
          graph_.node(driver[static_cast<std::size_t>(cid)]).name + " and " +
          graph_.node(node).name);
    }
    driver[static_cast<std::size_t>(cid)] = node;
  };
  for (const auto& [name, pad] : program_.input_pads) {
    claim(graph_.pad(pad));
  }
  for (const auto& lb : program_.lbs) {
    for (std::size_t o = 0; o < lb.outputs.size(); ++o) {
      if (lb.outputs[o].used) {
        claim(graph_.out_pin(lb.x, lb.y, o));
      }
    }
  }
}

netlist::ValueMap FabricSimulator::eval(
    std::size_t context, const netlist::ValueMap& pi_values) const {
  MCFPGA_REQUIRE(context < comp_.size(), "context out of range");
  const auto& comp = comp_[context];
  const auto& driver = driver_of_comp_[context];

  std::vector<std::int8_t> value(comp_count_[context], kUnknown);
  // Undriven components float to 0 (pull-down model).
  for (std::size_t cid = 0; cid < comp_count_[context]; ++cid) {
    if (driver[cid] == arch::kInvalidNode) {
      value[cid] = 0;
    }
  }
  for (const auto& [name, pad] : program_.input_pads) {
    const auto it = pi_values.find(name);
    const bool v = it != pi_values.end() && it->second;
    value[static_cast<std::size_t>(
        comp[static_cast<std::size_t>(graph_.pad(pad))])] = v ? 1 : 0;
  }

  // Evaluate logic blocks to fixpoint (combinational, so at most one pass
  // per logic level is needed).  Each OUTPUT evaluates as soon as the pins
  // its active plane's truth table actually depends on are resolved —
  // exactly like the hardware, where a LUT output is a pure function and
  // unread address inputs cannot affect it.  Whole-block readiness would
  // deadlock blocks whose second output feeds a loop through another block.
  const std::size_t max_passes = program_.lbs.size() + 2;
  const std::size_t plane_mask_context = context;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (const auto& lb : program_.lbs) {
      const std::size_t k = lb.mode.inputs;
      const std::size_t plane = plane_mask_context & (lb.mode.planes - 1);
      for (std::size_t o = 0; o < lb.outputs.size(); ++o) {
        if (!lb.outputs[o].used) {
          continue;
        }
        const BitVector& table = lb.outputs[o].plane_tables[plane];
        std::size_t address = 0;
        bool ready = true;
        for (std::size_t p = 0; p < k && ready; ++p) {
          const arch::NodeId pin = graph_.in_pin(lb.x, lb.y, p);
          const std::int8_t v = value[static_cast<std::size_t>(
              comp[static_cast<std::size_t>(pin)])];
          if (v == 1) {
            address |= std::size_t{1} << p;
          } else if (v == kUnknown && pin_is_relevant(table, p)) {
            ready = false;
          }
        }
        if (!ready) {
          continue;
        }
        const bool out = table.get(address);
        const arch::NodeId pin = graph_.out_pin(lb.x, lb.y, o);
        auto& slot = value[static_cast<std::size_t>(
            comp[static_cast<std::size_t>(pin)])];
        const std::int8_t nv = out ? 1 : 0;
        if (slot != nv) {
          MCFPGA_CHECK(slot == kUnknown || pass + 1 < max_passes,
                       "combinational loop or driver conflict");
          slot = nv;
          changed = true;
        }
      }
    }
    if (!changed) {
      break;
    }
  }

  netlist::ValueMap out;
  for (const auto& [name, pad] : program_.output_pads) {
    const std::int8_t v = value[static_cast<std::size_t>(
        comp[static_cast<std::size_t>(graph_.pad(pad))])];
    MCFPGA_CHECK(v != kUnknown,
                 "primary output '" + name + "' did not resolve");
    out[name] = v == 1;
  }
  return out;
}

std::size_t FabricSimulator::num_components(std::size_t context) const {
  MCFPGA_REQUIRE(context < comp_count_.size(), "context out of range");
  return comp_count_[context];
}

}  // namespace mcfpga::sim
