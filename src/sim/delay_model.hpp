// SE-granularity delay model (paper Sec. 3).
//
// The paper's timing argument is counted in switch-element pass-gate
// crossings: a signal routed through many SEs in series is slow, and
// double-length lines exist precisely to halve the crossing count on long
// straight runs.  The delay model therefore measures:
//   connection delay = (switches crossed) * se_delay
//   block delay      = lut_delay per logic level
// and the critical path is the longest accumulation over a context's
// timing DAG.
#pragma once

#include <cstddef>
#include <vector>

namespace mcfpga::sim {

struct DelayParams {
  double se_delay = 1.0;   ///< One pass-gate crossing.
  double lut_delay = 2.0;  ///< One logic-block evaluation.
};

/// One source->sink connection in the timing DAG.  Node ids are arbitrary
/// dense indices chosen by the caller (e.g. cluster ids + I/O terminals).
struct TimingArc {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t switches = 0;  ///< Pass-gates crossed on the routed path.
  bool to_is_lut = true;     ///< Whether `to` adds a LUT delay.
};

struct TimingReport {
  double critical_path = 0.0;
  /// arrival[node] = latest arrival time.
  std::vector<double> arrival;
  /// Nodes on (one) critical path, source first.
  std::vector<std::size_t> critical_nodes;
};

/// Longest-path analysis.  Throws ProgrammingError on a combinational cycle.
/// Thin compatibility wrapper over timing::TimingGraph (src/timing/), which
/// the optimization loops use directly for incremental slack/criticality.
TimingReport analyze_timing(std::size_t num_nodes,
                            const std::vector<TimingArc>& arcs,
                            const DelayParams& params = {});

}  // namespace mcfpga::sim
