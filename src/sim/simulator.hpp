// Cycle-level functional simulator of a programmed fabric.
//
// The simulator works at the physical level the paper argues about:
// per context, every ON pass-gate (from the per-switch context patterns —
// themselves producible by either the conventional context memory or the
// RCM decoders, which are verified equivalent) shorts its two routing
// nodes together.  Electrical components are built with union-find; each
// component takes the value of its unique driver (a primary-input pad or a
// used logic-block output pin), and logic blocks are evaluated to fixpoint.
// Outputs are read at primary-output pads.
//
// Because the simulator never looks at the netlist, agreement with the
// netlist reference evaluator (netlist/eval.hpp) is an end-to-end proof
// that mapping, placement, routing and programming are all consistent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/routing_graph.hpp"
#include "common/bitvector.hpp"
#include "config/pattern.hpp"
#include "lut/mcmg_lut.hpp"
#include "netlist/eval.hpp"

namespace mcfpga::sim {

struct LbOutputConfig {
  bool used = false;
  /// plane_tables[plane] = truth table over the LB's input PINS (address
  /// bit i = pin i), 2^mode.inputs bits each.
  std::vector<BitVector> plane_tables;
};

struct LbConfig {
  std::size_t x = 0;
  std::size_t y = 0;
  lut::LutMode mode;
  std::vector<LbOutputConfig> outputs;
};

struct FabricProgram {
  /// Per-switch on/off pattern across contexts, indexed by SwitchId.
  std::vector<config::ContextPattern> switch_patterns;
  std::vector<LbConfig> lbs;
  /// Primary input/output name -> pad index (RoutingGraph::pad()).
  std::map<std::string, std::size_t> input_pads;
  std::map<std::string, std::size_t> output_pads;
};

class FabricSimulator {
 public:
  /// Builds per-context electrical components.  Throws ProgrammingError if
  /// any component has two drivers (shorted outputs) in some context.
  FabricSimulator(const arch::RoutingGraph& graph, FabricProgram program);

  /// Combinationally evaluates one context.  Unknown PI names default to 0.
  /// Returns the values at every primary-output pad.
  netlist::ValueMap eval(std::size_t context,
                         const netlist::ValueMap& pi_values) const;

  /// Electrical components in one context (diagnostics).
  std::size_t num_components(std::size_t context) const;

  const FabricProgram& program() const { return program_; }

 private:
  void build_context(std::size_t context);

  const arch::RoutingGraph& graph_;
  FabricProgram program_;
  /// comp_[context][node] = component id.
  std::vector<std::vector<std::int32_t>> comp_;
  std::vector<std::size_t> comp_count_;
  /// driver_of_comp_[context][comp] = driving node (or -1 if undriven).
  std::vector<std::vector<arch::NodeId>> driver_of_comp_;
};

}  // namespace mcfpga::sim
