#include "sim/context_scheduler.hpp"

#include <numeric>

#include "common/error.hpp"

namespace mcfpga::sim {

ContextScheduler::ContextScheduler(std::size_t num_contexts,
                                   std::vector<std::size_t> order)
    : num_contexts_(num_contexts), order_(std::move(order)) {
  MCFPGA_REQUIRE(num_contexts >= 1, "need at least one context");
  if (order_.empty()) {
    order_.resize(num_contexts);
    std::iota(order_.begin(), order_.end(), 0);
  }
  for (const std::size_t c : order_) {
    MCFPGA_REQUIRE(c < num_contexts_, "schedule entry out of range");
  }
}

std::size_t ContextScheduler::context_at(std::size_t cycle) const {
  // The constructor guarantees a non-empty order, but a moved-from or
  // otherwise corrupted scheduler must not divide by zero.
  MCFPGA_CHECK(!order_.empty(), "scheduler has an empty context order");
  return order_[cycle % order_.size()];
}

ScheduleStats ContextScheduler::run(const config::Bitstream& bitstream,
                                    std::size_t cycles) const {
  MCFPGA_REQUIRE(bitstream.num_contexts() == num_contexts_,
                 "bitstream context count must match scheduler");
  ScheduleStats stats;
  stats.cycles = cycles;
  if (cycles <= 1) {
    return stats;
  }
  // Pre-extract planes once; diff consecutive scheduled contexts.
  std::vector<BitVector> planes;
  planes.reserve(num_contexts_);
  for (std::size_t c = 0; c < num_contexts_; ++c) {
    planes.push_back(bitstream.plane(c));
  }
  for (std::size_t cycle = 1; cycle < cycles; ++cycle) {
    const std::size_t prev = context_at(cycle - 1);
    const std::size_t cur = context_at(cycle);
    if (prev == cur) {
      continue;
    }
    ++stats.context_switches;
    stats.bits_toggled += planes[prev].hamming_distance(planes[cur]);
  }
  return stats;
}

}  // namespace mcfpga::sim
