// Context scheduling and context-switch accounting (paper Secs. 1, 3).
//
// A DPGA cycles through its contexts; switching is a single-cycle event
// because every configuration bit is regenerated locally (conventional
// fabric: plane mux; proposed fabric: RCM decode of the broadcast ID bits).
// The scheduler models the rotation and accounts two costs per switch:
//   * configuration bits whose value changes (dynamic energy);
//   * the decode latency in SE units (flat, from the decoder depth).
#pragma once

#include <cstddef>
#include <vector>

#include "config/bitstream.hpp"

namespace mcfpga::sim {

struct ScheduleStats {
  std::size_t cycles = 0;
  std::size_t context_switches = 0;
  /// Total configuration bits that toggled over all switches performed.
  std::size_t bits_toggled = 0;
  /// Average toggled bits per switch; 0.0 when no switch ever happened
  /// (zero cycles, a single context, or a constant schedule) rather than a
  /// division by zero.
  double avg_bits_per_switch() const {
    return context_switches == 0
               ? 0.0
               : static_cast<double>(bits_toggled) /
                     static_cast<double>(context_switches);
  }
};

class ContextScheduler {
 public:
  /// Round-robin over all contexts when `order` is empty (including an
  /// explicitly passed empty vector).  Throws InvalidArgument for zero
  /// contexts or an order entry out of range.
  explicit ContextScheduler(std::size_t num_contexts,
                            std::vector<std::size_t> order = {});

  std::size_t num_contexts() const { return num_contexts_; }
  const std::vector<std::size_t>& order() const { return order_; }
  /// Context active in a given cycle.  The order is never empty after
  /// construction, so this is total over all cycle values.
  std::size_t context_at(std::size_t cycle) const;

  /// Simulates `cycles` cycles of rotation over `bitstream` and counts the
  /// configuration-bit activity at every context switch.
  ScheduleStats run(const config::Bitstream& bitstream,
                    std::size_t cycles) const;

 private:
  std::size_t num_contexts_;
  std::vector<std::size_t> order_;
};

}  // namespace mcfpga::sim
