#include "sim/fault.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mcfpga::sim {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt0:
      return "stuck-at-0";
    case FaultKind::kStuckAt1:
      return "stuck-at-1";
    case FaultKind::kBitFlip:
      return "bit-flip";
  }
  return "?";
}

config::Bitstream inject_fault(const config::Bitstream& golden,
                               const Fault& fault) {
  MCFPGA_REQUIRE(fault.row < golden.num_rows(), "fault row out of range");
  MCFPGA_REQUIRE(fault.context < golden.num_contexts(),
                 "fault context out of range");
  config::Bitstream faulty(golden.num_contexts());
  for (std::size_t r = 0; r < golden.num_rows(); ++r) {
    const auto& row = golden.row(r);
    config::ContextPattern pattern = row.pattern;
    if (r == fault.row) {
      switch (fault.kind) {
        case FaultKind::kStuckAt0:
          pattern = config::ContextPattern(golden.num_contexts(), false);
          break;
        case FaultKind::kStuckAt1:
          pattern = config::ContextPattern(golden.num_contexts(), true);
          break;
        case FaultKind::kBitFlip:
          pattern.set_value(fault.context,
                            !pattern.value_in(fault.context));
          break;
      }
    }
    faulty.add_row(row.name, row.kind, std::move(pattern));
  }
  return faulty;
}

std::vector<std::pair<std::size_t, std::size_t>> diff_planes(
    const config::Bitstream& golden, const rcm::ContextDecoder& decoder) {
  MCFPGA_REQUIRE(decoder.num_rows() == golden.num_rows(),
                 "decoder/golden row count mismatch");
  std::vector<std::pair<std::size_t, std::size_t>> diffs;
  for (std::size_t c = 0; c < golden.num_contexts(); ++c) {
    const BitVector want = golden.plane(c);
    const BitVector got = decoder.decode_plane(c);
    for (std::size_t r = 0; r < golden.num_rows(); ++r) {
      if (want.get(r) != got.get(r)) {
        diffs.emplace_back(r, c);
      }
    }
  }
  return diffs;
}

FaultCampaignResult run_fault_campaign(const config::Bitstream& golden,
                                       std::size_t count,
                                       std::uint64_t seed) {
  MCFPGA_REQUIRE(golden.num_rows() > 0, "campaign needs a non-empty bitstream");
  Rng rng(seed);
  FaultCampaignResult result;
  for (std::size_t i = 0; i < count; ++i) {
    Fault fault;
    fault.kind = static_cast<FaultKind>(rng.next_below(3));
    fault.row = static_cast<std::size_t>(rng.next_below(golden.num_rows()));
    fault.context =
        static_cast<std::size_t>(rng.next_below(golden.num_contexts()));
    ++result.injected;

    const config::Bitstream faulty = inject_fault(golden, fault);
    // The decoder is rebuilt from the FAULTY stream; detection compares its
    // regenerated planes against the GOLDEN reference.
    const rcm::ContextDecoder decoder(faulty);
    const auto diffs = diff_planes(golden, decoder);
    if (diffs.empty()) {
      ++result.masked;  // fault did not change any stored value
    } else {
      ++result.detected;
    }
  }
  return result;
}

}  // namespace mcfpga::sim
