// Configuration-memory fault injection and detection.
//
// The RCM's context decoders regenerate every configuration plane from the
// context-ID bits, so a golden bitstream plus the equivalence oracle
// (rcm::ContextDecoder::matches / plane diffing) doubles as a built-in
// self-test: any fault that changes a regenerated bit in any context is
// detectable by plane comparison.  This module injects stuck-at and
// bit-flip faults into bitstreams and measures detectability — the
// failure-injection counterpart to the functional verification suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/bitstream.hpp"
#include "rcm/context_decoder.hpp"

namespace mcfpga::sim {

enum class FaultKind : std::uint8_t {
  kStuckAt0,  ///< The row reads 0 in every context.
  kStuckAt1,  ///< The row reads 1 in every context.
  kBitFlip,   ///< One (row, context) bit inverted.
};

std::string to_string(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kBitFlip;
  std::size_t row = 0;
  std::size_t context = 0;  ///< Only meaningful for kBitFlip.
};

/// Returns a copy of `golden` with the fault applied.
config::Bitstream inject_fault(const config::Bitstream& golden,
                               const Fault& fault);

/// All (row, context) positions where the decoder's regenerated planes
/// differ from the golden bitstream.
std::vector<std::pair<std::size_t, std::size_t>> diff_planes(
    const config::Bitstream& golden, const rcm::ContextDecoder& decoder);

struct FaultCampaignResult {
  std::size_t injected = 0;
  /// Faults whose regenerated planes differ from golden (detectable).
  std::size_t detected = 0;
  /// Faults that changed no plane bit (logically masked — e.g. a stuck-at
  /// matching the original value).
  std::size_t masked = 0;

  double detection_rate() const {
    return injected == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(injected);
  }
};

/// Injects `count` random faults (one at a time) and classifies each as
/// detected or masked via the plane-diff oracle.
FaultCampaignResult run_fault_campaign(const config::Bitstream& golden,
                                       std::size_t count,
                                       std::uint64_t seed);

}  // namespace mcfpga::sim
