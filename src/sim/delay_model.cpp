#include "sim/delay_model.hpp"

#include "common/error.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::sim {

TimingReport analyze_timing(std::size_t num_nodes,
                            const std::vector<TimingArc>& arcs,
                            const DelayParams& params) {
  std::vector<timing::Arc> t_arcs;
  t_arcs.reserve(arcs.size());
  for (const auto& a : arcs) {
    MCFPGA_REQUIRE(a.from < num_nodes && a.to < num_nodes,
                   "timing arc endpoint out of range");
    t_arcs.push_back(timing::Arc{
        static_cast<std::uint32_t>(a.from), static_cast<std::uint32_t>(a.to),
        params.se_delay * static_cast<double>(a.switches) +
            (a.to_is_lut ? params.lut_delay : 0.0)});
  }
  timing::TimingGraph graph(num_nodes, std::move(t_arcs));
  graph.analyze();

  TimingReport report;
  report.critical_path = graph.critical_path();
  report.arrival.resize(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    report.arrival[n] = graph.arrival(n);
  }
  report.critical_nodes = graph.critical_nodes();
  return report;
}

}  // namespace mcfpga::sim
