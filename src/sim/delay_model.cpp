#include "sim/delay_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mcfpga::sim {

TimingReport analyze_timing(std::size_t num_nodes,
                            const std::vector<TimingArc>& arcs,
                            const DelayParams& params) {
  // Flat CSR adjacency (counting sort over arcs, stable in arc order) —
  // one contiguous allocation instead of a vector per node.
  std::vector<std::size_t> indegree(num_nodes, 0);
  std::vector<std::size_t> offsets(num_nodes + 1, 0);
  for (const auto& a : arcs) {
    MCFPGA_REQUIRE(a.from < num_nodes && a.to < num_nodes,
                   "timing arc endpoint out of range");
    ++indegree[a.to];
    ++offsets[a.from + 1];
  }
  for (std::size_t n = 0; n < num_nodes; ++n) {
    offsets[n + 1] += offsets[n];
  }
  std::vector<std::size_t> arc_of(arcs.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      arc_of[cursor[arcs[i].from]++] = i;
    }
  }

  TimingReport report;
  report.arrival.assign(num_nodes, 0.0);
  std::vector<std::size_t> critical_pred(num_nodes, SIZE_MAX);

  // Kahn topological relaxation.
  std::vector<std::size_t> ready;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (indegree[n] == 0) {
      ready.push_back(n);
    }
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    ++processed;
    for (std::size_t at = offsets[u]; at < offsets[u + 1]; ++at) {
      const auto& a = arcs[arc_of[at]];
      const double t = report.arrival[u] +
                       params.se_delay * static_cast<double>(a.switches) +
                       (a.to_is_lut ? params.lut_delay : 0.0);
      if (t > report.arrival[a.to]) {
        report.arrival[a.to] = t;
        critical_pred[a.to] = u;
      }
      if (--indegree[a.to] == 0) {
        ready.push_back(a.to);
      }
    }
  }
  MCFPGA_CHECK(processed == num_nodes,
               "timing graph contains a combinational cycle");

  std::size_t worst = 0;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (report.arrival[n] > report.arrival[worst]) {
      worst = n;
    }
  }
  report.critical_path = num_nodes == 0 ? 0.0 : report.arrival[worst];

  for (std::size_t n = worst; n != SIZE_MAX; n = critical_pred[n]) {
    report.critical_nodes.push_back(n);
    if (report.critical_nodes.size() > num_nodes) {
      break;  // defensive: corrupt pred chain
    }
  }
  std::reverse(report.critical_nodes.begin(), report.critical_nodes.end());
  return report;
}

}  // namespace mcfpga::sim
