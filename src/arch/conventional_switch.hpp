// Conventional multi-context switch (paper Fig. 2): the baseline the RCM is
// evaluated against.  Each routing switch stores one memory bit per context
// and selects the active bit with an n:1 multiplexer driven by the
// context-ID bits.
#pragma once

#include <cstddef>

#include "config/pattern.hpp"

namespace mcfpga::arch {

class ConventionalMultiContextSwitch {
 public:
  explicit ConventionalMultiContextSwitch(std::size_t num_contexts);

  std::size_t num_contexts() const { return pattern_.num_contexts(); }

  /// Loads all context planes of this switch at once.
  void program(const config::ContextPattern& pattern);
  const config::ContextPattern& pattern() const { return pattern_; }

  /// Pass-gate state in `context` (the n:1 mux output).
  bool is_on(std::size_t context) const;

  /// Memory bits consumed (n — the overhead the paper attacks).
  std::size_t memory_bits() const { return pattern_.num_contexts(); }
  /// 2:1 stages in the context mux (n-1 for a full binary mux tree).
  std::size_t mux_stages() const { return pattern_.num_contexts() - 1; }

 private:
  config::ContextPattern pattern_;
};

}  // namespace mcfpga::arch
