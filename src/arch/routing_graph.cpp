#include "arch/routing_graph.hpp"

#include "common/error.hpp"

namespace mcfpga::arch {

namespace {
/// Pads attached at each perimeter cell's junction.
constexpr std::size_t kPadsPerPerimeterCell = 2;

std::string coord(std::int32_t x, std::int32_t y) {
  return "(" + std::to_string(x) + "," + std::to_string(y) + ")";
}
}  // namespace

std::string to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kOutPin:
      return "out-pin";
    case NodeKind::kInPin:
      return "in-pin";
    case NodeKind::kPad:
      return "pad";
    case NodeKind::kWire:
      return "wire";
  }
  return "?";
}

std::string to_string(SwitchOwner owner) {
  switch (owner) {
    case SwitchOwner::kSwitchBlock:
      return "switch-block";
    case SwitchOwner::kConnectionBlock:
      return "connection-block";
    case SwitchOwner::kDiamond:
      return "diamond";
  }
  return "?";
}

RoutingGraph::RoutingGraph(const FabricSpec& spec) : spec_(spec) {
  spec_.validate();
  block_switch_counts_.assign(spec_.num_cells(), {0, 0, 0});
  build_wires();
  build_double_length();
  build_switch_blocks();
  build_connection_blocks();
  build_pads();
  build_csr();
}

void RoutingGraph::build_csr() {
  csr_offsets_.assign(nodes_.size() + 1, 0);
  for (const RREdge& e : edges_) {
    ++csr_offsets_[static_cast<std::size_t>(e.from) + 1];
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    csr_offsets_[n + 1] += csr_offsets_[n];
  }
  csr_edges_.resize(edges_.size());
  csr_targets_.resize(edges_.size());
  std::vector<std::size_t> cursor(csr_offsets_.begin(),
                                  csr_offsets_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const RREdge& e = edges_[i];
    const std::size_t at = cursor[static_cast<std::size_t>(e.from)]++;
    csr_edges_[at] = static_cast<EdgeId>(i);
    csr_targets_[at] = e.to;
  }
}

std::size_t RoutingGraph::check_node(NodeId id) const {
  MCFPGA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "node id out of range");
  return static_cast<std::size_t>(id);
}

std::size_t RoutingGraph::check_edge(EdgeId id) const {
  MCFPGA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < edges_.size(),
                 "edge id out of range");
  return static_cast<std::size_t>(id);
}

std::size_t RoutingGraph::check_switch(SwitchId id) const {
  MCFPGA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < switches_.size(),
                 "switch id out of range");
  return static_cast<std::size_t>(id);
}

NodeId RoutingGraph::add_node(RRNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

SwitchId RoutingGraph::add_switch(NodeId a, NodeId b, SwitchOwner owner,
                                  std::int32_t x, std::int32_t y,
                                  std::string name) {
  RRSwitch sw;
  sw.owner = owner;
  sw.x = x;
  sw.y = y;
  sw.name = std::move(name);

  check_node(a);
  check_node(b);
  sw.forward = static_cast<EdgeId>(edges_.size());
  edges_.push_back(RREdge{a, b, static_cast<SwitchId>(switches_.size())});

  sw.backward = static_cast<EdgeId>(edges_.size());
  edges_.push_back(RREdge{b, a, static_cast<SwitchId>(switches_.size())});

  switches_.push_back(std::move(sw));
  const std::size_t cell =
      static_cast<std::size_t>(y) * spec_.width + static_cast<std::size_t>(x);
  ++block_switch_counts_[cell][static_cast<std::size_t>(owner)];
  return static_cast<SwitchId>(switches_.size() - 1);
}

NodeId RoutingGraph::h_wire(std::int32_t x, std::int32_t y,
                            std::int32_t t) const {
  if (x < 0 || y < 0 || t < 0 ||
      x >= static_cast<std::int32_t>(spec_.width) - 1 ||
      y >= static_cast<std::int32_t>(spec_.height) ||
      t >= static_cast<std::int32_t>(spec_.channel_width)) {
    return kInvalidNode;
  }
  const std::size_t idx =
      ((static_cast<std::size_t>(x) * spec_.height +
        static_cast<std::size_t>(y)) *
       spec_.channel_width) +
      static_cast<std::size_t>(t);
  return h_wires_[idx];
}

NodeId RoutingGraph::v_wire(std::int32_t x, std::int32_t y,
                            std::int32_t t) const {
  if (x < 0 || y < 0 || t < 0 ||
      x >= static_cast<std::int32_t>(spec_.width) ||
      y >= static_cast<std::int32_t>(spec_.height) - 1 ||
      t >= static_cast<std::int32_t>(spec_.channel_width)) {
    return kInvalidNode;
  }
  const std::size_t idx =
      ((static_cast<std::size_t>(x) * spec_.height +
        static_cast<std::size_t>(y)) *
       spec_.channel_width) +
      static_cast<std::size_t>(t);
  return v_wires_[idx];
}

NodeId RoutingGraph::dl_h_wire(std::int32_t x, std::int32_t y,
                               std::int32_t t) const {
  if (x < 0 || y < 0 || t < 0 ||
      x >= static_cast<std::int32_t>(spec_.width) ||
      y >= static_cast<std::int32_t>(spec_.height) ||
      t >= static_cast<std::int32_t>(spec_.double_length_tracks)) {
    return kInvalidNode;
  }
  const std::size_t idx =
      ((static_cast<std::size_t>(x) * spec_.height +
        static_cast<std::size_t>(y)) *
       spec_.double_length_tracks) +
      static_cast<std::size_t>(t);
  return dl_h_wires_[idx];
}

NodeId RoutingGraph::dl_v_wire(std::int32_t x, std::int32_t y,
                               std::int32_t t) const {
  if (x < 0 || y < 0 || t < 0 ||
      x >= static_cast<std::int32_t>(spec_.width) ||
      y >= static_cast<std::int32_t>(spec_.height) ||
      t >= static_cast<std::int32_t>(spec_.double_length_tracks)) {
    return kInvalidNode;
  }
  const std::size_t idx =
      ((static_cast<std::size_t>(x) * spec_.height +
        static_cast<std::size_t>(y)) *
       spec_.double_length_tracks) +
      static_cast<std::size_t>(t);
  return dl_v_wires_[idx];
}

void RoutingGraph::build_wires() {
  const auto W = static_cast<std::int32_t>(spec_.channel_width);
  const auto width = static_cast<std::int32_t>(spec_.width);
  const auto height = static_cast<std::int32_t>(spec_.height);

  // Full-grid tables with a uniform (x * height + y) * W + t stride;
  // entries with no wire stay kInvalidNode.
  h_wires_.assign(static_cast<std::size_t>(width) * height * W,
                  kInvalidNode);
  v_wires_.assign(static_cast<std::size_t>(width) * height * W,
                  kInvalidNode);

  for (std::int32_t x = 0; x + 1 < width; ++x) {
    for (std::int32_t y = 0; y < height; ++y) {
      for (std::int32_t t = 0; t < W; ++t) {
        RRNode n;
        n.kind = NodeKind::kWire;
        n.x = x;
        n.y = y;
        n.index = t;
        n.horizontal = true;
        n.length = 1;
        n.name = "h" + coord(x, y) + ".t" + std::to_string(t);
        const std::size_t idx =
            ((static_cast<std::size_t>(x) * spec_.height +
              static_cast<std::size_t>(y)) *
             spec_.channel_width) +
            static_cast<std::size_t>(t);
        h_wires_[idx] = add_node(std::move(n));
      }
    }
  }
  for (std::int32_t x = 0; x < width; ++x) {
    for (std::int32_t y = 0; y + 1 < height; ++y) {
      for (std::int32_t t = 0; t < W; ++t) {
        RRNode n;
        n.kind = NodeKind::kWire;
        n.x = x;
        n.y = y;
        n.index = t;
        n.horizontal = false;
        n.length = 1;
        n.name = "v" + coord(x, y) + ".t" + std::to_string(t);
        const std::size_t idx =
            ((static_cast<std::size_t>(x) * spec_.height +
              static_cast<std::size_t>(y)) *
             spec_.channel_width) +
            static_cast<std::size_t>(t);
        v_wires_[idx] = add_node(std::move(n));
      }
    }
  }

  // Logic-block pins.
  out_pins_.assign(spec_.num_cells() * spec_.logic_block.num_outputs,
                   kInvalidNode);
  const std::size_t lb_inputs =
      lut::McmgLut(spec_.logic_block.base_inputs, spec_.num_contexts)
          .max_inputs();
  in_pins_.assign(spec_.num_cells() * lb_inputs, kInvalidNode);

  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      const std::size_t cell = static_cast<std::size_t>(y) * spec_.width +
                               static_cast<std::size_t>(x);
      for (std::size_t p = 0; p < spec_.logic_block.num_outputs; ++p) {
        RRNode n;
        n.kind = NodeKind::kOutPin;
        n.x = x;
        n.y = y;
        n.index = static_cast<std::int32_t>(p);
        n.name = "lb" + coord(x, y) + ".out" + std::to_string(p);
        out_pins_[cell * spec_.logic_block.num_outputs + p] =
            add_node(std::move(n));
      }
      for (std::size_t p = 0; p < lb_inputs; ++p) {
        RRNode n;
        n.kind = NodeKind::kInPin;
        n.x = x;
        n.y = y;
        n.index = static_cast<std::int32_t>(p);
        n.name = "lb" + coord(x, y) + ".in" + std::to_string(p);
        in_pins_[cell * lb_inputs + p] = add_node(std::move(n));
      }
    }
  }
}

void RoutingGraph::build_double_length() {
  const auto Wd = static_cast<std::int32_t>(spec_.double_length_tracks);
  if (Wd == 0) {
    return;
  }
  const auto width = static_cast<std::int32_t>(spec_.width);
  const auto height = static_cast<std::int32_t>(spec_.height);

  dl_h_wires_.assign(static_cast<std::size_t>(width) * height * Wd,
                     kInvalidNode);
  dl_v_wires_.assign(static_cast<std::size_t>(width) * height * Wd,
                     kInvalidNode);

  // A double-length wire on track t starts only at junctions whose parity
  // matches the track's phase (t % 2): this staggers the two phases so that
  // every junction terminates some double-length wire while each individual
  // wire bypasses every other junction (Fig. 10).
  for (std::int32_t t = 0; t < Wd; ++t) {
    const std::int32_t phase = t % 2;
    for (std::int32_t y = 0; y < height; ++y) {
      for (std::int32_t x = phase; x + 2 < width; x += 2) {
        RRNode n;
        n.kind = NodeKind::kWire;
        n.x = x;
        n.y = y;
        n.index = t;
        n.horizontal = true;
        n.length = 2;
        n.name = "dh" + coord(x, y) + ".t" + std::to_string(t);
        const std::size_t idx =
            ((static_cast<std::size_t>(x) * spec_.height +
              static_cast<std::size_t>(y)) *
             spec_.double_length_tracks) +
            static_cast<std::size_t>(t);
        dl_h_wires_[idx] = add_node(std::move(n));
      }
    }
    for (std::int32_t x = 0; x < width; ++x) {
      for (std::int32_t y = phase; y + 2 < height; y += 2) {
        RRNode n;
        n.kind = NodeKind::kWire;
        n.x = x;
        n.y = y;
        n.index = t;
        n.horizontal = false;
        n.length = 2;
        n.name = "dv" + coord(x, y) + ".t" + std::to_string(t);
        const std::size_t idx =
            ((static_cast<std::size_t>(x) * spec_.height +
              static_cast<std::size_t>(y)) *
             spec_.double_length_tracks) +
            static_cast<std::size_t>(t);
        dl_v_wires_[idx] = add_node(std::move(n));
      }
    }
  }

  // Diamond switches: join double-length wires terminating at a junction,
  // and connect each terminating wire into the single-length network
  // (Fig. 11's U1..U6 ports into the RCM) so routes can enter and leave
  // the fast lines mid-path.
  const auto W = static_cast<std::int32_t>(spec_.channel_width);
  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      for (std::int32_t t = 0; t < Wd; ++t) {
        const NodeId east = dl_h_wire(x, y, t);
        const NodeId west = dl_h_wire(x - 2, y, t);
        const NodeId north = dl_v_wire(x, y, t);
        const NodeId south = dl_v_wire(x, y - 2, t);
        const NodeId incident[4] = {north, east, south, west};
        for (std::size_t a = 0; a < 4; ++a) {
          for (std::size_t b = a + 1; b < 4; ++b) {
            if (incident[a] != kInvalidNode && incident[b] != kInvalidNode) {
              add_switch(incident[a], incident[b], SwitchOwner::kDiamond, x, y,
                         "dia" + coord(x, y) + ".t" + std::to_string(t) + "." +
                             std::to_string(a) + std::to_string(b));
            }
          }
        }
        // Transfer ports: double-length wire <-> the same-index
        // single-length track at this junction.
        const std::int32_t st = t % W;
        const NodeId singles[4] = {h_wire(x, y, st), h_wire(x - 1, y, st),
                                   v_wire(x, y, st), v_wire(x, y - 1, st)};
        for (std::size_t a = 0; a < 4; ++a) {
          if (incident[a] == kInvalidNode) {
            continue;
          }
          for (std::size_t s = 0; s < 4; ++s) {
            if (singles[s] != kInvalidNode) {
              add_switch(incident[a], singles[s], SwitchOwner::kDiamond, x, y,
                         "diaU" + coord(x, y) + ".t" + std::to_string(t) +
                             "." + std::to_string(a) + "s" +
                             std::to_string(s));
            }
          }
        }
      }
    }
  }
}

void RoutingGraph::build_switch_blocks() {
  const auto W = static_cast<std::int32_t>(spec_.channel_width);
  const auto width = static_cast<std::int32_t>(spec_.width);
  const auto height = static_cast<std::int32_t>(spec_.height);

  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      for (std::int32_t t = 0; t < W; ++t) {
        const NodeId east = h_wire(x, y, t);
        const NodeId west = h_wire(x - 1, y, t);
        const NodeId north = v_wire(x, y, t);
        const NodeId south = v_wire(x, y - 1, t);
        const NodeId incident[4] = {north, east, south, west};
        for (std::size_t a = 0; a < 4; ++a) {
          for (std::size_t b = a + 1; b < 4; ++b) {
            if (incident[a] != kInvalidNode && incident[b] != kInvalidNode) {
              add_switch(incident[a], incident[b], SwitchOwner::kSwitchBlock,
                         x, y,
                         "sb" + coord(x, y) + ".t" + std::to_string(t) + "." +
                             std::to_string(a) + std::to_string(b));
            }
          }
        }
      }
    }
  }
}

void RoutingGraph::build_connection_blocks() {
  const auto W = static_cast<std::int32_t>(spec_.channel_width);
  const auto Wd = static_cast<std::int32_t>(spec_.double_length_tracks);
  const auto width = static_cast<std::int32_t>(spec_.width);
  const auto height = static_cast<std::int32_t>(spec_.height);
  const std::size_t lb_inputs =
      in_pins_.size() / spec_.num_cells();

  const auto connect_pin = [&](NodeId pin, std::int32_t x, std::int32_t y,
                               const std::string& pin_name) {
    for (std::int32_t t = 0; t < W; ++t) {
      for (const NodeId wire : {h_wire(x, y, t), h_wire(x - 1, y, t),
                                v_wire(x, y, t), v_wire(x, y - 1, t)}) {
        if (wire != kInvalidNode) {
          add_switch(pin, wire, SwitchOwner::kConnectionBlock, x, y,
                     pin_name + "<->" + nodes_[check_node(wire)].name);
        }
      }
    }
    // "The double-length lines are connected to the logic blocks through RCM
    // blocks": pins reach double-length wires terminating at this junction.
    for (std::int32_t t = 0; t < Wd; ++t) {
      for (const NodeId wire : {dl_h_wire(x, y, t), dl_h_wire(x - 2, y, t),
                                dl_v_wire(x, y, t), dl_v_wire(x, y - 2, t)}) {
        if (wire != kInvalidNode) {
          add_switch(pin, wire, SwitchOwner::kConnectionBlock, x, y,
                     pin_name + "<->" + nodes_[check_node(wire)].name);
        }
      }
    }
  };

  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      const std::size_t cell = static_cast<std::size_t>(y) * spec_.width +
                               static_cast<std::size_t>(x);
      for (std::size_t p = 0; p < spec_.logic_block.num_outputs; ++p) {
        const NodeId pin = out_pins_[cell * spec_.logic_block.num_outputs + p];
        connect_pin(pin, x, y, nodes_[check_node(pin)].name);
      }
      for (std::size_t p = 0; p < lb_inputs; ++p) {
        const NodeId pin = in_pins_[cell * lb_inputs + p];
        connect_pin(pin, x, y, nodes_[check_node(pin)].name);
      }
    }
  }
}

void RoutingGraph::build_pads() {
  const auto W = static_cast<std::int32_t>(spec_.channel_width);
  const auto width = static_cast<std::int32_t>(spec_.width);
  const auto height = static_cast<std::int32_t>(spec_.height);

  for (std::int32_t y = 0; y < height; ++y) {
    for (std::int32_t x = 0; x < width; ++x) {
      const bool perimeter =
          x == 0 || y == 0 || x == width - 1 || y == height - 1;
      if (!perimeter) {
        continue;
      }
      for (std::size_t p = 0; p < kPadsPerPerimeterCell; ++p) {
        RRNode n;
        n.kind = NodeKind::kPad;
        n.x = x;
        n.y = y;
        n.index = static_cast<std::int32_t>(pads_.size());
        n.name = "pad" + coord(x, y) + "." + std::to_string(p);
        const NodeId pad_node = add_node(std::move(n));
        pads_.push_back(pad_node);
        for (std::int32_t t = 0; t < W; ++t) {
          for (const NodeId wire : {h_wire(x, y, t), h_wire(x - 1, y, t),
                                    v_wire(x, y, t), v_wire(x, y - 1, t)}) {
            if (wire != kInvalidNode) {
              add_switch(pad_node, wire, SwitchOwner::kConnectionBlock, x, y,
                         nodes_[check_node(pad_node)].name + "<->" +
                             nodes_[check_node(wire)].name);
            }
          }
        }
      }
    }
  }
}

NodeId RoutingGraph::out_pin(std::size_t x, std::size_t y,
                             std::size_t pin) const {
  MCFPGA_REQUIRE(x < spec_.width && y < spec_.height, "cell out of range");
  MCFPGA_REQUIRE(pin < spec_.logic_block.num_outputs, "pin out of range");
  return out_pins_[(y * spec_.width + x) * spec_.logic_block.num_outputs +
                   pin];
}

NodeId RoutingGraph::in_pin(std::size_t x, std::size_t y,
                            std::size_t pin) const {
  MCFPGA_REQUIRE(x < spec_.width && y < spec_.height, "cell out of range");
  const std::size_t lb_inputs = in_pins_.size() / spec_.num_cells();
  MCFPGA_REQUIRE(pin < lb_inputs, "pin out of range");
  return in_pins_[(y * spec_.width + x) * lb_inputs + pin];
}

NodeId RoutingGraph::pad(std::size_t perimeter_index) const {
  MCFPGA_REQUIRE(perimeter_index < pads_.size(), "pad index out of range");
  return pads_[perimeter_index];
}

std::size_t RoutingGraph::count_switches(SwitchOwner owner) const {
  std::size_t n = 0;
  for (const auto& sw : switches_) {
    if (sw.owner == owner) {
      ++n;
    }
  }
  return n;
}

std::size_t RoutingGraph::switches_in_block(std::size_t x, std::size_t y,
                                            SwitchOwner owner) const {
  MCFPGA_REQUIRE(x < spec_.width && y < spec_.height, "cell out of range");
  return block_switch_counts_[y * spec_.width + x]
                             [static_cast<std::size_t>(owner)];
}

}  // namespace mcfpga::arch
