// Diamond switch (paper Fig. 11): the switch point of the double-length
// line network (Fig. 10).  A diamond switch joins the four compass
// directions; each incoming line can connect to the lines in the other
// three directions.  The six direction pairs are each gated by one switch
// element's pass-gate, so the whole diamond costs six SEs plus one spare SE
// the figure shows stitching the center junction (we model seven SEs total,
// matching the figure's SE count).
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "config/bitstream.hpp"
#include "config/pattern.hpp"

namespace mcfpga::arch {

enum class Direction : std::size_t { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };

std::string to_string(Direction dir);

class DiamondSwitch {
 public:
  /// SEs per diamond switch (Fig. 11 structure).
  static constexpr std::size_t kSeCount = 7;
  /// Programmable direction pairs: C(4,2) = 6.
  static constexpr std::size_t kNumPairs = 6;

  DiamondSwitch(std::string name, std::size_t num_contexts);

  const std::string& name() const { return name_; }
  std::size_t num_contexts() const { return num_contexts_; }

  /// Index of the (a, b) direction pair; order-insensitive.
  static std::size_t pair_index(Direction a, Direction b);

  /// Programs the on/off pattern of one direction pair across contexts.
  void program(Direction a, Direction b,
               const config::ContextPattern& pattern);
  /// True if the pair's pass-gate is on in `context`.
  bool is_connected(Direction a, Direction b, std::size_t context) const;

  /// All pairs as bitstream rows.
  config::Bitstream to_bitstream() const;

 private:
  std::string name_;
  std::size_t num_contexts_;
  std::array<config::ContextPattern, kNumPairs> patterns_;
};

}  // namespace mcfpga::arch
