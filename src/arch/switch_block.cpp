#include "arch/switch_block.hpp"

#include "common/error.hpp"

namespace mcfpga::arch {

SwitchBlock::SwitchBlock(std::string name, std::size_t num_points,
                         std::size_t num_contexts, SwitchImpl impl)
    : name_(std::move(name)),
      num_contexts_(num_contexts),
      impl_(impl),
      patterns_(num_points, config::ContextPattern(num_contexts, false)) {}

void SwitchBlock::program(std::size_t point,
                          const config::ContextPattern& pattern) {
  MCFPGA_REQUIRE(point < patterns_.size(), "switch point out of range");
  MCFPGA_REQUIRE(pattern.num_contexts() == num_contexts_,
                 "pattern context count must match block context count");
  patterns_[point] = pattern;
  decoder_.reset();
}

const config::ContextPattern& SwitchBlock::pattern(std::size_t point) const {
  MCFPGA_REQUIRE(point < patterns_.size(), "switch point out of range");
  return patterns_[point];
}

void SwitchBlock::ensure_decoder() const {
  if (!decoder_) {
    decoder_.emplace(to_bitstream());
  }
}

bool SwitchBlock::is_on(std::size_t point, std::size_t context) const {
  MCFPGA_REQUIRE(point < patterns_.size(), "switch point out of range");
  MCFPGA_REQUIRE(context < num_contexts_, "context out of range");
  if (impl_ == SwitchImpl::kRcm) {
    ensure_decoder();
    return decoder_->output(point, context);
  }
  return patterns_[point].value_in(context);
}

config::Bitstream SwitchBlock::to_bitstream() const {
  config::Bitstream bs(num_contexts_);
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    bs.add_row(name_ + ".p" + std::to_string(i),
               config::ResourceKind::kRoutingSwitch, patterns_[i]);
  }
  return bs;
}

bool SwitchBlock::verify_rcm_equivalence() const {
  const rcm::ContextDecoder dec(to_bitstream());
  return dec.matches(to_bitstream());
}

const rcm::ContextDecoder& SwitchBlock::decoder() const {
  MCFPGA_REQUIRE(impl_ == SwitchImpl::kRcm,
                 "decoder() requires an RCM switch block");
  ensure_decoder();
  return *decoder_;
}

}  // namespace mcfpga::arch
