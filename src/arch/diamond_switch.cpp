#include "arch/diamond_switch.hpp"

#include "common/error.hpp"

namespace mcfpga::arch {

std::string to_string(Direction dir) {
  switch (dir) {
    case Direction::kNorth:
      return "N";
    case Direction::kEast:
      return "E";
    case Direction::kSouth:
      return "S";
    case Direction::kWest:
      return "W";
  }
  return "?";
}

namespace {
config::ContextPattern off_pattern(std::size_t num_contexts) {
  return config::ContextPattern(num_contexts, false);
}
}  // namespace

DiamondSwitch::DiamondSwitch(std::string name, std::size_t num_contexts)
    : name_(std::move(name)),
      num_contexts_(num_contexts),
      patterns_{off_pattern(num_contexts), off_pattern(num_contexts),
                off_pattern(num_contexts), off_pattern(num_contexts),
                off_pattern(num_contexts), off_pattern(num_contexts)} {}

std::size_t DiamondSwitch::pair_index(Direction a, Direction b) {
  auto ia = static_cast<std::size_t>(a);
  auto ib = static_cast<std::size_t>(b);
  MCFPGA_REQUIRE(ia != ib, "a diamond pair needs two distinct directions");
  if (ia > ib) {
    std::swap(ia, ib);
  }
  // Pairs in lexicographic order: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3).
  static constexpr std::size_t kIndex[4][4] = {{9, 0, 1, 2},
                                               {9, 9, 3, 4},
                                               {9, 9, 9, 5},
                                               {9, 9, 9, 9}};
  return kIndex[ia][ib];
}

void DiamondSwitch::program(Direction a, Direction b,
                            const config::ContextPattern& pattern) {
  MCFPGA_REQUIRE(pattern.num_contexts() == num_contexts_,
                 "pattern context count must match diamond context count");
  patterns_[pair_index(a, b)] = pattern;
}

bool DiamondSwitch::is_connected(Direction a, Direction b,
                                 std::size_t context) const {
  MCFPGA_REQUIRE(context < num_contexts_, "context out of range");
  return patterns_[pair_index(a, b)].value_in(context);
}

config::Bitstream DiamondSwitch::to_bitstream() const {
  static constexpr Direction kDirs[4] = {Direction::kNorth, Direction::kEast,
                                         Direction::kSouth, Direction::kWest};
  config::Bitstream bs(num_contexts_);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      bs.add_row(name_ + "." + to_string(kDirs[a]) + to_string(kDirs[b]),
                 config::ResourceKind::kRoutingSwitch,
                 patterns_[pair_index(kDirs[a], kDirs[b])]);
    }
  }
  return bs;
}

}  // namespace mcfpga::arch
