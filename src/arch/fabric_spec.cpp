#include "arch/fabric_spec.hpp"

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::arch {

std::string to_string(SwitchImpl impl) {
  switch (impl) {
    case SwitchImpl::kConventional:
      return "conventional";
    case SwitchImpl::kRcm:
      return "rcm";
  }
  return "?";
}

void FabricSpec::validate() const {
  MCFPGA_REQUIRE(width >= 1 && height >= 1, "fabric must have >= 1 cell");
  MCFPGA_REQUIRE(config::is_valid_context_count(num_contexts),
                 "context count must be a power of two in [2, 64]");
  MCFPGA_REQUIRE(logic_block.num_contexts == num_contexts,
                 "logic-block context count must match fabric context count");
  MCFPGA_REQUIRE(channel_width >= 1, "channel width must be >= 1");
  MCFPGA_REQUIRE(double_length_tracks % 2 == 0,
                 "double-length tracks come in pairs (one per phase)");
}

std::string FabricSpec::describe() const {
  return std::to_string(width) + "x" + std::to_string(height) + " cells, " +
         std::to_string(num_contexts) + " contexts, W=" +
         std::to_string(channel_width) + "+" +
         std::to_string(double_length_tracks) + "dl, " +
         std::to_string(logic_block.base_inputs) + "-base LUT x" +
         std::to_string(logic_block.num_outputs) + "out (" +
         lut::to_string(logic_block.control) + " control), switches=" +
         to_string(switch_impl);
}

}  // namespace mcfpga::arch
