// Programmable switch block: the per-cell set of routing switches.
//
// A SwitchBlock owns the context patterns of all its switch points and can
// realize them with either implementation:
//  * kConventional — one ConventionalMultiContextSwitch per point (Fig. 2);
//  * kRcm          — one synthesized SE decoder per point (Figs. 7-9),
//                    optionally sharing networks between identical patterns.
// Both implementations are kept functionally interchangeable; the
// equivalence oracle verify_rcm_equivalence() proves it per block, and the
// area model charges each implementation its own bill of materials.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "arch/conventional_switch.hpp"
#include "arch/fabric_spec.hpp"
#include "config/bitstream.hpp"
#include "rcm/context_decoder.hpp"

namespace mcfpga::arch {

class SwitchBlock {
 public:
  /// `num_points`: programmable switch points in this block (derived from
  /// channel width and topology by the routing graph).
  SwitchBlock(std::string name, std::size_t num_points,
              std::size_t num_contexts, SwitchImpl impl);

  const std::string& name() const { return name_; }
  std::size_t num_points() const { return patterns_.size(); }
  std::size_t num_contexts() const { return num_contexts_; }
  SwitchImpl impl() const { return impl_; }

  /// Programs one switch point's on/off pattern across contexts.
  /// Invalidates any previously built RCM decoder.
  void program(std::size_t point, const config::ContextPattern& pattern);
  const config::ContextPattern& pattern(std::size_t point) const;

  /// Pass-gate state of a switch point in a context.  For kRcm the value is
  /// produced by the synthesized decoder network (built lazily); for
  /// kConventional it is the stored plane bit.  The two always agree — see
  /// verify_rcm_equivalence().
  bool is_on(std::size_t point, std::size_t context) const;

  /// All switch points as bitstream rows (for statistics and area).
  config::Bitstream to_bitstream() const;

  /// Builds the RCM decoder (if impl is kRcm) and checks it against the
  /// stored patterns bit-for-bit in every context.
  bool verify_rcm_equivalence() const;

  /// The decoder realizing this block (kRcm only; built lazily).
  const rcm::ContextDecoder& decoder() const;

 private:
  void ensure_decoder() const;

  std::string name_;
  std::size_t num_contexts_;
  SwitchImpl impl_;
  std::vector<config::ContextPattern> patterns_;
  mutable std::optional<rcm::ContextDecoder> decoder_;
};

}  // namespace mcfpga::arch
