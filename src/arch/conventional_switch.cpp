#include "arch/conventional_switch.hpp"

#include "common/error.hpp"

namespace mcfpga::arch {

ConventionalMultiContextSwitch::ConventionalMultiContextSwitch(
    std::size_t num_contexts)
    : pattern_(num_contexts, false) {}

void ConventionalMultiContextSwitch::program(
    const config::ContextPattern& pattern) {
  MCFPGA_REQUIRE(pattern.num_contexts() == pattern_.num_contexts(),
                 "pattern context count must match switch context count");
  pattern_ = pattern;
}

bool ConventionalMultiContextSwitch::is_on(std::size_t context) const {
  MCFPGA_REQUIRE(context < pattern_.num_contexts(), "context out of range");
  return pattern_.value_in(context);
}

}  // namespace mcfpga::arch
