// Fabric-level architecture parameters (paper Figs. 1, 6, 10).
//
// The fabric is an island-style width x height array of cells; each cell is
// a logic block plus a switch block.  Switch blocks are either conventional
// multi-context switches (Fig. 2: n memory bits + n:1 mux per switch) or
// RCM blocks (Fig. 6/7: switch elements doubling as context decoders).
// Channels carry single-length tracks switched at every cell and optional
// double-length tracks switched at alternate diamond switches (Fig. 10).
#pragma once

#include <cstddef>
#include <string>

#include "lut/logic_block.hpp"
#include "rcm/grid.hpp"

namespace mcfpga::arch {

/// Which circuit implements the per-switch context memory.
enum class SwitchImpl {
  kConventional,  ///< Fig. 2: n memory bits + n:1 context mux per switch.
  kRcm,           ///< Fig. 7/8: switch elements + synthesized decoders.
};

std::string to_string(SwitchImpl impl);

struct FabricSpec {
  std::size_t width = 4;   ///< Cells per row.
  std::size_t height = 4;  ///< Cells per column.
  std::size_t num_contexts = 4;

  lut::LogicBlockSpec logic_block{};

  /// Single-length tracks per routing channel.
  std::size_t channel_width = 8;
  /// Double-length tracks per channel (0 disables Fig. 10's fast lines).
  std::size_t double_length_tracks = 4;

  SwitchImpl switch_impl = SwitchImpl::kRcm;

  /// RCM block sizing per switch block (only meaningful for kRcm).
  rcm::GridSpec rcm{};

  std::size_t num_cells() const { return width * height; }

  /// Throws InvalidArgument when the combination is unbuildable.
  void validate() const;

  /// One-line summary for reports.
  std::string describe() const;
};

}  // namespace mcfpga::arch
