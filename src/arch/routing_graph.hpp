// Routing-resource graph (RRG) of the MC-FPGA fabric (paper Figs. 6, 10).
//
// Geometry: junctions sit at cell coordinates (x, y).  Single-length wires
// connect adjacent junctions and are switched at every junction by the
// cell's RCM switch block (same-track disjoint topology, six pairs per
// track).  Double-length wires span two junctions and are switched only at
// alternate diamond switches (Fig. 10) — the paper's fast lines for
// critical paths.  Logic-block pins and perimeter I/O pads connect to the
// wires incident at their junction.
//
// Every programmable connection is a "switch": it appears as one directed
// edge pair in the graph and owns one configuration bit in the fabric
// bitstream.  The router marks, per context, which switches are on; the
// switch's context pattern is then exactly the row the RCM decoder (or the
// conventional context memory) must realize.
//
// Adjacency is stored as a flat CSR (compressed-sparse-row) view built once
// at construction: contiguous edge/target arrays indexed through a per-node
// offset table.  Graph traversals (the router's maze expansion above all)
// walk these arrays — no per-node heap allocations on the hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/fabric_spec.hpp"

namespace mcfpga::arch {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using SwitchId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

enum class NodeKind : std::uint8_t {
  kOutPin,  ///< Logic-block output pin (net source).
  kInPin,   ///< Logic-block input pin (net sink).
  kPad,     ///< Perimeter I/O pad (primary input/output attach point).
  kWire,    ///< Routing wire segment (single- or double-length).
};

std::string to_string(NodeKind kind);

/// Who owns a switch's configuration bit (for area and programming).
enum class SwitchOwner : std::uint8_t {
  kSwitchBlock,      ///< Single-length track pair inside the cell's RCM block.
  kConnectionBlock,  ///< Pin/pad <-> wire connection.
  kDiamond,          ///< Double-length pair inside a diamond switch.
};

std::string to_string(SwitchOwner owner);

struct RRNode {
  NodeKind kind = NodeKind::kWire;
  std::int32_t x = 0;  ///< Junction / cell coordinate.
  std::int32_t y = 0;
  std::int32_t index = 0;  ///< Pin number, pad number, or track.
  bool horizontal = false;  ///< Wires only.
  std::int32_t length = 1;  ///< Wires only: 1 or 2 junct'n spans.
  std::string name;         ///< Stable diagnostic name.
};

struct RREdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  SwitchId sw = -1;  ///< The physical switch this edge passes through.
};

struct RRSwitch {
  SwitchOwner owner = SwitchOwner::kSwitchBlock;
  std::int32_t x = 0;  ///< Owning block coordinate.
  std::int32_t y = 0;
  std::string name;
  /// The two directed edges realizing this bidirectional pass-gate.
  EdgeId forward = -1;
  EdgeId backward = -1;
};

/// Lightweight view over one node's slice of the CSR edge array.
class FanoutRange {
 public:
  FanoutRange(const EdgeId* first, const EdgeId* last)
      : first_(first), last_(last) {}
  const EdgeId* begin() const { return first_; }
  const EdgeId* end() const { return last_; }
  std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
  bool empty() const { return first_ == last_; }
  EdgeId operator[](std::size_t i) const { return first_[i]; }

 private:
  const EdgeId* first_;
  const EdgeId* last_;
};

class RoutingGraph {
 public:
  explicit RoutingGraph(const FabricSpec& spec);

  const FabricSpec& spec() const { return spec_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  std::size_t num_switches() const { return switches_.size(); }

  const RRNode& node(NodeId id) const { return nodes_[check_node(id)]; }
  const RREdge& edge(EdgeId id) const { return edges_[check_edge(id)]; }
  const RRSwitch& rr_switch(SwitchId id) const {
    return switches_[check_switch(id)];
  }

  /// Outgoing edges of a node (a view into the flat CSR arrays).
  FanoutRange fanout(NodeId id) const {
    const std::size_t n = check_node(id);
    return FanoutRange(csr_edges_.data() + csr_offsets_[n],
                       csr_edges_.data() + csr_offsets_[n + 1]);
  }

  /// Flat CSR adjacency, built once at construction.  Hot-path consumers
  /// (the router above all) index these directly: the fanout of node u
  /// lives at positions [csr_offsets()[u], csr_offsets()[u+1]) of the two
  /// parallel arrays below.
  const std::vector<std::size_t>& csr_offsets() const { return csr_offsets_; }
  /// Edge id at each CSR position.
  const std::vector<EdgeId>& csr_edges() const { return csr_edges_; }
  /// Target node of the edge at each CSR position.
  const std::vector<NodeId>& csr_targets() const { return csr_targets_; }

  /// Pin / pad node lookups.
  NodeId out_pin(std::size_t x, std::size_t y, std::size_t pin) const;
  NodeId in_pin(std::size_t x, std::size_t y, std::size_t pin) const;
  NodeId pad(std::size_t perimeter_index) const;
  std::size_t num_pads() const { return pads_.size(); }

  /// Switch population per owner kind (for the area model).
  std::size_t count_switches(SwitchOwner owner) const;
  /// Switch-block switch points at cell (x, y) (for RCM capacity checks).
  std::size_t switches_in_block(std::size_t x, std::size_t y,
                                SwitchOwner owner) const;

 private:
  std::size_t check_node(NodeId id) const;
  std::size_t check_edge(EdgeId id) const;
  std::size_t check_switch(SwitchId id) const;

  NodeId add_node(RRNode node);
  /// Adds a bidirectional switch (two directed edges) between a and b.
  SwitchId add_switch(NodeId a, NodeId b, SwitchOwner owner, std::int32_t x,
                      std::int32_t y, std::string name);

  void build_wires();
  void build_switch_blocks();
  void build_connection_blocks();
  void build_double_length();
  void build_pads();
  /// Flattens the per-node adjacency accumulated during construction into
  /// the contiguous CSR arrays (stable: preserves edge insertion order).
  void build_csr();

  FabricSpec spec_;
  std::vector<RRNode> nodes_;
  std::vector<RREdge> edges_;
  std::vector<RRSwitch> switches_;
  std::vector<std::size_t> csr_offsets_;  ///< num_nodes + 1 entries.
  std::vector<EdgeId> csr_edges_;
  std::vector<NodeId> csr_targets_;

  // Lookup tables built during construction.
  std::vector<NodeId> out_pins_;  // [cell][pin]
  std::vector<NodeId> in_pins_;
  std::vector<NodeId> h_wires_;  // [x][y][track], kInvalidNode where absent
  std::vector<NodeId> v_wires_;
  std::vector<NodeId> dl_h_wires_;
  std::vector<NodeId> dl_v_wires_;
  std::vector<NodeId> pads_;
  // switch counts per cell per owner: [cell][owner]
  std::vector<std::array<std::size_t, 3>> block_switch_counts_;

  NodeId h_wire(std::int32_t x, std::int32_t y, std::int32_t t) const;
  NodeId v_wire(std::int32_t x, std::int32_t y, std::int32_t t) const;
  NodeId dl_h_wire(std::int32_t x, std::int32_t y, std::int32_t t) const;
  NodeId dl_v_wire(std::int32_t x, std::int32_t y, std::int32_t t) const;
};

}  // namespace mcfpga::arch
