// Incremental static timing analysis over a levelized DAG.
//
// The paper counts delay in switch-element pass-gate crossings, and the
// optimization loops (timing-driven PathFinder, criticality-weighted
// placement) need that number DURING optimization, not after it.  A
// TimingGraph is built once per context — its topology (slots, I/O
// terminals, routed connections) is fixed for the duration of one
// negotiation — and only arc DELAYS change between rip-up iterations as
// connections reroute.  analyze() therefore re-propagates incrementally:
//
//   * arrival times flow forward level by level from the endpoints of
//     edited arcs, stopping wherever the recomputed maximum is unchanged;
//   * required times flow backward the same way (or in one full pass when
//     the critical path itself moved, since every sink's requirement is
//     anchored to it);
//   * per-arc slack and criticality in [0, 1] are derived on demand.
//
// Levels are assigned at construction (longest arc count from any
// source), which both proves acyclicity and gives the bucket order that
// makes incremental propagation a per-level worklist instead of a
// priority queue.  All propagation is exact floating-point recomputation
// — an incremental analyze() leaves bit-identical arrival/required arrays
// to analyze_full(), which tests exploit as the oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcfpga::timing {

/// One timing dependency: signal leaves `from`, arrives at `to` after
/// `delay` (connection wire delay plus the sink's block delay, if any).
struct Arc {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double delay = 0.0;
};

/// Snapshot of one full analysis (what the flow stores per context).
struct TimingReport {
  double critical_path = 0.0;
  /// arrival[node] = latest signal arrival.
  std::vector<double> arrival;
  /// required[node] = latest tolerable arrival (anchored at the critical
  /// path for every sink).
  std::vector<double> required;
  /// Nodes on (one) critical path, source first.
  std::vector<std::size_t> critical_nodes;
  std::size_t num_arcs = 0;
  /// Worst slack over all arcs (0 when any arc is critical, and for a
  /// graph with no arcs).
  double worst_slack = 0.0;
};

class TimingGraph {
 public:
  TimingGraph() = default;

  /// Levelizes the DAG; throws ProgrammingError on a combinational cycle
  /// and InvalidArgument on an out-of-range arc endpoint.
  TimingGraph(std::size_t num_nodes, std::vector<Arc> arcs);

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_arcs() const { return arcs_.size(); }
  const Arc& arc(std::size_t a) const { return arcs_[a]; }

  /// Edits one arc's delay; the change takes effect at the next analyze().
  void set_arc_delay(std::size_t a, double delay);

  /// Propagates arrivals/requireds.  The first call (and any call after
  /// analyze_full()) runs from scratch; subsequent calls re-propagate only
  /// the cones reachable from edited arcs.
  void analyze();

  /// From-scratch propagation (the oracle the property tests compare
  /// incremental analyze() against).
  void analyze_full();

  // --- queries; valid after analyze() --------------------------------------
  double arrival(std::size_t n) const { return arrival_[n]; }
  double required(std::size_t n) const { return required_[n]; }
  double critical_path() const { return critical_path_; }

  /// Slack of arc `a`: required(to) - arrival(from) - delay.  Zero on the
  /// critical path, positive off it.
  double slack(std::size_t a) const {
    const Arc& arc = arcs_[a];
    return required_[arc.to] - arrival_[arc.from] - arc.delay;
  }

  /// Criticality of arc `a` in [0, 1]: 1 - slack / critical_path, clamped.
  /// 0 when the graph's critical path is zero (nothing to chase).
  double criticality(std::size_t a) const {
    if (critical_path_ <= 0.0) {
      return 0.0;
    }
    const double c = 1.0 - slack(a) / critical_path_;
    return c < 0.0 ? 0.0 : (c > 1.0 ? 1.0 : c);
  }

  /// Nodes on one critical path, source first (empty for an empty graph).
  std::vector<std::size_t> critical_nodes() const;

  /// Assembles the full per-context snapshot.
  TimingReport report() const;

 private:
  void propagate_arrival_full();
  void propagate_required_full();
  /// Recomputes arrival[n] (and its critical predecessor) from in-arcs.
  /// Returns true when the value changed.
  bool recompute_arrival(std::uint32_t n);
  /// Recomputes required[n] from out-arcs; true when changed.
  bool recompute_required(std::uint32_t n);
  void refresh_critical_path();

  std::size_t num_nodes_ = 0;
  std::vector<Arc> arcs_;

  // CSR adjacency, built once: out-arcs by `from`, in-arcs by `to`.
  std::vector<std::uint32_t> out_offset_, out_arc_;
  std::vector<std::uint32_t> in_offset_, in_arc_;

  /// level[n] = longest arc count from any source; arcs strictly increase
  /// level, so ascending-level order is a topological order.
  std::vector<std::uint32_t> level_;
  std::size_t num_levels_ = 0;
  /// Nodes grouped by level (the full-pass iteration order).
  std::vector<std::uint32_t> by_level_;
  std::vector<std::uint32_t> level_offset_;

  std::vector<double> arrival_;
  std::vector<double> required_;
  /// critical_pred_[n] = in-arc achieving arrival[n] (SIZE_MAX at sources).
  std::vector<std::size_t> critical_pred_;
  double critical_path_ = 0.0;

  // Incremental state: nodes whose arrival (forward) / required (backward)
  // must be recomputed at the next analyze(), deduplicated by epoch stamp.
  bool analyzed_ = false;
  std::vector<std::uint32_t> dirty_forward_;
  std::vector<std::uint32_t> dirty_backward_;
  std::vector<std::uint64_t> forward_stamp_;
  std::vector<std::uint64_t> backward_stamp_;
  std::uint64_t epoch_ = 0;

  // Scratch level buckets reused across analyze() calls.
  std::vector<std::vector<std::uint32_t>> bucket_;
};

}  // namespace mcfpga::timing
