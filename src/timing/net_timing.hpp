// Connection-level timing structure of one context.
//
// The compile flow knows which logical connection every routed (net, sink)
// pair realizes: a driver (LUT slot or input pad) reaching one or more
// reading slots or an output pad.  A ContextTimingSpec captures exactly
// that — timing node ids plus the per-connection reader fan-out — without
// any reference to routing-graph node ids, so the same spec serves
//
//   * the timing-driven router, which re-times the context between rip-up
//     iterations (switch counts change, topology does not);
//   * the Timing stage, which produces the per-context TimingReport from
//     the final routed switch counts;
//   * pre-route criticality estimation (unit switch counts), which seeds
//     the placer's net weights and the router's first iteration.
//
// ConnectionArcs flattens a spec into the timing::Arc array a TimingGraph
// consumes, keeping per-connection arc ranges so delays and criticalities
// map back to (net, sink) pairs in O(1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "timing/timing_graph.hpp"

namespace mcfpga::timing {

/// One (net, sink) connection's contribution to the context timing DAG.
/// A sink pin feeding several slots of one logic block fans out to one
/// reader per slot; an output pad is a single non-LUT reader.
struct SinkTiming {
  struct Reader {
    std::uint32_t from = 0;  ///< Driver timing node (slot or terminal).
    std::uint32_t to = 0;    ///< Reader timing node (slot or terminal).
    bool is_lut = false;     ///< Reader adds the block delay.
  };
  std::vector<Reader> readers;
};

/// Timing structure of one context, parallel to its RouteNet list:
/// nets[i].sinks[j] describes connection j of net i.
struct ContextTimingSpec {
  std::size_t num_nodes = 0;
  struct NetTiming {
    std::vector<SinkTiming> sinks;
  };
  std::vector<NetTiming> nets;
  double se_delay = 1.0;   ///< One pass-gate crossing.
  double lut_delay = 2.0;  ///< One logic-block evaluation.

  /// Delay of one connection: `switches` crossings plus the reader's block
  /// delay when it is a LUT.
  double connection_delay(std::size_t switches, bool is_lut) const {
    return se_delay * static_cast<double>(switches) +
           (is_lut ? lut_delay : 0.0);
  }
};

/// Flattened arc view of a spec: one timing::Arc per reader, grouped by
/// connection.  Arc delays start at the one-switch estimate, which makes
/// the initial analysis a pure logic-depth criticality — the right prior
/// before anything is routed.
class ConnectionArcs {
 public:
  explicit ConnectionArcs(const ContextTimingSpec& spec) : spec_(&spec) {
    std::size_t conns = 0;
    net_offset_.reserve(spec.nets.size() + 1);
    net_offset_.push_back(0);
    for (const auto& net : spec.nets) {
      conns += net.sinks.size();
      net_offset_.push_back(static_cast<std::uint32_t>(conns));
    }
    conn_offset_.reserve(conns + 1);
    conn_offset_.push_back(0);
    for (const auto& net : spec.nets) {
      for (const auto& sink : net.sinks) {
        for (const auto& r : sink.readers) {
          arcs_.push_back(
              Arc{r.from, r.to, spec.connection_delay(1, r.is_lut)});
          arc_is_lut_.push_back(r.is_lut ? 1 : 0);
        }
        conn_offset_.push_back(static_cast<std::uint32_t>(arcs_.size()));
      }
    }
  }

  const std::vector<Arc>& arcs() const { return arcs_; }
  std::size_t num_connections() const { return conn_offset_.size() - 1; }

  /// Flat connection index of net `i`, sink `j`.
  std::size_t connection(std::size_t net, std::size_t sink) const {
    return net_offset_[net] + sink;
  }

  /// Arc index range [first, last) of one flat connection.
  std::uint32_t arcs_begin(std::size_t conn) const {
    return conn_offset_[conn];
  }
  std::uint32_t arcs_end(std::size_t conn) const {
    return conn_offset_[conn + 1];
  }

  /// Re-times one connection in `graph` to `switches` crossings.
  void set_connection_switches(TimingGraph& graph, std::size_t conn,
                               std::size_t switches) const {
    for (std::uint32_t a = conn_offset_[conn]; a < conn_offset_[conn + 1];
         ++a) {
      graph.set_arc_delay(
          a, spec_->connection_delay(switches, arc_is_lut_[a] != 0));
    }
  }

  /// Criticality of a connection = worst criticality over its arcs.
  double connection_criticality(const TimingGraph& graph,
                                std::size_t conn) const {
    double crit = 0.0;
    for (std::uint32_t a = conn_offset_[conn]; a < conn_offset_[conn + 1];
         ++a) {
      crit = std::max(crit, graph.criticality(a));
    }
    return crit;
  }

 private:
  const ContextTimingSpec* spec_;
  std::vector<Arc> arcs_;
  std::vector<std::uint8_t> arc_is_lut_;
  std::vector<std::uint32_t> net_offset_;
  std::vector<std::uint32_t> conn_offset_;
};

/// Post-route criticalities of one context's connections, keyed by
/// (net, sink): switches[i][j] is connection (i, j)'s routed switch count
/// and the result parallels it, each entry the worst criticality over the
/// connection's reader arcs.  Computed straight from a finished report's
/// arrival/required arrays — the same slack formula TimingGraph uses at
/// the given switch counts — so closure-loop consumers that already hold
/// the Timing stage's report need no second STA pass.
inline std::vector<std::vector<double>> connection_criticalities(
    const ContextTimingSpec& spec, const TimingReport& report,
    const std::vector<std::vector<std::size_t>>& switches) {
  std::vector<std::vector<double>> out(spec.nets.size());
  for (std::size_t i = 0; i < spec.nets.size(); ++i) {
    out[i].assign(spec.nets[i].sinks.size(), 0.0);
    if (report.critical_path <= 0.0) {
      continue;  // nothing to chase; everything is uncritical
    }
    for (std::size_t j = 0; j < spec.nets[i].sinks.size(); ++j) {
      double crit = 0.0;
      for (const SinkTiming::Reader& r : spec.nets[i].sinks[j].readers) {
        const double delay = spec.connection_delay(switches[i][j], r.is_lut);
        const double slack =
            report.required[r.to] - report.arrival[r.from] - delay;
        const double c = 1.0 - slack / report.critical_path;
        crit = std::max(crit, c < 0.0 ? 0.0 : (c > 1.0 ? 1.0 : c));
      }
      out[i][j] = crit;
    }
  }
  return out;
}

}  // namespace mcfpga::timing
