#include "timing/timing_graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mcfpga::timing {

TimingGraph::TimingGraph(std::size_t num_nodes, std::vector<Arc> arcs)
    : num_nodes_(num_nodes), arcs_(std::move(arcs)) {
  const std::size_t n = num_nodes_;
  out_offset_.assign(n + 1, 0);
  in_offset_.assign(n + 1, 0);
  for (const Arc& a : arcs_) {
    MCFPGA_REQUIRE(a.from < n && a.to < n, "timing arc endpoint out of range");
    ++out_offset_[a.from + 1];
    ++in_offset_[a.to + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    out_offset_[i + 1] += out_offset_[i];
    in_offset_[i + 1] += in_offset_[i];
  }
  out_arc_.resize(arcs_.size());
  in_arc_.resize(arcs_.size());
  {
    std::vector<std::uint32_t> out_cur(out_offset_.begin(),
                                       out_offset_.end() - 1);
    std::vector<std::uint32_t> in_cur(in_offset_.begin(), in_offset_.end() - 1);
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      out_arc_[out_cur[arcs_[a].from]++] = static_cast<std::uint32_t>(a);
      in_arc_[in_cur[arcs_[a].to]++] = static_cast<std::uint32_t>(a);
    }
  }

  // Kahn levelization: level = longest arc count from any source.  Proves
  // acyclicity and yields the bucket order both propagations walk.
  level_.assign(n, 0);
  std::vector<std::uint32_t> indegree(n, 0);
  for (const Arc& a : arcs_) {
    ++indegree[a.to];
  }
  std::vector<std::uint32_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.back();
    ready.pop_back();
    ++processed;
    for (std::uint32_t at = out_offset_[u]; at < out_offset_[u + 1]; ++at) {
      const Arc& a = arcs_[out_arc_[at]];
      level_[a.to] = std::max(level_[a.to], level_[u] + 1);
      if (--indegree[a.to] == 0) {
        ready.push_back(a.to);
      }
    }
  }
  MCFPGA_CHECK(processed == n, "timing graph contains a combinational cycle");

  num_levels_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num_levels_ = std::max<std::size_t>(num_levels_, level_[i] + 1);
  }
  // Counting sort of nodes into level order.
  level_offset_.assign(num_levels_ + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++level_offset_[level_[i] + 1];
  }
  for (std::size_t l = 0; l < num_levels_; ++l) {
    level_offset_[l + 1] += level_offset_[l];
  }
  by_level_.resize(n);
  {
    std::vector<std::uint32_t> cur(level_offset_.begin(),
                                   level_offset_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      by_level_[cur[level_[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  arrival_.assign(n, 0.0);
  required_.assign(n, 0.0);
  critical_pred_.assign(n, SIZE_MAX);
  forward_stamp_.assign(n, 0);
  backward_stamp_.assign(n, 0);
  epoch_ = 1;
  bucket_.resize(num_levels_);
}

void TimingGraph::set_arc_delay(std::size_t a, double delay) {
  MCFPGA_REQUIRE(a < arcs_.size(), "timing arc index out of range");
  if (arcs_[a].delay == delay) {
    return;
  }
  arcs_[a].delay = delay;
  const std::uint32_t to = arcs_[a].to;
  const std::uint32_t from = arcs_[a].from;
  if (forward_stamp_[to] != epoch_) {
    forward_stamp_[to] = epoch_;
    dirty_forward_.push_back(to);
  }
  if (backward_stamp_[from] != epoch_) {
    backward_stamp_[from] = epoch_;
    dirty_backward_.push_back(from);
  }
}

bool TimingGraph::recompute_arrival(std::uint32_t n) {
  double arr = 0.0;
  std::size_t pred = SIZE_MAX;
  for (std::uint32_t at = in_offset_[n]; at < in_offset_[n + 1]; ++at) {
    const std::uint32_t a = in_arc_[at];
    const double t = arrival_[arcs_[a].from] + arcs_[a].delay;
    if (t > arr) {
      arr = t;
      pred = a;
    }
  }
  critical_pred_[n] = pred;
  if (arr == arrival_[n]) {
    return false;
  }
  arrival_[n] = arr;
  return true;
}

bool TimingGraph::recompute_required(std::uint32_t n) {
  double req = critical_path_;
  bool first = true;
  for (std::uint32_t at = out_offset_[n]; at < out_offset_[n + 1]; ++at) {
    const std::uint32_t a = out_arc_[at];
    const double t = required_[arcs_[a].to] - arcs_[a].delay;
    if (first || t < req) {
      req = t;
      first = false;
    }
  }
  if (req == required_[n]) {
    return false;
  }
  required_[n] = req;
  return true;
}

void TimingGraph::refresh_critical_path() {
  critical_path_ = 0.0;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    critical_path_ = std::max(critical_path_, arrival_[i]);
  }
}

void TimingGraph::propagate_arrival_full() {
  for (const std::uint32_t n : by_level_) {
    recompute_arrival(n);
  }
}

void TimingGraph::propagate_required_full() {
  for (std::size_t i = by_level_.size(); i-- > 0;) {
    recompute_required(by_level_[i]);
  }
}

void TimingGraph::analyze_full() {
  propagate_arrival_full();
  refresh_critical_path();
  propagate_required_full();
  analyzed_ = true;
  dirty_forward_.clear();
  dirty_backward_.clear();
  ++epoch_;
}

void TimingGraph::analyze() {
  if (!analyzed_) {
    analyze_full();
    return;
  }
  if (dirty_forward_.empty() && dirty_backward_.empty()) {
    return;
  }

  // Forward cone: recompute arrivals level by level from the edited arcs'
  // sinks; a node whose maximum is unchanged stops the wave.
  for (const std::uint32_t n : dirty_forward_) {
    bucket_[level_[n]].push_back(n);
  }
  for (std::size_t l = 0; l < num_levels_; ++l) {
    for (std::size_t i = 0; i < bucket_[l].size(); ++i) {
      const std::uint32_t n = bucket_[l][i];
      if (!recompute_arrival(n)) {
        continue;
      }
      for (std::uint32_t at = out_offset_[n]; at < out_offset_[n + 1]; ++at) {
        const std::uint32_t to = arcs_[out_arc_[at]].to;
        if (forward_stamp_[to] != epoch_) {
          forward_stamp_[to] = epoch_;
          bucket_[level_[to]].push_back(to);
        }
      }
    }
    bucket_[l].clear();
  }

  const double old_critical = critical_path_;
  refresh_critical_path();

  if (critical_path_ != old_critical) {
    // Every sink's requirement is anchored at the critical path, so a
    // moved critical path re-anchors the whole backward propagation.
    propagate_required_full();
  } else {
    for (const std::uint32_t n : dirty_backward_) {
      bucket_[level_[n]].push_back(n);
    }
    for (std::size_t l = num_levels_; l-- > 0;) {
      for (std::size_t i = 0; i < bucket_[l].size(); ++i) {
        const std::uint32_t n = bucket_[l][i];
        if (!recompute_required(n)) {
          continue;
        }
        for (std::uint32_t at = in_offset_[n]; at < in_offset_[n + 1]; ++at) {
          const std::uint32_t from = arcs_[in_arc_[at]].from;
          if (backward_stamp_[from] != epoch_) {
            backward_stamp_[from] = epoch_;
            bucket_[level_[from]].push_back(from);
          }
        }
      }
      bucket_[l].clear();
    }
  }

  dirty_forward_.clear();
  dirty_backward_.clear();
  ++epoch_;
}

std::vector<std::size_t> TimingGraph::critical_nodes() const {
  std::vector<std::size_t> nodes;
  if (num_nodes_ == 0) {
    return nodes;
  }
  std::size_t worst = 0;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (arrival_[i] > arrival_[worst]) {
      worst = i;
    }
  }
  for (std::size_t n = worst;;) {
    nodes.push_back(n);
    const std::size_t pred = critical_pred_[n];
    if (pred == SIZE_MAX || nodes.size() > num_nodes_) {
      break;
    }
    n = arcs_[pred].from;
  }
  std::reverse(nodes.begin(), nodes.end());
  return nodes;
}

TimingReport TimingGraph::report() const {
  TimingReport r;
  r.critical_path = critical_path_;
  r.arrival = arrival_;
  r.required = required_;
  r.critical_nodes = critical_nodes();
  r.num_arcs = arcs_.size();
  r.worst_slack = 0.0;
  for (std::size_t a = 0; a < arcs_.size(); ++a) {
    const double s = slack(a);
    if (a == 0 || s < r.worst_slack) {
      r.worst_slack = s;
    }
  }
  return r;
}

}  // namespace mcfpga::timing
