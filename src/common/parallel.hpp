// Shared worker-pool machinery.
//
// parallel_for_index: index-queue fan-out for embarrassingly parallel,
// deterministic work: per-context routing (route/router.cpp) and
// multi-seed placement restarts (place/placer.cpp) both drain [0, count)
// through an atomic counter and merge results by index, so the output
// never depends on worker timing.  Centralized here because the subtle
// parts — the thread-creation fallback and the caller-thread
// participation — must not diverge between call sites.
//
// WorkerPool: the long-running counterpart for services (serve/daemon):
// a fixed set of threads draining a task queue that outlives any single
// fan-out.  Shares parallel_for_index's degradation policy: if no thread
// can be created, tasks run inline on the submitting thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace mcfpga {

/// Resolves a thread-count option: 0 means one per hardware thread, and
/// the result is clamped to [1, max_useful].
inline std::size_t effective_threads(std::size_t requested,
                                     std::size_t max_useful) {
  std::size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) {
      n = 1;
    }
  }
  return std::max<std::size_t>(1, std::min(n, max_useful));
}

/// Runs a worker body over every index in [0, count) on up to `workers`
/// threads (the calling thread included).  `make_worker()` is invoked once
/// per participating thread and must return a callable taking the index —
/// the place to hang worker-local scratch (e.g. one RouterCore per
/// thread).  The body must not throw: capture exceptions per index and
/// rethrow in index order after this returns, so failures are as
/// deterministic as results.
template <typename MakeWorker>
void parallel_for_index(std::size_t count, std::size_t workers,
                        MakeWorker&& make_worker) {
  if (workers <= 1 || count <= 1) {
    auto body = make_worker();
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto work = [&]() {
    auto body = make_worker();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) {
        break;
      }
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    try {
      pool.emplace_back(work);
    } catch (const std::system_error&) {
      // Thread creation failed (resource exhaustion).  The shared queue
      // still drains fully on the caller + already-started workers, so
      // degrade instead of unwinding past joinable threads.
      break;
    }
  }
  work();
  for (auto& t : pool) {
    t.join();
  }
}

/// Persistent FIFO task pool: `workers` threads drain submitted tasks
/// until shutdown().  Tasks must not throw (catch inside the task; an
/// escaped exception terminates, as from any detached thread body).
/// shutdown() stops accepting work, DRAINS everything already queued,
/// then joins — so a submitted task always runs exactly once, which lets
/// callers park per-task completion state behind it without a "dropped on
/// the floor" case.  When no thread can be created (resource exhaustion),
/// submit() degrades to running the task inline on the caller.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers) {
    threads_.reserve(std::max<std::size_t>(1, workers));
    for (std::size_t w = 0; w < std::max<std::size_t>(1, workers); ++w) {
      try {
        threads_.emplace_back([this] { worker_loop(); });
      } catch (const std::system_error&) {
        break;  // degrade: fewer workers (possibly zero -> inline mode)
      }
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool() { shutdown(); }

  std::size_t num_workers() const { return threads_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      MCFPGA_REQUIRE(!stopping_, "submit on a shut-down WorkerPool");
      if (!threads_.empty()) {
        queue_.push_back(std::move(task));
        cv_.notify_one();
        return;
      }
    }
    task();  // inline fallback: no worker thread could be created
  }

  /// Idempotent: drains the queue on the workers, then joins them.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
    threads_.clear();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stopping_ and nothing left to drain
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

/// Persistent fork-join helper for repeated small fan-outs — the
/// speculative interleaved drain runs one of these per commit window, far
/// too often to pay thread spawn each time.  `participants` counts the
/// caller plus up to participants-1 parked helper threads; each run(count,
/// fn) wakes them, every participant p calls fn(p, k) for its static
/// stride of k in [0, count) (k = p, p + P, p + 2P, ...), and run()
/// returns only after every index has completed — a batch barrier.
///
/// The participant -> index map is deterministic, but callers must not
/// rely on it for results: fn(p, k) must compute a pure function of k
/// (p only selects worker-local scratch).  fn must not throw.  Shares the
/// pool degradation policy: if a helper thread cannot be created, the
/// stride shrinks and the caller still covers every index.
class BatchRunner {
 public:
  explicit BatchRunner(std::size_t participants) {
    const std::size_t helpers = participants > 1 ? participants - 1 : 0;
    threads_.reserve(helpers);
    for (std::size_t w = 0; w < helpers; ++w) {
      try {
        threads_.emplace_back([this, w] { helper_loop(w + 1); });
      } catch (const std::system_error&) {
        break;  // degrade: fewer helpers; the caller covers the rest
      }
    }
  }

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  ~BatchRunner() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      t.join();
    }
  }

  /// Caller + helper threads actually running (>= 1).
  std::size_t num_participants() const { return threads_.size() + 1; }

  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t stride = threads_.size() + 1;
    if (threads_.empty() || count <= 1) {
      for (std::size_t k = 0; k < count; ++k) {
        fn(0, k);
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      count_ = count;
      stride_ = stride;
      fn_ = &fn;
      pending_ = threads_.size();
      ++generation_;
    }
    cv_.notify_all();
    for (std::size_t k = 0; k < count; k += stride) {
      fn(0, k);
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void helper_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      std::size_t count;
      std::size_t stride;
      const std::function<void(std::size_t, std::size_t)>* fn;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        if (generation_ == seen) {
          return;  // stopping_ with no unprocessed batch
        }
        seen = generation_;
        count = count_;
        stride = stride_;
        fn = fn_;
      }
      for (std::size_t k = slot; k < count; k += stride) {
        (*fn)(slot, k);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) {
          done_cv_.notify_all();
        }
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       ///< Wakes helpers (new batch / stop).
  std::condition_variable done_cv_;  ///< Wakes the caller (batch done).
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t stride_ = 1;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace mcfpga
