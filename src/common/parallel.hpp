// Shared index-queue worker pool for embarrassingly parallel, deterministic
// fan-out: per-context routing (route/router.cpp) and multi-seed placement
// restarts (place/placer.cpp) both drain [0, count) through an atomic
// counter and merge results by index, so the output never depends on worker
// timing.  Centralized here because the subtle parts — the thread-creation
// fallback and the caller-thread participation — must not diverge between
// call sites.
#pragma once

#include <atomic>
#include <cstddef>
#include <system_error>
#include <thread>
#include <vector>

namespace mcfpga {

/// Resolves a thread-count option: 0 means one per hardware thread, and
/// the result is clamped to [1, max_useful].
inline std::size_t effective_threads(std::size_t requested,
                                     std::size_t max_useful) {
  std::size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) {
      n = 1;
    }
  }
  return std::max<std::size_t>(1, std::min(n, max_useful));
}

/// Runs a worker body over every index in [0, count) on up to `workers`
/// threads (the calling thread included).  `make_worker()` is invoked once
/// per participating thread and must return a callable taking the index —
/// the place to hang worker-local scratch (e.g. one RouterCore per
/// thread).  The body must not throw: capture exceptions per index and
/// rethrow in index order after this returns, so failures are as
/// deterministic as results.
template <typename MakeWorker>
void parallel_for_index(std::size_t count, std::size_t workers,
                        MakeWorker&& make_worker) {
  if (workers <= 1 || count <= 1) {
    auto body = make_worker();
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto work = [&]() {
    auto body = make_worker();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) {
        break;
      }
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    try {
      pool.emplace_back(work);
    } catch (const std::system_error&) {
      // Thread creation failed (resource exhaustion).  The shared queue
      // still drains fully on the caller + already-started workers, so
      // degrade instead of unwinding past joinable threads.
      break;
    }
  }
  work();
  for (auto& t : pool) {
    t.join();
  }
}

}  // namespace mcfpga
