// Deterministic random-number generation for workload synthesis and the
// simulated-annealing placer.  xoshiro256** is used instead of std::mt19937
// for speed and for bit-for-bit reproducibility across standard libraries
// (libstdc++ and libc++ disagree on distribution outputs; we implement our
// own bounded-draw helpers so seeds give identical workloads everywhere).
#pragma once

#include <cstdint>

namespace mcfpga {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double next_double();
  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

 private:
  std::uint64_t s_[4];
};

}  // namespace mcfpga
