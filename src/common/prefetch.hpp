// Portable software-prefetch shim.
//
// The router's maze expansion walks CSR adjacency rows whose addresses are
// known one hop before they are scanned — exactly the pattern a prefetch
// hint converts from a dependent-load stall into overlapped memory
// traffic.  MCFPGA_PREFETCH is advisory: a read prefetch into all cache
// levels on GCC/Clang, a no-op elsewhere, and never a semantic change.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define MCFPGA_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define MCFPGA_PREFETCH(addr) ((void)0)
#endif
