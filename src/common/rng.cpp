#include "common/rng.hpp"

#include "common/error.hpp"

namespace mcfpga {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 expands the single seed word into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // All-zero state would lock xoshiro at zero forever.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MCFPGA_REQUIRE(bound > 0, "next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  MCFPGA_REQUIRE(lo <= hi, "next_in requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return next_double() < p;
}

}  // namespace mcfpga
