// Stable 64-bit content hashing for cache keys.
//
// FNV-1a/64 over an explicit little-endian byte stream: every integer is
// decomposed into bytes least-significant first before it touches the
// state, and floating-point values go through their IEEE-754 bit pattern,
// so a given value sequence digests to the same 64-bit key on any
// platform, compiler, or build mode.  The content-addressed stage cache
// (src/cache/) keys every pipeline artifact with digests built here, so
// this stability is what makes cached artifacts shareable across machines
// and auditable offline.
//
// Known-answer vectors (checked by tests/test_common.cpp):
//   fnv1a("")            == 0xcbf29ce484222325  (the offset basis)
//   fnv1a("a")           == 0xaf63dc4c8601ec8c
//   fnv1a("foobar")      == 0x85944171f73967e8
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/bitvector.hpp"

namespace mcfpga::common {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// One FNV-1a/64 absorption step.
constexpr std::uint64_t fnv1a_byte(std::uint64_t state, std::uint8_t byte) {
  return (state ^ byte) * kFnvPrime;
}

/// FNV-1a/64 of a byte string, continuing from `state`.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t state = kFnvOffsetBasis) {
  for (const char c : bytes) {
    state = fnv1a_byte(state, static_cast<std::uint8_t>(c));
  }
  return state;
}

/// Folds `value` into `seed` byte-by-byte (little-endian), so combining is
/// order-sensitive: hash_combine(a, b) != hash_combine(b, a) in general.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    seed = fnv1a_byte(seed, static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return seed;
}

/// Incremental FNV-1a/64 hasher with typed feeders.  Every feeder returns
/// *this so field lists chain; variable-length payloads (strings, bit
/// vectors) are length-prefixed so adjacent fields cannot alias.
class Hasher {
 public:
  Hasher& u64(std::uint64_t value) {
    state_ = hash_combine(state_, value);
    return *this;
  }
  Hasher& size(std::size_t value) {
    return u64(static_cast<std::uint64_t>(value));
  }
  Hasher& i64(std::int64_t value) {
    return u64(static_cast<std::uint64_t>(value));
  }
  Hasher& boolean(bool value) {
    state_ = fnv1a_byte(state_, value ? 1 : 0);
    return *this;
  }
  /// IEEE-754 bit pattern, so -0.0 != +0.0 and every NaN payload is its
  /// own key — exact, never rounds.
  Hasher& f64(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return u64(bits);
  }
  Hasher& str(std::string_view value) {
    size(value.size());
    state_ = fnv1a(value, state_);
    return *this;
  }
  Hasher& bits(const BitVector& value) {
    size(value.size());
    for (const std::uint64_t word : value.words()) {
      u64(word);
    }
    return *this;
  }
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kFnvOffsetBasis;
};

}  // namespace mcfpga::common
