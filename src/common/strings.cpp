#include "common/strings.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace mcfpga {

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

namespace {

/// std::from_chars over the whole token: success iff every character was
/// consumed and the value fit.  from_chars itself never skips whitespace
/// and never accepts '+', which is exactly the strictness wanted here.
template <typename T>
bool from_chars_exact(std::string_view token, T& out) {
  if (token.empty()) {
    return false;
  }
  const char* first = token.data();
  const char* last = token.data() + token.size();
  T value{};
  const std::from_chars_result r = std::from_chars(first, last, value);
  if (r.ec != std::errc{} || r.ptr != last) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace

bool try_parse_u64(std::string_view token, std::uint64_t& out) {
  // from_chars(unsigned) accepts a leading '-' on some inputs ("-0")
  // via negation rules; rule any sign out explicitly.
  if (token.empty() || token.front() == '-' || token.front() == '+') {
    return false;
  }
  return from_chars_exact(token, out);
}

bool try_parse_i64(std::string_view token, std::int64_t& out) {
  if (token.empty() || token.front() == '+') {
    return false;
  }
  return from_chars_exact(token, out);
}

bool try_parse_double(std::string_view token, double& out) {
  if (token.empty() || token.front() == '+') {
    return false;
  }
  double value = 0.0;
  if (!from_chars_exact(token, value)) {
    return false;
  }
  // from_chars happily parses "inf"/"nan"; no text format in this repo
  // has a legitimate non-finite field, so reject them at the seam.
  if (!std::isfinite(value)) {
    return false;
  }
  out = value;
  return true;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

}  // namespace mcfpga
