#include "common/strings.hpp"

#include <cstdint>
#include <cstdio>

namespace mcfpga {

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) {
    return s;
  }
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

}  // namespace mcfpga
