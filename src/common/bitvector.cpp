#include "common/bitvector.hpp"

#include <bit>

#include "common/error.hpp"

namespace mcfpga {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t size, bool value) : size_(size) {
  words_.assign(word_count(size), value ? ~std::uint64_t{0} : 0);
  mask_tail();
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[i];
    MCFPGA_REQUIRE(c == '0' || c == '1', "bit string must contain only 0/1");
    // MSB-first: bits[0] is the highest index.
    v.set(bits.size() - 1 - i, c == '1');
  }
  return v;
}

BitVector BitVector::from_word(std::uint64_t word, std::size_t size) {
  MCFPGA_REQUIRE(size <= kWordBits, "from_word supports at most 64 bits");
  BitVector v(size);
  if (size > 0) {
    v.words_[0] = word;
    v.mask_tail();
  }
  return v;
}

void BitVector::check_index(std::size_t i) const {
  if (i >= size_) {
    throw InvalidArgument("BitVector index " + std::to_string(i) +
                          " out of range (size " + std::to_string(size_) + ")");
  }
}

void BitVector::mask_tail() {
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

bool BitVector::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVector::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

void BitVector::fill(bool value) {
  for (auto& w : words_) {
    w = value ? ~std::uint64_t{0} : 0;
  }
  mask_tail();
}

void BitVector::push_back(bool value) {
  ++size_;
  if (word_count(size_) > words_.size()) {
    words_.push_back(0);
  }
  set(size_ - 1, value);
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (const auto w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

bool BitVector::all_equal(bool value) const {
  return popcount() == (value ? size_ : 0);
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  MCFPGA_REQUIRE(size_ == other.size_, "hamming_distance size mismatch");
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

std::uint64_t BitVector::to_word() const {
  MCFPGA_REQUIRE(size_ <= kWordBits, "to_word requires at most 64 bits");
  return words_.empty() ? 0 : words_[0];
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) {
      s[size_ - 1 - i] = '1';
    }
  }
  return s;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  MCFPGA_REQUIRE(size_ == other.size_, "operator^= size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  MCFPGA_REQUIRE(size_ == other.size_, "operator&= size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  MCFPGA_REQUIRE(size_ == other.size_, "operator|= size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return *this;
}

std::size_t BitVector::hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const auto w : words_) {
    h ^= w;
    h *= 1099511628211ull;  // FNV prime
  }
  h ^= size_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

}  // namespace mcfpga
