#include "common/table.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace mcfpga {

namespace {
// A cell is "numeric" (right-aligned) if it starts with a digit, sign, or dot.
bool looks_numeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  const char c = s.front();
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
         c == '+' || c == '.';
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MCFPGA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  MCFPGA_REQUIRE(row.size() == header_.size(),
                 "row arity must match header arity");
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_rule = [&] {
    os << '+';
    for (const auto w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells,
                               bool align_numeric) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = align_numeric && looks_numeric(cells[c]);
      os << ' '
         << (right ? pad_left(cells[c], widths[c])
                   : pad_right(cells[c], widths[c]))
         << " |";
    }
    os << '\n';
  };

  print_rule();
  print_cells(header_, /*align_numeric=*/false);
  print_rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells, /*align_numeric=*/true);
    }
  }
  print_rule();
}

}  // namespace mcfpga
