// Dynamic bit vector used for LUT truth tables, configuration planes and
// bitstream storage.  std::vector<bool> is avoided on purpose: BitVector
// exposes word-level access (needed by the redundancy statistics, which
// popcount whole planes) and has unambiguous copy/compare semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcfpga {

class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all initialized to `value`.
  explicit BitVector(std::size_t size, bool value = false);
  /// Parses a string of '0'/'1' characters, most-significant bit first.
  static BitVector from_string(const std::string& bits);
  /// Builds from the low `size` bits of `word` (bit 0 = index 0).
  static BitVector from_word(std::uint64_t word, std::size_t size);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Sets every bit to `value`.
  void fill(bool value);
  /// Appends one bit.
  void push_back(bool value);

  /// Number of set bits.
  std::size_t popcount() const;
  /// True if every bit equals `value`.
  bool all_equal(bool value) const;
  /// Number of positions where *this and other differ (sizes must match).
  std::size_t hamming_distance(const BitVector& other) const;

  /// Low 64 bits packed into a word (size() must be <= 64).
  std::uint64_t to_word() const;
  /// "MSB-first" string of '0'/'1', matching from_string round-trip.
  std::string to_string() const;

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// In-place bitwise ops (sizes must match).
  BitVector& operator^=(const BitVector& other);
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);

  /// Word-level access for statistics kernels. Tail bits beyond size() are 0.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// FNV-1a hash over the significant bits (usable as an unordered_map key).
  std::size_t hash() const;

 private:
  void check_index(std::size_t i) const;
  void mask_tail();

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

/// Hash functor so BitVector can key unordered containers.
struct BitVectorHash {
  std::size_t operator()(const BitVector& v) const { return v.hash(); }
};

}  // namespace mcfpga
