// Error types shared by every mcfpga module.
//
// The library reports contract violations (bad arguments, inconsistent
// programming, unroutable designs) with exceptions derived from
// mcfpga::Error so callers can distinguish library failures from std::
// failures.  MCFPGA_REQUIRE is the standard argument-checking macro: it is
// always on (never compiled out) because the checks guard user-facing API
// boundaries, not inner loops.
#pragma once

#include <stdexcept>
#include <string>

namespace mcfpga {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An API precondition was violated (bad argument, out-of-range index, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A fabric resource was programmed inconsistently (double-driven wire,
/// decoder output conflict, plane out of range, ...).
class ProgrammingError : public Error {
 public:
  explicit ProgrammingError(const std::string& what) : Error(what) {}
};

/// The CAD flow could not complete (unplaceable, unroutable, over capacity).
class FlowError : public Error {
 public:
  explicit FlowError(const std::string& what) : Error(what) {}
};

/// A compile was abandoned on purpose (job cancellation, deadline budget).
/// Deliberately NOT a FlowError: callers that treat FlowError as "the
/// design is infeasible" must not confuse it with "the caller asked us to
/// stop" — the serve daemon catches this type to mark sessions
/// Cancelled/Failed-by-deadline instead of compile-failed.
class FlowCancelled : public Error {
 public:
  explicit FlowCancelled(const std::string& what) : Error(what) {}
};

}  // namespace mcfpga

/// Precondition check that throws mcfpga::InvalidArgument with location info.
#define MCFPGA_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::mcfpga::InvalidArgument(std::string(__func__) + ": " +       \
                                      std::string(msg) + " [" #cond "]");  \
    }                                                                      \
  } while (0)

/// Internal-consistency check that throws mcfpga::ProgrammingError.
#define MCFPGA_CHECK(cond, msg)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::mcfpga::ProgrammingError(std::string(__func__) + ": " +      \
                                       std::string(msg) + " [" #cond "]"); \
    }                                                                      \
  } while (0)
