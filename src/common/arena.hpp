// Bump-allocated scratch arena for per-worker engine state.
//
// The router's inner loop re-routes the same graph context after context,
// pass after pass, negotiation round after round — and every RouterCore
// used to re-own (and re-malloc) its per-node scratch vectors each time a
// worker was built.  A ScratchArena decouples the memory's lifetime from
// the engine's: a worker keeps one arena alive for the whole job, every
// engine built on that worker carves its arrays out of the same block, and
// reset() recycles the block without returning it to the allocator — so a
// rebuilt engine lands on cache-warm pages instead of fresh ones.
//
// Contract: allocations are uninitialized storage for trivially copyable,
// trivially destructible types only (C++20 implicit-lifetime rules make
// the reinterpret_cast well-formed for them); reset() invalidates every
// outstanding allocation at once.  Not thread-safe — one arena per worker,
// by design.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace mcfpga::common {

class ScratchArena {
 public:
  /// Uninitialized storage for `count` objects of T, aligned for T.  The
  /// pointer stays valid until the next reset() even if later allocations
  /// grow the arena (growth appends blocks; it never moves old ones).
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage is uninitialized and never destroyed");
    const std::size_t bytes = count * sizeof(T);
    return reinterpret_cast<T*>(raw_alloc(bytes, alignof(T)));
  }

  /// Invalidates every outstanding allocation and rewinds to the start of
  /// the arena.  If the previous cycle spilled into multiple blocks, they
  /// coalesce into one block of the total size, so steady state is a
  /// single reused allocation.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) {
        total += b.size;
      }
      blocks_.clear();
      blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total, 0});
    } else {
      for (Block& b : blocks_) {
        b.used = 0;
      }
    }
    active_ = 0;
  }

  /// Total bytes held across all blocks (reserved, not necessarily used).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) {
      total += b.size;
    }
    return total;
  }

  /// Bytes handed out since the last reset (including alignment padding).
  std::size_t used() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) {
      total += b.used;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::byte* raw_alloc(std::size_t bytes, std::size_t align) {
    for (; active_ < blocks_.size(); ++active_) {
      Block& b = blocks_[active_];
      const std::size_t at = (b.used + align - 1) & ~(align - 1);
      if (at + bytes <= b.size) {
        b.used = at + bytes;
        return b.data.get() + at;
      }
      // Too small: seal this block and move on (its storage stays valid).
    }
    // operator new[] aligns to max_align_t, which covers every scalar T.
    const std::size_t size = std::max(bytes, capacity() * 2 + 64);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, bytes});
    active_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
};

}  // namespace mcfpga::common
