// Small string/format helpers (GCC 12 lacks std::format, so benches and
// reports use these instead), plus the strict numeric token parsers every
// text format in the tree uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcfpga {

/// Fixed-precision double formatting ("3.142" for (pi, 3)).
std::string fmt_double(double value, int precision);
/// Percentage formatting: fmt_percent(0.4512, 1) == "45.1%".
std::string fmt_percent(double fraction, int precision = 1);
/// Thousands-separated integer: fmt_count(1234567) == "1,234,567".
std::string fmt_count(std::uint64_t value);
/// Left/right padding to a field width.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);
/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

// --- strict numeric token parsing -------------------------------------------
// Unlike istream extraction / std::sto*, these accept EXACTLY one complete
// numeric token: no leading whitespace, no leading '+', no trailing
// garbage ("12abc" is rejected, not parsed as 12), and overflow fails
// instead of wrapping or saturating silently.  Parsers that own line
// numbers (config/serialize, serve/protocol) call these and raise their
// own line-numbered InvalidArgument on false.

/// Decimal unsigned 64-bit: digits only.
bool try_parse_u64(std::string_view token, std::uint64_t& out);
/// Decimal signed 64-bit: optional leading '-', then digits.
bool try_parse_i64(std::string_view token, std::int64_t& out);
/// Finite decimal floating point (fixed or scientific); rejects
/// inf/nan/hex forms.
bool try_parse_double(std::string_view token, double& out);

}  // namespace mcfpga
