// Small string/format helpers (GCC 12 lacks std::format, so benches and
// reports use these instead).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcfpga {

/// Fixed-precision double formatting ("3.142" for (pi, 3)).
std::string fmt_double(double value, int precision);
/// Percentage formatting: fmt_percent(0.4512, 1) == "45.1%".
std::string fmt_percent(double fraction, int precision = 1);
/// Thousands-separated integer: fmt_count(1234567) == "1,234,567".
std::string fmt_count(std::uint64_t value);
/// Left/right padding to a field width.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);
/// Joins parts with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace mcfpga
