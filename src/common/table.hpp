// ASCII table printer used by every bench binary to regenerate the paper's
// tables in a uniform format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mcfpga {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);
  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders with column alignment (numbers right-aligned heuristically).
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace mcfpga
