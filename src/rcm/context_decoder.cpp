#include "rcm/context_decoder.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace mcfpga::rcm {

ContextDecoder::ContextDecoder(const config::Bitstream& bitstream,
                               ContextDecoderOptions options)
    : num_contexts_(bitstream.num_contexts()) {
  row_to_network_.reserve(bitstream.num_rows());
  std::unordered_map<BitVector, std::size_t, BitVectorHash> seen;

  for (const auto& row : bitstream.rows()) {
    if (options.share_identical_patterns) {
      const auto it = seen.find(row.pattern.values());
      if (it != seen.end()) {
        row_to_network_.push_back(it->second);
        ++shared_taps_;
        continue;
      }
    }
    networks_.push_back(synthesize_decoder(row.pattern));
    const std::size_t id = networks_.size() - 1;
    row_to_network_.push_back(id);
    if (options.share_identical_patterns) {
      seen.emplace(row.pattern.values(), id);
    }
  }
}

bool ContextDecoder::output(std::size_t row, std::size_t context) const {
  MCFPGA_REQUIRE(row < row_to_network_.size(), "row out of range");
  MCFPGA_REQUIRE(context < num_contexts_, "context out of range");
  return networks_[row_to_network_[row]].eval(context);
}

BitVector ContextDecoder::decode_plane(std::size_t context) const {
  BitVector plane(row_to_network_.size());
  for (std::size_t row = 0; row < row_to_network_.size(); ++row) {
    plane.set(row, output(row, context));
  }
  return plane;
}

std::size_t ContextDecoder::total_se_count() const {
  std::size_t n = 0;
  for (const auto& net : networks_) {
    n += net.se_count();
  }
  return n;
}

std::size_t ContextDecoder::total_input_controllers() const {
  std::size_t n = 0;
  for (const auto& net : networks_) {
    n += net.input_controller_count();
  }
  return n;
}

std::size_t ContextDecoder::total_programmable_switches() const {
  std::size_t n = 0;
  for (const auto& net : networks_) {
    n += net.programmable_switch_count();
  }
  return n;
}

std::size_t ContextDecoder::max_depth() const {
  std::size_t d = 0;
  for (const auto& net : networks_) {
    d = std::max(d, net.depth());
  }
  return d;
}

const DecoderNetwork& ContextDecoder::network_for_row(std::size_t row) const {
  MCFPGA_REQUIRE(row < row_to_network_.size(), "row out of range");
  return networks_[row_to_network_[row]];
}

bool ContextDecoder::matches(const config::Bitstream& bitstream) const {
  if (bitstream.num_rows() != row_to_network_.size() ||
      bitstream.num_contexts() != num_contexts_) {
    return false;
  }
  for (std::size_t c = 0; c < num_contexts_; ++c) {
    if (decode_plane(c) != bitstream.plane(c)) {
      return false;
    }
  }
  return true;
}

}  // namespace mcfpga::rcm
