#include "rcm/decoder_synth.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::rcm {

namespace {

// During recursion a sub-pattern is a truth table ("word") over the set of
// context-ID bits still undecided ("mask" of global bit indices).  Entry i of
// the word is the configuration-bit value when the remaining bits take the
// assignment i (local bit j of i = global bit bits[j], ascending order).
struct SubPattern {
  std::uint64_t mask = 0;  // set of remaining global ID bits
  std::uint64_t word = 0;  // 2^popcount(mask) truth-table entries

  std::size_t arity() const {
    return static_cast<std::size_t>(std::popcount(mask));
  }
  std::size_t entries() const { return std::size_t{1} << arity(); }
  std::uint64_t full() const {
    return entries() == 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << entries()) - 1;
  }
  bool operator==(const SubPattern&) const = default;
};

struct SubPatternHash {
  std::size_t operator()(const SubPattern& p) const {
    return std::hash<std::uint64_t>{}(p.mask * 0x9e3779b97f4a7c15ull ^ p.word);
  }
};

// Inserts bit `b` at local position `j` of index `i`.
std::uint64_t insert_bit(std::uint64_t i, std::size_t j, std::uint64_t b) {
  const std::uint64_t low = i & ((std::uint64_t{1} << j) - 1);
  const std::uint64_t high = i >> j;
  return low | (b << j) | (high << (j + 1));
}

// Global ID-bit index of local bit position j under `mask`.
std::size_t global_bit(std::uint64_t mask, std::size_t j) {
  std::size_t seen = 0;
  for (std::size_t g = 0; g < 64; ++g) {
    if (mask & (std::uint64_t{1} << g)) {
      if (seen == j) {
        return g;
      }
      ++seen;
    }
  }
  throw ProgrammingError("global_bit: local bit out of range");
}

// Truth-table word of "local bit j" itself over `m` local bits.
std::uint64_t bit_word(std::size_t m, std::size_t j) {
  std::uint64_t w = 0;
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << m); ++i) {
    if ((i >> j) & 1) {
      w |= std::uint64_t{1} << i;
    }
  }
  return w;
}

// Cofactors of `p` with respect to local bit j.
std::pair<SubPattern, SubPattern> cofactors(const SubPattern& p,
                                            std::size_t j) {
  const std::size_t g = global_bit(p.mask, j);
  SubPattern lo, hi;
  lo.mask = hi.mask = p.mask & ~(std::uint64_t{1} << g);
  const std::size_t m = p.arity();
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << (m - 1)); ++i) {
    if ((p.word >> insert_bit(i, j, 0)) & 1) {
      lo.word |= std::uint64_t{1} << i;
    }
    if ((p.word >> insert_bit(i, j, 1)) & 1) {
      hi.word |= std::uint64_t{1} << i;
    }
  }
  return {lo, hi};
}

// Leaf test: constant or a single remaining ID bit (possibly complemented).
// Returns the driver SE if the sub-pattern is a leaf.
std::optional<SwitchElement> leaf_se(const SubPattern& p) {
  if (p.word == 0) {
    return SwitchElement::constant(false);
  }
  if (p.word == p.full()) {
    return SwitchElement::constant(true);
  }
  const std::size_t m = p.arity();
  for (std::size_t j = 0; j < m; ++j) {
    const std::uint64_t bw = bit_word(m, j);
    if (p.word == bw) {
      return SwitchElement::id_bit(global_bit(p.mask, j), /*inverted=*/false);
    }
    if (p.word == (bw ^ p.full())) {
      return SwitchElement::id_bit(global_bit(p.mask, j), /*inverted=*/true);
    }
  }
  return std::nullopt;
}

using CostMemo = std::unordered_map<SubPattern, std::size_t, SubPatternHash>;

// Minimal SE count within the Shannon-tree template: leaves cost 1; a
// decomposition costs cost(lo) + cost(hi) + 2 gater SEs.
std::size_t cost_rec(const SubPattern& p, CostMemo& memo) {
  if (leaf_se(p)) {
    return 1;
  }
  const auto it = memo.find(p);
  if (it != memo.end()) {
    return it->second;
  }
  std::size_t best = SIZE_MAX;
  const std::size_t m = p.arity();
  for (std::size_t j = 0; j < m; ++j) {
    const auto [lo, hi] = cofactors(p, j);
    if (lo == hi) {
      continue;  // pattern does not depend on this bit; skipping is free
    }
    best = std::min(best, cost_rec(lo, memo) + cost_rec(hi, memo) + 2);
  }
  // A non-leaf pattern depends on at least two bits, so some split exists.
  MCFPGA_CHECK(best != SIZE_MAX, "no decomposition bit found");
  memo[p] = best;
  return best;
}

// Recursive network builder; returns the depth (pass-gate stages) of the
// subtree whose output drives `wire`.
std::size_t build_rec(const SubPattern& p, int wire, DecoderNetwork::BuildState& st,
                      CostMemo& memo);

}  // namespace

// Private builder access: the network exposes a BuildState so the free
// function synthesize_decoder can assemble it without friending internals
// into the anonymous namespace.
struct DecoderNetwork::BuildState {
  DecoderNetwork net;
  int new_wire() { return static_cast<int>(net.num_wires_++); }
};

namespace {

std::size_t build_rec(const SubPattern& p, int wire,
                      DecoderNetwork::BuildState& st, CostMemo& memo) {
  if (const auto leaf = leaf_se(p)) {
    DecoderSe d;
    d.se = *leaf;
    d.role = DecoderSe::Role::kDriver;
    d.out_wire = wire;
    st.net.add(d);
    return 0;
  }
  // Pick the decomposition bit the cost recursion would pick.
  std::size_t best_cost = SIZE_MAX;
  std::size_t best_bit = 0;
  const std::size_t m = p.arity();
  for (std::size_t j = 0; j < m; ++j) {
    const auto [lo, hi] = cofactors(p, j);
    if (lo == hi) {
      continue;
    }
    const std::size_t c = cost_rec(lo, memo) + cost_rec(hi, memo) + 2;
    if (c < best_cost) {
      best_cost = c;
      best_bit = j;
    }
  }
  MCFPGA_CHECK(best_cost != SIZE_MAX, "no decomposition bit found");

  const std::size_t gbit = global_bit(p.mask, best_bit);
  const auto [lo, hi] = cofactors(p, best_bit);
  const int lo_wire = st.new_wire();
  const int hi_wire = st.new_wire();
  const std::size_t lo_depth = build_rec(lo, lo_wire, st, memo);
  const std::size_t hi_depth = build_rec(hi, hi_wire, st, memo);

  DecoderSe gate_hi;
  gate_hi.se = SwitchElement::id_bit(gbit, /*inverted=*/false);
  gate_hi.role = DecoderSe::Role::kGater;
  gate_hi.in_wire = hi_wire;
  gate_hi.out_wire = wire;
  st.net.add(gate_hi);

  DecoderSe gate_lo;
  gate_lo.se = SwitchElement::id_bit(gbit, /*inverted=*/true);
  gate_lo.role = DecoderSe::Role::kGater;
  gate_lo.in_wire = lo_wire;
  gate_lo.out_wire = wire;
  st.net.add(gate_lo);

  return std::max(lo_depth, hi_depth) + 1;
}

SubPattern to_subpattern(const config::ContextPattern& pattern) {
  const std::size_t n = pattern.num_contexts();
  const std::size_t k = config::num_id_bits(n);
  SubPattern p;
  p.mask = (k == 64) ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
  p.word = pattern.values().to_word();
  return p;
}

}  // namespace

void DecoderNetwork::add(const DecoderSe& se) { ses_.push_back(se); }

std::size_t DecoderNetwork::input_controller_count() const {
  std::size_t n = 0;
  for (const auto& d : ses_) {
    if (d.se.uses_input_controller()) {
      ++n;
    }
  }
  return n;
}

std::size_t DecoderNetwork::programmable_switch_count() const {
  // One track crossing per gater input plus one per gater output merge.
  std::size_t n = 0;
  for (const auto& d : ses_) {
    if (d.role == DecoderSe::Role::kGater) {
      n += 2;
    }
  }
  return n;
}

bool DecoderNetwork::eval(std::size_t context) const {
  // Wire values resolved by fixpoint iteration; the network is a tree of
  // depth <= number of ID bits, so at most that many passes are needed.
  constexpr int kUnknown = -1;
  std::vector<int> value(num_wires_, kUnknown);

  for (std::size_t pass = 0; pass <= depth_ + 1; ++pass) {
    bool changed = false;
    for (const auto& d : ses_) {
      if (d.role == DecoderSe::Role::kDriver) {
        const int v = d.se.eval(context) ? 1 : 0;
        if (value[d.out_wire] == kUnknown) {
          value[d.out_wire] = v;
          changed = true;
        } else {
          MCFPGA_CHECK(value[d.out_wire] == v, "wire driven to two values");
        }
      } else if (d.se.eval(context)) {  // pass-gate on
        const int v = value[d.in_wire];
        if (v != kUnknown) {
          if (value[d.out_wire] == kUnknown) {
            value[d.out_wire] = v;
            changed = true;
          } else {
            MCFPGA_CHECK(value[d.out_wire] == v, "wire driven to two values");
          }
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  MCFPGA_CHECK(value[0] != kUnknown, "decoder output wire is floating");
  return value[0] == 1;
}

std::string DecoderNetwork::describe() const {
  std::ostringstream os;
  os << "DecoderNetwork: " << ses_.size() << " SEs, " << num_wires_
     << " wires, depth " << depth_ << "\n";
  for (std::size_t i = 0; i < ses_.size(); ++i) {
    const auto& d = ses_[i];
    os << "  SE" << i << " [" << d.se.describe() << "] ";
    if (d.role == DecoderSe::Role::kDriver) {
      os << "drives w" << d.out_wire;
    } else {
      os << "gates w" << d.in_wire << " -> w" << d.out_wire;
    }
    os << "\n";
  }
  return os.str();
}

DecoderNetwork synthesize_decoder(const config::ContextPattern& pattern) {
  CostMemo memo;
  DecoderNetwork::BuildState st;
  st.net.num_wires_ = 1;  // wire 0 = output
  st.net.depth_ = build_rec(to_subpattern(pattern), /*wire=*/0, st, memo);

  // Synthesis invariant: the network reproduces the pattern in every context.
  for (std::size_t c = 0; c < pattern.num_contexts(); ++c) {
    MCFPGA_CHECK(st.net.eval(c) == pattern.value_in(c),
                 "synthesized decoder disagrees with its pattern");
  }
  return std::move(st.net);
}

std::size_t decoder_se_cost(const config::ContextPattern& pattern) {
  CostMemo memo;
  return cost_rec(to_subpattern(pattern), memo);
}

}  // namespace mcfpga::rcm
