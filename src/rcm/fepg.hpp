// Behavioural model of the ferroelectric functional pass-gate (FePG,
// paper Fig. 15, after Kimura et al. 2004).
//
// An FePG merges storage and logic at the device level: two ferroelectric
// capacitors hold the configuration bits d1/d0 NON-VOLATILELY, and the
// cell computes the same function as a CMOS switch element:
//
//     G = d1 ? U : d0        (Fig. 15(c) truth table)
//
// The model captures the properties the paper's evaluation relies on:
//   * functional equivalence with the SE (exhaustively tested);
//   * non-volatility — state survives power_cycle();
//   * write endurance accounting — ferroelectric cells wear out, so the
//     model counts polarization reversals (a real concern the paper's
//     device citation discusses; useful for reconfiguration-rate studies);
//   * the word-line/bit-line write protocol surface (WL/BLW/RL of
//     Fig. 15(a)) reduced to its observable behaviour.
#pragma once

#include <cstddef>

#include "rcm/switch_element.hpp"

namespace mcfpga::rcm {

/// One non-volatile ferroelectric storage cell.
class FerroelectricCell {
 public:
  bool read() const { return polarization_; }
  /// Writing the opposite value reverses polarization (wears the film);
  /// rewriting the same value is free.
  void write(bool value);
  /// Polarization reversals so far (endurance metric).
  std::size_t reversals() const { return reversals_; }
  /// Power loss does not disturb a ferroelectric cell.
  void power_cycle() {}

 private:
  bool polarization_ = false;
  std::size_t reversals_ = 0;
};

/// Ferroelectric functional pass-gate: the FePG realization of an SE.
class FePassGate {
 public:
  FePassGate() = default;
  /// Programs both configuration cells (one write cycle each, WL+BLW).
  void program(bool d1, bool d0);
  /// Programs the FePG to realize the given switch element.
  static FePassGate from_switch_element(const SwitchElement& se);
  /// The equivalent CMOS SE programming (same G function).
  SwitchElement to_switch_element() const;

  bool d1() const { return d1_.read(); }
  bool d0() const { return d0_.read(); }
  const std::optional<IdBitRef>& u_source() const { return u_; }
  void set_u_source(std::optional<IdBitRef> u) { u_ = std::move(u); }

  /// G for an explicit U level (read cycle, RL asserted).
  bool eval_with_u(bool u_value) const;
  /// G in a context (U resolved through the ID-bit source).
  bool eval(std::size_t context) const;

  /// Total polarization reversals across both cells.
  std::size_t total_reversals() const {
    return d1_.reversals() + d0_.reversals();
  }
  /// Simulates a power cycle; configuration must survive.
  void power_cycle();

 private:
  FerroelectricCell d1_;
  FerroelectricCell d0_;
  std::optional<IdBitRef> u_;
};

/// Proves a FePG behaves identically to `se` in every context of an
/// n-context fabric (the Fig. 15(c) == Fig. 8 equivalence).
bool fepg_matches_se(const FePassGate& gate, const SwitchElement& se,
                     std::size_t num_contexts);

}  // namespace mcfpga::rcm
