// Context decoder: the proposed fabric's replacement for per-bit context
// memory planes (paper Sec. 3).
//
// Given a bitstream (one context pattern per configuration bit), the
// decoder synthesizes an SE network per row and can then regenerate any
// context's configuration plane from the context-ID bits alone.  An
// optional sharing mode merges rows with identical patterns into one
// network (exploiting the paper's inter-row redundancy, Table 1's G2 == G4):
// shared rows then cost only a routing pass-gate "tap" instead of a full
// network.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvector.hpp"
#include "config/bitstream.hpp"
#include "rcm/decoder_synth.hpp"

namespace mcfpga::rcm {

struct ContextDecoderOptions {
  /// Merge rows with identical context patterns into one SE network.
  bool share_identical_patterns = false;
};

class ContextDecoder {
 public:
  explicit ContextDecoder(const config::Bitstream& bitstream,
                          ContextDecoderOptions options = {});

  std::size_t num_rows() const { return row_to_network_.size(); }
  std::size_t num_contexts() const { return num_contexts_; }
  std::size_t num_networks() const { return networks_.size(); }

  /// The regenerated configuration bit of `row` in `context`.
  bool output(std::size_t row, std::size_t context) const;
  /// The full regenerated configuration plane of one context.
  BitVector decode_plane(std::size_t context) const;

  /// Resource totals (the currency of the Sec. 5 area comparison).
  std::size_t total_se_count() const;
  std::size_t total_input_controllers() const;
  std::size_t total_programmable_switches() const;
  /// Rows served by a shared network (each costs one extra pass-gate tap).
  std::size_t shared_row_taps() const { return shared_taps_; }
  /// Worst pass-gate depth over all networks (decoder delay in SE units).
  std::size_t max_depth() const;

  const DecoderNetwork& network_for_row(std::size_t row) const;

  /// Equivalence oracle: true iff every regenerated plane equals the
  /// bitstream's plane (checked bit-for-bit across all contexts).
  bool matches(const config::Bitstream& bitstream) const;

 private:
  std::size_t num_contexts_;
  std::vector<DecoderNetwork> networks_;
  std::vector<std::size_t> row_to_network_;
  std::size_t shared_taps_ = 0;
};

}  // namespace mcfpga::rcm
