#include "rcm/grid.hpp"

#include "common/error.hpp"

namespace mcfpga::rcm {

RcmGrid::RcmGrid(GridSpec spec) : spec_(spec) {
  MCFPGA_REQUIRE(spec.rows > 0 && spec.cols > 0,
                 "RCM grid must have at least one SE site");
}

std::size_t RcmGrid::place(DecoderNetwork network, std::string name) {
  const std::size_t need_se = network.se_count();
  const std::size_t need_x = network.programmable_switch_count();
  const std::size_t need_c = network.input_controller_count();

  if (se_used_ + need_se > se_capacity()) {
    throw FlowError("RCM grid '" + name + "': out of SE sites (need " +
                    std::to_string(need_se) + ", free " +
                    std::to_string(se_free()) + ")");
  }
  if (crossings_used_ + need_x > spec_.derived_crossings()) {
    throw FlowError("RCM grid '" + name + "': out of track crossings");
  }
  if (controllers_used_ + need_c > spec_.derived_input_controllers()) {
    throw FlowError("RCM grid '" + name + "': out of input controllers");
  }

  Instance inst;
  inst.name = std::move(name);
  inst.sites.reserve(need_se);
  for (std::size_t i = 0; i < need_se; ++i) {
    inst.sites.push_back(se_used_ + i);  // sites handed out row-major
  }
  inst.network = std::move(network);

  se_used_ += need_se;
  crossings_used_ += need_x;
  controllers_used_ += need_c;
  instances_.push_back(std::move(inst));
  return instances_.size() - 1;
}

const std::string& RcmGrid::instance_name(std::size_t id) const {
  MCFPGA_REQUIRE(id < instances_.size(), "instance id out of range");
  return instances_[id].name;
}

const DecoderNetwork& RcmGrid::instance_network(std::size_t id) const {
  MCFPGA_REQUIRE(id < instances_.size(), "instance id out of range");
  return instances_[id].network;
}

const std::vector<std::size_t>& RcmGrid::instance_sites(std::size_t id) const {
  MCFPGA_REQUIRE(id < instances_.size(), "instance id out of range");
  return instances_[id].sites;
}

bool RcmGrid::instance_output(std::size_t id, std::size_t context) const {
  return instance_network(id).eval(context);
}

double RcmGrid::utilization() const {
  return se_capacity() == 0
             ? 0.0
             : static_cast<double>(se_used_) / static_cast<double>(se_capacity());
}

}  // namespace mcfpga::rcm
