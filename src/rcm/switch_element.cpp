#include "rcm/switch_element.hpp"

#include "common/error.hpp"

namespace mcfpga::rcm {

SwitchElement SwitchElement::constant(bool value) {
  SwitchElement se;
  se.d1 = false;
  se.d0 = value;
  return se;
}

SwitchElement SwitchElement::id_bit(std::size_t bit, bool inverted) {
  SwitchElement se;
  se.d1 = true;
  se.u = IdBitRef{bit, inverted};
  return se;
}

bool SwitchElement::eval(std::size_t context) const {
  if (!d1) {
    return d0;
  }
  MCFPGA_CHECK(u.has_value(),
               "SE with D1=1 evaluated without a variable-input source");
  return u->value_in(context);
}

std::string SwitchElement::describe() const {
  if (!d1) {
    return d0 ? "G=1" : "G=0";
  }
  return "G=" + (u ? u->name() : std::string("<floating U>"));
}

}  // namespace mcfpga::rcm
