// Physical model of a reconfigurable-context-memory block (paper Fig. 7):
// a rows x cols array of switch-element sites, stitched by programmable
// switches (P) at track crossings, with input controllers (C) on the
// context-ID inputs.
//
// The grid provides capacity accounting and placement for synthesized
// decoder networks: each DecoderSe occupies one SE site, each gater
// consumes track crossings, and each complemented ID input consumes an
// input controller.  Placement fails (throws FlowError) when the block is
// out of SE sites, crossings, or controllers — this is how the CAD flow
// discovers that a switch block's RCM is over capacity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rcm/decoder_synth.hpp"

namespace mcfpga::rcm {

struct GridSpec {
  std::size_t rows = 8;
  std::size_t cols = 8;
  /// Programmable track crossings available (Fig. 7b).  The default models
  /// one crossing per SE site boundary.
  std::size_t crossings = 0;  // 0 -> derived as (rows+1)*(cols+1)
  /// Input controllers available (Fig. 7c).  The default models one per
  /// column, matching the figure's top-edge controller row.
  std::size_t input_controllers = 0;  // 0 -> derived as cols

  std::size_t derived_crossings() const {
    return crossings != 0 ? crossings : (rows + 1) * (cols + 1);
  }
  std::size_t derived_input_controllers() const {
    return input_controllers != 0 ? input_controllers : cols;
  }
};

class RcmGrid {
 public:
  explicit RcmGrid(GridSpec spec);

  std::size_t se_capacity() const { return spec_.rows * spec_.cols; }
  std::size_t se_used() const { return se_used_; }
  std::size_t se_free() const { return se_capacity() - se_used_; }
  std::size_t crossings_used() const { return crossings_used_; }
  std::size_t input_controllers_used() const { return controllers_used_; }
  const GridSpec& spec() const { return spec_; }

  /// Places a decoder network into free SE sites.  Returns an instance
  /// handle for functional queries.  Throws FlowError when any resource
  /// (SE sites, crossings, controllers) would be exceeded.
  std::size_t place(DecoderNetwork network, std::string name);

  std::size_t num_instances() const { return instances_.size(); }
  const std::string& instance_name(std::size_t id) const;
  const DecoderNetwork& instance_network(std::size_t id) const;
  /// SE sites (row-major indices) assigned to the instance.
  const std::vector<std::size_t>& instance_sites(std::size_t id) const;

  /// Generated configuration bit of instance `id` in `context`.
  bool instance_output(std::size_t id, std::size_t context) const;

  /// Fraction of SE sites in use, for utilization reports.
  double utilization() const;

 private:
  struct Instance {
    std::string name;
    DecoderNetwork network;
    std::vector<std::size_t> sites;
  };

  GridSpec spec_;
  std::size_t se_used_ = 0;
  std::size_t crossings_used_ = 0;
  std::size_t controllers_used_ = 0;
  std::vector<Instance> instances_;
};

}  // namespace mcfpga::rcm
