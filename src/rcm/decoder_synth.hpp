// Decoder synthesis: compile a per-configuration-bit context pattern into a
// network of switch elements (paper Sec. 3, Fig. 9).
//
// Constant and single-ID-bit patterns compile to one SE.  Complex patterns
// are Shannon-decomposed on a context-ID bit Sb:
//
//     G = Sb ? G_high : G_low
//
// The two cofactors are synthesized recursively onto internal tracks, and
// two "gater" SEs (programmed G = Sb and G = ~Sb) connect exactly one
// cofactor track to the output wire in every context.  For 4 contexts this
// yields the paper's 4-SE structure for (C3,C2,C1,C0) = (1,0,0,0): two
// leaf drivers + two gaters (Fig. 9).
//
// The decomposition bit is chosen by exhaustive recursion with memoization,
// so the synthesized SE count is minimal for this template (drivers at the
// leaves, a 2-SE gate pair per decomposition level).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "config/pattern.hpp"
#include "rcm/switch_element.hpp"

namespace mcfpga::rcm {

/// One SE instance in a synthesized decoder network.
struct DecoderSe {
  SwitchElement se;
  /// Role: a driver's G drives out_wire directly; a gater's G controls a
  /// pass-gate connecting in_wire -> out_wire.
  enum class Role { kDriver, kGater };
  Role role = Role::kDriver;
  int in_wire = -1;  ///< Only for kGater.
  int out_wire = 0;
};

/// A synthesized SE network computing one configuration bit from the
/// context-ID bits.
class DecoderNetwork {
 public:
  /// Number of switch elements used (the paper's area currency).
  std::size_t se_count() const { return ses_.size(); }
  /// Number of input controllers used (complemented U inputs).
  std::size_t input_controller_count() const;
  /// Programmable-switch (track-crossing) count: one per gater input
  /// connection, the track-stitching cost inside the RCM (Fig. 7b).
  std::size_t programmable_switch_count() const;
  /// Pass-gate stages from any driver to the output wire (0 when the output
  /// is driven directly by a single SE).  This is the decoder's delay in SE
  /// units.
  std::size_t depth() const { return depth_; }
  /// Total wires (output wire + internal cofactor tracks).
  std::size_t wire_count() const { return num_wires_; }

  const std::vector<DecoderSe>& elements() const { return ses_; }

  /// The configuration bit this network generates in `context`.
  /// Throws ProgrammingError if the output wire is floating or multiply
  /// driven in that context (a synthesis-invariant violation).
  bool eval(std::size_t context) const;

  /// Multi-line structural dump for debugging / the Fig. 9 bench.
  std::string describe() const;

  /// Internal builder state used by synthesize_decoder (defined in the .cpp).
  struct BuildState;
  /// Appends one SE instance (builder use only).
  void add(const DecoderSe& se);

 private:
  friend DecoderNetwork synthesize_decoder(const config::ContextPattern&);
  std::vector<DecoderSe> ses_;
  std::size_t num_wires_ = 1;  // wire 0 is the output
  std::size_t depth_ = 0;
};

/// Synthesizes the minimal SE network (within the Shannon-tree template)
/// for `pattern`.
DecoderNetwork synthesize_decoder(const config::ContextPattern& pattern);

/// SE count that synthesize_decoder would use, without building the network
/// (fast path for area sweeps over millions of rows).
std::size_t decoder_se_cost(const config::ContextPattern& pattern);

}  // namespace mcfpga::rcm
