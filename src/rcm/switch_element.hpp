// Switch element (SE) — the atom of the reconfigurable context memory
// (paper Fig. 8; FePG device realization in Fig. 15).
//
// An SE holds two memory bits (D1, D0) and a 2:1 multiplexer computing
//
//     G = D1 ? U : D0
//
// where U is the SE's variable input.  G either drives a wire directly
// (decoder "driver" role) or controls the SE's routing pass-gate
// ("gater" role: the pass-gate connects two tracks when G = 1).
//
//   D1 = 0          -> G is the constant D0   (Fig. 3 patterns, 1 SE)
//   D1 = 1, U = Sj  -> G mirrors ID bit Sj    (Fig. 4 patterns, 1 SE;
//                       the complement uses an input controller, Fig. 7c)
//   otherwise       -> compose several SEs    (Fig. 5 patterns, Fig. 9)
#pragma once

#include <optional>
#include <string>

#include "config/context_id.hpp"

namespace mcfpga::rcm {

/// Reference to a context-ID bit, optionally complemented by an input
/// controller (Fig. 7c).
struct IdBitRef {
  std::size_t bit = 0;
  bool inverted = false;

  bool value_in(std::size_t context) const {
    return config::id_bit_value(context, bit) != inverted;
  }
  std::string name() const { return config::id_bit_name(bit, inverted); }
  bool operator==(const IdBitRef&) const = default;
};

/// Programming of one switch element.
struct SwitchElement {
  bool d1 = false;
  bool d0 = false;
  /// Variable-input source; only sampled when d1 = 1.  nullopt models a
  /// floating U input (legal when d1 = 0).
  std::optional<IdBitRef> u;

  /// Constant-G programming (Fig. 3 row): G = value in every context.
  static SwitchElement constant(bool value);
  /// ID-bit programming (Fig. 4 row): G = Sj or ~Sj.
  static SwitchElement id_bit(std::size_t bit, bool inverted);

  /// G given an explicit U value.
  bool eval_with_u(bool u_value) const { return d1 ? u_value : d0; }
  /// G in a given context (U resolved through the IdBitRef).
  bool eval(std::size_t context) const;

  /// True if this SE needs an input controller (complemented U).
  bool uses_input_controller() const { return d1 && u && u->inverted; }

  /// "G=0", "G=S1", "G=~S0" ... for reports.
  std::string describe() const;
};

}  // namespace mcfpga::rcm
