#include "rcm/fepg.hpp"

#include "common/error.hpp"

namespace mcfpga::rcm {

void FerroelectricCell::write(bool value) {
  if (polarization_ != value) {
    polarization_ = value;
    ++reversals_;
  }
}

void FePassGate::program(bool d1, bool d0) {
  d1_.write(d1);
  d0_.write(d0);
}

FePassGate FePassGate::from_switch_element(const SwitchElement& se) {
  FePassGate gate;
  gate.program(se.d1, se.d0);
  gate.set_u_source(se.u);
  return gate;
}

SwitchElement FePassGate::to_switch_element() const {
  SwitchElement se;
  se.d1 = d1_.read();
  se.d0 = d0_.read();
  se.u = u_;
  return se;
}

bool FePassGate::eval_with_u(bool u_value) const {
  return d1_.read() ? u_value : d0_.read();
}

bool FePassGate::eval(std::size_t context) const {
  if (!d1_.read()) {
    return d0_.read();
  }
  MCFPGA_CHECK(u_.has_value(),
               "FePG with d1=1 evaluated without a variable-input source");
  return u_->value_in(context);
}

void FePassGate::power_cycle() {
  d1_.power_cycle();
  d0_.power_cycle();
  // The U routing is metal, unaffected by power state.
}

bool fepg_matches_se(const FePassGate& gate, const SwitchElement& se,
                     std::size_t num_contexts) {
  for (std::size_t c = 0; c < num_contexts; ++c) {
    // Compare under resolved contexts when a U source exists; otherwise
    // compare under both U levels.
    if (se.d1 && se.u.has_value()) {
      if (gate.eval(c) != se.eval(c)) {
        return false;
      }
    } else {
      for (const bool u : {false, true}) {
        if (gate.eval_with_u(u) != se.eval_with_u(u)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace mcfpga::rcm
