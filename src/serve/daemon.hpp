// Compile-as-a-service daemon: a long-running CompileDaemon owns the
// shared immutable compile state — the cache::CompileService with its
// content-addressed FlowCache / ArtifactCache — and serves compile jobs
// submitted as wire frames (serve/protocol.hpp) on a common/parallel.hpp
// WorkerPool.
//
// Each job is one Session driving the serve/session.hpp FSM.  submit()
// decodes the request synchronously (malformed frames throw, nothing is
// queued), fires Submit, and enqueues the job.  A worker fires Start,
// compiles through CompileService::compile — or compile_incremental when
// the request names a completed base job — with a StageObserver that
//   - checks the session's cancel flag and deadline budget at every stage
//     boundary (cooperative: a job is never killed mid-mutation), and
//   - streams one encoded progress frame per finished stage (Progress).
// Completion fires Finish / Cancel / Deadline / Fail; the reply frame is
// appended after every progress frame, so a session's frame stream reads
// progress*, reply.
//
// Repeat jobs hit the shared FlowCache (bit-identical artifact replay),
// and recently completed designs are retained — bounded — so later
// requests can delta-recompile from them by name.  Determinism contract:
// the reply bitstream for a given request is byte-identical to a direct
// CompileService::compile of the same inputs, for any worker count and
// any mix of concurrent sessions (tests/test_serve.cpp enforces it).
//
// In-process by design: ServeClient (serve/client.hpp) talks to the
// daemon through encoded frames, exercising the whole wire path without
// real sockets.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cache/incremental.hpp"
#include "common/parallel.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace mcfpga::serve {

struct DaemonOptions {
  /// Worker threads compiling jobs (>= 1; jobs queue beyond this).
  std::size_t workers = 2;
  /// Passed through to the shared cache::CompileService.
  cache::IncrementalOptions service{};
  /// Completed designs retained (FIFO) as delta-recompile bases.
  std::size_t max_completed = 8;
};

/// One submitted job.  The daemon's mutex guards fsm / stream /
/// deadline_hit; `cancel` is an atomic so the stage observer reads it
/// without taking the lock on the hot path.
struct Session {
  std::uint64_t id = 0;
  CompileRequest request;
  /// Parsed at submit time, so malformed netlists never queue.
  netlist::MultiContextNetlist netlist;
  SessionFsm fsm;
  std::atomic<bool> cancel{false};
  bool deadline_hit = false;  ///< Observer saw the budget expire.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Encoded wire frames in stream order: progress*, then the reply.
  std::vector<std::string> stream;
  bool reply_ready = false;
};

class CompileDaemon {
 public:
  explicit CompileDaemon(DaemonOptions options = {});
  ~CompileDaemon();  // stop()s: cancels queued work, drains running work

  CompileDaemon(const CompileDaemon&) = delete;
  CompileDaemon& operator=(const CompileDaemon&) = delete;

  /// Decodes one request frame and queues the job.  Throws
  /// InvalidArgument (with a payload line number) on malformed frames —
  /// nothing is queued for those.  Returns the job id.
  std::uint64_t submit_frame(const std::string& frame);

  /// Requests cancellation: a Queued job is finalized immediately; a
  /// Running/Streaming job stops at its next stage boundary.  Returns
  /// false when the job is unknown or already terminal (the FSM rejects
  /// the event) — a cancel/finish race, not an error.
  bool cancel(std::uint64_t job_id);

  /// Blocks until the job is terminal; returns its frame stream
  /// (progress frames in stage order, then exactly one reply frame).
  std::vector<std::string> wait(std::uint64_t job_id);

  SessionState state(std::uint64_t job_id) const;

  struct Stats {
    std::size_t submitted = 0;
    std::size_t done = 0;
    std::size_t cancelled = 0;
    std::size_t failed = 0;
  };
  Stats stats() const;

  /// Cancels queued jobs, flags running ones, and drains the pool; the
  /// daemon keeps serving wait()/state() afterwards but rejects submits.
  void stop();

  /// The shared compile service (test access: cache counters, direct
  /// compiles for the determinism oracle).
  cache::CompileService& service() { return service_; }

 private:
  void run_job(const std::shared_ptr<Session>& session);
  void finalize(const std::shared_ptr<Session>& session,
                SessionEvent event, CompileReply reply);
  /// Requires mu_ held: fires the terminal event, appends the reply
  /// frame, bumps stats, wakes waiters.  Idempotent under races.
  void finalize_locked(const std::shared_ptr<Session>& session,
                       SessionEvent event, const CompileReply& reply);
  std::shared_ptr<const cache::Compiled> find_completed(
      const std::string& job) const;
  void retain_completed(const std::string& job, cache::Compiled design);

  friend class JobObserver;

  DaemonOptions options_;
  cache::CompileService service_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  /// Recently completed designs, FIFO-bounded by max_completed.
  std::deque<std::pair<std::string, std::shared_ptr<const cache::Compiled>>>
      completed_;
  std::uint64_t next_id_ = 1;
  Stats stats_;
  bool stopped_ = false;

  /// Last: its destructor drains tasks that touch everything above.
  WorkerPool pool_;
};

}  // namespace mcfpga::serve
