// Wire protocol of the compile daemon (serve/daemon.hpp).
//
// Every message is one length-prefixed binary frame:
//
//   offset 0  4 bytes   magic "MCFS"
//   offset 4  1 byte    protocol version (1)
//   offset 5  1 byte    frame type (FrameType)
//   offset 6  4 bytes   payload length, unsigned little-endian
//   offset 10 N bytes   payload
//
// The payload itself is line-oriented text in the spirit of
// config/serialize.hpp's canonical formats, and embeds them verbatim: a
// request carries the v1 netlist text as a counted byte blob, a reply
// carries the v1 bitstream text the same way.  Counted blobs rather than
// sentinel lines keep the framing robust against payload content — the
// netlist/bitstream text never needs escaping.
//
//   mcfpga-request v1              mcfpga-reply v1
//   job <name>                     job <name>
//   deadline_ms <u64>              status done|cancelled|failed
//   base <name|->                  error_bytes <n>
//   fabric <w> <h> <contexts>      <n bytes>
//          <channel> <double>      hits <u64>
//          <conventional|rcm>      misses <u64>
//   options <seed> <closure>       delta <0|1>
//           <auto_size> <ptiming>  fallback_bytes <n>
//           <rtiming>              <n bytes>
//           <binary|bucket>        critical_path <double>
//           <off|negotiated|       bitstream_bytes <n>
//            interleaved>          <n bytes>
//           <pthreads> <rthreads>  end
//   netlist_bytes <n>
//   <n bytes>                      mcfpga-progress v1
//   end                            job <name>
//                                  stage <name>
//                                  seconds <double>
//                                  end
//
// All numeric fields go through common/strings' strict parsers, so
// "12abc", leading '+', and overflowed values are rejected with the
// payload line number — the same hardening the canonical text formats got.
// The options line carries the serving subset of core::CompileOptions
// (the knobs the determinism contract is tested over); fields not on the
// wire keep their defaults on the daemon side.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "arch/fabric_spec.hpp"
#include "core/flow.hpp"

namespace mcfpga::serve {

inline constexpr char kFrameMagic[4] = {'M', 'C', 'F', 'S'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 10;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kProgress = 3,
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Prepends the 10-byte header.  Throws InvalidArgument when the payload
/// exceeds the u32 length field.
std::string encode_frame(FrameType type, const std::string& payload);

/// Reads exactly one frame; throws InvalidArgument on bad magic, version,
/// type, or a payload shorter than its declared length.
Frame decode_frame(std::istream& is);
Frame frame_from_bytes(const std::string& bytes);

/// One compile job as submitted over the wire.
struct CompileRequest {
  std::string job;                ///< Non-empty, whitespace-free.
  std::uint64_t deadline_ms = 0;  ///< Stage-boundary budget; 0 = none.
  /// Completed job to delta-recompile from (CompileService::
  /// compile_incremental); empty = full (cached) compile.
  std::string base_job;
  arch::FabricSpec fabric;
  core::CompileOptions options;
  std::string netlist_text;  ///< config/serialize.hpp canonical v1 text.
};

struct CompileReply {
  enum class Status : std::uint8_t { kDone, kCancelled, kFailed };
  std::string job;
  Status status = Status::kFailed;
  std::string error;  ///< kFailed only: what() of the terminating error.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool delta = false;           ///< Served by the delta-recompile path.
  std::string delta_fallback;   ///< Why the delta path bailed, if it did.
  double critical_path = 0.0;   ///< Worst over contexts (SE units).
  std::string bitstream_text;   ///< Canonical v1 text; kDone only.
};

/// One per-stage timing tick, streamed while a job runs.
struct ProgressEvent {
  std::string job;
  std::string stage;
  double seconds = 0.0;
};

const char* to_string(CompileReply::Status status);

/// Payload codecs.  Encoders validate names; decoders throw
/// InvalidArgument with a payload line number on any malformed input.
std::string encode_request(const CompileRequest& request);
CompileRequest decode_request(const std::string& payload);
std::string encode_reply(const CompileReply& reply);
CompileReply decode_reply(const std::string& payload);
std::string encode_progress(const ProgressEvent& event);
ProgressEvent decode_progress(const std::string& payload);

/// Frame-level conveniences (encode payload + wrap / unwrap + decode).
std::string request_frame(const CompileRequest& request);
std::string reply_frame(const CompileReply& reply);
std::string progress_frame(const ProgressEvent& event);

}  // namespace mcfpga::serve
