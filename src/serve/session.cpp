#include "serve/session.hpp"

namespace mcfpga::serve {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kIdle:
      return "idle";
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kStreaming:
      return "streaming";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kFailed:
      return "failed";
  }
  return "?";
}

const char* to_string(SessionEvent event) {
  switch (event) {
    case SessionEvent::kSubmit:
      return "submit";
    case SessionEvent::kStart:
      return "start";
    case SessionEvent::kProgress:
      return "progress";
    case SessionEvent::kFinish:
      return "finish";
    case SessionEvent::kCancel:
      return "cancel";
    case SessionEvent::kDeadline:
      return "deadline";
    case SessionEvent::kFail:
      return "fail";
  }
  return "?";
}

FsmResult SessionFsm::handle(SessionEvent event) {
  switch (state_) {
    case SessionState::kIdle:
      return handle_idle(event);
    case SessionState::kQueued:
      return handle_queued(event);
    case SessionState::kRunning:
      return handle_running(event);
    case SessionState::kStreaming:
      return handle_streaming(event);
    case SessionState::kDone:
    case SessionState::kCancelled:
    case SessionState::kFailed:
      return handle_terminal(event);
  }
  return reject(event);
}

FsmResult SessionFsm::handle_idle(SessionEvent event) {
  if (event == SessionEvent::kSubmit) {
    return accept(SessionState::kQueued);
  }
  return reject(event);
}

FsmResult SessionFsm::handle_queued(SessionEvent event) {
  switch (event) {
    case SessionEvent::kStart:
      return accept(SessionState::kRunning);
    case SessionEvent::kCancel:
      return accept(SessionState::kCancelled);
    // A job can miss its whole budget while queued behind other jobs, and
    // a decode/setup error can fail it before any worker touches it.
    case SessionEvent::kDeadline:
    case SessionEvent::kFail:
      return accept(SessionState::kFailed);
    default:
      return reject(event);
  }
}

FsmResult SessionFsm::handle_running(SessionEvent event) {
  switch (event) {
    case SessionEvent::kProgress:
      return accept(SessionState::kStreaming);
    case SessionEvent::kFinish:
      return accept(SessionState::kDone);
    case SessionEvent::kCancel:
      return accept(SessionState::kCancelled);
    case SessionEvent::kDeadline:
    case SessionEvent::kFail:
      return accept(SessionState::kFailed);
    default:
      return reject(event);
  }
}

FsmResult SessionFsm::handle_streaming(SessionEvent event) {
  if (event == SessionEvent::kProgress) {
    return accept(SessionState::kStreaming);  // self-loop per stage tick
  }
  return handle_running(event);  // otherwise same policy as Running
}

FsmResult SessionFsm::handle_terminal(SessionEvent event) {
  return reject(event);
}

FsmResult SessionFsm::accept(SessionState to) {
  FsmResult r;
  r.accepted = true;
  r.from = state_;
  r.to = to;
  state_ = to;
  return r;
}

FsmResult SessionFsm::reject(SessionEvent event) const {
  FsmResult r;
  r.accepted = false;
  r.from = state_;
  r.to = state_;
  r.reject_reason = std::string("event '") + to_string(event) +
                    "' rejected in state '" + to_string(state_) + "'";
  return r;
}

}  // namespace mcfpga::serve
