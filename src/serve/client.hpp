// In-process client of the compile daemon.
//
// ServeClient speaks the real wire protocol — it encodes every request
// into a length-prefixed frame and decodes every progress/reply frame the
// daemon streamed back — but hands the bytes to the daemon directly
// instead of over a socket.  That exercises the complete encode -> frame
// -> decode path (including the strict numeric parsing on both sides)
// without any networking, which keeps the protocol tests hermetic and
// fast; a real transport would only move the same byte strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

namespace mcfpga::serve {

class ServeClient {
 public:
  explicit ServeClient(CompileDaemon& daemon) : daemon_(daemon) {}

  /// Convenience: builds a CompileRequest with the netlist serialized to
  /// its canonical text (config/serialize.hpp).
  static CompileRequest make_request(
      const std::string& job, const netlist::MultiContextNetlist& netlist,
      const arch::FabricSpec& fabric,
      const core::CompileOptions& options = {},
      std::uint64_t deadline_ms = 0, const std::string& base_job = {});

  /// Encodes + submits; throws InvalidArgument on anything the daemon
  /// rejects at submit time (malformed request, stopped daemon).
  std::uint64_t submit(const CompileRequest& request);

  struct Outcome {
    CompileReply reply;
    std::vector<ProgressEvent> progress;  ///< In stage-completion order.
  };

  /// Blocks until the job is terminal, then decodes its frame stream.
  Outcome wait(std::uint64_t job_id);

  bool cancel(std::uint64_t job_id) { return daemon_.cancel(job_id); }

 private:
  CompileDaemon& daemon_;
};

}  // namespace mcfpga::serve
