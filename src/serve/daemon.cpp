#include "serve/daemon.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "config/serialize.hpp"

namespace mcfpga::serve {
namespace {

using SteadyClock = std::chrono::steady_clock;

CompileReply base_reply(const Session& session) {
  CompileReply reply;
  reply.job = session.request.job;
  return reply;
}

}  // namespace

/// The daemon's core::StageObserver: one per in-flight job, stack-local
/// to the worker running it.  on_stage_start is the cooperative
/// cancellation / deadline point; on_stage_done streams a progress frame.
class JobObserver final : public core::StageObserver {
 public:
  JobObserver(CompileDaemon& daemon, std::shared_ptr<Session> session)
      : daemon_(daemon), session_(std::move(session)) {}

  bool on_stage_start(const char* /*stage*/) override {
    if (session_->cancel.load(std::memory_order_relaxed)) {
      return false;
    }
    if (session_->has_deadline &&
        SteadyClock::now() > session_->deadline) {
      const std::lock_guard<std::mutex> lock(daemon_.mu_);
      session_->deadline_hit = true;
      return false;
    }
    return true;
  }

  void on_stage_done(const char* stage, double seconds) override {
    ProgressEvent event;
    event.job = session_->request.job;
    event.stage = stage;
    event.seconds = seconds;
    const std::string frame = progress_frame(event);
    const std::lock_guard<std::mutex> lock(daemon_.mu_);
    // Running -> Streaming on the first tick, Streaming self-loop after;
    // a rejected event (the job was finalized under us) drops the frame.
    if (session_->fsm.handle(SessionEvent::kProgress).accepted) {
      session_->stream.push_back(frame);
    }
  }

 private:
  CompileDaemon& daemon_;
  std::shared_ptr<Session> session_;
};

CompileDaemon::CompileDaemon(DaemonOptions options)
    : options_(options),
      service_(options.service),
      pool_(std::max<std::size_t>(1, options.workers)) {}

CompileDaemon::~CompileDaemon() { stop(); }

std::uint64_t CompileDaemon::submit_frame(const std::string& frame) {
  const Frame decoded = frame_from_bytes(frame);
  MCFPGA_REQUIRE(decoded.type == FrameType::kRequest,
                 "submit_frame: frame is not a request");
  auto session = std::make_shared<Session>();
  session->request = decode_request(decoded.payload);
  // Parse the netlist up front: malformed jobs are rejected at submit
  // time with the serializer's line-numbered error, never queued.
  session->netlist = config::netlist_from_text(session->request.netlist_text);
  if (session->request.deadline_ms != 0) {
    session->has_deadline = true;
    session->deadline = SteadyClock::now() +
                        std::chrono::milliseconds(session->request.deadline_ms);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  MCFPGA_REQUIRE(!stopped_, "submit_frame on a stopped daemon");
  session->id = next_id_++;
  session->fsm.handle(SessionEvent::kSubmit);
  sessions_.emplace(session->id, session);
  ++stats_.submitted;
  // Safe under mu_: the pool's lock is only ever taken after mu_ (here)
  // or with no locks held (workers run tasks unlocked).
  pool_.submit([this, session] { run_job(session); });
  return session->id;
}

bool CompileDaemon::cancel(std::uint64_t job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(job_id);
  if (it == sessions_.end()) {
    return false;
  }
  const std::shared_ptr<Session>& session = it->second;
  switch (session->fsm.state()) {
    case SessionState::kQueued: {
      // No worker owns it yet: finalize here; run_job sees the terminal
      // FSM when the pool eventually pops the task and returns.
      session->cancel.store(true, std::memory_order_relaxed);
      CompileReply reply = base_reply(*session);
      reply.status = CompileReply::Status::kCancelled;
      finalize_locked(session, SessionEvent::kCancel, reply);
      return true;
    }
    case SessionState::kRunning:
    case SessionState::kStreaming:
      // The worker observes the flag at its next stage boundary and
      // finalizes with Cancel itself.
      session->cancel.store(true, std::memory_order_relaxed);
      return true;
    default:
      return false;  // terminal or never started: nothing to cancel
  }
}

std::vector<std::string> CompileDaemon::wait(std::uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = sessions_.find(job_id);
  MCFPGA_REQUIRE(it != sessions_.end(),
                 "wait: unknown job " + std::to_string(job_id));
  const std::shared_ptr<Session> session = it->second;
  cv_.wait(lock, [&] { return session->reply_ready; });
  return session->stream;
}

SessionState CompileDaemon::state(std::uint64_t job_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(job_id);
  MCFPGA_REQUIRE(it != sessions_.end(),
                 "state: unknown job " + std::to_string(job_id));
  return it->second->fsm.state();
}

CompileDaemon::Stats CompileDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CompileDaemon::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    for (auto& [id, session] : sessions_) {
      switch (session->fsm.state()) {
        case SessionState::kQueued: {
          session->cancel.store(true, std::memory_order_relaxed);
          CompileReply reply = base_reply(*session);
          reply.status = CompileReply::Status::kCancelled;
          finalize_locked(session, SessionEvent::kCancel, reply);
          break;
        }
        case SessionState::kRunning:
        case SessionState::kStreaming:
          session->cancel.store(true, std::memory_order_relaxed);
          break;
        default:
          break;
      }
    }
  }
  // Drains the queue (cancelled jobs return immediately) and joins; the
  // running jobs stop at their next stage boundary.
  pool_.shutdown();
}

void CompileDaemon::run_job(const std::shared_ptr<Session>& session) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (session->fsm.terminal()) {
      return;  // cancelled (or failed) while still queued
    }
    if (session->has_deadline && SteadyClock::now() > session->deadline) {
      CompileReply reply = base_reply(*session);
      reply.status = CompileReply::Status::kFailed;
      reply.error = "deadline exceeded while queued";
      finalize_locked(session, SessionEvent::kDeadline, reply);
      return;
    }
    session->fsm.handle(SessionEvent::kStart);
  }

  JobObserver observer(*this, session);
  try {
    cache::Compiled compiled;
    if (!session->request.base_job.empty()) {
      const std::shared_ptr<const cache::Compiled> base =
          find_completed(session->request.base_job);
      MCFPGA_REQUIRE(base != nullptr,
                     "unknown base job '" + session->request.base_job + "'");
      compiled = service_.compile_incremental(
          *base, session->netlist, session->request.options, &observer);
    } else {
      compiled = service_.compile(session->netlist, session->request.fabric,
                                  session->request.options, &observer);
    }

    CompileReply reply = base_reply(*session);
    reply.status = CompileReply::Status::kDone;
    reply.cache_hits = compiled.design.cache.hits;
    reply.cache_misses = compiled.design.cache.misses;
    reply.delta = compiled.design.cache.delta;
    reply.delta_fallback = compiled.design.cache.delta_fallback;
    for (const core::ContextStats& cs : compiled.design.context_stats) {
      reply.critical_path = std::max(reply.critical_path, cs.critical_path);
    }
    reply.bitstream_text = config::to_text(compiled.design.full_bitstream);
    retain_completed(session->request.job, std::move(compiled));
    finalize(session, SessionEvent::kFinish, std::move(reply));
  } catch (const FlowCancelled& e) {
    CompileReply reply = base_reply(*session);
    const std::lock_guard<std::mutex> lock(mu_);
    if (session->deadline_hit) {
      reply.status = CompileReply::Status::kFailed;
      reply.error = std::string("deadline exceeded: ") + e.what();
      finalize_locked(session, SessionEvent::kDeadline, reply);
    } else {
      reply.status = CompileReply::Status::kCancelled;
      finalize_locked(session, SessionEvent::kCancel, reply);
    }
  } catch (const std::exception& e) {
    CompileReply reply = base_reply(*session);
    reply.status = CompileReply::Status::kFailed;
    reply.error = e.what();
    finalize(session, SessionEvent::kFail, std::move(reply));
  }
}

void CompileDaemon::finalize(const std::shared_ptr<Session>& session,
                             SessionEvent event, CompileReply reply) {
  const std::lock_guard<std::mutex> lock(mu_);
  finalize_locked(session, event, reply);
}

void CompileDaemon::finalize_locked(const std::shared_ptr<Session>& session,
                                    SessionEvent event,
                                    const CompileReply& reply) {
  if (session->reply_ready) {
    return;  // already finalized (cancel/finish race lost)
  }
  session->fsm.handle(event);
  session->stream.push_back(reply_frame(reply));
  session->reply_ready = true;
  switch (session->fsm.state()) {
    case SessionState::kDone:
      ++stats_.done;
      break;
    case SessionState::kCancelled:
      ++stats_.cancelled;
      break;
    case SessionState::kFailed:
      ++stats_.failed;
      break;
    default:
      break;
  }
  cv_.notify_all();
}

std::shared_ptr<const cache::Compiled> CompileDaemon::find_completed(
    const std::string& job) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Newest first, so resubmitting a job name shadows older results.
  for (auto it = completed_.rbegin(); it != completed_.rend(); ++it) {
    if (it->first == job) {
      return it->second;
    }
  }
  return nullptr;
}

void CompileDaemon::retain_completed(const std::string& job,
                                     cache::Compiled design) {
  const std::lock_guard<std::mutex> lock(mu_);
  completed_.emplace_back(
      job, std::make_shared<const cache::Compiled>(std::move(design)));
  while (completed_.size() > options_.max_completed) {
    completed_.pop_front();
  }
}

}  // namespace mcfpga::serve
