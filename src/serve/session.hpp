// Per-job finite-state machine of the compile daemon.
//
// Every submitted job owns one Session whose lifecycle is an explicit FSM
// with per-state handlers — no implicit state in scattered booleans, so
// the whole transition table is unit-testable without sockets or threads
// (tests/test_serve.cpp drives every event in every state):
//
//            Submit          Start            Progress
//   [Idle] --------> [Queued] -----> [Running] --------> [Streaming] --.
//                       |               |  \                 ^  |      |
//                       | Cancel        |   \ Finish         '--' Progress
//                       v               |    v    Finish               |
//                  [Cancelled] <--------+  [Done] <--------------------+
//                       ^        Cancel |                              |
//                       |               | Fail/Deadline   Fail/Cancel/ |
//                       |               v                 Deadline     |
//                       '----------  [Failed] <------------------------'
//
//   - Deadline maps to Failed (the job missed its budget — an error the
//     client asked for), Cancel to Cancelled (the client changed its
//     mind); both are cooperative, observed at stage boundaries.
//   - Done / Cancelled / Failed are terminal: every event is rejected
//     with a reason, which is how the daemon surfaces races like
//     "cancel arrived after the job finished" without crashing.
//
// handle() returns an FsmResult rather than throwing: rejected events are
// an expected part of daemon operation, not programming errors.
#pragma once

#include <cstdint>
#include <string>

namespace mcfpga::serve {

enum class SessionState : std::uint8_t {
  kIdle,       ///< Created, not yet submitted to the worker pool.
  kQueued,     ///< In the pool's queue, no worker picked it up yet.
  kRunning,    ///< A worker is compiling; no progress streamed yet.
  kStreaming,  ///< Compiling and at least one progress frame streamed.
  kDone,       ///< Terminal: reply frame carries the bitstream.
  kCancelled,  ///< Terminal: client cancelled before completion.
  kFailed,     ///< Terminal: compile error or deadline exceeded.
};

enum class SessionEvent : std::uint8_t {
  kSubmit,    ///< Accepted into the daemon's queue.
  kStart,     ///< A worker began the compile.
  kProgress,  ///< A stage finished; a progress frame was streamed.
  kFinish,    ///< Compile completed; reply ready.
  kCancel,    ///< Client-requested cancellation took effect.
  kDeadline,  ///< The stage-boundary deadline budget expired.
  kFail,      ///< The compile threw.
};

const char* to_string(SessionState state);
const char* to_string(SessionEvent event);

/// Outcome of feeding one event to the FSM.
struct FsmResult {
  bool accepted = false;
  SessionState from = SessionState::kIdle;
  SessionState to = SessionState::kIdle;  ///< == from when rejected.
  std::string reject_reason;              ///< Non-empty iff rejected.
};

class SessionFsm {
 public:
  SessionState state() const { return state_; }
  bool terminal() const {
    return state_ == SessionState::kDone ||
           state_ == SessionState::kCancelled ||
           state_ == SessionState::kFailed;
  }

  /// Applies `event`: moves to the table's target state and accepts, or
  /// stays put and rejects with a reason.
  FsmResult handle(SessionEvent event);

 private:
  // One handler per state keeps each state's accept/reject policy in one
  // place (the pppcpd PPP_FSM shape).
  FsmResult handle_idle(SessionEvent event);
  FsmResult handle_queued(SessionEvent event);
  FsmResult handle_running(SessionEvent event);
  FsmResult handle_streaming(SessionEvent event);
  FsmResult handle_terminal(SessionEvent event);

  FsmResult accept(SessionState to);
  FsmResult reject(SessionEvent event) const;

  SessionState state_ = SessionState::kIdle;
};

}  // namespace mcfpga::serve
