#include "serve/client.hpp"

#include "common/error.hpp"
#include "config/serialize.hpp"

namespace mcfpga::serve {

CompileRequest ServeClient::make_request(
    const std::string& job, const netlist::MultiContextNetlist& netlist,
    const arch::FabricSpec& fabric, const core::CompileOptions& options,
    std::uint64_t deadline_ms, const std::string& base_job) {
  CompileRequest request;
  request.job = job;
  request.deadline_ms = deadline_ms;
  request.base_job = base_job;
  request.fabric = fabric;
  request.options = options;
  request.netlist_text = config::netlist_to_text(netlist);
  return request;
}

std::uint64_t ServeClient::submit(const CompileRequest& request) {
  return daemon_.submit_frame(request_frame(request));
}

ServeClient::Outcome ServeClient::wait(std::uint64_t job_id) {
  Outcome outcome;
  bool saw_reply = false;
  for (const std::string& bytes : daemon_.wait(job_id)) {
    const Frame frame = frame_from_bytes(bytes);
    switch (frame.type) {
      case FrameType::kProgress:
        MCFPGA_REQUIRE(!saw_reply, "progress frame after the reply");
        outcome.progress.push_back(decode_progress(frame.payload));
        break;
      case FrameType::kReply:
        MCFPGA_REQUIRE(!saw_reply, "more than one reply frame");
        outcome.reply = decode_reply(frame.payload);
        saw_reply = true;
        break;
      default:
        throw InvalidArgument("unexpected frame type in job stream");
    }
  }
  MCFPGA_REQUIRE(saw_reply, "job stream carried no reply frame");
  return outcome;
}

}  // namespace mcfpga::serve
