#include "serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <istream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace mcfpga::serve {
namespace {

using mcfpga::try_parse_double;
using mcfpga::try_parse_u64;

[[noreturn]] void payload_fail(const char* what, std::size_t line,
                               const std::string& message) {
  throw InvalidArgument(std::string(what) + " payload line " +
                        std::to_string(line) + ": " + message);
}

void require_name(const char* field, const std::string& name) {
  MCFPGA_REQUIRE(!name.empty(), std::string(field) + " must be non-empty");
  for (const char c : name) {
    MCFPGA_REQUIRE(!std::isspace(static_cast<unsigned char>(c)),
                   std::string(field) + " '" + name +
                       "' must be whitespace-free");
  }
}

/// Shortest round-trippable decimal for a double (%.17g).
std::string fmt_wire_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Line-oriented payload reader: getline with a running line number, plus
/// counted-blob reads so embedded netlist/bitstream text needs no escaping.
class PayloadReader {
 public:
  PayloadReader(const char* what, const std::string& payload)
      : what_(what), is_(payload) {}

  std::size_t line_number() const { return line_; }
  [[noreturn]] void fail(const std::string& message) {
    payload_fail(what_, line_, message);
  }

  /// Next line split at the first space into (key, rest).
  std::pair<std::string, std::string> next_line() {
    std::string line;
    if (!std::getline(is_, line)) {
      fail("unexpected end of payload");
    }
    ++line_;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      return {line, std::string()};
    }
    return {line.substr(0, space), line.substr(space + 1)};
  }

  /// `<key> <u64>` line.
  std::uint64_t u64_line(const char* key) {
    const auto [k, rest] = next_line();
    if (k != key) {
      fail(std::string("expected '") + key + "', got '" + k + "'");
    }
    std::uint64_t value = 0;
    if (!try_parse_u64(rest, value)) {
      fail(std::string("invalid ") + key + " '" + rest + "'");
    }
    return value;
  }

  /// `<key> <name>` line; the name must be whitespace-free and non-empty.
  std::string name_line(const char* key) {
    const auto [k, rest] = next_line();
    if (k != key) {
      fail(std::string("expected '") + key + "', got '" + k + "'");
    }
    if (rest.empty() || rest.find(' ') != std::string::npos) {
      fail(std::string("invalid ") + key + " '" + rest + "'");
    }
    return rest;
  }

  /// `<key>_bytes <n>` line followed by exactly n raw bytes and a newline.
  std::string blob(const char* key) {
    const std::uint64_t n = u64_line(key);
    if (n > std::numeric_limits<std::size_t>::max()) {
      fail(std::string("oversized ") + key);
    }
    std::string bytes(static_cast<std::size_t>(n), '\0');
    if (n != 0 && !is_.read(bytes.data(), static_cast<std::streamsize>(n))) {
      fail(std::string("truncated ") + key + " blob");
    }
    for (const char c : bytes) {
      line_ += c == '\n' ? 1 : 0;
    }
    if (is_.get() != '\n') {
      fail(std::string(key) + " blob must end at a line boundary");
    }
    ++line_;
    return bytes;
  }

  void expect_end() {
    const auto [k, rest] = next_line();
    if (k != "end" || !rest.empty()) {
      fail("expected 'end'");
    }
  }

 private:
  const char* what_;
  std::istringstream is_;
  std::size_t line_ = 0;
};

void append_blob(std::ostream& os, const char* key, const std::string& bytes) {
  os << key << ' ' << bytes.size() << '\n' << bytes << '\n';
}

}  // namespace

std::string encode_frame(FrameType type, const std::string& payload) {
  MCFPGA_REQUIRE(payload.size() <=
                     std::numeric_limits<std::uint32_t>::max(),
                 "frame payload exceeds the u32 length field");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(type));
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((n >> shift) & 0xffu));
  }
  out.append(payload);
  return out;
}

Frame decode_frame(std::istream& is) {
  char header[kFrameHeaderBytes];
  if (!is.read(header, sizeof(header))) {
    throw InvalidArgument("frame: truncated header");
  }
  for (std::size_t i = 0; i < sizeof(kFrameMagic); ++i) {
    if (header[i] != kFrameMagic[i]) {
      throw InvalidArgument("frame: bad magic");
    }
  }
  if (static_cast<std::uint8_t>(header[4]) != kProtocolVersion) {
    throw InvalidArgument("frame: unsupported protocol version " +
                          std::to_string(static_cast<int>(
                              static_cast<std::uint8_t>(header[4]))));
  }
  const auto type = static_cast<std::uint8_t>(header[5]);
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kProgress)) {
    throw InvalidArgument("frame: unknown frame type " +
                          std::to_string(static_cast<int>(type)));
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                  header[6 + i]))
              << (8 * i);
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(length);
  if (length != 0 &&
      !is.read(frame.payload.data(), static_cast<std::streamsize>(length))) {
    throw InvalidArgument("frame: payload shorter than declared length");
  }
  return frame;
}

Frame frame_from_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  return decode_frame(is);
}

const char* to_string(CompileReply::Status status) {
  switch (status) {
    case CompileReply::Status::kDone:
      return "done";
    case CompileReply::Status::kCancelled:
      return "cancelled";
    case CompileReply::Status::kFailed:
      return "failed";
  }
  return "?";
}

std::string encode_request(const CompileRequest& request) {
  require_name("job name", request.job);
  if (!request.base_job.empty()) {
    require_name("base job name", request.base_job);
  }
  std::ostringstream os;
  os << "mcfpga-request v1\n";
  os << "job " << request.job << '\n';
  os << "deadline_ms " << request.deadline_ms << '\n';
  os << "base " << (request.base_job.empty() ? "-" : request.base_job)
     << '\n';
  const arch::FabricSpec& f = request.fabric;
  os << "fabric " << f.width << ' ' << f.height << ' ' << f.num_contexts
     << ' ' << f.channel_width << ' ' << f.double_length_tracks << ' '
     << (f.switch_impl == arch::SwitchImpl::kConventional ? "conventional"
                                                          : "rcm")
     << '\n';
  const core::CompileOptions& o = request.options;
  os << "options " << o.seed << ' ' << o.closure_iterations << ' '
     << (o.auto_size ? 1 : 0) << ' ' << (o.placer.timing_mode ? 1 : 0)
     << ' ' << (o.router.timing_mode ? 1 : 0) << ' '
     << (o.router.queue_mode == route::QueueMode::kBucket ? "bucket"
                                                          : "binary")
     << ' ';
  switch (o.router.cross_context_mode) {
    case route::CrossContextMode::kOff:
      os << "off";
      break;
    case route::CrossContextMode::kNegotiated:
      os << "negotiated";
      break;
    case route::CrossContextMode::kInterleaved:
      os << "interleaved";
      break;
  }
  os << ' ' << o.placer.num_threads << ' ' << o.router.num_threads << '\n';
  append_blob(os, "netlist_bytes", request.netlist_text);
  os << "end\n";
  return os.str();
}

CompileRequest decode_request(const std::string& payload) {
  PayloadReader r("request", payload);
  {
    const auto [k, rest] = r.next_line();
    if (k != "mcfpga-request" || rest != "v1") {
      r.fail("expected 'mcfpga-request v1' header");
    }
  }
  CompileRequest request;
  request.job = r.name_line("job");
  request.deadline_ms = r.u64_line("deadline_ms");
  const std::string base = r.name_line("base");
  request.base_job = base == "-" ? std::string() : base;
  {
    const auto [k, rest] = r.next_line();
    if (k != "fabric") {
      r.fail("expected 'fabric', got '" + k + "'");
    }
    std::istringstream fs(rest);
    std::string w, h, c, ch, dl, impl;
    if (!(fs >> w >> h >> c >> ch >> dl >> impl)) {
      r.fail("fabric line needs 6 fields");
    }
    std::string extra;
    if (fs >> extra) {
      r.fail("unexpected trailing token '" + extra + "'");
    }
    std::uint64_t v = 0;
    arch::FabricSpec& f = request.fabric;
    const auto field = [&](const std::string& token,
                           const char* what) -> std::size_t {
      if (!try_parse_u64(token, v) || v == 0 ||
          v > std::numeric_limits<std::size_t>::max()) {
        r.fail(std::string("invalid fabric ") + what + " '" + token + "'");
      }
      return static_cast<std::size_t>(v);
    };
    f.width = field(w, "width");
    f.height = field(h, "height");
    f.num_contexts = field(c, "contexts");
    f.channel_width = field(ch, "channel width");
    if (!try_parse_u64(dl, v) ||
        v > std::numeric_limits<std::size_t>::max()) {
      r.fail("invalid fabric double-length tracks '" + dl + "'");
    }
    f.double_length_tracks = static_cast<std::size_t>(v);
    if (impl == "conventional") {
      f.switch_impl = arch::SwitchImpl::kConventional;
    } else if (impl == "rcm") {
      f.switch_impl = arch::SwitchImpl::kRcm;
    } else {
      r.fail("invalid switch implementation '" + impl + "'");
    }
  }
  {
    const auto [k, rest] = r.next_line();
    if (k != "options") {
      r.fail("expected 'options', got '" + k + "'");
    }
    std::istringstream os(rest);
    std::string seed, closure, auto_size, ptiming, rtiming, queue, ccm,
        pthreads, rthreads;
    if (!(os >> seed >> closure >> auto_size >> ptiming >> rtiming >>
          queue >> ccm >> pthreads >> rthreads)) {
      r.fail("options line needs 9 fields");
    }
    std::string extra;
    if (os >> extra) {
      r.fail("unexpected trailing token '" + extra + "'");
    }
    core::CompileOptions& o = request.options;
    std::uint64_t v = 0;
    if (!try_parse_u64(seed, v)) {
      r.fail("invalid seed '" + seed + "'");
    }
    o.seed = v;
    if (!try_parse_u64(closure, v) ||
        v > std::numeric_limits<std::size_t>::max()) {
      r.fail("invalid closure iterations '" + closure + "'");
    }
    o.closure_iterations = static_cast<std::size_t>(v);
    const auto flag = [&](const std::string& token,
                          const char* what) -> bool {
      if (token != "0" && token != "1") {
        r.fail(std::string("invalid ") + what + " flag '" + token + "'");
      }
      return token == "1";
    };
    o.auto_size = flag(auto_size, "auto-size");
    o.placer.timing_mode = flag(ptiming, "placer timing");
    o.router.timing_mode = flag(rtiming, "router timing");
    if (queue == "binary") {
      o.router.queue_mode = route::QueueMode::kBinaryHeap;
    } else if (queue == "bucket") {
      o.router.queue_mode = route::QueueMode::kBucket;
    } else {
      r.fail("invalid queue mode '" + queue + "'");
    }
    if (ccm == "off") {
      o.router.cross_context_mode = route::CrossContextMode::kOff;
    } else if (ccm == "negotiated") {
      o.router.cross_context_mode = route::CrossContextMode::kNegotiated;
    } else if (ccm == "interleaved") {
      o.router.cross_context_mode = route::CrossContextMode::kInterleaved;
    } else {
      r.fail("invalid cross-context mode '" + ccm + "'");
    }
    const auto threads = [&](const std::string& token,
                             const char* what) -> std::size_t {
      if (!try_parse_u64(token, v) ||
          v > std::numeric_limits<std::size_t>::max()) {
        r.fail(std::string("invalid ") + what + " '" + token + "'");
      }
      return static_cast<std::size_t>(v);
    };
    o.placer.num_threads = threads(pthreads, "placer threads");
    o.router.num_threads = threads(rthreads, "router threads");
  }
  request.netlist_text = r.blob("netlist_bytes");
  r.expect_end();
  return request;
}

std::string encode_reply(const CompileReply& reply) {
  require_name("job name", reply.job);
  std::ostringstream os;
  os << "mcfpga-reply v1\n";
  os << "job " << reply.job << '\n';
  os << "status " << to_string(reply.status) << '\n';
  append_blob(os, "error_bytes", reply.error);
  os << "hits " << reply.cache_hits << '\n';
  os << "misses " << reply.cache_misses << '\n';
  os << "delta " << (reply.delta ? 1 : 0) << '\n';
  append_blob(os, "fallback_bytes", reply.delta_fallback);
  os << "critical_path " << fmt_wire_double(reply.critical_path) << '\n';
  append_blob(os, "bitstream_bytes", reply.bitstream_text);
  os << "end\n";
  return os.str();
}

CompileReply decode_reply(const std::string& payload) {
  PayloadReader r("reply", payload);
  {
    const auto [k, rest] = r.next_line();
    if (k != "mcfpga-reply" || rest != "v1") {
      r.fail("expected 'mcfpga-reply v1' header");
    }
  }
  CompileReply reply;
  reply.job = r.name_line("job");
  const std::string status = r.name_line("status");
  if (status == "done") {
    reply.status = CompileReply::Status::kDone;
  } else if (status == "cancelled") {
    reply.status = CompileReply::Status::kCancelled;
  } else if (status == "failed") {
    reply.status = CompileReply::Status::kFailed;
  } else {
    r.fail("invalid status '" + status + "'");
  }
  reply.error = r.blob("error_bytes");
  reply.cache_hits = r.u64_line("hits");
  reply.cache_misses = r.u64_line("misses");
  const std::uint64_t delta = r.u64_line("delta");
  if (delta > 1) {
    r.fail("invalid delta flag '" + std::to_string(delta) + "'");
  }
  reply.delta = delta == 1;
  reply.delta_fallback = r.blob("fallback_bytes");
  {
    const auto [k, rest] = r.next_line();
    if (k != "critical_path") {
      r.fail("expected 'critical_path', got '" + k + "'");
    }
    if (!try_parse_double(rest, reply.critical_path)) {
      r.fail("invalid critical path '" + rest + "'");
    }
  }
  reply.bitstream_text = r.blob("bitstream_bytes");
  r.expect_end();
  return reply;
}

std::string encode_progress(const ProgressEvent& event) {
  require_name("job name", event.job);
  require_name("stage name", event.stage);
  std::ostringstream os;
  os << "mcfpga-progress v1\n";
  os << "job " << event.job << '\n';
  os << "stage " << event.stage << '\n';
  os << "seconds " << fmt_wire_double(event.seconds) << '\n';
  os << "end\n";
  return os.str();
}

ProgressEvent decode_progress(const std::string& payload) {
  PayloadReader r("progress", payload);
  {
    const auto [k, rest] = r.next_line();
    if (k != "mcfpga-progress" || rest != "v1") {
      r.fail("expected 'mcfpga-progress v1' header");
    }
  }
  ProgressEvent event;
  event.job = r.name_line("job");
  event.stage = r.name_line("stage");
  {
    const auto [k, rest] = r.next_line();
    if (k != "seconds") {
      r.fail("expected 'seconds', got '" + k + "'");
    }
    if (!try_parse_double(rest, event.seconds) || event.seconds < 0.0) {
      r.fail("invalid seconds '" + rest + "'");
    }
  }
  r.expect_end();
  return event;
}

std::string request_frame(const CompileRequest& request) {
  return encode_frame(FrameType::kRequest, encode_request(request));
}

std::string reply_frame(const CompileReply& reply) {
  return encode_frame(FrameType::kReply, encode_reply(reply));
}

std::string progress_frame(const ProgressEvent& event) {
  return encode_frame(FrameType::kProgress, encode_progress(event));
}

}  // namespace mcfpga::serve
