// Simulated-annealing placement of clustered logic blocks onto the fabric
// grid, plus I/O-terminal-to-pad assignment.
//
// The cost function is the half-perimeter wirelength (HPWL) of every net,
// summed over contexts (a net active in several contexts counts once per
// context — multi-context routing pressure is real pressure).  Moves are
// cluster swaps / relocations and pad swaps; cluster targets are drawn
// from a move window that shrinks as acceptance falls (VPR-style range
// limiting), and the schedule is a classic geometric cooling with a fixed
// sweep budget — or, behind PlacerOptions::adaptive_cooling, an
// acceptance-rate-driven schedule.  Placements are deterministic for a
// given seed.
//
// Move evaluation is exact and incremental: a flat CSR terminal->net index
// (place/net_index.hpp) is built once per problem, and each move updates
// only the bounding boxes of the nets incident to the moved terminals.
// Coordinates are integers, so deltas are exact int64s and the incremental
// trajectory is bit-identical to the O(nets x terminals) full-recompute
// baseline (PlacerOptions::incremental = false, kept for benches/tests).
//
// Multi-seed restarts: num_restarts independent annealers (restart r seeds
// its RNG with seed + r) run on a worker pool, and the lowest-cost result
// wins, ties broken by the lowest restart index — so the outcome is
// deterministic for a fixed seed set regardless of thread count or timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/routing_graph.hpp"
#include "common/rng.hpp"

namespace mcfpga::place {

/// A placeable endpoint: a logic-block cluster or an I/O terminal.
struct Terminal {
  enum class Kind : std::uint8_t { kCluster, kIo };
  Kind kind = Kind::kCluster;
  std::size_t id = 0;  ///< Cluster index or I/O terminal index.

  static Terminal cluster(std::size_t id) {
    return Terminal{Kind::kCluster, id};
  }
  static Terminal io(std::size_t id) { return Terminal{Kind::kIo, id}; }
};

struct PlacementNet {
  Terminal driver;
  std::vector<Terminal> sinks;
  /// Contexts in which the net is live (its HPWL weight).
  std::size_t weight = 1;
  /// Timing criticality in [0, 1] (logic-depth or post-route STA); only
  /// consulted when PlacerOptions::timing_mode multiplies it into the
  /// net's effective HPWL weight.
  double criticality = 0.0;
};

struct PlacementProblem {
  std::size_t num_clusters = 0;
  std::size_t num_io_terminals = 0;
  std::vector<PlacementNet> nets;
};

struct PlacerOptions {
  /// Annealing seed.  kSeedFromFlow (0) lets the compile flow substitute
  /// its own seed (core::PlaceStage); place() itself treats it literally.
  static constexpr std::uint64_t kSeedFromFlow = 0;
  std::uint64_t seed = kSeedFromFlow;
  /// Annealing sweeps (each sweep = moves_per_sweep attempted moves).
  std::size_t sweeps = 64;
  std::size_t moves_per_sweep = 0;  ///< 0 -> 16 * (clusters + ios)
  double initial_temperature_factor = 0.1;  ///< T0 = factor * initial cost
  double cooling = 0.9;
  /// Exact incremental delta evaluation (false = full recompute per move;
  /// same trajectory bit for bit, kept as the bench/test baseline).
  bool incremental = true;
  /// Shrink cluster move windows as the acceptance rate falls.
  bool range_limit = true;
  /// Replace geometric cooling with an acceptance-rate-driven schedule
  /// (sweeps still bounds the run).
  bool adaptive_cooling = false;
  /// Independent annealing restarts; restart r uses seed + r, best cost
  /// wins (ties -> lowest restart index).
  std::size_t num_restarts = 1;
  /// Worker threads for restarts.  0 = one per hardware thread, capped at
  /// num_restarts; results are identical regardless of the value.
  std::size_t num_threads = 0;
  /// Timing-driven cost: each net's HPWL weight becomes
  ///   weight * (1 + round(criticality * timing_weight)),
  /// an integer, so the incremental evaluator stays exact and trajectories
  /// stay deterministic.  Off = criticalities ignored, bit-identical to
  /// the pure-HPWL placer.
  bool timing_mode = false;
  /// Strength of the criticality bump (a fully critical net weighs
  /// (1 + timing_weight)x its wirelength weight).
  double timing_weight = 4.0;

  /// Throws InvalidArgument on out-of-range values (zero sweep/restart
  /// budget, non-positive cooling, negative weights, ...).  Called by
  /// place().
  void validate() const;
};

/// The annealer's per-net weight: the context count, criticality-bumped in
/// timing mode.  Exposed so placement_cost() and the NetIndex agree.
std::int64_t effective_net_weight(const PlacementNet& net,
                                  const PlacerOptions& options);

/// Outcome of one annealing restart (all restarts are reported, not just
/// the winner, so callers can attribute time and quality per seed).
struct RestartStat {
  std::uint64_t seed = 0;
  double cost = 0.0;
  double seconds = 0.0;  ///< Wall clock of this restart's anneal.
};

struct Placement {
  /// cluster -> cell coordinates.
  std::vector<std::pair<std::size_t, std::size_t>> cluster_pos;
  /// io terminal -> pad index (into RoutingGraph::pad()).
  std::vector<std::size_t> io_pads;
  double cost = 0.0;

  /// One entry per restart, in restart order (deterministic apart from
  /// the wall-clock seconds).
  std::vector<RestartStat> restart_stats;
  std::size_t winning_restart = 0;
};

/// Places the problem onto `graph`'s fabric.  Throws FlowError when the
/// fabric has too few cells or pads.
///
/// `initial` (may be null) warm-starts every restart's anneal from the
/// given placement instead of the scan-order seed — the timing-closure
/// loop's re-place, typically paired with a reduced temperature so the
/// refine run perturbs rather than scrambles.  Its cluster_pos/io_pads
/// must match the problem (InvalidArgument otherwise).
Placement place(const PlacementProblem& problem,
                const arch::RoutingGraph& graph, const PlacerOptions& options,
                const Placement* initial = nullptr);

/// Cost of an explicit placement (exposed for tests and the placer itself).
/// `options` supplies the timing-mode net weighting; the default matches
/// the pure-HPWL cost.
double placement_cost(const PlacementProblem& problem,
                      const arch::RoutingGraph& graph,
                      const Placement& placement,
                      const PlacerOptions& options = {});

}  // namespace mcfpga::place
