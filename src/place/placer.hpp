// Simulated-annealing placement of clustered logic blocks onto the fabric
// grid, plus I/O-terminal-to-pad assignment.
//
// The cost function is the half-perimeter wirelength (HPWL) of every net,
// summed over contexts (a net active in several contexts counts once per
// context — multi-context routing pressure is real pressure).  Moves are
// cluster swaps / relocations and pad swaps; the schedule is a classic
// geometric cooling with a fixed sweep budget so placements are
// deterministic for a given seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/routing_graph.hpp"
#include "common/rng.hpp"

namespace mcfpga::place {

/// A placeable endpoint: a logic-block cluster or an I/O terminal.
struct Terminal {
  enum class Kind : std::uint8_t { kCluster, kIo };
  Kind kind = Kind::kCluster;
  std::size_t id = 0;  ///< Cluster index or I/O terminal index.

  static Terminal cluster(std::size_t id) {
    return Terminal{Kind::kCluster, id};
  }
  static Terminal io(std::size_t id) { return Terminal{Kind::kIo, id}; }
};

struct PlacementNet {
  Terminal driver;
  std::vector<Terminal> sinks;
  /// Contexts in which the net is live (its HPWL weight).
  std::size_t weight = 1;
};

struct PlacementProblem {
  std::size_t num_clusters = 0;
  std::size_t num_io_terminals = 0;
  std::vector<PlacementNet> nets;
};

struct PlacerOptions {
  std::uint64_t seed = 1;
  /// Annealing sweeps (each sweep = moves_per_sweep attempted moves).
  std::size_t sweeps = 64;
  std::size_t moves_per_sweep = 0;  ///< 0 -> 16 * (clusters + ios)
  double initial_temperature_factor = 0.1;  ///< T0 = factor * initial cost
  double cooling = 0.9;
};

struct Placement {
  /// cluster -> cell coordinates.
  std::vector<std::pair<std::size_t, std::size_t>> cluster_pos;
  /// io terminal -> pad index (into RoutingGraph::pad()).
  std::vector<std::size_t> io_pads;
  double cost = 0.0;
};

/// Places the problem onto `graph`'s fabric.  Throws FlowError when the
/// fabric has too few cells or pads.
Placement place(const PlacementProblem& problem,
                const arch::RoutingGraph& graph, const PlacerOptions& options);

/// Cost of an explicit placement (exposed for tests and the placer itself).
double placement_cost(const PlacementProblem& problem,
                      const arch::RoutingGraph& graph,
                      const Placement& placement);

}  // namespace mcfpga::place
