#include "place/net_index.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mcfpga::place {

NetIndex::NetIndex(const PlacementProblem& problem,
                   const PlacerOptions& options) {
  num_clusters_ = problem.num_clusters;
  const std::size_t terms = problem.num_clusters + problem.num_io_terminals;
  const std::size_t nets = problem.nets.size();

  net_weight_.resize(nets);
  net_offset_.assign(nets + 1, 0);
  for (std::size_t n = 0; n < nets; ++n) {
    // Effective weight (criticality-bumped in timing mode), zero included —
    // placement_cost() is the oracle and a zero-weight net must stay free
    // here too.
    net_weight_[n] = effective_net_weight(problem.nets[n], options);
    net_offset_[n + 1] = net_offset_[n] +
                         static_cast<std::uint32_t>(1 + problem.nets[n].sinks.size());
  }
  net_terms_.resize(net_offset_[nets]);
  for (std::size_t n = 0; n < nets; ++n) {
    std::uint32_t* out = net_terms_.data() + net_offset_[n];
    *out++ = terminal_id(problem.nets[n].driver);
    for (const Terminal& s : problem.nets[n].sinks) {
      *out++ = terminal_id(s);
    }
  }

  // Terminal->net CSR.  First pass counts one entry per distinct
  // (terminal, net) pair; second pass fills entries with multiplicities.
  // Within one net the member list is short, so distinctness is checked by
  // scanning the net's terminals seen so far.
  term_offset_.assign(terms + 1, 0);
  for (std::size_t n = 0; n < nets; ++n) {
    const std::uint32_t* begin = net_terms_begin(n);
    const std::uint32_t* end = net_terms_end(n);
    for (const std::uint32_t* it = begin; it != end; ++it) {
      if (std::find(begin, it, *it) == it) {
        ++term_offset_[*it + 1];
      }
    }
  }
  for (std::size_t t = 0; t < terms; ++t) {
    term_offset_[t + 1] += term_offset_[t];
  }
  term_nets_.resize(term_offset_[terms]);
  std::vector<std::uint32_t> fill(terms, 0);
  for (std::size_t n = 0; n < nets; ++n) {
    const std::uint32_t* begin = net_terms_begin(n);
    const std::uint32_t* end = net_terms_end(n);
    for (const std::uint32_t* it = begin; it != end; ++it) {
      if (std::find(begin, it, *it) != it) {
        continue;  // Repeat inside this net: already counted below.
      }
      const std::uint32_t count =
          static_cast<std::uint32_t>(std::count(begin, end, *it));
      term_nets_[term_offset_[*it] + fill[*it]++] =
          TermNet{static_cast<std::uint32_t>(n), count};
    }
  }
}

namespace {
/// Below this degree a one-pass rescan is cheaper than count upkeep.
constexpr std::size_t kAlwaysRescanDegree = 8;
}  // namespace

IncrementalHpwl::IncrementalHpwl(const NetIndex& index) : index_(index) {
  boxes_.resize(index_.num_nets());
  scratch_.resize(index_.num_nets());
  dirty_.assign(index_.num_nets(), 0);
  stamp_.assign(index_.num_nets(), 0);
  always_rescan_.resize(index_.num_nets());
  for (std::size_t n = 0; n < index_.num_nets(); ++n) {
    always_rescan_[n] = index_.net_degree(n) <= kAlwaysRescanDegree;
  }
}

IncrementalHpwl::Box IncrementalHpwl::compute_box(std::size_t net) const {
  Box b = compute_span(net);
  const std::uint32_t* begin = index_.net_terms_begin(net);
  const std::uint32_t* end = index_.net_terms_end(net);
  for (const std::uint32_t* it = begin; it != end; ++it) {
    b.n_min_x += xs_[*it] == b.min_x;
    b.n_max_x += xs_[*it] == b.max_x;
    b.n_min_y += ys_[*it] == b.min_y;
    b.n_max_y += ys_[*it] == b.max_y;
  }
  return b;
}

IncrementalHpwl::Box IncrementalHpwl::compute_span(std::size_t net) const {
  const std::uint32_t* begin = index_.net_terms_begin(net);
  const std::uint32_t* end = index_.net_terms_end(net);
  Box b;
  b.min_x = b.max_x = xs_[*begin];
  b.min_y = b.max_y = ys_[*begin];
  for (const std::uint32_t* it = begin + 1; it != end; ++it) {
    b.min_x = std::min(b.min_x, xs_[*it]);
    b.max_x = std::max(b.max_x, xs_[*it]);
    b.min_y = std::min(b.min_y, ys_[*it]);
    b.max_y = std::max(b.max_y, ys_[*it]);
  }
  return b;
}

void IncrementalHpwl::reset(std::vector<std::int32_t> xs,
                            std::vector<std::int32_t> ys) {
  MCFPGA_REQUIRE(xs.size() == index_.num_terminals() && xs.size() == ys.size(),
                 "one position per terminal");
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  cost_ = 0;
  for (std::size_t n = 0; n < index_.num_nets(); ++n) {
    boxes_[n] = compute_box(n);
    cost_ += index_.net_weight(n) * boxes_[n].half_perimeter();
  }
  undo_count_ = 0;
  pending_delta_ = 0;
  pending_full_ = false;
}

namespace {

/// Moves `m` box instances from old_c to new_c along one dimension.
/// Leaves a support count at 0 when the last instance left an edge and the
/// replacement landed strictly inside — the caller's cue to rescan.
void update_dim(std::int32_t& min_c, std::int32_t& max_c, std::int32_t& n_min,
                std::int32_t& n_max, std::int32_t old_c, std::int32_t new_c,
                std::int32_t m) {
  if (old_c == new_c) {
    return;
  }
  if (old_c == min_c) {
    n_min -= m;
  }
  if (old_c == max_c) {
    n_max -= m;
  }
  if (new_c < min_c) {
    min_c = new_c;
    n_min = m;
  } else if (new_c == min_c) {
    n_min += m;
  }
  if (new_c > max_c) {
    max_c = new_c;
    n_max = m;
  } else if (new_c == max_c) {
    n_max += m;
  }
}

}  // namespace

std::int64_t IncrementalHpwl::propose(const Move* moves, std::size_t count) {
  ++epoch_;
  affected_.clear();
  undo_count_ = count;
  for (std::size_t i = 0; i < count; ++i) {
    const Move& mv = moves[i];
    const std::int32_t old_x = xs_[mv.term];
    const std::int32_t old_y = ys_[mv.term];
    undo_[i] = Move{mv.term, old_x, old_y};
    for (const NetIndex::TermNet* it = index_.terminal_nets_begin(mv.term);
         it != index_.terminal_nets_end(mv.term); ++it) {
      if (stamp_[it->net] != epoch_) {
        stamp_[it->net] = epoch_;
        dirty_[it->net] = always_rescan_[it->net];
        if (!dirty_[it->net]) {
          scratch_[it->net] = boxes_[it->net];
        }
        affected_.push_back(it->net);
      }
      if (dirty_[it->net]) {
        continue;  // Will be rescanned from final positions anyway.
      }
      Box& b = scratch_[it->net];
      const std::int32_t m = static_cast<std::int32_t>(it->count);
      update_dim(b.min_x, b.max_x, b.n_min_x, b.n_max_x, old_x, mv.x, m);
      update_dim(b.min_y, b.max_y, b.n_min_y, b.n_max_y, old_y, mv.y, m);
      if (b.n_min_x == 0 || b.n_max_x == 0 || b.n_min_y == 0 ||
          b.n_max_y == 0) {
        dirty_[it->net] = 1;
      }
    }
    xs_[mv.term] = mv.x;
    ys_[mv.term] = mv.y;
  }

  std::int64_t delta = 0;
  for (const std::uint32_t net : affected_) {
    if (dirty_[net]) {
      scratch_[net] = always_rescan_[net] ? compute_span(net)
                                          : compute_box(net);
    }
    delta += index_.net_weight(net) *
             (scratch_[net].half_perimeter() - boxes_[net].half_perimeter());
  }
  pending_delta_ = delta;
  pending_full_ = false;
  return delta;
}

std::int64_t IncrementalHpwl::propose_full(const Move* moves,
                                           std::size_t count) {
  undo_count_ = count;
  for (std::size_t i = 0; i < count; ++i) {
    undo_[i] = Move{moves[i].term, xs_[moves[i].term], ys_[moves[i].term]};
    xs_[moves[i].term] = moves[i].x;
    ys_[moves[i].term] = moves[i].y;
  }
  pending_delta_ = recompute_cost() - cost_;
  pending_full_ = true;
  return pending_delta_;
}

void IncrementalHpwl::commit() {
  if (!pending_full_) {
    for (const std::uint32_t net : affected_) {
      boxes_[net] = scratch_[net];
    }
  }
  cost_ += pending_delta_;
  undo_count_ = 0;
}

void IncrementalHpwl::rollback() {
  for (std::size_t i = 0; i < undo_count_; ++i) {
    xs_[undo_[i].term] = undo_[i].x;
    ys_[undo_[i].term] = undo_[i].y;
  }
  undo_count_ = 0;
}

std::int64_t IncrementalHpwl::recompute_cost() const {
  std::int64_t c = 0;
  for (std::size_t n = 0; n < index_.num_nets(); ++n) {
    // Counts-free scan: half_perimeter never reads the edge supports, and
    // this is the full-recompute baseline the bench races against.
    c += index_.net_weight(n) * compute_span(n).half_perimeter();
  }
  return c;
}

}  // namespace mcfpga::place
