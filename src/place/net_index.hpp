// Flat CSR adjacency between placement terminals and nets, plus an exact
// incremental HPWL evaluator built on it.
//
// The annealer's hot loop asks one question per attempted move: "by how
// much does the total wirelength change if these one or two terminals
// relocate?"  Answering it by recomputing every net (the seed placer's
// State::total_cost) costs O(nets x terminals) per move; answering it from
// a terminal->net index costs O(nets incident to the moved terminals).
// The index is the same flat-CSR idiom RoutingGraph uses for its edge
// adjacency: two offset/payload array pairs built once per problem, no
// per-element heap traffic afterwards.
//
// Exactness: cell and pad coordinates are integers, so every net's
// half-perimeter — and therefore every move delta — is an exact int64.
// The running cost never drifts from a from-scratch recompute, which is
// what lets the incremental annealer promise bit-identical trajectories
// to the full-recompute baseline (same RNG draws, same deltas, same
// accept decisions).
//
// Bounding boxes carry per-edge support counts (how many terminal
// instances sit on min_x / max_x / min_y / max_y), VPR-style: a move only
// forces an O(net terminals) rescan when it removes the last instance from
// a box edge and lands strictly inside; every other move updates the box
// in O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "place/placer.hpp"

namespace mcfpga::place {

/// Terminal->net and net->terminal adjacency in flat CSR form.
///
/// Terminals are numbered clusters first, then I/O terminals:
/// cluster c -> c, io i -> num_clusters + i.  A terminal appearing several
/// times in one net (driver and sink, or repeated sink) is one CSR entry
/// with a multiplicity count, so moving it moves that many box instances.
class NetIndex {
 public:
  /// `options` supplies the timing-mode net weighting; the default keeps
  /// the pure context-count weights.
  explicit NetIndex(const PlacementProblem& problem,
                    const PlacerOptions& options = {});

  std::size_t num_nets() const { return net_weight_.size(); }
  std::size_t num_clusters() const { return num_clusters_; }
  std::size_t num_terminals() const { return term_offset_.size() - 1; }

  std::uint32_t terminal_id(const Terminal& t) const {
    return static_cast<std::uint32_t>(
        t.kind == Terminal::Kind::kCluster ? t.id : num_clusters_ + t.id);
  }

  /// One incident net of a terminal, with the number of instances the
  /// terminal contributes to that net's bounding box.
  struct TermNet {
    std::uint32_t net = 0;
    std::uint32_t count = 0;
  };

  /// Nets incident to terminal `t` (each net listed once).
  const TermNet* terminal_nets_begin(std::size_t t) const {
    return term_nets_.data() + term_offset_[t];
  }
  const TermNet* terminal_nets_end(std::size_t t) const {
    return term_nets_.data() + term_offset_[t + 1];
  }

  /// Terminal ids of net `n`, driver first, repeats preserved.
  const std::uint32_t* net_terms_begin(std::size_t n) const {
    return net_terms_.data() + net_offset_[n];
  }
  const std::uint32_t* net_terms_end(std::size_t n) const {
    return net_terms_.data() + net_offset_[n + 1];
  }

  std::int64_t net_weight(std::size_t n) const { return net_weight_[n]; }

  std::size_t net_degree(std::size_t n) const {
    return net_offset_[n + 1] - net_offset_[n];
  }

 private:
  std::size_t num_clusters_ = 0;
  std::vector<std::int64_t> net_weight_;
  // terminal -> incident nets.
  std::vector<std::uint32_t> term_offset_;
  std::vector<TermNet> term_nets_;
  // net -> member terminals (for box rescans).
  std::vector<std::uint32_t> net_offset_;
  std::vector<std::uint32_t> net_terms_;
};

/// Exact running HPWL over integer terminal positions.
///
/// Usage: reset() with one position per terminal, then per attempted move
/// call propose() (up to two terminal relocations, e.g. a swap) followed
/// by exactly one of commit() / rollback().  propose_full() has identical
/// semantics but recomputes the whole cost from scratch — the
/// full-recompute baseline the benches race against.  Do not mix
/// propose() and propose_full() between resets: the full path leaves the
/// per-net boxes stale on commit.
class IncrementalHpwl {
 public:
  explicit IncrementalHpwl(const NetIndex& index);

  /// Rebuilds every box and the total cost from the given positions.
  void reset(std::vector<std::int32_t> xs, std::vector<std::int32_t> ys);

  std::int64_t cost() const { return cost_; }
  std::int32_t x(std::size_t t) const { return xs_[t]; }
  std::int32_t y(std::size_t t) const { return ys_[t]; }

  /// One terminal relocation; `x`/`y` are the new position.
  struct Move {
    std::uint32_t term = 0;
    std::int32_t x = 0;
    std::int32_t y = 0;
  };

  /// Applies the moves (terminals must be distinct) and returns the exact
  /// cost delta, touching only the nets incident to the moved terminals.
  std::int64_t propose(const Move* moves, std::size_t count);

  /// Same contract as propose(), but O(all nets): applies the moves and
  /// recomputes the total from scratch.
  std::int64_t propose_full(const Move* moves, std::size_t count);

  /// Keeps the proposed move: folds the delta into cost().
  void commit();
  /// Discards the proposed move: restores the pre-propose positions.
  void rollback();

  /// From-scratch recompute at the current positions (test oracle).
  std::int64_t recompute_cost() const;

 private:
  struct Box {
    std::int32_t min_x = 0, max_x = 0, min_y = 0, max_y = 0;
    /// Terminal instances sitting on each box edge; 0 on any edge after an
    /// incremental update means the box must be rescanned.
    std::int32_t n_min_x = 0, n_max_x = 0, n_min_y = 0, n_max_y = 0;

    std::int64_t half_perimeter() const {
      return static_cast<std::int64_t>(max_x - min_x) +
             static_cast<std::int64_t>(max_y - min_y);
    }
  };

  Box compute_box(std::size_t net) const;
  /// Min/max only — for nets below the always-rescan degree threshold,
  /// whose support counts are never consulted.
  Box compute_span(std::size_t net) const;

  const NetIndex& index_;
  std::vector<std::int32_t> xs_, ys_;
  std::int64_t cost_ = 0;

  std::vector<Box> boxes_;    ///< Committed per-net boxes.
  std::vector<Box> scratch_;  ///< Proposed boxes for touched nets.
  std::vector<std::uint8_t> dirty_;  ///< Scratch box needs a rescan.
  /// Nets small enough that a one-pass rescan beats maintaining edge
  /// support counts (a moved terminal of a 2..5-pin net almost always
  /// sits on a box edge, so the counts would force rescans anyway).
  std::vector<std::uint8_t> always_rescan_;
  /// 64-bit so a long anneal can never wrap the epoch into a stale stamp.
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> affected_;

  Move undo_[2];
  std::size_t undo_count_ = 0;
  std::int64_t pending_delta_ = 0;
  bool pending_full_ = false;
};

}  // namespace mcfpga::place
