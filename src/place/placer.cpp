#include "place/placer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "place/net_index.hpp"

namespace mcfpga::place {

namespace {

/// Grid/pad geometry shared (read-only) by every restart.
struct Geometry {
  std::size_t cells = 0;
  std::size_t pads = 0;
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::int32_t> pad_x, pad_y;
};

Geometry make_geometry(const arch::RoutingGraph& graph) {
  Geometry g;
  g.cells = graph.spec().num_cells();
  g.pads = graph.num_pads();
  g.width = graph.spec().width;
  g.height = graph.spec().height;
  g.pad_x.resize(g.pads);
  g.pad_y.resize(g.pads);
  for (std::size_t p = 0; p < g.pads; ++p) {
    const auto& node = graph.node(graph.pad(p));
    g.pad_x[p] = node.x;
    g.pad_y[p] = node.y;
  }
  return g;
}

/// VPR-style acceptance-rate-driven temperature multiplier.
double adaptive_cooling_factor(double accept_rate) {
  if (accept_rate > 0.96) {
    return 0.5;
  }
  if (accept_rate > 0.8) {
    return 0.9;
  }
  if (accept_rate > 0.15) {
    return 0.95;
  }
  return 0.8;
}

/// One independent annealing run.  Both delta-evaluation modes draw the
/// same RNG sequence and see the same exact integer deltas, so for a given
/// seed the trajectory — and the returned Placement — is bit-identical
/// whether options.incremental is set or not.
Placement anneal_one(const PlacementProblem& problem, const Geometry& geom,
                     const NetIndex& index, const PlacerOptions& options,
                     std::uint64_t seed, const Placement* initial) {
  Rng rng(seed);
  const std::size_t width = geom.width;

  // Initial placement: the warm-start placement when one is given (the
  // closure loop's re-place), otherwise clusters in scan order and I/Os
  // round-robin over pads.
  std::vector<std::size_t> cluster_cell(problem.num_clusters);
  std::vector<std::size_t> cell_cluster(geom.cells, SIZE_MAX);
  std::vector<std::size_t> io_pad(problem.num_io_terminals);
  std::vector<std::size_t> pad_io(geom.pads, SIZE_MAX);
  if (initial != nullptr) {
    for (std::size_t i = 0; i < problem.num_clusters; ++i) {
      const auto [x, y] = initial->cluster_pos[i];
      cluster_cell[i] = y * width + x;
      cell_cluster[cluster_cell[i]] = i;
    }
    for (std::size_t i = 0; i < problem.num_io_terminals; ++i) {
      io_pad[i] = initial->io_pads[i];
      pad_io[io_pad[i]] = i;
    }
  } else {
    for (std::size_t i = 0; i < problem.num_clusters; ++i) {
      cluster_cell[i] = i;
      cell_cluster[i] = i;
    }
    for (std::size_t i = 0; i < problem.num_io_terminals; ++i) {
      io_pad[i] =
          (i * geom.pads) / std::max<std::size_t>(problem.num_io_terminals, 1);
      // Resolve collisions linearly.
      while (pad_io[io_pad[i]] != SIZE_MAX) {
        io_pad[i] = (io_pad[i] + 1) % geom.pads;
      }
      pad_io[io_pad[i]] = i;
    }
  }

  IncrementalHpwl hp(index);
  {
    std::vector<std::int32_t> xs(index.num_terminals());
    std::vector<std::int32_t> ys(index.num_terminals());
    for (std::size_t i = 0; i < problem.num_clusters; ++i) {
      xs[i] = static_cast<std::int32_t>(cluster_cell[i] % width);
      ys[i] = static_cast<std::int32_t>(cluster_cell[i] / width);
    }
    for (std::size_t i = 0; i < problem.num_io_terminals; ++i) {
      xs[problem.num_clusters + i] = geom.pad_x[io_pad[i]];
      ys[problem.num_clusters + i] = geom.pad_y[io_pad[i]];
    }
    hp.reset(std::move(xs), std::move(ys));
  }

  std::int64_t cost = hp.cost();
  double temperature = std::max(
      1e-6,
      options.initial_temperature_factor * std::max<double>(
                                               static_cast<double>(cost), 1.0));
  const std::size_t moves_per_sweep =
      options.moves_per_sweep != 0
          ? options.moves_per_sweep
          : 16 * (problem.num_clusters + problem.num_io_terminals + 1);
  const double max_dim = static_cast<double>(std::max(geom.width, geom.height));
  double rlim = max_dim;

  IncrementalHpwl::Move moves[2];
  std::size_t evaluated = 0;
  std::size_t accepted = 0;
  // Shared metropolis tail for both move kinds: evaluate the packed
  // moves, accept (commit) or reject (rollback + caller-supplied revert
  // of the occupancy trackers).
  const auto attempt = [&](std::size_t num_moves, Rng& r, double temp,
                           const auto& revert) {
    const std::int64_t delta = options.incremental
                                   ? hp.propose(moves, num_moves)
                                   : hp.propose_full(moves, num_moves);
    ++evaluated;
    if (delta <= 0 ||
        r.next_double() < std::exp(-static_cast<double>(delta) / temp)) {
      hp.commit();
      cost += delta;
      ++accepted;
    } else {
      hp.rollback();
      revert();
    }
  };

  for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
    evaluated = 0;
    accepted = 0;
    for (std::size_t m = 0; m < moves_per_sweep; ++m) {
      const bool move_cluster =
          problem.num_io_terminals == 0 ||
          (problem.num_clusters > 0 && rng.next_bool(0.7));
      if (move_cluster && problem.num_clusters > 0) {
        const std::size_t a =
            static_cast<std::size_t>(rng.next_below(problem.num_clusters));
        const std::size_t old_cell = cluster_cell[a];
        std::size_t target_cell;
        if (options.range_limit) {
          // Uniform draw over the window around the cluster's cell.
          const std::size_t r =
              static_cast<std::size_t>(std::max(1.0, rlim));
          const std::size_t ax = old_cell % width;
          const std::size_t ay = old_cell / width;
          const std::size_t x0 = ax > r ? ax - r : 0;
          const std::size_t x1 = std::min(geom.width - 1, ax + r);
          const std::size_t y0 = ay > r ? ay - r : 0;
          const std::size_t y1 = std::min(geom.height - 1, ay + r);
          const std::size_t span_x = x1 - x0 + 1;
          const std::size_t pick = static_cast<std::size_t>(
              rng.next_below(span_x * (y1 - y0 + 1)));
          target_cell = (y0 + pick / span_x) * width + (x0 + pick % span_x);
        } else {
          target_cell = static_cast<std::size_t>(rng.next_below(geom.cells));
        }
        if (target_cell == old_cell) {
          continue;
        }
        const std::size_t other = cell_cluster[target_cell];
        // Apply move (swap or relocate).
        cluster_cell[a] = target_cell;
        cell_cluster[target_cell] = a;
        cell_cluster[old_cell] = other;
        if (other != SIZE_MAX) {
          cluster_cell[other] = old_cell;
        }
        moves[0] = {static_cast<std::uint32_t>(a),
                    static_cast<std::int32_t>(target_cell % width),
                    static_cast<std::int32_t>(target_cell / width)};
        std::size_t num_moves = 1;
        if (other != SIZE_MAX) {
          moves[1] = {static_cast<std::uint32_t>(other),
                      static_cast<std::int32_t>(old_cell % width),
                      static_cast<std::int32_t>(old_cell / width)};
          num_moves = 2;
        }
        attempt(num_moves, rng, temperature, [&]() {
          cluster_cell[a] = old_cell;
          cell_cluster[old_cell] = a;
          cell_cluster[target_cell] = other;
          if (other != SIZE_MAX) {
            cluster_cell[other] = target_cell;
          }
        });
      } else if (problem.num_io_terminals > 0) {
        const std::size_t a = static_cast<std::size_t>(
            rng.next_below(problem.num_io_terminals));
        const std::size_t target_pad =
            static_cast<std::size_t>(rng.next_below(geom.pads));
        const std::size_t old_pad = io_pad[a];
        if (target_pad == old_pad) {
          continue;
        }
        const std::size_t other = pad_io[target_pad];
        io_pad[a] = target_pad;
        pad_io[target_pad] = a;
        pad_io[old_pad] = other;
        if (other != SIZE_MAX) {
          io_pad[other] = old_pad;
        }
        moves[0] = {static_cast<std::uint32_t>(problem.num_clusters + a),
                    geom.pad_x[target_pad], geom.pad_y[target_pad]};
        std::size_t num_moves = 1;
        if (other != SIZE_MAX) {
          moves[1] = {static_cast<std::uint32_t>(problem.num_clusters + other),
                      geom.pad_x[old_pad], geom.pad_y[old_pad]};
          num_moves = 2;
        }
        attempt(num_moves, rng, temperature, [&]() {
          io_pad[a] = old_pad;
          pad_io[old_pad] = a;
          pad_io[target_pad] = other;
          if (other != SIZE_MAX) {
            io_pad[other] = target_pad;
          }
        });
      }
    }
    const double accept_rate =
        evaluated != 0
            ? static_cast<double>(accepted) / static_cast<double>(evaluated)
            : 0.0;
    temperature *= options.adaptive_cooling
                       ? adaptive_cooling_factor(accept_rate)
                       : options.cooling;
    if (options.range_limit) {
      rlim = std::clamp(rlim * (1.0 - 0.44 + accept_rate), 1.0, max_dim);
    }
  }

  Placement out;
  out.cluster_pos.resize(problem.num_clusters);
  for (std::size_t i = 0; i < problem.num_clusters; ++i) {
    out.cluster_pos[i] = {cluster_cell[i] % width, cluster_cell[i] / width};
  }
  out.io_pads = std::move(io_pad);
  out.cost = static_cast<double>(cost);
  return out;
}

}  // namespace

void PlacerOptions::validate() const {
  MCFPGA_REQUIRE(sweeps > 0, "placer needs at least one sweep");
  MCFPGA_REQUIRE(initial_temperature_factor > 0.0,
                 "initial_temperature_factor must be positive");
  MCFPGA_REQUIRE(cooling > 0.0 && cooling <= 1.0,
                 "cooling must lie in (0, 1]");
  MCFPGA_REQUIRE(num_restarts > 0, "placer needs at least one restart");
  MCFPGA_REQUIRE(timing_weight >= 0.0, "timing_weight must be non-negative");
}

std::int64_t effective_net_weight(const PlacementNet& net,
                                  const PlacerOptions& options) {
  std::int64_t w = static_cast<std::int64_t>(net.weight);
  if (options.timing_mode) {
    w *= 1 + static_cast<std::int64_t>(
                 std::llround(net.criticality * options.timing_weight));
  }
  return w;
}

double placement_cost(const PlacementProblem& problem,
                      const arch::RoutingGraph& graph,
                      const Placement& placement,
                      const PlacerOptions& options) {
  const auto terminal_pos = [&](const Terminal& t) -> std::pair<double, double> {
    if (t.kind == Terminal::Kind::kCluster) {
      return {static_cast<double>(placement.cluster_pos[t.id].first),
              static_cast<double>(placement.cluster_pos[t.id].second)};
    }
    const auto& node = graph.node(graph.pad(placement.io_pads[t.id]));
    return {static_cast<double>(node.x), static_cast<double>(node.y)};
  };
  double c = 0.0;
  for (const auto& net : problem.nets) {
    auto [min_x, min_y] = terminal_pos(net.driver);
    double max_x = min_x;
    double max_y = min_y;
    for (const auto& sink : net.sinks) {
      const auto [x, y] = terminal_pos(sink);
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
    c += static_cast<double>(effective_net_weight(net, options)) *
         ((max_x - min_x) + (max_y - min_y));
  }
  return c;
}

Placement place(const PlacementProblem& problem,
                const arch::RoutingGraph& graph,
                const PlacerOptions& options, const Placement* initial) {
  options.validate();
  if (initial != nullptr) {
    MCFPGA_REQUIRE(initial->cluster_pos.size() == problem.num_clusters &&
                       initial->io_pads.size() == problem.num_io_terminals,
                   "warm-start placement must match the problem");
    // Positions must land on this fabric with no overlaps: a placement
    // from a differently-sized fabric would index the occupancy maps out
    // of range inside the anneal.
    std::vector<std::uint8_t> cell_used(graph.spec().num_cells(), 0);
    for (const auto& [x, y] : initial->cluster_pos) {
      MCFPGA_REQUIRE(x < graph.spec().width && y < graph.spec().height,
                     "warm-start cluster position outside the fabric");
      std::uint8_t& used = cell_used[y * graph.spec().width + x];
      MCFPGA_REQUIRE(used == 0, "warm-start clusters overlap");
      used = 1;
    }
    std::vector<std::uint8_t> pad_used(graph.num_pads(), 0);
    for (const std::size_t p : initial->io_pads) {
      MCFPGA_REQUIRE(p < graph.num_pads(),
                     "warm-start pad index outside the fabric");
      MCFPGA_REQUIRE(pad_used[p] == 0, "warm-start pads overlap");
      pad_used[p] = 1;
    }
  }
  const std::size_t cells = graph.spec().num_cells();
  const std::size_t pads = graph.num_pads();
  if (problem.num_clusters > cells) {
    throw FlowError("placer: " + std::to_string(problem.num_clusters) +
                    " clusters exceed " + std::to_string(cells) + " cells");
  }
  if (problem.num_io_terminals > pads) {
    throw FlowError("placer: " + std::to_string(problem.num_io_terminals) +
                    " I/O terminals exceed " + std::to_string(pads) +
                    " pads");
  }
  for (const auto& net : problem.nets) {
    const auto check = [&](const Terminal& t) {
      if (t.kind == Terminal::Kind::kCluster) {
        MCFPGA_REQUIRE(t.id < problem.num_clusters, "net cluster id range");
      } else {
        MCFPGA_REQUIRE(t.id < problem.num_io_terminals, "net io id range");
      }
    };
    check(net.driver);
    for (const auto& s : net.sinks) {
      check(s);
    }
    MCFPGA_REQUIRE(net.criticality >= 0.0 && net.criticality <= 1.0,
                   "net criticality must lie in [0, 1]");
  }

  const NetIndex index(problem, options);
  const Geometry geom = make_geometry(graph);
  const std::size_t restarts = std::max<std::size_t>(1, options.num_restarts);

  using clock = std::chrono::steady_clock;
  std::vector<Placement> results(restarts);
  std::vector<double> seconds(restarts, 0.0);
  std::vector<std::exception_ptr> errors(restarts);
  const auto run_restart = [&](std::size_t r) {
    const auto start = clock::now();
    try {
      results[r] =
          anneal_one(problem, geom, index, options, options.seed + r, initial);
    } catch (...) {
      errors[r] = std::current_exception();
    }
    const std::chrono::duration<double> elapsed = clock::now() - start;
    seconds[r] = elapsed.count();
  };

  const std::size_t workers = effective_threads(options.num_threads, restarts);
  parallel_for_index(restarts, workers,
                     [&]() { return [&](std::size_t r) { run_restart(r); }; });
  // Re-raise in restart order (deterministic regardless of worker timing).
  for (std::size_t r = 0; r < restarts; ++r) {
    if (errors[r]) {
      std::rethrow_exception(errors[r]);
    }
  }

  // Best cost wins; ties break toward the lowest restart index, so the
  // winner never depends on which worker finished first.
  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r) {
    if (results[r].cost < results[best].cost) {
      best = r;
    }
  }
  std::vector<RestartStat> stats(restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    stats[r] = RestartStat{options.seed + r, results[r].cost, seconds[r]};
  }
  Placement out = std::move(results[best]);
  out.restart_stats = std::move(stats);
  out.winning_restart = best;
  return out;
}

}  // namespace mcfpga::place
