#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace mcfpga::place {

namespace {

struct State {
  const PlacementProblem* problem = nullptr;
  const arch::RoutingGraph* graph = nullptr;
  /// cluster -> cell index; cell -> cluster (SIZE_MAX = empty).
  std::vector<std::size_t> cluster_cell;
  std::vector<std::size_t> cell_cluster;
  /// io -> pad index; pad -> io (SIZE_MAX = free).
  std::vector<std::size_t> io_pad;
  std::vector<std::size_t> pad_io;

  std::pair<double, double> terminal_pos(const Terminal& t) const {
    if (t.kind == Terminal::Kind::kCluster) {
      const std::size_t cell = cluster_cell[t.id];
      const std::size_t w = graph->spec().width;
      return {static_cast<double>(cell % w), static_cast<double>(cell / w)};
    }
    const auto& node = graph->node(graph->pad(io_pad[t.id]));
    return {static_cast<double>(node.x), static_cast<double>(node.y)};
  }

  double net_cost(const PlacementNet& net) const {
    auto [min_x, min_y] = terminal_pos(net.driver);
    double max_x = min_x;
    double max_y = min_y;
    for (const auto& sink : net.sinks) {
      const auto [x, y] = terminal_pos(sink);
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
    return static_cast<double>(net.weight) * ((max_x - min_x) + (max_y - min_y));
  }

  double total_cost() const {
    double c = 0.0;
    for (const auto& net : problem->nets) {
      c += net_cost(net);
    }
    return c;
  }
};

}  // namespace

double placement_cost(const PlacementProblem& problem,
                      const arch::RoutingGraph& graph,
                      const Placement& placement) {
  State st;
  st.problem = &problem;
  st.graph = &graph;
  const std::size_t w = graph.spec().width;
  st.cluster_cell.resize(problem.num_clusters);
  for (std::size_t i = 0; i < problem.num_clusters; ++i) {
    st.cluster_cell[i] =
        placement.cluster_pos[i].second * w + placement.cluster_pos[i].first;
  }
  st.io_pad = placement.io_pads;
  return st.total_cost();
}

Placement place(const PlacementProblem& problem,
                const arch::RoutingGraph& graph,
                const PlacerOptions& options) {
  const std::size_t cells = graph.spec().num_cells();
  const std::size_t pads = graph.num_pads();
  if (problem.num_clusters > cells) {
    throw FlowError("placer: " + std::to_string(problem.num_clusters) +
                    " clusters exceed " + std::to_string(cells) + " cells");
  }
  if (problem.num_io_terminals > pads) {
    throw FlowError("placer: " + std::to_string(problem.num_io_terminals) +
                    " I/O terminals exceed " + std::to_string(pads) +
                    " pads");
  }
  for (const auto& net : problem.nets) {
    const auto check = [&](const Terminal& t) {
      if (t.kind == Terminal::Kind::kCluster) {
        MCFPGA_REQUIRE(t.id < problem.num_clusters, "net cluster id range");
      } else {
        MCFPGA_REQUIRE(t.id < problem.num_io_terminals, "net io id range");
      }
    };
    check(net.driver);
    for (const auto& s : net.sinks) {
      check(s);
    }
  }

  Rng rng(options.seed);
  State st;
  st.problem = &problem;
  st.graph = &graph;

  // Initial placement: clusters in scan order, I/Os round-robin over pads.
  st.cluster_cell.resize(problem.num_clusters);
  st.cell_cluster.assign(cells, SIZE_MAX);
  for (std::size_t i = 0; i < problem.num_clusters; ++i) {
    st.cluster_cell[i] = i;
    st.cell_cluster[i] = i;
  }
  st.io_pad.resize(problem.num_io_terminals);
  st.pad_io.assign(pads, SIZE_MAX);
  for (std::size_t i = 0; i < problem.num_io_terminals; ++i) {
    st.io_pad[i] = (i * pads) / std::max<std::size_t>(problem.num_io_terminals, 1);
    // Resolve collisions linearly.
    while (st.pad_io[st.io_pad[i]] != SIZE_MAX) {
      st.io_pad[i] = (st.io_pad[i] + 1) % pads;
    }
    st.pad_io[st.io_pad[i]] = i;
  }

  double cost = st.total_cost();
  double temperature =
      std::max(1e-6, options.initial_temperature_factor * std::max(cost, 1.0));
  const std::size_t moves_per_sweep =
      options.moves_per_sweep != 0
          ? options.moves_per_sweep
          : 16 * (problem.num_clusters + problem.num_io_terminals + 1);

  for (std::size_t sweep = 0; sweep < options.sweeps; ++sweep) {
    for (std::size_t m = 0; m < moves_per_sweep; ++m) {
      const bool move_cluster =
          problem.num_io_terminals == 0 ||
          (problem.num_clusters > 0 && rng.next_bool(0.7));
      if (move_cluster && problem.num_clusters > 0) {
        const std::size_t a =
            static_cast<std::size_t>(rng.next_below(problem.num_clusters));
        const std::size_t target_cell =
            static_cast<std::size_t>(rng.next_below(cells));
        const std::size_t old_cell = st.cluster_cell[a];
        if (target_cell == old_cell) {
          continue;
        }
        const std::size_t other = st.cell_cluster[target_cell];
        // Apply move (swap or relocate).
        st.cluster_cell[a] = target_cell;
        st.cell_cluster[target_cell] = a;
        st.cell_cluster[old_cell] = other;
        if (other != SIZE_MAX) {
          st.cluster_cell[other] = old_cell;
        }
        const double new_cost = st.total_cost();
        const double delta = new_cost - cost;
        if (delta <= 0 || rng.next_double() < std::exp(-delta / temperature)) {
          cost = new_cost;
        } else {  // revert
          st.cluster_cell[a] = old_cell;
          st.cell_cluster[old_cell] = a;
          st.cell_cluster[target_cell] = other;
          if (other != SIZE_MAX) {
            st.cluster_cell[other] = target_cell;
          }
        }
      } else if (problem.num_io_terminals > 0) {
        const std::size_t a = static_cast<std::size_t>(
            rng.next_below(problem.num_io_terminals));
        const std::size_t target_pad =
            static_cast<std::size_t>(rng.next_below(pads));
        const std::size_t old_pad = st.io_pad[a];
        if (target_pad == old_pad) {
          continue;
        }
        const std::size_t other = st.pad_io[target_pad];
        st.io_pad[a] = target_pad;
        st.pad_io[target_pad] = a;
        st.pad_io[old_pad] = other;
        if (other != SIZE_MAX) {
          st.io_pad[other] = old_pad;
        }
        const double new_cost = st.total_cost();
        const double delta = new_cost - cost;
        if (delta <= 0 || rng.next_double() < std::exp(-delta / temperature)) {
          cost = new_cost;
        } else {
          st.io_pad[a] = old_pad;
          st.pad_io[old_pad] = a;
          st.pad_io[target_pad] = other;
          if (other != SIZE_MAX) {
            st.io_pad[other] = target_pad;
          }
        }
      }
    }
    temperature *= options.cooling;
  }

  Placement out;
  out.cluster_pos.resize(problem.num_clusters);
  const std::size_t w = graph.spec().width;
  for (std::size_t i = 0; i < problem.num_clusters; ++i) {
    out.cluster_pos[i] = {st.cluster_cell[i] % w, st.cluster_cell[i] / w};
  }
  out.io_pads = st.io_pad;
  out.cost = cost;
  return out;
}

}  // namespace mcfpga::place
