// In-memory content-addressed artifact store: a bounded, LRU-evicted map
// from 64-bit content keys (cache/key.hpp) to immutable stage artifacts,
// plus the pattern interner that stores each distinct switch/bitstream
// ContextPattern once across every cached design.
//
// The cache is type-erased so one store serves every stage's artifact
// type; find<T>() treats a key whose stored type differs as a miss (keys
// are content hashes, so this only triggers on a 64-bit collision).
// Artifacts are handed out as shared_ptr<const T>: eviction drops the
// cache's reference, never a consumer's, and artifacts holding interned
// pattern ids release them from their destructors (PatternSet), so LRU
// eviction and interning compose without dangling ids.
//
// Neither class is thread-safe; the compile service serializes access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "common/bitvector.hpp"
#include "config/pattern.hpp"

namespace mcfpga::cache {

/// Deduplicating, refcounted store of ContextPatterns.  Identical patterns
/// (by per-context values) share one id; freed ids are recycled
/// lowest-first, so id assignment is deterministic for a given
/// intern/release sequence.
class PatternInterner {
 public:
  using Id = std::uint32_t;

  /// Returns the id for `pattern`, storing it on first sight; the caller
  /// owns one reference (release() it).
  Id intern(const config::ContextPattern& pattern);
  /// Adds a reference to an existing id.
  void retain(Id id);
  /// Drops a reference; the last release recycles the id.
  void release(Id id);

  const config::ContextPattern& pattern(Id id) const;
  std::size_t ref_count(Id id) const;

  /// Distinct live patterns.
  std::size_t num_live() const { return index_.size(); }
  /// Total intern() calls that found an existing pattern.
  std::size_t dedup_hits() const { return dedup_hits_; }
  /// Approximate heap bytes of the live patterns.
  std::size_t pattern_bytes() const;

 private:
  struct Slot {
    /// Placeholder shape (smallest valid context count); overwritten by
    /// the first intern() into this slot.
    config::ContextPattern pattern{2};
    std::size_t refs = 0;
  };
  Slot& checked_slot(Id id);
  const Slot& checked_slot(Id id) const;

  std::vector<Slot> slots_;
  std::unordered_map<BitVector, Id, BitVectorHash> index_;
  std::deque<Id> free_ids_;
  std::size_t dedup_hits_ = 0;
};

/// Order-preserving owning collection of interner ids (duplicates
/// allowed).  Copying retains every id, destruction releases them — the
/// RAII edge that keeps cached artifacts and the interner consistent
/// under LRU eviction.
class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(PatternInterner* interner) : interner_(interner) {}
  PatternSet(const PatternSet& other);
  PatternSet& operator=(const PatternSet& other);
  PatternSet(PatternSet&& other) noexcept;
  PatternSet& operator=(PatternSet&& other) noexcept;
  ~PatternSet() { clear(); }

  void add(const config::ContextPattern& pattern) {
    ids_.push_back(interner_->intern(pattern));
  }
  const config::ContextPattern& pattern(std::size_t i) const {
    return interner_->pattern(ids_.at(i));
  }
  std::size_t size() const { return ids_.size(); }
  const std::vector<PatternInterner::Id>& ids() const { return ids_; }
  void clear();

 private:
  PatternInterner* interner_ = nullptr;
  std::vector<PatternInterner::Id> ids_;
};

/// Bounded LRU store of immutable artifacts keyed by content hash.
class ArtifactCache {
 public:
  struct Limits {
    std::size_t max_entries = 64;
    std::size_t max_bytes = 512ull << 20;
  };
  struct Counters {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t stores = 0;
  };

  ArtifactCache() = default;
  explicit ArtifactCache(Limits limits) : limits_(limits) {}

  /// Looks `key` up; a hit refreshes its LRU position.
  template <typename T>
  std::shared_ptr<const T> find(std::uint64_t key) {
    Entry* entry = find_entry(key, typeid(T));
    if (entry == nullptr) {
      return nullptr;
    }
    return std::static_pointer_cast<const T>(entry->value);
  }

  /// Inserts (or replaces) `key`, then evicts least-recently-used entries
  /// until the limits hold again.  `bytes` is the caller's size estimate
  /// used for the byte bound.
  template <typename T>
  void store(std::uint64_t key, std::shared_ptr<const T> value,
             std::size_t bytes) {
    store_entry(key,
                std::static_pointer_cast<const void>(std::move(value)),
                typeid(T), bytes);
  }

  const Counters& counters() const { return counters_; }
  const Limits& limits() const { return limits_; }
  std::size_t num_entries() const { return entries_.size(); }
  std::size_t bytes() const { return bytes_; }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    const std::type_info* type = nullptr;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };

  Entry* find_entry(std::uint64_t key, const std::type_info& type);
  void store_entry(std::uint64_t key, std::shared_ptr<const void> value,
                   const std::type_info& type, std::size_t bytes);
  void evict_over_limit();

  Limits limits_{};
  Counters counters_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Front = most recently used.
  std::list<std::uint64_t> lru_;
  std::size_t bytes_ = 0;
};

}  // namespace mcfpga::cache
