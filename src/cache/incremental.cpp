#include "cache/incremental.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "cache/key.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "config/context_id.hpp"
#include "core/closure.hpp"
#include "core/timing_build.hpp"
#include "route/router_core.hpp"

namespace mcfpga::cache {

namespace {

using Clock = std::chrono::steady_clock;

void push_timing(core::FlowContext& ctx, const char* name,
                 Clock::time_point start) {
  ctx.stage_timings.push_back(core::StageTiming{
      name, std::chrono::duration<double>(Clock::now() - start).count()});
}

/// The delta path's analogue of run_pipeline's observer protocol: check
/// the budget before a manual stage block, report its wall clock after.
void observe_start(core::StageObserver* observer, const char* stage) {
  if (observer != nullptr && !observer->on_stage_start(stage)) {
    throw FlowCancelled(std::string("compile abandoned before stage '") +
                        stage + "'");
  }
}

void observe_done(core::StageObserver* observer, const char* stage,
                  Clock::time_point start) {
  if (observer != nullptr) {
    observer->on_stage_done(
        stage, std::chrono::duration<double>(Clock::now() - start).count());
  }
}

/// Content hash of the effective placement problem: structure, weights,
/// and the criticalities the flow would anneal under.  Placement is a
/// pure function of (problem, grown fabric, placer options, seed), so
/// matching hashes — with the fabric and options separately verified —
/// let the delta path reuse the previous placement verbatim.
std::uint64_t hash_placement_problem(const core::PlacementBuild& build) {
  common::Hasher h;
  const place::PlacementProblem& p = build.problem;
  h.size(p.num_clusters).size(p.num_io_terminals).size(p.nets.size());
  for (const place::PlacementNet& net : p.nets) {
    h.u64(static_cast<std::uint64_t>(net.driver.kind))
        .size(net.driver.id)
        .size(net.weight)
        .f64(net.criticality)
        .size(net.sinks.size());
    for (const place::Terminal& t : net.sinks) {
      h.u64(static_cast<std::uint64_t>(t.kind)).size(t.id);
    }
  }
  return h.digest();
}

/// Builds the effective placement problem of a clustered context (the
/// same weighting PlaceStage would apply) and returns it with its hash.
std::pair<core::PlacementBuild, std::uint64_t> effective_placement_problem(
    core::FlowContext& ctx) {
  core::PlacementBuild build = core::build_placement_problem(ctx);
  if (ctx.options.placer.timing_mode) {
    core::apply_class_criticality(build,
                                  core::logic_depth_class_criticality(ctx));
  }
  const std::uint64_t hash = hash_placement_problem(build);
  return {std::move(build), hash};
}

/// Canonical "source|sorted sinks" identity of a physical net; empty when
/// the net has duplicate sinks (those never match, so they re-route).
std::string physical_net_key(arch::NodeId source,
                             std::vector<arch::NodeId> sinks) {
  std::sort(sinks.begin(), sinks.end());
  if (std::adjacent_find(sinks.begin(), sinks.end()) != sinks.end()) {
    return {};
  }
  std::string key = std::to_string(source);
  for (const arch::NodeId s : sinks) {
    key += '|';
    key += std::to_string(s);
  }
  return key;
}

bool is_wire(const arch::RoutingGraph& graph, arch::NodeId node) {
  return graph.node(node).kind == arch::NodeKind::kWire;
}

// --- incremental ProgramStage -----------------------------------------------

/// Whether cluster k's programming recipe is unchanged between the cached
/// compile and this one, WITHOUT rebuilding its LUT tables: position,
/// mode, slot membership, pin assignment, and every slot's plane entries
/// (fanin classes + truth table + plane set) must match.  Comparing the
/// recipe is O(slots * entries); rebuilding is O(2^inputs) per entry.
bool lb_recipe_unchanged(const core::FlowContext& ctx,
                         const core::CompiledDesign& prev, std::size_t k) {
  const core::Cluster& now = ctx.clusters[k];
  const core::Cluster& old = prev.clusters[k];
  if (ctx.placement.cluster_pos[k] != prev.placement.cluster_pos[k]) {
    return false;
  }
  if (now.mode != old.mode || now.slots != old.slots ||
      now.pin_signals != old.pin_signals) {
    return false;
  }
  for (const std::size_t s : now.slots) {
    if (s >= prev.slot_output.size() || s >= prev.planes.slots.size() ||
        ctx.slot_output[s] != prev.slot_output[s]) {
      return false;
    }
    const auto& a = ctx.planes.slots[s].entries;
    const auto& b = prev.planes.slots[s].entries;
    if (a.size() != b.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].planes != b[i].planes ||
          a[i].use.fanin_classes != b[i].use.fanin_classes ||
          !(a[i].use.truth_table == b[i].use.truth_table)) {
        return false;
      }
    }
  }
  return true;
}

struct ProgramDelta {
  std::size_t rows_reused = 0;
  std::size_t rows_reprogrammed = 0;
  bool full_reprogram = false;
};

/// ProgramStage with row-level reuse against the cached design.  The full
/// bitstream is positional — routing rows in SwitchId order, then each
/// LB's LUT + mode rows in cluster order — so a switch whose pattern
/// survived the edit, and a cluster whose recipe did, copy their cached
/// rows verbatim; only changed resources re-derive tables and re-emit
/// rows.  Produces a bitstream bit-identical to ProgramStage::run.  When
/// the cached row ledger cannot be aligned (never expected from this
/// pipeline's gates), falls back to a full reprogram and says so.
ProgramDelta run_program_incremental(core::FlowContext& ctx,
                                     const core::CompiledDesign& prev) {
  ProgramDelta out;
  const std::size_t n = ctx.spec.num_contexts;
  const config::Bitstream& pb = prev.full_bitstream;
  const std::size_t num_switches = ctx.routing.switch_patterns.size();

  const auto full_reprogram = [&]() {
    ctx.program = sim::FabricProgram{};
    core::ProgramStage().run(ctx);
    out = ProgramDelta{};
    out.rows_reprogrammed = ctx.full_bitstream.num_rows();
    out.full_reprogram = true;
    return out;
  };

  if (prev.program.lbs.size() != ctx.clusters.size() ||
      prev.routing.switch_patterns.size() != num_switches ||
      pb.num_contexts() != n || pb.num_rows() < num_switches) {
    return full_reprogram();
  }

  ctx.program.switch_patterns = ctx.routing.switch_patterns;
  config::Bitstream bs(n);
  // Routing rows, exactly as RouteResult::to_bitstream orders them.
  for (std::size_t s = 0; s < num_switches; ++s) {
    const config::BitstreamRow& row = pb.row(s);
    if (ctx.routing.switch_patterns[s] == prev.routing.switch_patterns[s]) {
      bs.add_row(row.name, row.kind, row.pattern);
      ++out.rows_reused;
    } else {
      bs.add_row(row.name, config::ResourceKind::kRoutingSwitch,
                 ctx.routing.switch_patterns[s]);
      ++out.rows_reprogrammed;
    }
  }

  // LB rows: walk the cached bitstream cluster by cluster (each cluster's
  // cached row count follows from its cached LbConfig), reusing the whole
  // row block when the recipe is untouched.
  std::size_t cursor = num_switches;
  for (std::size_t k = 0; k < ctx.clusters.size(); ++k) {
    const sim::LbConfig& cached = prev.program.lbs[k];
    std::size_t cached_rows = config::num_id_bits(n);
    for (const auto& o : cached.outputs) {
      if (o.used) {
        cached_rows += std::size_t{1} << cached.mode.inputs;
      }
    }
    if (cursor + cached_rows > pb.num_rows()) {
      return full_reprogram();
    }
    if (lb_recipe_unchanged(ctx, prev, k)) {
      for (std::size_t r = 0; r < cached_rows; ++r) {
        const config::BitstreamRow& row = pb.row(cursor + r);
        bs.add_row(row.name, row.kind, row.pattern);
      }
      out.rows_reused += cached_rows;
      ctx.program.lbs.push_back(cached);
    } else {
      sim::LbConfig cfg = core::build_lb_config(ctx, k);
      out.rows_reprogrammed += core::append_lb_rows(bs, cfg, n);
      ctx.program.lbs.push_back(std::move(cfg));
    }
    cursor += cached_rows;
  }
  if (cursor != pb.num_rows()) {
    return full_reprogram();
  }

  for (const auto& [name, term] : ctx.input_terminals) {
    ctx.program.input_pads[name] = ctx.placement.io_pads[term];
  }
  for (const auto& [name, term] : ctx.output_terminals) {
    ctx.program.output_pads[name] = ctx.placement.io_pads[term];
  }
  ctx.full_bitstream = std::move(bs);
  return out;
}

}  // namespace

NetlistDiff diff_netlists(const netlist::MultiContextNetlist& before,
                          const netlist::MultiContextNetlist& after) {
  NetlistDiff d;
  const std::size_t nc = std::max(before.num_contexts(), after.num_contexts());
  d.changed_per_context.assign(nc, 0);
  for (std::size_t c = 0; c < nc; ++c) {
    if (c >= before.num_contexts() || c >= after.num_contexts()) {
      const netlist::Dfg& only = c < before.num_contexts()
                                     ? before.context(c)
                                     : after.context(c);
      d.changed_per_context[c] = only.num_nodes();
      d.changed_nodes += only.num_nodes();
      d.total_nodes += only.num_nodes();
      continue;
    }
    const netlist::Dfg& a = before.context(c);
    const netlist::Dfg& b = after.context(c);
    const std::size_t common_nodes = std::min(a.num_nodes(), b.num_nodes());
    std::size_t changed = std::max(a.num_nodes(), b.num_nodes()) - common_nodes;
    for (std::size_t i = 0; i < common_nodes; ++i) {
      const netlist::DfgNode& x = a.node(static_cast<netlist::NodeRef>(i));
      const netlist::DfgNode& y = b.node(static_cast<netlist::NodeRef>(i));
      if (x.type != y.type || x.name != y.name || x.fanins != y.fanins ||
          x.truth_table != y.truth_table) {
        ++changed;
      }
    }
    const std::size_t common_outs =
        std::min(a.outputs().size(), b.outputs().size());
    changed += std::max(a.outputs().size(), b.outputs().size()) - common_outs;
    for (std::size_t i = 0; i < common_outs; ++i) {
      if (a.outputs()[i].node != b.outputs()[i].node ||
          a.outputs()[i].name != b.outputs()[i].name) {
        ++changed;
      }
    }
    d.changed_per_context[c] = changed;
    d.changed_nodes += changed;
    d.total_nodes += std::max(a.num_nodes(), b.num_nodes());
  }
  return d;
}

Compiled CompileService::compile(const netlist::MultiContextNetlist& netlist,
                                 const arch::FabricSpec& spec,
                                 const core::CompileOptions& options,
                                 core::StageObserver* observer) {
  core::FlowContext ctx = core::make_flow_context(netlist, spec, options);
  cache_.attach(ctx);
  ctx.observer = observer;
  const ArtifactCache::Counters before = cache_.stats().counters;
  core::run_pipeline(ctx, options.closure_iterations >= 2
                              ? core::closure_pipeline()
                              : core::default_pipeline());
  Compiled out;
  out.netlist = netlist;
  out.spec = spec;
  out.options = options;
  out.placement_problem_hash = effective_placement_problem(ctx).second;
  out.design = core::finalize_design(std::move(ctx));
  fill_cache_stats(out.design, before);
  return out;
}

Compiled CompileService::fallback(const Compiled& previous,
                                  const netlist::MultiContextNetlist& edited,
                                  const core::CompileOptions& options,
                                  const char* reason,
                                  core::StageObserver* observer) {
  // Counted before the compile so fill_cache_stats (inside it) already
  // sees this event in the breakdown it copies out.
  count_fallback(reason);
  Compiled full = compile(edited, previous.spec, options, observer);
  full.design.cache.delta_fallback = reason;
  return full;
}

void CompileService::count_fallback(const std::string& reason) {
  const std::lock_guard<std::mutex> lock(fallback_mu_);
  ++fallback_reasons_[reason];
}

std::map<std::string, std::size_t> CompileService::fallback_reasons() const {
  const std::lock_guard<std::mutex> lock(fallback_mu_);
  return fallback_reasons_;
}

Compiled CompileService::compile_incremental(
    const Compiled& previous, const netlist::MultiContextNetlist& edited,
    const core::CompileOptions& options, core::StageObserver* observer) {
  if (hash_compile_options(options) !=
      hash_compile_options(previous.options)) {
    return fallback(previous, edited, options, "compile options changed",
                    observer);
  }
  if (options.closure_iterations >= 2) {
    return fallback(previous, edited, options, "closure loop requested",
                    observer);
  }
  const NetlistDiff diff = diff_netlists(previous.netlist, edited);
  if (diff.changed_nodes == 0) {
    // Bit-for-bit the previous design: let the stage cache replay it.
    return compile(edited, previous.spec, options, observer);
  }
  if (diff.fraction() > options_.max_diff_fraction) {
    return fallback(previous, edited, options, "diff exceeds threshold",
                    observer);
  }
  if (options.router.cross_context_mode != route::CrossContextMode::kOff) {
    // A cross-context-negotiated design keeps its delta path only when
    // the edit stays inside ONE context: the other contexts' negotiated
    // trees then match verbatim and the partial re-route cannot disturb
    // the cross-context bargain they struck.  An edit spanning contexts
    // would silently drop the negotiation, so that takes the full
    // pipeline instead.
    std::size_t touched_contexts = 0;
    for (const std::size_t changed : diff.changed_per_context) {
      touched_contexts += changed > 0 ? 1 : 0;
    }
    if (touched_contexts > 1) {
      return fallback(previous, edited, options,
                      "negotiated multi-context edit", observer);
    }
  }

  // --- front-end (cheap, cached): techmap / sharing / planes / cluster ----
  core::FlowContext ctx =
      core::make_flow_context(edited, previous.spec, options);
  cache_.attach(ctx);
  ctx.observer = observer;
  const ArtifactCache::Counters counters_before = cache_.stats().counters;
  const auto& pipeline = core::default_pipeline();
  core::run_pipeline(
      ctx, std::vector<const core::Stage*>(pipeline.begin(),
                                           pipeline.begin() + 4));
  // The delta path's place/route outputs are NOT full-pipeline artifacts;
  // stop the hook so they are never published under full-compile keys.
  ctx.cache = nullptr;
  ctx.cache_key_valid = false;

  // --- compatibility gates: the previous physical world must still fit --
  observe_start(observer, "place");
  const Clock::time_point place_start = Clock::now();
  core::size_fabric_and_build_graph(ctx);
  if (ctx.spec.width != previous.design.fabric.width ||
      ctx.spec.height != previous.design.fabric.height) {
    return fallback(previous, edited, options, "fabric resized", observer);
  }
  if (ctx.clusters.size() != previous.design.placement.cluster_pos.size()) {
    return fallback(previous, edited, options, "cluster count changed",
                    observer);
  }
  if (ctx.num_terminals != previous.design.placement.io_pads.size()) {
    return fallback(previous, edited, options, "terminal count changed",
                    observer);
  }

  // --- placement: verbatim reuse or warm-start refine ---------------------
  auto [build, problem_hash] = effective_placement_problem(ctx);
  const std::size_t moves_per_sweep =
      options.placer.moves_per_sweep != 0
          ? options.placer.moves_per_sweep
          : 16 * (ctx.clusters.size() + ctx.num_terminals);
  const std::size_t cold_moves =
      options.placer.sweeps * moves_per_sweep *
      std::max<std::size_t>(1, options.placer.num_restarts);
  std::size_t moves_saved = 0;
  if (problem_hash == previous.placement_problem_hash) {
    ctx.placement = previous.design.placement;
    moves_saved = cold_moves;
  } else {
    place::PlacerOptions warm = options.placer;
    warm.seed = core::resolved_placer_seed(options);
    warm.initial_temperature_factor *= options_.warm_temperature_scale;
    warm.sweeps = std::max<std::size_t>(
        1, options.placer.sweeps / options_.warm_sweep_divisor);
    warm.num_restarts = 1;  // the warm start replaces restart diversity
    ctx.placement = place::place(build.problem, *ctx.graph, warm,
                                 &previous.design.placement);
    moves_saved = cold_moves - std::min(cold_moves,
                                        warm.sweeps * moves_per_sweep);
  }
  push_timing(ctx, "place", place_start);
  observe_done(observer, "place", place_start);

  // --- routing: keep matching trees, rip up and re-route the rest --------
  observe_start(observer, "route");
  const Clock::time_point route_start = Clock::now();
  core::FlowTiming ft = ctx.flow_timing ? std::move(*ctx.flow_timing)
                                        : core::build_flow_timing(ctx);
  ctx.flow_timing.reset();
  ctx.timing_specs = std::move(ft.specs);
  ctx.net_class = std::move(ft.net_class);
  ctx.sink_keys = std::move(ft.sink_keys);
  ctx.nets_per_context = core::build_route_nets(ctx);

  const arch::RoutingGraph& graph = *ctx.graph;
  const std::size_t n = ctx.spec.num_contexts;
  const std::size_t num_nodes = static_cast<std::size_t>(graph.num_nodes());

  // A net keeps its previous tree iff a previous net had exactly its
  // physical endpoints (source + sink set) — which also demands that the
  // placement of every touched cluster/pad is unchanged.
  struct ContextPlan {
    std::vector<std::ptrdiff_t> kept;  ///< New net -> previous index, -1.
    std::vector<std::size_t> invalid;  ///< New nets needing a route.
  };
  std::vector<ContextPlan> plans(n);
  std::size_t total_nets = 0;
  std::size_t total_invalidated = 0;
  for (std::size_t c = 0; c < n; ++c) {
    const auto& prev_nets = previous.design.routing.nets[c];
    std::unordered_map<std::string, std::size_t> prev_by_key;
    prev_by_key.reserve(prev_nets.size());
    for (std::size_t j = 0; j < prev_nets.size(); ++j) {
      std::vector<arch::NodeId> sinks;
      sinks.reserve(prev_nets[j].paths.size());
      for (const route::RoutedPath& path : prev_nets[j].paths) {
        sinks.push_back(path.sink);
      }
      const std::string key =
          physical_net_key(prev_nets[j].source, std::move(sinks));
      if (!key.empty()) {
        prev_by_key.emplace(key, j);
      }
    }
    ContextPlan& plan = plans[c];
    const auto& nets = ctx.nets_per_context[c];
    plan.kept.assign(nets.size(), -1);
    total_nets += nets.size();
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const std::string key = physical_net_key(nets[i].source, nets[i].sinks);
      const auto it = key.empty() ? prev_by_key.end() : prev_by_key.find(key);
      if (it != prev_by_key.end()) {
        plan.kept[i] = static_cast<std::ptrdiff_t>(it->second);
        prev_by_key.erase(it);  // one previous tree serves one new net
      } else {
        plan.invalid.push_back(i);
      }
    }
    total_invalidated += plan.invalid.size();
  }
  if (total_nets > 0 &&
      static_cast<double>(total_invalidated) >
          options_.max_invalidated_fraction *
              static_cast<double>(total_nets)) {
    return fallback(previous, edited, options, "too many nets invalidated",
                    observer);
  }

  // Single engine, contexts in order: deterministic regardless of any
  // worker-count option (and the re-route sets are small by construction).
  route::RouterCore router_core(graph, options.router);
  std::vector<route::RouterCore::ContextResult> results(n);
  std::vector<double> pressure;
  for (std::size_t c = 0; c < n; ++c) {
    const ContextPlan& plan = plans[c];
    const auto& nets = ctx.nets_per_context[c];
    const auto& prev_nets = previous.design.routing.nets[c];
    route::RouterCore::ContextResult& r = results[c];
    r.converged = true;
    r.nets.resize(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (plan.kept[i] < 0) {
        continue;
      }
      const route::RoutedNet& prev =
          prev_nets[static_cast<std::size_t>(plan.kept[i])];
      std::map<arch::NodeId, const route::RoutedPath*> by_sink;
      for (const route::RoutedPath& path : prev.paths) {
        by_sink.emplace(path.sink, &path);
      }
      route::RoutedNet out;
      out.name = nets[i].name;
      out.source = nets[i].source;
      out.paths.reserve(nets[i].sinks.size());
      // The previous paths follow the previous sink order; re-pair them
      // with the new sink order so paths stay parallel to the timing spec.
      for (const arch::NodeId sink : nets[i].sinks) {
        out.paths.push_back(*by_sink.at(sink));
      }
      r.nets[i] = std::move(out);
    }

    if (!plan.invalid.empty()) {
      pressure.assign(num_nodes, 0.0);
      for (std::size_t i = 0; i < nets.size(); ++i) {
        if (plan.kept[i] < 0) {
          continue;
        }
        for (const route::RoutedPath& path : r.nets[i].paths) {
          for (const arch::EdgeId e : path.edges) {
            const arch::RREdge& edge = graph.edge(e);
            if (is_wire(graph, edge.from)) {
              pressure[static_cast<std::size_t>(edge.from)] =
                  options_.keep_pressure;
            }
            if (is_wire(graph, edge.to)) {
              pressure[static_cast<std::size_t>(edge.to)] =
                  options_.keep_pressure;
            }
          }
        }
      }
      std::vector<route::RouteNet> sub_nets;
      sub_nets.reserve(plan.invalid.size());
      timing::ContextTimingSpec sub_spec;
      sub_spec.num_nodes = ctx.timing_specs[c].num_nodes;
      sub_spec.se_delay = ctx.timing_specs[c].se_delay;
      sub_spec.lut_delay = ctx.timing_specs[c].lut_delay;
      for (const std::size_t i : plan.invalid) {
        sub_nets.push_back(nets[i]);
        sub_spec.nets.push_back(ctx.timing_specs[c].nets[i]);
      }
      route::RouterCore::ContextResult pass = router_core.route_pass(
          sub_nets, options.router.timing_mode ? &sub_spec : nullptr,
          nullptr, &pressure, nullptr);
      if (!pass.converged) {
        return fallback(previous, edited, options,
                        "delta route did not converge", observer);
      }
      r.iterations = pass.iterations;
      r.heap_pushes = pass.heap_pushes;
      r.heap_pops = pass.heap_pops;
      r.stale_pops = pass.stale_pops;
      r.nodes_expanded = pass.nodes_expanded;
      for (std::size_t k = 0; k < plan.invalid.size(); ++k) {
        r.nets[plan.invalid[k]] = std::move(pass.nets[k]);
      }
    }

    // Replicate RouterCore's commit accounting exactly, over kept and
    // re-routed trees alike, so summaries match a full route of the same
    // final trees.
    for (const route::RoutedNet& net : r.nets) {
      for (const route::RoutedPath& path : net.paths) {
        r.switches_crossed += path.switch_count();
        r.wire_nodes_used += path.edges.size();
      }
    }

    // Validity: within a context each wire node carries one net.  The
    // pressure makes a violation practically impossible, but a silent
    // short would corrupt the bitstream, so verify and fall back instead
    // of trusting the heuristic.
    std::vector<std::int32_t> owner(num_nodes, -1);
    for (std::size_t i = 0; i < r.nets.size(); ++i) {
      for (const route::RoutedPath& path : r.nets[i].paths) {
        for (const arch::EdgeId e : path.edges) {
          const arch::RREdge& edge = graph.edge(e);
          for (const arch::NodeId node : {edge.from, edge.to}) {
            if (!is_wire(graph, node)) {
              continue;
            }
            auto& slot = owner[static_cast<std::size_t>(node)];
            if (slot != -1 && slot != static_cast<std::int32_t>(i)) {
              return fallback(previous, edited, options,
                              "kept/re-routed wire overlap", observer);
            }
            slot = static_cast<std::int32_t>(i);
          }
        }
      }
    }
  }

  ctx.routing = route::merge_context_results(graph, std::move(results));
  MCFPGA_CHECK(ctx.routing.success, "delta merge lost convergence");
  push_timing(ctx, "route", route_start);
  observe_done(observer, "route", route_start);

  observe_start(observer, "timing");
  const Clock::time_point timing_start = Clock::now();
  core::TimingStage().run(ctx);
  for (std::size_t c = 0; c < n; ++c) {
    ctx.context_stats[c].nets_invalidated = plans[c].invalid.size();
    ctx.context_stats[c].nets_rerouted = plans[c].invalid.size();
  }
  push_timing(ctx, "timing", timing_start);
  observe_done(observer, "timing", timing_start);

  observe_start(observer, "program");
  const Clock::time_point program_start = Clock::now();
  const ProgramDelta program_delta =
      run_program_incremental(ctx, previous.design);
  push_timing(ctx, "program", program_start);
  observe_done(observer, "program", program_start);

  Compiled out;
  out.netlist = edited;
  out.spec = previous.spec;
  out.options = options;
  out.placement_problem_hash = problem_hash;
  out.design = core::finalize_design(std::move(ctx));
  fill_cache_stats(out.design, counters_before);
  out.design.cache.delta = true;
  out.design.cache.nets_invalidated = total_invalidated;
  out.design.cache.nets_rerouted = total_invalidated;
  out.design.cache.anneal_moves_saved = moves_saved;
  out.design.cache.program_rows_reused = program_delta.rows_reused;
  out.design.cache.program_rows_reprogrammed =
      program_delta.rows_reprogrammed;
  if (program_delta.full_reprogram) {
    count_fallback("full reprogram: rows could not be aligned");
    out.design.cache.delta_fallback = "full reprogram: cached bitstream "
                                      "rows could not be aligned";
    out.design.cache.delta_fallback_counts = fallback_reasons();
  }
  return out;
}

void CompileService::fill_cache_stats(
    core::CompiledDesign& design,
    const ArtifactCache::Counters& before) const {
  const FlowCache::Stats now = cache_.stats();
  design.cache.hits = now.counters.hits - before.hits;
  design.cache.misses = now.counters.misses - before.misses;
  design.cache.evictions = now.counters.evictions;
  design.cache.interned_patterns = now.live_patterns;
  design.cache.pattern_dedup_hits = now.pattern_dedup_hits;
  design.cache.delta_fallback_counts = fallback_reasons();
}

}  // namespace mcfpga::cache
