// FlowCache: the content-addressed stage cache behind the compile
// pipeline's StageCacheHook seam (core/stages.hpp).
//
// attach() seeds a FlowContext's key chain with the flow base key
// (netlist x fabric x options, cache/key.hpp); run_pipeline() then calls
// before_stage()/after_stage() around every stage.  before_stage advances
// the chain (key(stage N) folds in key(stage N-1) and the stage name) and
// looks the stage's artifact up; a hit restores the stage's outputs into
// the context — bit-identically to running the stage, which is what
// tests/test_cache.cpp's fingerprint comparisons enforce — and a miss
// lets the stage run, after which after_stage publishes its outputs.
//
// Stored artifacts are immutable value snapshots.  Switch patterns and
// bitstream rows go through the PatternInterner, so a corpus of cached
// designs stores each distinct ContextPattern once; artifacts hold
// refcounted ids (PatternSet) and release them when evicted.
#pragma once

#include "cache/artifact_cache.hpp"
#include "core/stages.hpp"

namespace mcfpga::cache {

class FlowCache : public core::StageCacheHook {
 public:
  explicit FlowCache(ArtifactCache::Limits limits = {})
      : artifacts_(limits) {}

  /// Seeds ctx.cache_key from ctx's inputs and points ctx.cache at this.
  void attach(core::FlowContext& ctx);

  bool before_stage(const char* stage, core::FlowContext& ctx) override;
  void after_stage(const char* stage, core::FlowContext& ctx) override;

  ArtifactCache& artifacts() { return artifacts_; }
  const ArtifactCache& artifacts() const { return artifacts_; }
  PatternInterner& patterns() { return interner_; }
  const PatternInterner& patterns() const { return interner_; }

 private:
  // Declaration order is load-bearing: cached artifacts hold PatternSets
  // that release interner ids from their destructors, so the interner
  // must be destroyed AFTER the artifact store.
  PatternInterner interner_;
  ArtifactCache artifacts_;
};

}  // namespace mcfpga::cache
