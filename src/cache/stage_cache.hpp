// FlowCache: the content-addressed stage cache behind the compile
// pipeline's StageCacheHook seam (core/stages.hpp).
//
// attach() seeds a FlowContext's key chain with the flow base key
// (netlist x fabric x options, cache/key.hpp); run_pipeline() then calls
// before_stage()/after_stage() around every stage.  before_stage advances
// the chain (key(stage N) folds in key(stage N-1) and the stage name) and
// looks the stage's artifact up; a hit restores the stage's outputs into
// the context — bit-identically to running the stage, which is what
// tests/test_cache.cpp's fingerprint comparisons enforce — and a miss
// lets the stage run, after which after_stage publishes its outputs.
//
// Stored artifacts are immutable value snapshots.  Switch patterns and
// bitstream rows go through the PatternInterner, so a corpus of cached
// designs stores each distinct ContextPattern once; artifacts hold
// refcounted ids (PatternSet) and release them when evicted.
//
// Thread safety: the store and interner themselves are not thread-safe,
// so FlowCache serializes every hook call (and the stats snapshot) behind
// one mutex — that is what lets the serve daemon run concurrent compile
// jobs against ONE shared cache.  Stage execution (the expensive part)
// happens outside the hook, so jobs only contend on lookup/publish.
#pragma once

#include <cstddef>
#include <mutex>

#include "cache/artifact_cache.hpp"
#include "core/stages.hpp"

namespace mcfpga::cache {

class FlowCache : public core::StageCacheHook {
 public:
  explicit FlowCache(ArtifactCache::Limits limits = {})
      : artifacts_(limits) {}

  /// Seeds ctx.cache_key from ctx's inputs and points ctx.cache at this.
  void attach(core::FlowContext& ctx);

  bool before_stage(const char* stage, core::FlowContext& ctx) override;
  void after_stage(const char* stage, core::FlowContext& ctx) override;

  /// Consistent locked snapshot of the store + interner counters, safe to
  /// call while other threads compile (the accessors below are not).
  struct Stats {
    ArtifactCache::Counters counters;
    std::size_t live_patterns = 0;
    std::size_t pattern_dedup_hits = 0;
  };
  Stats stats() const;

  /// Direct access for single-threaded callers (tests, benches).
  ArtifactCache& artifacts() { return artifacts_; }
  const ArtifactCache& artifacts() const { return artifacts_; }
  PatternInterner& patterns() { return interner_; }
  const PatternInterner& patterns() const { return interner_; }

 private:
  mutable std::mutex mu_;
  // Declaration order is load-bearing: cached artifacts hold PatternSets
  // that release interner ids from their destructors, so the interner
  // must be destroyed AFTER the artifact store.
  PatternInterner interner_;
  ArtifactCache artifacts_;
};

}  // namespace mcfpga::cache
