#include "cache/artifact_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace mcfpga::cache {

// ---------------------------------------------------------------------------
// PatternInterner

PatternInterner::Id PatternInterner::intern(
    const config::ContextPattern& pattern) {
  const auto it = index_.find(pattern.values());
  if (it != index_.end()) {
    ++slots_[it->second].refs;
    ++dedup_hits_;
    return it->second;
  }
  Id id = 0;
  if (!free_ids_.empty()) {
    id = free_ids_.front();
    free_ids_.pop_front();
  } else {
    id = static_cast<Id>(slots_.size());
    slots_.emplace_back();
  }
  slots_[id].pattern = pattern;
  slots_[id].refs = 1;
  index_.emplace(pattern.values(), id);
  return id;
}

void PatternInterner::retain(Id id) { ++checked_slot(id).refs; }

void PatternInterner::release(Id id) {
  Slot& slot = checked_slot(id);
  MCFPGA_REQUIRE(slot.refs > 0, "pattern interner double release");
  if (--slot.refs == 0) {
    index_.erase(slot.pattern.values());
    // Lowest-first recycling keeps id assignment deterministic: the next
    // intern after identical churn always lands on the same id.
    const auto pos = std::lower_bound(free_ids_.begin(), free_ids_.end(), id);
    free_ids_.insert(pos, id);
  }
}

const config::ContextPattern& PatternInterner::pattern(Id id) const {
  return checked_slot(id).pattern;
}

std::size_t PatternInterner::ref_count(Id id) const {
  return id < slots_.size() ? slots_[id].refs : 0;
}

std::size_t PatternInterner::pattern_bytes() const {
  std::size_t bytes = 0;
  for (const Slot& slot : slots_) {
    if (slot.refs > 0) {
      bytes += sizeof(Slot) + slot.pattern.values().words().size() * 8;
    }
  }
  return bytes;
}

PatternInterner::Slot& PatternInterner::checked_slot(Id id) {
  MCFPGA_REQUIRE(id < slots_.size() && slots_[id].refs > 0,
                 "pattern interner: dead or out-of-range id");
  return slots_[id];
}

const PatternInterner::Slot& PatternInterner::checked_slot(Id id) const {
  MCFPGA_REQUIRE(id < slots_.size() && slots_[id].refs > 0,
                 "pattern interner: dead or out-of-range id");
  return slots_[id];
}

// ---------------------------------------------------------------------------
// PatternSet

PatternSet::PatternSet(const PatternSet& other)
    : interner_(other.interner_), ids_(other.ids_) {
  for (const PatternInterner::Id id : ids_) {
    interner_->retain(id);
  }
}

PatternSet& PatternSet::operator=(const PatternSet& other) {
  if (this != &other) {
    PatternSet copy(other);
    *this = std::move(copy);
  }
  return *this;
}

PatternSet::PatternSet(PatternSet&& other) noexcept
    : interner_(other.interner_), ids_(std::move(other.ids_)) {
  other.ids_.clear();
  other.interner_ = nullptr;
}

PatternSet& PatternSet::operator=(PatternSet&& other) noexcept {
  if (this != &other) {
    clear();
    interner_ = other.interner_;
    ids_ = std::move(other.ids_);
    other.ids_.clear();
    other.interner_ = nullptr;
  }
  return *this;
}

void PatternSet::clear() {
  for (const PatternInterner::Id id : ids_) {
    interner_->release(id);
  }
  ids_.clear();
}

// ---------------------------------------------------------------------------
// ArtifactCache

ArtifactCache::Entry* ArtifactCache::find_entry(std::uint64_t key,
                                                const std::type_info& type) {
  const auto it = entries_.find(key);
  if (it == entries_.end() || *it->second.type != type) {
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++counters_.hits;
  return &it->second;
}

void ArtifactCache::store_entry(std::uint64_t key,
                                std::shared_ptr<const void> value,
                                const std::type_info& type,
                                std::size_t bytes) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.type = &type;
    it->second.bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(key);
    Entry entry;
    entry.value = std::move(value);
    entry.type = &type;
    entry.bytes = bytes;
    entry.lru_it = lru_.begin();
    entries_.emplace(key, std::move(entry));
    bytes_ += bytes;
  }
  ++counters_.stores;
  evict_over_limit();
}

void ArtifactCache::evict_over_limit() {
  // Never evict the sole (just-touched) entry: an artifact larger than
  // max_bytes still caches, it just caches alone.
  while ((entries_.size() > limits_.max_entries || bytes_ > limits_.max_bytes) &&
         lru_.size() > 1) {
    const std::uint64_t victim = lru_.back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

}  // namespace mcfpga::cache
