#include "cache/key.hpp"

#include "common/hash.hpp"

namespace mcfpga::cache {

using common::Hasher;

std::uint64_t hash_dfg(const netlist::Dfg& dfg) {
  Hasher h;
  h.size(dfg.num_nodes());
  for (const netlist::DfgNode& node : dfg.nodes()) {
    h.u64(static_cast<std::uint64_t>(node.type));
    h.str(node.name);
    h.size(node.fanins.size());
    for (const netlist::NodeRef fanin : node.fanins) {
      h.i64(fanin);
    }
    h.bits(node.truth_table);
  }
  h.size(dfg.outputs().size());
  for (const netlist::DfgOutput& output : dfg.outputs()) {
    h.i64(output.node);
    h.str(output.name);
  }
  return h.digest();
}

std::uint64_t hash_netlist(const netlist::MultiContextNetlist& netlist) {
  Hasher h;
  h.size(netlist.num_contexts());
  for (std::size_t c = 0; c < netlist.num_contexts(); ++c) {
    h.u64(hash_dfg(netlist.context(c)));
  }
  return h.digest();
}

std::uint64_t hash_fabric_spec(const arch::FabricSpec& spec) {
  Hasher h;
  h.size(spec.width)
      .size(spec.height)
      .size(spec.num_contexts)
      .size(spec.logic_block.base_inputs)
      .size(spec.logic_block.num_contexts)
      .size(spec.logic_block.num_outputs)
      .u64(static_cast<std::uint64_t>(spec.logic_block.control))
      .size(spec.channel_width)
      .size(spec.double_length_tracks)
      .u64(static_cast<std::uint64_t>(spec.switch_impl))
      .size(spec.rcm.rows)
      .size(spec.rcm.cols)
      .size(spec.rcm.crossings)
      .size(spec.rcm.input_controllers);
  return h.digest();
}

std::uint64_t hash_compile_options(const core::CompileOptions& options) {
  Hasher h;
  h.u64(options.seed);

  const place::PlacerOptions& p = options.placer;
  h.u64(p.seed)
      .size(p.sweeps)
      .size(p.moves_per_sweep)
      .f64(p.initial_temperature_factor)
      .f64(p.cooling)
      .boolean(p.incremental)
      .boolean(p.range_limit)
      .boolean(p.adaptive_cooling)
      .size(p.num_restarts)
      // num_threads skipped: thread count never changes the placement.
      .boolean(p.timing_mode)
      .f64(p.timing_weight);

  const route::RouterOptions& r = options.router;
  h.size(r.max_iterations)
      .f64(r.present_factor_growth)
      .f64(r.history_increment)
      .boolean(r.prefer_double_length)
      // num_threads skipped: contexts merge in context order regardless.
      .boolean(r.timing_mode)
      .f64(r.criticality_exponent_schedule.start)
      .f64(r.criticality_exponent_schedule.step)
      .f64(r.criticality_exponent_schedule.max)
      .f64(r.max_criticality)
      .u64(static_cast<std::uint64_t>(r.cross_context_mode))
      .size(r.cross_context_rounds)
      .f64(r.cross_context_pressure_weight)
      .f64(r.pressure_ramp)
      .size(r.interleave_waves)
      .f64(r.interleave_crit_quantum)
      // interleave_workers and speculation_window skipped: the speculative
      // drain commits a pure function of queue order, so routed state is
      // bit-identical for any worker count or batch window.
      .u64(static_cast<std::uint64_t>(r.queue_mode))
      .f64(r.bucket_quantum)
      .size(r.bucket_span);

  h.f64(options.delay.se_delay)
      .f64(options.delay.lut_delay)
      .boolean(options.auto_size)
      .size(options.closure_iterations)
      .f64(options.closure_slack_tolerance)
      .boolean(options.closure_adaptive_refine);
  return h.digest();
}

std::uint64_t flow_base_key(const netlist::MultiContextNetlist& netlist,
                            const arch::FabricSpec& spec,
                            const core::CompileOptions& options) {
  Hasher h;
  h.str("mcfpga-flow-v1")
      .u64(hash_netlist(netlist))
      .u64(hash_fabric_spec(spec))
      .u64(hash_compile_options(options));
  return h.digest();
}

std::uint64_t stage_key(std::uint64_t prev, std::string_view stage_name) {
  return common::hash_combine(prev, common::fnv1a(stage_name));
}

}  // namespace mcfpga::cache
