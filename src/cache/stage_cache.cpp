#include "cache/stage_cache.hpp"

#include <string_view>
#include <utility>

#include "cache/key.hpp"
#include "common/error.hpp"
#include "core/timing_build.hpp"

namespace mcfpga::cache {

namespace {

// --- stored artifact types ---------------------------------------------------
// One immutable value snapshot per stage, exactly the FlowContext fields
// the stage's contract says it produces (core/stages.hpp header comment).
// Switch patterns and bitstream rows are interned: the artifact keeps
// refcounted PatternSet ids and the owning FlowCache's interner stores
// each distinct pattern once across every cached design.

struct TechMapArtifact {
  netlist::MultiContextNetlist netlist;
};

struct SharingArtifact {
  netlist::SharingAnalysis sharing;
  std::vector<mapping::ClassUse> uses;
};

struct PlaneArtifact {
  mapping::PlaneAllocation planes;
};

struct ClusterArtifact {
  std::vector<core::Cluster> clusters;
  std::vector<std::size_t> slot_cluster;
  std::vector<std::size_t> slot_output;
  std::unordered_map<std::size_t, std::string> input_class_name;
  std::map<std::string, std::vector<std::size_t>> output_driver;
  std::unordered_map<std::size_t, std::size_t> input_class_terminal;
  std::map<std::string, std::size_t> input_terminals;
  std::map<std::string, std::size_t> output_terminals;
  std::size_t num_terminals = 0;
};

struct PlaceArtifact {
  arch::FabricSpec spec;  ///< Auto-grown; the graph rebuilds from it.
  place::Placement placement;
};

/// A RouteResult with its switch patterns swapped out for interner ids.
struct RoutingSnapshot {
  route::RouteResult routing;  ///< switch_patterns left empty.
  PatternSet patterns;         ///< One id per switch, in SwitchId order.
};

struct RouteArtifact {
  std::vector<timing::ContextTimingSpec> timing_specs;
  std::vector<std::vector<std::size_t>> net_class;
  std::vector<std::vector<std::vector<core::SinkKey>>> sink_keys;
  RoutingSnapshot routing;
  route::RouteHistory history;
};

struct TimingArtifact {
  std::vector<timing::TimingReport> reports;
  std::vector<core::ContextStats> stats;
};

struct ProgramArtifact {
  sim::FabricProgram program;  ///< switch_patterns left empty (interned).
  PatternSet program_patterns;
  struct Row {
    std::string name;
    config::ResourceKind kind;
  };
  std::vector<Row> rows;   ///< Bitstream rows; patterns interned below.
  PatternSet row_patterns;  ///< Parallel to rows.
  std::size_t bitstream_contexts = 0;
};

/// The whole Place/Route/Timing block of a closure-loop compile, cached as
/// one unit (the loop's iterations are not separately addressable).
struct ClosureArtifact {
  arch::FabricSpec spec;
  place::Placement placement;
  std::vector<timing::ContextTimingSpec> timing_specs;
  std::vector<std::vector<std::size_t>> net_class;
  std::vector<std::vector<std::vector<core::SinkKey>>> sink_keys;
  RoutingSnapshot routing;
  route::RouteHistory history;
  std::vector<timing::TimingReport> reports;
  std::vector<core::ContextStats> stats;
  std::vector<core::ClosureIterationStats> closure_stats;
};

// --- size estimates ----------------------------------------------------------
// Rough heap footprints for the cache's byte bound — dominant vectors
// only, constants for the rest.

std::size_t bytes_of(const std::string& s) { return 32 + s.size(); }
std::size_t bytes_of(const BitVector& v) {
  return 24 + v.words().size() * 8;
}

std::size_t bytes_of(const netlist::MultiContextNetlist& nl) {
  std::size_t total = 64;
  for (std::size_t c = 0; c < nl.num_contexts(); ++c) {
    for (const auto& node : nl.context(c).nodes()) {
      total += 64 + bytes_of(node.name) + node.fanins.size() * 4 +
               bytes_of(node.truth_table);
    }
    total += nl.context(c).outputs().size() * 48;
  }
  return total;
}

std::size_t bytes_of(const route::RouteResult& r) {
  std::size_t total = 128 + r.context_summary.size() * 80;
  for (const auto& nets : r.nets) {
    for (const auto& net : nets) {
      total += 64 + bytes_of(net.name);
      for (const auto& path : net.paths) {
        total += 48 + path.edges.size() * 4;
      }
    }
  }
  return total;
}

std::size_t bytes_of(const std::vector<timing::ContextTimingSpec>& specs) {
  std::size_t total = 0;
  for (const auto& spec : specs) {
    total += 64;
    for (const auto& net : spec.nets) {
      total += 32;
      for (const auto& sink : net.sinks) {
        total += 24 + sink.readers.size() * 12;
      }
    }
  }
  return total;
}

std::size_t bytes_of(const place::Placement& p) {
  return 96 + p.cluster_pos.size() * 16 + p.io_pads.size() * 8 +
         p.restart_stats.size() * 24;
}

std::size_t bytes_of(const std::vector<timing::TimingReport>& reports) {
  std::size_t total = 0;
  for (const auto& r : reports) {
    total += 96 + (r.arrival.size() + r.required.size()) * 8 +
             r.critical_nodes.size() * 8;
  }
  return total;
}

std::size_t sink_keys_bytes(
    const std::vector<std::vector<std::vector<core::SinkKey>>>& keys) {
  std::size_t total = 0;
  for (const auto& per_ctx : keys) {
    for (const auto& per_net : per_ctx) {
      total += 24 + per_net.size() * sizeof(core::SinkKey);
    }
  }
  return total;
}

std::size_t bytes_of(const route::RouteHistory& h) {
  std::size_t total = 24;
  for (const auto& per_ctx : h.per_context) {
    total += 24 + per_ctx.size() * 8;
  }
  return total;
}

// --- intern/materialize helpers ---------------------------------------------

RoutingSnapshot snapshot_routing(const route::RouteResult& routing,
                                 PatternInterner& interner) {
  RoutingSnapshot snap;
  snap.routing = routing;
  snap.patterns = PatternSet(&interner);
  for (const auto& pattern : snap.routing.switch_patterns) {
    snap.patterns.add(pattern);
  }
  snap.routing.switch_patterns.clear();
  return snap;
}

route::RouteResult materialize_routing(const RoutingSnapshot& snap) {
  route::RouteResult routing = snap.routing;
  routing.switch_patterns.reserve(snap.patterns.size());
  for (std::size_t i = 0; i < snap.patterns.size(); ++i) {
    routing.switch_patterns.push_back(snap.patterns.pattern(i));
  }
  return routing;
}

}  // namespace

void FlowCache::attach(core::FlowContext& ctx) {
  MCFPGA_REQUIRE(ctx.input != nullptr,
                 "FlowCache::attach needs a seeded flow context");
  ctx.cache = this;
  ctx.cache_key = flow_base_key(*ctx.input, ctx.spec, ctx.options);
  ctx.cache_key_valid = true;
}

FlowCache::Stats FlowCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.counters = artifacts_.counters();
  s.live_patterns = interner_.num_live();
  s.pattern_dedup_hits = interner_.dedup_hits();
  return s;
}

bool FlowCache::before_stage(const char* stage, core::FlowContext& ctx) {
  if (!ctx.cache_key_valid) {
    return false;
  }
  // One lock over lookup + restore: restores copy out of shared_ptr
  // snapshots and materialize patterns through the interner, both of
  // which a concurrent publish could invalidate mid-read.
  const std::lock_guard<std::mutex> lock(mu_);
  ctx.cache_key = stage_key(ctx.cache_key, stage);
  const std::uint64_t key = ctx.cache_key;
  const std::string_view name(stage);

  if (name == "tech_map") {
    if (const auto a = artifacts_.find<TechMapArtifact>(key)) {
      ctx.netlist = a->netlist;
      return true;
    }
  } else if (name == "sharing") {
    if (const auto a = artifacts_.find<SharingArtifact>(key)) {
      ctx.sharing = a->sharing;
      ctx.uses = a->uses;
      return true;
    }
  } else if (name == "plane_alloc") {
    if (const auto a = artifacts_.find<PlaneArtifact>(key)) {
      ctx.planes = a->planes;
      return true;
    }
  } else if (name == "cluster") {
    if (const auto a = artifacts_.find<ClusterArtifact>(key)) {
      ctx.clusters = a->clusters;
      ctx.slot_cluster = a->slot_cluster;
      ctx.slot_output = a->slot_output;
      ctx.input_class_name = a->input_class_name;
      ctx.output_driver = a->output_driver;
      ctx.input_class_terminal = a->input_class_terminal;
      ctx.input_terminals = a->input_terminals;
      ctx.output_terminals = a->output_terminals;
      ctx.num_terminals = a->num_terminals;
      return true;
    }
  } else if (name == "place") {
    if (const auto a = artifacts_.find<PlaceArtifact>(key)) {
      // The graph is deterministic in the grown spec, so restoring the
      // spec and rebuilding it replays PlaceStage's physical world; the
      // flow_timing / placement_build by-products stay absent and their
      // consumers rebuild them on demand (both are pure functions of the
      // clustering).
      ctx.spec = a->spec;
      core::size_fabric_and_build_graph(ctx);
      ctx.placement = a->placement;
      return true;
    }
  } else if (name == "route") {
    if (const auto a = artifacts_.find<RouteArtifact>(key)) {
      ctx.timing_specs = a->timing_specs;
      ctx.net_class = a->net_class;
      ctx.sink_keys = a->sink_keys;
      ctx.routing = materialize_routing(a->routing);
      ctx.route_history = a->history;
      ctx.flow_timing.reset();  // replays RouteStage consuming the cache
      return true;
    }
  } else if (name == "timing") {
    if (const auto a = artifacts_.find<TimingArtifact>(key)) {
      ctx.timing_reports = a->reports;
      ctx.context_stats = a->stats;
      return true;
    }
  } else if (name == "program") {
    if (const auto a = artifacts_.find<ProgramArtifact>(key)) {
      ctx.program = a->program;
      ctx.program.switch_patterns.reserve(a->program_patterns.size());
      for (std::size_t i = 0; i < a->program_patterns.size(); ++i) {
        ctx.program.switch_patterns.push_back(a->program_patterns.pattern(i));
      }
      ctx.full_bitstream = config::Bitstream(a->bitstream_contexts);
      for (std::size_t r = 0; r < a->rows.size(); ++r) {
        ctx.full_bitstream.add_row(a->rows[r].name, a->rows[r].kind,
                                   a->row_patterns.pattern(r));
      }
      return true;
    }
  } else if (name == "closure") {
    if (const auto a = artifacts_.find<ClosureArtifact>(key)) {
      ctx.spec = a->spec;
      core::size_fabric_and_build_graph(ctx);
      ctx.placement = a->placement;
      ctx.timing_specs = a->timing_specs;
      ctx.net_class = a->net_class;
      ctx.sink_keys = a->sink_keys;
      ctx.routing = materialize_routing(a->routing);
      ctx.route_history = a->history;
      ctx.timing_reports = a->reports;
      ctx.context_stats = a->stats;
      ctx.closure_stats = a->closure_stats;
      return true;
    }
  }
  return false;
}

void FlowCache::after_stage(const char* stage, core::FlowContext& ctx) {
  if (!ctx.cache_key_valid) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key = ctx.cache_key;
  const std::string_view name(stage);

  if (name == "tech_map") {
    auto a = std::make_shared<TechMapArtifact>();
    a->netlist = ctx.netlist;
    const std::size_t bytes = bytes_of(a->netlist);
    artifacts_.store<TechMapArtifact>(key, std::move(a), bytes);
  } else if (name == "sharing") {
    auto a = std::make_shared<SharingArtifact>();
    a->sharing = ctx.sharing;
    a->uses = ctx.uses;
    std::size_t bytes = 64;
    for (const auto& per_ctx : a->sharing.class_of) {
      bytes += 24 + per_ctx.size() * 8;
    }
    bytes += a->sharing.classes.size() * 96 + a->uses.size() * 96;
    artifacts_.store<SharingArtifact>(key, std::move(a), bytes);
  } else if (name == "plane_alloc") {
    auto a = std::make_shared<PlaneArtifact>();
    a->planes = ctx.planes;
    const std::size_t bytes = 128 + a->planes.slots.size() * 160;
    artifacts_.store<PlaneArtifact>(key, std::move(a), bytes);
  } else if (name == "cluster") {
    auto a = std::make_shared<ClusterArtifact>();
    a->clusters = ctx.clusters;
    a->slot_cluster = ctx.slot_cluster;
    a->slot_output = ctx.slot_output;
    a->input_class_name = ctx.input_class_name;
    a->output_driver = ctx.output_driver;
    a->input_class_terminal = ctx.input_class_terminal;
    a->input_terminals = ctx.input_terminals;
    a->output_terminals = ctx.output_terminals;
    a->num_terminals = ctx.num_terminals;
    std::size_t bytes = 256 + a->clusters.size() * 128 +
                        (a->slot_cluster.size() + a->slot_output.size()) * 8;
    for (const auto& [cls, n] : a->input_class_name) {
      bytes += 48 + bytes_of(n);
    }
    for (const auto& [n, drivers] : a->output_driver) {
      bytes += 48 + bytes_of(n) + drivers.size() * 8;
    }
    artifacts_.store<ClusterArtifact>(key, std::move(a), bytes);
  } else if (name == "place") {
    auto a = std::make_shared<PlaceArtifact>();
    a->spec = ctx.spec;
    a->placement = ctx.placement;
    const std::size_t bytes = 128 + bytes_of(a->placement);
    artifacts_.store<PlaceArtifact>(key, std::move(a), bytes);
  } else if (name == "route") {
    auto a = std::make_shared<RouteArtifact>();
    a->timing_specs = ctx.timing_specs;
    a->net_class = ctx.net_class;
    a->sink_keys = ctx.sink_keys;
    a->routing = snapshot_routing(ctx.routing, interner_);
    a->history = ctx.route_history;
    const std::size_t bytes = bytes_of(a->timing_specs) +
                              sink_keys_bytes(a->sink_keys) +
                              bytes_of(a->routing.routing) +
                              a->routing.patterns.size() * 4 +
                              bytes_of(a->history);
    artifacts_.store<RouteArtifact>(key, std::move(a), bytes);
  } else if (name == "timing") {
    auto a = std::make_shared<TimingArtifact>();
    a->reports = ctx.timing_reports;
    a->stats = ctx.context_stats;
    const std::size_t bytes =
        bytes_of(a->reports) + a->stats.size() * sizeof(core::ContextStats);
    artifacts_.store<TimingArtifact>(key, std::move(a), bytes);
  } else if (name == "program") {
    auto a = std::make_shared<ProgramArtifact>();
    a->program = ctx.program;
    a->program_patterns = PatternSet(&interner_);
    for (const auto& pattern : a->program.switch_patterns) {
      a->program_patterns.add(pattern);
    }
    a->program.switch_patterns.clear();
    a->row_patterns = PatternSet(&interner_);
    a->rows.reserve(ctx.full_bitstream.num_rows());
    for (const auto& row : ctx.full_bitstream.rows()) {
      a->rows.push_back(ProgramArtifact::Row{row.name, row.kind});
      a->row_patterns.add(row.pattern);
    }
    a->bitstream_contexts = ctx.full_bitstream.num_contexts();
    std::size_t bytes = 256 + a->program.lbs.size() * 256 +
                        (a->program_patterns.size() +
                         a->row_patterns.size()) * 4;
    for (const auto& row : a->rows) {
      bytes += 16 + bytes_of(row.name);
    }
    artifacts_.store<ProgramArtifact>(key, std::move(a), bytes);
  } else if (name == "closure") {
    auto a = std::make_shared<ClosureArtifact>();
    a->spec = ctx.spec;
    a->placement = ctx.placement;
    a->timing_specs = ctx.timing_specs;
    a->net_class = ctx.net_class;
    a->sink_keys = ctx.sink_keys;
    a->routing = snapshot_routing(ctx.routing, interner_);
    a->history = ctx.route_history;
    a->reports = ctx.timing_reports;
    a->stats = ctx.context_stats;
    a->closure_stats = ctx.closure_stats;
    const std::size_t bytes =
        128 + bytes_of(a->placement) + bytes_of(a->timing_specs) +
        sink_keys_bytes(a->sink_keys) + bytes_of(a->routing.routing) +
        bytes_of(a->history) + bytes_of(a->reports) +
        a->closure_stats.size() * sizeof(core::ClosureIterationStats);
    artifacts_.store<ClosureArtifact>(key, std::move(a), bytes);
  }
}

}  // namespace mcfpga::cache
