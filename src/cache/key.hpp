// Canonical content keys for the stage cache.
//
// Every compile artifact is addressed by a 64-bit digest of the inputs
// that determine it: the multi-context DFG (structure, names, truth
// tables), the fabric spec, and the compile options.  Per-stage keys are
// chained — key(stage N) folds in key(stage N-1) and the stage name — so
// an artifact's key transitively covers everything upstream of it and a
// change anywhere invalidates exactly the suffix of the pipeline that
// could observe it.
//
// Worker-count knobs (placer/router num_threads) are deliberately NOT
// hashed: the placer and router contract is bit-identical results for any
// thread count, so a design compiled with 8 workers is a legitimate cache
// hit for the same design compiled with 1.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/flow.hpp"

namespace mcfpga::cache {

/// Digest of one context's DFG: node types, names, fanin wiring, truth
/// tables, and the designated outputs, in node order.
std::uint64_t hash_dfg(const netlist::Dfg& dfg);

/// Digest of the whole multi-context netlist (context count + per-context
/// DFG digests, in context order).
std::uint64_t hash_netlist(const netlist::MultiContextNetlist& netlist);

/// Digest of every FabricSpec field that shapes the routing graph, the
/// logic blocks, or the bitstream layout.
std::uint64_t hash_fabric_spec(const arch::FabricSpec& spec);

/// Digest of every CompileOptions field that can change a compile result.
/// Excludes placer.num_threads and router.num_threads (see file comment).
std::uint64_t hash_compile_options(const core::CompileOptions& options);

/// Root of a flow's key chain: netlist x spec x options.
std::uint64_t flow_base_key(const netlist::MultiContextNetlist& netlist,
                            const arch::FabricSpec& spec,
                            const core::CompileOptions& options);

/// Advances the chain across one stage: combine(prev, H(stage name)).
std::uint64_t stage_key(std::uint64_t prev, std::string_view stage_name);

}  // namespace mcfpga::cache
