// Incremental-recompile driver over the content-addressed stage cache.
//
// CompileService::compile() is compile() with every stage consulting and
// publishing the FlowCache, so recompiling an unchanged design is pure
// lookup and recompiling an edited one reuses the unchanged pipeline
// prefix.  compile_incremental() is the delta path for small edits: it
// diffs the previous and edited netlists, re-runs only the cheap front-end
// (techmap/sharing/planes/cluster), reuses the previous placement — either
// verbatim, when the placement problem is unchanged, or as the warm start
// of a short reduced-temperature anneal — and rips up and re-routes only
// the nets whose physical endpoints changed, pinning every kept net's
// wires with a prohibitive congestion pressure so the partial route
// composes with the kept trees (RouterCore::route_pass).  Any condition
// the delta path cannot honor (big diff, changed options, resized fabric,
// closure/negotiated flows, non-convergence, wire overlap) falls back to
// a full — still cached — recompile, recorded in CacheStats::delta_fallback.
//
// The delta path is single-threaded by construction, so its results are
// deterministic for any worker-count setting; the full path inherits the
// placer/router bit-identical-for-any-thread-count contract.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cache/stage_cache.hpp"
#include "core/flow.hpp"

namespace mcfpga::cache {

struct IncrementalOptions {
  /// Bounds of the artifact store.
  ArtifactCache::Limits limits{};
  /// Fall back to full recompile when more than this fraction of DFG
  /// nodes changed (union over contexts).
  double max_diff_fraction = 0.25;
  /// Fall back when more than this fraction of route nets lost their
  /// previous trees (the partial route would do most of a full route).
  double max_invalidated_fraction = 0.6;
  /// Additive present-congestion cost pinned onto every wire node a kept
  /// net occupies, so re-routed nets detour around the kept trees.
  double keep_pressure = 1e6;
  /// Warm-start anneal policy when the placement problem changed: the
  /// previous placement is perturbed at temperature scale
  /// `warm_temperature_scale` for sweeps / `warm_sweep_divisor` sweeps.
  double warm_temperature_scale = 0.02;
  std::size_t warm_sweep_divisor = 8;
};

/// Node-level difference between two multi-context netlists.
struct NetlistDiff {
  std::size_t changed_nodes = 0;  ///< Summed over contexts.
  std::size_t total_nodes = 0;    ///< max(before, after), summed.
  /// Changed (or added/removed) node count per context.
  std::vector<std::size_t> changed_per_context;
  double fraction() const {
    return total_nodes == 0
               ? 0.0
               : static_cast<double>(changed_nodes) /
                     static_cast<double>(total_nodes);
  }
};

/// Compares per-context node arrays positionally (type, name, fanins,
/// truth table) plus the designated outputs; contexts beyond the common
/// count diff in full.
NetlistDiff diff_netlists(const netlist::MultiContextNetlist& before,
                          const netlist::MultiContextNetlist& after);

/// A compiled design plus the inputs that produced it — the handle edits
/// chain from.
struct Compiled {
  netlist::MultiContextNetlist netlist;  ///< The input (pre tech-map).
  arch::FabricSpec spec;                 ///< Original, pre-auto-growth.
  core::CompileOptions options;
  core::CompiledDesign design;
  /// Content hash of the placement problem (nets, weights, criticality);
  /// equality lets compile_incremental reuse the placement verbatim.
  std::uint64_t placement_problem_hash = 0;
};

/// Thread safety: compile() and compile_incremental() may be called from
/// several threads at once against one service (the serve daemon does) —
/// the shared FlowCache serializes its own lookups/publishes, and the
/// fallback-reason ledger has its own lock.  Results stay bit-identical
/// to single-threaded calls because every compile is a pure function of
/// its inputs and cache hits restore bit-identical snapshots.
class CompileService {
 public:
  explicit CompileService(IncrementalOptions options = {})
      : options_(options), cache_(options.limits) {}

  /// Full pipeline with the stage cache attached.  `observer` (optional,
  /// not owned) sees every stage boundary: progress streaming plus
  /// cooperative cancellation (core::StageObserver).
  Compiled compile(const netlist::MultiContextNetlist& netlist,
                   const arch::FabricSpec& spec,
                   const core::CompileOptions& options = {},
                   core::StageObserver* observer = nullptr);

  /// Delta recompile of `previous` under the edited netlist; `options`
  /// must match previous.options for the delta path to engage (any
  /// difference falls back to a full cached compile).  The observer sees
  /// the delta path's own place/route/timing/program blocks as stage
  /// boundaries too, so cancellation and deadlines work on both paths.
  Compiled compile_incremental(const Compiled& previous,
                               const netlist::MultiContextNetlist& edited,
                               const core::CompileOptions& options,
                               core::StageObserver* observer = nullptr);

  const ArtifactCache& artifacts() const { return cache_.artifacts(); }
  const PatternInterner& patterns() const { return cache_.patterns(); }
  FlowCache& flow_cache() { return cache_; }

  /// Service-lifetime delta-fallback breakdown (reason -> count).
  std::map<std::string, std::size_t> fallback_reasons() const;

 private:
  Compiled fallback(const Compiled& previous,
                    const netlist::MultiContextNetlist& edited,
                    const core::CompileOptions& options,
                    const char* reason, core::StageObserver* observer);
  void count_fallback(const std::string& reason);
  void fill_cache_stats(core::CompiledDesign& design,
                        const ArtifactCache::Counters& before) const;

  IncrementalOptions options_;
  FlowCache cache_;
  mutable std::mutex fallback_mu_;
  std::map<std::string, std::size_t> fallback_reasons_;
};

}  // namespace mcfpga::cache
