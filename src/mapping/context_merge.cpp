#include "mapping/context_merge.hpp"

#include <algorithm>

namespace mcfpga::mapping {

std::vector<ClassUse> lut_class_uses(
    const netlist::MultiContextNetlist& netlist,
    const netlist::SharingAnalysis& sharing) {
  std::vector<ClassUse> uses;
  for (const auto& cls : sharing.classes) {
    if (cls.arity == 0) {
      continue;  // primary-input class
    }
    ClassUse use;
    use.cls = cls.id;
    use.arity = cls.arity;
    use.representative = cls.members.front();
    for (const auto& [context, node] : cls.members) {
      use.contexts.push_back(context);
    }
    std::sort(use.contexts.begin(), use.contexts.end());
    use.contexts.erase(
        std::unique(use.contexts.begin(), use.contexts.end()),
        use.contexts.end());

    const auto& [rep_ctx, rep_node] = use.representative;
    const auto& n = netlist.context(rep_ctx).node(rep_node);
    use.truth_table = n.truth_table;
    use.fanin_classes.reserve(n.fanins.size());
    for (const auto f : n.fanins) {
      use.fanin_classes.push_back(
          sharing.class_of[rep_ctx][static_cast<std::size_t>(f)]);
    }
    uses.push_back(std::move(use));
  }
  return uses;
}

}  // namespace mcfpga::mapping
