// Technology mapping: bound every LUT operation's arity to what the target
// MCMG-LUT mode can absorb.  Oversized nodes are Shannon-decomposed on
// their highest input:
//
//     f(x_{a-1}, ..., x_0) = x_{a-1} ? f_hi(...) : f_lo(...)
//
// which adds two cofactor nodes and a 3-input mux node, recursively, until
// every node fits.  This mirrors how the RCM decoder synthesis handles
// complex context patterns — the same decomposition, applied in the signal
// domain instead of the context domain.
#pragma once

#include <cstddef>

#include "netlist/dfg.hpp"

namespace mcfpga::mapping {

/// Returns a functionally equivalent DFG whose LUT ops all have arity
/// <= max_arity (max_arity >= 3 required: the mux itself needs 3 inputs).
netlist::Dfg decompose_to_arity(const netlist::Dfg& dfg,
                                std::size_t max_arity);

/// Applies decompose_to_arity to every context.
netlist::MultiContextNetlist decompose_to_arity(
    const netlist::MultiContextNetlist& netlist, std::size_t max_arity);

}  // namespace mcfpga::mapping
