// Configuration-plane allocation: assign LUT-operation classes to MCMG-LUT
// output slots and pick each slot's granularity (paper Sec. 4, Figs. 12-14).
//
// A SLOT is one LUT output with its memory budget of
// 2^base_inputs * num_contexts bits.  In a mode with p planes and
// k = base_inputs + log2(contexts) - log2(p) inputs, context c reads plane
// (c mod p).  Allocation must therefore satisfy, per slot:
//   * every entry's arity <= k;
//   * two entries never claim the same plane;
//   * an entry whose contexts straddle several planes stores its table in
//     each of them — DUPLICATED configuration data, the waste the paper's
//     local size control eliminates (Fig. 13's LUT3 storing O3 twice).
//
// kGlobal control picks ONE mode for all slots (the fabric-wide J signal of
// Fig. 13); kLocal control picks the best mode per slot (Fig. 14).
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lut/logic_block.hpp"
#include "mapping/context_merge.hpp"

namespace mcfpga::mapping {

struct SlotEntry {
  ClassUse use;
  /// Planes the entry's table occupies under the slot's chosen mode.
  std::vector<std::size_t> planes;
};

struct Slot {
  std::vector<SlotEntry> entries;
  lut::LutMode mode;
  std::size_t used_bits = 0;        ///< Table bits actually stored.
  std::size_t duplicated_bits = 0;  ///< Bits stored more than once.
};

struct PlaneAllocation {
  lut::SizeControl control = lut::SizeControl::kLocal;
  std::vector<Slot> slots;
  /// cls id -> slot index.
  std::unordered_map<std::size_t, std::size_t> slot_of_class;

  std::size_t num_slots() const { return slots.size(); }
  std::size_t used_bits() const;
  std::size_t duplicated_bits() const;
  /// Memory budget consumed: slots * bits-per-slot.
  std::size_t budget_bits(std::size_t base_inputs,
                          std::size_t num_contexts) const;
  /// Total local size-controller SEs (zero under global control).
  std::size_t controller_se_cost() const;
};

/// Allocates every class in `uses` to a slot.
/// Throws FlowError if some class cannot fit any mode (arity too large).
PlaneAllocation allocate_planes(const std::vector<ClassUse>& uses,
                                std::size_t base_inputs,
                                std::size_t num_contexts,
                                lut::SizeControl control);

/// The planes class contexts map to under `planes`-plane selection, sorted
/// and deduplicated (plane = context mod planes).
std::vector<std::size_t> planes_of(const std::vector<std::size_t>& contexts,
                                   std::size_t planes);

}  // namespace mcfpga::mapping
