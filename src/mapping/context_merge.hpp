// Context merging: turns the sharing analysis into the per-class usage
// records that plane allocation consumes (paper Fig. 14a — the "redrawn
// DFG" in which nodes shared between contexts appear once).
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/dfg.hpp"
#include "netlist/sharing.hpp"

namespace mcfpga::mapping {

/// One LUT-operation sharing class and the contexts that evaluate it.
struct ClassUse {
  std::size_t cls = 0;                 ///< Sharing-class id.
  std::vector<std::size_t> contexts;   ///< Sorted, unique.
  std::size_t arity = 0;
  /// Truth table of the class function (identical for all members).
  BitVector truth_table;
  /// Fanin class ids (identical for all members by construction).
  std::vector<std::size_t> fanin_classes;
  /// Representative member, for name lookups: (context, node).
  std::pair<std::size_t, netlist::NodeRef> representative{0, 0};

  bool is_shared() const { return contexts.size() > 1; }
};

/// Extracts all LUT-op classes (primary-input classes are skipped).
std::vector<ClassUse> lut_class_uses(
    const netlist::MultiContextNetlist& netlist,
    const netlist::SharingAnalysis& sharing);

}  // namespace mcfpga::mapping
