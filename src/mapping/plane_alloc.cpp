#include "mapping/plane_alloc.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::mapping {

namespace {

struct ModeFit {
  lut::LutMode mode;
  std::size_t used_bits = 0;
  std::size_t duplicated_bits = 0;
  std::vector<std::vector<std::size_t>> entry_planes;
};

std::size_t log2_exact(std::size_t v) {
  return static_cast<std::size_t>(std::countr_zero(v));
}

/// Tests whether `uses` can cohabit one slot in a `p`-plane mode.
std::optional<ModeFit> try_mode(const std::vector<ClassUse>& uses,
                                std::size_t base_inputs,
                                std::size_t num_contexts, std::size_t p) {
  const std::size_t k =
      base_inputs + log2_exact(num_contexts) - log2_exact(p);
  ModeFit fit;
  fit.mode = lut::LutMode{k, p};
  std::vector<std::size_t> plane_claim(p, SIZE_MAX);

  // The slot's entries share the LUT's physical input pins, so the union
  // of their fanin signals must fit the mode's input count.
  std::vector<std::size_t> pin_union;
  for (const ClassUse& use : uses) {
    for (const std::size_t f : use.fanin_classes) {
      if (std::find(pin_union.begin(), pin_union.end(), f) ==
          pin_union.end()) {
        pin_union.push_back(f);
      }
    }
  }
  if (pin_union.size() > k) {
    return std::nullopt;
  }

  for (std::size_t e = 0; e < uses.size(); ++e) {
    const ClassUse& use = uses[e];
    if (use.arity > k) {
      return std::nullopt;
    }
    std::vector<std::size_t> planes = planes_of(use.contexts, p);
    for (const std::size_t plane : planes) {
      if (plane_claim[plane] != SIZE_MAX) {
        return std::nullopt;  // plane already taken by another class
      }
      plane_claim[plane] = e;
    }
    const std::size_t table_bits = std::size_t{1} << k;
    fit.used_bits += planes.size() * table_bits;
    fit.duplicated_bits += (planes.size() - 1) * table_bits;
    fit.entry_planes.push_back(std::move(planes));
  }
  return fit;
}

/// All plane counts, largest first (most packing opportunity first).
std::vector<std::size_t> plane_options(std::size_t num_contexts) {
  std::vector<std::size_t> opts;
  for (std::size_t p = num_contexts; p >= 1; p /= 2) {
    opts.push_back(p);
    if (p == 1) {
      break;
    }
  }
  return opts;
}

std::vector<ClassUse> slot_uses(const Slot& slot) {
  std::vector<ClassUse> uses;
  uses.reserve(slot.entries.size());
  for (const auto& e : slot.entries) {
    uses.push_back(e.use);
  }
  return uses;
}

void apply_fit(Slot& slot, const ModeFit& fit) {
  slot.mode = fit.mode;
  slot.used_bits = fit.used_bits;
  slot.duplicated_bits = fit.duplicated_bits;
  for (std::size_t e = 0; e < slot.entries.size(); ++e) {
    slot.entries[e].planes = fit.entry_planes[e];
  }
}

}  // namespace

std::vector<std::size_t> planes_of(const std::vector<std::size_t>& contexts,
                                   std::size_t planes) {
  std::vector<std::size_t> out;
  out.reserve(contexts.size());
  for (const std::size_t c : contexts) {
    out.push_back(c & (planes - 1));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t PlaneAllocation::used_bits() const {
  std::size_t n = 0;
  for (const auto& s : slots) {
    n += s.used_bits;
  }
  return n;
}

std::size_t PlaneAllocation::duplicated_bits() const {
  std::size_t n = 0;
  for (const auto& s : slots) {
    n += s.duplicated_bits;
  }
  return n;
}

std::size_t PlaneAllocation::budget_bits(std::size_t base_inputs,
                                         std::size_t num_contexts) const {
  return slots.size() * ((std::size_t{1} << base_inputs) * num_contexts);
}

std::size_t PlaneAllocation::controller_se_cost() const {
  if (control == lut::SizeControl::kGlobal) {
    return 0;
  }
  std::size_t n = 0;
  for (const auto& s : slots) {
    n += log2_exact(s.mode.planes);
  }
  return n;
}

PlaneAllocation allocate_planes(const std::vector<ClassUse>& uses,
                                std::size_t base_inputs,
                                std::size_t num_contexts,
                                lut::SizeControl control) {
  MCFPGA_REQUIRE(config::is_valid_context_count(num_contexts),
                 "context count must be a power of two in [2, 64]");
  PlaneAllocation alloc;
  alloc.control = control;

  // Shared-first, fat-first packing order.
  std::vector<ClassUse> order = uses;
  std::sort(order.begin(), order.end(),
            [](const ClassUse& a, const ClassUse& b) {
              if (a.contexts.size() != b.contexts.size()) {
                return a.contexts.size() > b.contexts.size();
              }
              if (a.arity != b.arity) {
                return a.arity > b.arity;
              }
              return a.cls < b.cls;
            });

  const std::vector<std::size_t> opts = plane_options(num_contexts);

  // Under global control every slot shares one fabric-wide mode: the most
  // finely-planed mode whose input count still fits the fattest class
  // (Fig. 13's J signal).
  std::optional<std::size_t> global_p;
  if (control == lut::SizeControl::kGlobal) {
    std::size_t max_arity = 0;
    for (const auto& u : uses) {
      max_arity = std::max(max_arity, u.arity);
    }
    for (const std::size_t p : opts) {
      const std::size_t k =
          base_inputs + log2_exact(num_contexts) - log2_exact(p);
      if (k >= max_arity) {
        global_p = p;
        break;
      }
    }
    if (!global_p) {
      throw FlowError("plane allocation: a class of arity " +
                      std::to_string(max_arity) +
                      " exceeds even the single-plane LUT size");
    }
  }

  for (const ClassUse& use : order) {
    bool placed = false;
    for (std::size_t s = 0; s < alloc.slots.size() && !placed; ++s) {
      Slot& slot = alloc.slots[s];
      std::vector<ClassUse> candidate = slot_uses(slot);
      candidate.push_back(use);
      if (control == lut::SizeControl::kGlobal) {
        if (auto fit =
                try_mode(candidate, base_inputs, num_contexts, *global_p)) {
          slot.entries.push_back(SlotEntry{use, {}});
          apply_fit(slot, *fit);
          alloc.slot_of_class[use.cls] = s;
          placed = true;
        }
      } else {
        for (const std::size_t p : opts) {
          if (auto fit = try_mode(candidate, base_inputs, num_contexts, p)) {
            slot.entries.push_back(SlotEntry{use, {}});
            apply_fit(slot, *fit);
            alloc.slot_of_class[use.cls] = s;
            placed = true;
            break;
          }
        }
      }
    }
    if (placed) {
      continue;
    }
    // Open a new slot.
    Slot slot;
    slot.entries.push_back(SlotEntry{use, {}});
    std::optional<ModeFit> fit;
    if (control == lut::SizeControl::kGlobal) {
      fit = try_mode({use}, base_inputs, num_contexts, *global_p);
    } else {
      // For a fresh slot prefer the mode with zero duplication and the most
      // spare planes: largest p whose plane mapping is injective for this
      // class; fall back to the largest feasible p.
      std::optional<ModeFit> fallback;
      for (const std::size_t p : opts) {
        auto f = try_mode({use}, base_inputs, num_contexts, p);
        if (!f) {
          continue;
        }
        if (!fallback) {
          fallback = f;
        }
        if (f->duplicated_bits == 0) {
          fit = f;
          break;
        }
      }
      if (!fit) {
        fit = fallback;
      }
    }
    if (!fit) {
      throw FlowError("plane allocation: class of arity " +
                      std::to_string(use.arity) +
                      " does not fit any LUT mode");
    }
    apply_fit(slot, *fit);
    alloc.slot_of_class[use.cls] = alloc.slots.size();
    alloc.slots.push_back(std::move(slot));
  }
  return alloc;
}

}  // namespace mcfpga::mapping
